# Empty dependencies file for test_posix_stress.
# This may be replaced when dependencies are built.
