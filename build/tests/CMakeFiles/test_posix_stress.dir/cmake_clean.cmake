file(REMOVE_RECURSE
  "CMakeFiles/test_posix_stress.dir/test_posix_stress.cpp.o"
  "CMakeFiles/test_posix_stress.dir/test_posix_stress.cpp.o.d"
  "test_posix_stress"
  "test_posix_stress.pdb"
  "test_posix_stress[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_posix_stress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
