# Empty dependencies file for test_query_workload.
# This may be replaced when dependencies are built.
