file(REMOVE_RECURSE
  "CMakeFiles/test_query_workload.dir/test_query_workload.cpp.o"
  "CMakeFiles/test_query_workload.dir/test_query_workload.cpp.o.d"
  "test_query_workload"
  "test_query_workload.pdb"
  "test_query_workload[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_query_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
