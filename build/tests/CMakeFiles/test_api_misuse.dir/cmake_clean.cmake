file(REMOVE_RECURSE
  "CMakeFiles/test_api_misuse.dir/test_api_misuse.cpp.o"
  "CMakeFiles/test_api_misuse.dir/test_api_misuse.cpp.o.d"
  "test_api_misuse"
  "test_api_misuse.pdb"
  "test_api_misuse[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_api_misuse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
