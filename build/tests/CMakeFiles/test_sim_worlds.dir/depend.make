# Empty dependencies file for test_sim_worlds.
# This may be replaced when dependencies are built.
