file(REMOVE_RECURSE
  "CMakeFiles/test_sim_worlds.dir/test_sim_worlds.cpp.o"
  "CMakeFiles/test_sim_worlds.dir/test_sim_worlds.cpp.o.d"
  "test_sim_worlds"
  "test_sim_worlds.pdb"
  "test_sim_worlds[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_worlds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
