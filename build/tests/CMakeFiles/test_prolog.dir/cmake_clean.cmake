file(REMOVE_RECURSE
  "CMakeFiles/test_prolog.dir/test_prolog.cpp.o"
  "CMakeFiles/test_prolog.dir/test_prolog.cpp.o.d"
  "test_prolog"
  "test_prolog.pdb"
  "test_prolog[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
