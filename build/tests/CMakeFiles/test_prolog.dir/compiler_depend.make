# Empty compiler generated dependencies file for test_prolog.
# This may be replaced when dependencies are built.
