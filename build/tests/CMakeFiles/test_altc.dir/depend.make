# Empty dependencies file for test_altc.
# This may be replaced when dependencies are built.
