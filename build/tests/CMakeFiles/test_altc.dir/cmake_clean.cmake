file(REMOVE_RECURSE
  "CMakeFiles/test_altc.dir/test_altc.cpp.o"
  "CMakeFiles/test_altc.dir/test_altc.cpp.o.d"
  "test_altc"
  "test_altc.pdb"
  "test_altc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_altc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
