file(REMOVE_RECURSE
  "CMakeFiles/test_pre_guards.dir/test_pre_guards.cpp.o"
  "CMakeFiles/test_pre_guards.dir/test_pre_guards.cpp.o.d"
  "test_pre_guards"
  "test_pre_guards.pdb"
  "test_pre_guards[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_pre_guards.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
