# Empty dependencies file for test_pre_guards.
# This may be replaced when dependencies are built.
