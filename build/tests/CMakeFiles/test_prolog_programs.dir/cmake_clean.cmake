file(REMOVE_RECURSE
  "CMakeFiles/test_prolog_programs.dir/test_prolog_programs.cpp.o"
  "CMakeFiles/test_prolog_programs.dir/test_prolog_programs.cpp.o.d"
  "test_prolog_programs"
  "test_prolog_programs.pdb"
  "test_prolog_programs[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_prolog_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
