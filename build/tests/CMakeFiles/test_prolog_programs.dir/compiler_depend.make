# Empty compiler generated dependencies file for test_prolog_programs.
# This may be replaced when dependencies are built.
