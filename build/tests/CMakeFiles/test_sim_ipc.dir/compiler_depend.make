# Empty compiler generated dependencies file for test_sim_ipc.
# This may be replaced when dependencies are built.
