file(REMOVE_RECURSE
  "CMakeFiles/test_sim_ipc.dir/test_sim_ipc.cpp.o"
  "CMakeFiles/test_sim_ipc.dir/test_sim_ipc.cpp.o.d"
  "test_sim_ipc"
  "test_sim_ipc.pdb"
  "test_sim_ipc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_ipc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
