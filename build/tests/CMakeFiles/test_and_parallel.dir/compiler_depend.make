# Empty compiler generated dependencies file for test_and_parallel.
# This may be replaced when dependencies are built.
