file(REMOVE_RECURSE
  "CMakeFiles/test_and_parallel.dir/test_and_parallel.cpp.o"
  "CMakeFiles/test_and_parallel.dir/test_and_parallel.cpp.o.d"
  "test_and_parallel"
  "test_and_parallel.pdb"
  "test_and_parallel[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_and_parallel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
