file(REMOVE_RECURSE
  "CMakeFiles/test_sim_equivalence.dir/test_sim_equivalence.cpp.o"
  "CMakeFiles/test_sim_equivalence.dir/test_sim_equivalence.cpp.o.d"
  "test_sim_equivalence"
  "test_sim_equivalence.pdb"
  "test_sim_equivalence[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_sim_equivalence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
