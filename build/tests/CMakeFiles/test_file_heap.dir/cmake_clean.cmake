file(REMOVE_RECURSE
  "CMakeFiles/test_file_heap.dir/test_file_heap.cpp.o"
  "CMakeFiles/test_file_heap.dir/test_file_heap.cpp.o.d"
  "test_file_heap"
  "test_file_heap.pdb"
  "test_file_heap[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_file_heap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
