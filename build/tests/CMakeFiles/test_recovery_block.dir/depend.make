# Empty dependencies file for test_recovery_block.
# This may be replaced when dependencies are built.
