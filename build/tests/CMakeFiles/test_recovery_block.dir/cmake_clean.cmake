file(REMOVE_RECURSE
  "CMakeFiles/test_recovery_block.dir/test_recovery_block.cpp.o"
  "CMakeFiles/test_recovery_block.dir/test_recovery_block.cpp.o.d"
  "test_recovery_block"
  "test_recovery_block.pdb"
  "test_recovery_block[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recovery_block.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
