# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_kernel[1]_include.cmake")
include("/root/repo/build/tests/test_predicate[1]_include.cmake")
include("/root/repo/build/tests/test_sim_ipc[1]_include.cmake")
include("/root/repo/build/tests/test_consensus[1]_include.cmake")
include("/root/repo/build/tests/test_core_model[1]_include.cmake")
include("/root/repo/build/tests/test_posix_backend[1]_include.cmake")
include("/root/repo/build/tests/test_recovery_block[1]_include.cmake")
include("/root/repo/build/tests/test_prolog[1]_include.cmake")
include("/root/repo/build/tests/test_page_table[1]_include.cmake")
include("/root/repo/build/tests/test_sim_properties[1]_include.cmake")
include("/root/repo/build/tests/test_posix_stress[1]_include.cmake")
include("/root/repo/build/tests/test_prolog_programs[1]_include.cmake")
include("/root/repo/build/tests/test_distributed[1]_include.cmake")
include("/root/repo/build/tests/test_sim_faults[1]_include.cmake")
include("/root/repo/build/tests/test_altc[1]_include.cmake")
include("/root/repo/build/tests/test_file_heap[1]_include.cmake")
include("/root/repo/build/tests/test_and_parallel[1]_include.cmake")
include("/root/repo/build/tests/test_query_workload[1]_include.cmake")
include("/root/repo/build/tests/test_sim_equivalence[1]_include.cmake")
include("/root/repo/build/tests/test_sim_worlds[1]_include.cmake")
include("/root/repo/build/tests/test_sim_trace[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_pre_guards[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_infrastructure[1]_include.cmake")
include("/root/repo/build/tests/test_resilience[1]_include.cmake")
include("/root/repo/build/tests/test_machine_model[1]_include.cmake")
include("/root/repo/build/tests/test_api_misuse[1]_include.cmake")
