file(REMOVE_RECURSE
  "CMakeFiles/bench_e8_consensus.dir/bench_e8_consensus.cpp.o"
  "CMakeFiles/bench_e8_consensus.dir/bench_e8_consensus.cpp.o.d"
  "bench_e8_consensus"
  "bench_e8_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e8_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
