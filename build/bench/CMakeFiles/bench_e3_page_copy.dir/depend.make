# Empty dependencies file for bench_e3_page_copy.
# This may be replaced when dependencies are built.
