file(REMOVE_RECURSE
  "CMakeFiles/bench_e3_page_copy.dir/bench_e3_page_copy.cpp.o"
  "CMakeFiles/bench_e3_page_copy.dir/bench_e3_page_copy.cpp.o.d"
  "bench_e3_page_copy"
  "bench_e3_page_copy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e3_page_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
