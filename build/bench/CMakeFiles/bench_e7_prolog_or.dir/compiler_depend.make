# Empty compiler generated dependencies file for bench_e7_prolog_or.
# This may be replaced when dependencies are built.
