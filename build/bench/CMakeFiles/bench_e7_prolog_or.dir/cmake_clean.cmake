file(REMOVE_RECURSE
  "CMakeFiles/bench_e7_prolog_or.dir/bench_e7_prolog_or.cpp.o"
  "CMakeFiles/bench_e7_prolog_or.dir/bench_e7_prolog_or.cpp.o.d"
  "bench_e7_prolog_or"
  "bench_e7_prolog_or.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e7_prolog_or.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
