file(REMOVE_RECURSE
  "CMakeFiles/bench_e4_rfork.dir/bench_e4_rfork.cpp.o"
  "CMakeFiles/bench_e4_rfork.dir/bench_e4_rfork.cpp.o.d"
  "bench_e4_rfork"
  "bench_e4_rfork.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e4_rfork.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
