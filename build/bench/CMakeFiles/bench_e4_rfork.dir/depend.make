# Empty dependencies file for bench_e4_rfork.
# This may be replaced when dependencies are built.
