
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e4_rfork.cpp" "bench/CMakeFiles/bench_e4_rfork.dir/bench_e4_rfork.cpp.o" "gcc" "bench/CMakeFiles/bench_e4_rfork.dir/bench_e4_rfork.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/altx_core.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/altx_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/altx_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
