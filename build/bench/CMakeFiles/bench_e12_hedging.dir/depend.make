# Empty dependencies file for bench_e12_hedging.
# This may be replaced when dependencies are built.
