file(REMOVE_RECURSE
  "CMakeFiles/bench_e12_hedging.dir/bench_e12_hedging.cpp.o"
  "CMakeFiles/bench_e12_hedging.dir/bench_e12_hedging.cpp.o.d"
  "bench_e12_hedging"
  "bench_e12_hedging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_hedging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
