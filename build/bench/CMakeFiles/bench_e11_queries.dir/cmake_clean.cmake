file(REMOVE_RECURSE
  "CMakeFiles/bench_e11_queries.dir/bench_e11_queries.cpp.o"
  "CMakeFiles/bench_e11_queries.dir/bench_e11_queries.cpp.o.d"
  "bench_e11_queries"
  "bench_e11_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
