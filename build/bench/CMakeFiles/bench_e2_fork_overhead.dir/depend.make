# Empty dependencies file for bench_e2_fork_overhead.
# This may be replaced when dependencies are built.
