file(REMOVE_RECURSE
  "CMakeFiles/bench_e6_recovery_blocks.dir/bench_e6_recovery_blocks.cpp.o"
  "CMakeFiles/bench_e6_recovery_blocks.dir/bench_e6_recovery_blocks.cpp.o.d"
  "bench_e6_recovery_blocks"
  "bench_e6_recovery_blocks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e6_recovery_blocks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
