# Empty compiler generated dependencies file for bench_e6_recovery_blocks.
# This may be replaced when dependencies are built.
