# Empty dependencies file for bench_e5_speedup.
# This may be replaced when dependencies are built.
