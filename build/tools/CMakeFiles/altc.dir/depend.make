# Empty dependencies file for altc.
# This may be replaced when dependencies are built.
