file(REMOVE_RECURSE
  "CMakeFiles/altc.dir/altc_main.cpp.o"
  "CMakeFiles/altc.dir/altc_main.cpp.o.d"
  "altc"
  "altc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
