file(REMOVE_RECURSE
  "CMakeFiles/altx_sim.dir/kernel.cpp.o"
  "CMakeFiles/altx_sim.dir/kernel.cpp.o.d"
  "libaltx_sim.a"
  "libaltx_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altx_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
