file(REMOVE_RECURSE
  "libaltx_sim.a"
)
