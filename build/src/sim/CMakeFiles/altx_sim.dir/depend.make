# Empty dependencies file for altx_sim.
# This may be replaced when dependencies are built.
