# Empty compiler generated dependencies file for altx_core.
# This may be replaced when dependencies are built.
