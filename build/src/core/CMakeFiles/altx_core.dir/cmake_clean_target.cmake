file(REMOVE_RECURSE
  "libaltx_core.a"
)
