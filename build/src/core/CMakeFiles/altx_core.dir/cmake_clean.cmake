file(REMOVE_RECURSE
  "CMakeFiles/altx_core.dir/executor.cpp.o"
  "CMakeFiles/altx_core.dir/executor.cpp.o.d"
  "libaltx_core.a"
  "libaltx_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altx_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
