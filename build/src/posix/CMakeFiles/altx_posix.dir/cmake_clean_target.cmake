file(REMOVE_RECURSE
  "libaltx_posix.a"
)
