
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/posix/alt_group.cpp" "src/posix/CMakeFiles/altx_posix.dir/alt_group.cpp.o" "gcc" "src/posix/CMakeFiles/altx_posix.dir/alt_group.cpp.o.d"
  "/root/repo/src/posix/alt_heap.cpp" "src/posix/CMakeFiles/altx_posix.dir/alt_heap.cpp.o" "gcc" "src/posix/CMakeFiles/altx_posix.dir/alt_heap.cpp.o.d"
  "/root/repo/src/posix/checkpoint.cpp" "src/posix/CMakeFiles/altx_posix.dir/checkpoint.cpp.o" "gcc" "src/posix/CMakeFiles/altx_posix.dir/checkpoint.cpp.o.d"
  "/root/repo/src/posix/file_heap.cpp" "src/posix/CMakeFiles/altx_posix.dir/file_heap.cpp.o" "gcc" "src/posix/CMakeFiles/altx_posix.dir/file_heap.cpp.o.d"
  "/root/repo/src/posix/measure.cpp" "src/posix/CMakeFiles/altx_posix.dir/measure.cpp.o" "gcc" "src/posix/CMakeFiles/altx_posix.dir/measure.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
