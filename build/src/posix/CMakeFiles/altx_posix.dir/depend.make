# Empty dependencies file for altx_posix.
# This may be replaced when dependencies are built.
