file(REMOVE_RECURSE
  "CMakeFiles/altx_posix.dir/alt_group.cpp.o"
  "CMakeFiles/altx_posix.dir/alt_group.cpp.o.d"
  "CMakeFiles/altx_posix.dir/alt_heap.cpp.o"
  "CMakeFiles/altx_posix.dir/alt_heap.cpp.o.d"
  "CMakeFiles/altx_posix.dir/checkpoint.cpp.o"
  "CMakeFiles/altx_posix.dir/checkpoint.cpp.o.d"
  "CMakeFiles/altx_posix.dir/file_heap.cpp.o"
  "CMakeFiles/altx_posix.dir/file_heap.cpp.o.d"
  "CMakeFiles/altx_posix.dir/measure.cpp.o"
  "CMakeFiles/altx_posix.dir/measure.cpp.o.d"
  "libaltx_posix.a"
  "libaltx_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altx_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
