# Empty compiler generated dependencies file for altx_consensus.
# This may be replaced when dependencies are built.
