file(REMOVE_RECURSE
  "CMakeFiles/altx_consensus.dir/majority.cpp.o"
  "CMakeFiles/altx_consensus.dir/majority.cpp.o.d"
  "libaltx_consensus.a"
  "libaltx_consensus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altx_consensus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
