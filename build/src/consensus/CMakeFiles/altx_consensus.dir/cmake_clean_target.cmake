file(REMOVE_RECURSE
  "libaltx_consensus.a"
)
