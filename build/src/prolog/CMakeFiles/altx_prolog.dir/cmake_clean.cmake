file(REMOVE_RECURSE
  "CMakeFiles/altx_prolog.dir/or_parallel.cpp.o"
  "CMakeFiles/altx_prolog.dir/or_parallel.cpp.o.d"
  "CMakeFiles/altx_prolog.dir/parser.cpp.o"
  "CMakeFiles/altx_prolog.dir/parser.cpp.o.d"
  "CMakeFiles/altx_prolog.dir/solver.cpp.o"
  "CMakeFiles/altx_prolog.dir/solver.cpp.o.d"
  "CMakeFiles/altx_prolog.dir/term.cpp.o"
  "CMakeFiles/altx_prolog.dir/term.cpp.o.d"
  "libaltx_prolog.a"
  "libaltx_prolog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altx_prolog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
