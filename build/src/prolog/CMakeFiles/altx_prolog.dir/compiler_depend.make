# Empty compiler generated dependencies file for altx_prolog.
# This may be replaced when dependencies are built.
