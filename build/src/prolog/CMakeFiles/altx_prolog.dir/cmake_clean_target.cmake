file(REMOVE_RECURSE
  "libaltx_prolog.a"
)
