file(REMOVE_RECURSE
  "CMakeFiles/altx_altc.dir/translate.cpp.o"
  "CMakeFiles/altx_altc.dir/translate.cpp.o.d"
  "libaltx_altc.a"
  "libaltx_altc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altx_altc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
