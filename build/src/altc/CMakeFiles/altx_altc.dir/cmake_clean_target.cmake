file(REMOVE_RECURSE
  "libaltx_altc.a"
)
