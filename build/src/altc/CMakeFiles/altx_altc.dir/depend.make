# Empty dependencies file for altx_altc.
# This may be replaced when dependencies are built.
