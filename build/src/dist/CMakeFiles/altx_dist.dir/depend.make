# Empty dependencies file for altx_dist.
# This may be replaced when dependencies are built.
