file(REMOVE_RECURSE
  "libaltx_dist.a"
)
