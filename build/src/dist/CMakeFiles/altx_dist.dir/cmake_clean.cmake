file(REMOVE_RECURSE
  "CMakeFiles/altx_dist.dir/distributed.cpp.o"
  "CMakeFiles/altx_dist.dir/distributed.cpp.o.d"
  "libaltx_dist.a"
  "libaltx_dist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/altx_dist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
