# Empty dependencies file for worlds_timeline.
# This may be replaced when dependencies are built.
