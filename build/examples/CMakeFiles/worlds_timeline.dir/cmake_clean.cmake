file(REMOVE_RECURSE
  "CMakeFiles/worlds_timeline.dir/worlds_timeline.cpp.o"
  "CMakeFiles/worlds_timeline.dir/worlds_timeline.cpp.o.d"
  "worlds_timeline"
  "worlds_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/worlds_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
