# Empty compiler generated dependencies file for speculative_update.
# This may be replaced when dependencies are built.
