file(REMOVE_RECURSE
  "CMakeFiles/speculative_update.dir/speculative_update.cpp.o"
  "CMakeFiles/speculative_update.dir/speculative_update.cpp.o.d"
  "speculative_update"
  "speculative_update.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speculative_update.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
