# Empty dependencies file for alt_dsl_demo.
# This may be replaced when dependencies are built.
