file(REMOVE_RECURSE
  "CMakeFiles/alt_dsl_demo.dir/alt_dsl_demo.gen.cpp.o"
  "CMakeFiles/alt_dsl_demo.dir/alt_dsl_demo.gen.cpp.o.d"
  "alt_dsl_demo"
  "alt_dsl_demo.gen.cpp"
  "alt_dsl_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alt_dsl_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
