file(REMOVE_RECURSE
  "CMakeFiles/grep_race.dir/grep_race.cpp.o"
  "CMakeFiles/grep_race.dir/grep_race.cpp.o.d"
  "grep_race"
  "grep_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grep_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
