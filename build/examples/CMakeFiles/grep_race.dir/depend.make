# Empty dependencies file for grep_race.
# This may be replaced when dependencies are built.
