file(REMOVE_RECURSE
  "CMakeFiles/recovery_block_demo.dir/recovery_block_demo.cpp.o"
  "CMakeFiles/recovery_block_demo.dir/recovery_block_demo.cpp.o.d"
  "recovery_block_demo"
  "recovery_block_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recovery_block_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
