# Empty dependencies file for recovery_block_demo.
# This may be replaced when dependencies are built.
