# Empty compiler generated dependencies file for prolog_or_demo.
# This may be replaced when dependencies are built.
