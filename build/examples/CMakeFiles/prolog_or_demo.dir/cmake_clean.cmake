file(REMOVE_RECURSE
  "CMakeFiles/prolog_or_demo.dir/prolog_or_demo.cpp.o"
  "CMakeFiles/prolog_or_demo.dir/prolog_or_demo.cpp.o.d"
  "prolog_or_demo"
  "prolog_or_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prolog_or_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
