# Empty dependencies file for sort_race.
# This may be replaced when dependencies are built.
