file(REMOVE_RECURSE
  "CMakeFiles/sort_race.dir/sort_race.cpp.o"
  "CMakeFiles/sort_race.dir/sort_race.cpp.o.d"
  "sort_race"
  "sort_race.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sort_race.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
