file(REMOVE_RECURSE
  "CMakeFiles/prolog_repl.dir/prolog_repl.cpp.o"
  "CMakeFiles/prolog_repl.dir/prolog_repl.cpp.o.d"
  "prolog_repl"
  "prolog_repl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prolog_repl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
