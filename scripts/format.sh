#!/bin/sh
# clang-format over the C++ sources (.clang-format at the repo root).
#
# Usage: scripts/format.sh          rewrite files in place
#        scripts/format.sh --check  exit 1 if any file needs formatting
#
# Degrades gracefully: exits 0 with a notice when clang-format is not
# installed, so environments without it (this one included) still pass;
# CI runs where the tool exists and enforces the check.
set -eu
ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if ! command -v "$CLANG_FORMAT" >/dev/null 2>&1; then
  echo "format.sh: $CLANG_FORMAT not found; skipping (install clang-format to enable)"
  exit 0
fi

MODE="${1:-fix}"
FILES=$(find "$ROOT/src" "$ROOT/tests" "$ROOT/bench" "$ROOT/tools" \
        -name '*.cpp' -o -name '*.hpp' | sort)

if [ "$MODE" = "--check" ]; then
  FAILED=0
  for f in $FILES; do
    if ! "$CLANG_FORMAT" --dry-run -Werror "$f" >/dev/null 2>&1; then
      echo "needs formatting: ${f#"$ROOT"/}"
      FAILED=1
    fi
  done
  [ "$FAILED" = 0 ] && echo "format.sh: all files clean"
  exit "$FAILED"
fi

echo "$FILES" | xargs "$CLANG_FORMAT" -i
echo "format.sh: formatted $(echo "$FILES" | wc -l) files"
