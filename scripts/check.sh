#!/bin/sh
# Full verification: format check, then the test suite twice — once plain,
# once with ALTX_SANITIZE=address,undefined — with a per-test timeout, so a
# hung fault-injection test fails instead of wedging CI.
#
# Usage: scripts/check.sh [jobs]
#   ALTX_TEST_TIMEOUT   per-test ctest timeout in seconds (default 120)
#   ALTX_SANITIZERS     sanitizer list for the second pass
#                       (default address,undefined; empty skips the pass)
set -eu
ROOT=$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)

# Non-interactive by construction: every failure lands on this trap with a
# non-zero exit, never a prompt — CI and cron runs fail loudly or pass.
trap 'status=$?; if [ "$status" -ne 0 ]; then echo "== check FAILED (exit $status)" >&2; fi; exit $status' EXIT
JOBS="${1:-$(nproc 2>/dev/null || echo 4)}"
TIMEOUT="${ALTX_TEST_TIMEOUT:-120}"
SANITIZERS="${ALTX_SANITIZERS-address,undefined}"

run_pass() {
  builddir="$1"
  shift
  echo "== configure $builddir ($*)"
  cmake -B "$ROOT/$builddir" -S "$ROOT" "$@" >/dev/null
  echo "== build $builddir"
  cmake --build "$ROOT/$builddir" -j "$JOBS" >/dev/null
  echo "== ctest $builddir (timeout ${TIMEOUT}s/test)"
  ctest --test-dir "$ROOT/$builddir" -j "$JOBS" --timeout "$TIMEOUT" \
        --output-on-failure
}

echo "== format check"
"$ROOT/scripts/format.sh" --check

run_pass build -DALTX_SANITIZE=

echo "== altx-check smoke (200 trials, both backends)"
"$ROOT/build/tools/altx-check" --trials 200 --seed 42 --quiet \
    --out "${TMPDIR:-/tmp}"

echo "== altx-check governor smoke (100 posix trials, perturbed governor)"
"$ROOT/build/tools/altx-check" --trials 100 --seed 42 --backend posix \
    --perturb-governor --quiet --out "${TMPDIR:-/tmp}"

if [ -n "$SANITIZERS" ]; then
  # Leak detection trips on intentionally SIGKILLed children's inherited
  # allocations; ASAN_OPTIONS keeps the signal on real errors.
  ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0}" \
  UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}" \
  run_pass build-sanitize "-DALTX_SANITIZE=$SANITIZERS"
fi

echo "== all checks passed"
