#!/bin/sh
# Regenerates every paper artefact (E1-E11 + microbenchmarks) into results/.
# Usage: scripts/run_experiments.sh [build-dir]
set -e
BUILD="${1:-build}"
OUT=results
mkdir -p "$OUT"
for b in "$BUILD"/bench/bench_*; do
  name=$(basename "$b")
  echo "== $name"
  "$b" > "$OUT/$name.txt" 2>&1
done
echo "wrote $(ls "$OUT" | wc -l) reports to $OUT/"
