// altx-trace: post-mortem reader for ALTX_TRACE jsonl files.
//
// Reconstructs what each alternative block did — who won, when, and every
// loser's fate (too late / guard failed / crashed / hung / eliminated),
// across supervisor attempts — then prints aggregate latency statistics.
//
//   ALTX_TRACE=trace.jsonl ./your_program
//   altx-trace trace.jsonl              # per-race timelines + aggregates
//   altx-trace --summary trace.jsonl    # aggregates only
//   altx-trace --race 7 trace.jsonl     # one block, every event verbatim
//   altx-trace --efficiency trace.jsonl # speculation ledger per block
//   altx-trace --critical-path trace.jsonl
//                                       # where each block's wall time went,
//                                       # phase by phase
//   altx-trace --flame trace.jsonl      # collapsed profiler stacks, split
//                                       # by winner / loser fate (pipe into
//                                       # flamegraph.pl)
//   altx-trace --stitch a.jsonl b.jsonl -o merged.json
//                                       # merge per-node traces into one
//                                       # causally-ordered Perfetto timeline
//
// Reads the jsonl format only (the chrome format is for Perfetto; --stitch
// writes it). A trace whose ring overflowed carries a ring_overflow marker
// — every mode warns about it on stderr. Exits 1 on unreadable input, 0
// otherwise.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "obs/event.hpp"
#include "obs/export.hpp"
#include "obs/phase.hpp"
#include "obs/profile.hpp"
#include "posix/alt_group.hpp"
#include "posix/supervisor.hpp"

namespace {

using altx::Summary;
using altx::obs::EventKind;
using altx::obs::Record;

struct RaceView {
  std::uint32_t id = 0;
  std::vector<Record> events;  // time-sorted
  [[nodiscard]] std::uint64_t t0() const {
    return events.empty() ? 0 : events.front().t_ns;
  }
};

const char* fate_name(std::uint64_t fate) {
  return altx::posix::to_string(static_cast<altx::posix::ChildFate>(fate));
}

const char* verdict_name(std::uint64_t v) {
  return altx::posix::to_string(static_cast<altx::posix::WaitVerdict>(v));
}

const char* outcome_name(std::uint64_t o) {
  return altx::posix::to_string(static_cast<altx::posix::AttemptOutcome>(o));
}

std::string who(const Record& r) {
  if (r.child_index == 0) return "parent";
  return "#" + std::to_string(r.child_index);
}

/// One human line per event; the kind-specific args decoded where they have
/// a fixed meaning.
std::string describe(const Record& r) {
  char buf[160];
  switch (r.kind) {
    case EventKind::kRaceBegin:
      std::snprintf(buf, sizeof buf, "block begins, %llu alternatives",
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kFork:
      std::snprintf(buf, sizeof buf, "forked pid %llu (fork took %.1f us)",
                    static_cast<unsigned long long>(r.a),
                    static_cast<double>(r.b) / 1000.0);
      break;
    case EventKind::kGuardStart:
      std::snprintf(buf, sizeof buf, "guard starts");
      break;
    case EventKind::kGuardResult:
      std::snprintf(buf, sizeof buf, "guard %s",
                    r.a != 0 ? "held" : "failed");
      break;
    case EventKind::kCommitAttempt:
      std::snprintf(buf, sizeof buf, "reaches for the commit token");
      break;
    case EventKind::kCommitWon:
      std::snprintf(buf, sizeof buf, "took the token (%llu result bytes)",
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kTooLate:
      std::snprintf(buf, sizeof buf, "too late: token already gone");
      break;
    case EventKind::kGuardFail:
      std::snprintf(buf, sizeof buf, "aborts (guard failed)");
      break;
    case EventKind::kChildFate:
      if (r.b != 0) {
        std::snprintf(buf, sizeof buf, "reaped: %s (signal %llu)",
                      fate_name(r.a), static_cast<unsigned long long>(r.b));
      } else {
        std::snprintf(buf, sizeof buf, "reaped: %s", fate_name(r.a));
      }
      break;
    case EventKind::kRaceDecided:
      if (r.b != 0) {
        std::snprintf(buf, sizeof buf,
                      "decided: %s — alternative %llu (%llu pages absorbed)",
                      verdict_name(r.a), static_cast<unsigned long long>(r.b),
                      static_cast<unsigned long long>(r.c));
      } else {
        std::snprintf(buf, sizeof buf, "decided: %s", verdict_name(r.a));
      }
      break;
    case EventKind::kAttemptBegin:
      std::snprintf(buf, sizeof buf, "attempt %llu begins (timeout %llu ms)",
                    static_cast<unsigned long long>(r.a),
                    static_cast<unsigned long long>(r.b));
      break;
    case EventKind::kAttemptEnd:
      std::snprintf(buf, sizeof buf, "attempt %llu ends: %s",
                    static_cast<unsigned long long>(r.a), outcome_name(r.b));
      break;
    case EventKind::kBackoff:
      std::snprintf(buf, sizeof buf, "backing off %llu ms before attempt %llu",
                    static_cast<unsigned long long>(r.b),
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kSequentialFallback:
      std::snprintf(buf, sizeof buf,
                    "degrading: sequential in-process fallback");
      break;
    case EventKind::kHedgeWake:
      std::snprintf(buf, sizeof buf, "hedge copy %llu wakes",
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kPredPlan:
      std::snprintf(buf, sizeof buf,
                    "plan: %llu launch now, %llu hedged, %llu skipped",
                    static_cast<unsigned long long>(r.a),
                    static_cast<unsigned long long>(r.b),
                    static_cast<unsigned long long>(r.c));
      break;
    case EventKind::kPredStage:
      std::snprintf(buf, sizeof buf,
                    "staged arm wakes after %.1f ms deferral",
                    static_cast<double>(r.a) / 1e6);
      break;
    case EventKind::kPredKill:
      std::snprintf(buf, sizeof buf,
                    "predicted loser: pid %llu past its p-kill %.1f ms (%s)",
                    static_cast<unsigned long long>(r.a),
                    static_cast<double>(r.b) / 1e6,
                    r.c == 0 ? "SIGTERM" : "SIGKILL");
      break;
    case EventKind::kAwaitBegin:
      std::snprintf(buf, sizeof buf, "await_all begins, %llu tasks",
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kAwaitTaskDone:
      std::snprintf(buf, sizeof buf, "task %s",
                    r.a != 0 ? "produced a value" : "failed");
      break;
    case EventKind::kAwaitDecided:
      std::snprintf(buf, sizeof buf, "await_all %s",
                    r.a != 0 ? "collected everything" : "failed");
      break;
    case EventKind::kDistSpawn:
      std::snprintf(buf, sizeof buf,
                    "checkpoint shipped to worker (%llu bytes)",
                    static_cast<unsigned long long>(r.b));
      break;
    case EventKind::kDistAbort:
      std::snprintf(buf, sizeof buf, "remote guard failed");
      break;
    case EventKind::kDistResult:
      std::snprintf(buf, sizeof buf, "result reached the coordinator");
      break;
    case EventKind::kDistKill:
      std::snprintf(buf, sizeof buf, "elimination sent to worker");
      break;
    case EventKind::kDistDecided:
      if (r.a != 0) {
        std::snprintf(buf, sizeof buf, "committed: alternative %llu",
                      static_cast<unsigned long long>(r.b));
      } else {
        std::snprintf(buf, sizeof buf, "failed definitively (FAIL won)");
      }
      break;
    case EventKind::kVoteGrant:
      std::snprintf(buf, sizeof buf, "arbiter %llu grants candidate %llu",
                    static_cast<unsigned long long>(r.b),
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kVoteReject:
      std::snprintf(buf, sizeof buf, "arbiter %llu rejects candidate %llu",
                    static_cast<unsigned long long>(r.b),
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kSyncDecided:
      std::snprintf(buf, sizeof buf, "candidate %llu %s (%llu rounds)",
                    static_cast<unsigned long long>(r.a),
                    r.b != 0 ? "wins the semaphore" : "is too late",
                    static_cast<unsigned long long>(r.c));
      break;
    case EventKind::kChildUsage:
      std::snprintf(buf, sizeof buf,
                    "billed %.3f ms CPU, peak rss %llu KiB, "
                    "%llu minor / %llu major faults",
                    static_cast<double>(r.a) / 1'000'000.0,
                    static_cast<unsigned long long>(r.b),
                    static_cast<unsigned long long>(r.c >> 32),
                    static_cast<unsigned long long>(r.c & 0xffffffffULL));
      break;
    case EventKind::kChildPages:
      std::snprintf(buf, sizeof buf,
                    "reports %llu dirty pages (%llu bytes) before sync",
                    static_cast<unsigned long long>(r.a),
                    static_cast<unsigned long long>(r.b));
      break;
    case EventKind::kSpecReport:
      std::snprintf(buf, sizeof buf,
                    "speculation bill: %.3f ms wasted CPU, %llu pages "
                    "discarded (winner ran %.3f ms)",
                    static_cast<double>(r.a) / 1'000'000.0,
                    static_cast<unsigned long long>(r.b),
                    static_cast<double>(r.c) / 1'000'000.0);
      break;
    case EventKind::kRingOverflow:
      std::snprintf(buf, sizeof buf,
                    "RING OVERFLOW: %llu records were dropped",
                    static_cast<unsigned long long>(r.a));
      break;
    case EventKind::kPhaseBegin:
      std::snprintf(buf, sizeof buf, "phase %s begins",
                    to_string(static_cast<altx::obs::Phase>(r.a)));
      break;
    case EventKind::kPhaseEnd:
      std::snprintf(buf, sizeof buf, "phase %s ends (%.1f us)",
                    to_string(static_cast<altx::obs::Phase>(r.a)),
                    static_cast<double>(r.b) / 1000.0);
      break;
    case EventKind::kProfSample:
      std::snprintf(buf, sizeof buf,
                    "profile sample %u fragment %u/%u (pc %llx %llx)",
                    altx::obs::prof_sample_id(r.c),
                    altx::obs::prof_fragment(r.c) + 1,
                    altx::obs::prof_total_fragments(r.c),
                    static_cast<unsigned long long>(r.a),
                    static_cast<unsigned long long>(r.b));
      break;
    case EventKind::kProfMap:
      std::snprintf(buf, sizeof buf, "profiler armed (exe base %llx)",
                    static_cast<unsigned long long>(r.a));
      break;
    default:
      std::snprintf(buf, sizeof buf, "%s a=%llu b=%llu c=%llu",
                    to_string(r.kind), static_cast<unsigned long long>(r.a),
                    static_cast<unsigned long long>(r.b),
                    static_cast<unsigned long long>(r.c));
      break;
  }
  return buf;
}

void print_race(const RaceView& race) {
  std::printf("race %u\n", race.id);
  for (const Record& r : race.events) {
    const double rel_ms =
        static_cast<double>(r.t_ns - race.t0()) / 1'000'000.0;
    std::printf("  %+10.3f ms  %-7s %s\n", rel_ms, who(r).c_str(),
                describe(r).c_str());
  }
  // One-line verdict: who won, how long the decision took, losers' fates.
  const Record* decided = nullptr;
  std::map<int, std::uint64_t> fates;
  for (const Record& r : race.events) {
    if (r.kind == EventKind::kRaceDecided) decided = &r;
    if (r.kind == EventKind::kChildFate) fates[r.child_index] = r.a;
  }
  if (decided != nullptr) {
    const double total_ms =
        static_cast<double>(decided->t_ns - race.t0()) / 1'000'000.0;
    std::printf("  => %s in %.3f ms", verdict_name(decided->a), total_ms);
    if (decided->b != 0) {
      std::printf(", alternative %llu won",
                  static_cast<unsigned long long>(decided->b));
    }
    bool first = true;
    for (const auto& [child, fate] : fates) {
      if (decided->b != 0 && child == static_cast<int>(decided->b)) continue;
      std::printf("%s#%d %s", first ? "; " : ", ", child, fate_name(fate));
      first = false;
    }
    std::printf("\n");
  }
  std::printf("\n");
}

void print_ms_stats(const char* label, const Summary& s) {
  if (s.empty()) return;
  std::printf("  %-18s n=%-5zu mean %8.3f ms   p50 %8.3f ms   p95 %8.3f ms"
              "   max %8.3f ms\n",
              label, s.count(), s.mean(), s.median(), s.percentile(95),
              s.max());
}

/// Loads one jsonl trace; nullopt (after an stderr diagnostic) on failure.
std::optional<std::vector<Record>> load_records(
    const std::string& path, altx::obs::JsonlStats* stats = nullptr) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "altx-trace: cannot open %s\n", path.c_str());
    return std::nullopt;
  }
  try {
    return altx::obs::parse_jsonl(in, stats);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altx-trace: %s: %s\n", path.c_str(), e.what());
    return std::nullopt;
  }
}

/// A truncated trace is still worth reading, but every conclusion drawn
/// from it deserves an asterisk — put it on stderr, once per input file.
void warn_if_overflowed(const std::string& path,
                        const std::vector<Record>& records) {
  for (const Record& r : records) {
    if (r.kind == EventKind::kRingOverflow) {
      std::fprintf(stderr,
                   "altx-trace: warning: %s lost %llu records to ring "
                   "overflow (raise ALTX_TRACE_BUF)\n",
                   path.c_str(), static_cast<unsigned long long>(r.a));
      return;
    }
  }
}

/// --efficiency: the speculation ledger per block, from the kSpecReport
/// each AltGroup emits once all of its children are reaped, with the
/// governor's over-budget kills folded in — a watchdogged arm is pure
/// waste by construction, so it deserves its own column in the table.
int run_efficiency(const std::string& path) {
  const auto loaded = load_records(path);
  if (!loaded.has_value()) return 1;
  warn_if_overflowed(path, *loaded);
  // Per-race censuses: arms the governor killed over budget, arms the
  // predictor killed past their own quantile, and arms the plan deferred
  // (kPredPlan.b) — the deferred count is the savings story: a hedged arm
  // that never woke cost nearly nothing.
  std::map<std::uint32_t, int> over_budget;
  std::map<std::uint32_t, int> pred_killed;
  std::map<std::uint32_t, int> deferred;
  for (const Record& r : *loaded) {
    if (r.kind == EventKind::kChildFate) {
      const auto fate = static_cast<altx::posix::ChildFate>(r.a);
      if (fate == altx::posix::ChildFate::kOverBudget) ++over_budget[r.race_id];
      if (fate == altx::posix::ChildFate::kPredictedLoser) {
        ++pred_killed[r.race_id];
      }
    } else if (r.kind == EventKind::kPredPlan) {
      deferred[r.race_id] += static_cast<int>(r.b + r.c);
    }
  }
  std::printf("%-8s %15s %15s %17s %9s %9s %9s %8s\n", "race", "wasted CPU ms",
              "winner CPU ms", "discarded pages", "ob kills", "pk kills",
              "deferred", "ratio");
  std::uint64_t total_wasted = 0;
  std::uint64_t total_winner = 0;
  std::uint64_t total_pages = 0;
  int total_ob = 0;
  int total_pk = 0;
  int total_deferred = 0;
  int blocks = 0;
  auto census = [](const std::map<std::uint32_t, int>& m, std::uint32_t race) {
    const auto it = m.find(race);
    return it == m.end() ? 0 : it->second;
  };
  for (const Record& r : *loaded) {
    if (r.kind != EventKind::kSpecReport) continue;
    ++blocks;
    total_wasted += r.a;
    total_pages += r.b;
    total_winner += r.c;
    const int ob = census(over_budget, r.race_id);
    const int pk = census(pred_killed, r.race_id);
    const int df = census(deferred, r.race_id);
    total_ob += ob;
    total_pk += pk;
    total_deferred += df;
    const double ratio =
        r.c == 0 ? 0.0
                 : static_cast<double>(r.a + r.c) / static_cast<double>(r.c);
    std::printf("%-8u %15.3f %15.3f %17llu %9d %9d %9d %8.2f\n", r.race_id,
                static_cast<double>(r.a) / 1'000'000.0,
                static_cast<double>(r.c) / 1'000'000.0,
                static_cast<unsigned long long>(r.b), ob, pk, df, ratio);
  }
  if (blocks == 0) {
    std::printf("no speculation reports in %s (single-child blocks, or the "
                "trace predates accounting)\n",
                path.c_str());
    return 0;
  }
  const double total_ratio =
      total_winner == 0
          ? 0.0
          : static_cast<double>(total_wasted + total_winner) /
                static_cast<double>(total_winner);
  std::printf("%-8s %15.3f %15.3f %17llu %9d %9d %9d %8.2f   (%d blocks)\n",
              "total", static_cast<double>(total_wasted) / 1'000'000.0,
              static_cast<double>(total_winner) / 1'000'000.0,
              static_cast<unsigned long long>(total_pages), total_ob, total_pk,
              total_deferred, total_ratio, blocks);
  return 0;
}

/// --critical-path: per-race phase breakdown from the kPhaseEnd spans, plus
/// the cross-race dominant-phase histogram — the answer to "where does the
/// 20 µs floor actually go?".
int run_critical_path(const std::string& path) {
  using altx::obs::kPhaseCount;
  using altx::obs::Phase;
  using altx::obs::PhaseBreakdown;
  const auto loaded = load_records(path);
  if (!loaded.has_value()) return 1;
  warn_if_overflowed(path, *loaded);
  const auto races = altx::obs::reduce_critical_path(*loaded);
  if (races.empty()) {
    std::printf("no races in %s\n", path.c_str());
    return 0;
  }
  std::printf("%-8s %10s %6s %-14s  %s\n", "race", "wall ms", "cover",
              "dominant", "parent phases (ms)");
  int dominant_count[kPhaseCount] = {};
  std::uint64_t phase_totals[kPhaseCount] = {};
  std::uint64_t child_totals[kPhaseCount] = {};
  std::uint64_t total_wall = 0;
  std::uint64_t total_attributed = 0;
  int decided = 0;
  std::uint32_t dangling = 0;
  for (const auto& [id, b] : races) {
    for (int p = 0; p < kPhaseCount; ++p) {
      phase_totals[p] += b.phase_ns[p];
      child_totals[p] += b.child_ns[p];
    }
    dangling += b.dangling_begins;
    if (!b.decided) {
      std::printf("%-8u %10s %6s %-14s  (no decision in trace)\n", id, "-",
                  "-", "-");
      continue;
    }
    ++decided;
    total_wall += b.wall_ns;
    total_attributed += b.attributed_ns();
    ++dominant_count[static_cast<int>(b.dominant())];
    std::printf("%-8u %10.3f %5.1f%% %-14s ", id,
                static_cast<double>(b.wall_ns) / 1'000'000.0,
                b.coverage() * 100.0, to_string(b.dominant()));
    for (int p = 1; p < kPhaseCount; ++p) {
      if (b.phase_ns[p] == 0) continue;
      std::printf(" %s=%.3f", to_string(static_cast<Phase>(p)),
                  static_cast<double>(b.phase_ns[p]) / 1'000'000.0);
    }
    std::printf("\n");
  }
  if (decided == 0) {
    std::printf("\nno decided races (trace predates phase spans, or all "
                "blocks were denied admission)\n");
    return 0;
  }
  const double coverage =
      total_wall == 0 ? 0.0
                      : static_cast<double>(total_attributed) /
                            static_cast<double>(total_wall);
  std::printf("\naggregate: %d decided races, %.1f%% of wall attributed",
              decided, coverage * 100.0);
  if (dangling > 0) {
    std::printf(" (%u spans truncated by kills)", dangling);
  }
  std::printf("\n  dominant phase:");
  for (int p = 0; p < kPhaseCount; ++p) {
    if (dominant_count[p] == 0) continue;
    std::printf(" %s=%d", to_string(static_cast<Phase>(p)),
                dominant_count[p]);
  }
  std::printf("\n  parent totals: ");
  for (int p = 1; p < kPhaseCount; ++p) {
    if (phase_totals[p] == 0) continue;
    std::printf(" %s=%.3fms", to_string(static_cast<Phase>(p)),
                static_cast<double>(phase_totals[p]) / 1'000'000.0);
  }
  std::printf("\n  child  totals: ");
  for (int p = 1; p < kPhaseCount; ++p) {
    if (child_totals[p] == 0) continue;
    std::printf(" %s=%.3fms", to_string(static_cast<Phase>(p)),
                static_cast<double>(child_totals[p]) / 1'000'000.0);
  }
  std::printf("\n");

  // Cross-process rollup: when the input is a stitched client+daemon trace,
  // group by trace id instead of race id — the client's submit→result
  // interval is the wall, and the daemon's queue and phase spans tile it.
  const auto by_trace = altx::obs::reduce_critical_path_by_trace(*loaded);
  if (!by_trace.empty()) {
    std::printf("\ncross-process traces (%zu)\n", by_trace.size());
    std::printf("%-18s %10s %6s %-14s  %s\n", "trace", "wall ms", "cover",
                "dominant", "phases (ms)");
    std::uint64_t t_wall = 0;
    std::uint64_t t_attr = 0;
    int t_decided = 0;
    for (const auto& [id, b] : by_trace) {
      if (!b.decided) continue;
      ++t_decided;
      t_wall += b.wall_ns;
      t_attr += b.attributed_ns();
      std::printf("%016llx %10.3f %5.1f%% %-14s ",
                  static_cast<unsigned long long>(id),
                  static_cast<double>(b.wall_ns) / 1'000'000.0,
                  b.coverage() * 100.0, to_string(b.dominant()));
      for (int p = 1; p < kPhaseCount; ++p) {
        if (b.phase_ns[p] == 0) continue;
        std::printf(" %s=%.3f", to_string(static_cast<Phase>(p)),
                    static_cast<double>(b.phase_ns[p]) / 1'000'000.0);
      }
      if (b.rpc_ns != 0) {
        std::printf(" rpc=%.3f",
                    static_cast<double>(b.rpc_ns) / 1'000'000.0);
      }
      std::printf("\n");
    }
    if (t_decided > 0) {
      const double tc = t_wall == 0 ? 0.0
                                    : static_cast<double>(t_attr) /
                                          static_cast<double>(t_wall);
      std::printf("aggregate: %d decided traces, %.1f%% of wall attributed "
                  "across the hop\n",
                  t_decided, tc * 100.0);
    }
  }
  return 0;
}

/// --flame: reassemble kProfSample fragments into collapsed stacks
/// (flamegraph.pl / speedscope input), rooted at the sampled child's fate so
/// the winner's and losers' work render side by side.
int run_flame(const std::string& path, const std::string& out) {
  const auto loaded = load_records(path);
  if (!loaded.has_value()) return 1;
  warn_if_overflowed(path, *loaded);

  // First pass: exe load base per pid (kProfMap) and fate per
  // (race, child) (kChildFate — its child_index names the reaped arm).
  std::map<pid_t, std::uint64_t> exe_base;
  std::map<std::pair<std::uint32_t, int>, std::uint64_t> fates;
  for (const Record& r : *loaded) {
    if (r.kind == EventKind::kProfMap && exe_base.count(r.pid) == 0) {
      exe_base[r.pid] = r.a;
    } else if (r.kind == EventKind::kChildFate) {
      fates[{r.race_id, r.child_index}] = r.a;
    }
  }

  // Second pass: gather each sample's pcs in fragment order. Fragments of
  // one sample share (pid, sample_id) and arrive leaf-first.
  struct Stack {
    std::vector<std::uint64_t> pcs;
    std::uint8_t expect = 0;  // total_fragments, for completeness check
    std::uint8_t got = 0;
    std::uint32_t race = 0;
    int child = 0;
    pid_t pid = 0;
  };
  std::map<std::pair<pid_t, std::uint32_t>, Stack> samples;
  for (const Record& r : *loaded) {
    if (r.kind != EventKind::kProfSample) continue;
    Stack& s = samples[{r.pid, altx::obs::prof_sample_id(r.c)}];
    s.expect = altx::obs::prof_total_fragments(r.c);
    ++s.got;
    s.race = r.race_id;
    s.child = r.child_index;
    s.pid = r.pid;
    if (r.a != 0) s.pcs.push_back(r.a);
    if (r.b != 0) s.pcs.push_back(r.b);
  }
  if (samples.empty()) {
    std::fprintf(stderr,
                 "altx-trace: no profile samples in %s (run with ALTX_PROF=1 "
                 "and arms that burn CPU)\n",
                 path.c_str());
    return 1;
  }

  // Fold identical stacks. Collapsed format is root-to-leaf ';'-joined with
  // a trailing count; the fate tag is the root frame, so a flamegraph
  // splits winner / loser_* at the base. Ring overflow can eat fragments —
  // incomplete samples are dropped and counted.
  std::map<std::string, std::uint64_t> folded;
  std::size_t incomplete = 0;
  for (const auto& [key, s] : samples) {
    if (s.got != s.expect || s.pcs.empty()) {
      ++incomplete;
      continue;
    }
    std::string line;
    const auto fit = fates.find({s.race, s.child});
    if (fit == fates.end()) {
      line = "unreaped";
    } else if (static_cast<altx::posix::ChildFate>(fit->second) ==
               altx::posix::ChildFate::kCommitted) {
      line = "winner";
    } else {
      line = std::string("loser_") + fate_name(fit->second);
    }
    const auto bit = exe_base.find(s.pid);
    const std::uint64_t base = bit == exe_base.end() ? 0 : bit->second;
    char frame[48];
    for (auto it = s.pcs.rbegin(); it != s.pcs.rend(); ++it) {  // root first
      // Only PCs plausibly inside the exe's text get the exe+ prefix; libc
      // and vdso frames map far above the load base and print raw.
      if (base != 0 && *it >= base && *it - base < (1ULL << 28)) {
        std::snprintf(frame, sizeof frame, ";exe+0x%llx",
                      static_cast<unsigned long long>(*it - base));
      } else {
        std::snprintf(frame, sizeof frame, ";0x%llx",
                      static_cast<unsigned long long>(*it));
      }
      line += frame;
    }
    ++folded[line];
  }

  std::ofstream file;
  if (!out.empty()) {
    file.open(out);
    if (!file) {
      std::fprintf(stderr, "altx-trace: cannot write %s\n", out.c_str());
      return 1;
    }
  }
  std::ostream& sink = out.empty() ? std::cout : file;
  for (const auto& [stack, count] : folded) {
    sink << stack << " " << count << "\n";
  }
  std::fprintf(stderr,
               "altx-trace: %zu samples, %zu unique stacks, %zu incomplete "
               "(symbolize with: addr2line -fe <exe> <offset>)\n",
               samples.size() - incomplete, folded.size(), incomplete);
  return 0;
}

/// --stitch: merge per-node jsonl traces into one causally-ordered file.
int run_stitch(const std::vector<std::string>& paths, const std::string& out,
               const std::string& format) {
  std::vector<std::vector<Record>> traces;
  traces.reserve(paths.size());
  for (const std::string& p : paths) {
    altx::obs::JsonlStats stats;
    auto loaded = load_records(p, &stats);
    if (!loaded.has_value()) return 1;
    // A stitch over nothing, or over records that all collapse onto the same
    // (node, seq) tie-breaker, silently produces a wrong merge — refuse.
    if (stats.records == 0) {
      std::fprintf(stderr, "altx-trace: %s: empty trace, nothing to stitch\n",
                   p.c_str());
      return 1;
    }
    if (stats.missing_node_seq > 0) {
      std::fprintf(stderr,
                   "altx-trace: %s: schema-v1 trace (%zu of %zu records lack "
                   "node/seq); re-export it with a current writer before "
                   "stitching\n",
                   p.c_str(), stats.missing_node_seq, stats.records);
      return 1;
    }
    warn_if_overflowed(p, *loaded);
    traces.push_back(std::move(*loaded));
  }
  // Per-process rings all default to node 0, so two standalone traces
  // (client + daemon) would collide on the (node, seq) tie-breaker and the
  // cross-node census below would see a single node. Remap any input whose
  // node ids collide with an earlier input into a fresh namespace;
  // genuinely distinct node sets (a sim trace) pass through untouched.
  {
    std::set<std::uint32_t> used;
    std::uint32_t next_free = 0;
    for (std::size_t i = 0; i < traces.size(); ++i) {
      std::set<std::uint32_t> mine;
      for (const Record& r : traces[i]) mine.insert(r.node_id);
      bool collide = false;
      for (const std::uint32_t n : mine) collide = collide || used.count(n) > 0;
      if (collide) {
        std::map<std::uint32_t, std::uint32_t> remap;
        for (const std::uint32_t n : mine) {
          while (used.count(next_free) > 0) ++next_free;
          remap[n] = next_free;
          used.insert(next_free);
        }
        for (Record& r : traces[i]) r.node_id = remap[r.node_id];
        std::fprintf(stderr,
                     "altx-trace: %s: node ids collide with an earlier "
                     "input; remapped onto %zu fresh node id(s)\n",
                     paths[i].c_str(), remap.size());
      } else {
        used.insert(mine.begin(), mine.end());
      }
    }
  }
  const std::vector<Record> merged = altx::obs::stitch_records(traces);
  std::ofstream file;
  if (!out.empty()) {
    file.open(out);
    if (!file) {
      std::fprintf(stderr, "altx-trace: cannot write %s\n", out.c_str());
      return 1;
    }
  }
  std::ostream& sink = out.empty() ? std::cout : file;
  try {
    altx::obs::write_trace(merged, sink, format);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altx-trace: %s\n", e.what());
    return 1;
  }
  // Cross-process census: a trace id that appears on more than one node is
  // a job that actually crossed the socket hop with its identity intact —
  // the number CI asserts on.
  std::map<std::uint64_t, std::set<std::uint32_t>> trace_nodes;
  for (const Record& r : merged) {
    if (r.trace_id != 0) trace_nodes[r.trace_id].insert(r.node_id);
  }
  std::size_t cross_node = 0;
  for (const auto& [id, nodes] : trace_nodes) {
    if (nodes.size() > 1) ++cross_node;
  }
  std::fprintf(stderr,
               "altx-trace: stitched %zu records from %zu traces; "
               "%zu trace ids (%zu spanning multiple nodes)\n",
               merged.size(), traces.size(), trace_nodes.size(), cross_node);
  return 0;
}

int run(const std::string& path, bool summary_only,
        std::optional<std::uint32_t> only_race) {
  const auto loaded = load_records(path);
  if (!loaded.has_value()) return 1;
  const std::vector<Record>& records = *loaded;
  warn_if_overflowed(path, records);

  std::map<std::uint32_t, RaceView> races;
  for (const Record& r : records) {
    RaceView& v = races[r.race_id];
    v.id = r.race_id;
    v.events.push_back(r);
  }
  for (auto& [id, v] : races) {
    std::stable_sort(v.events.begin(), v.events.end(),
                     [](const Record& x, const Record& y) {
                       return x.t_ns < y.t_ns;
                     });
  }

  std::printf("%s: %zu records, %zu blocks\n\n", path.c_str(), records.size(),
              races.size());

  if (only_race.has_value()) {
    const auto it = races.find(*only_race);
    if (it == races.end()) {
      std::fprintf(stderr, "altx-trace: no race %u in %s\n", *only_race,
                   path.c_str());
      return 1;
    }
    print_race(it->second);
    return 0;
  }

  if (!summary_only) {
    for (const auto& [id, v] : races) print_race(v);
  }

  // Aggregates across the whole file.
  Summary fork_ms;
  Summary commit_ms;
  Summary decide_ms;
  std::map<std::uint64_t, int> fate_counts;
  int won = 0;
  int lost = 0;
  for (const auto& [id, v] : races) {
    for (const Record& r : v.events) {
      if (r.kind == EventKind::kFork) {
        fork_ms.add(static_cast<double>(r.b) / 1'000'000.0);
      } else if (r.kind == EventKind::kChildFate) {
        ++fate_counts[r.a];
      } else if (r.kind == EventKind::kRaceDecided) {
        const double ms =
            static_cast<double>(r.t_ns - v.t0()) / 1'000'000.0;
        decide_ms.add(ms);
        if (r.b != 0) {
          ++won;
          commit_ms.add(ms);
        } else {
          ++lost;
        }
      }
    }
  }
  std::printf("aggregates\n");
  std::printf("  blocks decided: %d won, %d without a winner\n", won, lost);
  if (!fate_counts.empty()) {
    std::printf("  child fates:");
    for (const auto& [fate, count] : fate_counts) {
      std::printf(" %s=%d", fate_name(fate), count);
    }
    std::printf("\n");
  }
  print_ms_stats("fork latency", fork_ms);
  print_ms_stats("commit latency", commit_ms);
  print_ms_stats("decide latency", decide_ms);
  return 0;
}

}  // namespace

namespace {

constexpr char kUsage[] =
    "usage: altx-trace [--summary] [--race N] [--efficiency] "
    "[--critical-path] <trace.jsonl>\n"
    "       altx-trace --flame [-o out.folded] <trace.jsonl>\n"
    "       altx-trace --stitch a.jsonl b.jsonl ... [-o out] "
    "[--format chrome|jsonl]\n";

}  // namespace

int main(int argc, char** argv) {
  bool summary_only = false;
  bool efficiency = false;
  bool critical_path = false;
  bool flame = false;
  bool stitch = false;
  std::optional<std::uint32_t> only_race;
  std::string out;
  std::string format = "chrome";  // --stitch exists to feed Perfetto
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--summary") {
      summary_only = true;
    } else if (arg == "--efficiency") {
      efficiency = true;
    } else if (arg == "--critical-path") {
      critical_path = true;
    } else if (arg == "--flame") {
      flame = true;
    } else if (arg == "--stitch") {
      stitch = true;
    } else if (arg == "--race" && i + 1 < argc) {
      only_race = static_cast<std::uint32_t>(std::atoll(argv[++i]));
    } else if ((arg == "-o" || arg == "--out") && i + 1 < argc) {
      out = argv[++i];
    } else if (arg == "--format" && i + 1 < argc) {
      format = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      std::printf("%s", kUsage);
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      paths.push_back(arg);
    } else {
      std::fprintf(stderr, "altx-trace: unknown option %s\n", arg.c_str());
      return 1;
    }
  }
  if (paths.empty()) {
    std::fprintf(stderr, "%s", kUsage);
    return 1;
  }
  if (stitch) return run_stitch(paths, out, format);
  if (paths.size() != 1) {
    std::fprintf(stderr, "altx-trace: one input unless --stitch\n%s", kUsage);
    return 1;
  }
  if (efficiency) return run_efficiency(paths.front());
  if (critical_path) return run_critical_path(paths.front());
  if (flame) return run_flame(paths.front(), out);
  return run(paths.front(), summary_only, only_race);
}
