// altx-top: live view of the alternative blocks of a running process.
//
// The traced process exports its ring as a file (ALTX_TRACE_RING=/tmp/r);
// altx-top maps the same pages read-only and re-renders every interval:
// which blocks are in flight, which attempt they are on, how many
// alternatives each spawned, and the fates of the children reaped so far.
// No cooperation from the writer beyond the mapping — the reader skips
// slots still being written, so it is safe to watch mid-race.
//
//   ALTX_TRACE_RING=/tmp/ring ./your_program &
//   altx-top /tmp/ring             # refresh until interrupted
//   altx-top --once /tmp/ring      # one frame (scripts, tests)
//
// Remote attach: --connect polls a running altxd's kStats counters over its
// socket instead of mapping a ring — for daemons on hosts where the ring
// file is not reachable (or was never created).
//
//   altx-top --connect /tmp/altx.sock
//   altx-top --once --connect /tmp/altx.sock
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "obs/event.hpp"
#include "obs/phase.hpp"
#include "obs/ring.hpp"
#include "posix/alt_group.hpp"
#include "server/client.hpp"

namespace {

using altx::obs::EventKind;
using altx::obs::Record;

struct RaceRow {
  std::uint32_t id = 0;
  std::uint32_t attempt = 0;   // highest attempt ordinal seen
  std::uint64_t alts = 0;      // from kRaceBegin / kAwaitBegin
  std::uint64_t first_ns = 0;
  std::uint64_t last_ns = 0;
  bool decided = false;
  std::uint64_t verdict = 0;   // kRaceDecided a (WaitVerdict)
  std::uint64_t winner = 0;    // kRaceDecided b
  std::map<int, std::uint64_t> fates;  // child -> latest ChildFate
};

const char* fate_name(std::uint64_t fate) {
  return altx::posix::to_string(static_cast<altx::posix::ChildFate>(fate));
}

const char* verdict_name(std::uint64_t v) {
  return altx::posix::to_string(static_cast<altx::posix::WaitVerdict>(v));
}

// Governor activity folded from the kGov* event stream. The panel shows the
// most recent effective budget plus lifetime counters — enough to see live
// whether admission is queueing, shedding, or degrading blocks.
struct GovPanel {
  bool active = false;          // any kGov* record seen
  std::uint64_t effective = 0;  // latest kGovBudget a (0 = never adjusted)
  std::uint64_t base = 0;       // latest kGovBudget b
  std::uint64_t stall_x100 = 0; // latest kGovBudget c (PSI some avg10 ×100)
  std::uint64_t admits = 0;
  std::uint64_t waits = 0;
  std::uint64_t denials = 0;
  std::uint64_t overdrafts = 0;
  std::uint64_t degradations = 0;
  std::uint64_t kills_wall = 0;
  std::uint64_t kills_cpu = 0;
  std::uint64_t kills_shed = 0;
  std::uint64_t term_escalations = 0;  // kGovKill stage 1 (SIGTERM→SIGKILL)
};

GovPanel fold_governor(const std::vector<Record>& records) {
  GovPanel g;
  // A graced kill emits stage 0 (SIGTERM) and, if the arm ignores it,
  // stage 1 again at escalation; a straight kill emits only stage 1. Count
  // the kill at its first event per pid, and the stage-1 repeat of a
  // SIGTERMed pid as an escalation.
  std::set<std::uint64_t> termed;
  for (const Record& r : records) {
    switch (r.kind) {
      case EventKind::kGovAdmitWait:
        g.active = true;
        ++g.waits;
        break;
      case EventKind::kGovAdmit:
        g.active = true;
        ++g.admits;
        break;
      case EventKind::kGovDeny:
        g.active = true;
        ++g.denials;
        break;
      case EventKind::kGovOverdraft:
        g.active = true;
        ++g.overdrafts;
        break;
      case EventKind::kGovDegrade:
        g.active = true;
        ++g.degradations;
        break;
      case EventKind::kGovBudget:
        g.active = true;
        g.effective = r.a;
        g.base = r.b;
        g.stall_x100 = r.c;
        break;
      case EventKind::kGovKill:
        g.active = true;
        if (r.c == 0) {
          termed.insert(r.a);
        } else if (termed.count(r.a) != 0) {
          ++g.term_escalations;
          break;  // the kill itself was counted at its SIGTERM
        }
        if (r.b == 0) {
          ++g.kills_wall;
        } else if (r.b == 1) {
          ++g.kills_cpu;
        } else {
          ++g.kills_shed;
        }
        break;
      default:
        break;
    }
  }
  return g;
}

// Phase-latency panel: count / mean / p95 per parent-side phase, folded
// from kPhaseEnd records (self-contained — `b` is the span duration). The
// p95 is nearest-rank over the sorted samples; a live view never holds
// enough spans for the sort to matter.
struct PhasePanel {
  bool active = false;
  std::vector<std::uint64_t> ns[altx::obs::kPhaseCount];
};

PhasePanel fold_phases(const std::vector<Record>& records) {
  PhasePanel p;
  for (const Record& r : records) {
    if (r.kind != EventKind::kPhaseEnd || r.child_index != 0) continue;
    if (r.a >= static_cast<std::uint64_t>(altx::obs::kPhaseCount)) continue;
    p.active = true;
    p.ns[r.a].push_back(r.b);
  }
  return p;
}

void render_phases(PhasePanel& p) {
  if (!p.active) return;
  std::printf("phase latency (parent side)\n");
  std::printf("  %-14s %7s %10s %10s\n", "phase", "spans", "mean us",
              "p95 us");
  for (int i = 1; i < altx::obs::kPhaseCount; ++i) {
    std::vector<std::uint64_t>& v = p.ns[i];
    if (v.empty()) continue;
    std::sort(v.begin(), v.end());
    std::uint64_t sum = 0;
    for (const std::uint64_t d : v) sum += d;
    const std::size_t rank =
        std::min(v.size() - 1, v.size() * 95 / 100);
    std::printf("  %-14s %7zu %10.1f %10.1f\n",
                to_string(static_cast<altx::obs::Phase>(i)), v.size(),
                static_cast<double>(sum) / static_cast<double>(v.size()) /
                    1000.0,
                static_cast<double>(v[rank]) / 1000.0);
  }
  std::printf("\n");
}

std::map<std::uint32_t, RaceRow> fold(const std::vector<Record>& records) {
  std::map<std::uint32_t, RaceRow> races;
  for (const Record& r : records) {
    RaceRow& row = races[r.race_id];
    row.id = r.race_id;
    row.attempt = std::max(row.attempt, r.attempt);
    if (row.first_ns == 0 || r.t_ns < row.first_ns) row.first_ns = r.t_ns;
    row.last_ns = std::max(row.last_ns, r.t_ns);
    switch (r.kind) {
      case EventKind::kRaceBegin:
      case EventKind::kAwaitBegin:
        row.alts = r.a;
        break;
      case EventKind::kChildFate:
        row.fates[r.child_index] = r.a;
        break;
      case EventKind::kRaceDecided:
        row.decided = true;
        row.verdict = r.a;
        row.winner = r.b;
        break;
      case EventKind::kDistDecided:
      case EventKind::kAwaitDecided:
        row.decided = true;
        row.winner = r.b;
        break;
      default:
        break;
    }
  }
  return races;
}

std::string fate_summary(const RaceRow& row) {
  std::map<std::uint64_t, int> counts;
  for (const auto& [child, fate] : row.fates) ++counts[fate];
  std::string s;
  for (const auto& [fate, n] : counts) {
    if (!s.empty()) s += ' ';
    s += std::to_string(n);
    s += ' ';
    s += fate_name(fate);
  }
  return s;
}

void render(const altx::obs::TraceRingReader& reader, bool clear) {
  const std::vector<Record> records = reader.snapshot();
  const auto races = fold(records);
  int in_flight = 0;
  for (const auto& [id, row] : races) {
    if (!row.decided) ++in_flight;
  }
  if (clear) std::printf("\033[H\033[2J");
  // Identify the attach target: with several daemons each exporting a ring,
  // the pid + uptime line is what tells the panels apart.
  if (reader.creator_pid() != 0) {
    const std::uint32_t pid = reader.creator_pid();
    const bool alive = ::kill(static_cast<pid_t>(pid), 0) == 0 ||
                       errno == EPERM;
    double up_s = 0.0;
    timespec ts{};
    if (reader.created_unix_ns() != 0 &&
        ::clock_gettime(CLOCK_REALTIME, &ts) == 0) {
      const std::uint64_t now =
          static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
          static_cast<std::uint64_t>(ts.tv_nsec);
      if (now > reader.created_unix_ns()) {
        up_s = static_cast<double>(now - reader.created_unix_ns()) / 1e9;
      }
    }
    std::printf("writer pid %u (%s)  ring up %.1fs\n", pid,
                alive ? "alive" : "gone", up_s);
  }
  std::printf("altx-top — %llu records (%zu slot capacity, %llu dropped), "
              "%zu blocks, %d in flight\n\n",
              static_cast<unsigned long long>(reader.published()),
              reader.capacity(),
              static_cast<unsigned long long>(reader.dropped()),
              races.size(), in_flight);
  const GovPanel gov = fold_governor(records);
  if (gov.active) {
    std::printf("governor  budget %llu/%llu  stall %.2f%%  admits %llu "
                "(waited %llu)  denied %llu  overdraft %llu  degraded %llu\n",
                static_cast<unsigned long long>(gov.effective),
                static_cast<unsigned long long>(gov.base),
                static_cast<double>(gov.stall_x100) / 100.0,
                static_cast<unsigned long long>(gov.admits),
                static_cast<unsigned long long>(gov.waits),
                static_cast<unsigned long long>(gov.denials),
                static_cast<unsigned long long>(gov.overdrafts),
                static_cast<unsigned long long>(gov.degradations));
    std::printf("          kills: wall %llu  cpu %llu  shed %llu  "
                "(term→kill escalations %llu)\n\n",
                static_cast<unsigned long long>(gov.kills_wall),
                static_cast<unsigned long long>(gov.kills_cpu),
                static_cast<unsigned long long>(gov.kills_shed),
                static_cast<unsigned long long>(gov.term_escalations));
  }
  PhasePanel phases = fold_phases(records);
  render_phases(phases);
  std::printf("%-8s %-8s %-5s %-10s %-12s %s\n", "race", "attempt", "alts",
              "age ms", "state", "children");
  // Newest blocks first; a screenful is plenty for a live view.
  std::vector<const RaceRow*> rows;
  rows.reserve(races.size());
  for (const auto& [id, row] : races) rows.push_back(&row);
  std::sort(rows.begin(), rows.end(), [](const RaceRow* a, const RaceRow* b) {
    return a->last_ns > b->last_ns;
  });
  const std::uint64_t now_ns =
      rows.empty() ? 0 : rows.front()->last_ns;  // ring time, not wall time
  int shown = 0;
  for (const RaceRow* row : rows) {
    if (++shown > 30) {
      std::printf("  ... %zu more\n", rows.size() - 30);
      break;
    }
    std::string state = "in flight";
    if (row->decided) {
      state = row->winner != 0 ? "won #" + std::to_string(row->winner)
                               : verdict_name(row->verdict);
    }
    std::printf("%-8u %-8u %-5llu %-10.1f %-12s %s\n", row->id, row->attempt,
                static_cast<unsigned long long>(row->alts),
                static_cast<double>(now_ns - row->last_ns) / 1'000'000.0,
                state.c_str(), fate_summary(*row).c_str());
  }
}

void render_remote(altx::server::Client& client, bool clear) {
  const altx::server::WireStats s = client.stats();
  if (clear) std::printf("\033[H\033[2J");
  std::printf("altx-top (remote) — %u clients, %u queued, %u running, "
              "%u/%u workers busy\n\n",
              s.clients, s.queued, s.running, s.workers_busy,
              s.workers_idle + s.workers_busy);
  std::printf("  accepted   %-10llu completed %-10llu denied %llu\n",
              static_cast<unsigned long long>(s.accepted),
              static_cast<unsigned long long>(s.completed),
              static_cast<unsigned long long>(s.denied));
  std::printf("  canceled   %-10llu inflight-hw %-8llu tokens-reclaimed "
              "%llu\n",
              static_cast<unsigned long long>(s.canceled),
              static_cast<unsigned long long>(s.inflight_hw),
              static_cast<unsigned long long>(s.tokens_reclaimed));
  std::printf("  spawns     %-10llu respawns  %llu\n",
              static_cast<unsigned long long>(s.worker_spawns),
              static_cast<unsigned long long>(s.worker_respawns));
}

}  // namespace

int main(int argc, char** argv) {
  bool once = false;
  bool connect = false;
  int interval_ms = 500;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--once") {
      once = true;
    } else if (arg == "--connect") {
      connect = true;
    } else if (arg == "--interval" && i + 1 < argc) {
      interval_ms = std::max(50, std::atoi(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::printf("usage: altx-top [--once] [--interval MS] <ring-file>\n"
                  "       altx-top [--once] --connect <daemon-socket>\n"
                  "       (ring mode: the traced process must run with "
                  "ALTX_TRACE_RING=<ring-file>)\n");
      return 0;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::fprintf(stderr, "altx-top: unknown option %s\n", arg.c_str());
      return 1;
    }
  }
  if (path.empty()) {
    std::fprintf(stderr, "usage: altx-top [--once] [--interval MS] "
                         "[--connect] <ring-file|daemon-socket>\n");
    return 1;
  }
  if (connect) {
    try {
      altx::server::Client client =
          altx::server::Client::connect_unix(path);
      if (once) {
        render_remote(client, /*clear=*/false);
        return 0;
      }
      while (true) {
        render_remote(client, /*clear=*/true);
        ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
      }
    } catch (const std::exception& e) {
      std::fprintf(stderr, "altx-top: %s\n", e.what());
      return 1;
    }
  }
  try {
    altx::obs::TraceRingReader reader(path);
    if (once) {
      render(reader, /*clear=*/false);
      return 0;
    }
    while (true) {
      render(reader, /*clear=*/true);
      ::usleep(static_cast<useconds_t>(interval_ms) * 1000);
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altx-top: %s\n", e.what());
    return 1;
  }
}
