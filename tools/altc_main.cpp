// altc — command-line front end of the ALTBEGIN preprocessor.
//
//   altc input.alt.cpp output.cpp
//
// Reads a C++ source containing ALTBEGIN blocks (see src/altc/translate.hpp)
// and writes the translated C++.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>

#include "altc/translate.hpp"

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: altc <input> <output>\n");
    return 2;
  }
  std::ifstream in(argv[1]);
  if (!in) {
    std::fprintf(stderr, "altc: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    const std::string out_text = altx::altc::translate(buf.str());
    std::ofstream out(argv[2]);
    if (!out) {
      std::fprintf(stderr, "altc: cannot write %s\n", argv[2]);
      return 1;
    }
    out << out_text;
  } catch (const altx::altc::TranslateError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }
  return 0;
}
