// altx-check: randomized semantics-equivalence checking.
//
//   altx-check --trials 1000 --seed 42                 # both backends
//   altx-check --trials 200 --backend sim              # sim only
//   altx-check --trials 500 --faults --out /tmp/cx     # with fault plans
//   altx-check --replay /tmp/cx/counterexample-....altcheck
//
// Each trial generates a random alternative-block program and a random
// schedule from the seed, executes it on the chosen backend, and checks the
// paper's invariants (exactly-one-commit, loser side effects invisible,
// predicate consistency, and observation ∈ sequential-oracle outcomes).
// The first violation is shrunk to a minimal program and written as a
// replayable .altcheck file. Exit status: 0 all trials passed, 1 violation
// found (or a replay reproduced), 2 usage error.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "check/checker.hpp"
#include "check/shrink.hpp"
#include "common/error.hpp"

namespace {

constexpr const char* kUsage =
    "usage: altx-check [--trials N] [--seed S] [--backend sim|posix|both]\n"
    "                  [--faults] [--perturb-governor] [--perturb-predictor]\n"
    "                  [--out DIR]\n"
    "                  [--max-blocks N] [--max-alts N] [--quiet]\n"
    "       altx-check --replay FILE.altcheck\n";

struct Args {
  std::uint64_t trials = 1000;
  std::uint64_t seed = 42;
  bool sim = true;
  bool posix = true;
  bool faults = false;
  bool governor = false;
  bool predictor = false;
  bool quiet = false;
  std::string out_dir = ".";
  std::string replay;
  altx::check::GenConfig gen;
};

std::uint64_t parse_u64_arg(const char* flag, const char* value) {
  try {
    return std::stoull(value);
  } catch (const std::exception&) {
    throw altx::UsageError(std::string(flag) + ": bad number '" + value + "'");
  }
}

Args parse_args(int argc, char** argv) {
  Args a;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) throw altx::UsageError(arg + " needs a value");
      return argv[++i];
    };
    if (arg == "--trials") {
      a.trials = parse_u64_arg("--trials", next());
    } else if (arg == "--seed") {
      a.seed = parse_u64_arg("--seed", next());
    } else if (arg == "--backend") {
      const std::string b = next();
      a.sim = b == "sim" || b == "both";
      a.posix = b == "posix" || b == "both";
      if (!a.sim && !a.posix) {
        throw altx::UsageError("--backend: expected sim, posix, or both");
      }
    } else if (arg == "--faults") {
      a.faults = true;
    } else if (arg == "--perturb-governor") {
      a.governor = true;
    } else if (arg == "--perturb-predictor") {
      a.predictor = true;
    } else if (arg == "--out") {
      a.out_dir = next();
    } else if (arg == "--max-blocks") {
      a.gen.max_blocks = static_cast<std::uint32_t>(parse_u64_arg("--max-blocks", next()));
    } else if (arg == "--max-alts") {
      a.gen.max_alts = static_cast<std::uint32_t>(parse_u64_arg("--max-alts", next()));
    } else if (arg == "--quiet") {
      a.quiet = true;
    } else if (arg == "--replay") {
      a.replay = next();
    } else if (arg == "--help" || arg == "-h") {
      std::fputs(kUsage, stdout);
      std::exit(0);
    } else {
      throw altx::UsageError("unknown argument '" + arg + "'");
    }
  }
  return a;
}

int run_replay(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "altx-check: cannot open %s\n", path.c_str());
    return 2;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const altx::check::ReproCase repro = altx::check::parse_repro(buf.str());

  altx::check::CheckCase c;
  c.program = repro.program;
  c.backend = repro.backend;
  c.faulty = repro.faulty;
  c.governed = repro.governed;
  c.predicted = repro.predicted;
  c.schedule_seed = repro.schedule_seed;

  std::printf("replaying %s (backend %s%s%s%s, schedule_seed %llu, invariant %s)\n",
              path.c_str(), to_string(repro.backend), repro.faulty ? ", faulty" : "",
              repro.governed ? ", governed" : "",
              repro.predicted ? ", predicted" : "",
              static_cast<unsigned long long>(repro.schedule_seed),
              repro.invariant.empty() ? "?" : repro.invariant.c_str());
  // A posix schedule is only seed-*guided*; give the race a few runs to
  // land on the failing interleaving again.
  for (int attempt = 0; attempt < 3; ++attempt) {
    const altx::check::CaseResult r = altx::check::run_case(c);
    if (r.violation.has_value()) {
      std::printf("reproduced: %s violated\n", r.violation->c_str());
      if (!r.detail.empty()) std::printf("%s\n", r.detail.c_str());
      return 1;
    }
  }
  std::printf("did not reproduce in 3 runs\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args a;
  try {
    a = parse_args(argc, argv);
    if (!a.replay.empty()) return run_replay(a.replay);

    altx::check::TrialStats stats;
    const auto cx =
        altx::check::run_trials(a.trials, a.seed, a.sim, a.posix, a.faults,
                                a.governor, a.gen, &stats, a.predictor);
    if (!a.quiet) {
      std::printf("altx-check: %llu trials (sim %llu, posix %llu, faulty %llu, "
                  "governed %llu, predicted %llu), %llu inconclusive\n",
                  static_cast<unsigned long long>(stats.trials),
                  static_cast<unsigned long long>(stats.sim_trials),
                  static_cast<unsigned long long>(stats.posix_trials),
                  static_cast<unsigned long long>(stats.faulty_trials),
                  static_cast<unsigned long long>(stats.governor_trials),
                  static_cast<unsigned long long>(stats.predicted_trials),
                  static_cast<unsigned long long>(stats.inconclusive));
      std::printf("altx-check: %llu distinct interleavings, %llu oracle outcomes "
                  "checked\n",
                  static_cast<unsigned long long>(stats.distinct_interleavings),
                  static_cast<unsigned long long>(stats.oracle_outcomes_total));
    }
    if (!cx.has_value()) {
      if (!a.quiet) std::printf("altx-check: all invariants held\n");
      return 0;
    }

    std::printf("altx-check: VIOLATION at trial %llu: %s\n",
                static_cast<unsigned long long>(cx->trial), cx->invariant.c_str());
    if (!cx->detail.empty()) std::printf("%s\n", cx->detail.c_str());
    std::printf("altx-check: shrinking...\n");
    const altx::check::ShrinkResult sr = altx::check::shrink(cx->found);

    altx::check::ReproCase repro;
    repro.program = sr.reduced.program;
    repro.backend = sr.reduced.backend;
    repro.faulty = sr.reduced.faulty;
    repro.governed = sr.reduced.governed;
    repro.predicted = sr.reduced.predicted;
    repro.gen_seed = cx->gen_seed;
    repro.schedule_seed = sr.reduced.schedule_seed;
    repro.invariant = sr.invariant.empty() ? cx->invariant : sr.invariant;

    const std::string file = a.out_dir + "/counterexample-" +
                             std::to_string(a.seed) + "-" +
                             std::to_string(cx->trial) + ".altcheck";
    std::ofstream out(file);
    if (!out) {
      std::fprintf(stderr, "altx-check: cannot write %s\n", file.c_str());
      std::printf("%s", serialize(repro).c_str());
      return 1;
    }
    out << serialize(repro);
    std::printf("altx-check: shrunk to %zu block(s) / %zu alternative(s) "
                "(%d runs); wrote %s\n",
                count_blocks(repro.program), count_alternatives(repro.program),
                sr.case_runs, file.c_str());
    std::printf("altx-check: replay with: altx-check --replay %s\n", file.c_str());
    return 1;
  } catch (const altx::UsageError& e) {
    std::fprintf(stderr, "altx-check: %s\n%s", e.what(), kUsage);
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altx-check: %s\n", e.what());
    return 2;
  }
}
