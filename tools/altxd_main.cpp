// altxd — the long-lived speculation daemon.
//
//   altxd --socket /tmp/altx.sock [--tcp PORT] [--workers N]
//         [--quota N] [--queue N] [--retry-after MS] [--gov-tokens N]
//         [--heap-pages N] [--ring PATH [--ring-cap N]]
//         [--trace-out PATH [--format jsonl|chrome]]
//         [--metrics-addr HOST:PORT]
//   altxd stats --socket /tmp/altx.sock    # one-shot counters (kStats)
//
// Clients connect with server::Client (src/server/client.hpp) or redirect
// existing race<T>() call sites via RaceOptions::daemon_socket. With
// --ring, `altx-top <ring>` is the live ops console and
// `altx-trace --critical-path <exported trace>` attributes queue wait.
// SIGTERM/SIGINT shut down gracefully: every queued job is answered, every
// in-flight cohort is reaped, no speculative child survives the daemon.
#include <signal.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/trace.hpp"
#include "server/client.hpp"
#include "server/registry.hpp"
#include "server/server.hpp"

namespace {

altx::server::Server* g_server = nullptr;

void on_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --socket PATH [options]\n"
               "  --socket PATH      Unix-domain listening socket (required)\n"
               "  --tcp PORT         also listen on 127.0.0.1:PORT (-1 = ephemeral)\n"
               "  --workers N        pre-warmed worker pool size (default 4)\n"
               "  --quota N          per-client concurrent running jobs (default 8)\n"
               "  --queue N          per-client queue cap before RETRY-AFTER (default 64)\n"
               "  --retry-after MS   backoff hint in denials (default 50)\n"
               "  --gov-tokens N     governor token pool shared with workers (default off)\n"
               "  --heap-pages N     worker arena pages (default 64)\n"
               "  --ring PATH        file-backed trace ring for altx-top\n"
               "  --ring-cap N       ring capacity in records (default 65536)\n"
               "  --trace-out PATH   export the trace here at exit\n"
               "  --format FMT       trace export format: jsonl|chrome (default jsonl)\n"
               "  --metrics-addr A   Prometheus endpoint, \"PORT\" or \"HOST:PORT\"\n"
               "                     (host defaults to 127.0.0.1; port 0 = ephemeral)\n"
               "subcommands:\n"
               "  stats --socket PATH   one-shot daemon counters over kStats\n",
               argv0);
}

int to_int(const char* s, const char* what) {
  char* end = nullptr;
  const long v = std::strtol(s, &end, 10);
  if (end == s || *end != '\0') {
    std::fprintf(stderr, "altxd: bad %s: %s\n", what, s);
    std::exit(2);
  }
  return static_cast<int>(v);
}

/// `altxd stats --socket PATH`: one kStats round trip, printed and done.
/// The same counters the metrics endpoint exposes, for hosts without curl
/// or when the daemon runs without --metrics-addr.
int run_stats(int argc, char** argv) {
  std::string socket_path;
  std::string tcp_host;
  int tcp_port = 0;
  for (int i = 2; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (a == "--tcp" && i + 1 < argc) {
      tcp_host = "127.0.0.1";
      tcp_port = to_int(argv[++i], "--tcp");
    } else {
      std::fprintf(stderr, "altxd stats: unknown option %s\n", a.c_str());
      return 2;
    }
  }
  if (socket_path.empty() && tcp_port == 0) {
    std::fprintf(stderr,
                 "usage: altxd stats --socket PATH | --tcp PORT\n");
    return 2;
  }
  try {
    altx::server::Client client =
        tcp_port != 0
            ? altx::server::Client::connect_tcp(tcp_host, tcp_port)
            : altx::server::Client::connect_unix(socket_path);
    const altx::server::WireStats s = client.stats();
    std::printf("accepted           %llu\n"
                "completed          %llu\n"
                "denied             %llu\n"
                "canceled           %llu\n"
                "worker_spawns      %llu\n"
                "worker_respawns    %llu\n"
                "tokens_reclaimed   %llu\n"
                "inflight_hw        %llu\n"
                "queued             %u\n"
                "running            %u\n"
                "clients            %u\n"
                "workers_idle       %u\n"
                "workers_busy       %u\n",
                static_cast<unsigned long long>(s.accepted),
                static_cast<unsigned long long>(s.completed),
                static_cast<unsigned long long>(s.denied),
                static_cast<unsigned long long>(s.canceled),
                static_cast<unsigned long long>(s.worker_spawns),
                static_cast<unsigned long long>(s.worker_respawns),
                static_cast<unsigned long long>(s.tokens_reclaimed),
                static_cast<unsigned long long>(s.inflight_hw), s.queued,
                s.running, s.clients, s.workers_idle, s.workers_busy);
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altxd stats: %s\n", e.what());
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "stats") == 0) {
    return run_stats(argc, argv);
  }
  altx::server::ServerConfig cfg;
  std::string ring_path;
  std::size_t ring_cap = 1 << 16;
  std::string trace_out;
  std::string trace_format = "jsonl";

  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "altxd: %s needs a value\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--socket") {
      cfg.socket_path = next();
    } else if (a == "--tcp") {
      cfg.tcp_port = to_int(next(), "--tcp");
    } else if (a == "--workers") {
      cfg.workers = to_int(next(), "--workers");
    } else if (a == "--quota") {
      cfg.per_client_running = to_int(next(), "--quota");
    } else if (a == "--queue") {
      cfg.per_client_queue = to_int(next(), "--queue");
    } else if (a == "--retry-after") {
      cfg.retry_after_ms =
          static_cast<std::uint32_t>(to_int(next(), "--retry-after"));
    } else if (a == "--gov-tokens") {
      cfg.gov_tokens = to_int(next(), "--gov-tokens");
    } else if (a == "--heap-pages") {
      cfg.heap_pages =
          static_cast<std::size_t>(to_int(next(), "--heap-pages"));
    } else if (a == "--ring") {
      ring_path = next();
    } else if (a == "--ring-cap") {
      ring_cap = static_cast<std::size_t>(to_int(next(), "--ring-cap"));
    } else if (a == "--trace-out") {
      trace_out = next();
    } else if (a == "--format") {
      trace_format = next();
    } else if (a == "--metrics-addr") {
      cfg.metrics_addr = next();
    } else if (a == "--help" || a == "-h") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "altxd: unknown option %s\n", a.c_str());
      usage(argv[0]);
      return 2;
    }
  }
  if (cfg.socket_path.empty()) {
    usage(argv[0]);
    return 2;
  }

  try {
    // The ring must exist before Server::start() forks the zygote so every
    // worker (and every arm) inherits the mapping and emits into it.
    if (!ring_path.empty()) {
      if (!altx::obs::attach_ring_file(ring_path, ring_cap)) {
        std::fprintf(stderr,
                     "altxd: a trace ring already exists (ALTX_TRACE_RING?); "
                     "--ring %s ignored\n",
                     ring_path.c_str());
      }
    }
    if (!trace_out.empty()) {
      altx::obs::set_export_on_exit(trace_out, trace_format);
    }

    altx::server::register_builtin_handlers(
        altx::server::HandlerRegistry::global());

    const std::string socket_path = cfg.socket_path;
    const int workers = cfg.workers;
    const int quota = cfg.per_client_running;
    const int queue = cfg.per_client_queue;
    const int gov_tokens = cfg.gov_tokens;

    altx::server::Server server(std::move(cfg));
    server.start();
    g_server = &server;
    ::signal(SIGTERM, on_signal);
    ::signal(SIGINT, on_signal);

    std::printf("altxd: pid %d listening on %s", ::getpid(),
                socket_path.c_str());
    if (server.tcp_port() != 0) {
      std::printf(" and 127.0.0.1:%d", server.tcp_port());
    }
    std::printf(" (%d workers, quota %d, queue %d", workers, quota, queue);
    if (gov_tokens > 0) std::printf(", %d governor tokens", gov_tokens);
    std::printf(")\n");
    if (!ring_path.empty()) {
      std::printf("altxd: trace ring at %s (attach with: altx-top %s)\n",
                  ring_path.c_str(), ring_path.c_str());
    }
    if (server.metrics_port() != 0) {
      std::printf("altxd: metrics at http://127.0.0.1:%d/metrics\n",
                  server.metrics_port());
    }
    std::fflush(stdout);

    server.run();

    const altx::server::ServerStats s = server.stats();
    std::printf(
        "altxd: shut down — %llu accepted, %llu completed, %llu denied, "
        "%llu canceled, %llu worker spawns (%llu respawns), %llu tokens "
        "reclaimed, in-flight high water %llu\n",
        static_cast<unsigned long long>(s.accepted),
        static_cast<unsigned long long>(s.completed),
        static_cast<unsigned long long>(s.denied),
        static_cast<unsigned long long>(s.canceled),
        static_cast<unsigned long long>(s.worker_spawns),
        static_cast<unsigned long long>(s.worker_respawns),
        static_cast<unsigned long long>(s.tokens_reclaimed),
        static_cast<unsigned long long>(s.inflight_hw));
    g_server = nullptr;
    return 0;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "altxd: %s\n", e.what());
    return 1;
  }
}
