// E17: where do the microseconds go, and what does finding out cost?
//
// Three questions, one bench. First, the attribution claim: the phase spans
// (obs/phase.hpp) must account for >= 95% of every decided race's wall time
// — if they don't, the critical-path view is decoration, not measurement.
// Second, the floor decomposition: tracing a minimal two-alternative fork
// race costs ~20 us over the untraced baseline; the per-phase table says
// which phases that floor actually lives in (fork and arm_run, historically)
// instead of leaving it a single opaque number. Third, the profiler bill:
// arming ITIMER_PROF/SIGPROF at 997 Hz in every child must stay within 10%
// of the traced baseline on CPU-burning arms, or it is too expensive to
// leave on during an investigation.
//
// Order is load-bearing (same as bench_obs_overhead): tracing cannot be
// turned off once the ring exists, so the untraced rows run first; the
// profiler cannot be disarmed for the parent-side comparison, so the
// prof-off spin rows run before prof_enable().
//
// Emits BENCH_e17_attribution.json (bench/report.hpp schema).
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <optional>
#include <utility>

#include "common/stats.hpp"
#include "obs/phase.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "posix/race.hpp"
#include "report.hpp"

namespace {

using Clock = std::chrono::steady_clock;
using altx::obs::EventKind;
using altx::obs::Phase;
using altx::obs::Record;

double ns_between(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Burn CPU (not wall) for roughly `us` microseconds — SIGPROF ticks on
/// ITIMER_PROF, so a sleeping arm never samples.
void spin_us(long us) {
  volatile std::uint64_t sink = 0;
  const auto t0 = Clock::now();
  while (ns_between(t0, Clock::now()) < static_cast<double>(us) * 1000.0) {
    for (int i = 0; i < 512; ++i) sink = sink + static_cast<std::uint64_t>(i);
  }
}

/// The minimal race the 20 us floor is about: an instant winner, a loser
/// that would take 1 ms. Fork, COW, commit pipe, elimination, reap.
void race_minimal() {
  auto r = altx::posix::race<int>({
      [] { return std::optional<int>(1); },
      [] {
        ::usleep(1000);
        return std::optional<int>(2);
      },
  });
  if (!r.has_value()) std::abort();
}

/// CPU-burning arms for the profiler rows: the winner spins ~12 ms, the
/// loser would spin 40 ms and is eliminated mid-burn — exactly the child
/// whose profile must survive the SIGKILL. The spins are sized to the
/// kernel's ITIMER_PROF granularity (~4 ms at CONFIG_HZ=250): an arm must
/// burn several timer quanta of CPU before elimination or it never ticks.
void race_spin() {
  auto r = altx::posix::race<int>({
      [] {
        spin_us(12'000);
        return std::optional<int>(1);
      },
      [] {
        spin_us(40'000);
        return std::optional<int>(2);
      },
  });
  if (!r.has_value()) std::abort();
}

altx::Summary time_races(void (*race_fn)(), int iterations) {
  altx::Summary s;
  race_fn();  // warm the fork path before timing
  for (int i = 0; i < iterations; ++i) {
    const auto t0 = Clock::now();
    race_fn();
    s.add(ns_between(t0, Clock::now()) / 1e6);
  }
  return s;
}

}  // namespace

int main() {
  constexpr int kRaces = 400;
  constexpr int kSpinRaces = 60;

  // --- untraced baseline first (tracing is one-way) ---
  const altx::Summary off = time_races(race_minimal, kRaces);

  altx::obs::enable_for_test(1 << 17);
  const altx::Summary on = time_races(race_minimal, kRaces);

  // Reduce the minimal races just timed: coverage + the per-phase floor.
  const auto breakdowns =
      altx::obs::reduce_critical_path(altx::obs::snapshot());
  std::uint64_t wall = 0;
  std::uint64_t attributed = 0;
  std::uint64_t phase_totals[altx::obs::kPhaseCount] = {};
  int decided = 0;
  for (const auto& [id, b] : breakdowns) {
    if (!b.decided) continue;
    ++decided;
    wall += b.wall_ns;
    attributed += b.attributed_ns();
    for (int p = 0; p < altx::obs::kPhaseCount; ++p) {
      phase_totals[p] += b.phase_ns[p];
    }
  }
  const double coverage_pct =
      wall == 0 ? 0.0
                : static_cast<double>(attributed) / static_cast<double>(wall) *
                      100.0;
  const double floor_us = (on.min() - off.min()) * 1000.0;

  // --- profiler bill, on CPU-burning arms (prof-off rows first) ---
  altx::obs::reset();
  const altx::Summary spin_off = time_races(race_spin, kSpinRaces);
  altx::obs::prof_enable(997);
  altx::obs::reset();
  const altx::Summary spin_on = time_races(race_spin, kSpinRaces);

  // Sample census: fragments and distinct samples that made it into the
  // ring — including the ones from arms SIGKILLed mid-burn.
  std::size_t fragments = 0;
  std::size_t sampled_children = 0;
  {
    std::map<std::pair<pid_t, std::uint32_t>, int> per_child;  // (pid, race)
    for (const Record& r : altx::obs::snapshot()) {
      if (r.kind != EventKind::kProfSample) continue;
      ++fragments;
      ++per_child[{r.pid, r.race_id}];
    }
    sampled_children = per_child.size();
  }

  // Minima for the trace floor (fastest race = least interfered with); the
  // median for the profiler rows — spinning losers keep the machine's cores
  // busy, so the minimum there compares scheduler luck, not code.
  const double trace_overhead_pct =
      off.min() > 0.0 ? (on.min() / off.min() - 1.0) * 100.0 : 0.0;
  const double prof_overhead_pct =
      spin_off.median() > 0.0
          ? (spin_on.median() / spin_off.median() - 1.0) * 100.0
          : 0.0;

  std::printf("E17: attribution quality and its price "
              "(%d minimal + %d spinning races per row)\n\n",
              kRaces, kSpinRaces);
  std::printf("  race, untraced      : min %7.3f ms  p50 %7.3f ms\n",
              off.min(), off.median());
  std::printf("  race, traced        : min %7.3f ms  p50 %7.3f ms  "
              "(+%.1f us floor, %+.2f%%)\n",
              on.min(), on.median(), floor_us, trace_overhead_pct);
  std::printf("  phase coverage      : %6.2f %% of wall attributed "
              "(%d decided races)\n",
              coverage_pct, decided);
  std::printf("  floor decomposition :");
  for (int p = 1; p < altx::obs::kPhaseCount; ++p) {
    if (phase_totals[p] == 0 || decided == 0) continue;
    std::printf(" %s=%.1fus", to_string(static_cast<Phase>(p)),
                static_cast<double>(phase_totals[p]) /
                    static_cast<double>(decided) / 1000.0);
  }
  std::printf("  (mean per race)\n");
  std::printf("  spin race, prof off : min %7.3f ms  p50 %7.3f ms\n",
              spin_off.min(), spin_off.median());
  std::printf("  spin race, prof on  : min %7.3f ms  p50 %7.3f ms  "
              "(%+.2f%% at %d Hz, p50 vs p50)\n",
              spin_on.min(), spin_on.median(), prof_overhead_pct,
              altx::obs::prof_hz());
  std::printf("  profile yield       : %zu fragments from %zu children\n",
              fragments, sampled_children);

  altx::bench::Report report("e17_attribution");
  report.row("race_untraced").param("alternatives", 2).latency(off);
  auto& traced = report.row("race_traced")
                     .param("alternatives", 2)
                     .metric("floor_us", floor_us)
                     .metric("overhead_pct", trace_overhead_pct)
                     .metric("coverage_pct", coverage_pct)
                     .metric("decided_races", decided);
  for (int p = 1; p < altx::obs::kPhaseCount; ++p) {
    if (phase_totals[p] == 0 || decided == 0) continue;
    traced.metric(std::string("phase_") + to_string(static_cast<Phase>(p)) +
                      "_us_mean",
                  static_cast<double>(phase_totals[p]) /
                      static_cast<double>(decided) / 1000.0);
  }
  traced.latency(on);
  report.row("spin_prof_off").latency(spin_off);
  report.row("spin_prof_on")
      .param("hz", altx::obs::prof_hz())
      .metric("overhead_pct", prof_overhead_pct)
      .metric("sample_fragments", static_cast<double>(fragments))
      .metric("sampled_children", static_cast<double>(sampled_children))
      .latency(spin_on);
  const std::string path = report.write();
  if (!path.empty()) std::printf("\nreport: %s\n", path.c_str());
  return 0;
}
