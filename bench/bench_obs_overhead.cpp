// What does watching cost? The observability bill, measured.
//
// Two numbers matter. The disabled emit must stay one load + predicted
// branch — cheap enough to leave in every hot path of the library. The
// enabled emit is two atomics + a 64-byte copy into the shared ring;
// end-to-end, tracing adds ~20 us to a minimal ~0.2 ms fork race (cache
// lines bouncing between the processes sharing the arena, not emit code —
// no-opping emit recovers only about half of it), which vanishes into any
// guard doing real work. The same-arm control row puts a number on this
// machine's noise floor so the overhead row can be read against it.
//
// Order is load-bearing: tracing cannot be turned off once a ring exists
// (children may still hold the mapping), so every "disabled" measurement
// runs before obs::enable_for_test() flips the switch for this process.
//
// Emits BENCH_obs_overhead.json (bench/report.hpp schema) next to the
// human table; ALTX_BENCH_OUT redirects it. CI runs this as the bench
// smoke job and archives the JSON.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <optional>

#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "posix/race.hpp"
#include "report.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double ns_between(Clock::time_point t0, Clock::time_point t1) {
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0).count());
}

/// Mean cost of one obs::emit in the current state (disabled or enabled),
/// amortized over enough calls to swamp the clock reads. When enabled, the
/// ring is reset per batch so every call takes the real publish path rather
/// than the cheaper drop path of a full arena.
double emit_cost_ns(bool enabled, std::size_t batches, std::size_t batch) {
  double best = 1e18;
  for (std::size_t b = 0; b < batches; ++b) {
    if (enabled) altx::obs::reset();
    const auto t0 = Clock::now();
    for (std::size_t i = 0; i < batch; ++i) {
      altx::obs::emit(altx::obs::EventKind::kSimEvent, 1, 0, i);
    }
    const auto t1 = Clock::now();
    // Minimum over batches: the contended samples measure the machine, the
    // minimum measures the code.
    best = std::min(best, ns_between(t0, t1) / static_cast<double>(batch));
  }
  return best;
}

/// One real two-alternative fork race, the construct the 5%-overhead claim
/// is about: fork, COW, commit pipe, reap with rusage.
void race_once() {
  auto r = altx::posix::race<int>({
      [] { return std::optional<int>(1); },
      [] {
        ::usleep(1000);
        return std::optional<int>(2);
      },
  });
  if (!r.has_value()) std::abort();
}

altx::Summary race_latency_ms(int iterations) {
  altx::Summary s;
  race_once();  // warm: page in the whole fork path before timing
  for (int i = 0; i < iterations; ++i) {
    const auto t0 = Clock::now();
    race_once();
    s.add(ns_between(t0, Clock::now()) / 1e6);
  }
  return s;
}

}  // namespace

int main() {
  constexpr int kRaces = 600;
  constexpr std::size_t kBatches = 50;
  constexpr std::size_t kBatch = 10'000;

  // --- everything "disabled" first (see header comment) ---
  const double emit_off_ns = emit_cost_ns(false, kBatches, kBatch);
  // Two identical dark blocks: the distance between their minima is the
  // noise floor of this estimator on this machine, printed alongside the
  // overhead so the reader can tell signal from scheduler. The second
  // block (adjacent in time to the traced arm) is the comparison baseline.
  const altx::Summary off_ctl = race_latency_ms(kRaces);
  const altx::Summary off = race_latency_ms(kRaces);

  altx::obs::enable_for_test(1 << 16);
  // Races before the enabled emit micro-bench: that loop faults in ~10k
  // slots of the shared arena, and every later fork would pay page-table
  // copy (and every child exit, unmap) for pages the race itself never
  // touches. Measuring races against a near-empty ring keeps the number
  // about tracing a race, not about forking under a pre-warmed arena.
  const altx::Summary on = race_latency_ms(kRaces);
  const double emit_on_ns = emit_cost_ns(true, kBatches, kBatch);

  // Minima, not means: fork latency on a busy host swings by tens of
  // percent, so the central estimators compare scheduler luck, not code.
  // The fastest race of each arm is the one the machine least interfered
  // with — the honest estimate of what the tracing code itself adds.
  const double overhead_pct =
      off.min() > 0.0 ? (on.min() / off.min() - 1.0) * 100.0 : 0.0;
  const double noise_pct =
      off_ctl.min() > 0.0 ? (off.min() / off_ctl.min() - 1.0) * 100.0 : 0.0;

  std::printf("obs overhead (emit amortized over %zu-call batches, "
              "%d two-alternative fork races per row)\n\n",
              kBatch, kRaces);
  std::printf("  emit, tracing off : %7.2f ns/call\n", emit_off_ns);
  std::printf("  emit, tracing on  : %7.2f ns/call\n", emit_on_ns);
  std::printf(
      "  race, tracing off : min %7.3f ms  p50 %7.3f ms  mean %7.3f ms\n",
      off.min(), off.median(), off.mean());
  std::printf(
      "  race, tracing on  : min %7.3f ms  p50 %7.3f ms  mean %7.3f ms\n",
      on.min(), on.median(), on.mean());
  std::printf("  traced overhead   : %+6.2f %%  (min vs min)\n", overhead_pct);
  std::printf("  noise floor       : %+6.2f %%  (two identical untraced"
              " blocks, same estimator)\n",
              noise_pct);

  altx::bench::Report report("obs_overhead");
  report.row("emit_disabled").metric("ns_per_call", emit_off_ns);
  report.row("emit_enabled").metric("ns_per_call", emit_on_ns);
  report.row("race_untraced")
      .param("alternatives", 2)
      .metric("noise_floor_pct", noise_pct)
      .latency(off);
  report.row("race_traced")
      .param("alternatives", 2)
      .metric("overhead_pct", overhead_pct)
      .latency(on);
  const std::string path = report.write();
  if (!path.empty()) std::printf("\nreport: %s\n", path.c_str());
  return 0;
}
