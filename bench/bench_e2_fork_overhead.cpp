// E2 — fork overhead (section 4.4, first measurement).
//
// Paper: a copy-on-write fork() of a 320 KB address space with no memory
// updates costs ~31 ms on the AT&T 3B2/310 and ~12 ms on the HP 9000/350.
//
// Part 1 replays the measurement on the calibrated machine models inside the
// kernel simulator, sweeping the address-space size (the independent
// variable: pages mapped). Part 2 repeats the measurement with a real fork()
// on the present host for the same address-space sizes.
#include <cstdio>

#include "common/table.hpp"
#include "core/executor.hpp"
#include "posix/measure.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace altx;
using namespace altx::sim;

/// Simulated cost of one alt_spawn of a single child (fork only): measured as
/// the elapsed time of an AltBlock whose child does negligible work, minus
/// that work.
SimTime simulated_fork_us(const MachineModel& m, std::size_t pages) {
  return m.fork_cost(pages);
}

}  // namespace

int main() {
  std::printf("E2: copy-on-write fork() overhead (paper section 4.4)\n\n");
  std::printf("Paper-reported: 3B2/310 ~31 ms, HP 9000/350 ~12 ms for a 320 KB\n"
              "address space with no updates.\n\n");

  const MachineModel m3b2 = MachineModel::att3b2();
  const MachineModel mhp = MachineModel::hp9000_350();

  Table sim_table({"address space", "3B2/310 model", "HP 9000/350 model"});
  for (std::size_t kb : {80, 160, 320, 640, 1280}) {
    const std::size_t bytes = kb * 1024;
    sim_table.add_row(
        {std::to_string(kb) + " KB",
         format_time(simulated_fork_us(m3b2, bytes / m3b2.page_size)),
         format_time(simulated_fork_us(mhp, bytes / mhp.page_size))});
  }
  sim_table.print();
  std::printf("\n(320 KB row reproduces the paper's 31 ms / 12 ms.)\n\n");

  std::printf("Measured on this host (real fork(), arena touched, no updates):\n\n");
  Table host({"arena", "mean fork+wait"});
  for (std::size_t kb : {320, 1024, 8 * 1024, 64 * 1024}) {
    const auto f = posix::measure_fork(kb * 1024, 20);
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.3f ms", f.mean_ms);
    host.add_row({std::to_string(kb) + " KB", buf});
  }
  host.print();
  std::printf(
      "\nReading: the paper's shape — fork cost grows with the pages mapped —\n"
      "holds on 2020s hardware, three orders of magnitude faster in absolute\n"
      "terms, which moves the PI crossover to much smaller computations.\n");
  return 0;
}
