// E9 — the throughput cost of speculation (section 4.1, item 3).
//
// The design trades throughput for execution time: losers burn cycles that a
// throughput-oriented scheduler would have given to useful work. This bench
// quantifies wasted work as a function of N, of dispersion, and of the
// elimination policy, using the kernel simulator's useful/wasted/overhead
// accounting.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/model.hpp"
#include "core/workload.hpp"

namespace {

using namespace altx;
using namespace altx::core;

struct Waste {
  double pi = 0;
  double waste_fraction = 0;     // wasted / (useful + wasted)
  double overhead_fraction = 0;  // overhead / busy
};

Waste run(const WorkloadParams& p, int cpus, sim::Elimination elim,
          std::uint64_t seed, int trials = 10) {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(cpus);
  cfg.address_space_pages = 80;
  cfg.elimination = elim;
  Rng rng(seed);
  Summary pi;
  Summary waste;
  Summary oh;
  for (int t = 0; t < trials; ++t) {
    const BlockSpec b = generate_block(p, rng);
    const auto r = run_concurrent(b, cfg);
    if (r.failed) continue;
    pi.add(mean_time(b.taus()) / static_cast<double>(r.elapsed));
    const double total =
        static_cast<double>(r.stats.useful_work + r.stats.wasted_work);
    if (total > 0) waste.add(static_cast<double>(r.stats.wasted_work) / total);
    if (r.stats.cpu_busy > 0) {
      oh.add(static_cast<double>(r.stats.overhead_work) /
             static_cast<double>(r.stats.cpu_busy));
    }
  }
  return Waste{pi.mean(), waste.mean(), oh.mean()};
}

}  // namespace

int main() {
  std::printf("E9: execution time vs throughput — wasted work (section 4.1)\n\n");

  std::printf("Wasted-work fraction vs N (uniform 50..500 ms, N CPUs):\n\n");
  Table by_n({"N", "PI", "wasted/total work", "model estimate"});
  for (std::size_t n : {2, 3, 4, 6, 8}) {
    WorkloadParams p;
    p.n_alternatives = n;
    p.lo = 50 * kMsec;
    p.hi = 500 * kMsec;
    const auto w = run(p, static_cast<int>(n), sim::Elimination::kAsynchronous, 41 + n);
    // Model: each of N-1 losers burns ~tau(best): waste ~ (N-1)*E[min] over
    // (N-1)*E[min] + E[min]... computed per-draw instead:
    Rng rng(41 + n);
    Summary est;
    for (int t = 0; t < 10; ++t) {
      const BlockSpec b = generate_block(p, rng);
      const auto taus = b.taus();
      const double wasted = wasted_work_estimate(taus);
      est.add(wasted / (wasted + static_cast<double>(best_time(taus))));
    }
    by_n.add_row({std::to_string(n), Table::num(w.pi),
                  Table::num(w.waste_fraction), Table::num(est.mean())});
  }
  by_n.print();

  std::printf("\nDispersion reduces waste (N = 4: losers die sooner when the\n"
              "winner is much faster):\n\n");
  Table by_disp({"tau range (ms)", "PI", "wasted/total"});
  for (auto [lo, hi] : std::vector<std::pair<SimTime, SimTime>>{
           {190, 210}, {100, 300}, {20, 380}}) {
    WorkloadParams p;
    p.n_alternatives = 4;
    p.lo = lo * kMsec;
    p.hi = hi * kMsec;
    const auto w = run(p, 4, sim::Elimination::kAsynchronous, 53);
    by_disp.add_row({std::to_string(lo) + " .. " + std::to_string(hi),
                     Table::num(w.pi), Table::num(w.waste_fraction)});
  }
  by_disp.print();

  std::printf("\nElimination policy (N = 6 on 3 CPUs, remote-kill cost 20 ms;\n"
              "async corpses keep stealing cycles until their kill lands,\n"
              "sync kills delay the winner instead):\n\n");
  Table by_elim({"policy", "PI", "wasted/total", "overhead/busy"});
  {
    WorkloadParams p;
    p.n_alternatives = 6;
    p.lo = 50 * kMsec;
    p.hi = 500 * kMsec;
    auto run_kc = [&](sim::Elimination e) {
      sim::Kernel::Config cfg;
      cfg.machine = sim::MachineModel::shared_memory_mp(3);
      cfg.machine.kill_cost = 20 * kMsec;
      cfg.address_space_pages = 80;
      cfg.elimination = e;
      Rng rng(67);
      Summary pi, waste, oh;
      for (int t = 0; t < 10; ++t) {
        const BlockSpec b = generate_block(p, rng);
        const auto r = run_concurrent(b, cfg);
        if (r.failed) continue;
        pi.add(mean_time(b.taus()) / static_cast<double>(r.elapsed));
        const double total =
            static_cast<double>(r.stats.useful_work + r.stats.wasted_work);
        if (total > 0) waste.add(static_cast<double>(r.stats.wasted_work) / total);
        if (r.stats.cpu_busy > 0) {
          oh.add(static_cast<double>(r.stats.overhead_work) /
                 static_cast<double>(r.stats.cpu_busy));
        }
      }
      return Waste{pi.mean(), waste.mean(), oh.mean()};
    };
    const auto ws = run_kc(sim::Elimination::kSynchronous);
    const auto wa = run_kc(sim::Elimination::kAsynchronous);
    by_elim.add_row({"synchronous", Table::num(ws.pi),
                     Table::num(ws.waste_fraction), Table::num(ws.overhead_fraction, 3)});
    by_elim.add_row({"asynchronous", Table::num(wa.pi),
                     Table::num(wa.waste_fraction), Table::num(wa.overhead_fraction, 3)});
  }
  by_elim.print();
  std::printf(
      "\nReading: speculation buys its PI with wasted cycles that grow with N\n"
      "(toward (N-1)/N of all work when taus are similar) and shrink with\n"
      "dispersion — the quantified version of the paper's execution-time vs\n"
      "throughput bias.\n");
  return 0;
}
