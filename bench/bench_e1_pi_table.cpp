// E1 — the PI table of section 4.2.
//
// Reproduces the paper's illustration (N = 3, tau(overhead) = 5) analytically
// and then validates each row end-to-end on the kernel simulator: the taus
// become compute times (scaled to milliseconds), the overhead emerges from
// the machine model rather than being assumed, and the measured ratio
// tau(C_mean)/elapsed is printed next to the paper's PI.
#include <cstdio>

#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/model.hpp"

namespace {

using namespace altx;
using namespace altx::core;

struct Row {
  SimTime t1, t2, t3;
  double paper_pi;
};

const Row kRows[] = {
    {10, 20, 30, 1.33}, {1, 19, 106, 7.0},    {20, 20, 20, 0.8},
    {1, 2, 3, 0.33},    {115, 120, 125, 1.0}, {100, 200, 300, 1.9},
};

}  // namespace

int main() {
  std::printf("E1: performance-improvement table (paper section 4.2)\n");
  std::printf("N = 3 alternatives, analytic overhead = 5 time units\n\n");

  Table analytic({"row", "tau(C1)", "tau(C2)", "tau(C3)", "PI (paper)",
                  "PI (model)"});
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    const Row& r = kRows[i];
    const std::vector<SimTime> taus{r.t1, r.t2, r.t3};
    analytic.add_row({"(" + std::to_string(i + 1) + ")", Table::num(r.t1),
                      Table::num(r.t2), Table::num(r.t3),
                      Table::num(r.paper_pi),
                      Table::num(performance_improvement(taus, 5.0))});
  }
  analytic.print();

  // Calibration: the paper's tau(overhead) = 5 abstract units. On the HP
  // 9000/350 model the spawn+commit overhead of a 3-alternative block over a
  // small (8-page) space is ~15 ms, so 1 unit = 3 ms makes the simulated
  // overhead equal the paper's assumed 5 units.
  std::printf(
      "\nEnd-to-end on the kernel simulator (HP 9000/350 model, 3 CPUs,\n"
      "1 paper time unit = 3 ms, so the machine's ~15 ms spawn overhead\n"
      "equals the paper's 5 units):\n\n");

  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(3);
  cfg.address_space_pages = 8;  // small state: overhead ~ a few ms

  Table measured({"row", "tau(C_mean) ms", "tau(C_best) ms", "elapsed ms",
                  "PI (sim)", "PI (paper)"});
  for (std::size_t i = 0; i < std::size(kRows); ++i) {
    const Row& r = kRows[i];
    BlockSpec block;
    for (SimTime t : {r.t1, r.t2, r.t3}) {
      AltSpec a;
      a.compute = t * 3 * kMsec;
      a.pages_read = 2;
      a.pages_written = 1;
      block.alts.push_back(a);
    }
    const auto res = run_concurrent(block, cfg);
    const double mean_ms = mean_time(block.taus()) / 1000.0;
    const double pi_sim =
        mean_ms / (static_cast<double>(res.elapsed) / kMsec);
    measured.add_row({"(" + std::to_string(i + 1) + ")", Table::num(mean_ms),
                      Table::num(static_cast<double>(best_time(block.taus())) / kMsec),
                      Table::num(static_cast<double>(res.elapsed) / kMsec),
                      Table::num(pi_sim), Table::num(r.paper_pi)});
  }
  measured.print();

  std::printf(
      "\nReading: rows (1),(2),(6) parallel wins; (3),(4) overhead dominates\n"
      "(PI < 1); (5) break-even. With the 3 ms/unit calibration the simulated\n"
      "PI tracks the paper's column row by row.\n");
  return 0;
}
