// E8 — majority-consensus synchronization (section 3.2.1).
//
// The paper's engineering trade-off: single-node synchronization is cheap
// but a single point of failure; majority consensus across several nodes
// buys robustness at the price of extra communication. This bench measures
// commit latency vs arbiter count, link latency, message loss and crashes,
// and verifies the at-most-once property across every configuration.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "consensus/majority.hpp"

namespace {

using namespace altx;
using namespace altx::consensus;

struct RunStats {
  double mean_commit_ms = 0;
  double winners_per_run = 0;  // must be <= 1; ~1 shows liveness
  double packets = 0;
};

RunStats run_config(int arbiters, int candidates, SimTime latency, double drop,
                    int crashes, int seeds = 25, SimTime stagger = 10 * kMsec) {
  Summary commit_ms;
  Summary winners;
  Summary packets;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds); ++seed) {
    net::Network::Config nc;
    nc.node_count = static_cast<std::size_t>(arbiters + candidates);
    nc.base_latency = latency;
    nc.jitter = latency / 2;
    nc.drop_rate = drop;
    nc.seed = seed;
    net::Network network(nc);
    MajoritySync::Config mc;
    mc.arbiters = arbiters;
    MajoritySync sync(network, mc);
    // Alternates reach synchronization at different times (fastest first);
    // perfectly simultaneous arrival is the adversarial case, measured
    // separately below.
    Rng stagger_rng(seed * 77 + 1);
    for (int c = 0; c < candidates; ++c) {
      const SimTime start =
          stagger > 0
              ? static_cast<SimTime>(stagger_rng.below(
                    static_cast<std::uint64_t>(stagger)))
              : 0;
      sync.add_candidate(static_cast<CandidateId>(c),
                         static_cast<NodeId>(arbiters + c), start);
    }
    sync.start();
    for (int k = 0; k < crashes; ++k) network.crash(static_cast<NodeId>(k));
    network.run();
    int nwinners = 0;
    for (const auto& [id, o] : sync.outcomes()) {
      if (o.won) {
        ++nwinners;
        commit_ms.add(static_cast<double>(o.decided_at) / kMsec);
      }
    }
    ALTX_REQUIRE(nwinners <= 1, "at-most-once violated");
    winners.add(nwinners);
    packets.add(static_cast<double>(network.packets_sent()));
  }
  RunStats s;
  s.mean_commit_ms = commit_ms.empty() ? -1 : commit_ms.mean();
  s.winners_per_run = winners.mean();
  s.packets = packets.mean();
  return s;
}

std::string ms(double v) {
  if (v < 0) return "--";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f ms", v);
  return buf;
}

}  // namespace

int main() {
  std::printf("E8: majority-consensus synchronization (section 3.2.1)\n\n");

  std::printf("Commit latency vs arbiter count (3 candidates, 2 ms links):\n\n");
  Table t1({"arbiters", "mean commit", "winners/run", "packets/run"});
  for (int a : {1, 3, 5, 7, 9}) {
    const auto s = run_config(a, 3, 2 * kMsec, 0.0, 0);
    t1.add_row({std::to_string(a), ms(s.mean_commit_ms),
                Table::num(s.winners_per_run), Table::num(s.packets, 0)});
  }
  t1.print();
  std::printf("\n(1 arbiter = the degenerate single-node \"too late\" rule.)\n");

  std::printf("\nCommit latency vs link latency (5 arbiters, 2 candidates):\n\n");
  Table t2({"link latency", "mean commit"});
  for (SimTime l : {kMsec, 2 * kMsec, 5 * kMsec, 20 * kMsec}) {
    const auto s = run_config(5, 2, l, 0.0, 0);
    t2.add_row({format_time(l), ms(s.mean_commit_ms)});
  }
  t2.print();

  std::printf("\nMessage loss (3 arbiters, 2 candidates, retries every 50 ms):\n\n");
  Table t3({"drop rate", "mean commit", "winners/run"});
  for (double d : {0.0, 0.1, 0.25, 0.4}) {
    const auto s = run_config(3, 2, 2 * kMsec, d, 0);
    char dc[16];
    std::snprintf(dc, sizeof dc, "%.0f %%", d * 100);
    t3.add_row({dc, ms(s.mean_commit_ms), Table::num(s.winners_per_run)});
  }
  t3.print();

  std::printf("\nArbiter crashes (5 arbiters, 1 candidate):\n\n");
  Table t4({"crashed", "mean commit", "winners/run"});
  for (int k : {0, 1, 2, 3}) {
    const auto s = run_config(5, 1, 2 * kMsec, 0.0, k);
    t4.add_row({std::to_string(k), ms(s.mean_commit_ms),
                Table::num(s.winners_per_run)});
  }
  t4.print();

  std::printf("\nAdversarial simultaneity (all candidates request at t=0; sticky\n"
              "votes can split so that NO candidate commits — safety holds, the\n"
              "block falls back to its timeout):\n\n");
  Table t5({"candidates", "winners/run (staggered)", "winners/run (simultaneous)"});
  for (int c : {2, 3, 4}) {
    const auto stag = run_config(5, c, 2 * kMsec, 0.0, 0);
    const auto simu = run_config(5, c, 2 * kMsec, 0.0, 0, 25, 0);
    t5.add_row({std::to_string(c), Table::num(stag.winners_per_run),
                Table::num(simu.winners_per_run)});
  }
  t5.print();

  std::printf(
      "\nReading: at most one winner in every run (safety held across all\n"
      "configurations above — enforced by an assertion). Latency grows\n"
      "with quorum size and link delay — the paper's performance/reliability\n"
      "trade-off; a crashed minority is tolerated, a crashed majority blocks\n"
      "commitment (the enclosing alt_wait timeout then fails the block).\n");
  return 0;
}
