// Machine-readable benchmark reports.
//
// Every bench that wants tracked numbers writes a BENCH_<name>.json file next
// to its human-readable table, so CI (or a later session) can diff runs
// without scraping stdout. Layout:
//
//   {
//     "bench": "e13_supervision",
//     "meta": {"schema": 2, "git_sha": "4680c09", "host": "ci-runner-3"},
//     "rows": [
//       {"name": "supervised",
//        "params": {"crash_rate": 0.1},
//        "metrics": {"success": 118},
//        "latency_ms": {"count": 120, "mean": 9.1, "p50": 8.7, "p95": 14.2,
//                       "min": 6.0, "max": 31.9}}
//     ]
//   }
//
// The output directory defaults to the working directory; set ALTX_BENCH_OUT
// to redirect (CI points it at an artifacts dir). Keys and names come from
// bench code, never user input, so escaping handles only quotes/backslashes.
#pragma once

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace altx::bench {

/// BENCH_<name>.json, honoring ALTX_BENCH_OUT.
inline std::string report_path(const std::string& name) {
  std::string dir = ".";
  if (const char* env = std::getenv("ALTX_BENCH_OUT"); env && *env) dir = env;
  return dir + "/BENCH_" + name + ".json";
}

/// Bump when the report layout changes shape (schema 2 added "meta").
inline constexpr int kReportSchema = 2;

/// The commit the bench binary was run against: ALTX_GIT_SHA when CI
/// exports it (detached checkouts, worktrees), else asking git directly,
/// else "unknown". Without this stamp two BENCH files from different
/// commits diff as if they were the same build.
inline std::string report_git_sha() {
  if (const char* env = std::getenv("ALTX_GIT_SHA"); env && *env) return env;
  std::string sha;
  if (std::FILE* p = ::popen("git rev-parse --short HEAD 2>/dev/null", "r")) {
    char buf[64];
    if (std::fgets(buf, sizeof buf, p) != nullptr) {
      for (const char* c = buf; *c != '\0'; ++c) {
        if (*c == '\n' || *c == '\r') break;
        sha += *c;
      }
    }
    ::pclose(p);
  }
  return sha.empty() ? "unknown" : sha;
}

inline std::string report_host() {
  char buf[256] = {};
  if (::gethostname(buf, sizeof buf - 1) != 0) return "unknown";
  return buf[0] != '\0' ? buf : "unknown";
}

class Report {
 public:
  explicit Report(std::string name) : name_(std::move(name)) {}

  class Row {
   public:
    explicit Row(std::string name) : name_(std::move(name)) {}

    Row& param(const std::string& key, const std::string& value) {
      params_.push_back({key, quote(value)});
      return *this;
    }
    Row& param(const std::string& key, double value) {
      params_.push_back({key, num(value)});
      return *this;
    }
    Row& metric(const std::string& key, double value) {
      metrics_.push_back({key, num(value)});
      return *this;
    }
    /// Full latency distribution under "latency_<unit>".
    Row& latency(const Summary& s, const std::string& unit = "ms") {
      std::ostringstream o;
      o << "{\"count\":" << s.count() << ",\"mean\":" << num(s.mean())
        << ",\"p50\":" << num(s.median()) << ",\"p95\":"
        << num(s.percentile(95)) << ",\"min\":" << num(s.min())
        << ",\"max\":" << num(s.max()) << "}";
      latency_ = {"latency_" + unit, o.str()};
      return *this;
    }

   private:
    friend class Report;

    std::string name_;
    std::vector<std::pair<std::string, std::string>> params_;
    std::vector<std::pair<std::string, std::string>> metrics_;
    std::pair<std::string, std::string> latency_;
  };

  Row& row(const std::string& name) {
    rows_.emplace_back(name);
    return rows_.back();
  }

  /// Writes BENCH_<name>.json. Returns the path, empty on I/O failure (a
  /// bench must still print its table even if the report can't be written).
  std::string write() const {
    const std::string path = report_path(name_);
    std::ofstream out(path);
    if (!out) return {};
    out << "{\"bench\":" << quote(name_);
    out << ",\"meta\":{\"schema\":" << kReportSchema
        << ",\"git_sha\":" << quote(report_git_sha())
        << ",\"host\":" << quote(report_host()) << "}";
    out << ",\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      const Row& r = rows_[i];
      if (i != 0) out << ",";
      out << "{\"name\":" << quote(r.name_);
      out << ",\"params\":{";
      for (std::size_t j = 0; j < r.params_.size(); ++j) {
        if (j != 0) out << ",";
        out << quote(r.params_[j].first) << ":" << r.params_[j].second;
      }
      out << "},\"metrics\":{";
      for (std::size_t j = 0; j < r.metrics_.size(); ++j) {
        if (j != 0) out << ",";
        out << quote(r.metrics_[j].first) << ":" << r.metrics_[j].second;
      }
      out << "}";
      if (!r.latency_.first.empty()) {
        out << "," << quote(r.latency_.first) << ":" << r.latency_.second;
      }
      out << "}";
    }
    out << "]}\n";
    return out ? path : std::string{};
  }

 private:
  static std::string quote(const std::string& s) {
    std::string q = "\"";
    for (const char c : s) {
      if (c == '"' || c == '\\') q += '\\';
      q += c;
    }
    q += '"';
    return q;
  }

  static std::string num(double v) {
    std::ostringstream o;
    o << v;
    const std::string s = o.str();
    // JSON has no inf/nan; an empty Summary's min() is such a sentinel.
    if (s.find_first_not_of("0123456789+-.e") != std::string::npos) {
      return "null";
    }
    return s;
  }

  std::string name_;
  std::deque<Row> rows_;  // deque: row() hands out stable references
};

}  // namespace altx::bench
