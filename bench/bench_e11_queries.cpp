// E11 — racing database query plans (the paper's abstract: "for problems
// where the required execution time is unpredictable, such as database
// queries, this method can show substantial execution time performance
// increases").
//
// A stream of queries with data-dependent plan costs is answered four ways:
//   oracle    — a perfect optimizer (lower bound; not realizable),
//   scheme A  — an optimizer picking by observed per-plan statistics,
//   scheme B  — a random viable plan,
//   scheme C  — race all plans, keep the fastest (this paper).
// All executed on the kernel simulator (HP 9000/350 costs, 3 CPUs).
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/query_workload.hpp"
#include "core/schemes.hpp"

namespace {

using namespace altx;
using namespace altx::core;

sim::Kernel::Config cfg() {
  sim::Kernel::Config c;
  c.machine = sim::MachineModel::shared_memory_mp(3);
  c.address_space_pages = 32;
  return c;
}

struct StreamResult {
  double mean_ms = 0;
  double vs_oracle = 0;
};

}  // namespace

int main() {
  std::printf("E11: racing database query plans (index / scan / hash)\n\n");
  const SimTime unit = 2;  // 2 us per row visit: ~1989 disk-cached rates
  const int kQueries = 60;

  QueryMixParams mix;
  Rng rng(2026);
  std::vector<QuerySpec> stream;
  for (int i = 0; i < kQueries; ++i) stream.push_back(draw_query(mix, rng));

  Summary oracle_ms;
  Summary race_ms;
  Summary random_ms;
  Summary stats_ms;
  StatisticalPicker picker(kPlanCount);
  Rng pick_rng(7);

  for (const QuerySpec& q : stream) {
    const BlockSpec block = query_block(q, unit);
    oracle_ms.add(static_cast<double>(oracle_cost(q, unit)) / kMsec);

    // Scheme C: race.
    const auto conc = run_concurrent(block, cfg());
    race_ms.add(static_cast<double>(conc.elapsed) / kMsec);

    // Scheme B: a random plan; non-viable picks cost their run then fail —
    // charge the failed attempt plus a scan fallback.
    {
      const auto pick = static_cast<Plan>(pick_rng.below(kPlanCount));
      const PlanCost pc = plan_cost(pick, q, unit);
      SimTime t = pc.cost;
      if (!pc.viable) t += plan_cost(Plan::kScan, q, unit).cost;
      random_ms.add(static_cast<double>(t) / kMsec);
    }

    // Scheme A: statistical optimizer (learns mean per plan, retries on a
    // non-viable choice with the scan).
    {
      const std::size_t choice = picker.pick();
      const PlanCost pc = plan_cost(static_cast<Plan>(choice), q, unit);
      SimTime t = pc.cost;
      if (!pc.viable) t += plan_cost(Plan::kScan, q, unit).cost;
      picker.record(choice, t);
      stats_ms.add(static_cast<double>(t) / kMsec);
    }
  }

  Table t({"strategy", "mean latency", "vs oracle"});
  auto row = [&](const char* name, const Summary& s) {
    t.add_row({name, Table::num(s.mean()) + " ms",
               Table::num(s.mean() / oracle_ms.mean(), 2) + "x"});
  };
  row("oracle (perfect optimizer)", oracle_ms);
  row("scheme C: race all plans", race_ms);
  row("scheme A: statistics", stats_ms);
  row("scheme B: random plan", random_ms);
  t.print();

  std::printf("\nLatency vs selectivity (equality predicate, index present,\n"
              "100k rows — where the plan crossovers live):\n\n");
  Table t2({"selectivity", "index", "scan", "hash", "race (sim)"});
  for (double sel : {0.0001, 0.001, 0.01, 0.1, 0.5}) {
    QuerySpec q;
    q.rows = 100'000;
    q.selectivity = sel;
    q.predicate = PredKind::kEquality;
    q.index_available = true;
    const auto conc = run_concurrent(query_block(q, unit), cfg());
    char sc[16];
    std::snprintf(sc, sizeof sc, "%.4f", sel);
    t2.add_row({sc,
                format_time(plan_cost(Plan::kIndex, q, unit).cost),
                format_time(plan_cost(Plan::kScan, q, unit).cost),
                format_time(plan_cost(Plan::kHash, q, unit).cost),
                format_time(conc.elapsed)});
  }
  t2.print();
  std::printf(
      "\nReading: the race tracks the oracle to within the spawn overhead\n"
      "(~30 ms here) with NO knowledge of selectivity or indexes, while the\n"
      "statistical optimizer converges to the per-plan average and the\n"
      "random planner pays the mean — the paper's argument, quantified.\n");
  return 0;
}
