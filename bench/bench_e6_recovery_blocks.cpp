// E6 — distributed execution of recovery blocks (section 5.1; Kim 1984 and
// Welch 1983 measured two-alternate recovery blocks on a bus-connected
// shared-memory multiprocessor).
//
// Sequential discipline: primary runs, acceptance test, roll back, try the
// secondary. Concurrent discipline: all alternates race; the acceptance test
// self-checks in each child; fastest passing alternate wins ("a rapid
// failure-free path through the computation").
//
// Part 1: kernel-simulator sweep over the primary's failure probability and
// the alternates' runtime spread (two-alternate blocks, as Kim/Welch used).
// Part 2: the same comparison with real forked processes on this host.
#include <unistd.h>

#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "rb/recovery_block.hpp"

namespace {

using namespace altx;
using namespace altx::core;

sim::Kernel::Config sim_cfg() {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(2);
  cfg.address_space_pages = 80;
  return cfg;
}

}  // namespace

int main() {
  std::printf("E6: recovery blocks — sequential vs concurrent (section 5.1)\n\n");

  std::printf(
      "Two-alternate blocks on a 2-CPU shared-memory machine (Kim/Welch\n"
      "setup). Primary ~100 ms, secondary ~150 ms, both write 6 pages.\n"
      "p = probability the primary fails its acceptance test.\n\n");

  Table sweep({"p(primary fails)", "sequential mean", "concurrent mean",
               "speedup"});
  for (double p_fail : {0.0, 0.1, 0.25, 0.5, 0.75, 1.0}) {
    Rng rng(17);
    Summary seq;
    Summary conc;
    for (int trial = 0; trial < 40; ++trial) {
      BlockSpec b;
      AltSpec primary;
      primary.compute = 100 * kMsec;
      primary.pages_written = 6;
      primary.guard_ok = !rng.chance(p_fail);
      AltSpec secondary;
      secondary.compute = 150 * kMsec;
      secondary.pages_written = 6;
      secondary.guard_ok = true;  // the backup is simple and reliable
      b.alts = {primary, secondary};
      seq.add(static_cast<double>(run_ordered(b, sim_cfg()).elapsed));
      conc.add(static_cast<double>(run_concurrent(b, sim_cfg()).elapsed));
    }
    char pcol[16];
    std::snprintf(pcol, sizeof pcol, "%.2f", p_fail);
    sweep.add_row({pcol, format_time(static_cast<SimTime>(seq.mean())),
                   format_time(static_cast<SimTime>(conc.mean())),
                   Table::num(seq.mean() / conc.mean())});
  }
  sweep.print();

  std::printf("\nReliability-ordered but speed-inverted (fault-free): the paper\n"
              "orders alternates by reliability, so the trusted primary may be\n"
              "k times SLOWER than the simpler secondary. Sequential runs the\n"
              "primary; fastest-first rides the secondary:\n\n");
  Table spread({"primary/secondary", "sequential", "concurrent", "speedup"});
  for (double k : {1.0, 1.5, 2.0, 4.0}) {
    BlockSpec b;
    AltSpec primary;
    primary.compute = static_cast<SimTime>(100 * kMsec * k);
    primary.pages_written = 6;
    AltSpec secondary = primary;
    secondary.compute = 100 * kMsec;
    b.alts = {primary, secondary};
    const auto s = run_ordered(b, sim_cfg());
    const auto c = run_concurrent(b, sim_cfg());
    char kcol[16];
    std::snprintf(kcol, sizeof kcol, "%.1fx", k);
    spread.add_row({kcol, format_time(s.elapsed), format_time(c.elapsed),
                    Table::num(static_cast<double>(s.elapsed) /
                               static_cast<double>(c.elapsed))});
  }
  spread.print();

  std::printf("\nAblation: COW vs eager full copy (section 5.1.2: recovery\n"
              "blocks may copy all state up front so it cannot become\n"
              "inaccessible mid-computation). Two alternates, 100/150 ms,\n"
              "80-page space, 6 pages written:\n\n");
  Table copy_t({"strategy", "concurrent elapsed"});
  {
    BlockSpec b;
    AltSpec primary;
    primary.compute = 100 * kMsec;
    primary.pages_written = 6;
    AltSpec secondary = primary;
    secondary.compute = 150 * kMsec;
    b.alts = {primary, secondary};
    auto cow_cfg = sim_cfg();
    const auto cow = run_concurrent(b, cow_cfg);
    auto eager_cfg = sim_cfg();
    eager_cfg.eager_copy = true;
    const auto eager = run_concurrent(b, eager_cfg);
    copy_t.add_row({"copy-on-write", format_time(cow.elapsed)});
    copy_t.add_row({"eager full copy", format_time(eager.elapsed)});
  }
  copy_t.print();
  std::printf("\n(Eager copying pays the whole 80-page copy at spawn; COW pays\n"
              "only for the 6 written pages — the paper's trade of robustness\n"
              "against the write-fraction-proportional cost of E3.)\n");

  // ------------------------------------------------------------------ real
  std::printf("\nReal processes on this host (primary 30 ms faulty at p, secondary 60 ms):\n\n");
  Table real_t({"p(primary fails)", "sequential mean", "concurrent mean"});
  struct Ledger {
    double total;
    int entries;
  };
  for (double p_fail : {0.0, 0.5, 1.0}) {
    Summary seq;
    Summary conc;
    for (int trial = 0; trial < 6; ++trial) {
      rb::RecoveryBlock<Ledger> block;
      const std::uint64_t seed = 1000 * static_cast<std::uint64_t>(p_fail * 10) +
                                 static_cast<std::uint64_t>(trial);
      block.add_alternate(rb::with_faults<Ledger>(
          [](Ledger& l) {
            ::usleep(30'000);
            l.total += 10;
            l.entries += 1;
          },
          [](Ledger& l) { l.total = -1; }, p_fail, seed));
      block.add_alternate([](Ledger& l) {
        ::usleep(60'000);
        l.total += 10;
        l.entries += 1;
      });
      block.set_acceptance(
          [](const Ledger& l) { return l.total >= 0 && l.entries == 1; });
      Ledger a{0, 0};
      seq.add(block.run_sequential(a).elapsed_ms);
      Ledger b{0, 0};
      conc.add(block.run_concurrent(b).elapsed_ms);
    }
    char pcol[16], c1[32], c2[32];
    std::snprintf(pcol, sizeof pcol, "%.1f", p_fail);
    std::snprintf(c1, sizeof c1, "%.1f ms", seq.mean());
    std::snprintf(c2, sizeof c2, "%.1f ms", conc.mean());
    real_t.add_row({pcol, c1, c2});
  }
  real_t.print();
  std::printf(
      "\nReading: fault-free, the sequential primary wins (spawn overhead,\n"
      "paper's PI<1 regime). As the primary's failure rate grows the\n"
      "sequential discipline pays body+rollback+retry while the concurrent\n"
      "block rides the secondary — crossover near p~0.25, factor ~1.6 at\n"
      "p=1 for these parameters (Kim/Welch reported the same character).\n");
  return 0;
}
