// E10 — the full distributed alternative block (sections 3.2.1 + 4.4
// combined): remote fork by checkpoint shipment, majority-consensus
// synchronization, best-effort elimination. Measures end-to-end block
// latency against the local shared-memory execution, across checkpoint
// sizes, link speeds, loss rates, and failure scenarios.
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "dist/distributed.hpp"

namespace {

using namespace altx;
using namespace altx::dist;

struct Run {
  bool committed = false;
  double decided_ms = 0;
  double packets = 0;
};

Run run_block(std::vector<RemoteAlt> alts, DistConfig cfg, double drop,
              double bytes_per_usec, int seeds = 15) {
  Summary ms;
  Summary pk;
  int committed = 0;
  for (std::uint64_t seed = 1; seed <= static_cast<std::uint64_t>(seeds); ++seed) {
    net::Network::Config nc;
    nc.node_count = static_cast<std::size_t>(cfg.arbiters) + 1 + alts.size();
    nc.base_latency = 2 * kMsec;
    nc.jitter = kMsec;
    nc.drop_rate = drop;
    nc.bytes_per_usec = bytes_per_usec;
    nc.seed = seed;
    net::Network network(nc);
    DistributedBlock block(network, cfg, alts);
    block.start();
    network.run(10ll * 60 * kSec);
    if (block.result().committed) {
      ++committed;
      ms.add(static_cast<double>(block.result().decided_at) / kMsec);
      pk.add(static_cast<double>(block.result().packets));
    }
  }
  Run r;
  r.committed = committed > 0;
  r.decided_ms = ms.empty() ? -1 : ms.mean();
  r.packets = pk.empty() ? 0 : pk.mean();
  return r;
}

std::string ms_str(double v) {
  if (v < 0) return "--";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.0f ms", v);
  return buf;
}

}  // namespace

int main() {
  std::printf("E10: distributed alternative block end to end\n");
  std::printf("(3 alternates 500/100/300 ms unless noted; 3 arbiters; 10 Mbit/s\n"
              "links, 2 ms latency — the paper's workstation LAN)\n\n");

  const std::vector<RemoteAlt> kAlts{RemoteAlt{500 * kMsec, true},
                                     RemoteAlt{100 * kMsec, true},
                                     RemoteAlt{300 * kMsec, true}};

  std::printf("Block latency vs checkpoint size (the rfork image of E4):\n\n");
  Table t1({"checkpoint", "block latency", "packets"});
  for (std::size_t kb : {8, 70, 256, 1024}) {
    DistConfig cfg;
    cfg.checkpoint_bytes = kb * 1024;
    const auto r = run_block(kAlts, cfg, 0.0, 1.25);
    t1.add_row({std::to_string(kb) + " KB", ms_str(r.decided_ms),
                Table::num(r.packets, 0)});
  }
  t1.print();
  std::printf("\n(70 KB: spawn ~59 ms + best alternative 100 ms + 2 vote RTTs\n"
              "+ result delivery; the checkpoint dominates past ~256 KB, as\n"
              "in the paper's rfork measurements.)\n");

  std::printf("\nBlock latency vs link bandwidth (70 KB checkpoint):\n\n");
  Table t2({"bandwidth", "block latency"});
  for (double mbit : {2.0, 10.0, 100.0}) {
    DistConfig cfg;
    const auto r = run_block(kAlts, cfg, 0.0, mbit * 0.125);
    char b[32];
    std::snprintf(b, sizeof b, "%.0f Mbit/s", mbit);
    t2.add_row({b, ms_str(r.decided_ms)});
  }
  t2.print();

  std::printf("\nMessage loss (winner results + votes retransmitted):\n\n");
  Table t3({"drop rate", "block latency", "committed"});
  for (double d : {0.0, 0.1, 0.3}) {
    DistConfig cfg;
    cfg.timeout = 60 * kSec;
    const auto r = run_block(kAlts, cfg, d, 1.25);
    char dc[16];
    std::snprintf(dc, sizeof dc, "%.0f %%", d * 100);
    t3.add_row({dc, ms_str(r.decided_ms), r.committed ? "yes" : "no"});
  }
  t3.print();

  std::printf("\nFailure scenarios (70 KB, no loss):\n\n");
  Table t4({"scenario", "outcome", "latency"});
  {
    // Fast alternative's guard fails.
    DistConfig cfg;
    auto r = run_block({RemoteAlt{100 * kMsec, false}, RemoteAlt{300 * kMsec, true}},
                       cfg, 0.0, 1.25);
    t4.add_row({"fast guard fails", "commit via backup", ms_str(r.decided_ms)});
  }
  {
    // Everything fails: the FAIL candidate claims the semaphore early.
    DistConfig cfg;
    cfg.timeout = 60 * kSec;
    net::Network::Config nc;
    nc.node_count = 6;
    nc.base_latency = 2 * kMsec;
    nc.seed = 1;
    net::Network network(nc);
    DistributedBlock block(network, cfg,
                           {RemoteAlt{100 * kMsec, false}, RemoteAlt{150 * kMsec, false}});
    block.start();
    network.run();
    t4.add_row({"all guards fail", block.result().failed ? "definitive FAIL" : "?",
                ms_str(static_cast<double>(block.result().decided_at) / kMsec)});
  }
  {
    // Stragglers only: the coordinator's timeout wins the election.
    DistConfig cfg;
    cfg.timeout = 800 * kMsec;
    net::Network::Config nc;
    nc.node_count = 6;
    nc.base_latency = 2 * kMsec;
    nc.seed = 1;
    net::Network network(nc);
    DistributedBlock block(network, cfg,
                           {RemoteAlt{60 * kSec, true}, RemoteAlt{90 * kSec, true}});
    block.start();
    network.run(10 * kSec);
    t4.add_row({"timeout (FAIL wins vote)",
                block.result().failed ? "definitive FAIL" : "?",
                ms_str(static_cast<double>(block.result().decided_at) / kMsec)});
  }
  t4.print();
  std::printf(
      "\nReading: the distributed block pays checkpoint shipment plus two vote\n"
      "round trips over the best alternative's time; at-most-once holds under\n"
      "loss and crashes because the semaphore, not the kill messages, is the\n"
      "safety mechanism, and the TIMEOUT is itself a candidate (the paper's\n"
      "failure alternative), making block failure an at-most-once decision too.\n");
  return 0;
}
