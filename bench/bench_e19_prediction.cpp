// E19 — prediction-driven speculation budgeting (extension; no paper
// counterpart).
//
// Launch-everything speculation pays for N alternatives to get one answer:
// the paper's model, and the right call when nothing is known about the
// arms. Once the history store has seen a site a few times, the
// SpeculationPlanner can do better — launch the predicted leader, stage the
// arms that history says are far slower, and let a fast commit eliminate
// the staged sleepers before they have burned any CPU.
//
// This bench races one fast-reliable arm (~2 ms of spin) against two slow
// arms (~20 ms of spin) and reports the speculation overhead ratio
// (RaceReport.spec: total CPU / winner CPU, 1.0 = free speculation) under
// three policies:
//
//   baseline — prediction off. The slow arms spin until the winner's commit
//              kills them: ratio well above 1.
//   warm     — prediction on over a pre-populated store. The slow arms are
//              hedged and still asleep at commit time: ratio near 1.
//   cold     — prediction on over an empty store (every block a fresh
//              site). The plan is inactive, so this is the control: within
//              noise of baseline, proving the planner costs nothing before
//              it has data.
//
// Rows repeat at 1 and 4 submitter threads — the savings matter most under
// load, when every wasted cycle is stolen from a sibling block.
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/history.hpp"
#include "posix/predictor.hpp"
#include "posix/race.hpp"
#include "report.hpp"

namespace {

using namespace altx;
using namespace altx::posix;
using namespace std::chrono_literals;

constexpr int kBlocksPerThread = 30;
constexpr std::uint64_t kSiteBase = 0xe19'0000;
constexpr std::uint64_t kFastNs = 2'000'000;    // arm 1
constexpr std::uint64_t kSlowNs = 20'000'000;   // arms 2 and 3

/// Busy-spin so the arm's cost shows up in the wait4 CPU bill (a sleeping
/// loser is free to kill; a spinning one is the waste we are measuring).
void spin_for(std::uint64_t ns) {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::nanoseconds(ns);
  volatile std::uint64_t sink = 0;
  while (std::chrono::steady_clock::now() < until) ++sink;
}

std::vector<AlternativeFn<int>> arms() {
  return {
      [] { spin_for(kFastNs); return std::optional<int>(1); },
      [] { spin_for(kSlowNs); return std::optional<int>(2); },
      [] { spin_for(kSlowNs); return std::optional<int>(3); },
  };
}

/// Teach the store what the bench arms actually do, as ~20 prior runs
/// would have: arm 1 fast and always winning, arms 2/3 slow and losing.
void prewarm(obs::HistoryStore* store, std::uint64_t site) {
  for (int s = 0; s < 20; ++s) {
    store->record(site, 1, kFastNs + static_cast<std::uint64_t>(s) * 20'000,
                  kFastNs, true);
    store->record(site, 2, kSlowNs + static_cast<std::uint64_t>(s) * 100'000,
                  kSlowNs, false);
    store->record(site, 3, kSlowNs + static_cast<std::uint64_t>(s) * 100'000,
                  kSlowNs, false);
  }
}

struct Run {
  Summary ratio;       // per-block speculation overhead ratio
  Summary latency_ms;  // per-block wall latency
  int succeeded = 0;
  int hedged = 0;
  int predicted_losers = 0;
};

enum class Mode { kBaseline, kWarm, kCold };

Run run_row(Mode mode, int threads) {
  // Fresh store per row so warm history never leaks into the cold control.
  obs::HistoryStore* store = obs::history_enable_for_test(1024);
  PredictorConfig pc;
  pc.enabled = true;
  // Stage far enough out that the leader's commit (spin + fork + pipe
  // round-trip) lands while the hedged arms are still asleep.
  pc.stage_slack = 4.0;
  SpeculationPlanner planner(pc, store);
  if (mode == Mode::kWarm) {
    for (int t = 0; t < threads; ++t) {
      prewarm(store, kSiteBase + static_cast<std::uint64_t>(t));
    }
  }

  Run out;
  std::mutex mu;
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Run local;
      for (int b = 0; b < kBlocksPerThread; ++b) {
        RaceOptions opts;
        opts.timeout = 2'000ms;
        // Cold control: a fresh site every block, so the store never has a
        // usable sample and the plan stays inactive — while still paying
        // whatever the planner itself costs.
        opts.site_id = mode == Mode::kCold
                           ? kSiteBase + 0x1000 +
                                 static_cast<std::uint64_t>(
                                     t * kBlocksPerThread + b)
                           : kSiteBase + static_cast<std::uint64_t>(t);
        if (mode != Mode::kBaseline) opts.planner = &planner;
        RaceReport rep;
        opts.report = &rep;
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = race<int>(arms(), opts);
        const auto dt = std::chrono::steady_clock::now() - t0;
        local.latency_ms.add(
            std::chrono::duration_cast<
                std::chrono::duration<double, std::milli>>(dt)
                .count());
        if (r.has_value()) ++local.succeeded;
        if (rep.spec.overhead_ratio() > 0) {
          local.ratio.add(rep.spec.overhead_ratio());
        }
        local.hedged += rep.pred_hedged;
        local.predicted_losers += rep.predicted_losers;
      }
      std::lock_guard<std::mutex> lk(mu);
      out.succeeded += local.succeeded;
      out.hedged += local.hedged;
      out.predicted_losers += local.predicted_losers;
      for (double v : local.ratio.samples()) out.ratio.add(v);
      for (double v : local.latency_ms.samples()) out.latency_ms.add(v);
    });
  }
  for (std::thread& th : pool) th.join();
  obs::history_disable_for_test();
  return out;
}

const char* mode_name(Mode m) {
  switch (m) {
    case Mode::kBaseline: return "baseline";
    case Mode::kWarm: return "warm";
    case Mode::kCold: return "cold";
  }
  return "?";
}

}  // namespace

int main() {
  std::printf("E19: prediction-driven speculation budgeting\n\n");
  std::printf("1 fast arm (~2 ms spin) vs 2 slow arms (~20 ms spin), %d\n"
              "blocks per thread. ratio = total CPU / winner CPU; 1.0 means\n"
              "speculation was free. warm = planner over a pre-populated\n"
              "history store; cold = planner over an empty store (control).\n\n",
              kBlocksPerThread);

  Table t({"mode", "threads", "success", "hedged", "ratio p50", "ratio p95",
           "lat p50", "lat p95"});
  bench::Report report("e19_prediction");
  for (const int threads : {1, 4}) {
    for (const Mode mode : {Mode::kBaseline, Mode::kWarm, Mode::kCold}) {
      const Run r = run_row(mode, threads);
      const int blocks = threads * kBlocksPerThread;
      char success[32];
      std::snprintf(success, sizeof success, "%d/%d", r.succeeded, blocks);
      t.add_row({mode_name(mode), std::to_string(threads), success,
                 std::to_string(r.hedged),
                 Table::num(r.ratio.percentile(50)),
                 Table::num(r.ratio.percentile(95)),
                 Table::num(r.latency_ms.percentile(50)) + " ms",
                 Table::num(r.latency_ms.percentile(95)) + " ms"});
      report.row(mode_name(mode))
          .param("threads", static_cast<double>(threads))
          .param("blocks", static_cast<double>(blocks))
          .metric("success", r.succeeded)
          .metric("hedged", r.hedged)
          .metric("predicted_losers", r.predicted_losers)
          .metric("overhead_ratio_p50", r.ratio.percentile(50))
          .metric("overhead_ratio_mean", r.ratio.mean())
          .latency(r.latency_ms);
    }
  }
  t.print();
  report.write();
  std::printf("\nwrote %s\n", bench::report_path("e19_prediction").c_str());
  return 0;
}
