// E12 — hedged execution against tail latency (the paper's section 4.2
// case 3 taken to its modern conclusion: when tau varies with the execution
// environment, race staggered replicas of the same method).
//
// Service times are drawn from heavy-tailed distributions on the kernel
// simulator; hedging is modeled as an alternative block whose replicas start
// `stagger` apart. Reported: mean / p95 / p99 latency without hedging, with
// one hedge, and with two hedges, plus the extra-work cost.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/workload.hpp"

namespace {

using namespace altx;
using namespace altx::core;

/// One request: replicas of the same service draw independent latencies.
struct HedgeRun {
  Summary latency;
  double extra_work_fraction = 0;  // wasted / useful
};

HedgeRun run_hedged(TimeDist dist, SimTime lo, SimTime hi, int copies,
                    SimTime stagger, std::uint64_t seed, int requests = 400) {
  Rng rng(seed);
  WorkloadParams draw;
  draw.dist = dist;
  draw.lo = lo;
  draw.hi = hi;
  HedgeRun out;
  double duplicated = 0;
  double useful = 0;
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(copies);
  cfg.machine.fork_base = 500;      // a hedged RPC reissues, not rforks:
  cfg.machine.per_page_map = 0;     // spawning is cheap relative to service
  cfg.address_space_pages = 4;
  for (int q = 0; q < requests; ++q) {
    std::vector<SimTime> svc;
    BlockSpec b;
    for (int k = 0; k < copies; ++k) {
      svc.push_back(draw_time(draw, rng));
      AltSpec a;
      // Copy k starts stagger*k later; the kernel models the delay as
      // compute (it occupies the replica's slot, not real work).
      a.compute = svc.back() + stagger * k;
      a.pages_read = 1;
      a.pages_written = 1;
      b.alts.push_back(a);
    }
    const auto r = run_concurrent(b, cfg);
    out.latency.add(static_cast<double>(r.elapsed) / kMsec);
    // Duplicated *service* work: each loser actually serves from its start
    // (stagger*k) until the winner finishes — sleep time does not count.
    SimTime finish = svc[0];
    for (int k = 1; k < copies; ++k) {
      finish = std::min<SimTime>(finish, stagger * k + svc[static_cast<std::size_t>(k)]);
    }
    for (int k = 0; k < copies; ++k) {
      const SimTime start = stagger * k;
      const SimTime served =
          std::max<SimTime>(0, std::min<SimTime>(finish, start + svc[static_cast<std::size_t>(k)]) - start);
      if (start + svc[static_cast<std::size_t>(k)] == finish && served == svc[static_cast<std::size_t>(k)]) {
        useful += static_cast<double>(served);
      } else {
        duplicated += static_cast<double>(served);
      }
    }
  }
  out.extra_work_fraction = useful > 0 ? duplicated / useful : 0;
  return out;
}

}  // namespace

int main() {
  std::printf("E12: hedged execution vs tail latency\n\n");
  std::printf("Service time ~ Pareto(20 ms, alpha 1.5) — a heavy tail; hedges\n"
              "start 40 ms apart. 400 requests per row.\n\n");

  Table t({"copies", "mean", "p95", "p99", "extra work"});
  for (int copies : {1, 2, 3}) {
    const auto r = run_hedged(TimeDist::kPareto, 20 * kMsec, 1500, copies,
                              40 * kMsec, 99);
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.0f %%", r.extra_work_fraction * 100);
    t.add_row({std::to_string(copies),
               Table::num(r.latency.mean()) + " ms",
               Table::num(r.latency.percentile(95)) + " ms",
               Table::num(r.latency.percentile(99)) + " ms",
               copies == 1 ? "0 %" : pct});
  }
  t.print();

  std::printf("\nStagger sweep (2 copies): early hedges cut the tail harder\n"
              "but duplicate more work:\n\n");
  Table t2({"stagger", "p99", "extra work"});
  for (SimTime st : {5 * kMsec, 20 * kMsec, 40 * kMsec, 100 * kMsec}) {
    const auto r =
        run_hedged(TimeDist::kPareto, 20 * kMsec, 1500, 2, st, 7);
    char pct[32];
    std::snprintf(pct, sizeof pct, "%.0f %%", r.extra_work_fraction * 100);
    t2.add_row({format_time(st), Table::num(r.latency.percentile(99)) + " ms", pct});
  }
  t2.print();

  std::printf("\nLight-tailed control (uniform 20..60 ms): hedging buys little\n"
              "when there is no tail to cut:\n\n");
  Table t3({"copies", "mean", "p99"});
  for (int copies : {1, 2}) {
    const auto r = run_hedged(TimeDist::kUniform, 20 * kMsec, 60 * kMsec,
                              copies, 40 * kMsec, 13);
    t3.add_row({std::to_string(copies), Table::num(r.latency.mean()) + " ms",
                Table::num(r.latency.percentile(99)) + " ms"});
  }
  t3.print();
  std::printf(
      "\nReading: on heavy tails one staggered replica collapses the p99 for\n"
      "modest duplicated service work — the paper's racing construct pointed\n"
      "at the execution environment's own variance. Early hedges trade more\n"
      "duplicated work for (slightly) better tails; on light tails the same\n"
      "machinery buys nothing, matching the dispersion rule of section 4.2.\n");
  return 0;
}
