// E4 — remote fork cost (section 4.4, third measurement; Smith & Ioannidis).
//
// Paper: rfork() of a 70 KB process takes slightly less than a second;
// network delays push the observed average to ~1.3 s. The dominant cost is
// checkpointing the process in its entirety and moving it through the
// network file system.
//
// Part 1: the workstation-LAN machine model's rfork cost across image sizes
// (the paper's 70 KB row should land just under one second).
// Part 2: a real checkpoint/restore cycle on this host across image sizes,
// with the 1989 network delay added as a constant.
#include <cstdio>

#include "common/table.hpp"
#include "posix/checkpoint.hpp"
#include "sim/kernel.hpp"

int main() {
  using namespace altx;
  using sim::MachineModel;

  std::printf("E4: remote fork via checkpoint/restart (paper section 4.4)\n\n");
  std::printf("Paper-reported: rfork of a 70 KB process ~1 s; observed ~1.3 s\n"
              "with network delays.\n\n");

  const MachineModel lan = MachineModel::workstation_lan(2);
  Table model({"image", "model rfork cost"});
  for (std::size_t kb : {8, 32, 70, 128, 256, 512}) {
    model.add_row({std::to_string(kb) + " KB",
                   format_time(lan.rfork_cost(kb * 1024))});
  }
  model.print();
  std::printf("\n(70 KB row: just under one second, as the paper reports; the\n"
              "observed 1.3 s average corresponds to added queueing/jitter.)\n\n");

  std::printf("Checkpoint vs on-demand state transfer (Theimer 1985, the\n"
              "'more sophisticated migration scheme' the paper cites): a 256 KB\n"
              "remote alternative touching a varying working set:\n\n");
  {
    Table od({"pages touched (of 64)", "checkpoint rfork", "on-demand rfork"});
    auto elapsed = [&](sim::RemoteSpawn strategy, int touched) {
      sim::Kernel::Config cfg;
      cfg.machine = lan;
      cfg.address_space_pages = 64;
      cfg.remote_spawn = strategy;
      sim::Kernel k(cfg);
      auto local = sim::ProgramBuilder().abort().build();
      sim::ProgramBuilder remote;
      remote.compute(10 * kMsec);
      for (int i = 0; i < touched; ++i) remote.read(static_cast<sim::VPage>(i));
      k.spawn_root(sim::ProgramBuilder().alt({local, remote.build()}).build());
      return k.run();
    };
    for (int touched : {4, 16, 32, 64}) {
      od.add_row({std::to_string(touched),
                  format_time(elapsed(sim::RemoteSpawn::kCheckpoint, touched)),
                  format_time(elapsed(sim::RemoteSpawn::kOnDemand, touched))});
    }
    od.print();
    std::printf("\n(On-demand wins for small working sets; the bulk checkpoint\n"
                "amortises the per-page round trips once most pages are used.\n"
                "'Most programs exhibit locality of reference' — section 4.4 —\n"
                "which favours on-demand.)\n\n");
  }

  std::printf("Measured on this host (checkpoint -> file -> fork -> restore):\n\n");
  Table host({"image", "checkpoint", "restore", "total(+1989 net 400ms)"});
  for (std::size_t kb : {8, 70, 256, 1024, 4096}) {
    const auto r = posix::rfork_simulated(kb * 1024, /*network_ms=*/400.0, "/tmp");
    char c1[32], c2[32], c3[32];
    std::snprintf(c1, sizeof c1, "%.2f ms", r.checkpoint_ms);
    std::snprintf(c2, sizeof c2, "%.2f ms", r.restore_ms);
    std::snprintf(c3, sizeof c3, "%.2f ms", r.total_ms);
    host.add_row({std::to_string(kb) + " KB", c1, c2, c3});
  }
  host.print();
  std::printf(
      "\nReading: checkpoint size drives the cost in both eras; on modern disks\n"
      "the constant network term dominates instead of the serialisation, but\n"
      "the linear-in-image-size shape is unchanged.\n");
  return 0;
}
