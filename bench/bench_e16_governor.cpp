// E16 — governed degradation under overload (extension; no paper
// counterpart).
//
// The paper assumes the machine has room for every speculative arm; the
// governor is what happens when it does not. This bench offers the process
// more concurrent blocks than the token budget allows — T submitter threads,
// each racing 4-alternative blocks against a fixed budget of 8 child tokens —
// and measures how the system degrades: throughput, block latency, how many
// blocks fell back to serialized execution, and how many runaway arms the
// watchdog contained.
//
// Two arm mixes per row:
//   fast      — all four arms viable, 2-4 ms each. Contention cost only.
//   runaway   — every 6th block's only viable arm sleeps past the 80 ms wall
//               budget; the watchdog must kill it (SIGTERM→SIGKILL, 1 ms
//               grace) and the supervisor recovers in-process.
//
// The invariant on display: max_in_flight never exceeds the token budget
// except by sanctioned single-arm overdrafts, no matter how much work is
// offered.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "posix/governor.hpp"
#include "posix/supervisor.hpp"
#include "report.hpp"

namespace {

using namespace altx;
using namespace altx::posix;
using namespace std::chrono_literals;

constexpr int kBlocksPerThread = 10;
constexpr int kTokens = 8;
constexpr int kRunawayEvery = 6;

std::vector<AlternativeFn<int>> fast_alts() {
  return {
      [] { ::usleep(2'000); return std::optional<int>(1); },
      [] { ::usleep(3'000); return std::optional<int>(2); },
      [] { ::usleep(3'500); return std::optional<int>(3); },
      [] { ::usleep(4'000); return std::optional<int>(4); },
  };
}

/// The only viable arm sleeps well past the wall budget: the race can only
/// end when the watchdog kills it, after which the supervisor's sequential
/// fallback produces the value in-process.
std::vector<AlternativeFn<int>> runaway_alts() {
  return {
      [] { return std::optional<int>(); },  // failed guard, instantly
      [] { ::usleep(400'000); return std::optional<int>(2); },
  };
}

struct Run {
  Summary latency_ms;
  int succeeded = 0;
  int degraded = 0;
  double blocks_per_s = 0;
  GovernorStats gov;
};

Run run_row(int threads, bool with_runaways, SpeculationGovernor* gov) {
  Run out;
  std::mutex mu;
  const auto t_all0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    pool.emplace_back([&, t] {
      Summary local;
      int ok = 0, deg = 0;
      for (int b = 0; b < kBlocksPerThread; ++b) {
        const bool runaway =
            with_runaways && (t * kBlocksPerThread + b) % kRunawayEvery == 0;
        RetryPolicy policy;
        policy.max_attempts = 2;
        policy.initial_backoff = 1ms;
        policy.max_backoff = 4ms;
        policy.base_timeout = 2'000ms;
        policy.seed = static_cast<std::uint64_t>(t) * 1'000 + b;
        RaceOptions opts;
        opts.timeout = 2'000ms;
        opts.governor = gov;
        const auto t0 = std::chrono::steady_clock::now();
        const auto r = supervised_race<int>(
            runaway ? runaway_alts() : fast_alts(), policy, opts);
        const auto dt = std::chrono::steady_clock::now() - t0;
        local.add(std::chrono::duration_cast<
                      std::chrono::duration<double, std::milli>>(dt)
                      .count());
        if (r.has_value()) {
          ++ok;
          if (r->degraded) ++deg;
        }
      }
      std::lock_guard<std::mutex> lk(mu);
      out.succeeded += ok;
      out.degraded += deg;
      for (double v : local.samples()) out.latency_ms.add(v);
    });
  }
  for (std::thread& th : pool) th.join();
  const double secs = std::chrono::duration_cast<std::chrono::duration<double>>(
                          std::chrono::steady_clock::now() - t_all0)
                          .count();
  const int blocks = threads * kBlocksPerThread;
  out.blocks_per_s = secs > 0 ? blocks / secs : 0;
  out.gov = gov->stats();
  return out;
}

}  // namespace

int main() {
  std::printf("E16: admission control and arm containment under overload\n\n");
  std::printf("T threads × %d blocks each, 4 arms per fast block, against a\n"
              "budget of %d child tokens (80 ms wall budget, 1 ms SIGTERM\n"
              "grace). Blocks denied admission degrade to serialized forked\n"
              "execution; runaway arms are killed by the watchdog.\n\n",
              kBlocksPerThread, kTokens);

  Table t({"mix", "threads", "success", "degraded", "p50", "p95", "blocks/s",
           "max in flight", "kills"});
  bench::Report report("e16_governor");
  for (const bool runaways : {false, true}) {
    for (const int threads : {2, 8, 16, 32}) {
      GovernorConfig gc;
      gc.tokens = kTokens;
      gc.admit_wait = 50ms;
      gc.serial_admit_wait = 200ms;
      gc.arm_wall_budget = 80ms;
      gc.kill_grace = 1ms;
      gc.poll_interval = 2ms;
      SpeculationGovernor gov(gc);
      const Run r = run_row(threads, runaways, &gov);
      const int blocks = threads * kBlocksPerThread;
      const std::uint64_t kills =
          r.gov.kills_wall + r.gov.kills_cpu + r.gov.kills_shed;
      char success[32];
      std::snprintf(success, sizeof success, "%d/%d", r.succeeded, blocks);
      t.add_row({runaways ? "runaway" : "fast", std::to_string(threads),
                 success, std::to_string(r.degraded),
                 Table::num(r.latency_ms.percentile(50)) + " ms",
                 Table::num(r.latency_ms.percentile(95)) + " ms",
                 Table::num(r.blocks_per_s, 1),
                 std::to_string(r.gov.max_in_flight),
                 std::to_string(kills)});
      report.row(runaways ? "runaway" : "fast")
          .param("threads", static_cast<double>(threads))
          .param("tokens", static_cast<double>(kTokens))
          .param("blocks", static_cast<double>(blocks))
          .metric("success", r.succeeded)
          .metric("degraded", r.degraded)
          .metric("blocks_per_s", r.blocks_per_s)
          .metric("max_in_flight", r.gov.max_in_flight)
          .metric("overdrafts", static_cast<double>(r.gov.overdrafts))
          .metric("kills_wall", static_cast<double>(r.gov.kills_wall))
          .metric("term_escalations",
                  static_cast<double>(r.gov.term_escalations))
          .metric("denied", static_cast<double>(r.gov.denied))
          .latency(r.latency_ms);
    }
  }
  t.print();
  report.write();
  std::printf("\nwrote %s\n", bench::report_path("e16_governor").c_str());
  return 0;
}
