// E18 — altxd: zygote amortization and multi-client throughput (extension;
// no paper counterpart).
//
// Two claims on trial:
//
//   1. Amortization. Fork cost scales with the parent's address space
//      (E2 measured the cold path). A daemon that forks every job from its
//      own ballooning image pays that price per job; altxd forks workers
//      from a small frozen zygote, so job spawn cost stays flat however
//      big the embedding process grows. Rows: local cold-fork races vs
//      warm daemon jobs at increasing balloon sizes (dirtied parent heap).
//
//   2. Concurrency. With 4 client threads pipelining 300 jobs each, the
//      daemon's in-flight high water must clear 1000 concurrent jobs, with
//      per-client admission keeping the pool fair and p50/p95/p99 sane.
//
// External mode (`--connect SOCK --jobs N --clients K`) turns this binary
// into a client driver for an already-running altxd: K forked client
// processes split N echo jobs; used by the CI server-smoke job.
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/event.hpp"
#include "obs/trace.hpp"
#include "posix/race.hpp"
#include "report.hpp"
#include "server/client.hpp"
#include "server/registry.hpp"
#include "server/server.hpp"

namespace {

using namespace altx;
using namespace std::chrono_literals;

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// A scaled-down run when the sandbox can't fork the full fleet.
bool constrained_env() {
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_NPROC, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY &&
      rl.rlim_cur < 256) {
    return true;
  }
  if (::getrlimit(RLIMIT_AS, &rl) == 0 && rl.rlim_cur != RLIM_INFINITY &&
      rl.rlim_cur < (1ULL << 30)) {
    return true;
  }
  return false;
}

server::JobSpec echo_spec() {
  server::JobSpec s;
  s.arms.push_back({"echo", {1, 2, 3, 4}});
  return s;
}

server::JobSpec sleep_spec(std::uint32_t ms) {
  Bytes args;
  ByteWriter w(args);
  w.u32(ms);
  server::JobSpec s;
  s.timeout_ms = 60'000;
  s.arms.push_back({"sleep_ms", args});
  return s;
}

/// Dirties `mb` MiB so fork must copy that many page-table entries: the
/// balloon stands in for a long-lived server's accreted state.
std::vector<std::uint8_t>& balloon(std::size_t mb) {
  static std::vector<std::uint8_t> pool;
  const std::size_t want = mb << 20;
  if (pool.size() < want) {
    pool.resize(want);
    for (std::size_t i = 0; i < want; i += 4096) pool[i] = 1;
  }
  return pool;
}

// ---- amortization: cold local forks vs warm daemon workers ---------------

struct AmortRow {
  Summary local_ms;   // posix::race from the ballooned process (cold fork)
  Summary daemon_ms;  // same block through altxd (zygote-warm worker)
};

AmortRow run_amortization(server::Client& client, int jobs) {
  AmortRow out;
  const std::vector<posix::AlternativeFn<int>> alts = {
      [] { return std::optional<int>(7); },
  };
  for (int i = 0; i < jobs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto r = posix::race<int>(alts);
    if (!r.has_value()) std::abort();
    out.local_ms.add(ms_since(t0));
  }
  for (int i = 0; i < jobs; ++i) {
    const auto t0 = std::chrono::steady_clock::now();
    const server::JobOutcome o =
        client.wait(client.submit(echo_spec()), 30'000ms);
    if (o.status != server::JobStatus::kWon) std::abort();
    out.daemon_ms.add(ms_since(t0));
  }
  return out;
}

// ---- throughput: many clients, deep pipelines ---------------------------

struct ThroughputRow {
  Summary job_ms;  // submit → outcome, per job (includes queue wait)
  double jobs_per_s = 0;
  std::uint64_t inflight_hw = 0;
  std::uint64_t denied = 0;
};

ThroughputRow run_throughput(const std::string& sock, int clients,
                             int jobs_per_client, std::uint32_t sleep_ms,
                             server::Server& srv) {
  ThroughputRow out;
  std::mutex mu;
  const auto t_all0 = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  for (int t = 0; t < clients; ++t) {
    pool.emplace_back([&] {
      server::Client c = server::Client::connect_unix(sock);
      // Pipeline everything first: in-flight depth is the whole point.
      std::vector<std::uint64_t> ids;
      std::vector<std::chrono::steady_clock::time_point> t0s;
      ids.reserve(static_cast<std::size_t>(jobs_per_client));
      for (int j = 0; j < jobs_per_client; ++j) {
        t0s.push_back(std::chrono::steady_clock::now());
        ids.push_back(c.submit(sleep_spec(sleep_ms)));
      }
      Summary local;
      std::uint64_t denied = 0;
      for (std::size_t j = 0; j < ids.size(); ++j) {
        const server::JobOutcome o = c.wait(ids[j], 120'000ms);
        if (o.status == server::JobStatus::kDenied) {
          ++denied;
          continue;
        }
        if (o.status != server::JobStatus::kWon) std::abort();
        local.add(ms_since(t0s[j]));
      }
      std::lock_guard<std::mutex> lk(mu);
      for (double v : local.samples()) out.job_ms.add(v);
      out.denied += denied;
    });
  }
  for (std::thread& th : pool) th.join();
  const double secs = ms_since(t_all0) / 1e3;
  const auto total = static_cast<double>(out.job_ms.count());
  out.jobs_per_s = secs > 0 ? total / secs : 0;
  out.inflight_hw = srv.stats().inflight_hw;
  return out;
}

// ---- scrape overhead: 10 Hz metrics scraper vs dark ---------------------

/// One blocking GET /metrics; returns bytes read (0 on failure).
std::size_t scrape_once(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  std::size_t total = 0;
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) == 0) {
    const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
    if (::write(fd, req, sizeof req - 1) == sizeof req - 1) {
      char buf[8192];
      ssize_t n = 0;
      while ((n = ::read(fd, buf, sizeof buf)) > 0)
        total += static_cast<std::size_t>(n);
    }
  }
  ::close(fd);
  return total;
}

struct Scraper {
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> scrapes{0};
  std::atomic<std::uint64_t> bytes{0};
  std::thread th;

  void run_at_10hz(int port) {
    th = std::thread([this, port] {
      while (!stop.load(std::memory_order_relaxed)) {
        const std::size_t n = scrape_once(port);
        if (n > 0) {
          scrapes.fetch_add(1, std::memory_order_relaxed);
          bytes.fetch_add(n, std::memory_order_relaxed);
        }
        std::this_thread::sleep_for(100ms);
      }
    });
  }
  void join() {
    stop.store(true, std::memory_order_relaxed);
    if (th.joinable()) th.join();
  }
};

// ---- external client-driver mode (CI server-smoke) ----------------------

int drive_external(const std::string& sock, int jobs, int clients) {
  std::printf("driving %d jobs from %d client processes against %s\n", jobs,
              clients, sock.c_str());
  std::vector<pid_t> kids;
  const int per = jobs / clients;
  for (int k = 0; k < clients; ++k) {
    const pid_t pid = ::fork();
    if (pid < 0) {
      std::perror("fork");
      return 1;
    }
    if (pid == 0) {
      try {
        server::Client c = server::Client::connect_unix(sock);
        // Mint a cross-process trace id per job, exactly as server::race<T>
        // does, so a stitched client+daemon trace correlates across the
        // hop. The ring is fork-shared, so these records land in the
        // parent's arena and export with its ALTX_TRACE dump at exit.
        std::vector<std::uint64_t> ids, traces;
        std::vector<std::uint32_t> races;
        for (int j = 0; j < per; ++j) {
          const std::uint64_t trace = obs::mint_trace_id();
          const std::uint64_t span = obs::mint_trace_id();
          const std::uint32_t race = obs::next_race_id();
          obs::emit_trace(trace, obs::EventKind::kRaceBegin, race, 0, 1, 1);
          ids.push_back(c.submit(echo_spec(), trace, span));
          traces.push_back(trace);
          races.push_back(race);
        }
        for (std::size_t j = 0; j < ids.size(); ++j) {
          const server::JobOutcome o = c.wait(ids[j], 60'000ms);
          obs::emit_trace(traces[j], obs::EventKind::kRaceDecided, races[j],
                          0, 0, o.winner);
          if (o.status != server::JobStatus::kWon) ::_exit(3);
        }
      } catch (const std::exception& e) {
        std::fprintf(stderr, "client %d: %s\n", k, e.what());
        ::_exit(4);
      }
      ::_exit(0);
    }
    kids.push_back(pid);
  }
  int rc = 0;
  for (const pid_t pid : kids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      rc = 1;
    }
  }
  std::printf(rc == 0 ? "all %d clients completed %d jobs\n"
                      : "FAILED: a client driver exited nonzero (%d x %d)\n",
              clients, per);
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // External mode: --connect SOCK [--jobs N] [--clients K].
  std::string connect;
  int ext_jobs = 200, ext_clients = 4;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--connect" && i + 1 < argc) connect = argv[++i];
    else if (a == "--jobs" && i + 1 < argc) ext_jobs = std::atoi(argv[++i]);
    else if (a == "--clients" && i + 1 < argc)
      ext_clients = std::atoi(argv[++i]);
  }
  if (!connect.empty()) return drive_external(connect, ext_jobs, ext_clients);

  const bool constrained = constrained_env();
  const int amort_jobs = constrained ? 40 : 200;
  const int tp_clients = 4;
  const int tp_jobs = constrained ? 75 : 300;

  std::printf("E18: altxd zygote amortization and multi-client throughput\n\n");
  if (constrained) std::printf("(constrained environment: scaled down)\n\n");

  server::register_builtin_handlers(server::HandlerRegistry::global());

  const std::string sock =
      "/tmp/altx_bench_e18_" + std::to_string(::getpid()) + ".sock";
  server::ServerConfig cfg;
  cfg.socket_path = sock;
  cfg.workers = constrained ? 4 : 8;
  cfg.per_client_running = 8;
  cfg.per_client_queue = tp_jobs + 8;  // throughput rows must not deny
  cfg.metrics_addr = "127.0.0.1:0";    // for the scrape-overhead rows

  // The zygote forks HERE, while this process is still small. Everything
  // ballooned below bloats the local fork path only — that asymmetry is
  // the experiment.
  server::Server srv(cfg);
  srv.start();
  std::thread runner([&] { srv.run(); });
  server::Client client = server::Client::connect_unix(sock);

  bench::Report report("e18_server");
  Table amort({"balloon", "local cold fork p50", "daemon warm p50",
               "local p95", "daemon p95", "speedup p50"});
  for (const std::size_t mb :
       constrained ? std::vector<std::size_t>{0, 32}
                   : std::vector<std::size_t>{0, 64, 256}) {
    balloon(mb);
    const AmortRow r = run_amortization(client, amort_jobs);
    const double speedup =
        r.daemon_ms.median() > 0 ? r.local_ms.median() / r.daemon_ms.median()
                                 : 0;
    amort.add_row({std::to_string(mb) + " MiB",
                   Table::num(r.local_ms.median()) + " ms",
                   Table::num(r.daemon_ms.median()) + " ms",
                   Table::num(r.local_ms.percentile(95)) + " ms",
                   Table::num(r.daemon_ms.percentile(95)) + " ms",
                   Table::num(speedup, 2) + "x"});
    report.row("amortization")
        .param("balloon_mb", static_cast<double>(mb))
        .param("jobs", static_cast<double>(amort_jobs))
        .metric("local_p50_ms", r.local_ms.median())
        .metric("local_p95_ms", r.local_ms.percentile(95))
        .metric("local_p99_ms", r.local_ms.percentile(99))
        .metric("daemon_p50_ms", r.daemon_ms.median())
        .metric("daemon_p95_ms", r.daemon_ms.percentile(95))
        .metric("daemon_p99_ms", r.daemon_ms.percentile(99))
        .metric("speedup_p50", speedup)
        .latency(r.daemon_ms);
  }
  amort.print();

  std::printf("\nthroughput: %d clients x %d pipelined sleep(2ms) jobs\n\n",
              tp_clients, tp_jobs);
  const ThroughputRow tp =
      run_throughput(sock, tp_clients, tp_jobs, 2, srv);
  Table t({"clients", "jobs", "in-flight hw", "jobs/s", "p50", "p95", "p99",
           "denied"});
  t.add_row({std::to_string(tp_clients),
             std::to_string(tp_clients * tp_jobs),
             std::to_string(tp.inflight_hw), Table::num(tp.jobs_per_s, 1),
             Table::num(tp.job_ms.median()) + " ms",
             Table::num(tp.job_ms.percentile(95)) + " ms",
             Table::num(tp.job_ms.percentile(99)) + " ms",
             std::to_string(tp.denied)});
  t.print();
  report.row("throughput")
      .param("clients", static_cast<double>(tp_clients))
      .param("jobs_per_client", static_cast<double>(tp_jobs))
      .param("workers", static_cast<double>(cfg.workers))
      .metric("inflight_hw", static_cast<double>(tp.inflight_hw))
      .metric("jobs_per_s", tp.jobs_per_s)
      .metric("p50_ms", tp.job_ms.median())
      .metric("p95_ms", tp.job_ms.percentile(95))
      .metric("p99_ms", tp.job_ms.percentile(99))
      .metric("denied", static_cast<double>(tp.denied))
      .latency(tp.job_ms);

  // Scrape overhead: the same throughput workload, dark vs with a 10 Hz
  // scraper hammering the metrics endpoint. The exposition renders inside
  // the daemon's poll loop, so any cost shows up directly as lost jobs/s.
  std::printf("\nscrape overhead: %d clients x %d jobs, dark vs 10 Hz GET\n\n",
              tp_clients, tp_jobs);
  const int metrics_port = srv.metrics_port();
  const ThroughputRow dark =
      run_throughput(sock, tp_clients, tp_jobs, 2, srv);
  Scraper scraper;
  scraper.run_at_10hz(metrics_port);
  const ThroughputRow lit = run_throughput(sock, tp_clients, tp_jobs, 2, srv);
  scraper.join();
  const double overhead_pct =
      dark.jobs_per_s > 0
          ? 100.0 * (1.0 - lit.jobs_per_s / dark.jobs_per_s)
          : 0;
  Table sc({"mode", "jobs/s", "p50", "p95", "scrapes", "overhead"});
  sc.add_row({"dark", Table::num(dark.jobs_per_s, 1),
              Table::num(dark.job_ms.median()) + " ms",
              Table::num(dark.job_ms.percentile(95)) + " ms", "0", "--"});
  sc.add_row({"10 Hz scrape", Table::num(lit.jobs_per_s, 1),
              Table::num(lit.job_ms.median()) + " ms",
              Table::num(lit.job_ms.percentile(95)) + " ms",
              std::to_string(scraper.scrapes.load()),
              Table::num(overhead_pct, 2) + " %"});
  sc.print();
  report.row("scrape_overhead")
      .param("clients", static_cast<double>(tp_clients))
      .param("jobs_per_client", static_cast<double>(tp_jobs))
      .param("scrape_hz", 10)
      .metric("dark_jobs_per_s", dark.jobs_per_s)
      .metric("scraped_jobs_per_s", lit.jobs_per_s)
      .metric("overhead_pct", overhead_pct)
      .metric("scrapes", static_cast<double>(scraper.scrapes.load()))
      .metric("scrape_bytes", static_cast<double>(scraper.bytes.load()))
      .metric("dark_p50_ms", dark.job_ms.median())
      .metric("scraped_p50_ms", lit.job_ms.median());
  if (overhead_pct > 2.0) {
    std::printf("WARNING: scrape overhead %.2f%% above the 2%% budget\n",
                overhead_pct);
  }

  srv.request_stop();
  runner.join();

  report.write();
  std::printf("\nwrote %s\n", bench::report_path("e18_server").c_str());

  if (!constrained && tp.inflight_hw < 1000) {
    std::printf("WARNING: in-flight high water %llu below the 1000 target\n",
                static_cast<unsigned long long>(tp.inflight_hw));
  }
  return 0;
}
