// E7 — OR-parallelism in Prolog (section 5.2).
//
// Queries whose top choice point has several clauses with data-dependent,
// unpredictable costs — the paper's ideal environment ("the computation is
// data-driven, and thus the execution time and control flow can vary greatly
// with the input").
//
// Part 1: kernel-simulator comparison of sequential backtracking vs the
// concurrent alternative block across workloads and LIPS rates (granularity
// ablation: the same choice point is or isn't worth spawning depending on
// the work per inference).
// Part 2: real-process OR-parallel execution of the same queries.
#include <cstdio>

#include "common/table.hpp"
#include "prolog/or_parallel.hpp"

namespace {

using namespace altx;
using namespace altx::prolog;

/// A database whose solve/1 has three strategies of very different cost; the
/// cheap one is NOT first, so sequential backtracking pays for the expensive
/// branch (left-to-right order) while OR-parallel rides the cheap one.
Database strategies_db(int slow1, int quick, int slow2) {
  Database db;
  std::string text = R"(
    solve(X) :- deep()" + std::to_string(slow1) + R"(), X = slow1.
    solve(X) :- deep()" + std::to_string(quick) + R"(), X = quick.
    solve(X) :- deep()" + std::to_string(slow2) + R"(), X = slow2.
    deep(0).
    deep(N) :- N > 0, M is N - 1, deep(M), leaf.
    leaf.
  )";
  db.consult(text);
  return db;
}

/// Graph reachability with one short route hidden among long detours.
Database graph_db() {
  Database db;
  std::string text;
  // route 1: a long chain a -> c1 -> c2 -> ... -> c40 -> z
  text += "path(X, Z) :- chain(X, Z).\n";
  // route 2: an even longer doomed search (fails at the end)
  text += "path(X, Z) :- doomed(X, Z).\n";
  // route 3: the direct edge
  text += "path(X, Z) :- edge(X, Z).\n";
  text += "edge(a, z).\n";
  text += "chain(a, Z) :- hop0(Z).\n";
  for (int i = 0; i < 40; ++i) {
    text += "hop" + std::to_string(i) + "(Z) :- hop" + std::to_string(i + 1) +
            "(Z).\n";
  }
  text += "hop40(z).\n";
  text += "doomed(X, Z) :- spin(120), fail.\n";
  text += "spin(0).\nspin(N) :- N > 0, M is N - 1, spin(M).\n";
  db.consult(text);
  return db;
}

sim::Kernel::Config sim_cfg(int cpus) {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(cpus);
  cfg.address_space_pages = 64;
  return cfg;
}

void print_sim(const char* label, const Database& db, const Query& q,
               double usec_per_inference) {
  const auto r = simulate_or_parallel(db, q, usec_per_inference, sim_cfg(3));
  std::string branches;
  for (const auto& b : r.branches) {
    if (!branches.empty()) branches += "/";
    branches += std::to_string(b.steps);
    branches += b.found ? "+" : "-";
  }
  std::printf("  %-24s branches(steps) %-22s seq %-12s par %-12s speedup %.2f\n",
              label, branches.c_str(), format_time(r.sequential_time).c_str(),
              format_time(r.parallel_time).c_str(), r.speedup);
}

}  // namespace

int main() {
  std::printf("E7: OR-parallel Prolog vs sequential backtracking (section 5.2)\n\n");

  std::printf("Kernel simulator, 3 CPUs, 1 ms per logical inference (slow 1989\n"
              "interpreter on a workstation):\n\n");
  {
    Database db = strategies_db(60, 10, 80);
    const auto q = parse_query(db.symbols, "solve(X)");
    print_sim("strategies 60/10/80", db, q, 1000.0);
  }
  {
    Database db = strategies_db(20, 15, 25);
    const auto q = parse_query(db.symbols, "solve(X)");
    print_sim("strategies 20/15/25", db, q, 1000.0);
  }
  {
    Database db = graph_db();
    const auto q = parse_query(db.symbols, "path(a, Z)");
    print_sim("graph path a->z", db, q, 1000.0);
  }

  std::printf("\nGranularity ablation (strategies 60/10/80, varying work per\n"
              "inference — the paper: \"how aggressively available parallelism\n"
              "is exploited is a function of the overhead\"):\n\n");
  Table gran({"usec/inference", "seq", "par", "speedup"});
  for (double upi : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
    Database db = strategies_db(60, 10, 80);
    const auto q = parse_query(db.symbols, "solve(X)");
    const auto r = simulate_or_parallel(db, q, upi, sim_cfg(3));
    char u[32];
    std::snprintf(u, sizeof u, "%.0f", upi);
    gran.add_row({u, format_time(r.sequential_time), format_time(r.parallel_time),
                  Table::num(r.speedup)});
  }
  gran.print();

  std::printf("\nReal processes on this host (same queries, wall clock):\n\n");
  {
    Database db = strategies_db(2000, 200, 2500);
    const auto q = parse_query(db.symbols, "solve(X)");
    // Sequential baseline.
    const auto t0 = std::chrono::steady_clock::now();
    Solver solver(db);
    const auto seq_sol = solver.solve_first(q);
    const double seq_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
    const auto par = solve_or_parallel(db, q);
    std::printf("  strategies 2000/200/2500: seq %.1f ms (X=%s), or-parallel %.1f ms "
                "(X=%s, branch %d)\n",
                seq_ms, seq_sol ? seq_sol->at("X").c_str() : "?", par.elapsed_ms,
                par.found ? par.solution.at("X").c_str() : "?", par.winner_branch);
  }
  std::printf(
      "\nReading: speedup tracks the dispersion of branch costs and collapses\n"
      "when the work per choice point shrinks below the spawn overhead —\n"
      "the proper granularity threshold the paper prescribes. (On this\n"
      "single-CPU host the real-process run shows correctness, not speedup:\n"
      "concurrency is virtual, as in section 4.2.)\n");
  return 0;
}
