// E13 — the price of supervision (extension; no paper counterpart).
//
// supervised_race wraps the paper's construct in retry/backoff and a
// sequential fallback. This bench measures what that costs when nothing is
// wrong and what it buys when children crash: raw race<T> vs supervised_race
// at 0 / 10 / 30 % injected child-crash rates, on real forked processes.
//
// Reported per configuration: success rate (a raw race under crashes simply
// fails when the viable child dies; the supervisor recovers), mean and p95
// latency, and throughput in blocks/s.
#include <unistd.h>

#include <chrono>
#include <cstdio>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "posix/fault.hpp"
#include "posix/supervisor.hpp"
#include "report.hpp"

namespace {

using namespace altx;
using namespace altx::posix;
using namespace std::chrono_literals;

constexpr int kBlocks = 120;

/// Two alternatives, both viable, ~2 ms of "work" each — the block's cost is
/// dominated by fork + sync, which is what supervision multiplies.
std::vector<AlternativeFn<int>> work_alts() {
  return {
      [] { ::usleep(2'000); return std::optional<int>(1); },
      [] { ::usleep(2'500); return std::optional<int>(2); },
  };
}

struct Run {
  Summary latency_ms;
  int succeeded = 0;
  int degraded = 0;
  double blocks_per_s = 0;
};

Run run_mode(bool supervised, double crash_rate, std::uint64_t seed) {
  FaultProfile plan;
  plan.crash_kill = crash_rate;
  FaultInjector inj(seed, plan);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 1ms;
  policy.max_backoff = 4ms;
  policy.base_timeout = 2'000ms;
  policy.seed = seed;

  Run out;
  const auto t_all0 = std::chrono::steady_clock::now();
  for (int b = 0; b < kBlocks; ++b) {
    RaceOptions opts;
    opts.timeout = 2'000ms;
    if (crash_rate > 0) opts.fault = &inj;
    const auto t0 = std::chrono::steady_clock::now();
    if (supervised) {
      const auto r = supervised_race<int>(work_alts(), policy, opts);
      if (r.has_value()) {
        ++out.succeeded;
        if (r->degraded) ++out.degraded;
      }
    } else {
      const auto r = race<int>(work_alts(), opts);
      if (r.has_value()) ++out.succeeded;
    }
    const auto dt = std::chrono::steady_clock::now() - t0;
    out.latency_ms.add(
        std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(dt)
            .count());
  }
  const auto dt_all = std::chrono::steady_clock::now() - t_all0;
  const double secs =
      std::chrono::duration_cast<std::chrono::duration<double>>(dt_all).count();
  out.blocks_per_s = secs > 0 ? kBlocks / secs : 0;
  return out;
}

}  // namespace

int main() {
  std::printf("E13: supervised vs raw race under injected child crashes\n\n");
  std::printf("2 viable alternatives (~2 ms each), %d blocks per row; crashes\n"
              "are injected SIGKILLs at the children's sync points. The raw\n"
              "race fails the block when both children die; the supervisor\n"
              "retries (3 attempts, 1-4 ms backoff) and degrades to\n"
              "sequential in-process execution as the last resort.\n\n",
              kBlocks);

  Table t({"mode", "crash rate", "success", "degraded", "mean", "p95",
           "blocks/s"});
  bench::Report report("e13_supervision");
  for (const double rate : {0.0, 0.1, 0.3}) {
    for (const bool supervised : {false, true}) {
      const auto r = run_mode(supervised, rate, /*seed=*/4242);
      char success[32];
      std::snprintf(success, sizeof success, "%d/%d", r.succeeded, kBlocks);
      char ratebuf[16];
      std::snprintf(ratebuf, sizeof ratebuf, "%.0f %%", rate * 100);
      t.add_row({supervised ? "supervised" : "raw race", ratebuf, success,
                 std::to_string(r.degraded),
                 Table::num(r.latency_ms.mean()) + " ms",
                 Table::num(r.latency_ms.percentile(95)) + " ms",
                 Table::num(r.blocks_per_s, 1)});
      report.row(supervised ? "supervised" : "raw_race")
          .param("crash_rate", rate)
          .param("blocks", static_cast<double>(kBlocks))
          .metric("success", r.succeeded)
          .metric("degraded", r.degraded)
          .metric("blocks_per_s", r.blocks_per_s)
          .latency(r.latency_ms);
    }
  }
  t.print();
  if (const std::string p = report.write(); !p.empty()) {
    std::printf("\nreport: %s\n", p.c_str());
  }

  std::printf(
      "\nReading: with nothing injected the supervisor adds only a branch\n"
      "and a report struct per block — any gap there is noise. Under crashes\n"
      "the raw construct loses the blocks whose children all died, while\n"
      "supervision converts those losses into retries (bounded extra latency)\n"
      "and, when every attempt is disrupted, into flagged sequential\n"
      "fallbacks — availability bought with the paper's own original\n"
      "semantics as the floor.\n");
  return 0;
}
