// E5 — parallel speedup shapes (sections 4.2-4.3, figure 2's execution
// model): PI as a function of the number of alternatives, of dispersion, and
// of computation scale (the overhead crossover), measured end to end on the
// kernel simulator against the analytic model. Includes the synchronous- vs
// asynchronous-elimination ablation the paper calls out in section 3.2.1.
#include <cstdio>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/executor.hpp"
#include "core/model.hpp"
#include "core/workload.hpp"

namespace {

using namespace altx;
using namespace altx::core;

sim::Kernel::Config cfg_with(int cpus, sim::Elimination elim) {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(cpus);
  cfg.address_space_pages = 80;  // the paper's 320 KB at 4K pages
  cfg.elimination = elim;
  return cfg;
}

/// Mean measured PI over `trials` random blocks.
double measured_pi(const WorkloadParams& p, const sim::Kernel::Config& cfg,
                   std::uint64_t seed, int trials = 25) {
  Rng rng(seed);
  Summary pis;
  for (int t = 0; t < trials; ++t) {
    const BlockSpec b = generate_block(p, rng);
    const auto r = run_concurrent(b, cfg);
    if (r.failed) continue;
    pis.add(mean_time(b.taus()) / static_cast<double>(r.elapsed));
  }
  return pis.empty() ? 0.0 : pis.mean();
}

}  // namespace

int main() {
  std::printf("E5: speedup shapes of the concurrent alternative block\n\n");

  // --- PI vs number of alternatives (ample CPUs) -------------------------
  std::printf("PI vs N (uniform taus 50..500 ms, N CPUs, HP 9000/350 costs):\n\n");
  Table by_n({"N", "PI measured", "PI model"});
  for (std::size_t n : {2, 3, 4, 6, 8}) {
    WorkloadParams p;
    p.n_alternatives = n;
    p.dist = TimeDist::kUniform;
    p.lo = 50 * kMsec;
    p.hi = 500 * kMsec;
    auto cfg = cfg_with(static_cast<int>(n), sim::Elimination::kAsynchronous);
    // Analytic expectation for U(lo,hi): mean = (lo+hi)/2, E[min of N].
    const double mean = (static_cast<double>(p.lo) + static_cast<double>(p.hi)) / 2;
    const double emin = static_cast<double>(p.lo) +
                        (static_cast<double>(p.hi - p.lo)) / (static_cast<double>(n) + 1);
    OverheadInputs in;
    in.n_alternatives = n;
    in.address_space_pages = 80;
    in.pages_written_by_winner = 5;
    const double oh = static_cast<double>(estimate_overhead(cfg.machine, in).total());
    by_n.add_row({std::to_string(n),
                  Table::num(measured_pi(p, cfg, 100 + n)),
                  Table::num(mean / (emin + oh))});
  }
  by_n.print();

  // --- PI vs dispersion ----------------------------------------------------
  std::printf("\nPI vs dispersion (N = 4, mean ~200 ms, growing spread):\n\n");
  Table by_disp({"tau range (ms)", "PI measured"});
  for (auto [lo, hi] : std::vector<std::pair<SimTime, SimTime>>{
           {190, 210}, {150, 250}, {100, 300}, {20, 380}, {5, 395}}) {
    WorkloadParams p;
    p.n_alternatives = 4;
    p.lo = lo * kMsec;
    p.hi = hi * kMsec;
    by_disp.add_row(
        {std::to_string(lo) + " .. " + std::to_string(hi),
         Table::num(measured_pi(p, cfg_with(4, sim::Elimination::kAsynchronous), 7))});
  }
  by_disp.print();

  // --- the crossover: scaling the computation ------------------------------
  std::printf("\nOverhead crossover (N = 3, bimodal taus t and 4t; PI < 1 when\n"
              "the computation is small relative to spawn overhead ~14 ms):\n\n");
  Table cross({"t", "PI measured"});
  for (SimTime t : {2 * kMsec, 5 * kMsec, 10 * kMsec, 20 * kMsec, 50 * kMsec,
                    200 * kMsec, kSec}) {
    WorkloadParams p;
    p.n_alternatives = 3;
    p.dist = TimeDist::kBimodal;
    p.lo = t;
    p.hi = 4 * t;
    cross.add_row({format_time(t),
                   Table::num(measured_pi(p, cfg_with(3, sim::Elimination::kAsynchronous), 11))});
  }
  cross.print();

  // --- virtual concurrency: fewer CPUs than alternatives -------------------
  std::printf("\nVirtual concurrency (N = 4 alternatives, varying CPUs):\n\n");
  Table by_cpu({"CPUs", "PI measured"});
  for (int cpus : {1, 2, 4}) {
    WorkloadParams p;
    p.n_alternatives = 4;
    p.lo = 50 * kMsec;
    p.hi = 500 * kMsec;
    by_cpu.add_row({std::to_string(cpus),
                    Table::num(measured_pi(p, cfg_with(cpus, sim::Elimination::kAsynchronous), 23))});
  }
  by_cpu.print();

  // --- interference: a loaded machine ---------------------------------------
  std::printf("\nExecution-environment interference (section 4.2: tau varies\n"
              "with the multiprocessing workload). N = 3 block (100/200/400 ms)\n"
              "on 4 CPUs, sharing with M background compute-bound processes:\n\n");
  Table load({"background procs", "block elapsed"});
  {
    BlockSpec b;
    b.alts = {AltSpec{.compute = 100 * kMsec}, AltSpec{.compute = 200 * kMsec},
              AltSpec{.compute = 400 * kMsec}};
    for (int m : {0, 2, 4, 8}) {
      const auto r = run_concurrent_loaded(
          b, cfg_with(4, sim::Elimination::kAsynchronous), m, 5 * kSec);
      load.add_row({std::to_string(m), format_time(r.elapsed)});
    }
  }
  load.print();

  // --- ablation: synchronous vs asynchronous sibling elimination -----------
  std::printf("\nAblation: sibling elimination policy, sweeping the per-kill cost\n"
              "(a local scheduler poke is cheap; a remote termination is a\n"
              "network round trip). N = 8 on 4 CPUs, taus 50..500 ms:\n\n");
  Table elim({"kill cost", "PI sync", "PI async"});
  for (SimTime kc : {300 * kUsec, 5 * kMsec, 20 * kMsec, 80 * kMsec}) {
    WorkloadParams p;
    p.n_alternatives = 8;
    p.lo = 50 * kMsec;
    p.hi = 500 * kMsec;
    auto cs = cfg_with(4, sim::Elimination::kSynchronous);
    cs.machine.kill_cost = kc;
    auto ca = cfg_with(4, sim::Elimination::kAsynchronous);
    ca.machine.kill_cost = kc;
    elim.add_row({format_time(kc), Table::num(measured_pi(p, cs, 31)),
                  Table::num(measured_pi(p, ca, 31))});
  }
  elim.print();
  std::printf(
      "\nReading: PI grows with N and with dispersion, collapses below 1 for\n"
      "small computations (the paper's rows (3)/(4)), and survives CPU\n"
      "sharing at reduced magnitude. The elimination policies coincide when\n"
      "kills are cheap; once terminating a sibling costs a network round\n"
      "trip, asynchronous elimination wins — as the paper suspected — by\n"
      "keeping the kills off the winner's critical path.\n");
  return 0;
}
