// E3 — page-copy service rate and the fraction-of-pages-written sweep
// (section 4.4, second measurement; Smith & Maguire 1988).
//
// Paper: page copying is served at 326 2K-pages/second (3B2/310) and 1034
// 4K-pages/second (HP 9000/350); "the fraction of the pages in the address
// space which are written is the important independent variable".
//
// Part 1: the calibrated models' service rates and the resulting COW cost of
// an alternative as the write fraction sweeps 0..100% of a 320 KB space —
// measured end to end on the kernel simulator.
// Part 2: the same sweep with real fork() + COW faults on this host.
#include <cstdio>

#include "common/table.hpp"
#include "core/executor.hpp"
#include "posix/measure.hpp"

namespace {

using namespace altx;
using namespace altx::core;

/// Simulated elapsed time of a single alternative writing `frac` of the
/// address space, minus the same run writing nothing: isolates COW copying.
SimTime cow_cost_us(const sim::MachineModel& m, double frac) {
  sim::Kernel::Config cfg;
  cfg.machine = m;
  cfg.address_space_pages = 320 * 1024 / m.page_size;
  auto run = [&](std::size_t written) {
    BlockSpec b;
    AltSpec a;
    a.compute = 10 * kMsec;
    a.pages_written = written;
    a.chunks = 1;
    b.alts.push_back(a);
    return run_concurrent(b, cfg).elapsed;
  };
  const auto pages = static_cast<std::size_t>(
      static_cast<double>(cfg.address_space_pages) * frac);
  // Subtract one written page (the result tag) present in both runs.
  return run(pages) - run(0);
}

}  // namespace

int main() {
  std::printf("E3: COW page-copy rate and write-fraction sweep (section 4.4)\n\n");
  std::printf("Paper-reported service rates: 326 2K-pages/s (3B2), 1034 4K-pages/s (HP).\n");
  std::printf("Model service rates: %lld us per 2K page (3B2) -> %.0f pages/s,\n",
              static_cast<long long>(sim::MachineModel::att3b2().page_copy),
              1e6 / static_cast<double>(sim::MachineModel::att3b2().page_copy));
  std::printf("                     %lld us per 4K page (HP)  -> %.0f pages/s\n\n",
              static_cast<long long>(sim::MachineModel::hp9000_350().page_copy),
              1e6 / static_cast<double>(sim::MachineModel::hp9000_350().page_copy));

  std::printf("Simulated COW cost of one alternative, 320 KB space, write fraction sweep:\n\n");
  Table t({"written", "3B2/310 model", "HP 9000/350 model"});
  for (double frac : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    char pct[16];
    std::snprintf(pct, sizeof pct, "%3.0f %%", frac * 100);
    t.add_row({pct, format_time(cow_cost_us(sim::MachineModel::att3b2(), frac)),
               format_time(cow_cost_us(sim::MachineModel::hp9000_350(), frac))});
  }
  t.print();

  std::printf("\nMeasured on this host (real COW faults in a forked child, 32 MB arena):\n\n");
  Table host({"written", "pages copied", "child time", "pages/second"});
  for (double frac : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    const auto m = posix::measure_page_copy(32 * 1024 * 1024, frac, 3);
    char pct[16], tm[32], rate[32];
    std::snprintf(pct, sizeof pct, "%3.0f %%", frac * 100);
    std::snprintf(tm, sizeof tm, "%.3f ms", m.child_write_ms);
    std::snprintf(rate, sizeof rate, "%.0f", m.pages_per_second);
    host.add_row({pct, std::to_string(m.pages_copied), tm, rate});
  }
  host.print();
  std::printf(
      "\nReading: COW cost is linear in the fraction written on both the 1989\n"
      "models and the host — the paper's governing independent variable.\n");
  return 0;
}
