// Microbenchmarks (google-benchmark) for the hot paths of the library:
// predicate algebra, COW paging, kernel event throughput, unification,
// solver inference rate, and the POSIX primitives.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <string_view>
#include <vector>

#include "core/executor.hpp"
#include "msg/predicate.hpp"
#include "posix/alt_heap.hpp"
#include "posix/race.hpp"
#include "prolog/solver.hpp"
#include "altc/translate.hpp"
#include "consensus/majority.hpp"
#include "posix/file_heap.hpp"
#include "report.hpp"
#include "sim/kernel.hpp"

namespace {

using namespace altx;

void BM_PredicateResolve(benchmark::State& state) {
  for (auto _ : state) {
    Predicate p = Predicate::for_child(Predicate{}, 5, {1, 2, 3, 4, 5, 6, 7, 8});
    for (Pid pid = 1; pid <= 8; ++pid) {
      benchmark::DoNotOptimize(p.resolve(pid, Resolution::kFailed));
    }
  }
}
BENCHMARK(BM_PredicateResolve);

void BM_PredicateClassify(benchmark::State& state) {
  Predicate receiver;
  receiver.require_complete(3);
  Message m;
  m.sender = 9;
  m.sender_speculative = true;
  m.sending_predicate.require_complete(3);
  for (auto _ : state) {
    benchmark::DoNotOptimize(classify_reception(receiver, m));
  }
}
BENCHMARK(BM_PredicateClassify);

void BM_CowCloneAndFault(benchmark::State& state) {
  const auto pages = static_cast<std::size_t>(state.range(0));
  sim::FrameStore store(8);
  sim::AddressSpace parent(store, pages);
  for (auto _ : state) {
    sim::AddressSpace child = sim::AddressSpace::cow_clone(parent);
    child.write(0, 0, 1);  // one fault
    benchmark::DoNotOptimize(child.pages());
  }
}
BENCHMARK(BM_CowCloneAndFault)->Arg(80)->Arg(1024);

void BM_SimAltBlock(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Kernel::Config cfg;
    cfg.machine = sim::MachineModel::shared_memory_mp(static_cast<int>(n));
    cfg.address_space_pages = 16;
    core::BlockSpec b;
    for (std::size_t i = 0; i < n; ++i) {
      core::AltSpec a;
      a.compute = static_cast<SimTime>(10 * kMsec * (i + 1));
      b.alts.push_back(a);
    }
    benchmark::DoNotOptimize(core::run_concurrent(b, cfg).elapsed);
  }
}
BENCHMARK(BM_SimAltBlock)->Arg(2)->Arg(8);

void BM_Unify(benchmark::State& state) {
  prolog::SymbolTable sym;
  const prolog::Symbol f = sym.intern("f");
  // Two deep terms differing only at the last leaf variable.
  prolog::TermPtr a = prolog::mk_int(1);
  prolog::TermPtr b = prolog::mk_var(0);
  for (int i = 0; i < 50; ++i) {
    a = prolog::mk_struct(f, {a, prolog::mk_int(i)});
    b = prolog::mk_struct(f, {b, prolog::mk_int(i)});
  }
  for (auto _ : state) {
    prolog::Bindings bind;
    bind.reserve_slots(1);
    benchmark::DoNotOptimize(prolog::unify(bind, a, b));
  }
}
BENCHMARK(BM_Unify);

void BM_SolverInferences(benchmark::State& state) {
  prolog::Database db;
  db.consult(R"(
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
  )");
  const auto q = prolog::parse_query(
      db.symbols, "append([1,2,3,4,5,6,7,8,9,10], [11,12], Z)");
  for (auto _ : state) {
    prolog::Solver s(db);
    benchmark::DoNotOptimize(s.solve_first(q).has_value());
  }
}
BENCHMARK(BM_SolverInferences);

void BM_RealForkRace(benchmark::State& state) {
  for (auto _ : state) {
    auto r = posix::race<int>({
        [] { return std::optional<int>(1); },
        [] { ::usleep(1000); return std::optional<int>(2); },
    });
    benchmark::DoNotOptimize(r.has_value());
  }
}
BENCHMARK(BM_RealForkRace)->Unit(benchmark::kMillisecond);

void BM_AltHeapDirtyTracking(benchmark::State& state) {
  posix::AltHeap heap(64);
  for (auto _ : state) {
    heap.begin_tracking();
    for (std::size_t p = 0; p < 64; p += 4) {
      heap.at<std::uint64_t>(p * heap.page_size())[0] = p;
    }
    benchmark::DoNotOptimize(heap.serialize_dirty().size());
    heap.end_tracking();
  }
}
BENCHMARK(BM_AltHeapDirtyTracking);

void BM_ConsensusRound(benchmark::State& state) {
  const int arbiters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    net::Network::Config nc;
    nc.node_count = static_cast<std::size_t>(arbiters) + 1;
    nc.base_latency = 2 * kMsec;
    nc.seed = 1;
    net::Network net(nc);
    consensus::MajoritySync::Config mc;
    mc.arbiters = arbiters;
    consensus::MajoritySync sync(net, mc);
    sync.add_candidate(0, static_cast<NodeId>(arbiters), 0);
    sync.start();
    net.run();
    benchmark::DoNotOptimize(sync.winner().has_value());
  }
}
BENCHMARK(BM_ConsensusRound)->Arg(3)->Arg(9);

void BM_AltcTranslate(benchmark::State& state) {
  std::string src = "int f() {\n";
  for (int b = 0; b < 10; ++b) {
    src += "ALTBEGIN(x : int)\nALTERNATIVE\n  ALTRETURN(1);\nALTERNATIVE\n"
           "  ALTRETURN(2);\nALTEND\n";
  }
  src += "}\n";
  for (auto _ : state) {
    benchmark::DoNotOptimize(altc::translate(src).size());
  }
}
BENCHMARK(BM_AltcTranslate);

void BM_FileHeapCommit(benchmark::State& state) {
  const std::string path = "/tmp/altx_bench_fileheap";
  posix::FileHeap heap(path, 64);
  for (auto _ : state) {
    for (std::uint32_t p = 0; p < 64; p += 8) {
      heap.at<std::uint64_t>(p * heap.page_size())[0]++;
      heap.mark_dirty(p);
    }
    benchmark::DoNotOptimize(heap.commit());
  }
  ::unlink(path.c_str());
}
BENCHMARK(BM_FileHeapCommit)->Unit(benchmark::kMicrosecond);

void BM_PrologFindall(benchmark::State& state) {
  prolog::Database db;
  std::string text;
  for (int i = 0; i < 100; ++i) text += "n(" + std::to_string(i) + ").\n";
  db.consult(text);
  const auto q = prolog::parse_query(db.symbols, "findall(X, n(X), L)");
  for (auto _ : state) {
    prolog::Solver s(db);
    benchmark::DoNotOptimize(s.solve_first(q).has_value());
  }
}
BENCHMARK(BM_PrologFindall);

}  // namespace

// Custom main instead of benchmark_main: default --benchmark_out to
// BENCH_micro.json (google-benchmark's own JSON schema) so every run leaves
// a machine-readable report CI can diff. An explicit --benchmark_out on the
// command line wins; ALTX_BENCH_OUT redirects the default like the table
// benches.
int main(int argc, char** argv) {
  std::vector<char*> args(argv, argv + argc);
  bool has_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]).starts_with("--benchmark_out")) {
      has_out = true;
    }
  }
  std::string out_flag;
  std::string fmt_flag;
  if (!has_out) {
    out_flag = "--benchmark_out=" + altx::bench::report_path("micro");
    fmt_flag = "--benchmark_out_format=json";
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int ac = static_cast<int>(args.size());
  benchmark::Initialize(&ac, args.data());
  if (benchmark::ReportUnrecognizedArguments(ac, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
