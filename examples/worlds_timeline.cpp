// A narrated timeline of the paper's full machinery on the kernel simulator:
// two alternatives race while talking to a server, the server splits into
// multiple worlds, the race resolves, dead worlds evaporate, and the
// observable device sees exactly one write. Every line comes from the
// kernel's trace stream.
#include <cstdio>
#include <map>
#include <string>

#include "sim/kernel.hpp"

int main() {
  using namespace altx;
  using namespace altx::sim;

  std::map<Pid, std::string> names;
  int alt_counter = 0;
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(4);
  cfg.address_space_pages = 8;
  cfg.trace = [&names, &alt_counter](const TraceEvent& ev) {
    if (ev.kind == TraceEvent::Kind::kSpawn && !names.contains(ev.pid)) {
      names[ev.pid] = ev.other == kNoPid
                          ? "root" + std::to_string(ev.pid)
                          : "alt-" + std::to_string(++alt_counter);
    }
    if (ev.kind == TraceEvent::Kind::kWorldSplit && names.contains(ev.pid)) {
      names[ev.other] = names[ev.pid] + "-no";  // the rejecting world
    }
    auto name = [&names](Pid p) -> std::string {
      if (p == kNoPid) return "-";
      auto it = names.find(p);
      return it != names.end() ? it->second : "pid" + std::to_string(p);
    };
    std::printf("%10s  %-12s %-10s %s\n", format_time(ev.time).c_str(),
                to_string(ev.kind), name(ev.pid).c_str(),
                ev.other != kNoPid ? ("(" + name(ev.other) + ")").c_str() : "");
  };
  Kernel k(cfg);

  constexpr Port kOracle = 3;

  // The fast alternative consults the oracle (speculatively!) and finishes
  // quickly; the slow one grinds on. The oracle server accepts the
  // speculative question — splitting into a world that believes the fast
  // alternative and one that does not.
  auto fast = ProgramBuilder("fast-alt")
                  .compute(3 * kMsec)
                  .send_u64(kOracle, 42)
                  .compute(20 * kMsec)
                  .write(0, 0, 1)
                  .build();
  auto slow = ProgramBuilder("slow-alt")
                  .compute(150 * kMsec)
                  .write(0, 0, 2)
                  .build();
  auto oracle = ProgramBuilder("oracle")
                    .bind(kOracle)
                    .recv(0, 0)
                    .compute(5 * kMsec)
                    .build();
  auto main_prog = ProgramBuilder("main")
                       .alt({fast, slow})
                       .source_write(0, Bytes{'d', 'o', 'n', 'e'})
                       .build();

  std::printf("%10s  %-12s %-10s %s\n", "time", "event", "who", "(related)");
  std::printf("---------------------------------------------------------\n");
  const Pid oracle_pid = k.spawn_root(oracle);
  names[oracle_pid] = "oracle";
  const Pid main_pid = k.spawn_root(main_prog);
  names[main_pid] = "main";
  k.run();

  std::printf("---------------------------------------------------------\n");
  std::printf("final: main's memory word = %llu (the fast alternative),\n",
              static_cast<unsigned long long>(k.process(main_pid)->as_.peek(0, 0)));
  std::printf("       device writes = %zu (exactly one, after commit),\n",
              k.source(0).writes().size());
  std::printf("       world splits = %llu, eliminations = %llu, commits = %llu\n",
              static_cast<unsigned long long>(k.stats().world_splits),
              static_cast<unsigned long long>(k.stats().eliminations),
              static_cast<unsigned long long>(k.stats().commits));
  return 0;
}
