// Distributed execution of recovery blocks (paper section 5.1).
//
// A tiny flight-booking "database update" implemented three ways: a fancy
// primary with a seeded logic fault, a conservative secondary, and a brute
// re-computation. The acceptance test checks the books balance. The demo
// runs the classical sequential discipline (checkpoint / test / roll back)
// and the paper's concurrent transformation side by side.
#include <unistd.h>

#include <cstdio>

#include "rb/recovery_block.hpp"

namespace {

struct Inventory {
  int seats_total;
  int seats_sold;
  int revenue;       // = seats_sold * fare if consistent
  int fare;
};

constexpr int kFare = 120;

bool books_balance(const Inventory& inv) {
  return inv.seats_sold >= 0 && inv.seats_sold <= inv.seats_total &&
         inv.revenue == inv.seats_sold * inv.fare;
}

}  // namespace

int main() {
  using altx::rb::RecoveryBlock;

  RecoveryBlock<Inventory> sell_three_seats;

  // Primary: clever batched update — with a planted fault (forgets to post
  // the revenue for the third seat).
  sell_three_seats.add_alternate([](Inventory& inv) {
    ::usleep(20'000);
    inv.seats_sold += 3;
    inv.revenue += 2 * inv.fare;  // BUG: one fare short
  });

  // Secondary: slower, one-seat-at-a-time loop, correct.
  sell_three_seats.add_alternate([](Inventory& inv) {
    for (int i = 0; i < 3; ++i) {
      ::usleep(15'000);
      inv.seats_sold += 1;
      inv.revenue += inv.fare;
    }
  });

  // Tertiary: recompute revenue from scratch (slowest, trivially correct).
  sell_three_seats.add_alternate([](Inventory& inv) {
    ::usleep(80'000);
    inv.seats_sold += 3;
    inv.revenue = inv.seats_sold * inv.fare;
  });

  sell_three_seats.set_acceptance(books_balance);

  std::printf("recovery block: sell 3 seats (primary has a planted fault)\n\n");

  Inventory seq{100, 10, 10 * kFare, kFare};
  const auto s = sell_three_seats.run_sequential(seq);
  std::printf("sequential : alternate %zu after %zu attempt(s), %.1f ms -> "
              "sold=%d revenue=%d %s\n",
              s.alternate + 1, s.attempts, s.elapsed_ms, seq.seats_sold,
              seq.revenue, books_balance(seq) ? "(balanced)" : "(CORRUPT)");

  Inventory conc{100, 10, 10 * kFare, kFare};
  const auto c = sell_three_seats.run_concurrent(conc);
  std::printf("concurrent : alternate %zu (fastest passing), %.1f ms -> "
              "sold=%d revenue=%d %s\n",
              c.alternate + 1, c.elapsed_ms, conc.seats_sold, conc.revenue,
              books_balance(conc) ? "(balanced)" : "(CORRUPT)");

  std::printf(
      "\nThe faulty primary finished first but failed its acceptance test\n"
      "inside its own process; its damage was never visible. Sequential\n"
      "execution paid for the primary before retrying; the concurrent block\n"
      "had the secondary already running — the paper's 'rapid failure-free\n"
      "path through the computation'.\n");
  return 0;
}
