// The distributed alternative block, narrated: a coordinator remote-forks
// three alternatives onto worker nodes by shipping 70 KB checkpoints over a
// 10 Mbit/s LAN; they race through the majority-consensus semaphore; a
// worker node crashes mid-run; the block still commits.
#include <cstdio>

#include "dist/distributed.hpp"

int main() {
  using namespace altx;
  using namespace altx::dist;

  DistConfig cfg;
  cfg.arbiters = 3;
  cfg.checkpoint_bytes = 70 * 1024;
  cfg.timeout = 30 * kSec;

  std::vector<RemoteAlt> alts{
      RemoteAlt{150 * kMsec, true},   // fast — but its node will crash
      RemoteAlt{400 * kMsec, true},   // the eventual winner
      RemoteAlt{250 * kMsec, false},  // quick but fails its acceptance test
  };

  net::Network::Config nc;
  nc.node_count = static_cast<std::size_t>(cfg.arbiters) + 1 + alts.size();
  nc.base_latency = 2 * kMsec;
  nc.jitter = kMsec;
  nc.bytes_per_usec = 1.25;  // 10 Mbit/s
  nc.seed = 42;
  net::Network network(nc);

  DistributedBlock block(network, cfg, alts);
  std::printf("topology: %d arbiters, coordinator at node %u, workers at "
              "nodes %u..%u\n",
              cfg.arbiters, block.coordinator_node(), block.worker_node(0),
              block.worker_node(alts.size() - 1));
  block.start();

  // Fate intervenes: the fastest alternative's node dies before it finishes.
  network.after(block.coordinator_node(), 100 * kMsec, [&] {
    std::printf("%8s  node %u (fastest alternative) crashes\n",
                format_time(network.now()).c_str(), block.worker_node(0));
    network.crash(block.worker_node(0));
  });

  network.run();

  const auto& r = block.result();
  std::printf("\noutcome  : %s\n",
              r.committed ? "COMMITTED" : r.failed ? "FAILED" : "undecided");
  if (r.committed) {
    std::printf("winner   : alternative %d (the reliable backup)\n", r.winner);
  }
  std::printf("decided  : %s after the block started\n",
              format_time(r.decided_at).c_str());
  std::printf("aborts   : %d (the failed acceptance test)\n", r.aborts);
  std::printf("traffic  : %llu packets (checkpoints + votes + result + kills)\n",
              static_cast<unsigned long long>(r.packets));
  std::printf("\nThe crash cost nothing but time: the semaphore never granted\n"
              "the dead node's alternative, so safety needed no recovery at\n"
              "all — the surviving alternative simply won the vote.\n");
  return r.committed ? 0 : 1;
}
