// Racing real search strategies over a generated corpus — a concrete
// instance of the paper's "algorithmic differences are interesting" case
// (section 4.2, relation 3): which strategy wins depends on the pattern and
// the data in ways that are costly to predict, so run all three and keep the
// fastest.
//
//   naive     — byte-by-byte scan (wins on tiny patterns / early matches)
//   horspool  — Boyer-Moore-Horspool skip table (wins on long patterns)
//   memchr    — first-byte filter + verify (wins on rare first bytes)
#include <cstring>
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "posix/race.hpp"

namespace {

std::vector<long> naive_search(const std::string& text, const std::string& pat) {
  std::vector<long> hits;
  for (std::size_t i = 0; i + pat.size() <= text.size(); ++i) {
    if (std::memcmp(text.data() + i, pat.data(), pat.size()) == 0) {
      hits.push_back(static_cast<long>(i));
    }
  }
  return hits;
}

std::vector<long> horspool_search(const std::string& text, const std::string& pat) {
  std::vector<long> hits;
  const std::size_t m = pat.size();
  if (m == 0 || text.size() < m) return hits;
  std::size_t skip[256];
  for (auto& s : skip) s = m;
  for (std::size_t i = 0; i + 1 < m; ++i) {
    skip[static_cast<unsigned char>(pat[i])] = m - 1 - i;
  }
  std::size_t i = 0;
  while (i + m <= text.size()) {
    if (std::memcmp(text.data() + i, pat.data(), m) == 0) {
      hits.push_back(static_cast<long>(i));
    }
    i += skip[static_cast<unsigned char>(text[i + m - 1])];
  }
  return hits;
}

std::vector<long> memchr_search(const std::string& text, const std::string& pat) {
  std::vector<long> hits;
  if (pat.empty()) return hits;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p + pat.size() <= end) {
    const char* hit = static_cast<const char*>(
        ::memchr(p, pat[0], static_cast<std::size_t>(end - p)));
    if (hit == nullptr || hit + pat.size() > end) break;
    if (std::memcmp(hit, pat.data(), pat.size()) == 0) {
      hits.push_back(static_cast<long>(hit - text.data()));
    }
    p = hit + 1;
  }
  return hits;
}

long race_search(const std::string& text, const std::string& pat,
                 const char** winner) {
  static const char* kNames[] = {"naive", "horspool", "memchr"};
  using Fn = std::vector<long> (*)(const std::string&, const std::string&);
  static const Fn kFns[] = {naive_search, horspool_search, memchr_search};
  std::vector<altx::posix::AlternativeFn<long>> alts;
  for (int i = 0; i < 3; ++i) {
    alts.push_back([&text, &pat, i]() -> std::optional<long> {
      const auto hits = kFns[i](text, pat);
      // The guard: self-check the result on a sample.
      for (long h : hits) {
        if (text.compare(static_cast<std::size_t>(h), pat.size(), pat) != 0) {
          return std::nullopt;
        }
      }
      return static_cast<long>(hits.size());
    });
  }
  const auto r = altx::posix::race<long>(alts);
  if (!r.has_value()) return -1;
  *winner = kNames[r->winner - 1];
  return r->value;
}

}  // namespace

int main() {
  // A 16 MB corpus of word-ish text.
  altx::Rng rng(7);
  std::string text;
  text.reserve(16u << 20);
  static const char* kWords[] = {"alpha", "beta", "gamma", "delta", "omega",
                                 "speculative", "alternative", "transparent"};
  while (text.size() < (16u << 20)) {
    text += kWords[rng.below(std::size(kWords))];
    text += ' ';
  }

  std::printf("racing naive / horspool / memchr over a %.0f MB corpus\n\n",
              text.size() / 1048576.0);
  for (const char* pat : {"omega", "transparent alternative",
                          "zebra", "a", "speculative omega"}) {
    const char* winner = "?";
    const long count = race_search(text, pat, &winner);
    std::printf("  %-28s -> %6ld matches, fastest: %s\n", pat, count, winner);
  }
  std::printf("\n(each strategy ran in its own forked process; the losers'\n"
              "work — including any partial result buffers — vanished with\n"
              "their address spaces)\n");
  return 0;
}
