// OR-parallelism in Prolog (paper section 5.2).
//
// A route-finding knowledge base where path/2 has three strategies: a long
// relay chain, a doomed exhaustive search, and a direct edge. Sequential
// backtracking explores them left to right; the OR-parallel executor forks
// one process per clause of the top choice point and takes the first
// solution — the alternatives are mutually exclusive because only one
// answer is needed.
#include <cstdio>

#include "prolog/or_parallel.hpp"

int main() {
  using namespace altx::prolog;

  Database db;
  std::string program = R"(
    % strategy 1: relay through many intermediate stations
    route(From, To) :- relay(From, To).
    % strategy 2: consult the (hopelessly out of date) timetable
    route(From, To) :- timetable(From, To).
    % strategy 3: a direct connection
    route(From, To) :- direct(From, To).

    direct(vienna, zurich).
    relay(vienna, Z) :- leg0(Z).
  )";
  for (int i = 0; i < 150; ++i) {
    program += "leg" + std::to_string(i) + "(Z) :- leg" + std::to_string(i + 1) + "(Z).\n";
  }
  program += "leg150(zurich).\n";
  program += R"(
    timetable(_, _) :- churn(200), fail.
    churn(0).
    churn(N) :- N > 0, M is N - 1, churn(M).
  )";
  db.consult(program);

  const Query q = parse_query(db.symbols, "route(vienna, To)");

  // Sequential baseline.
  Solver solver(db);
  const auto seq = solver.solve_first(q);
  std::printf("sequential backtracking : To = %s   (%llu inferences)\n",
              seq ? seq->at("To").c_str() : "none",
              static_cast<unsigned long long>(solver.steps()));

  // Work per branch (what each OR-parallel world will do).
  const auto profiles = profile_branches(db, q);
  std::printf("branch work             : ");
  for (const auto& b : profiles) {
    std::printf("clause %zu: %llu steps (%s)  ", b.clause_index,
                static_cast<unsigned long long>(b.steps),
                b.found ? "solves" : "fails");
  }
  std::printf("\n");

  // Real OR-parallel execution: one forked world per clause.
  const auto par = solve_or_parallel(db, q);
  if (par.found) {
    std::printf("or-parallel (processes) : To = %s   via clause %d, %.1f ms\n",
                par.solution.at("To").c_str(), par.winner_branch, par.elapsed_ms);
  } else {
    std::printf("or-parallel: no solution\n");
  }

  // The performance experiment: replay on the 1989 machine model.
  altx::sim::Kernel::Config cfg;
  cfg.machine = altx::sim::MachineModel::shared_memory_mp(3);
  cfg.address_space_pages = 64;
  const auto simres = simulate_or_parallel(db, q, /*usec_per_inference=*/1000.0, cfg);
  std::printf(
      "1989 model (1 ms/LI)    : sequential %s, or-parallel %s -> speedup %.2f\n",
      altx::format_time(simres.sequential_time).c_str(),
      altx::format_time(simres.parallel_time).c_str(), simres.speedup);
  return 0;
}
