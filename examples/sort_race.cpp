// The paper's own motivating example (section 4.2): alternative sorting
// algorithms whose relative performance depends on the input in ways that
// are expensive to predict.
//
//   - naive quicksort (first-element pivot): O(n log n) typical, O(n^2) on
//     sorted input;
//   - insertion sort: O(n) on nearly-sorted input, O(n^2) typical;
//   - heapsort: stable O(n log n) everywhere.
//
// Scheme C races all three; the input decides the winner. The synthetic
// partition routine ("if (size > 10) Q else I") is shown alongside — it
// needs the predicate to be both cheap and right, while the race needs
// neither.
#include <algorithm>
#include <cstdio>
#include <numeric>
#include <vector>

#include "core/schemes.hpp"
#include "posix/race.hpp"

namespace {

using Vec = std::vector<int>;

void naive_quicksort(Vec& v, int lo, int hi) {
  if (lo >= hi) return;
  const int pivot = v[static_cast<std::size_t>(lo)];  // adversarial pivot choice
  int i = lo;
  int j = hi;
  while (i <= j) {
    while (v[static_cast<std::size_t>(i)] < pivot) ++i;
    while (v[static_cast<std::size_t>(j)] > pivot) --j;
    if (i <= j) std::swap(v[static_cast<std::size_t>(i++)], v[static_cast<std::size_t>(j--)]);
  }
  naive_quicksort(v, lo, j);
  naive_quicksort(v, i, hi);
}

void insertion_sort(Vec& v) {
  for (std::size_t i = 1; i < v.size(); ++i) {
    int x = v[i];
    std::size_t j = i;
    while (j > 0 && v[j - 1] > x) {
      v[j] = v[j - 1];
      --j;
    }
    v[j] = x;
  }
}

void heapsort(Vec& v) { std::make_heap(v.begin(), v.end()); std::sort_heap(v.begin(), v.end()); }

/// Checksum so the child can return a small witness of the sorted result.
long checksum(const Vec& v) {
  long h = static_cast<long>(v.size());
  for (std::size_t i = 0; i < v.size(); i += std::max<std::size_t>(1, v.size() / 64)) {
    h = h * 31 + v[i];
  }
  return h;
}

long race_sorts(const Vec& input, const char** winner_name) {
  static const char* kNames[] = {"quicksort", "insertion", "heapsort"};
  auto run = [&input](int which) -> std::optional<long> {
    Vec v = input;  // COW copy inside the forked child
    if (which == 0) {
      naive_quicksort(v, 0, static_cast<int>(v.size()) - 1);
    } else if (which == 1) {
      insertion_sort(v);
    } else {
      heapsort(v);
    }
    if (!std::is_sorted(v.begin(), v.end())) return std::nullopt;  // the guard
    return checksum(v);
  };
  auto r = altx::posix::race<long>({
      [&run] { return run(0); },
      [&run] { return run(1); },
      [&run] { return run(2); },
  });
  if (!r.has_value()) return -1;
  *winner_name = kNames[r->winner - 1];
  return r->value;
}

}  // namespace

int main() {
  const std::size_t n = 60'000;
  altx::Rng rng(2026);

  Vec sorted(n);
  std::iota(sorted.begin(), sorted.end(), 0);
  Vec nearly = sorted;
  for (int k = 0; k < 20; ++k) {
    std::swap(nearly[rng.below(n)], nearly[rng.below(n)]);
  }
  Vec random(n);
  for (auto& x : random) x = static_cast<int>(rng.below(1'000'000));

  struct Case {
    const char* label;
    const Vec* input;
  } cases[] = {{"already sorted", &sorted},
               {"nearly sorted", &nearly},
               {"random", &random}};

  std::printf("racing quicksort / insertion / heapsort, n = %zu\n\n", n);
  for (const Case& c : cases) {
    const char* winner = "?";
    const long sum = race_sorts(*c.input, &winner);
    std::printf("  %-14s -> fastest: %-10s (checksum %ld)\n", c.label, winner, sum);
  }

  // The synthetic partition routine needs a hand-written predicate; racing
  // needs none — and wins even when the predicate would be wrong.
  altx::core::PartitionSelector<Vec> synthetic(/*fallback=*/2);
  synthetic.add_rule([](const Vec& v) { return v.size() <= 32; }, 1);
  std::printf(
      "\nsynthetic-partition baseline would pick: %s for all three inputs\n",
      synthetic.select(random) == 2 ? "heapsort" : "insertion");
  std::printf("(the race instead adapts to each input at the cost of wasted "
              "sibling work)\n");
  return 0;
}
