// Quickstart: transparent concurrent execution of mutually exclusive
// alternatives.
//
// Three methods compute the same result with unpredictable relative speed.
// altx::posix::race() runs each in its own forked process (full
// copy-on-write isolation) and returns the first successful answer — the
// paper's ALTBEGIN ... ENSURE ... WITH ... OR ... FAIL construct.
//
// Build & run:  ./examples/quickstart
#include <unistd.h>

#include <cstdio>
#include <numeric>
#include <vector>

#include "posix/race.hpp"

namespace {

// The "problem": sum 1..n. Each alternative uses a different method, with a
// different (here artificially skewed) running time.
std::optional<long> closed_form(long n) {
  ::usleep(50'000);  // pretend this path is slow today
  return n * (n + 1) / 2;
}

std::optional<long> iterative(long n) {
  long total = 0;
  for (long i = 1; i <= n; ++i) total += i;
  return total;
}

std::optional<long> flaky_lookup(long) {
  // A cache that happens to miss: the guard fails, so this alternative
  // aborts without synchronizing — it can never be selected.
  return std::nullopt;
}

}  // namespace

int main() {
  const long n = 1'000'000;

  auto result = altx::posix::race<long>({
      [n] { return closed_form(n); },
      [n] { return iterative(n); },
      [n] { return flaky_lookup(n); },
  });

  if (!result.has_value()) {
    std::printf("FAIL: no alternative succeeded\n");
    return 1;
  }
  const char* names[] = {"closed form", "iterative", "cache lookup"};
  std::printf("sum(1..%ld) = %ld\n", n, result->value);
  std::printf("selected alternative %d (%s) — fastest successful method\n",
              result->winner, names[result->winner - 1]);
  std::printf("losing siblings were eliminated; none of their side effects "
              "escaped their processes\n");
  return 0;
}
