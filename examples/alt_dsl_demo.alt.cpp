// The paper's figure-1 construct, written in the altc surface syntax and
// translated to C++ at build time (see examples/CMakeLists.txt). The built
// binary is `alt_dsl_demo`.
//
// Three methods estimate pi; the sloppy one fails its own sanity check
// (ENSURE), so the race is decided between the other two.
#include <unistd.h>

#include <cmath>
#include <cstdio>

int main() {
ALTBEGIN(pi : double, TIMEOUT 5000)
ALTERNATIVE
      // Machin-like arctan formula (fast, exact enough).
      ::usleep(20'000);
      double v = 16.0 * std::atan(1.0 / 5.0) - 4.0 * std::atan(1.0 / 239.0);
      ALTRETURN(v);
ALTERNATIVE
      // Leibniz series (slow convergence).
      double acc = 0.0;
      for (long k = 0; k < 20'000'000; ++k) {
        acc += (k % 2 == 0 ? 1.0 : -1.0) / (2.0 * k + 1.0);
      }
      ALTRETURN(4.0 * acc);
ALTERNATIVE
      // A sloppy estimate whose guard rejects it.
      double guess = 3.0;
      if (std::abs(guess - 3.14159) > 0.01) ALTABORT();
      ALTRETURN(guess);
FAIL
      std::printf("no method produced pi\n");
ALTEND
  if (pi_found) {
    std::printf("pi = %.10f (fastest successful method)\n", pi);
    return std::abs(pi - 3.14159265358979) < 1e-6 ? 0 : 1;
  }
  return 1;
}
