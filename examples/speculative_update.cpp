// Speculative updates to shared paged state through an AltHeap.
//
// The paper's memory story, live: a "database" lives in a copy-on-write
// arena; two query plans race, each updating the pages it needs inside its
// own forked world. The winner's dirty pages — recorded by the per-process
// descriptor table (mprotect + SIGSEGV tracking) — are absorbed into the
// parent, exactly the alt_wait page-pointer swap at page granularity. The
// loser's writes never existed.
#include <unistd.h>

#include <cstdio>

#include "posix/alt_heap.hpp"
#include "posix/race.hpp"

namespace {

struct Record {
  long key;
  long value;
  long updated_by;  // 1 = index plan, 2 = scan plan
};

}  // namespace

int main() {
  using namespace altx::posix;

  // A table of 1024 records spread over a 64-page COW arena.
  AltHeap heap(64);
  const std::size_t n = 1024;
  auto* table = heap.at<Record>(0);
  for (std::size_t i = 0; i < n; ++i) {
    table[i] = Record{static_cast<long>(i), static_cast<long>(i) * 10, 0};
  }

  const long target_key = 777;

  RaceOptions opts;
  opts.heap = &heap;
  auto r = race<long>(
      {
          // Plan 1: "index lookup" — goes straight to the record.
          [&]() -> std::optional<long> {
            ::usleep(5'000);
            table[target_key].value += 1;
            table[target_key].updated_by = 1;
            return table[target_key].value;
          },
          // Plan 2: "full scan" — touches every page on the way.
          [&]() -> std::optional<long> {
            long found = -1;
            for (std::size_t i = 0; i < n; ++i) {
              if (table[i].key == target_key) {
                ::usleep(60'000);  // the scan is slow
                table[i].value += 1;
                table[i].updated_by = 2;
                found = table[i].value;
              }
            }
            return found < 0 ? std::nullopt : std::optional<long>(found);
          },
      },
      opts);

  if (!r.has_value()) {
    std::printf("FAIL: no plan succeeded\n");
    return 1;
  }
  std::printf("query plan race: winner = plan %d, result = %ld\n", r->winner,
              r->value);
  std::printf("pages absorbed from the winner's descriptor table: %zu\n",
              r->pages_absorbed);
  std::printf("record[%ld] in the parent: value=%ld updated_by=plan %ld\n",
              target_key, table[target_key].value, table[target_key].updated_by);
  std::printf("every other record untouched: record[0].value = %ld (expected 0)\n",
              table[0].value);
  return 0;
}
