// A small Prolog front end over the engine, with selectable execution mode:
//
//   prolog_repl [--or-parallel | --and-parallel] [file.pl ...]
//
// Consults the given files, then reads queries from stdin (one per line;
// blank line or EOF quits). `;` semantics are approximated by printing up to
// ten solutions per query in sequential mode; the parallel modes return the
// single nondeterministically selected solution, exactly as the paper's
// construct would.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "prolog/or_parallel.hpp"
#include "prolog/solver.hpp"

namespace {

enum class Mode { kSequential, kOrParallel, kAndParallel };

void run_query(altx::prolog::Database& db, const std::string& text, Mode mode) {
  using namespace altx::prolog;
  Query q;
  try {
    q = parse_query(db.symbols, text);
  } catch (const ParseError& e) {
    std::printf("  %s\n", e.what());
    return;
  }
  try {
    switch (mode) {
      case Mode::kSequential: {
        Solver s(db);
        const auto sols = s.solve_all(q, 10);
        if (sols.empty()) {
          std::printf("  false.\n");
          return;
        }
        for (const auto& sol : sols) {
          if (sol.empty()) {
            std::printf("  true.\n");
            continue;
          }
          std::string line = "  ";
          for (const auto& [k, v] : sol) line += k + " = " + v + "  ";
          std::printf("%s\n", line.c_str());
        }
        std::printf("  (%llu inferences)\n",
                    static_cast<unsigned long long>(s.steps()));
        return;
      }
      case Mode::kOrParallel: {
        const auto r = solve_or_parallel(db, q);
        if (!r.found) {
          std::printf("  false.\n");
          return;
        }
        std::string line = "  ";
        for (const auto& [k, v] : r.solution) line += k + " = " + v + "  ";
        std::printf("%s(via clause %d, %.1f ms)\n", line.c_str(),
                    r.winner_branch, r.elapsed_ms);
        return;
      }
      case Mode::kAndParallel: {
        const auto r = solve_and_parallel(db, q);
        if (!r.found) {
          std::printf("  false.\n");
          return;
        }
        std::string line = "  ";
        for (const auto& [k, v] : r.solution) line += k + " = " + v + "  ";
        std::printf("%s(%zu independent groups, %.1f ms)\n", line.c_str(),
                    r.groups, r.elapsed_ms);
        return;
      }
    }
  } catch (const std::exception& e) {
    std::printf("  error: %s\n", e.what());
  }
}

}  // namespace

int main(int argc, char** argv) {
  altx::prolog::Database db;
  Mode mode = Mode::kSequential;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--or-parallel") {
      mode = Mode::kOrParallel;
    } else if (arg == "--and-parallel") {
      mode = Mode::kAndParallel;
    } else {
      std::ifstream in(arg);
      if (!in) {
        std::fprintf(stderr, "cannot open %s\n", arg.c_str());
        return 1;
      }
      std::ostringstream buf;
      buf << in.rdbuf();
      try {
        db.consult(buf.str());
        std::printf("%% consulted %s (%zu clauses total)\n", arg.c_str(),
                    db.clause_count());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "%s: %s\n", arg.c_str(), e.what());
        return 1;
      }
    }
  }

  const char* mode_name = mode == Mode::kSequential ? "sequential"
                          : mode == Mode::kOrParallel ? "or-parallel"
                                                      : "and-parallel";
  std::printf("%% altx mini-prolog (%s mode). ?- queries, blank line quits.\n",
              mode_name);
  std::string line;
  while (std::printf("?- "), std::fflush(stdout),
         std::getline(std::cin, line)) {
    if (line.empty()) break;
    run_query(db, line, mode);
  }
  return 0;
}
