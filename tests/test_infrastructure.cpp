// Tests for infrastructure pieces not covered elsewhere: network channel
// demultiplexing and bandwidth, pipe framing helpers, and kernel config
// validation.
#include <gtest/gtest.h>
#include <unistd.h>

#include <thread>

#include "net/network.hpp"
#include "posix/fd.hpp"
#include "sim/kernel.hpp"

namespace altx {
namespace {

// ---------------------------------------------------------------------------
// Network channels and bandwidth
// ---------------------------------------------------------------------------

TEST(NetChannels, ChannelsAreIsolated) {
  net::Network::Config c;
  c.node_count = 2;
  c.base_latency = kMsec;
  net::Network net(c);
  int on_a = 0;
  int on_b = 0;
  net.on_receive(1, 1, [&](const net::Packet&) { ++on_a; });
  net.on_receive(1, 2, [&](const net::Packet&) { ++on_b; });
  net.send(0, 1, 1, {1});
  net.send(0, 1, 2, {2});
  net.send(0, 1, 2, {3});
  net.send(0, 1, 9, {4});  // nobody listens on channel 9: dropped silently
  net.run();
  EXPECT_EQ(on_a, 1);
  EXPECT_EQ(on_b, 2);
}

TEST(NetChannels, DefaultChannelIsZero) {
  net::Network::Config c;
  c.node_count = 2;
  net::Network net(c);
  int got = 0;
  net.on_receive(1, [&](const net::Packet& p) {
    EXPECT_EQ(p.channel, net::kDefaultChannel);
    ++got;
  });
  net.send(0, 1, {7});
  net.run();
  EXPECT_EQ(got, 1);
}

TEST(NetChannels, BandwidthDelaysLargePackets) {
  net::Network::Config c;
  c.node_count = 2;
  c.base_latency = kMsec;
  c.bytes_per_usec = 1.0;  // 1 byte per microsecond
  net::Network net(c);
  SimTime small_at = 0;
  SimTime big_at = 0;
  int seen = 0;
  net.on_receive(1, [&](const net::Packet& p) {
    (p.data.size() < 100 ? small_at : big_at) = net.now();
    ++seen;
  });
  net.send(0, 1, Bytes(10, 0));
  net.send(0, 1, Bytes(50'000, 0));
  net.run();
  ASSERT_EQ(seen, 2);
  EXPECT_NEAR(static_cast<double>(small_at), kMsec + 10, 1.0);
  EXPECT_NEAR(static_cast<double>(big_at), kMsec + 50'000, 1.0);
}

// ---------------------------------------------------------------------------
// fd helpers
// ---------------------------------------------------------------------------

TEST(FdHelpers, FrameRoundTrip) {
  posix::Pipe p = posix::Pipe::create();
  posix::write_frame(p.write_end.get(), Bytes{1, 2, 3});
  posix::write_frame(p.write_end.get(), Bytes{});
  posix::write_frame(p.write_end.get(), Bytes{9});
  EXPECT_EQ(posix::read_frame(p.read_end.get()), (Bytes{1, 2, 3}));
  EXPECT_EQ(posix::read_frame(p.read_end.get()), (Bytes{}));
  EXPECT_EQ(posix::read_frame(p.read_end.get()), (Bytes{9}));
}

TEST(FdHelpers, EofYieldsNulloptNotThrow) {
  posix::Pipe p = posix::Pipe::create();
  p.write_end.reset();
  EXPECT_FALSE(posix::read_frame(p.read_end.get()).has_value());
}

TEST(FdHelpers, TruncatedFrameThrows) {
  posix::Pipe p = posix::Pipe::create();
  const std::uint64_t lying_len = 100;
  posix::write_all(p.write_end.get(), &lying_len, sizeof lying_len);
  posix::write_all(p.write_end.get(), "xx", 2);
  p.write_end.reset();
  EXPECT_THROW((void)posix::read_frame(p.read_end.get()), SystemError);
}

TEST(FdHelpers, WaitReadableTimesOut) {
  posix::Pipe p = posix::Pipe::create();
  EXPECT_FALSE(posix::wait_readable(p.read_end.get(), 30));
  posix::write_all(p.write_end.get(), "x", 1);
  EXPECT_TRUE(posix::wait_readable(p.read_end.get(), 30));
}

TEST(FdHelpers, LargeFrameAcrossPipeBuffer) {
  // > 64 KiB forces multiple write/read chunks; use a thread as the writer
  // to avoid deadlocking the single test process.
  posix::Pipe p = posix::Pipe::create();
  Bytes big(1 << 20);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = static_cast<std::uint8_t>(i);
  std::thread writer(
      [&] { posix::write_frame(p.write_end.get(), big); p.write_end.reset(); });
  const auto got = posix::read_frame(p.read_end.get());
  writer.join();
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, big);
}

TEST(FdHelpers, FdMoveSemantics) {
  posix::Pipe p = posix::Pipe::create();
  const int raw = p.read_end.get();
  posix::Fd moved = std::move(p.read_end);
  EXPECT_EQ(moved.get(), raw);
  EXPECT_FALSE(p.read_end.valid());
  const int released = moved.release();
  EXPECT_EQ(released, raw);
  EXPECT_FALSE(moved.valid());
  ::close(released);
}

// ---------------------------------------------------------------------------
// Kernel configuration validation
// ---------------------------------------------------------------------------

TEST(KernelConfig, RejectsNonsense) {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::hp9000_350();
  cfg.address_space_pages = 0;
  EXPECT_THROW(sim::Kernel k(cfg), UsageError);

  sim::Kernel::Config cfg2;
  cfg2.machine = sim::MachineModel::hp9000_350();
  cfg2.machine.quantum = 0;
  EXPECT_THROW(sim::Kernel k2(cfg2), UsageError);

  sim::Kernel::Config cfg3;
  cfg3.machine = sim::MachineModel::hp9000_350();
  cfg3.machine.cpus_per_node = 0;
  EXPECT_THROW(sim::Kernel k3(cfg3), UsageError);
}

TEST(KernelConfig, SpawnValidation) {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::hp9000_350();
  sim::Kernel k(cfg);
  EXPECT_THROW((void)k.spawn_root(nullptr), UsageError);
  EXPECT_THROW((void)k.spawn_root(sim::ProgramBuilder().build(), 5), UsageError);
}

TEST(KernelConfig, CrashValidation) {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::hp9000_350();
  sim::Kernel k(cfg);
  EXPECT_THROW(k.crash_node_at(9, kSec), UsageError);
}

}  // namespace
}  // namespace altx
