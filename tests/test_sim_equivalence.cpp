// Sequential-equivalence and determinism properties.
//
// The paper's correctness bar (section 4.3): "to an observer, the concurrent
// execution of the Ci must look like Scheme B — a single thread of
// computation, chosen arbitrarily from among C1..CN". These tests check the
// strongest memory-level form of that: when alternatives write OVERLAPPING
// pages with distinct values, the absorbed state must be exactly one
// alternative's complete write-set — never a mixture — and repeated runs
// from the same seed must be bit-identical.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

Kernel::Config cfg(int cpus, Elimination e = Elimination::kAsynchronous) {
  Kernel::Config c;
  c.machine = MachineModel::shared_memory_mp(cpus);
  c.address_space_pages = 16;
  c.elimination = e;
  return c;
}

class Equivalence : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Equivalence, OverlappingWritesAreNeverMixed) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 10; ++trial) {
    Kernel k(cfg(static_cast<int>(1 + rng.below(4))));
    const std::size_t n = 2 + rng.below(4);
    const std::size_t shared_pages = 4;  // every alternative writes all four
    std::vector<ProgramRef> alts;
    std::vector<bool> ok(n);
    bool any_ok = false;
    for (std::size_t i = 0; i < n; ++i) {
      ok[i] = rng.chance(0.75);
      any_ok = any_ok || ok[i];
      ProgramBuilder b;
      // Interleave computation and writes so preemption can occur between
      // them — a torn absorb would mix values from different alternatives.
      for (std::size_t p = 0; p < shared_pages; ++p) {
        b.compute(static_cast<SimTime>(rng.range(1, 40)) * kMsec);
        b.write(static_cast<VPage>(p), 0, 1000 * (i + 1) + p);
      }
      const bool g = ok[i];
      b.guard([g](const AddressSpace&) { return g; });
      alts.push_back(b.build());
    }
    auto on_fail = ProgramBuilder().write(10, 0, 0xdead).build();
    const Pid pid = k.spawn_root(ProgramBuilder().alt(alts, 0, on_fail).build());
    k.run();

    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(trial));
    ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
    const auto& as = k.process(pid)->as_;
    if (!any_ok) {
      EXPECT_EQ(as.peek(10, 0), 0xdeadu);
      for (std::size_t p = 0; p < shared_pages; ++p) {
        EXPECT_EQ(as.peek(static_cast<VPage>(p), 0), 0u);
      }
      continue;
    }
    // Identify the winner from page 0, then demand every shared page carries
    // exactly that winner's value: one complete write-set, no mixture.
    const std::uint64_t v0 = as.peek(0, 0);
    ASSERT_GE(v0, 1000u);
    const std::uint64_t winner = v0 / 1000;
    ASSERT_LE(winner, n);
    EXPECT_TRUE(ok[winner - 1]);
    for (std::size_t p = 0; p < shared_pages; ++p) {
      EXPECT_EQ(as.peek(static_cast<VPage>(p), 0), 1000 * winner + p)
          << "page " << p << " carries another alternative's value";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Equivalence,
                         ::testing::Values(101, 202, 303, 404, 505, 606));

TEST(Determinism, IdenticalSeedsGiveIdenticalRuns) {
  auto run_once = [](std::uint64_t seed) {
    Rng rng(seed);
    Kernel k(cfg(3));
    std::vector<ProgramRef> alts;
    for (int i = 0; i < 4; ++i) {
      alts.push_back(ProgramBuilder()
                         .compute(static_cast<SimTime>(rng.range(5, 300)) * kMsec)
                         .write(0, 0, static_cast<std::uint64_t>(i) + 1)
                         .build());
    }
    const Pid pid = k.spawn_root(ProgramBuilder().alt(alts).build());
    k.run();
    return std::tuple{k.now(), k.process(pid)->as_.peek(0, 0),
                      k.stats().cpu_busy, k.stats().ctx_switches,
                      k.stats().cow_copies};
  };
  for (std::uint64_t seed : {1ULL, 9ULL, 42ULL}) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << "seed " << seed;
  }
}

TEST(Determinism, DifferentCpuCountsChangeTimingNotOutcome) {
  // The winner is timing-dependent in general, but with one clearly fastest
  // alternative the selected outcome must be invariant across CPU counts.
  for (int cpus : {1, 2, 4, 8}) {
    Kernel k(cfg(cpus));
    auto fast = ProgramBuilder().compute(10 * kMsec).write(0, 0, 7).build();
    auto slow1 = ProgramBuilder().compute(900 * kMsec).write(0, 0, 8).build();
    auto slow2 = ProgramBuilder().compute(900 * kMsec).write(0, 0, 9).build();
    const Pid pid = k.spawn_root(ProgramBuilder().alt({slow1, fast, slow2}).build());
    k.run();
    EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 7u) << cpus << " cpus";
  }
}

TEST(Sequencing, ThreeBlocksInARowAccumulateState) {
  Kernel k(cfg(4));
  auto step = [](std::uint64_t tag) {
    return ProgramBuilder()
        .compute(20 * kMsec)
        .write(static_cast<VPage>(tag), 0, tag)
        .build();
  };
  auto prog = ProgramBuilder()
                  .alt({step(1), step(1)})
                  .alt({step(2), step(2)})
                  .alt({step(3), step(3)})
                  .build();
  const Pid pid = k.spawn_root(prog);
  k.run();
  ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.stats().commits, 3u);
  for (std::uint64_t t = 1; t <= 3; ++t) {
    EXPECT_EQ(k.process(pid)->as_.peek(static_cast<VPage>(t), 0), t);
  }
}

TEST(Sequencing, LaterBlocksSeeEarlierWinnersState) {
  Kernel k(cfg(4));
  // Block 2's guard depends on block 1's absorbed value.
  auto first = ProgramBuilder().compute(5 * kMsec).write(0, 0, 11).build();
  auto second = ProgramBuilder()
                    .guard([](const AddressSpace& as) { return as.peek(0, 0) == 11; })
                    .write(1, 0, 22)
                    .build();
  const Pid pid =
      k.spawn_root(ProgramBuilder().alt({first}).alt({second}).build());
  k.run();
  ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(1, 0), 22u);
}

TEST(Sequencing, FailArmStateVisibleToNextBlock) {
  Kernel k(cfg(4));
  auto bad = ProgramBuilder().abort().build();
  auto on_fail = ProgramBuilder().write(0, 0, 5).build();
  auto checker = ProgramBuilder()
                     .guard([](const AddressSpace& as) { return as.peek(0, 0) == 5; })
                     .write(1, 0, 6)
                     .build();
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt({bad}, 0, on_fail).alt({checker}).build());
  k.run();
  ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(1, 0), 6u);
}

}  // namespace
}  // namespace altx::sim
