// Unit tests for the predicate algebra (paper section 3.3) and the message
// reception rules (section 3.4.2).
#include <gtest/gtest.h>

#include "msg/message.hpp"
#include "msg/predicate.hpp"

namespace altx {
namespace {

TEST(Predicate, EmptyPredicateIsSatisfied) {
  Predicate p;
  EXPECT_TRUE(p.satisfied());
  EXPECT_EQ(p.size(), 0u);
}

TEST(Predicate, ChildAssumesSelfCompletesAndSiblingsFail) {
  Predicate parent;
  parent.require_complete(100);
  const Predicate child = Predicate::for_child(parent, 2, {1, 2, 3});
  EXPECT_TRUE(child.requires_complete(2));
  EXPECT_TRUE(child.requires_complete(100));  // inherited
  EXPECT_TRUE(child.requires_fail(1));
  EXPECT_TRUE(child.requires_fail(3));
  EXPECT_FALSE(child.requires_fail(2));
  EXPECT_FALSE(child.satisfied());
}

TEST(Predicate, InsertIsIdempotent) {
  Predicate p;
  p.require_complete(5);
  p.require_complete(5);
  p.require_fail(6);
  p.require_fail(6);
  EXPECT_EQ(p.size(), 2u);
}

TEST(Predicate, SubsumesRequiresEveryAssumption) {
  Predicate r;
  r.require_complete(1);
  r.require_complete(2);
  r.require_fail(3);
  Predicate s;
  s.require_complete(1);
  EXPECT_TRUE(r.subsumes(s));
  EXPECT_FALSE(s.subsumes(r));
  s.require_fail(3);
  EXPECT_TRUE(r.subsumes(s));
  s.require_complete(9);
  EXPECT_FALSE(r.subsumes(s));
}

TEST(Predicate, ConflictsDetectsContradiction) {
  Predicate r;
  r.require_complete(1);
  Predicate s;
  s.require_fail(1);
  EXPECT_TRUE(r.conflicts(s));
  EXPECT_TRUE(s.conflicts(r));
  Predicate t;
  t.require_complete(2);
  EXPECT_FALSE(r.conflicts(t));
}

TEST(Predicate, MergeUnionsAssumptions) {
  Predicate r;
  r.require_complete(1);
  Predicate s;
  s.require_complete(2);
  s.require_fail(3);
  r.merge(s);
  EXPECT_TRUE(r.requires_complete(1));
  EXPECT_TRUE(r.requires_complete(2));
  EXPECT_TRUE(r.requires_fail(3));
}

TEST(Predicate, MergeContradictionThrows) {
  Predicate r;
  r.require_complete(1);
  Predicate s;
  s.require_fail(1);
  EXPECT_THROW(r.merge(s), UsageError);
}

TEST(Predicate, ResolveSatisfiesOrKills) {
  Predicate p;
  p.require_complete(1);
  p.require_fail(2);
  // 1 completed: assumption satisfied and removed.
  EXPECT_EQ(p.resolve(1, Resolution::kCompleted), Resolution::kPending);
  EXPECT_FALSE(p.requires_complete(1));
  // 2 completed: contradicts "2 must fail" — holder must die.
  EXPECT_EQ(p.resolve(2, Resolution::kCompleted), Resolution::kFailed);
}

TEST(Predicate, ResolveFailurePaths) {
  Predicate p;
  p.require_complete(1);
  p.require_fail(2);
  EXPECT_EQ(p.resolve(2, Resolution::kFailed), Resolution::kPending);
  EXPECT_TRUE(p.satisfied() == false);  // 1 still pending
  EXPECT_EQ(p.resolve(1, Resolution::kFailed), Resolution::kFailed);
}

TEST(Predicate, ResolveUnrelatedPidIsNoop) {
  Predicate p;
  p.require_complete(1);
  EXPECT_EQ(p.resolve(42, Resolution::kCompleted), Resolution::kPending);
  EXPECT_EQ(p.resolve(42, Resolution::kFailed), Resolution::kPending);
  EXPECT_TRUE(p.requires_complete(1));
}

TEST(Predicate, SerializationRoundTrip) {
  Predicate p;
  p.require_complete(7);
  p.require_complete(3);
  p.require_fail(9);
  Bytes buf;
  ByteWriter w(buf);
  p.serialize(w);
  ByteReader r(buf);
  const Predicate q = Predicate::deserialize(r);
  EXPECT_EQ(p, q);
}

// ---------------------------------------------------------------------------
// Message reception (section 3.4.2)
// ---------------------------------------------------------------------------

Message speculative_message(Pid sender, Predicate preds = {}) {
  Message m;
  m.sender = sender;
  m.sender_speculative = true;
  m.sending_predicate = std::move(preds);
  return m;
}

TEST(Reception, NonSpeculativeMessageAlwaysAccepted) {
  Message m;
  m.sender = 1;
  m.sender_speculative = false;
  Predicate receiver;
  receiver.require_complete(55);  // receiver itself speculative
  EXPECT_EQ(classify_reception(receiver, m), Reception::kAccept);
}

TEST(Reception, SubsumedSpeculativeMessageAccepted) {
  Predicate receiver;
  receiver.require_complete(10);
  const Message m = speculative_message(10);
  EXPECT_EQ(classify_reception(receiver, m), Reception::kAccept);
}

TEST(Reception, ConflictingMessageIgnored) {
  Predicate receiver;
  receiver.require_fail(10);  // assumes the sender will NOT complete
  const Message m = speculative_message(10);
  EXPECT_EQ(classify_reception(receiver, m), Reception::kIgnore);
}

TEST(Reception, NewAssumptionSplitsWorlds) {
  Predicate receiver;
  const Message m = speculative_message(10);
  EXPECT_EQ(classify_reception(receiver, m), Reception::kSplit);

  const Predicate yes = accepting_world(receiver, m);
  EXPECT_TRUE(yes.requires_complete(10));

  const Predicate no = rejecting_world(receiver, m);
  EXPECT_TRUE(no.requires_fail(10));
  EXPECT_FALSE(no.requires_complete(10));
}

TEST(Reception, AcceptingWorldImpliesAllSenderPredicates) {
  // Footnote 2: complete(S) implies all of S's predicates.
  Predicate sender_preds;
  sender_preds.require_complete(3);
  sender_preds.require_fail(4);
  const Message m = speculative_message(10, sender_preds);
  const Predicate yes = accepting_world(Predicate{}, m);
  EXPECT_TRUE(yes.requires_complete(10));
  EXPECT_TRUE(yes.requires_complete(3));
  EXPECT_TRUE(yes.requires_fail(4));
}

TEST(Reception, RejectingWorldNegatesOnlySenderCompletion) {
  // Footnote 3: negating every sender predicate could assert that two
  // mutually exclusive processes both complete; only complete(S) is negated.
  Predicate sender_preds;
  sender_preds.require_complete(3);
  sender_preds.require_fail(4);
  const Message m = speculative_message(10, sender_preds);
  const Predicate no = rejecting_world(Predicate{}, m);
  EXPECT_TRUE(no.requires_fail(10));
  EXPECT_FALSE(no.requires_complete(3));
  EXPECT_FALSE(no.requires_fail(3));
  EXPECT_FALSE(no.requires_complete(4));
  EXPECT_FALSE(no.requires_fail(4));
}

TEST(Reception, WorldsAreMutuallyExclusive) {
  const Message m = speculative_message(10);
  Predicate receiver;
  const Predicate yes = accepting_world(receiver, m);
  const Predicate no = rejecting_world(receiver, m);
  EXPECT_TRUE(yes.conflicts(no));
}

TEST(Reception, PartialOverlapStillSplits) {
  Predicate receiver;
  receiver.require_complete(3);  // shares one assumption with the sender
  Predicate sender_preds;
  sender_preds.require_complete(3);
  const Message m = speculative_message(10, sender_preds);
  EXPECT_EQ(classify_reception(receiver, m), Reception::kSplit);
}

TEST(Message, SerializationRoundTrip) {
  Predicate preds;
  preds.require_complete(2);
  Message m = speculative_message(9, preds);
  m.data = {1, 2, 3, 4};
  m.destination = 77;
  m.seq = 42;
  Bytes buf;
  ByteWriter w(buf);
  m.serialize(w);
  ByteReader r(buf);
  const Message out = Message::deserialize(r);
  EXPECT_EQ(out.sender, 9u);
  EXPECT_TRUE(out.sender_speculative);
  EXPECT_EQ(out.data, (Bytes{1, 2, 3, 4}));
  EXPECT_EQ(out.destination, 77u);
  EXPECT_EQ(out.seq, 42u);
  EXPECT_EQ(out.sending_predicate, preds);
}

}  // namespace
}  // namespace altx
