// Unit tests for the COW paging substrate: frame refcounting, page-map
// inheritance, write faults, eager deep copies, absorption, and the dirty
// descriptor table.
#include <gtest/gtest.h>

#include "sim/page.hpp"

namespace altx::sim {
namespace {

TEST(FrameStore, AllocateAndRefcount) {
  FrameStore fs(4);
  const FrameId a = fs.allocate();
  EXPECT_EQ(fs.refcount(a), 1);
  fs.ref(a);
  EXPECT_EQ(fs.refcount(a), 2);
  EXPECT_TRUE(fs.shared(a));
  fs.unref(a);
  EXPECT_FALSE(fs.shared(a));
  EXPECT_EQ(fs.live_frames(), 1u);
  fs.unref(a);
  EXPECT_EQ(fs.live_frames(), 0u);
}

TEST(FrameStore, FreedFramesAreReusedZeroed) {
  FrameStore fs(2);
  const FrameId a = fs.allocate();
  fs.write(a, 0, 99);
  fs.unref(a);
  const FrameId b = fs.allocate();
  EXPECT_EQ(b, a);  // reused
  EXPECT_EQ(fs.read(b, 0), 0u);  // scrubbed
}

TEST(FrameStore, CopyFrameDuplicatesContent) {
  FrameStore fs(2);
  const FrameId a = fs.allocate();
  fs.write(a, 1, 7);
  const FrameId b = fs.copy_frame(a);
  EXPECT_NE(a, b);
  EXPECT_EQ(fs.read(b, 1), 7u);
  fs.write(b, 1, 8);
  EXPECT_EQ(fs.read(a, 1), 7u);  // independent
}

TEST(AddressSpace, FreshSpaceIsZeroFilled) {
  FrameStore fs(4);
  AddressSpace as(fs, 8);
  EXPECT_EQ(as.pages(), 8u);
  EXPECT_EQ(as.peek(3, 2), 0u);
  EXPECT_EQ(fs.live_frames(), 8u);
}

TEST(AddressSpace, CowCloneSharesEveryFrame) {
  FrameStore fs(4);
  AddressSpace parent(fs, 4);
  (void)parent.write(0, 0, 5);
  AddressSpace child = AddressSpace::cow_clone(parent);
  EXPECT_EQ(fs.live_frames(), 4u);  // no new frames
  EXPECT_EQ(child.peek(0, 0), 5u);
  EXPECT_TRUE(fs.shared(child.frame_of(0)));
}

TEST(AddressSpace, WriteFaultCopiesExactlyOnePage) {
  FrameStore fs(4);
  AddressSpace parent(fs, 4);
  AddressSpace child = AddressSpace::cow_clone(parent);
  EXPECT_TRUE(child.write(2, 0, 9));   // faults
  EXPECT_FALSE(child.write(2, 1, 10)); // now private: no fault
  EXPECT_EQ(fs.live_frames(), 5u);
  EXPECT_EQ(parent.peek(2, 0), 0u);
  EXPECT_EQ(child.peek(2, 0), 9u);
  EXPECT_EQ(child.stats().cow_copies, 1u);
}

TEST(AddressSpace, WritesInParentDoNotLeakToChild) {
  FrameStore fs(4);
  AddressSpace parent(fs, 2);
  AddressSpace child = AddressSpace::cow_clone(parent);
  (void)parent.write(0, 0, 1);
  EXPECT_EQ(child.peek(0, 0), 0u);
}

TEST(AddressSpace, DeepCopyTakesNoFaults) {
  FrameStore fs(4);
  AddressSpace parent(fs, 3);
  (void)parent.write(1, 0, 4);
  AddressSpace child = AddressSpace::deep_copy(parent);
  EXPECT_EQ(fs.live_frames(), 6u);
  EXPECT_EQ(child.peek(1, 0), 4u);
  EXPECT_FALSE(child.write(1, 0, 5));  // private from the start
}

TEST(AddressSpace, DirtySetIsTheDescriptorTable) {
  FrameStore fs(4);
  AddressSpace as(fs, 8);
  (void)as.write(1, 0, 1);
  (void)as.write(5, 0, 1);
  (void)as.write(1, 1, 2);  // same page twice: one entry
  EXPECT_EQ(as.dirty_pages().size(), 2u);
  EXPECT_TRUE(as.dirty_pages().contains(1));
  EXPECT_TRUE(as.dirty_pages().contains(5));
}

TEST(AddressSpace, AbsorbAdoptsWinnerMapAndMergesDirty) {
  FrameStore fs(4);
  AddressSpace parent(fs, 4);
  (void)parent.write(0, 0, 1);  // parent's own pre-block write
  AddressSpace child = AddressSpace::cow_clone(parent);
  (void)child.write(2, 0, 42);
  parent.absorb(std::move(child));
  EXPECT_EQ(parent.peek(2, 0), 42u);
  EXPECT_EQ(parent.peek(0, 0), 1u);
  EXPECT_TRUE(parent.dirty_pages().contains(0));
  EXPECT_TRUE(parent.dirty_pages().contains(2));
  // No leaked frames: 4 live pages + nothing else.
  EXPECT_EQ(fs.live_frames(), 4u);
}

TEST(AddressSpace, DestructionReleasesFrames) {
  FrameStore fs(4);
  {
    AddressSpace a(fs, 4);
    AddressSpace b = AddressSpace::cow_clone(a);
    (void)b.write(0, 0, 1);
    EXPECT_EQ(fs.live_frames(), 5u);
  }
  EXPECT_EQ(fs.live_frames(), 0u);
}

TEST(AddressSpace, MoveTransfersOwnership) {
  FrameStore fs(4);
  AddressSpace a(fs, 2);
  (void)a.write(0, 0, 7);
  AddressSpace b = std::move(a);
  EXPECT_EQ(b.peek(0, 0), 7u);
  EXPECT_EQ(fs.live_frames(), 2u);
}

TEST(AddressSpace, OutOfRangeAccessThrows) {
  FrameStore fs(4);
  AddressSpace as(fs, 2);
  EXPECT_THROW((void)as.peek(2, 0), UsageError);
  EXPECT_THROW((void)as.write(0, 99, 1), UsageError);
}

TEST(AddressSpace, SharedChainOfClones) {
  // Grandchild sharing through two generations; a write at the bottom copies
  // once and leaves both ancestors intact.
  FrameStore fs(4);
  AddressSpace a(fs, 2);
  (void)a.write(0, 0, 1);
  AddressSpace b = AddressSpace::cow_clone(a);
  AddressSpace c = AddressSpace::cow_clone(b);
  EXPECT_EQ(fs.refcount(c.frame_of(0)), 3);
  (void)c.write(0, 0, 3);
  EXPECT_EQ(a.peek(0, 0), 1u);
  EXPECT_EQ(b.peek(0, 0), 1u);
  EXPECT_EQ(c.peek(0, 0), 3u);
}

}  // namespace
}  // namespace altx::sim
