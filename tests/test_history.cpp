// Per-arm runtime histories: the (site, arm) store that feeds
// prediction-driven budgeting.
//
// What matters: quantiles interpolate instead of reporting bucket upper
// bounds, snapshots round-trip byte-for-byte through tmp+rename, a full
// table drops samples instead of aborting races, and race<T>() with a
// site_id actually attributes every reaped arm.
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <optional>
#include <string>

#include "obs/history.hpp"
#include "posix/race.hpp"

namespace altx::obs {
namespace {

using namespace std::chrono_literals;

std::string tmp_snapshot_path() {
  return "/tmp/altx_history_test_" + std::to_string(::getpid()) + ".bin";
}

TEST(SiteHash, StableNonzeroAndLineSensitive) {
  constexpr std::uint64_t a = site_hash("src/x.cpp", 10);
  constexpr std::uint64_t b = site_hash("src/x.cpp", 11);
  constexpr std::uint64_t c = site_hash("src/y.cpp", 10);
  static_assert(a != 0, "0 is the no-site sentinel");
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a, site_hash("src/x.cpp", 10));  // stable across calls
  const std::uint64_t here = ALTX_SITE();
  EXPECT_NE(here, 0u);
}

TEST(History, RecordsAccumulateEwmaAndExtremes) {
  HistoryStore h(64);
  const std::uint64_t site = site_hash("t", 1);
  h.record(site, 1, 1'000, 500, true);
  h.record(site, 1, 2'000, 700, false);
  const ArmStats* s = h.find(site, 1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total, 2u);
  EXPECT_EQ(s->successes, 1u);
  EXPECT_DOUBLE_EQ(s->success_rate(), 0.5);
  EXPECT_EQ(s->min_wall_ns, 1'000u);
  EXPECT_EQ(s->max_wall_ns, 2'000u);
  // First sample initializes the EWMA; the second folds at alpha = 0.2.
  EXPECT_DOUBLE_EQ(s->ewma_wall_ns, 1'000.0 * 0.8 + 2'000.0 * 0.2);
  EXPECT_EQ(h.find(site, 2), nullptr);
  EXPECT_EQ(h.find(site_hash("t", 2), 1), nullptr);
}

TEST(History, QuantilesInterpolateWithinBuckets) {
  HistoryStore h(64);
  const std::uint64_t site = site_hash("t", 2);
  // Identical samples: whatever the bucket span says, clamping to the
  // observed [min, max] must pin every quantile to the one true value.
  for (int i = 0; i < 100; ++i) h.record(site, 1, 5'000, 0, true);
  EXPECT_EQ(h.quantile(site, 1, 0.5), 5'000u);
  EXPECT_EQ(h.quantile(site, 1, 0.99), 5'000u);
  // A spread inside one power-of-two bucket [4096, 8192): interpolation
  // must land between the extremes, never at the 8191 upper bound the
  // pre-interpolation sketch reported.
  for (int i = 0; i < 100; ++i) h.record(site, 2, 4'200, 0, true);
  for (int i = 0; i < 100; ++i) h.record(site, 2, 7'800, 0, true);
  const std::uint64_t p50 = h.quantile(site, 2, 0.5);
  EXPECT_GE(p50, 4'200u);
  EXPECT_LE(p50, 7'800u);
  // Unknown arm: 0 means "no prediction".
  EXPECT_EQ(h.quantile(site, 9, 0.5), 0u);
}

TEST(History, ArmsListsOneSiteOrdered) {
  HistoryStore h(64);
  const std::uint64_t site = site_hash("t", 3);
  h.record(site, 3, 30, 0, false);
  h.record(site, 1, 10, 0, true);
  h.record(site, 2, 20, 0, false);
  h.record(site_hash("t", 4), 1, 99, 0, true);  // different site, unlisted
  const auto arms = h.arms(site);
  ASSERT_EQ(arms.size(), 3u);
  EXPECT_EQ(arms[0]->arm, 1u);
  EXPECT_EQ(arms[1]->arm, 2u);
  EXPECT_EQ(arms[2]->arm, 3u);
  EXPECT_EQ(arms[0]->min_wall_ns, 10u);
}

TEST(History, SnapshotRoundTripsAcrossStores) {
  const std::string path = tmp_snapshot_path();
  const std::uint64_t site = site_hash("t", 5);
  {
    HistoryStore h(64);
    h.record(site, 1, 1'000, 100, true);
    h.record(site, 1, 3'000, 300, false);
    h.record(site, 2, 50'000, 900, true);
    ASSERT_TRUE(h.save(path));
  }
  HistoryStore fresh(64);
  ASSERT_TRUE(fresh.load(path));
  const ArmStats* s1 = fresh.find(site, 1);
  const ArmStats* s2 = fresh.find(site, 2);
  ASSERT_NE(s1, nullptr);
  ASSERT_NE(s2, nullptr);
  EXPECT_EQ(s1->total, 2u);
  EXPECT_EQ(s1->successes, 1u);
  EXPECT_EQ(s1->min_wall_ns, 1'000u);
  EXPECT_EQ(s1->max_wall_ns, 3'000u);
  EXPECT_DOUBLE_EQ(s1->ewma_wall_ns, 1'000.0 * 0.8 + 3'000.0 * 0.2);
  EXPECT_EQ(s2->total, 1u);
  // The quantile query works identically on the reloaded sketch.
  EXPECT_EQ(fresh.quantile(site, 2, 0.5), 50'000u);
  // New samples keep folding into a loaded store.
  fresh.record(site, 1, 10'000, 0, true);
  EXPECT_EQ(fresh.find(site, 1)->total, 3u);
  std::remove(path.c_str());
}

TEST(History, LoadRejectsMissingAndGarbageFiles) {
  HistoryStore h(8);
  EXPECT_FALSE(h.load("/tmp/altx_history_does_not_exist.bin"));
  const std::string path = tmp_snapshot_path();
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("not a snapshot", f);
  std::fclose(f);
  EXPECT_FALSE(h.load(path));
  EXPECT_EQ(h.size(), 0u);
  std::remove(path.c_str());
}

TEST(History, FullTableDropsSamplesInsteadOfAborting) {
  HistoryStore h(4);
  for (std::uint32_t arm = 1; arm <= 50; ++arm) {
    h.record(site_hash("full", static_cast<int>(arm)), 1, 100, 0, true);
  }
  EXPECT_LE(h.size(), h.capacity());
  EXPECT_GT(h.samples_dropped(), 0u);
  // Existing entries still accept samples after the table fills.
  const auto arms = h.arms(site_hash("full", 1));
  if (!arms.empty()) {
    const std::uint32_t before = arms[0]->total;
    h.record(site_hash("full", 1), 1, 100, 0, true);
    EXPECT_EQ(arms[0]->total, before + 1);
  }
}

TEST(History, QuantilesAreMonotoneInQ) {
  HistoryStore h(64);
  const std::uint64_t site = site_hash("t", 6);
  // Three shapes: uniform spread, heavy head with a long tail, and a
  // two-point mixture. Whatever the sketch does inside its buckets, a
  // higher quantile can never come out smaller.
  for (int i = 1; i <= 200; ++i) {
    h.record(site, 1, static_cast<std::uint64_t>(i) * 1'000, 0, true);
  }
  for (int i = 0; i < 190; ++i) h.record(site, 2, 2'000, 0, true);
  for (int i = 0; i < 10; ++i) h.record(site, 2, 900'000, 0, true);
  for (int i = 0; i < 50; ++i) h.record(site, 3, 1'000, 0, true);
  for (int i = 0; i < 50; ++i) h.record(site, 3, 64'000, 0, true);
  for (const std::uint32_t arm : {1u, 2u, 3u}) {
    const ArmStats* s = h.find(site, arm);
    ASSERT_NE(s, nullptr);
    const std::uint64_t p50 = s->wall_quantile(0.5);
    const std::uint64_t p90 = s->wall_quantile(0.9);
    const std::uint64_t p99 = s->wall_quantile(0.99);
    EXPECT_LE(p50, p90) << "arm " << arm;
    EXPECT_LE(p90, p99) << "arm " << arm;
    EXPECT_GE(p50, s->min_wall_ns) << "arm " << arm;
    EXPECT_LE(p99, s->max_wall_ns) << "arm " << arm;
  }
}

TEST(History, ConcurrentForkedWritersDontTearEntries) {
  // The store is MAP_SHARED: race<T>() parents in different processes fold
  // samples concurrently. Two forked writers hammer different arms with
  // constant walls; if the (site, arm) update were torn across processes,
  // the EWMA of a constant series could not stay at the constant, and
  // min/max could not both equal it.
  HistoryStore h(64);
  const std::uint64_t site = site_hash("t", 7);
  constexpr int kPerWriter = 2'000;
  pid_t pids[2];
  for (int w = 0; w < 2; ++w) {
    pids[w] = ::fork();
    ASSERT_GE(pids[w], 0);
    if (pids[w] == 0) {
      const std::uint32_t arm = static_cast<std::uint32_t>(w) + 1;
      const std::uint64_t wall = (w + 1) * 10'000;
      for (int i = 0; i < kPerWriter; ++i) {
        h.record(site, arm, wall, wall / 2, w == 0);
      }
      ::_exit(0);
    }
  }
  for (const pid_t pid : pids) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status) && WEXITSTATUS(status) == 0);
  }
  for (int w = 0; w < 2; ++w) {
    const std::uint32_t arm = static_cast<std::uint32_t>(w) + 1;
    const std::uint64_t wall = (w + 1) * 10'000;
    const ArmStats* s = h.find(site, arm);
    ASSERT_NE(s, nullptr) << "arm " << arm;
    EXPECT_EQ(s->total, static_cast<std::uint32_t>(kPerWriter));
    EXPECT_EQ(s->successes, w == 0 ? static_cast<std::uint32_t>(kPerWriter) : 0u);
    EXPECT_EQ(s->min_wall_ns, wall);
    EXPECT_EQ(s->max_wall_ns, wall);
    EXPECT_DOUBLE_EQ(s->ewma_wall_ns, static_cast<double>(wall));
    EXPECT_EQ(s->wall_quantile(0.5), wall);
  }
}

TEST(History, SnapshotFromASigkilledProcessLoadsOrIsAbsentNeverTorn) {
  // tmp+rename discipline: a writer that is SIGKILLed right after save()
  // leaves a complete snapshot; one killed before the save leaves nothing.
  // Either way the reader gets a clean store, never a half-written table.
  const std::string path = tmp_snapshot_path();
  const std::uint64_t site = site_hash("t", 8);
  std::remove(path.c_str());

  pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    HistoryStore h(64);
    for (int i = 0; i < 25; ++i) h.record(site, 1, 4'000, 2'000, true);
    h.save(path);
    ::raise(SIGKILL);  // no destructors, no flush beyond the rename
    ::_exit(1);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL);
  HistoryStore fresh(64);
  ASSERT_TRUE(fresh.load(path));
  const ArmStats* s = fresh.find(site, 1);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->total, 25u);
  EXPECT_EQ(fresh.quantile(site, 1, 0.99), 4'000u);
  std::remove(path.c_str());

  // Killed before any save: only the .tmp (at most) may exist; load of the
  // real path fails cleanly and the store stays empty.
  pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    HistoryStore h(64);
    h.record(site, 1, 4'000, 2'000, true);
    ::raise(SIGKILL);
    ::_exit(1);
  }
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  HistoryStore none(64);
  EXPECT_FALSE(none.load(path));
  EXPECT_EQ(none.size(), 0u);
}

TEST(History, RaceWithSiteIdRecordsEveryReapedArm) {
  HistoryStore* h = history_enable_for_test(64);
  ASSERT_NE(h, nullptr);
  posix::RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = ALTX_SITE();
  const auto r = posix::race<int>(
      {
          [] { return std::optional<int>(1); },
          [] { ::usleep(2'000); return std::optional<int>(2); },
      },
      opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 1);
  const ArmStats* winner = h->find(opts.site_id, 1);
  const ArmStats* loser = h->find(opts.site_id, 2);
  ASSERT_NE(winner, nullptr);
  ASSERT_NE(loser, nullptr);
  EXPECT_EQ(winner->total, 1u);
  EXPECT_EQ(winner->successes, 1u);
  EXPECT_EQ(loser->total, 1u);
  EXPECT_EQ(loser->successes, 0u);
  // Wall clamps are real measurements: both arms took nonzero time, and
  // the quantile query returns something a controller can act on.
  EXPECT_GT(winner->min_wall_ns, 0u);
  EXPECT_GT(h->quantile(opts.site_id, 2, 0.5), 0u);
  history_disable_for_test();
}

TEST(History, ReplicasFoldIntoTheirAlternative) {
  HistoryStore* h = history_enable_for_test(64);
  posix::RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = ALTX_SITE();
  opts.replicas = 2;
  const auto r = posix::race<int>(
      {
          [] { return std::optional<int>(1); },
          [] { ::usleep(2'000); return std::optional<int>(2); },
      },
      opts);
  ASSERT_TRUE(r.has_value());
  // 2 alternatives x 2 replicas = 4 children, attributed to 2 arms.
  const ArmStats* a1 = h->find(opts.site_id, 1);
  const ArmStats* a2 = h->find(opts.site_id, 2);
  ASSERT_NE(a1, nullptr);
  ASSERT_NE(a2, nullptr);
  EXPECT_EQ(a1->total + a2->total, 4u);
  EXPECT_EQ(a1->total, 2u);
  history_disable_for_test();
}

}  // namespace
}  // namespace altx::obs
