// Property-based tests on the semantics invariants of DESIGN.md section 5,
// swept over seeds and kernel configurations with parameterized gtest.
//
// For every randomly generated alternative block, regardless of CPU count,
// elimination policy, copy strategy, or timing:
//   - at most one alternative commits;
//   - the block fails exactly when no guard-passing alternative survives;
//   - the selected alternative is one whose guard held (sequential
//     equivalence: the outcome is reachable by the nondeterministic
//     sequential model);
//   - losers' page writes are never observable in the parent;
//   - the CPU accounting is consistent.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "core/model.hpp"
#include "core/workload.hpp"
#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

struct PropConfig {
  int cpus;
  Elimination elimination;
  bool eager_copy;
  std::uint64_t seed;
};

std::string PrintCfg(const ::testing::TestParamInfo<PropConfig>& info) {
  const PropConfig& c = info.param;
  return "cpus" + std::to_string(c.cpus) +
         (c.elimination == Elimination::kSynchronous ? "_sync" : "_async") +
         (c.eager_copy ? "_eager" : "_cow") + "_seed" + std::to_string(c.seed);
}

std::vector<PropConfig> make_configs() {
  std::vector<PropConfig> out;
  for (int cpus : {1, 2, 4}) {
    for (auto elim : {Elimination::kSynchronous, Elimination::kAsynchronous}) {
      for (bool eager : {false, true}) {
        for (std::uint64_t seed : {1ULL, 2ULL, 3ULL}) {
          out.push_back(PropConfig{cpus, elim, eager, seed});
        }
      }
    }
  }
  return out;
}

class BlockProperties : public ::testing::TestWithParam<PropConfig> {};

/// One random block per trial: each alternative writes a tag to the result
/// page and a witness to its own page; guards pass randomly.
TEST_P(BlockProperties, AtMostOnceAndWinnerOnlyState) {
  const PropConfig& pc = GetParam();
  Rng rng(pc.seed * 1000003);
  for (int trial = 0; trial < 8; ++trial) {
    Kernel::Config cfg;
    cfg.machine = MachineModel::shared_memory_mp(pc.cpus);
    cfg.elimination = pc.elimination;
    cfg.eager_copy = pc.eager_copy;
    const std::size_t n = 1 + rng.below(5);
    cfg.address_space_pages = 2 + n;
    Kernel k(cfg);

    std::vector<bool> guard_ok(n);
    std::vector<ProgramRef> alts;
    bool any_ok = false;
    for (std::size_t i = 0; i < n; ++i) {
      guard_ok[i] = rng.chance(0.7);
      any_ok = any_ok || guard_ok[i];
      const bool ok = guard_ok[i];
      alts.push_back(ProgramBuilder()
                         .compute(static_cast<SimTime>(rng.range(1, 200)) * kMsec)
                         .write(0, 0, i + 1)  // result tag
                         .write(static_cast<VPage>(2 + i), 0, 0xb0b0 + i)
                         .guard([ok](const AddressSpace&) { return ok; })
                         .build());
    }
    auto on_fail = ProgramBuilder().write(1, 0, 0xdead).build();
    const Pid pid = k.spawn_root(ProgramBuilder().alt(alts, 0, on_fail).build());
    k.run();

    SCOPED_TRACE("trial " + std::to_string(trial) + " n=" + std::to_string(n));
    ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
    EXPECT_LE(k.stats().commits, 1u);

    const auto& as = k.process(pid)->as_;
    if (any_ok) {
      // Exactly one commit; the winner's guard held; only the winner's
      // witness page is visible.
      EXPECT_EQ(k.stats().commits, 1u);
      const std::uint64_t tag = as.peek(0, 0);
      ASSERT_GE(tag, 1u);
      ASSERT_LE(tag, n);
      EXPECT_TRUE(guard_ok[tag - 1]) << "a guard-failing alternative won";
      for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t witness = as.peek(static_cast<VPage>(2 + i), 0);
        if (i == tag - 1) {
          EXPECT_EQ(witness, 0xb0b0 + i);
        } else {
          EXPECT_EQ(witness, 0u) << "loser " << i << "'s write leaked";
        }
      }
      EXPECT_EQ(as.peek(1, 0), 0u);  // fail arm did not run
    } else {
      EXPECT_EQ(k.stats().commits, 0u);
      EXPECT_EQ(as.peek(0, 0), 0u);
      EXPECT_EQ(as.peek(1, 0), 0xdeadu);  // fail arm ran
    }
    // No process left behind.
    EXPECT_TRUE(k.blocked_pids().empty());
  }
}

TEST_P(BlockProperties, AccountingIsConsistent) {
  const PropConfig& pc = GetParam();
  Rng rng(pc.seed * 7 + 13);
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(pc.cpus);
  cfg.elimination = pc.elimination;
  cfg.eager_copy = pc.eager_copy;
  cfg.address_space_pages = 8;
  Kernel k(cfg);

  std::vector<ProgramRef> alts;
  for (int i = 0; i < 4; ++i) {
    alts.push_back(ProgramBuilder()
                       .compute(static_cast<SimTime>(rng.range(10, 100)) * kMsec)
                       .build());
  }
  const Pid pid = k.spawn_root(ProgramBuilder().alt(alts).build());
  k.run();
  ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);

  // Every charged CPU microsecond is classified, and totals match the
  // per-process sums.
  SimTime per_proc = 0;
  for (Pid p : k.all_pids()) per_proc += k.process(p)->cpu_time_;
  EXPECT_EQ(per_proc, k.stats().cpu_busy);
  EXPECT_EQ(k.stats().useful_work + k.stats().wasted_work, k.stats().cpu_busy);
  EXPECT_EQ(k.stats().forks, 4u);
  EXPECT_EQ(k.stats().alt_blocks, 1u);
  EXPECT_EQ(k.stats().commits + k.stats().alt_failures, 1u);
}

TEST_P(BlockProperties, TimeoutNeverLeavesStragglers) {
  const PropConfig& pc = GetParam();
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(pc.cpus);
  cfg.elimination = pc.elimination;
  cfg.eager_copy = pc.eager_copy;
  cfg.address_space_pages = 8;
  Kernel k(cfg);
  auto eternal = ProgramBuilder().compute(100 * kSec).build();
  auto on_fail = ProgramBuilder().write(0, 0, 1).build();
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt({eternal, eternal, eternal}, 150 * kMsec, on_fail).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_LT(k.now(), 5 * kSec);
  EXPECT_TRUE(k.blocked_pids().empty());
  for (Pid p : k.all_pids()) {
    EXPECT_NE(k.process(p)->state_, ProcState::kReady);
    EXPECT_NE(k.process(p)->state_, ProcState::kRunning);
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, BlockProperties,
                         ::testing::ValuesIn(make_configs()), PrintCfg);

// ---------------------------------------------------------------------------
// Nested speculation trees
// ---------------------------------------------------------------------------

class NestedTree : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NestedTree, RandomTwoLevelTreesPreserveSemantics) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    Kernel::Config cfg;
    cfg.machine = MachineModel::shared_memory_mp(4);
    cfg.address_space_pages = 16;
    cfg.elimination =
        rng.chance(0.5) ? Elimination::kSynchronous : Elimination::kAsynchronous;
    Kernel k(cfg);

    // Each outer alternative contains an inner block of two leaves; each leaf
    // may fail its guard. An outer alternative fails iff its inner block
    // fails (no fail arm).
    const std::size_t outer_n = 2 + rng.below(2);
    std::vector<ProgramRef> outer;
    bool any_possible = false;
    for (std::size_t i = 0; i < outer_n; ++i) {
      bool inner_possible = false;
      std::vector<ProgramRef> inner;
      for (std::size_t j = 0; j < 2; ++j) {
        const bool ok = rng.chance(0.6);
        inner_possible = inner_possible || ok;
        inner.push_back(
            ProgramBuilder()
                .compute(static_cast<SimTime>(rng.range(1, 60)) * kMsec)
                .write(1, 0, 100 * (i + 1) + j)
                .guard([ok](const AddressSpace&) { return ok; })
                .build());
      }
      any_possible = any_possible || inner_possible;
      outer.push_back(ProgramBuilder()
                          .alt(inner)
                          .write(0, 0, i + 1)
                          .build());
    }
    auto on_fail = ProgramBuilder().write(0, 0, 0xdead).build();
    const Pid pid = k.spawn_root(ProgramBuilder().alt(outer, 0, on_fail).build());
    k.run();

    SCOPED_TRACE("trial " + std::to_string(trial));
    ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
    const std::uint64_t tag = k.process(pid)->as_.peek(0, 0);
    if (any_possible) {
      ASSERT_NE(tag, 0xdeadu) << "block failed though a leaf could succeed";
      ASSERT_GE(tag, 1u);
      ASSERT_LE(tag, outer_n);
      // The inner witness must belong to the winning outer alternative.
      const std::uint64_t w = k.process(pid)->as_.peek(1, 0);
      EXPECT_EQ(w / 100, tag);
    } else {
      EXPECT_EQ(tag, 0xdeadu);
    }
    EXPECT_TRUE(k.blocked_pids().empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NestedTree,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88));

// ---------------------------------------------------------------------------
// Sources under speculation
// ---------------------------------------------------------------------------

class SourceDiscipline : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SourceDiscipline, SpeculativeWritersNeverTouchDevices) {
  Rng rng(GetParam());
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(4);
  cfg.address_space_pages = 8;
  Kernel k(cfg);

  // Some alternatives try to write the device mid-flight (they will gate and
  // lose); at least one clean alternative exists.
  const std::size_t n = 2 + rng.below(3);
  std::vector<ProgramRef> alts;
  for (std::size_t i = 0; i + 1 < n; ++i) {
    alts.push_back(ProgramBuilder()
                       .compute(static_cast<SimTime>(rng.range(1, 30)) * kMsec)
                       .source_write(0, Bytes{static_cast<std::uint8_t>(i)})
                       .build());
  }
  alts.push_back(ProgramBuilder().compute(100 * kMsec).build());
  const Pid pid = k.spawn_root(ProgramBuilder()
                                   .alt(alts)
                                   .source_write(0, Bytes{0xAA})  // post-commit
                                   .build());
  k.run();
  ASSERT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  // Exactly one observable device write: the parent's own, after commit.
  ASSERT_EQ(k.source(0).writes().size(), 1u);
  EXPECT_EQ(k.source(0).writes()[0].writer, pid);
  EXPECT_EQ(k.source(0).writes()[0].data, Bytes{0xAA});
}

INSTANTIATE_TEST_SUITE_P(Seeds, SourceDiscipline,
                         ::testing::Values(5, 6, 7, 8, 9));

}  // namespace
}  // namespace altx::sim
