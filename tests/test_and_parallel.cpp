// Tests for await_all (the AND companion to race) and independent-goal
// AND-parallelism in the Prolog engine.
#include <gtest/gtest.h>
#include <unistd.h>

#include "posix/await_all.hpp"
#include "prolog/or_parallel.hpp"

namespace altx {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// posix::await_all
// ---------------------------------------------------------------------------

TEST(AwaitAll, CollectsEveryResultInOrder) {
  auto r = posix::await_all<int>({
      [] { ::usleep(30'000); return std::optional<int>(1); },
      [] { ::usleep(5'000); return std::optional<int>(2); },
      [] { return std::optional<int>(3); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(*r, (std::vector<int>{1, 2, 3}));
}

TEST(AwaitAll, OneFailureFailsTheConjunction) {
  auto r = posix::await_all<int>({
      [] { return std::optional<int>(1); },
      [] { return std::optional<int>(); },
      [] { return std::optional<int>(3); },
  });
  EXPECT_FALSE(r.has_value());
}

TEST(AwaitAll, CrashCountsAsFailure) {
  auto r = posix::await_all<int>({
      [] { return std::optional<int>(1); },
      []() -> std::optional<int> { ::abort(); },
  });
  EXPECT_FALSE(r.has_value());
}

TEST(AwaitAll, TimeoutKillsStragglers) {
  posix::AwaitOptions opts;
  opts.timeout = 100ms;
  const auto t0 = std::chrono::steady_clock::now();
  auto r = posix::await_all<int>(
      {
          [] { return std::optional<int>(1); },
          [] { ::sleep(30); return std::optional<int>(2); },
      },
      opts);
  EXPECT_FALSE(r.has_value());
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
}

TEST(AwaitAll, ParallelSleepsOverlap) {
  // Four 60 ms sleeps in parallel finish in well under 4 * 60 ms even on one
  // CPU (they sleep, not compute).
  const auto t0 = std::chrono::steady_clock::now();
  auto r = posix::await_all<int>({
      [] { ::usleep(60'000); return std::optional<int>(0); },
      [] { ::usleep(60'000); return std::optional<int>(1); },
      [] { ::usleep(60'000); return std::optional<int>(2); },
      [] { ::usleep(60'000); return std::optional<int>(3); },
  });
  const auto ms = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - t0)
                      .count();
  ASSERT_TRUE(r.has_value());
  EXPECT_LT(ms, 180.0);
}

TEST(AwaitAll, StringPayloads) {
  auto r = posix::await_all<std::string>({
      [] { return std::optional<std::string>("left"); },
      [] { return std::optional<std::string>("right"); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0], "left");
  EXPECT_EQ((*r)[1], "right");
}

// ---------------------------------------------------------------------------
// Prolog AND-parallelism
// ---------------------------------------------------------------------------

namespace pl = prolog;

TEST(AndParallel, IndependentGroupsArePartitionedByVariables) {
  pl::Database db;
  db.consult("p(1). q(2). r(3).");
  // p(X), q(Y) independent; r(X) shares X with p.
  const auto q = pl::parse_query(db.symbols, "p(X), q(Y), r(X)");
  const auto groups = pl::independent_groups(q);
  ASSERT_EQ(groups.size(), 2u);
  // One group holds goals {0, 2} (sharing X), the other {1}.
  std::size_t sizes[2] = {groups[0].size(), groups[1].size()};
  std::sort(sizes, sizes + 2);
  EXPECT_EQ(sizes[0], 1u);
  EXPECT_EQ(sizes[1], 2u);
}

TEST(AndParallel, GroundGoalsAreEachTheirOwnGroup) {
  pl::Database db;
  db.consult("p(1). q(2).");
  const auto q = pl::parse_query(db.symbols, "p(1), q(2)");
  EXPECT_EQ(pl::independent_groups(q).size(), 2u);
}

TEST(AndParallel, SolvesIndependentConjunctionAcrossProcesses) {
  pl::Database db;
  db.consult(R"(
    color(red). color(blue).
    size(big). size(small).
    shape(round).
  )");
  const auto q = pl::parse_query(db.symbols, "color(C), size(S), shape(Sh)");
  const auto r = pl::solve_and_parallel(db, q);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.groups, 3u);
  EXPECT_EQ(r.solution.at("C"), "red");
  EXPECT_EQ(r.solution.at("S"), "big");
  EXPECT_EQ(r.solution.at("Sh"), "round");
}

TEST(AndParallel, OneUnsatisfiableGroupFailsTheConjunction) {
  pl::Database db;
  db.consult("p(1).");
  const auto q = pl::parse_query(db.symbols, "p(X), missing(Y)");
  const auto r = pl::solve_and_parallel(db, q);
  EXPECT_FALSE(r.found);
}

TEST(AndParallel, SharedVariablesStayInOneGroup) {
  // A chained query collapses to a single group: correctness over
  // parallelism (the paper's reason OR is "more interesting").
  pl::Database db;
  db.consult(R"(
    edge(a, b). edge(b, c).
    two_hop(X, Z) :- edge(X, Y), edge(Y, Z).
  )");
  const auto q = pl::parse_query(db.symbols, "edge(X, Y), edge(Y, Z)");
  EXPECT_EQ(pl::independent_groups(q).size(), 1u);
  const auto r = pl::solve_and_parallel(db, q);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.solution.at("X"), "a");
  EXPECT_EQ(r.solution.at("Z"), "c");
}

TEST(AndParallel, AgreesWithSequentialEngine) {
  pl::Database db;
  db.consult(R"(
    fact(0, 1).
    fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
    fib(0, 0). fib(1, 1).
    fib(N, F) :- N > 1, A is N - 1, B is N - 2,
                 fib(A, FA), fib(B, FB), F is FA + FB.
  )");
  const auto q = pl::parse_query(db.symbols, "fact(8, F), fib(15, G)");
  pl::Solver seq(db);
  const auto s = seq.solve_first(q);
  const auto p = pl::solve_and_parallel(db, q);
  ASSERT_TRUE(s.has_value());
  ASSERT_TRUE(p.found);
  EXPECT_EQ(p.groups, 2u);
  EXPECT_EQ(p.solution.at("F"), s->at("F"));
  EXPECT_EQ(p.solution.at("G"), s->at("G"));
}

}  // namespace
}  // namespace altx

namespace altx::prolog {
namespace {

TEST(OrParallelAll, UnionOfBranchesEqualsSequentialSolutions) {
  Database db;
  db.consult(R"(
    route(X) :- cheap(X).
    route(X) :- scenic(X).
    cheap(bus). cheap(train).
    scenic(boat). scenic(bike). scenic(walk).
  )");
  const auto q = parse_query(db.symbols, "route(R)");
  Solver seq(db);
  const auto expected = seq.solve_all(q);
  const auto par = solve_or_parallel_all(db, q);
  ASSERT_TRUE(par.complete);
  ASSERT_EQ(par.solutions.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(par.solutions[i].at("R"), expected[i].at("R")) << i;
  }
}

TEST(OrParallelAll, EmptyBranchesAreNotFailures) {
  Database db;
  db.consult(R"(
    p(X) :- none(X).
    p(X) :- some(X).
    some(1).
    none(_) :- fail.
  )");
  const auto q = parse_query(db.symbols, "p(X)");
  const auto par = solve_or_parallel_all(db, q);
  ASSERT_TRUE(par.complete);
  ASSERT_EQ(par.solutions.size(), 1u);
  EXPECT_EQ(par.solutions[0].at("X"), "1");
}

TEST(OrParallelAll, PerBranchLimitCaps) {
  Database db;
  std::string text = "q(X) :- n(X).\nq(X) :- n(X).\n";
  for (int i = 0; i < 20; ++i) text += "n(" + std::to_string(i) + ").\n";
  db.consult(text);
  const auto q = parse_query(db.symbols, "q(X)");
  const auto par = solve_or_parallel_all(db, q, /*per_branch_limit=*/5);
  ASSERT_TRUE(par.complete);
  EXPECT_EQ(par.solutions.size(), 10u);  // 5 per branch, 2 branches
}

TEST(OrParallelAll, SixQueensAllSolutionsAcrossBranches) {
  Database db;
  db.consult(R"(
    q6(Qs) :- solve6([1,2,3,4,5,6], Qs).
    solve6(Ns, Qs) :- perm(Ns, Qs), safe(Qs).
    perm([], []).
    perm(L, [H|T]) :- select(H, L, R), perm(R, T).
    select(X, [X|T], T).
    select(X, [H|T], [H|R]) :- select(X, T, R).
    safe([]).
    safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).
    noattack(_, [], _).
    noattack(Q, [Q1|Qs], D) :-
      Q =\= Q1, Q1 - Q =\= D, Q - Q1 =\= D,
      D1 is D + 1, noattack(Q, Qs, D1).
  )");
  const auto q = parse_query(db.symbols, "q6(Qs)");
  const auto par = solve_or_parallel_all(db, q);
  ASSERT_TRUE(par.complete);
  EXPECT_EQ(par.solutions.size(), 4u);  // 6-queens has exactly 4 solutions
}

}  // namespace
}  // namespace altx::prolog
