// Tests for the later extensions: hedged execution, background-load
// interference on the simulator, and the newer Prolog builtins
// (type tests, between/3).
#include <gtest/gtest.h>
#include <unistd.h>

#include "core/executor.hpp"
#include "posix/hedged.hpp"
#include "prolog/solver.hpp"

namespace altx {
namespace {

using namespace std::chrono_literals;

// ---------------------------------------------------------------------------
// posix::hedged
// ---------------------------------------------------------------------------

TEST(Hedged, FastPrimaryWinsWithoutHedgeHelp) {
  posix::HedgeOptions o;
  o.max_copies = 2;
  o.stagger = 100ms;
  auto r = posix::hedged<int>(
      [](int) { ::usleep(5'000); return std::optional<int>(7); }, o);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7);
  EXPECT_FALSE(r->hedge_won);
}

TEST(Hedged, HedgeRescuesASlowPrimary) {
  // The primary replica suffers a latency spike; the hedge — targeting a
  // different replica via its copy index — answers quickly.
  posix::HedgeOptions o;
  o.max_copies = 2;
  o.stagger = 20ms;
  auto r = posix::hedged<int>(
      [](int copy) -> std::optional<int> {
        ::usleep(copy == 0 ? 200'000 : 10'000);
        return copy;
      },
      o);
  ASSERT_TRUE(r.has_value());
  EXPECT_TRUE(r->hedge_won);
  EXPECT_EQ(r->value, 1);
}

TEST(Hedged, SingleCopyIsAPlainCall) {
  posix::HedgeOptions o;
  o.max_copies = 1;
  auto r = posix::hedged<int>([](int) { return std::optional<int>(3); }, o);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 3);
  EXPECT_EQ(r->copies_launched, 1);
}

TEST(Hedged, AllCopiesFailingFails) {
  posix::HedgeOptions o;
  o.max_copies = 3;
  o.stagger = 1ms;
  auto r = posix::hedged<int>([](int) -> std::optional<int> { return std::nullopt; }, o);
  EXPECT_FALSE(r.has_value());
}

// ---------------------------------------------------------------------------
// Background load on the simulator
// ---------------------------------------------------------------------------

TEST(LoadedExecution, InterferenceStretchesTheBlock) {
  core::BlockSpec b;
  b.alts = {core::AltSpec{.compute = 100 * kMsec},
            core::AltSpec{.compute = 200 * kMsec}};
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(2);
  cfg.address_space_pages = 8;
  const auto idle = core::run_concurrent_loaded(b, cfg, 0, 0);
  const auto busy = core::run_concurrent_loaded(b, cfg, 4, 2 * kSec);
  ASSERT_FALSE(idle.failed);
  ASSERT_FALSE(busy.failed);
  EXPECT_EQ(idle.winner, busy.winner);  // outcome invariant under load
  EXPECT_GT(busy.elapsed, idle.elapsed * 2);  // but far slower
}

TEST(LoadedExecution, ElapsedIsTheBlocksOwnNotTheLoads) {
  core::BlockSpec b;
  b.alts = {core::AltSpec{.compute = 50 * kMsec}};
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(8);  // room for everyone
  cfg.address_space_pages = 8;
  const auto r = core::run_concurrent_loaded(b, cfg, 2, 30 * kSec);
  ASSERT_FALSE(r.failed);
  // Plenty of CPUs: the block ends in ~tens of ms even though the background
  // load runs for 30 simulated seconds.
  EXPECT_LT(r.elapsed, kSec);
}

// ---------------------------------------------------------------------------
// Prolog builtins: type tests and between/3
// ---------------------------------------------------------------------------

namespace pl = prolog;

TEST(PrologTypeTests, VarNonvarAtomInteger) {
  pl::Database db;
  db.consult("a(1).");
  pl::Solver s(db);
  EXPECT_TRUE(s.solve_first(pl::parse_query(db.symbols, "var(X)")).has_value());
  EXPECT_FALSE(s.solve_first(pl::parse_query(db.symbols, "X = 1, var(X)")).has_value());
  EXPECT_TRUE(s.solve_first(pl::parse_query(db.symbols, "X = 1, nonvar(X)")).has_value());
  EXPECT_TRUE(s.solve_first(pl::parse_query(db.symbols, "atom(foo)")).has_value());
  EXPECT_FALSE(s.solve_first(pl::parse_query(db.symbols, "atom(1)")).has_value());
  EXPECT_TRUE(s.solve_first(pl::parse_query(db.symbols, "integer(3)")).has_value());
  EXPECT_FALSE(s.solve_first(pl::parse_query(db.symbols, "integer(foo)")).has_value());
}

TEST(PrologBetween, EnumeratesTheRange) {
  pl::Database db;
  db.consult("a(1).");
  pl::Solver s(db);
  const auto sols = s.solve_all(pl::parse_query(db.symbols, "between(2, 5, X)"));
  ASSERT_EQ(sols.size(), 4u);
  EXPECT_EQ(sols.front().at("X"), "2");
  EXPECT_EQ(sols.back().at("X"), "5");
}

TEST(PrologBetween, TestsAMemberValue) {
  pl::Database db;
  db.consult("a(1).");
  pl::Solver s(db);
  EXPECT_TRUE(s.solve_first(pl::parse_query(db.symbols, "between(1, 10, 7)")).has_value());
  EXPECT_FALSE(s.solve_first(pl::parse_query(db.symbols, "between(1, 10, 0)")).has_value());
  // Empty range.
  EXPECT_FALSE(s.solve_first(pl::parse_query(db.symbols, "between(5, 4, X)")).has_value());
}

TEST(PrologBetween, ComposesWithArithmetic) {
  pl::Database db;
  db.consult(R"(
    square_sum(N, S) :- findall(Q, sq(N, Q), L), suml(L, S).
    sq(N, Q) :- between(1, N, X), Q is X * X.
    suml([], 0).
    suml([H|T], S) :- suml(T, R), S is H + R.
  )");
  pl::Solver s(db);
  const auto sol = s.solve_first(pl::parse_query(db.symbols, "square_sum(5, S)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("S"), "55");  // 1+4+9+16+25
}

TEST(PrologBetween, QueensViaBetween) {
  // n-queens written with between/3 instead of a range helper.
  pl::Database db;
  db.consult(R"(
    q4(Qs) :- Qs = [A,B,C,D],
      between(1,4,A), between(1,4,B), between(1,4,C), between(1,4,D),
      safe([A,B,C,D]).
    safe([]).
    safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).
    noattack(_, [], _).
    noattack(Q, [Q1|Qs], D) :-
      Q =\= Q1, Q1 - Q =\= D, Q - Q1 =\= D,
      D1 is D + 1, noattack(Q, Qs, D1).
  )");
  pl::Solver s(db);
  const auto sols = s.solve_all(pl::parse_query(db.symbols, "q4(Qs)"));
  EXPECT_EQ(sols.size(), 2u);  // 4-queens has exactly 2 solutions
}

}  // namespace
}  // namespace altx
