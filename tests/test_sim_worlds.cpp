// Seed-swept property tests for multiple-worlds IPC (section 3.4.2) under
// varied timings: speculative producers racing in an alt block send values
// to a consumer service; every split chain must collapse to exactly one
// surviving consumer world whose observed value matches the committed
// producer.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

constexpr Port kService = 9;

class Worlds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(Worlds, SplitChainsCollapseToTheWinnersWorld) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 6; ++trial) {
    Kernel::Config cfg;
    cfg.machine = MachineModel::shared_memory_mp(static_cast<int>(2 + rng.below(4)));
    cfg.address_space_pages = 8;
    cfg.elimination =
        rng.chance(0.5) ? Elimination::kSynchronous : Elimination::kAsynchronous;
    Kernel k(cfg);

    // N speculative producers; each sends its tag early, then computes for a
    // random time; the fastest *finisher* wins the block — which may differ
    // from the first sender, so the consumer frequently splits on a message
    // from an eventual loser.
    const std::size_t n = 2 + rng.below(3);
    std::vector<ProgramRef> producers;
    for (std::size_t i = 0; i < n; ++i) {
      producers.push_back(
          ProgramBuilder("producer")
              .compute(static_cast<SimTime>(rng.range(1, 20)) * kMsec)
              .send_u64(kService, 100 + i)
              .compute(static_cast<SimTime>(rng.range(1, 300)) * kMsec)
              .write(0, 0, i + 1)
              .build());
    }
    auto consumer = ProgramBuilder("consumer")
                        .bind(kService)
                        .recv(0, 0)
                        .compute(5 * kMsec)
                        .build();
    const Pid consumer_pid = k.spawn_root(consumer);
    const Pid block_pid = k.spawn_root(ProgramBuilder().alt(producers).build());
    k.run();

    SCOPED_TRACE("seed " + std::to_string(GetParam()) + " trial " +
                 std::to_string(trial));
    ASSERT_EQ(k.exit_kind(block_pid), ExitKind::kCompleted);
    const std::uint64_t winner_tag = k.process(block_pid)->as_.peek(0, 0);
    ASSERT_GE(winner_tag, 1u);

    // Exactly one consumer world completes, and it observed the winning
    // producer's value.
    std::size_t completed = 0;
    std::uint64_t observed = 0;
    for (Pid p : k.all_pids()) {
      const SimProcess* pr = k.process(p);
      if (pr->frames_.front().prog->label != "consumer") continue;
      if (k.exit_kind(p) == ExitKind::kCompleted) {
        ++completed;
        observed = pr->as_.peek(0, 0);
      }
    }
    ASSERT_EQ(completed, 1u);
    EXPECT_EQ(observed, 100 + (winner_tag - 1));
    EXPECT_TRUE(k.blocked_pids().empty());
    (void)consumer_pid;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Worlds,
                         ::testing::Values(11, 23, 37, 41, 59, 67, 73, 89));

TEST(Worlds, ChainedSplitsAcrossTwoSpeculativeSenders) {
  // Two alternative blocks run concurrently; the consumer receives one
  // speculative message from each, splitting twice into four worlds; only
  // the world consistent with BOTH winners may survive.
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(6);
  cfg.address_space_pages = 8;
  Kernel k(cfg);

  auto producer = [](std::uint64_t tag, SimTime tail) {
    return ProgramBuilder("p")
        .compute(2 * kMsec)
        .send_u64(kService, tag)
        .compute(tail)
        .build();
  };
  // Block A: tag 1 wins (shorter tail). Block B: tag 4 wins.
  const Pid a = k.spawn_root(ProgramBuilder()
                                 .alt({producer(1, 50 * kMsec), producer(2, 400 * kMsec)})
                                 .build());
  const Pid b = k.spawn_root(ProgramBuilder()
                                 .alt({producer(3, 500 * kMsec), producer(4, 60 * kMsec)})
                                 .build());
  auto consumer = ProgramBuilder("consumer")
                      .bind(kService)
                      .recv(1, 0)
                      .recv(2, 0)
                      .build();
  k.spawn_root(consumer);
  k.run();

  ASSERT_EQ(k.exit_kind(a), ExitKind::kCompleted);
  ASSERT_EQ(k.exit_kind(b), ExitKind::kCompleted);
  std::size_t completed = 0;
  std::uint64_t v1 = 0;
  std::uint64_t v2 = 0;
  for (Pid p : k.all_pids()) {
    const SimProcess* pr = k.process(p);
    if (pr->frames_.front().prog->label != "consumer") continue;
    if (k.exit_kind(p) == ExitKind::kCompleted) {
      ++completed;
      v1 = pr->as_.peek(1, 0);
      v2 = pr->as_.peek(2, 0);
    }
  }
  ASSERT_EQ(completed, 1u);
  // The surviving world saw exactly the two winners' messages, in order.
  EXPECT_TRUE((v1 == 1 && v2 == 4) || (v1 == 4 && v2 == 1))
      << "v1=" << v1 << " v2=" << v2;
  EXPECT_GE(k.stats().world_splits, 2u);
}

TEST(Worlds, SplitConsumerKeepsServingAfterResolution) {
  // After the race resolves, the surviving consumer world must continue
  // receiving ordinary (non-speculative) messages on the same port.
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(4);
  cfg.address_space_pages = 8;
  Kernel k(cfg);
  auto talker = ProgramBuilder("t")
                    .compute(2 * kMsec)
                    .send_u64(kService, 7)
                    .compute(20 * kMsec)
                    .build();
  auto rival = ProgramBuilder("r").compute(200 * kMsec).build();
  k.spawn_root(ProgramBuilder().alt({talker, rival}).build());
  auto late_client =
      ProgramBuilder("late").compute(kSec).send_u64(kService, 8).build();
  k.spawn_root(late_client);
  auto consumer =
      ProgramBuilder("consumer").bind(kService).recv(0, 0).recv(0, 1).build();
  k.spawn_root(consumer);
  k.run();

  std::size_t completed = 0;
  std::uint64_t first = 0;
  std::uint64_t second = 0;
  for (Pid p : k.all_pids()) {
    const SimProcess* pr = k.process(p);
    if (pr->frames_.front().prog->label != "consumer") continue;
    if (k.exit_kind(p) == ExitKind::kCompleted) {
      ++completed;
      first = pr->as_.peek(0, 0);
      second = pr->as_.peek(0, 1);
    }
  }
  ASSERT_EQ(completed, 1u);
  EXPECT_EQ(first, 7u);
  EXPECT_EQ(second, 8u);
}

}  // namespace
}  // namespace altx::sim
