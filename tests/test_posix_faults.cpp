// The seeded fault matrix for the real-process backend: every injectable
// fault (segfault, SIGKILL, hang, delayed commit, dropped commit, early
// exit, fork-EAGAIN) crossed with every construct (race, race with replicas,
// await_all), asserting in every cell that
//
//   - at most one child ever commits,
//   - the parent ends with zero leaked child processes (waitpid(-1) sweep),
//   - fates and verdicts are classified as documented,
//
// plus the supervised_race acceptance run: 500 trials under a >=30% fault
// plan must each yield the correct winner (or a flagged degraded fallback),
// with a byte-identical outcome sequence when replayed from the same seed.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <vector>

#include "posix/alt_group.hpp"
#include "posix/await_all.hpp"
#include "posix/fault.hpp"
#include "posix/race.hpp"
#include "posix/supervisor.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;

/// Reaps every zombie this process has accumulated; returns how many there
/// were. Zero after any fault-matrix cell is the no-leak invariant.
int sweep_zombies() {
  int n = 0;
  while (true) {
    const pid_t r = ::waitpid(-1, nullptr, WNOHANG);
    if (r <= 0) break;
    ++n;
  }
  return n;
}

FaultProfile single_fault(FaultKind kind, double rate) {
  FaultProfile p;
  switch (kind) {
    case FaultKind::kCrashSegv: p.crash_segv = rate; break;
    case FaultKind::kCrashKill: p.crash_kill = rate; break;
    case FaultKind::kHang: p.hang = rate; break;
    case FaultKind::kDelay: p.delay = rate; break;
    case FaultKind::kEarlyExit: p.early_exit = rate; break;
    case FaultKind::kDropCommit: p.drop_commit = rate; break;
    case FaultKind::kCpuSpin: p.cpu_spin = rate; break;
    case FaultKind::kMemHog: p.mem_hog = rate; break;
    case FaultKind::kNone: break;
  }
  p.delay_for = 10ms;
  return p;
}

/// Three alternatives; only #2 can win (value 7). Deterministic modulo the
/// injected faults, which is what makes the matrix assertions exact.
std::vector<AlternativeFn<int>> one_viable_alts() {
  return {
      [] { return std::optional<int>(); },
      [] { return std::optional<int>(7); },
      [] { return std::optional<int>(); },
  };
}

// ---------------------------------------------------------------------------
// The injector itself: pure, seeded, replayable
// ---------------------------------------------------------------------------

TEST(FaultInjector, DecisionsAreAPureFunctionOfSeedAttemptChild) {
  FaultProfile p;
  p.crash_segv = 0.2;
  p.hang = 0.2;
  p.drop_commit = 0.2;
  const FaultInjector a(1234, p);
  const FaultInjector b(1234, p);
  for (std::uint64_t attempt = 0; attempt < 20; ++attempt) {
    for (int child = 1; child <= 8; ++child) {
      EXPECT_EQ(a.decide(attempt, child), b.decide(attempt, child));
      EXPECT_EQ(a.fork_fails(attempt, child), b.fork_fails(attempt, child));
    }
  }
}

TEST(FaultInjector, DifferentSeedsDisagreeSomewhere) {
  FaultProfile p;
  p.crash_segv = 0.5;
  const FaultInjector a(1, p);
  const FaultInjector b(2, p);
  int differences = 0;
  for (std::uint64_t attempt = 0; attempt < 50; ++attempt) {
    for (int child = 1; child <= 4; ++child) {
      if (a.decide(attempt, child) != b.decide(attempt, child)) ++differences;
    }
  }
  EXPECT_GT(differences, 0);
}

TEST(FaultInjector, RatesRoughlyMatchProbabilities) {
  FaultProfile p;
  p.crash_segv = 0.3;
  const FaultInjector inj(99, p);
  int hits = 0;
  const int trials = 4000;
  for (int i = 0; i < trials; ++i) {
    if (inj.decide(static_cast<std::uint64_t>(i), 1) ==
        FaultKind::kCrashSegv) {
      ++hits;
    }
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.05);
}

TEST(FaultInjector, ParsePlanSpec) {
  const FaultProfile p = FaultProfile::parse(
      "crash_segv=0.1,hang=0.05,fork_fail=0.02,delay_ms=15");
  EXPECT_DOUBLE_EQ(p.crash_segv, 0.1);
  EXPECT_DOUBLE_EQ(p.hang, 0.05);
  EXPECT_DOUBLE_EQ(p.fork_fail, 0.02);
  EXPECT_EQ(p.delay_for, 15ms);
  EXPECT_THROW(FaultProfile::parse("nonsense=1"), UsageError);
  EXPECT_THROW(FaultProfile::parse("crash_segv"), UsageError);
  EXPECT_THROW(FaultProfile::parse("crash_segv=banana"), UsageError);
  EXPECT_THROW(FaultProfile::parse("crash_segv="), UsageError);
  EXPECT_THROW(FaultProfile::parse("crash_segv=0.1junk"), UsageError);
}

TEST(FaultInjector, ProfileValidationRejectsBadProbabilities) {
  FaultProfile p;
  p.crash_segv = 0.7;
  p.hang = 0.7;  // sums past 1
  EXPECT_THROW(FaultInjector(1, p), UsageError);
  FaultProfile q;
  q.fork_fail = -0.1;
  EXPECT_THROW(FaultInjector(1, q), UsageError);
}

// ---------------------------------------------------------------------------
// The matrix: fault kind x construct
// ---------------------------------------------------------------------------

struct Cell {
  std::optional<RaceResult<int>> result;
  RaceReport report;
};

Cell run_race_cell(FaultKind kind, double rate, int replicas,
                   std::uint64_t seed) {
  FaultInjector inj(seed, single_fault(kind, rate));
  RaceOptions opts;
  opts.timeout = 150ms;
  opts.replicas = replicas;
  opts.fault = &inj;
  Cell cell;
  opts.report = &cell.report;
  cell.result = race<int>(one_viable_alts(), opts);
  return cell;
}

TEST(FaultMatrix, RaceSurvivesDelay) {
  for (int replicas : {1, 2}) {
    const Cell c = run_race_cell(FaultKind::kDelay, 1.0, replicas, 11);
    ASSERT_TRUE(c.result.has_value()) << "replicas=" << replicas;
    EXPECT_EQ(c.result->value, 7);
    EXPECT_EQ(c.result->winner, 2);
    EXPECT_EQ(c.report.committed, 1);  // at most once, exactly once here
    EXPECT_EQ(sweep_zombies(), 0);
  }
}

TEST(FaultMatrix, RaceFailsClosedUnderCrashes) {
  for (FaultKind kind : {FaultKind::kCrashSegv, FaultKind::kCrashKill,
                         FaultKind::kEarlyExit}) {
    for (int replicas : {1, 2}) {
      const Cell c = run_race_cell(kind, 1.0, replicas, 13);
      EXPECT_FALSE(c.result.has_value())
          << to_string(kind) << " replicas=" << replicas;
      EXPECT_EQ(c.report.verdict, WaitVerdict::kAllFailed);
      EXPECT_EQ(c.report.committed, 0);
      EXPECT_EQ(c.report.crashed, 3 * replicas);
      EXPECT_EQ(sweep_zombies(), 0);
    }
  }
}

TEST(FaultMatrix, RaceTimesOutUnderHangsAndReportsLiveChildren) {
  const Cell c = run_race_cell(FaultKind::kHang, 1.0, 1, 17);
  EXPECT_FALSE(c.result.has_value());
  // The point of the verdict split: this is NOT "all guards failed" — the
  // children were alive and the deadline fired.
  EXPECT_EQ(c.report.verdict, WaitVerdict::kTimeout);
  EXPECT_EQ(c.report.hung, 3);
  EXPECT_EQ(c.report.committed, 0);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(FaultMatrix, DroppedCommitConsumesTheTokenButNeverCommits) {
  const Cell c = run_race_cell(FaultKind::kDropCommit, 1.0, 1, 19);
  // Child 2 took the token and died before delivering: the block must fail
  // (at-most-once forbids anyone else winning) and the loss must read as a
  // crash, not a guard failure.
  EXPECT_FALSE(c.result.has_value());
  EXPECT_EQ(c.report.verdict, WaitVerdict::kAllFailed);
  EXPECT_EQ(c.report.committed, 0);
  EXPECT_EQ(c.report.crashed, 1);
  EXPECT_EQ(c.report.aborted, 2);  // the failed guards also hit the abort hook
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(FaultMatrix, ReplicasRideOutAPartialCrashPlan) {
  // With 3 alternatives x 2 replicas, children 2 and 5 both run alternative
  // 2 (the only viable one). Search for a seed whose plan crashes replica 2
  // but spares replica 5: the alternative must still win through the
  // surviving replica — the paper's section 6 reliability argument.
  FaultProfile p = single_fault(FaultKind::kCrashSegv, 0.5);
  std::uint64_t seed = 0;
  for (std::uint64_t s = 0;; ++s) {
    const FaultInjector probe(s, p);
    if (probe.decide(0, 2) == FaultKind::kCrashSegv &&
        probe.decide(0, 5) == FaultKind::kNone) {
      seed = s;
      break;
    }
  }
  FaultInjector inj(seed, p);
  RaceOptions opts;
  opts.timeout = 2s;
  opts.replicas = 2;
  opts.fault = &inj;
  RaceReport report;
  opts.report = &report;
  const auto r = race<int>(one_viable_alts(), opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7);
  EXPECT_EQ(r->winner, 2);
  EXPECT_EQ(report.committed, 1);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(FaultMatrix, ForkFailureAbortsSpawnCleanly) {
  FaultProfile p;
  p.fork_fail = 1.0;
  FaultInjector inj(23, p);
  RaceOptions opts;
  opts.fault = &inj;
  EXPECT_THROW(race<int>(one_viable_alts(), opts), SystemError);
  EXPECT_EQ(sweep_zombies(), 0);
}

std::vector<AlternativeFn<int>> await_tasks() {
  return {
      [] { return std::optional<int>(1); },
      [] { return std::optional<int>(2); },
      [] { return std::optional<int>(3); },
  };
}

TEST(FaultMatrix, AwaitAllCells) {
  for (FaultKind kind : {FaultKind::kCrashSegv, FaultKind::kCrashKill,
                         FaultKind::kEarlyExit, FaultKind::kDropCommit}) {
    FaultInjector inj(29, single_fault(kind, 1.0));
    AwaitOptions opts;
    opts.timeout = 150ms;
    opts.fault = &inj;
    const auto r = await_all<int>(await_tasks(), opts);
    EXPECT_FALSE(r.has_value()) << to_string(kind);
    EXPECT_EQ(sweep_zombies(), 0) << to_string(kind);
  }
  {
    FaultInjector inj(29, single_fault(FaultKind::kDelay, 1.0));
    AwaitOptions opts;
    opts.timeout = 2s;
    opts.fault = &inj;
    const auto r = await_all<int>(await_tasks(), opts);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(*r, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(sweep_zombies(), 0);
  }
  {
    FaultInjector inj(29, single_fault(FaultKind::kHang, 1.0));
    AwaitOptions opts;
    opts.timeout = 150ms;
    opts.fault = &inj;
    const auto r = await_all<int>(await_tasks(), opts);
    EXPECT_FALSE(r.has_value());
    EXPECT_EQ(sweep_zombies(), 0);
  }
  {
    FaultProfile p;
    p.fork_fail = 1.0;
    FaultInjector inj(29, p);
    AwaitOptions opts;
    opts.fault = &inj;
    EXPECT_THROW(await_all<int>(await_tasks(), opts), SystemError);
    EXPECT_EQ(sweep_zombies(), 0);
  }
}

// ---------------------------------------------------------------------------
// The two reaping bugfixes, pinned
// ---------------------------------------------------------------------------

TEST(AltGroupCohort, MidLoopForkFailureKillsAndReapsThePartialCohort) {
  // Find a seed whose plan forks children 1 and 2 for real and fails the
  // fork of child 3 — the half-spawned state the bugfix is about.
  FaultProfile p;
  p.fork_fail = 0.5;
  std::uint64_t seed = 0;
  for (std::uint64_t s = 0;; ++s) {
    const FaultInjector probe(s, p);
    if (!probe.fork_fails(0, 1) && !probe.fork_fails(0, 2) &&
        probe.fork_fails(0, 3)) {
      seed = s;
      break;
    }
  }
  FaultInjector inj(seed, p);
  AltGroupOptions o;
  o.fault = &inj;
  AltGroup g(o);
  int who = -1;
  try {
    who = g.alt_spawn(3);
  } catch (const SystemError& e) {
    EXPECT_EQ(e.code(), EAGAIN);
    // Children 1 and 2 existed; both must be dead and reaped already.
    EXPECT_EQ(sweep_zombies(), 0);
    return;
  }
  if (who > 0) {
    // A child that was forked before the failure: linger until killed.
    ::sleep(5);
    _exit(0);
  }
  FAIL() << "alt_spawn should have thrown on the injected fork failure";
}

TEST(AltGroupCohort, InjectedSignalDeathsLeaveNoZombieOnAnyPath) {
  // Children die of their own signals at unpredictable moments relative to
  // the parent's poll/kill; every path must still reap everything.
  for (std::uint64_t seed : {1ULL, 2ULL, 3ULL, 4ULL}) {
    FaultInjector inj(seed, single_fault(FaultKind::kCrashKill, 0.7));
    RaceOptions opts;
    opts.timeout = 500ms;
    opts.fault = &inj;
    (void)race<int>(one_viable_alts(), opts);
    EXPECT_EQ(sweep_zombies(), 0) << "seed " << seed;
  }
  // Same under asynchronous elimination, where finish() does the reaping.
  FaultInjector inj(7, single_fault(FaultKind::kCrashSegv, 0.5));
  AltGroupOptions o;
  o.elimination = Eliminate::kAsynchronous;
  o.fault = &inj;
  AltGroup g(o);
  const int who = g.alt_spawn(4);
  if (who > 0) {
    if (who == 2) g.child_commit(Bytes{2});
    ::usleep(200'000);
    g.child_abort();
  }
  (void)g.alt_wait(2s);
  g.finish();
  EXPECT_EQ(sweep_zombies(), 0);
}

// ---------------------------------------------------------------------------
// Fate classification
// ---------------------------------------------------------------------------

TEST(AltGroupFates, EachFateIsClassified) {
  AltGroup g;
  const int who = g.alt_spawn(4);
  if (who == 1) g.child_abort();
  if (who == 2) {
    ::usleep(60'000);  // let 1, 3, 4 reach their fates first
    g.child_commit(Bytes{2});
  }
  if (who == 3) {
    ::sleep(5);  // healthy loser: eliminated after the winner
    g.child_abort();
  }
  if (who == 4) {
    ::raise(SIGKILL);  // a genuine crash, not parent-inflicted
  }
  const auto win = g.alt_wait(5s);
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(win->index, 2);
  EXPECT_EQ(g.verdict(), WaitVerdict::kWinner);
  const auto& st = g.child_statuses();
  ASSERT_EQ(st.size(), 4u);
  EXPECT_EQ(st[0].fate, ChildFate::kAborted);
  EXPECT_EQ(st[1].fate, ChildFate::kCommitted);
  EXPECT_EQ(st[2].fate, ChildFate::kEliminated);
  EXPECT_EQ(st[3].fate, ChildFate::kCrashed);
  EXPECT_EQ(st[3].signal, SIGKILL);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(AltGroupFates, DeadlineKillReadsAsHungNotEliminated) {
  AltGroup g;
  if (g.alt_spawn(2) > 0) {
    ::sleep(30);
    _exit(0);
  }
  const auto win = g.alt_wait(100ms);
  EXPECT_FALSE(win.has_value());
  EXPECT_EQ(g.verdict(), WaitVerdict::kTimeout);
  EXPECT_EQ(g.count_fate(ChildFate::kHung), 2);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(AltGroupFates, AllGuardsFailedIsDistinguishedFromTimeout) {
  RaceReport report;
  RaceOptions opts;
  opts.report = &report;
  const auto r = race<int>(
      {
          [] { return std::optional<int>(); },
          [] { return std::optional<int>(); },
      },
      opts);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(report.verdict, WaitVerdict::kAllFailed);
  EXPECT_EQ(report.aborted, 2);
  EXPECT_EQ(report.hung, 0);
  EXPECT_EQ(sweep_zombies(), 0);
}

// ---------------------------------------------------------------------------
// The acceptance run: 500 supervised trials under a >=30% fault plan
// ---------------------------------------------------------------------------

/// One trial's observable outcome, flattened to bytes for the determinism
/// comparison. Child-fate censuses are excluded on purpose: whether a loser
/// aborted before or after the parent's kill is a benign scheduler race;
/// what must replay exactly is every *decision* (win/degrade/retry counts
/// and each attempt's classification).
void run_supervised_trials(std::uint64_t fault_seed, int trials,
                           std::vector<std::uint8_t>& outcome_bytes) {
  FaultProfile plan;
  plan.crash_segv = 0.12;
  plan.crash_kill = 0.08;
  plan.hang = 0.02;
  plan.delay = 0.04;
  plan.early_exit = 0.05;
  plan.drop_commit = 0.05;   // child-side total: 0.36 >= 30%
  plan.fork_fail = 0.05;     // plus parent-side fork failures
  plan.delay_for = 10ms;
  FaultInjector inj(fault_seed, plan);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 1ms;
  policy.max_backoff = 8ms;
  policy.base_timeout = 150ms;
  policy.seed = 42;

  RaceOptions opts;
  opts.fault = &inj;

  for (int t = 0; t < trials; ++t) {
    SupervisionLog log;
    const auto r =
        supervised_race<int>(one_viable_alts(), policy, opts, &log);
    // Alternative 2 always returns 7; faults may delay or degrade the
    // answer but must never change or lose it.
    ASSERT_TRUE(r.has_value()) << "trial " << t;
    EXPECT_EQ(r->value, 7) << "trial " << t;
    EXPECT_EQ(r->winner, 2) << "trial " << t;
    ASSERT_EQ(sweep_zombies(), 0) << "trial " << t;

    outcome_bytes.push_back(r->degraded ? 1 : 0);
    outcome_bytes.push_back(static_cast<std::uint8_t>(r->attempts));
    outcome_bytes.push_back(static_cast<std::uint8_t>(log.attempts.size()));
    for (const auto& a : log.attempts) {
      outcome_bytes.push_back(static_cast<std::uint8_t>(a.outcome));
    }
    outcome_bytes.push_back(log.fell_back_sequential ? 1 : 0);
  }
}

TEST(SupervisedFaultPlan, FiveHundredTrialsAllRecoverDeterministically) {
  std::vector<std::uint8_t> first;
  run_supervised_trials(/*fault_seed=*/2026, /*trials=*/500, first);

  // Some trials must actually have been disrupted (the plan is >=30%), and
  // some must have survived on the first attempt — otherwise the matrix is
  // not exercising both sides.
  int retried = 0;
  int degraded = 0;
  for (std::size_t i = 0; i + 2 < first.size();) {
    const std::uint8_t deg = first[i];
    const std::uint8_t n_attempts = first[i + 2];
    retried += n_attempts > 1 ? 1 : 0;
    degraded += deg;
    i += 3 + n_attempts + 1;
  }
  EXPECT_GT(retried, 50);
  EXPECT_LT(retried, 500);

  // Byte-identical replay from the same seed.
  std::vector<std::uint8_t> second;
  run_supervised_trials(/*fault_seed=*/2026, /*trials=*/500, second);
  EXPECT_EQ(first, second);
  (void)degraded;  // may legitimately be zero with 3 attempts over 0.36
}

// ---------------------------------------------------------------------------
// ALTX_FAULT_SEED reproducibility
// ---------------------------------------------------------------------------

/// Serialises the deterministic replay signature of a supervised run: per
/// attempt, the supervisor's outcome, the commit count, and the injector's
/// decided fate for every child of that attempt. (The loser-side census —
/// aborted vs eliminated vs too-late — is intentionally excluded: which
/// classification a loser gets races against the winner's elimination kill.)
std::vector<std::uint8_t> supervised_fate_bytes(std::uint64_t fault_seed) {
  FaultProfile plan;
  plan.crash_segv = 0.15;
  plan.crash_kill = 0.05;
  plan.early_exit = 0.05;
  plan.drop_commit = 0.08;
  plan.delay = 0.05;
  plan.delay_for = 5ms;
  FaultInjector inj(fault_seed, plan);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 1ms;
  policy.max_backoff = 4ms;
  policy.base_timeout = 150ms;
  policy.seed = 7;

  RaceOptions opts;
  opts.fault = &inj;

  std::vector<std::uint8_t> bytes;
  std::uint64_t attempt_id = 0;  // mirrors the injector's begin_attempt()
  for (int t = 0; t < 60; ++t) {
    SupervisionLog log;
    const auto r = supervised_race<int>(one_viable_alts(), policy, opts, &log);
    EXPECT_TRUE(r.has_value()) << "trial " << t;
    for (const auto& a : log.attempts) {
      bytes.push_back(static_cast<std::uint8_t>(a.outcome));
      bytes.push_back(static_cast<std::uint8_t>(a.race.committed));
      for (int child = 1; child <= 3; ++child) {
        bytes.push_back(static_cast<std::uint8_t>(inj.decide(attempt_id, child)));
      }
      ++attempt_id;
      bytes.push_back(0xff);  // attempt separator
    }
  }
  return bytes;
}

TEST(FaultSeedReproducibility, SameSeedAndPlanReplayFateSequencesByteIdentically) {
  const auto first = supervised_fate_bytes(2027);
  const auto second = supervised_fate_bytes(2027);
  EXPECT_EQ(first, second);
  // And the seed actually steers the plan: a different seed diverges.
  EXPECT_NE(first, supervised_fate_bytes(2028));
}

TEST(FaultSeedReproducibility, FromEnvBuildsIdenticalInjectors) {
  ::setenv("ALTX_FAULT_PLAN",
           "crash_segv=0.15,drop_commit=0.1,delay=0.1,delay_ms=2", 1);
  ::setenv("ALTX_FAULT_SEED", "777", 1);
  const auto a = FaultInjector::from_env();
  const auto b = FaultInjector::from_env();
  ::unsetenv("ALTX_FAULT_PLAN");
  ::unsetenv("ALTX_FAULT_SEED");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->seed(), 777u);
  for (std::uint64_t attempt = 0; attempt < 32; ++attempt) {
    for (int child = 1; child <= 6; ++child) {
      EXPECT_EQ(a->decide(attempt, child), b->decide(attempt, child));
      EXPECT_EQ(a->fork_fails(attempt, child), b->fork_fails(attempt, child));
    }
  }
}

}  // namespace
}  // namespace altx::posix
