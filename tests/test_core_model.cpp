// Tests for the analytic model (section 4.2): PI values, overhead
// decomposition, selection schemes, and agreement between the model and the
// simulator. Includes a parameterized reproduction of the paper's PI table.
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/model.hpp"
#include "core/schemes.hpp"
#include "core/workload.hpp"

namespace altx::core {
namespace {

TEST(Model, MeanBestDispersion) {
  const std::vector<SimTime> taus{10, 20, 30};
  EXPECT_DOUBLE_EQ(mean_time(taus), 20.0);
  EXPECT_EQ(best_time(taus), 10);
  EXPECT_DOUBLE_EQ(dispersion(taus), 200.0 / 3.0);
}

// The paper's illustration: N=3, overhead 5, six tau triples and their PI.
struct PiCase {
  SimTime t1, t2, t3;
  double pi;
};

class PiTable : public ::testing::TestWithParam<PiCase> {};

TEST_P(PiTable, MatchesPaperRow) {
  const PiCase& c = GetParam();
  const std::vector<SimTime> taus{c.t1, c.t2, c.t3};
  EXPECT_NEAR(performance_improvement(taus, 5.0), c.pi, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    PaperSection42, PiTable,
    ::testing::Values(PiCase{10, 20, 30, 1.33},
                      PiCase{1, 19, 106, 7.0},
                      PiCase{20, 20, 20, 0.8},
                      PiCase{1, 2, 3, 0.33},
                      PiCase{115, 120, 125, 1.0},
                      PiCase{100, 200, 300, 1.9}));

TEST(Model, HigherDispersionMeansHigherPi) {
  // Same mean, growing spread: PI must increase (section 4.2's conclusion
  // that variance encapsulates the opportunity).
  const std::vector<SimTime> tight{95, 100, 105};
  const std::vector<SimTime> wide{10, 100, 190};
  EXPECT_GT(performance_improvement(wide, 5.0),
            performance_improvement(tight, 5.0));
}

TEST(Model, OverheadDiminishesWithScale) {
  // Example (6) of the table: scaling all taus up shrinks the overhead's
  // effect.
  const std::vector<SimTime> small{1, 2, 3};
  const std::vector<SimTime> big{100, 200, 300};
  EXPECT_GT(performance_improvement(big, 5.0),
            performance_improvement(small, 5.0));
}

TEST(Model, OverheadEstimateComponents) {
  sim::MachineModel m = sim::MachineModel::hp9000_350(4);
  OverheadInputs in;
  in.n_alternatives = 3;
  in.address_space_pages = 80;
  in.pages_written_by_winner = 10;
  in.winner_tau = 100 * kMsec;
  in.sibling_cpu_share = 0.0;
  in.synchronous_elimination = true;
  const OverheadModel o = estimate_overhead(m, in);
  EXPECT_EQ(o.setup, 3 * m.fork_cost(80));
  EXPECT_EQ(o.runtime, 10 * m.page_copy);
  EXPECT_EQ(o.selection, m.commit_cost + 2 * m.kill_cost);
  EXPECT_EQ(o.total(), o.setup + o.runtime + o.selection);
}

TEST(Model, AsyncEliminationRemovesKillsFromCriticalPath) {
  sim::MachineModel m = sim::MachineModel::hp9000_350(4);
  OverheadInputs in;
  in.n_alternatives = 5;
  in.synchronous_elimination = false;
  const OverheadModel async_o = estimate_overhead(m, in);
  in.synchronous_elimination = true;
  const OverheadModel sync_o = estimate_overhead(m, in);
  EXPECT_EQ(sync_o.selection - async_o.selection, 4 * m.kill_cost);
}

TEST(Model, CpuShareZeroWhenEnoughCpus) {
  EXPECT_DOUBLE_EQ(expected_cpu_share(3, 4), 0.0);
  EXPECT_DOUBLE_EQ(expected_cpu_share(4, 4), 0.0);
  EXPECT_DOUBLE_EQ(expected_cpu_share(4, 2), 1.0);  // elapsed doubles
}

TEST(Model, WastedWorkCountsLosersUpToCommit) {
  const std::vector<SimTime> taus{10, 50, 100};
  // Both losers burn ~tau(best) before elimination.
  EXPECT_DOUBLE_EQ(wasted_work_estimate(taus), 20.0);
}

// ---------------------------------------------------------------------------
// Selection schemes
// ---------------------------------------------------------------------------

TEST(Schemes, StatisticalPickerPrefersFasterHistory) {
  StatisticalPicker p(2);
  p.record(0, 100);
  p.record(1, 10);
  p.record(0, 120);
  p.record(1, 30);
  EXPECT_EQ(p.pick(), 1u);
}

TEST(Schemes, StatisticalPickerTriesUnknownFirst) {
  StatisticalPicker p(3);
  p.record(0, 1);
  EXPECT_EQ(p.pick(), 1u);  // 1 untried, preferred over known-good 0
}

TEST(Schemes, PartitionSelectorDispatchesByPredicate) {
  // The paper's sort example: Q for size > 10, I otherwise.
  PartitionSelector<int> sel(/*fallback=*/1);
  sel.add_rule([](const int& size) { return size > 10; }, 0);
  EXPECT_EQ(sel.select(100), 0u);
  EXPECT_EQ(sel.select(5), 1u);
}

TEST(Schemes, LookupTableSelectsLearnedAlternative) {
  LookupTableSelector t(/*fallback=*/0);
  t.learn(42, 2);
  EXPECT_EQ(t.select(42), 2u);
  EXPECT_EQ(t.select(7), 0u);
  EXPECT_EQ(t.entries(), 1u);
}

TEST(Schemes, RandomPickIsUniformIsh) {
  Rng rng(99);
  std::vector<int> hits(4, 0);
  for (int i = 0; i < 4000; ++i) hits[random_pick(4, rng)]++;
  for (int h : hits) {
    EXPECT_GT(h, 800);
    EXPECT_LT(h, 1200);
  }
}

// ---------------------------------------------------------------------------
// Workload generation
// ---------------------------------------------------------------------------

class DistSweep : public ::testing::TestWithParam<TimeDist> {};

TEST_P(DistSweep, GeneratedTimesArePositiveAndVaried) {
  WorkloadParams p;
  p.dist = GetParam();
  p.n_alternatives = 64;
  p.lo = 10 * kMsec;
  p.hi = 100 * kMsec;
  Rng rng(7);
  const BlockSpec b = generate_block(p, rng);
  ASSERT_EQ(b.alts.size(), 64u);
  SimTime lo = b.alts[0].compute;
  SimTime hi = lo;
  for (const auto& a : b.alts) {
    EXPECT_GE(a.compute, 1);
    lo = std::min(lo, a.compute);
    hi = std::max(hi, a.compute);
  }
  EXPECT_LT(lo, hi);  // some dispersion in every distribution
}

INSTANTIATE_TEST_SUITE_P(AllDistributions, DistSweep,
                         ::testing::Values(TimeDist::kUniform,
                                           TimeDist::kExponential,
                                           TimeDist::kNormal, TimeDist::kPareto,
                                           TimeDist::kBimodal));

TEST(Workload, GuardFailureProbabilityApplies) {
  WorkloadParams p;
  p.n_alternatives = 1000;
  p.guard_fail_prob = 0.3;
  Rng rng(11);
  const BlockSpec b = generate_block(p, rng);
  int failed = 0;
  for (const auto& a : b.alts) {
    if (!a.guard_ok) ++failed;
  }
  EXPECT_GT(failed, 220);
  EXPECT_LT(failed, 380);
}

// ---------------------------------------------------------------------------
// Executor: model vs simulator agreement
// ---------------------------------------------------------------------------

sim::Kernel::Config exec_cfg(int cpus) {
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(cpus);
  cfg.address_space_pages = 16;  // keep spawn overhead small in these tests
  return cfg;
}

TEST(Executor, ConcurrentSelectsFastest) {
  BlockSpec b;
  b.alts = {AltSpec{.compute = 100 * kMsec}, AltSpec{.compute = 10 * kMsec},
            AltSpec{.compute = 50 * kMsec}};
  const auto r = run_concurrent(b, exec_cfg(4));
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.winner, 2u);  // tag = index + 1
  EXPECT_LT(r.elapsed, 40 * kMsec);
}

TEST(Executor, ConcurrentSkipsGuardFailures) {
  BlockSpec b;
  b.alts = {AltSpec{.compute = 5 * kMsec, .guard_ok = false},
            AltSpec{.compute = 50 * kMsec, .guard_ok = true}};
  const auto r = run_concurrent(b, exec_cfg(4));
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.winner, 2u);
}

TEST(Executor, ConcurrentFailsWhenAllGuardsFail) {
  BlockSpec b;
  b.alts = {AltSpec{.compute = 5 * kMsec, .guard_ok = false},
            AltSpec{.compute = 9 * kMsec, .guard_ok = false}};
  const auto r = run_concurrent(b, exec_cfg(4));
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.winner, 0u);
}

TEST(Executor, SimAgreesWithAnalyticModelWithinTolerance) {
  // With ample CPUs, measured elapsed ~= tau(best) + overhead(model).
  BlockSpec b;
  b.alts = {AltSpec{.compute = 200 * kMsec, .pages_written = 4},
            AltSpec{.compute = 60 * kMsec, .pages_written = 4},
            AltSpec{.compute = 400 * kMsec, .pages_written = 4}};
  auto cfg = exec_cfg(4);
  const auto r = run_concurrent(b, cfg);
  OverheadInputs in;
  in.n_alternatives = 3;
  in.address_space_pages = fit_config(b, cfg).address_space_pages;
  in.pages_written_by_winner = 4 + 1;  // + result page
  in.winner_tau = 60 * kMsec;
  const OverheadModel o = estimate_overhead(cfg.machine, in);
  const double predicted =
      static_cast<double>(60 * kMsec) + static_cast<double>(o.total());
  EXPECT_NEAR(static_cast<double>(r.elapsed), predicted, predicted * 0.15);
}

TEST(Executor, RandomPickAveragesToMeanOverManyTrials) {
  BlockSpec b;
  b.alts = {AltSpec{.compute = 10 * kMsec}, AltSpec{.compute = 30 * kMsec},
            AltSpec{.compute = 50 * kMsec}};
  Rng rng(5);
  double total = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    total += static_cast<double>(run_random_pick(b, exec_cfg(1), rng).elapsed);
  }
  const double avg = total / trials;
  EXPECT_NEAR(avg, 30 * kMsec, 6 * kMsec);
}

TEST(Executor, OrderedTriesUntilAcceptance) {
  BlockSpec b;
  b.alts = {AltSpec{.compute = 10 * kMsec, .guard_ok = false},
            AltSpec{.compute = 20 * kMsec, .guard_ok = false},
            AltSpec{.compute = 30 * kMsec, .guard_ok = true}};
  const auto r = run_ordered(b, exec_cfg(1));
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.chosen, 2u);
  EXPECT_GE(r.elapsed, 60 * kMsec);  // paid for all three bodies
}

TEST(Executor, OrderedFailsWhenEveryAcceptanceFails) {
  BlockSpec b;
  b.alts = {AltSpec{.compute = kMsec, .guard_ok = false},
            AltSpec{.compute = kMsec, .guard_ok = false}};
  const auto r = run_ordered(b, exec_cfg(1));
  EXPECT_TRUE(r.failed);
}

TEST(Executor, ConcurrentBeatsRandomPickOnDispersedWorkloads) {
  // The headline claim, end to end on the simulator: with high dispersion
  // and enough CPUs, Scheme C beats Scheme B's expectation.
  WorkloadParams p;
  p.n_alternatives = 4;
  p.dist = TimeDist::kBimodal;
  p.lo = 20 * kMsec;
  p.hi = 2000 * kMsec;
  Rng rng(13);
  double c_total = 0;
  double b_total = 0;
  for (int trial = 0; trial < 12; ++trial) {
    const BlockSpec b = generate_block(p, rng);
    c_total += static_cast<double>(run_concurrent(b, exec_cfg(4)).elapsed);
    b_total += static_cast<double>(run_random_pick(b, exec_cfg(1), rng).elapsed);
  }
  EXPECT_LT(c_total, b_total);
}

}  // namespace
}  // namespace altx::core
