// API-misuse tests: every public entry point rejects bad arguments with
// UsageError instead of misbehaving.
#include <gtest/gtest.h>

#include "altc/translate.hpp"
#include "consensus/majority.hpp"
#include "posix/alt_group.hpp"
#include "posix/await_all.hpp"
#include "posix/hedged.hpp"
#include "posix/race.hpp"
#include "prolog/or_parallel.hpp"

namespace altx {
namespace {

TEST(ApiMisuse, RaceRejectsEmptyAndBadOptions) {
  EXPECT_THROW((void)posix::race<int>({}), UsageError);
  posix::RaceOptions o;
  o.replicas = 0;
  EXPECT_THROW((void)posix::race<int>({[] { return std::optional<int>(1); }}, o),
               UsageError);
}

TEST(ApiMisuse, AwaitAllRejectsEmpty) {
  EXPECT_THROW((void)posix::await_all<int>({}), UsageError);
}

TEST(ApiMisuse, HedgedRejectsZeroCopies) {
  posix::HedgeOptions o;
  o.max_copies = 0;
  EXPECT_THROW((void)posix::hedged<int>([](int) { return std::optional<int>(1); }, o),
               UsageError);
}

TEST(ApiMisuse, AltGroupOrderingIsEnforced) {
  posix::AltGroup g;
  EXPECT_THROW((void)g.alt_wait(std::chrono::milliseconds(1)), UsageError);
  const int who = g.alt_spawn(1);
  if (who > 0) g.child_abort();
  EXPECT_THROW((void)g.alt_spawn(1), UsageError);  // spawn twice
  (void)g.alt_wait(std::chrono::seconds(5));
}

TEST(ApiMisuse, AltGroupRejectsZeroAlternatives) {
  posix::AltGroup g;
  EXPECT_THROW((void)g.alt_spawn(0), UsageError);
}

TEST(ApiMisuse, RaceDecodeSizeMismatch) {
  EXPECT_THROW((void)posix::race_decode<int>(Bytes{1, 2}), UsageError);
}

TEST(ApiMisuse, MajoritySyncValidatesTopology) {
  net::Network::Config nc;
  nc.node_count = 2;
  net::Network net(nc);
  consensus::MajoritySync::Config mc;
  mc.arbiters = 3;  // more arbiters than nodes
  EXPECT_THROW(consensus::MajoritySync s(net, mc), UsageError);

  mc.arbiters = 1;
  consensus::MajoritySync sync(net, mc);
  EXPECT_THROW(sync.add_candidate(0, 0, 0), UsageError);  // shares arbiter node
  sync.add_candidate(0, 1, 0);
  EXPECT_THROW(sync.add_candidate(0, 1, 0), UsageError);  // duplicate id
  EXPECT_THROW(sync.launch(99), UsageError);              // unknown candidate
}

TEST(ApiMisuse, OrParallelRejectsUncallableQueries) {
  prolog::Database db;
  db.consult("a(1).");
  prolog::Query q = prolog::parse_query(db.symbols, "X");
  EXPECT_THROW((void)prolog::solve_or_parallel(db, q), UsageError);
}

TEST(ApiMisuse, AltcOutputIsValidForValidInput) {
  // Sanity companion to the misuse checks: a correct block still translates.
  const std::string out = altc::translate(
      "ALTBEGIN(v : int)\nALTERNATIVE\n  ALTRETURN(1);\nALTEND\n");
  EXPECT_NE(out.find("race<int>"), std::string::npos);
}

}  // namespace
}  // namespace altx
