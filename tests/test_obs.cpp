// Unit tests for the observability layer: the fork-shared trace ring, the
// metrics registry, both exporters and the jsonl reader, and the sim-kernel
// bridge. (Whole-construct trace guarantees live in
// test_trace_completeness.cpp.)
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <fstream>
#include <sstream>

#include "common/error.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"
#include "obs/sim_bridge.hpp"
#include "obs/trace.hpp"
#include "sim/kernel.hpp"

namespace altx::obs {
namespace {

Record make_record(std::uint32_t race, EventKind kind, std::int16_t child = 0) {
  Record r{};
  r.t_ns = 1000 + race;
  r.race_id = race;
  r.attempt = 2;
  r.pid = 4321;
  r.child_index = child;
  r.kind = kind;
  r.a = 7;
  r.b = 8;
  r.c = 9;
  return r;
}

// Must run before anything calls enable_for_test (gtest preserves
// definition order): without ALTX_TRACE in the environment the facade is
// off, emit() is a no-op, and race ids are the "untraced" 0.
TEST(ObsDisabled, FacadeIsInertWithoutSinks) {
  ASSERT_FALSE(enabled());
  EXPECT_EQ(ring(), nullptr);
  EXPECT_EQ(next_race_id(), 0u);
  emit(EventKind::kRaceBegin, 1, 0);  // must not crash with no ring
  EXPECT_TRUE(snapshot().empty());
  EXPECT_EQ(dropped(), 0u);
}

TEST(TraceRing, PublishesInClaimOrder) {
  TraceRing r(16);
  for (std::uint32_t i = 1; i <= 5; ++i) {
    r.push(make_record(i, EventKind::kRaceBegin));
  }
  EXPECT_EQ(r.published(), 5u);
  const auto recs = r.snapshot();
  ASSERT_EQ(recs.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(recs[i].race_id, i + 1);
    EXPECT_EQ(recs[i].kind, EventKind::kRaceBegin);
    EXPECT_EQ(recs[i].a, 7u);
  }
}

TEST(TraceRing, FullArenaDropsNewestAndCounts) {
  TraceRing r(4);
  for (std::uint32_t i = 1; i <= 7; ++i) {
    r.push(make_record(i, EventKind::kFork));
  }
  EXPECT_EQ(r.snapshot().size(), 4u);
  EXPECT_EQ(r.dropped(), 3u);
  // Oldest-first retention: the first four records survive.
  EXPECT_EQ(r.snapshot().front().race_id, 1u);
  EXPECT_EQ(r.snapshot().back().race_id, 4u);
  r.reset();
  EXPECT_EQ(r.snapshot().size(), 0u);
  EXPECT_EQ(r.dropped(), 0u);
  r.push(make_record(9, EventKind::kFork));
  EXPECT_EQ(r.snapshot().size(), 1u);
}

TEST(TraceRing, RaceIdsAreUniqueAndNonZero) {
  TraceRing r(4);
  const auto a = r.next_race_id();
  const auto b = r.next_race_id();
  EXPECT_NE(a, 0u);
  EXPECT_NE(b, 0u);
  EXPECT_NE(a, b);
}

TEST(TraceRing, SurvivesFork) {
  // The whole point of the MAP_SHARED design: a child's records are visible
  // to the parent after the child is gone.
  enable_for_test(64);
  reset();
  const std::uint32_t id = next_race_id();
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    emit(EventKind::kGuardStart, id, 1);
    ::_exit(0);
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  const auto recs = snapshot();
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, EventKind::kGuardStart);
  EXPECT_EQ(recs[0].race_id, id);
  EXPECT_EQ(recs[0].pid, pid);          // stamped by the child
  EXPECT_NE(recs[0].pid, ::getpid());
  EXPECT_GT(recs[0].t_ns, 0u);
  reset();
}

TEST(Metrics, CounterAndHistogram) {
  MetricsRegistry reg;
  reg.counter("x").add();
  reg.counter("x").add(4);
  EXPECT_EQ(reg.counter("x").value(), 5u);

  Histogram& h = reg.histogram("lat");
  for (const std::uint64_t v : {1u, 2u, 4u, 100u}) h.record(v);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 107u);
  EXPECT_EQ(h.min(), 1u);
  EXPECT_EQ(h.max(), 100u);
  EXPECT_DOUBLE_EQ(h.mean(), 107.0 / 4.0);
  // Power-of-two buckets with linear interpolation inside the winning
  // bucket, clamped to the observed [min, max]: the estimate stays within
  // the bucket that holds the true value instead of over-reporting its
  // upper bound. 100 lands in [64, 128), a lone sample interpolates to the
  // bucket midpoint (96), and clamping keeps every estimate <= max.
  EXPECT_GE(h.percentile(100), 64u);
  EXPECT_LE(h.percentile(100), 100u);
  EXPECT_GE(h.percentile(0), 1u);   // clamped up to min
  EXPECT_LE(h.percentile(0), 2u);   // 1 lands in [0, 2)
  EXPECT_LE(h.percentile(50), 4u);  // rank 1 of {1,2,4,100} -> the 2 bucket

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"x\": 5"), std::string::npos);
  EXPECT_NE(json.find("\"lat\""), std::string::npos);
  reg.reset();
  EXPECT_EQ(reg.counter("x").value(), 0u);
}

TEST(Metrics, PrometheusExposition) {
  MetricsRegistry reg;
  reg.counter("jobs").add(7);
  Histogram& h = reg.histogram("wait_ns");
  for (const std::uint64_t v : {1u, 2u, 4u, 100u}) h.record(v);

  const std::string text = reg.to_prometheus("altx_");

  // Counters get the _total suffix and a TYPE line.
  EXPECT_NE(text.find("# TYPE altx_jobs_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("altx_jobs_total 7\n"), std::string::npos);

  // Histogram buckets are cumulative with inclusive power-of-two upper
  // bounds: bucket i holds [2^i, 2^(i+1)), so le = 2^(i+1)-1.
  EXPECT_NE(text.find("# TYPE altx_wait_ns histogram\n"), std::string::npos);
  EXPECT_NE(text.find("altx_wait_ns_bucket{le=\"1\"} 1\n"), std::string::npos);
  EXPECT_NE(text.find("altx_wait_ns_bucket{le=\"3\"} 2\n"), std::string::npos);
  EXPECT_NE(text.find("altx_wait_ns_bucket{le=\"7\"} 3\n"), std::string::npos);
  // Empty interior buckets still emit rows (cumulative count is flat)...
  EXPECT_NE(text.find("altx_wait_ns_bucket{le=\"63\"} 3\n"), std::string::npos);
  EXPECT_NE(text.find("altx_wait_ns_bucket{le=\"127\"} 4\n"), std::string::npos);
  // ...but the empty tail past the last occupied bucket is elided.
  EXPECT_EQ(text.find("le=\"255\""), std::string::npos);
  EXPECT_NE(text.find("altx_wait_ns_bucket{le=\"+Inf\"} 4\n"), std::string::npos);
  EXPECT_NE(text.find("altx_wait_ns_sum 107\n"), std::string::npos);
  EXPECT_NE(text.find("altx_wait_ns_count 4\n"), std::string::npos);
}

TEST(Metrics, PrometheusEmptyHistogramHasNoBuckets) {
  MetricsRegistry reg;
  reg.histogram("idle");
  const std::string text = reg.to_prometheus("altx_");
  EXPECT_NE(text.find("# TYPE altx_idle histogram\n"), std::string::npos);
  EXPECT_EQ(text.find("altx_idle_bucket{le=\"1\""), std::string::npos);
  EXPECT_NE(text.find("altx_idle_bucket{le=\"+Inf\"} 0\n"), std::string::npos);
  EXPECT_NE(text.find("altx_idle_count 0\n"), std::string::npos);
}

TEST(Metrics, EmptyHistogramIsDefined) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.percentile(95), 0u);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
}

TEST(Export, JsonlRoundTrips) {
  std::vector<Record> in = {
      make_record(1, EventKind::kRaceBegin),
      make_record(1, EventKind::kCommitWon, 2),
      make_record(3, EventKind::kChildFate, 1),
  };
  std::stringstream s;
  write_jsonl(in, s);
  const auto out = parse_jsonl(s);
  ASSERT_EQ(out.size(), in.size());
  for (std::size_t i = 0; i < in.size(); ++i) {
    EXPECT_EQ(out[i].t_ns, in[i].t_ns);
    EXPECT_EQ(out[i].race_id, in[i].race_id);
    EXPECT_EQ(out[i].attempt, in[i].attempt);
    EXPECT_EQ(out[i].pid, in[i].pid);
    EXPECT_EQ(out[i].child_index, in[i].child_index);
    EXPECT_EQ(out[i].kind, in[i].kind);
    EXPECT_EQ(out[i].a, in[i].a);
    EXPECT_EQ(out[i].b, in[i].b);
    EXPECT_EQ(out[i].c, in[i].c);
  }
}

TEST(Export, EventKindNamesRoundTrip) {
  for (const EventKind k :
       {EventKind::kRaceBegin, EventKind::kFork, EventKind::kGuardStart,
        EventKind::kGuardResult, EventKind::kCommitAttempt,
        EventKind::kCommitWon, EventKind::kTooLate, EventKind::kGuardFail,
        EventKind::kChildFate, EventKind::kRaceDecided, EventKind::kEliminated,
        EventKind::kAttemptBegin, EventKind::kAttemptEnd, EventKind::kBackoff,
        EventKind::kSequentialFallback, EventKind::kHedgeWake,
        EventKind::kAwaitBegin, EventKind::kAwaitTaskDone,
        EventKind::kAwaitDecided, EventKind::kDistSpawn, EventKind::kDistAbort,
        EventKind::kDistResult, EventKind::kDistKill, EventKind::kDistDecided,
        EventKind::kVoteGrant, EventKind::kVoteReject, EventKind::kSyncDecided,
        EventKind::kSimEvent}) {
    const auto back = event_kind_from_string(to_string(k));
    ASSERT_TRUE(back.has_value()) << to_string(k);
    EXPECT_EQ(*back, k);
  }
}

TEST(Export, UnknownKindDegradesToNone) {
  std::stringstream s;
  s << R"({"t_ns":5,"kind":"from_the_future","race":1,"attempt":0,"pid":1,)"
    << R"("child":0,"a":0,"b":0,"c":0})" << "\n";
  const auto out = parse_jsonl(s);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].kind, EventKind::kNone);
}

TEST(Export, MalformedLineThrowsWithLineNumber) {
  std::stringstream s;
  s << R"({"t_ns":5,"kind":"fork","race":1,"attempt":0,"pid":1,"child":0,)"
    << R"("a":0,"b":0,"c":0})" << "\n"
    << "not json\n";
  try {
    (void)parse_jsonl(s);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("2"), std::string::npos);
  }
}

TEST(Export, UnknownFormatThrows) {
  std::stringstream s;
  EXPECT_THROW(write_trace({}, s, "xml"), UsageError);
}

TEST(Export, ChromeEmitsTraceEvents) {
  std::vector<Record> in = {
      make_record(1, EventKind::kRaceBegin),
      make_record(1, EventKind::kAttemptBegin),
      make_record(1, EventKind::kAttemptEnd),
  };
  std::stringstream s;
  write_chrome(in, s);
  const std::string out = s.str();
  EXPECT_NE(out.find("\"traceEvents\""), std::string::npos);
  // Attempts become duration spans, everything else instants.
  EXPECT_NE(out.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(out.find("\"ph\":\"i\""), std::string::npos);
  // Braces/brackets balance — cheap structural sanity; real JSON validity
  // is exercised by loading the export in tools (see docs).
  long depth = 0;
  for (const char c : out) {
    if (c == '{' || c == '[') ++depth;
    if (c == '}' || c == ']') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(SimBridge, KernelEventsLandInTheSharedTrace) {
  enable_for_test(1024);
  reset();
  const std::uint32_t id = next_race_id();

  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(4);
  cfg.address_space_pages = 8;
  cfg.trace = sim_trace_sink(id);
  sim::Kernel k(cfg);
  auto fast = sim::ProgramBuilder().compute(10 * kMsec).build();
  auto slow = sim::ProgramBuilder().compute(90 * kMsec).build();
  k.spawn_root(sim::ProgramBuilder().alt({fast, slow}).build());
  k.run();

  const auto recs = snapshot();
  ASSERT_FALSE(recs.empty());
  std::size_t forks = 0;
  std::size_t commits = 0;
  std::size_t eliminations = 0;
  for (const Record& r : recs) {
    EXPECT_EQ(r.race_id, id);  // everything grouped under the bridged id
    if (r.kind == EventKind::kFork) ++forks;
    if (r.kind == EventKind::kCommitWon) ++commits;
    if (r.kind == EventKind::kEliminated) ++eliminations;
  }
  EXPECT_EQ(forks, 3u);  // root + two alternates
  EXPECT_EQ(commits, 1u);
  EXPECT_EQ(eliminations, 1u);
  // Sim time is microseconds; bridged stamps are that value in ns.
  for (const Record& r : recs) EXPECT_EQ(r.t_ns % 1000, 0u);
  reset();
}

TEST(Export, NodeAndSeqRoundTrip) {
  Record r = make_record(5, EventKind::kCommitWon, 2);
  r.node_id = 7;
  r.seq = 42;
  std::ostringstream out;
  write_jsonl({r}, out);
  EXPECT_NE(out.str().find("\"node\":7"), std::string::npos);
  EXPECT_NE(out.str().find("\"seq\":42"), std::string::npos);
  std::istringstream in(out.str());
  const auto back = parse_jsonl(in);
  ASSERT_EQ(back.size(), 1u);
  EXPECT_EQ(back[0].node_id, 7u);
  EXPECT_EQ(back[0].seq, 42u);
  // Pre-stitching traces carry neither key; both default to 0.
  std::istringstream old(
      "{\"t_ns\":1,\"kind\":\"fork\",\"race\":1,\"attempt\":0,\"pid\":1,"
      "\"child\":0,\"a\":0,\"b\":0,\"c\":0}\n");
  const auto legacy = parse_jsonl(old);
  ASSERT_EQ(legacy.size(), 1u);
  EXPECT_EQ(legacy[0].node_id, 0u);
  EXPECT_EQ(legacy[0].seq, 0u);
}

TEST(Export, JsonlStatsCountRecordsAndSchemaV1Lines) {
  // Empty input: parses to nothing, and the stats say so — this is what
  // lets altx-trace --stitch refuse an empty file instead of "stitching"
  // zero records successfully.
  std::istringstream empty("");
  JsonlStats es;
  EXPECT_TRUE(parse_jsonl(empty, &es).empty());
  EXPECT_EQ(es.records, 0u);
  EXPECT_EQ(es.missing_node_seq, 0u);

  // A schema-v1 line (no node/seq keys) parses but is flagged: its records
  // all collapse onto (node 0, seq 0) and cannot be causally merged.
  std::istringstream old(
      "{\"t_ns\":1,\"kind\":\"fork\",\"race\":1,\"attempt\":0,\"pid\":1,"
      "\"child\":0,\"a\":0,\"b\":0,\"c\":0}\n");
  JsonlStats vs;
  ASSERT_EQ(parse_jsonl(old, &vs).size(), 1u);
  EXPECT_EQ(vs.records, 1u);
  EXPECT_EQ(vs.missing_node_seq, 1u);

  // A current trace is not flagged.
  std::ostringstream out;
  write_jsonl({make_record(3, EventKind::kFork, 1)}, out);
  std::istringstream in(out.str());
  JsonlStats cs;
  ASSERT_EQ(parse_jsonl(in, &cs).size(), 1u);
  EXPECT_EQ(cs.records, 1u);
  EXPECT_EQ(cs.missing_node_seq, 0u);
}

TEST(Export, TruncatedRecordThrowsWithItsLineNumber) {
  // First line intact, second cut mid-record — the shape a trace takes when
  // its writer dies while flushing.
  std::ostringstream out;
  write_jsonl({make_record(3, EventKind::kFork, 1)}, out);
  std::istringstream s(out.str() + "{\"t_ns\":12,\"ki");
  try {
    (void)parse_jsonl(s);
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos)
        << e.what();
  }
}

TEST(Export, RingStampsMonotonicSeq) {
  TraceRing r(16);
  for (std::uint32_t i = 1; i <= 4; ++i) {
    r.push(make_record(i, EventKind::kFork));
  }
  const auto recs = r.snapshot();
  ASSERT_EQ(recs.size(), 4u);
  for (std::uint64_t i = 0; i < 4; ++i) EXPECT_EQ(recs[i].seq, i);
}

TEST(Export, StitchOrdersByTimeThenNodeThenSeq) {
  auto rec = [](std::uint64_t t, std::uint32_t node, std::uint64_t seq,
                std::uint32_t race) {
    Record r = make_record(race, EventKind::kSimEvent);
    r.t_ns = t;
    r.node_id = node;
    r.seq = seq;
    return r;
  };
  // Node 2's trace and node 1's trace, each internally in seq order.
  const std::vector<Record> a = {rec(100, 2, 0, 1), rec(300, 2, 1, 1)};
  const std::vector<Record> b = {rec(100, 1, 5, 1), rec(200, 1, 6, 1)};
  const auto merged = stitch_records({a, b});
  ASSERT_EQ(merged.size(), 4u);
  // t=100 ties break by node id; then t=200 (node 1), t=300 (node 2).
  EXPECT_EQ(merged[0].node_id, 1u);
  EXPECT_EQ(merged[1].node_id, 2u);
  EXPECT_EQ(merged[2].t_ns, 200u);
  EXPECT_EQ(merged[3].t_ns, 300u);
  // race_id grouping is untouched: every record still carries its trace id.
  for (const Record& r : merged) EXPECT_EQ(r.race_id, 1u);
}

TEST(Export, OverflowSynthesizesMarkerRecord) {
  // enable_for_test only creates the ring once per process, so overflow by
  // pushing past whatever capacity the suite's ring actually has.
  enable_for_test(256);
  reset();
  const std::uint32_t id = next_race_id();
  const std::size_t cap = ring()->capacity();
  for (std::size_t i = 0; i < cap + 5; ++i) emit(EventKind::kFork, id, 0);
  EXPECT_GT(dropped(), 0u);
  const std::string path = "/tmp/altx_test_obs_overflow.jsonl";
  export_to(path, "jsonl");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const auto recs = parse_jsonl(in);
  ::unlink(path.c_str());
  ASSERT_FALSE(recs.empty());
  const Record& last = recs.back();
  EXPECT_EQ(last.kind, EventKind::kRingOverflow);
  EXPECT_EQ(last.a, dropped());
  // The marker extends the stream: its seq follows the last real record.
  EXPECT_EQ(last.seq, recs[recs.size() - 2].seq + 1);
  reset();
}

TEST(RingFile, ReaderAttachesAndSeesLiveWrites) {
  const std::string path = "/tmp/altx_test_obs_ringfile.bin";
  {
    TraceRing writer(path, 64);
    writer.push(make_record(1, EventKind::kRaceBegin));
    writer.push(make_record(1, EventKind::kCommitWon, 1));

    TraceRingReader reader(path);
    EXPECT_EQ(reader.capacity(), 64u);
    EXPECT_EQ(reader.published(), 2u);
    const auto recs = reader.snapshot();
    ASSERT_EQ(recs.size(), 2u);
    EXPECT_EQ(recs[0].kind, EventKind::kRaceBegin);
    EXPECT_EQ(recs[1].kind, EventKind::kCommitWon);

    // Writes after the attach are visible to the same reader: it is a
    // window onto the shared pages, not a copy.
    writer.push(make_record(1, EventKind::kRaceDecided));
    EXPECT_EQ(reader.snapshot().size(), 3u);
  }
  ::unlink(path.c_str());
}

TEST(RingFile, ReaderRejectsNonRingFiles) {
  const std::string path = "/tmp/altx_test_obs_notaring.bin";
  {
    std::ofstream out(path);
    out << "this is not an altx trace ring, not even close, but it is long "
           "enough that the header mapping itself succeeds cleanly";
  }
  EXPECT_THROW(TraceRingReader reader(path), UsageError);
  ::unlink(path.c_str());
  EXPECT_THROW(TraceRingReader missing("/tmp/altx_no_such_ring.bin"),
               SystemError);
}

TEST(ObsExportToFile, WritesAndRejectsBadPaths) {
  enable_for_test(64);
  reset();
  emit(EventKind::kRaceBegin, next_race_id(), 0, 2);
  const std::string path = "/tmp/altx_test_obs_export.jsonl";
  export_to(path, "jsonl");
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  const auto recs = parse_jsonl(in);
  ASSERT_EQ(recs.size(), 1u);
  EXPECT_EQ(recs[0].kind, EventKind::kRaceBegin);
  ::unlink(path.c_str());
  EXPECT_THROW(export_to("/nonexistent-dir/x.jsonl", "jsonl"), SystemError);
  reset();
}

}  // namespace
}  // namespace altx::obs
