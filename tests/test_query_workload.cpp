// Tests for the database-query workload model (E11's substrate).
#include <gtest/gtest.h>

#include "core/executor.hpp"
#include "core/query_workload.hpp"

namespace altx::core {
namespace {

QuerySpec eq_query(double selectivity, bool index = true,
                   std::uint64_t rows = 100'000) {
  QuerySpec q;
  q.rows = rows;
  q.selectivity = selectivity;
  q.predicate = PredKind::kEquality;
  q.index_available = index;
  return q;
}

TEST(QueryWorkload, ScanIsAlwaysViable) {
  for (auto kind : {PredKind::kEquality, PredKind::kRange, PredKind::kComplex}) {
    QuerySpec q = eq_query(0.1, false);
    q.predicate = kind;
    EXPECT_TRUE(plan_cost(Plan::kScan, q, 1).viable);
  }
}

TEST(QueryWorkload, HashOnlyViableForEquality) {
  QuerySpec q = eq_query(0.01);
  EXPECT_TRUE(plan_cost(Plan::kHash, q, 1).viable);
  q.predicate = PredKind::kRange;
  EXPECT_FALSE(plan_cost(Plan::kHash, q, 1).viable);
  q.predicate = PredKind::kComplex;
  EXPECT_FALSE(plan_cost(Plan::kHash, q, 1).viable);
}

TEST(QueryWorkload, IndexNeedsIndexAndSelectivePredicate) {
  QuerySpec q = eq_query(0.01, /*index=*/false);
  EXPECT_FALSE(plan_cost(Plan::kIndex, q, 1).viable);
  q.index_available = true;
  EXPECT_TRUE(plan_cost(Plan::kIndex, q, 1).viable);
  q.predicate = PredKind::kComplex;
  EXPECT_FALSE(plan_cost(Plan::kIndex, q, 1).viable);
}

TEST(QueryWorkload, ScanCostIndependentOfSelectivity) {
  EXPECT_EQ(plan_cost(Plan::kScan, eq_query(0.001), 1).cost,
            plan_cost(Plan::kScan, eq_query(0.5), 1).cost);
}

TEST(QueryWorkload, IndexCostGrowsWithSelectivity) {
  EXPECT_LT(plan_cost(Plan::kIndex, eq_query(0.001), 1).cost,
            plan_cost(Plan::kIndex, eq_query(0.3), 1).cost);
}

TEST(QueryWorkload, SelectiveQueriesFavourIndexOverScan) {
  const QuerySpec q = eq_query(0.0005);
  EXPECT_LT(plan_cost(Plan::kIndex, q, 1).cost,
            plan_cost(Plan::kScan, q, 1).cost);
}

TEST(QueryWorkload, OracleIsTheViableMinimum) {
  const QuerySpec q = eq_query(0.01);
  const SimTime oracle = oracle_cost(q, 1);
  for (std::size_t i = 0; i < kPlanCount; ++i) {
    const auto pc = plan_cost(static_cast<Plan>(i), q, 1);
    if (pc.viable) {
      EXPECT_LE(oracle, pc.cost);
    }
  }
}

TEST(QueryWorkload, OracleFallsBackToScanForComplexPredicates) {
  QuerySpec q = eq_query(0.1);
  q.predicate = PredKind::kComplex;
  EXPECT_EQ(oracle_cost(q, 1), plan_cost(Plan::kScan, q, 1).cost);
}

TEST(QueryWorkload, BlockHasOneAlternativePerPlan) {
  const BlockSpec b = query_block(eq_query(0.01), 1);
  ASSERT_EQ(b.alts.size(), kPlanCount);
  EXPECT_TRUE(b.alts[0].guard_ok);   // index
  EXPECT_TRUE(b.alts[1].guard_ok);   // scan
  EXPECT_TRUE(b.alts[2].guard_ok);   // hash
}

TEST(QueryWorkload, RaceNeverLosesToTheWorstViablePlan) {
  // End to end on the simulator: racing is never worse than the scan plus
  // overhead, for any predicate kind.
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(3);
  cfg.address_space_pages = 32;
  Rng rng(5);
  QueryMixParams mix;
  for (int i = 0; i < 10; ++i) {
    const QuerySpec q = draw_query(mix, rng);
    const auto conc = run_concurrent(query_block(q, 2), cfg);
    ASSERT_FALSE(conc.failed);
    const SimTime scan = plan_cost(Plan::kScan, q, 2).cost;
    EXPECT_LE(conc.elapsed, scan + 100 * kMsec);
  }
}

TEST(QueryWorkload, DrawRespectsMixBounds) {
  QueryMixParams mix;
  Rng rng(3);
  int with_index = 0;
  for (int i = 0; i < 500; ++i) {
    const QuerySpec q = draw_query(mix, rng);
    EXPECT_GE(q.rows, mix.min_rows);
    EXPECT_LE(q.rows, mix.max_rows);
    EXPECT_GE(q.selectivity, mix.low_selectivity * 0.99);
    EXPECT_LE(q.selectivity, mix.high_selectivity * 1.01);
    if (q.index_available) ++with_index;
  }
  EXPECT_GT(with_index, 280);
  EXPECT_LT(with_index, 420);
}

}  // namespace
}  // namespace altx::core
