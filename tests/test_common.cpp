// Unit tests for the common substrate: deterministic RNG, statistics,
// serialisation buffers, time formatting, table rendering, and error types.
#include <gtest/gtest.h>

#include <sstream>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"

namespace altx {
namespace {

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(Rng, DeterministicPerSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  Rng c(43);
  bool differs = false;
  Rng a2(42);
  for (int i = 0; i < 10; ++i) differs = differs || (a2.next_u64() != c.next_u64());
  EXPECT_TRUE(differs);
}

TEST(Rng, BelowIsInRangeAndCoversIt) {
  Rng rng(7);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.below(10);
    ASSERT_LT(v, 10u);
    hits[v]++;
  }
  for (int h : hits) EXPECT_GT(h, 700);
  EXPECT_THROW((void)rng.below(0), UsageError);
}

TEST(Rng, RangeInclusiveBounds) {
  Rng rng(9);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
  EXPECT_EQ(rng.range(5, 5), 5);
  EXPECT_THROW((void)rng.range(2, 1), UsageError);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, ExponentialHasRequestedMean) {
  Rng rng(13);
  double sum = 0;
  const int n = 20'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 2.5);
  EXPECT_THROW((void)rng.exponential(0.0), UsageError);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(17);
  Summary s;
  for (int i = 0; i < 20'000; ++i) s.add(rng.normal(10.0, 2.0));
  EXPECT_NEAR(s.mean(), 10.0, 0.1);
  EXPECT_NEAR(s.stddev(), 2.0, 0.1);
}

TEST(Rng, ParetoIsHeavyTailedAboveScale) {
  Rng rng(19);
  double max_seen = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = rng.pareto(1.0, 1.5);
    ASSERT_GE(v, 1.0);
    max_seen = std::max(max_seen, v);
  }
  EXPECT_GT(max_seen, 20.0);  // the tail reaches far
}

TEST(Rng, ChanceRespectsProbability) {
  Rng rng(23);
  int yes = 0;
  for (int i = 0; i < 10'000; ++i) yes += rng.chance(0.2) ? 1 : 0;
  EXPECT_NEAR(yes / 10'000.0, 0.2, 0.02);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng(29);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(w, v);
}

TEST(Rng, SplitGivesIndependentStreams) {
  Rng parent(31);
  Rng child = parent.split();
  // The child stream differs from the parent's continuation.
  EXPECT_NE(parent.next_u64(), child.next_u64());
}

// ---------------------------------------------------------------------------
// Summary
// ---------------------------------------------------------------------------

TEST(Stats, BasicMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_EQ(s.count(), 8u);
}

TEST(Stats, PercentilesNearestRank) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50.0);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.median(), 50.0);
}

TEST(Stats, PercentileAfterLaterAddRecomputes) {
  Summary s;
  s.add(10);
  EXPECT_DOUBLE_EQ(s.percentile(50), 10.0);
  s.add(1);
  s.add(2);
  EXPECT_DOUBLE_EQ(s.percentile(50), 2.0);
}

TEST(Stats, EmptySummaryThrows) {
  Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW((void)s.mean(), UsageError);
  EXPECT_THROW((void)s.percentile(50), UsageError);
}

// ---------------------------------------------------------------------------
// Bytes
// ---------------------------------------------------------------------------

TEST(Bytes, RoundTripAllPrimitives) {
  Bytes buf;
  ByteWriter w(buf);
  w.u8(7);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.i64(-42);
  w.f64(3.25);
  w.str("hello");
  w.blob("\x01\x02", 2);
  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.25);
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.blob(), (Bytes{1, 2}));
  EXPECT_TRUE(r.done());
}

TEST(Bytes, TruncationThrowsNotCrashes) {
  Bytes buf;
  ByteWriter w(buf);
  w.u32(1);
  ByteReader r(buf);
  (void)r.u32();
  EXPECT_THROW((void)r.u8(), UsageError);
  ByteReader r2(buf.data(), 2);
  EXPECT_THROW((void)r2.u32(), UsageError);
}

TEST(Bytes, BlobLengthLyingIsCaught) {
  Bytes buf;
  ByteWriter w(buf);
  w.u64(1000);  // claims a 1000-byte blob that is not there
  ByteReader r(buf);
  EXPECT_THROW((void)r.blob(), UsageError);
}

TEST(Bytes, EmptyBlobAndString) {
  Bytes buf;
  ByteWriter w(buf);
  w.str("");
  w.blob(nullptr, 0);
  ByteReader r(buf);
  EXPECT_EQ(r.str(), "");
  EXPECT_TRUE(r.blob().empty());
}

// ---------------------------------------------------------------------------
// Time formatting
// ---------------------------------------------------------------------------

TEST(SimTimeFmt, PicksSensibleUnits) {
  EXPECT_EQ(format_time(7), "7 us");
  EXPECT_EQ(format_time(1500), "1.500 ms");
  EXPECT_EQ(format_time(2 * kSec + 250 * kMsec), "2.250 s");
}

// ---------------------------------------------------------------------------
// Table
// ---------------------------------------------------------------------------

TEST(TableFmt, AlignsColumnsAndRules) {
  Table t({"name", "value"});
  t.add_row({"x", "1"});
  t.add_row({"longer", "22"});
  std::ostringstream os;
  t.print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find(" name   | value "), std::string::npos);
  EXPECT_NE(out.find("--------+-------"), std::string::npos);
  EXPECT_NE(out.find(" longer | 22 "), std::string::npos);
}

TEST(TableFmt, NumFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

TEST(Errors, SystemErrorCarriesErrno) {
  const SystemError e("open", ENOENT);
  EXPECT_EQ(e.code(), ENOENT);
  EXPECT_NE(std::string(e.what()).find("open"), std::string::npos);
}

TEST(Errors, RequireAndAssertThrowDistinctTypes) {
  EXPECT_THROW(ALTX_REQUIRE(false, "nope"), UsageError);
  try {
    ALTX_ASSERT(false, "bug");
    FAIL();
  } catch (const InvariantError& e) {
    EXPECT_NE(std::string(e.what()).find("bug"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("test_common.cpp"), std::string::npos);
  }
}

}  // namespace
}  // namespace altx
