// Tests for the SpeculationGovernor (src/posix/governor.*): per-arm wall and
// CPU budgets enforced by the watchdog, SIGTERM→SIGKILL grace escalation,
// global admission control with single-token overdrafts, degradation of
// denied blocks to serialized forked execution, PSI-driven budget shrinking
// (through an ALTX_PSI_PATH-style fixture file), and the bounded in-place
// fork EAGAIN retry against the fork_storm fault.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/error.hpp"
#include "constrained.hpp"
#include "posix/fault.hpp"
#include "posix/governor.hpp"
#include "posix/supervisor.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;

GovernorConfig watchdog_config() {
  GovernorConfig gc;
  gc.poll_interval = 2ms;
  return gc;
}

TEST(Governor, WallBudgetOverrunIsKilledAndClassified) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  GovernorConfig gc = watchdog_config();
  gc.arm_wall_budget = 60ms;
  SpeculationGovernor gov(gc);

  RaceReport report;
  RaceOptions opts;
  opts.governor = &gov;
  opts.report = &report;
  opts.timeout = 5'000ms;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = race<int>(
      {[]() -> std::optional<int> { ::usleep(5'000'000); return 1; }}, opts);
  const auto dt = std::chrono::steady_clock::now() - t0;

  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(report.over_budget, 1);
  // Killed by the budget, not by the race timeout.
  EXPECT_LT(dt, 2'000ms);
  EXPECT_GE(gov.stats().kills_wall, 1u);
}

TEST(Governor, CpuBudgetCatchesASpinningArm) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  GovernorConfig gc = watchdog_config();
  gc.arm_cpu_budget = 50ms;
  SpeculationGovernor gov(gc);

  RaceReport report;
  RaceOptions opts;
  opts.governor = &gov;
  opts.report = &report;
  opts.timeout = 10'000ms;
  const auto r = race<int>({[]() -> std::optional<int> {
                             volatile std::uint64_t sink = 1;
                             for (;;) sink = sink * 6364136223846793005ULL + 1;
                             return static_cast<int>(sink);
                           }},
                           opts);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(report.over_budget, 1);
  EXPECT_GE(gov.stats().kills_cpu, 1u);
}

TEST(Governor, SigtermGraceEscalatesToSigkillForDeafArms) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  GovernorConfig gc = watchdog_config();
  gc.arm_wall_budget = 40ms;
  gc.kill_grace = 15ms;
  SpeculationGovernor gov(gc);

  RaceOptions opts;
  opts.governor = &gov;
  opts.timeout = 5'000ms;
  const auto r = race<int>({[]() -> std::optional<int> {
                             ::signal(SIGTERM, SIG_IGN);
                             ::usleep(5'000'000);
                             return 1;
                           }},
                           opts);
  EXPECT_FALSE(r.has_value());
  const GovernorStats st = gov.stats();
  EXPECT_GE(st.kills_wall, 1u);
  EXPECT_GE(st.term_escalations, 1u);  // the SIGTERM was ignored
}

TEST(Governor, CooperativeArmDiesInsideTheGraceWindow) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  GovernorConfig gc = watchdog_config();
  gc.arm_wall_budget = 40ms;
  gc.kill_grace = 200ms;
  SpeculationGovernor gov(gc);

  RaceReport report;
  RaceOptions opts;
  opts.governor = &gov;
  opts.report = &report;
  opts.timeout = 5'000ms;
  const auto t0 = std::chrono::steady_clock::now();
  const auto r = race<int>(
      {[]() -> std::optional<int> { ::usleep(5'000'000); return 1; }}, opts);
  const auto dt = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(report.over_budget, 1);
  // SIGTERM's default disposition kills the sleeping child immediately, so
  // the generous grace window must not delay the verdict to its full width.
  EXPECT_LT(dt, 1'000ms);
  EXPECT_EQ(gov.stats().term_escalations, 0u);
}

TEST(Governor, MultiArmAdmissionIsDeniedWhenTheBudgetIsBusy) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  GovernorConfig gc;
  gc.tokens = 2;
  gc.admit_wait = 30ms;
  SpeculationGovernor gov(gc);

  // Wider than the base budget can ever serve: denied without queueing.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(gov.admit(3), Admission::kDenied);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 20ms);

  // Fits the budget but the pool is busy: queues for admit_wait, then is
  // denied.
  ASSERT_EQ(gov.admit(1), Admission::kGranted);
  EXPECT_EQ(gov.admit(2), Admission::kDenied);
  const GovernorStats st = gov.stats();
  EXPECT_EQ(st.denied, 2u);
  EXPECT_EQ(st.waited, 0u);  // `waited` counts granted admissions that queued
  EXPECT_EQ(st.in_flight, 1);  // a denial holds nothing
  gov.release(1);
}

TEST(Governor, SingleArmOverdraftsInsteadOfStarving) {
  GovernorConfig gc;
  gc.tokens = 1;
  gc.admit_wait = 20ms;
  gc.serial_admit_wait = 30ms;
  SpeculationGovernor gov(gc);

  ASSERT_EQ(gov.admit(1), Admission::kGranted);  // budget now exhausted
  // n == 1 is the paper's sequential floor: it must eventually run even
  // with the budget occupied — as a sanctioned overdraft, not a denial.
  EXPECT_EQ(gov.admit(1), Admission::kOverdraft);
  const GovernorStats st = gov.stats();
  EXPECT_EQ(st.overdrafts, 1u);
  EXPECT_EQ(st.in_flight, 2);
  EXPECT_EQ(st.max_in_flight, 2);
  gov.release(2);
  EXPECT_EQ(gov.stats().in_flight, 0);
}

TEST(Governor, AdmissionQueueDrainsWhenTokensFree) {
  GovernorConfig gc;
  gc.tokens = 2;
  gc.admit_wait = 2'000ms;
  SpeculationGovernor gov(gc);

  ASSERT_EQ(gov.admit(2), Admission::kGranted);
  std::thread releaser([&] {
    std::this_thread::sleep_for(30ms);
    gov.release(2);
  });
  // Queues behind the busy budget, then gets in well before the deadline.
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(gov.admit(2), Admission::kGranted);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 1'000ms);
  releaser.join();
  EXPECT_GE(gov.stats().waited, 1u);
  gov.release(2);
}

TEST(Governor, DeniedBlockDegradesToSerializedAndStaysCorrect) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  GovernorConfig gc;
  gc.tokens = 1;
  gc.admit_wait = 20ms;
  gc.serial_admit_wait = 100ms;
  SpeculationGovernor gov(gc);

  RetryPolicy policy;
  policy.base_timeout = 5'000ms;
  RaceOptions opts;
  opts.governor = &gov;

  // Three arms against one token: concurrent admission is impossible, so
  // the supervisor must degrade to serialized forked arms. The failed
  // guard's side effects stay invisible (it ran in its own process), and
  // the first viable arm in PI order wins.
  static int leaked = 0;
  leaked = 0;
  SupervisionLog log;
  const auto r = supervised_race<int>(
      {[]() -> std::optional<int> { leaked = 99; return std::nullopt; },
       [] { return std::optional<int>(7); },
       [] { return std::optional<int>(8); }},
      policy, opts, &log);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7);
  EXPECT_EQ(r->winner, 2);
  EXPECT_TRUE(r->degraded);
  EXPECT_TRUE(log.degraded_serialized);
  EXPECT_EQ(leaked, 0);  // the losing arm's write never escaped its fork
  EXPECT_GE(gov.stats().degradations, 1u);
}

TEST(Governor, DegradeDisabledSurfacesTheDenialAsRetries) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  GovernorConfig gc;
  gc.tokens = 1;
  gc.admit_wait = 10ms;
  SpeculationGovernor gov(gc);
  ASSERT_EQ(gov.admit(1), Admission::kGranted);  // keep the budget busy

  RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = 1ms;
  policy.governor_degrade = false;
  policy.sequential_fallback = false;
  RaceOptions opts;
  opts.governor = &gov;
  SupervisionLog log;
  const auto r = supervised_race<int>({[] { return std::optional<int>(1); },
                                       [] { return std::optional<int>(2); }},
                                      policy, opts, &log);
  EXPECT_FALSE(r.has_value());
  ASSERT_EQ(log.attempts.size(), 2u);
  for (const auto& a : log.attempts) {
    EXPECT_EQ(a.outcome, AttemptOutcome::kAdmissionDenied);
  }
  gov.release(1);
}

TEST(Governor, PsiPressureShrinksTheEffectiveBudget) {
  GovernorConfig gc;
  gc.tokens = 8;
  gc.psi_shed_pct = 60.0;
  gc.psi_kill_pct = 90.0;
  // Fixture in the kernel's /proc/pressure format, stalled at 75 % — the
  // midpoint of the shed band, so roughly half the budget should remain.
  const std::string path =
      ::testing::TempDir() + "psi_fixture_" + std::to_string(::getpid());
  {
    std::ofstream out(path);
    out << "some avg10=75.00 avg60=12.00 avg300=3.00 total=123456\n"
        << "full avg10=10.00 avg60=1.00 avg300=0.00 total=6543\n";
  }
  gc.psi_path = path;
  SpeculationGovernor gov(gc);
  gov.poll_pressure_now();
  const int eff = gov.effective_tokens();
  EXPECT_LT(eff, 8);
  EXPECT_GE(eff, 1);  // never starves below the sequential floor
  EXPECT_GE(gov.stats().pressure_shrinks, 1u);

  // Pressure clearing restores the full budget.
  {
    std::ofstream out(path);
    out << "some avg10=0.00 avg60=0.00 avg300=0.00 total=123456\n";
  }
  gov.poll_pressure_now();
  EXPECT_EQ(gov.effective_tokens(), 8);
  std::remove(path.c_str());
}

TEST(Governor, ForkStormIsAbsorbedByInPlaceRetries) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  // fork_storm injects transient EAGAINs that clear after storm_tries
  // attempts; the in-place retry loop must ride them out and still run the
  // block. fork_fail stays permanent and must surface as SystemError.
  FaultProfile storm;
  storm.fork_storm = 1.0;
  storm.storm_tries = 2;
  FaultInjector storm_inj(/*seed=*/7, storm);
  RaceOptions opts;
  opts.fault = &storm_inj;
  const auto r = race<int>({[] { return std::optional<int>(5); }}, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 5);

  FaultProfile dead;
  dead.fork_fail = 1.0;
  FaultInjector dead_inj(/*seed=*/7, dead);
  RaceOptions dead_opts;
  dead_opts.fault = &dead_inj;
  EXPECT_THROW(race<int>({[] { return std::optional<int>(5); }}, dead_opts),
               SystemError);
}

TEST(Governor, EnvConfigRoundTrip) {
  ::setenv("ALTX_GOV_TOKENS", "6", 1);
  ::setenv("ALTX_GOV_WALL_MS", "1500", 1);
  ::setenv("ALTX_KILL_GRACE_MS", "25", 1);
  ::setenv("ALTX_GOV_PSI_SHED", "50", 1);
  const GovernorConfig gc = GovernorConfig::from_env();
  EXPECT_EQ(gc.tokens, 6);
  EXPECT_EQ(gc.arm_wall_budget, 1'500ms);
  EXPECT_EQ(gc.kill_grace, 25ms);
  EXPECT_DOUBLE_EQ(gc.psi_shed_pct, 50.0);
  EXPECT_TRUE(gc.any_enabled());
  ::unsetenv("ALTX_GOV_TOKENS");
  ::unsetenv("ALTX_GOV_WALL_MS");
  ::unsetenv("ALTX_KILL_GRACE_MS");
  ::unsetenv("ALTX_GOV_PSI_SHED");
  EXPECT_FALSE(GovernorConfig::from_env().any_enabled());
}

}  // namespace
}  // namespace altx::posix
