// Tests for the distributed alternative block: remote spawning, consensus
// commit, at-most-once under loss/crashes/partitions, the FAIL candidate,
// and best-effort elimination.
#include <gtest/gtest.h>

#include "dist/distributed.hpp"

namespace altx::dist {
namespace {

struct World {
  std::unique_ptr<net::Network> net;
  std::unique_ptr<DistributedBlock> block;
};

World make(std::vector<RemoteAlt> alts, DistConfig cfg = {},
           std::uint64_t seed = 1, double drop = 0.0) {
  World w;
  net::Network::Config nc;
  nc.node_count = static_cast<std::size_t>(cfg.arbiters) + 1 + alts.size();
  nc.base_latency = 2 * kMsec;
  nc.jitter = kMsec;
  nc.drop_rate = drop;
  nc.bytes_per_usec = 1.25;  // ~10 Mbit/s: a 70 KB checkpoint ~ 57 ms
  nc.seed = seed;
  w.net = std::make_unique<net::Network>(nc);
  w.block = std::make_unique<DistributedBlock>(*w.net, cfg, std::move(alts));
  return w;
}

TEST(Distributed, FastestAlternativeCommits) {
  auto w = make({RemoteAlt{500 * kMsec, true}, RemoteAlt{100 * kMsec, true},
                 RemoteAlt{300 * kMsec, true}});
  w.block->start();
  w.net->run();
  const auto& r = w.block->result();
  EXPECT_TRUE(r.committed);
  EXPECT_FALSE(r.failed);
  EXPECT_EQ(r.winner, 1);
  EXPECT_EQ(r.too_lates, 0);  // kills arrive before the losers finish
}

TEST(Distributed, CheckpointTransferDelaysTheStart) {
  // With a 10 Mbit/s link, a 1 MB checkpoint adds ~800 ms per spawn; the
  // commit time must reflect it.
  DistConfig small;
  small.checkpoint_bytes = 8 * 1024;
  auto ws = make({RemoteAlt{50 * kMsec, true}}, small, 2);
  ws.block->start();
  ws.net->run();

  DistConfig big;
  big.checkpoint_bytes = 1024 * 1024;
  auto wb = make({RemoteAlt{50 * kMsec, true}}, big, 2);
  wb.block->start();
  wb.net->run();

  ASSERT_TRUE(ws.block->result().committed);
  ASSERT_TRUE(wb.block->result().committed);
  EXPECT_GT(wb.block->result().decided_at,
            ws.block->result().decided_at + 500 * kMsec);
}

TEST(Distributed, GuardFailuresAreSkipped) {
  auto w = make({RemoteAlt{50 * kMsec, false}, RemoteAlt{200 * kMsec, true}});
  w.block->start();
  w.net->run();
  const auto& r = w.block->result();
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.winner, 1);
  EXPECT_EQ(r.aborts, 1);
}

TEST(Distributed, AllGuardsFailingFailsTheBlockQuickly) {
  DistConfig cfg;
  cfg.timeout = 60 * kSec;
  auto w = make({RemoteAlt{50 * kMsec, false}, RemoteAlt{80 * kMsec, false}}, cfg);
  w.block->start();
  w.net->run();
  const auto& r = w.block->result();
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(r.failed);
  EXPECT_EQ(r.aborts, 2);
  // Failure declared via the abort fast-path, far before the timeout.
  EXPECT_LT(r.decided_at, 5 * kSec);
}

TEST(Distributed, TimeoutMakesFailWinTheElection) {
  DistConfig cfg;
  cfg.timeout = 500 * kMsec;
  auto w = make({RemoteAlt{60 * kSec, true}, RemoteAlt{90 * kSec, true}}, cfg);
  w.block->start();
  w.net->run(20 * kSec);
  const auto& r = w.block->result();
  EXPECT_FALSE(r.committed);
  EXPECT_TRUE(r.failed);
  EXPECT_GE(r.decided_at, 500 * kMsec);
  EXPECT_LT(r.decided_at, 2 * kSec);
}

TEST(Distributed, StragglerAfterTimeoutIsRefusedBySemaphore) {
  // The alternative finishes after FAIL already took the semaphore: it must
  // be told "too late" and never commit.
  DistConfig cfg;
  cfg.timeout = 200 * kMsec;
  auto w = make({RemoteAlt{5 * kSec, true}}, cfg);
  w.block->start();
  w.net->run();
  const auto& r = w.block->result();
  EXPECT_TRUE(r.failed);
  EXPECT_FALSE(r.committed);
  EXPECT_EQ(r.too_lates, 1);
}

TEST(Distributed, AtMostOnceAcrossSeedsWithHeavyLoss) {
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    DistConfig cfg;
    cfg.timeout = 30 * kSec;
    auto w = make({RemoteAlt{100 * kMsec, true}, RemoteAlt{120 * kMsec, true},
                   RemoteAlt{140 * kMsec, true}},
                  cfg, seed, /*drop=*/0.2);
    w.block->start();
    w.net->run(120 * kSec);
    const auto& r = w.block->result();
    // Never both, never two winners; commitment survives loss via retries.
    EXPECT_FALSE(r.committed && r.failed) << "seed " << seed;
    if (r.committed) {
      EXPECT_GE(r.winner, 0);
      EXPECT_LE(r.winner, 2);
    }
  }
}

TEST(Distributed, LostResultIsRetransmittedUntilAcked) {
  // Cut the winner->coordinator link briefly: the result must still arrive
  // through periodic retransmission after the link heals.
  DistConfig cfg;
  cfg.timeout = 30 * kSec;
  auto w = make({RemoteAlt{100 * kMsec, true}}, cfg, 3);
  const NodeId worker = w.block->worker_node(0);
  const NodeId coord = w.block->coordinator_node();
  w.block->start();
  w.net->partition(worker, coord);
  // Heal well after the worker first tries to report. (Votes flow to the
  // arbiters on separate links, so the worker still wins the semaphore.)
  w.net->after(coord, 2 * kSec, [&] { w.net->heal(worker, coord); });
  w.net->run();
  const auto& r = w.block->result();
  EXPECT_TRUE(r.committed);
  EXPECT_GE(r.decided_at, 2 * kSec);
}

TEST(Distributed, WorkerCrashFallsBackToSibling) {
  DistConfig cfg;
  cfg.timeout = 30 * kSec;
  auto w = make({RemoteAlt{100 * kMsec, true}, RemoteAlt{400 * kMsec, true}}, cfg, 4);
  w.block->start();
  w.net->crash(w.block->worker_node(0));  // the faster node dies
  w.net->run();
  const auto& r = w.block->result();
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.winner, 1);
}

TEST(Distributed, AllWorkersCrashedTimesOut) {
  DistConfig cfg;
  cfg.timeout = kSec;
  auto w = make({RemoteAlt{100 * kMsec, true}, RemoteAlt{100 * kMsec, true}}, cfg, 5);
  w.block->start();
  w.net->crash(w.block->worker_node(0));
  w.net->crash(w.block->worker_node(1));
  w.net->run();
  EXPECT_TRUE(w.block->result().failed);
  EXPECT_FALSE(w.block->result().committed);
}

TEST(Distributed, MinorityArbiterCrashStillCommits) {
  DistConfig cfg;
  cfg.arbiters = 5;
  cfg.timeout = 30 * kSec;
  auto w = make({RemoteAlt{100 * kMsec, true}}, cfg, 6);
  w.net->crash(0);
  w.net->crash(1);
  w.block->start();
  w.net->run();
  EXPECT_TRUE(w.block->result().committed);
}

TEST(Distributed, SingleArbiterIsTheDegenerateCase) {
  DistConfig cfg;
  cfg.arbiters = 1;
  auto w = make({RemoteAlt{100 * kMsec, true}, RemoteAlt{110 * kMsec, true}}, cfg, 7);
  w.block->start();
  w.net->run();
  const auto& r = w.block->result();
  EXPECT_TRUE(r.committed);
  EXPECT_EQ(r.winner, 0);
}

}  // namespace
}  // namespace altx::dist
