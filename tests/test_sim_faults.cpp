// Failure injection and remote-state-transfer tests for the kernel
// simulator: node crashes during speculative execution, rfork onto dead
// nodes, and the checkpoint vs on-demand (Theimer) migration trade-off.
#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

Kernel::Config lan_cfg(int nodes, int cpus = 1) {
  Kernel::Config cfg;
  cfg.machine = MachineModel::workstation_lan(nodes, cpus);
  cfg.address_space_pages = 17;  // 70 KB at 4K pages, the paper's rfork image
  return cfg;
}

TEST(SimFaults, NodeCrashKillsItsAlternativeSiblingWins) {
  Kernel k(lan_cfg(2));
  // Alternative 0 runs locally (node 0); alternative 1 lands on node 1,
  // which dies mid-computation. The local alternative must still win.
  auto local = ProgramBuilder().compute(5 * kSec).write(0, 0, 1).build();
  auto remote = ProgramBuilder().compute(3 * kSec).write(0, 0, 2).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({local, remote}).build());
  k.crash_node_at(1, 2 * kSec);  // remote would have won at ~3.5s
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 1u);
  EXPECT_TRUE(k.node_crashed(1));
}

TEST(SimFaults, CrashOfTheOnlyViableNodeFailsViaTimeout) {
  Kernel k(lan_cfg(2));
  auto remote_only = ProgramBuilder().compute(5 * kSec).build();
  auto on_fail = ProgramBuilder().write(0, 0, 0xf).build();
  // Both alternatives on node 1 is not expressible (round-robin placement),
  // so use one alternative placed locally... instead crash node 0's child by
  // crashing node 1 where alternative 1 lives, and make alternative 0 abort.
  auto aborting = ProgramBuilder().compute(100 * kMsec).abort().build();
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt({aborting, remote_only}, 20 * kSec, on_fail).build());
  k.crash_node_at(1, kSec);
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 0xfu);
  // The block failed when the last world died — long before the timeout.
  // (stats().finished_at includes draining the stale timeout event, so the
  // parent's own completion time is the right measure.)
  EXPECT_LT(k.process(pid)->finished_at_, 10 * kSec);
  EXPECT_EQ(k.stats().alt_timeouts, 0u);
}

TEST(SimFaults, SpawnOntoAlreadyCrashedNodeAbortsThatAlternative) {
  Kernel k(lan_cfg(3));
  k.crash_node_at(1, 1);  // node 1 dies before the block starts
  auto a = ProgramBuilder().compute(100 * kMsec).write(0, 0, 1).build();
  auto prog = ProgramBuilder()
                  .compute(10 * kMsec)  // let the crash event fire first
                  .alt({a, a, a})
                  .build();
  const Pid pid = k.spawn_root(prog);
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 1u);  // survivors still race
  // One alternative (the one mapped to node 1) was stillborn.
  std::size_t aborted = 0;
  for (Pid p : k.all_pids()) {
    if (k.exit_kind(p) == ExitKind::kAborted) ++aborted;
  }
  EXPECT_EQ(aborted, 1u);
}

TEST(SimFaults, CrashKillsWholeSubtreeOnTheNode) {
  Kernel k(lan_cfg(2, 4));
  // The remote alternative opens a nested block whose children also live on
  // remote/local nodes; when node 1 dies, the nested parent dies and its
  // children must not linger.
  auto leaf = ProgramBuilder().compute(8 * kSec).build();
  auto nested = ProgramBuilder().alt({leaf, leaf}).build();
  auto local = ProgramBuilder().compute(6 * kSec).write(0, 0, 1).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({local, nested}).build());
  k.crash_node_at(1, 3 * kSec);
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 1u);
  EXPECT_TRUE(k.blocked_pids().empty());
  for (Pid p : k.all_pids()) {
    const auto st = k.process(p)->state_;
    EXPECT_TRUE(st == ProcState::kDone || st == ProcState::kDead);
  }
}

// ---------------------------------------------------------------------------
// Checkpoint vs on-demand state transfer (section 4.4 / Theimer 1985)
// ---------------------------------------------------------------------------

SimTime remote_elapsed(RemoteSpawn strategy, int pages_touched) {
  auto cfg = lan_cfg(2);
  cfg.address_space_pages = 64;  // a big image: 256 KB
  cfg.remote_spawn = strategy;
  Kernel k(cfg);
  // Force the interesting child remote by making the local one abort fast.
  auto local = ProgramBuilder().abort().build();
  ProgramBuilder remote;
  remote.compute(10 * kMsec);
  for (int i = 0; i < pages_touched; ++i) {
    remote.read(static_cast<VPage>(i));
  }
  const Pid pid = k.spawn_root(ProgramBuilder().alt({local, remote.build()}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  return k.stats().finished_at;
}

TEST(SimFaults, OnDemandWinsForSmallWorkingSets) {
  // Touching 4 of 64 pages: shipping the whole image up front is wasteful.
  EXPECT_LT(remote_elapsed(RemoteSpawn::kOnDemand, 4),
            remote_elapsed(RemoteSpawn::kCheckpoint, 4));
}

TEST(SimFaults, CheckpointWinsWhenEverythingIsTouched) {
  // Touching all 64 pages: per-page faults pay 64 network latencies, the
  // bulk checkpoint amortises them.
  EXPECT_GT(remote_elapsed(RemoteSpawn::kOnDemand, 64),
            remote_elapsed(RemoteSpawn::kCheckpoint, 64));
}

TEST(SimFaults, ResidentPagesFaultOnlyOnce) {
  // Re-touching a faulted-over page must not pay the network again: the
  // elapsed difference between one touch and five touches of the SAME page
  // is a few memory references, far below one transfer.
  auto run_touches = [](int touches) {
    auto cfg = lan_cfg(2);
    cfg.address_space_pages = 8;
    cfg.remote_spawn = RemoteSpawn::kOnDemand;
    Kernel k(cfg);
    auto local = ProgramBuilder().abort().build();
    ProgramBuilder remote;
    for (int i = 0; i < touches; ++i) remote.read(3);
    remote.compute(1 * kMsec);
    k.spawn_root(ProgramBuilder().alt({local, remote.build()}).build());
    return k.run();
  };
  const SimTime once = run_touches(1);
  const SimTime five = run_touches(5);
  const SimTime transfer =
      MachineModel::workstation_lan(2).transfer_cost(4096);
  EXPECT_LT(five - once, transfer / 2);
}

}  // namespace
}  // namespace altx::sim
