// Unit tests pinning the machine-model calibration to the paper's
// section 4.4 constants — these are load-bearing for every experiment.
#include <gtest/gtest.h>

#include "sim/machine.hpp"

namespace altx::sim {
namespace {

TEST(MachineModel, Att3b2ReproducesThePapersForkTime) {
  const MachineModel m = MachineModel::att3b2();
  // 320 KB / 2 KB pages = 160 pages -> ~31 ms.
  const SimTime fork = m.fork_cost(320 * 1024 / m.page_size);
  EXPECT_NEAR(static_cast<double>(fork), 31 * kMsec, 0.5 * kMsec);
}

TEST(MachineModel, Hp9000ReproducesThePapersForkTime) {
  const MachineModel m = MachineModel::hp9000_350();
  const SimTime fork = m.fork_cost(320 * 1024 / m.page_size);
  EXPECT_NEAR(static_cast<double>(fork), 12 * kMsec, 0.5 * kMsec);
}

TEST(MachineModel, PageCopyServiceRatesMatchThePaper) {
  // 326 2K-pages/s and 1034 4K-pages/s.
  EXPECT_NEAR(1e6 / static_cast<double>(MachineModel::att3b2().page_copy), 326,
              2.0);
  EXPECT_NEAR(1e6 / static_cast<double>(MachineModel::hp9000_350().page_copy),
              1034, 5.0);
}

TEST(MachineModel, LanRforkOf70KIsJustUnderASecond) {
  const MachineModel m = MachineModel::workstation_lan(2);
  const SimTime r = m.rfork_cost(70 * 1024);
  EXPECT_GT(r, 700 * kMsec);
  EXPECT_LT(r, kSec);
}

TEST(MachineModel, TransferCostIsLatencyPlusSizeOverBandwidth) {
  MachineModel m = MachineModel::hp9000_350();
  m.net_latency = 3 * kMsec;
  m.net_bytes_per_usec = 2.0;
  EXPECT_EQ(m.transfer_cost(0), 3 * kMsec);
  EXPECT_EQ(m.transfer_cost(4000), 3 * kMsec + 2000);
}

TEST(MachineModel, ForkCostLinearInPages) {
  const MachineModel m = MachineModel::hp9000_350();
  const SimTime base = m.fork_cost(0);
  EXPECT_EQ(m.fork_cost(100) - base, 100 * m.per_page_map);
  EXPECT_EQ(m.fork_cost(200) - base, 200 * m.per_page_map);
}

TEST(MachineModel, ValidationRejectsBadConfigs) {
  MachineModel m = MachineModel::hp9000_350();
  m.page_size = 16;
  EXPECT_THROW(m.validate(), UsageError);
  m = MachineModel::hp9000_350();
  m.net_bytes_per_usec = 0;
  EXPECT_THROW(m.validate(), UsageError);
  m = MachineModel::hp9000_350();
  m.nodes = 0;
  EXPECT_THROW(m.validate(), UsageError);
}

TEST(MachineModel, TotalCpus) {
  EXPECT_EQ(MachineModel::workstation_lan(3, 2).total_cpus(), 6);
  EXPECT_EQ(MachineModel::shared_memory_mp(8).total_cpus(), 8);
}

}  // namespace
}  // namespace altx::sim
