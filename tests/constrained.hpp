// Helpers for tests that fork cohorts or allocate aggressively: detect when
// the environment itself is resource-constrained (a CI sandbox with a tight
// RLIMIT_NPROC or RLIMIT_AS) so those tests can GTEST_SKIP instead of
// reporting spurious failures that are really the sandbox's doing.
//
//   TEST(Foo, ManyChildren) {
//     ALTX_SKIP_IF_CONSTRAINED(/*procs=*/64, /*address_mb=*/512);
//     ...
//   }
#pragma once

#include <sys/resource.h>
#include <unistd.h>

#include <cstdint>

namespace altx::test {

/// True when the soft RLIMIT_NPROC leaves fewer than `procs` slots beyond
/// the processes this user already runs. Unlimited counts as roomy.
inline bool nproc_below(int procs) {
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_NPROC, &rl) != 0) return false;
  if (rl.rlim_cur == RLIM_INFINITY) return false;
  return rl.rlim_cur < static_cast<rlim_t>(procs);
}

/// True when the soft RLIMIT_AS caps the address space under `mb` MiB.
inline bool address_space_below(std::uint64_t mb) {
  struct rlimit rl{};
  if (::getrlimit(RLIMIT_AS, &rl) != 0) return false;
  if (rl.rlim_cur == RLIM_INFINITY) return false;
  return rl.rlim_cur < mb * (1ULL << 20);
}

}  // namespace altx::test

/// Skips the current test when the environment cannot fork `procs`
/// processes or address `address_mb` MiB. Use in tests whose failure mode
/// under those limits would be an EAGAIN/ENOMEM cascade, not a real bug.
#define ALTX_SKIP_IF_CONSTRAINED(procs, address_mb)                       \
  do {                                                                    \
    if (altx::test::nproc_below(procs)) {                                 \
      GTEST_SKIP() << "RLIMIT_NPROC below " << (procs)                    \
                   << "; constrained environment";                        \
    }                                                                     \
    if (altx::test::address_space_below(address_mb)) {                    \
      GTEST_SKIP() << "RLIMIT_AS below " << (address_mb)                  \
                   << " MiB; constrained environment";                    \
    }                                                                     \
  } while (0)
