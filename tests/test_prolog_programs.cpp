// Larger Prolog programs exercising the engine end to end: map coloring,
// list utilities, arithmetic recursion, graph search, and engine edge cases.
#include <gtest/gtest.h>

#include "prolog/or_parallel.hpp"
#include "prolog/solver.hpp"

namespace altx::prolog {
namespace {

TEST(PrologPrograms, MapColoringAustralia) {
  Database db;
  db.consult(R"(
    color(red). color(green). color(blue).
    diff(X, Y) :- color(X), color(Y), neq(X, Y).
    neq(red, green). neq(red, blue).
    neq(green, red). neq(green, blue).
    neq(blue, red). neq(blue, green).
    australia(WA, NT, SA, Q, NSW, V) :-
      diff(WA, NT), diff(WA, SA), diff(NT, SA), diff(NT, Q),
      diff(SA, Q), diff(SA, NSW), diff(SA, V), diff(Q, NSW), diff(NSW, V).
  )");
  Solver s(db);
  const auto sol = s.solve_first(
      parse_query(db.symbols, "australia(WA, NT, SA, Q, NSW, V)"));
  ASSERT_TRUE(sol.has_value());
  // Verify the coloring constraints on the reported solution.
  const auto c = [&](const char* v) { return sol->at(v); };
  EXPECT_NE(c("WA"), c("NT"));
  EXPECT_NE(c("WA"), c("SA"));
  EXPECT_NE(c("SA"), c("Q"));
  EXPECT_NE(c("NSW"), c("V"));
}

TEST(PrologPrograms, NaiveReverse) {
  Database db;
  db.consult(R"(
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
    nrev([], []).
    nrev([H|T], R) :- nrev(T, RT), append(RT, [H], R).
  )");
  Solver s(db);
  const auto sol =
      s.solve_first(parse_query(db.symbols, "nrev([1,2,3,4,5,6,7,8], R)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("R"), "[8,7,6,5,4,3,2,1]");
}

TEST(PrologPrograms, FactorialAndGcd) {
  Database db;
  db.consult(R"(
    fact(0, 1).
    fact(N, F) :- N > 0, M is N - 1, fact(M, G), F is N * G.
    gcd(X, 0, X) :- !.
    gcd(X, Y, G) :- Y > 0, R is X mod Y, gcd(Y, R, G).
  )");
  Solver s(db);
  auto f = s.solve_first(parse_query(db.symbols, "fact(10, F)"));
  ASSERT_TRUE(f.has_value());
  EXPECT_EQ(f->at("F"), "3628800");
  auto g = s.solve_first(parse_query(db.symbols, "gcd(48, 36, G)"));
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->at("G"), "12");
}

TEST(PrologPrograms, LengthAndNth) {
  Database db;
  db.consult(R"(
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
    nth(0, [X|_], X).
    nth(N, [_|T], X) :- N > 0, M is N - 1, nth(M, T, X).
  )");
  Solver s(db);
  auto l = s.solve_first(parse_query(db.symbols, "len([a,b,c,d], N)"));
  ASSERT_TRUE(l.has_value());
  EXPECT_EQ(l->at("N"), "4");
  auto n = s.solve_first(parse_query(db.symbols, "nth(2, [a,b,c,d], X)"));
  ASSERT_TRUE(n.has_value());
  EXPECT_EQ(n->at("X"), "c");
}

TEST(PrologPrograms, GraphReachabilityWithCycles) {
  // Reachability over a cyclic graph needs a visited set; this encoding uses
  // bounded depth instead (no negation in the engine).
  Database db;
  db.consult(R"(
    edge(a, b). edge(b, c). edge(c, a). edge(c, d).
    reach(X, X, _).
    reach(X, Z, D) :- D > 0, edge(X, Y), E is D - 1, reach(Y, Z, E).
  )");
  Solver s(db);
  EXPECT_TRUE(s.solve_first(parse_query(db.symbols, "reach(a, d, 5)")).has_value());
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "reach(d, a, 5)")).has_value());
}

TEST(PrologPrograms, ZebraLikePuzzle) {
  // A scaled-down constraints puzzle: three houses, three owners, three pets.
  Database db;
  db.consult(R"(
    perm3(A, B, C) :- sel(A, [1,2,3], R1), sel(B, R1, R2), sel(C, R2, []).
    sel(X, [X|T], T).
    sel(X, [H|T], [H|R]) :- sel(X, T, R).
    puzzle(Alice, Bob, Carol, Dog, Cat, Fish) :-
      perm3(Alice, Bob, Carol),
      perm3(Dog, Cat, Fish),
      Alice =:= Dog,         % alice owns the dog
      Bob =\= Cat,           % bob is allergic to cats
      Carol =\= 1.           % carol does not live in house 1
  )");
  Solver s(db);
  const auto sols = s.solve_all(
      parse_query(db.symbols, "puzzle(Alice, Bob, Carol, Dog, Cat, Fish)"));
  ASSERT_FALSE(sols.empty());
  for (const auto& sol : sols) {
    EXPECT_EQ(sol.at("Alice"), sol.at("Dog"));
    EXPECT_NE(sol.at("Bob"), sol.at("Cat"));
    EXPECT_NE(sol.at("Carol"), "1");
  }
}

TEST(PrologPrograms, EightQueensFirstSolution) {
  Database db;
  db.consult(R"(
    queens(N, Qs) :- range(1, N, Ns), perm(Ns, Qs), safe(Qs).
    range(L, H, [L|T]) :- L < H, L1 is L + 1, range(L1, H, T).
    range(H, H, [H]).
    perm([], []).
    perm(L, [H|T]) :- select(H, L, R), perm(R, T).
    select(X, [X|T], T).
    select(X, [H|T], [H|R]) :- select(X, T, R).
    safe([]).
    safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).
    noattack(_, [], _).
    noattack(Q, [Q1|Qs], D) :-
      Q =\= Q1, Q1 - Q =\= D, Q - Q1 =\= D,
      D1 is D + 1, noattack(Q, Qs, D1).
  )");
  Solver s(db);
  const auto sol = s.solve_first(parse_query(db.symbols, "queens(8, Qs)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("Qs"), "[1,5,8,6,3,7,2,4]");  // standard DFS first solution
}

TEST(PrologPrograms, CutAtQueryLevelStopsAllAlternatives) {
  Database db;
  db.consult("n(1). n(2). n(3).");
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "n(X), !"));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].at("X"), "1");
}

TEST(PrologPrograms, UnknownPredicateSimplyFails) {
  Database db;
  db.consult("a(1).");
  Solver s(db);
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "nonexistent(X)")).has_value());
}

TEST(PrologPrograms, UnboundGoalFails) {
  Database db;
  db.consult("a(1).");
  Solver s(db);
  // Calling an unbound variable as a goal fails (no call/1 support).
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "G")).has_value());
}

TEST(PrologPrograms, DivisionByZeroFailsTheGoal) {
  Database db;
  db.consult("a(1).");
  Solver s(db);
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "X is 1 // 0")).has_value());
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "X is 1 mod 0")).has_value());
}

TEST(PrologPrograms, OrParallelQueensAcrossFirstColumnChoice) {
  // OR-parallelism at the perm choice point of n-queens: each world pins a
  // different first selection. All worlds that find solutions must find
  // valid ones.
  Database db;
  db.consult(R"(
    q6(Qs) :- solve6([1,2,3,4,5,6], Qs).
    solve6(Ns, Qs) :- perm(Ns, Qs), safe(Qs).
    perm([], []).
    perm(L, [H|T]) :- select(H, L, R), perm(R, T).
    select(X, [X|T], T).
    select(X, [H|T], [H|R]) :- select(X, T, R).
    safe([]).
    safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).
    noattack(_, [], _).
    noattack(Q, [Q1|Qs], D) :-
      Q =\= Q1, Q1 - Q =\= D, Q - Q1 =\= D,
      D1 is D + 1, noattack(Q, Qs, D1).
  )");
  const auto q = parse_query(db.symbols, "q6(Qs)");
  const auto r = solve_or_parallel(db, q);
  ASSERT_TRUE(r.found);
  // Any of the four 6-queens solutions is acceptable (nondeterministic
  // selection); check shape: a list of six distinct columns.
  EXPECT_EQ(r.solution.at("Qs").front(), '[');
}

}  // namespace
}  // namespace altx::prolog

namespace altx::prolog {
namespace {

// ---------------------------------------------------------------------------
// Extended builtins: \+, call/1, findall/3
// ---------------------------------------------------------------------------

TEST(PrologBuiltins, NegationAsFailure) {
  Database db;
  db.consult(R"(
    bird(tweety). bird(sam).
    penguin(sam).
    flies(X) :- bird(X), \+ penguin(X).
  )");
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "flies(X)"));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].at("X"), "tweety");
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "flies(sam)")).has_value());
}

TEST(PrologBuiltins, NegationBindsNothing) {
  Database db;
  db.consult("p(1).");
  Solver s(db);
  // \+ q(X) succeeds without binding X; the subsequent unification still works.
  const auto sol = s.solve_first(parse_query(db.symbols, "\\+ q(X), X = 5"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("X"), "5");
}

TEST(PrologBuiltins, DoubleNegation) {
  Database db;
  db.consult("p(1).");
  Solver s(db);
  EXPECT_TRUE(s.solve_first(parse_query(db.symbols, "\\+ \\+ p(1)")).has_value());
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "\\+ p(1)")).has_value());
}

TEST(PrologBuiltins, CallInvokesBoundGoal) {
  Database db;
  db.consult(R"(
    p(1). p(2).
    apply(G) :- call(G).
  )");
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "G = p(X), apply(G)"));
  EXPECT_EQ(sols.size(), 2u);
  // call with an unbound goal fails rather than crashing.
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "call(Unbound)")).has_value());
}

TEST(PrologBuiltins, CutInsideCallIsLocal) {
  // The reader has no (G1, G2) term syntax, so the cut is wrapped in a
  // helper predicate invoked through call/1; the cut must stay local to it.
  Database db;
  db.consult(R"(
    n(1). n(2). n(3).
    pick(X) :- n(X), !.
    firstish(X) :- call(pick(X)).
  )");
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "firstish(X)"));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].at("X"), "1");
}

TEST(PrologBuiltins, FindallCollectsAllWitnesses) {
  Database db;
  db.consult("p(1). p(2). p(3).");
  Solver s(db);
  const auto sol = s.solve_first(parse_query(db.symbols, "findall(X, p(X), L)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("L"), "[1,2,3]");
}

TEST(PrologBuiltins, FindallOnFailingGoalGivesEmptyList) {
  Database db;
  db.consult("p(1).");
  Solver s(db);
  const auto sol = s.solve_first(parse_query(db.symbols, "findall(X, q(X), L)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("L"), "[]");
}

TEST(PrologBuiltins, FindallWithComputedTemplate) {
  Database db;
  db.consult(R"(
    p(1). p(2).
    dbl(X, Y) :- p(X), Y is X * 2.
  )");
  Solver s(db);
  const auto sol =
      s.solve_first(parse_query(db.symbols, "findall(Y, dbl(_, Y), L)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("L"), "[2,4]");
}

TEST(PrologBuiltins, FindallDoesNotLeakBindings) {
  Database db;
  db.consult("p(1). p(2).");
  Solver s(db);
  const auto sol = s.solve_first(
      parse_query(db.symbols, "findall(X, p(X), L), X = free"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("X"), "free");  // X stayed unbound by the sub-search
}

TEST(PrologBuiltins, SetDifferenceWithNegation) {
  Database db;
  db.consult(R"(
    item(a). item(b). item(c).
    sold(b).
    unsold(X) :- item(X), \+ sold(X).
  )");
  Solver s(db);
  const auto sol =
      s.solve_first(parse_query(db.symbols, "findall(X, unsold(X), L)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("L"), "[a,c]");
}

}  // namespace
}  // namespace altx::prolog
