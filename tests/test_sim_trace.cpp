// Tests for the kernel's structured trace stream.
#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

using Kind = TraceEvent::Kind;

struct Capture {
  std::vector<TraceEvent> events;

  Kernel::Config cfg(int cpus = 4) {
    Kernel::Config c;
    c.machine = MachineModel::shared_memory_mp(cpus);
    c.address_space_pages = 8;
    c.trace = [this](const TraceEvent& ev) { events.push_back(ev); };
    return c;
  }

  [[nodiscard]] std::size_t count(Kind k) const {
    std::size_t n = 0;
    for (const auto& ev : events) {
      if (ev.kind == k) ++n;
    }
    return n;
  }

  [[nodiscard]] const TraceEvent* first(Kind k) const {
    for (const auto& ev : events) {
      if (ev.kind == k) return &ev;
    }
    return nullptr;
  }
};

TEST(SimTrace, RaceEmitsSpawnsCommitAndElimination) {
  Capture cap;
  Kernel k(cap.cfg());
  auto fast = ProgramBuilder().compute(10 * kMsec).build();
  auto slow = ProgramBuilder().compute(90 * kMsec).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({fast, slow}).build());
  k.run();
  EXPECT_EQ(cap.count(Kind::kSpawn), 3u);  // root + two alternates
  EXPECT_EQ(cap.count(Kind::kCommit), 1u);
  EXPECT_EQ(cap.count(Kind::kEliminate), 1u);
  EXPECT_EQ(cap.count(Kind::kComplete), 1u);
  const TraceEvent* commit = cap.first(Kind::kCommit);
  ASSERT_NE(commit, nullptr);
  EXPECT_EQ(commit->other, pid);  // winner commits into the parent
}

TEST(SimTrace, EventsAreTimeOrdered) {
  Capture cap;
  Kernel k(cap.cfg());
  auto a = ProgramBuilder().compute(5 * kMsec).build();
  auto b = ProgramBuilder().compute(50 * kMsec).build();
  k.spawn_root(ProgramBuilder().alt({a, b}).alt({a, b}).build());
  k.run();
  for (std::size_t i = 1; i < cap.events.size(); ++i) {
    EXPECT_LE(cap.events[i - 1].time, cap.events[i].time);
  }
}

TEST(SimTrace, GuardFailureTracesAbortAndBlockFail) {
  Capture cap;
  Kernel k(cap.cfg());
  auto bad = ProgramBuilder().abort().build();
  auto on_fail = ProgramBuilder().write(0, 0, 1).build();
  k.spawn_root(ProgramBuilder().alt({bad, bad}, 0, on_fail).build());
  k.run();
  EXPECT_EQ(cap.count(Kind::kAbort), 2u);
  EXPECT_EQ(cap.count(Kind::kBlockFail), 1u);
  EXPECT_EQ(cap.count(Kind::kCommit), 0u);
}

TEST(SimTrace, TimeoutTraced) {
  Capture cap;
  Kernel k(cap.cfg());
  auto eternal = ProgramBuilder().compute(kSec * 100).build();
  auto on_fail = ProgramBuilder().build();
  k.spawn_root(ProgramBuilder().alt({eternal}, 50 * kMsec, on_fail).build());
  k.run();
  EXPECT_EQ(cap.count(Kind::kTimeout), 1u);
}

TEST(SimTrace, WorldSplitAndDeliveryTraced) {
  Capture cap;
  Kernel k(cap.cfg());
  auto talker = ProgramBuilder()
                    .compute(2 * kMsec)
                    .send_u64(5, 1)
                    .compute(30 * kMsec)
                    .build();
  auto rival = ProgramBuilder().compute(60 * kMsec).build();
  k.spawn_root(ProgramBuilder().alt({talker, rival}).build());
  k.spawn_root(ProgramBuilder().bind(5).recv(0, 0).build());
  k.run();
  EXPECT_GE(cap.count(Kind::kDeliver), 1u);
  EXPECT_EQ(cap.count(Kind::kWorldSplit), 1u);
  const TraceEvent* split = cap.first(Kind::kWorldSplit);
  ASSERT_NE(split, nullptr);
  EXPECT_NE(split->pid, split->other);  // original and clone differ
}

TEST(SimTrace, SourceWriteTracedOnlyWhenObservable) {
  Capture cap;
  Kernel k(cap.cfg());
  auto child = ProgramBuilder().compute(5 * kMsec).build();
  k.spawn_root(ProgramBuilder()
                   .alt({child})
                   .source_write(0, Bytes{1})
                   .build());
  k.run();
  EXPECT_EQ(cap.count(Kind::kSourceWrite), 1u);
}

TEST(SimTrace, NoTraceSinkMeansNoOverheadPath) {
  // Merely ensures the no-trace configuration still runs (the common case).
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(2);
  cfg.address_space_pages = 4;
  Kernel k(cfg);
  auto a = ProgramBuilder().compute(kMsec).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({a}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
}

TEST(SimTrace, KindNamesAreStable) {
  EXPECT_STREQ(to_string(Kind::kSpawn), "spawn");
  EXPECT_STREQ(to_string(Kind::kCommit), "commit");
  EXPECT_STREQ(to_string(Kind::kWorldSplit), "world-split");
  EXPECT_STREQ(to_string(Kind::kNodeCrash), "node-crash");
}

}  // namespace
}  // namespace altx::sim
