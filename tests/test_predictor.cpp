// Tests for the SpeculationPlanner (src/posix/predictor.*) and the
// prediction wiring through race<T>() and the governor's watchdog: plan
// partitioning over synthetic histories (launch / hedge / skip), staged
// hedges that sleep out the leader's predicted quantile, early kills of
// arms past their own historical kill quantile (ChildFate::kPredictedLoser)
// with the last-live-arm and winner-commit-precedence safety rules, the
// cold-store ≡ predict-off equivalence, and the ALTX_PRED_* env knobs.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <string>

#include "constrained.hpp"
#include "obs/history.hpp"
#include "obs/trace.hpp"
#include "posix/governor.hpp"
#include "posix/predictor.hpp"
#include "posix/race.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;
using obs::EventKind;
using obs::Record;

constexpr std::uint64_t kSite = 0xfeed'0001;
constexpr std::uint64_t kMs = 1'000'000;

/// `samples` identical observations of (wall, success) for one arm — the
/// quantiles collapse to the single bucket, which makes the expected plan
/// easy to state exactly.
void teach(obs::HistoryStore& store, std::uint32_t arm, std::uint64_t wall_ns,
           bool success, int samples = 10) {
  for (int s = 0; s < samples; ++s) {
    store.record(kSite, arm, wall_ns, wall_ns / 2, success);
  }
}

PredictorConfig test_config() {
  PredictorConfig c;
  c.enabled = true;
  return c;
}

int count_kind(const std::vector<Record>& recs, EventKind kind) {
  int n = 0;
  for (const Record& r : recs) n += r.kind == kind ? 1 : 0;
  return n;
}

// ---------------------------------------------------------------- planner

TEST(Predictor, ColdStorePlanIsInactiveAllLaunch) {
  obs::HistoryStore store(64);
  SpeculationPlanner planner(test_config(), &store);
  const SpeculationPlan p = planner.plan(kSite, 3, /*under_pressure=*/false);
  EXPECT_FALSE(p.active);
  EXPECT_EQ(p.launched, 3);
  EXPECT_EQ(p.hedged, 0);
  EXPECT_EQ(p.skipped, 0);
  for (const ArmPlan& a : p.arms) {
    EXPECT_EQ(a.decision, ArmDecision::kLaunch);
    EXPECT_EQ(a.kill_after_ns, 0u);  // no history, never predicted-killed
  }
  // No store at all degenerates the same way.
  SpeculationPlanner storeless(test_config(), nullptr);
  EXPECT_FALSE(storeless.plan(kSite, 3, false).active);
}

TEST(Predictor, FastReliableArmLeadsAndSlowArmIsHedged) {
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, /*success=*/true);
  teach(store, 2, 20 * kMs, /*success=*/false);
  SpeculationPlanner planner(test_config(), &store);
  const SpeculationPlan p = planner.plan(kSite, 2, false);
  ASSERT_TRUE(p.active);
  EXPECT_EQ(p.leader, 1);
  EXPECT_EQ(p.arms[0].decision, ArmDecision::kLaunch);
  EXPECT_EQ(p.arms[1].decision, ArmDecision::kHedge);
  EXPECT_EQ(p.launched, 1);
  EXPECT_EQ(p.hedged, 1);
  // The stage delay is the leader's predicted wall times the slack, and
  // the hedged arm's kill deadline shifts by it (the sleep is not the
  // arm's fault).
  const auto stage = static_cast<std::uint64_t>(
      static_cast<double>(p.arms[0].predicted_wall_ns) * 1.25);
  EXPECT_EQ(p.arms[1].stage_after_ns, stage);
  EXPECT_GT(p.arms[1].kill_after_ns, stage);
  EXPECT_GT(p.arms[0].kill_after_ns, 0u);
  EXPECT_EQ(p.arms[0].stage_after_ns, 0u);
}

TEST(Predictor, ZeroHistoryArmAlwaysLaunches) {
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  SpeculationPlanner planner(test_config(), &store);
  const SpeculationPlan p = planner.plan(kSite, 3, /*under_pressure=*/true);
  ASSERT_TRUE(p.active);
  // Arms 2 and 3 have no samples: exploration demands they run, with no
  // kill deadline — prediction never fires at an arm it knows nothing
  // about.
  for (const std::uint32_t arm : {2u, 3u}) {
    const ArmPlan* a = p.plan_for(arm);
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a->decision, ArmDecision::kLaunch);
    EXPECT_EQ(a->predicted_wall_ns, 0u);
    EXPECT_EQ(a->kill_after_ns, 0u);
  }
  EXPECT_EQ(p.launched, 3);
}

TEST(Predictor, ArmWithinHedgeRatioLaunchesWithDeadline) {
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 3 * kMs, true);  // 1.5x the leader: well under 4.0
  SpeculationPlanner planner(test_config(), &store);
  const SpeculationPlan p = planner.plan(kSite, 2, false);
  ASSERT_TRUE(p.active);
  EXPECT_EQ(p.arms[1].decision, ArmDecision::kLaunch);
  EXPECT_GT(p.arms[1].kill_after_ns, 0u);
  EXPECT_EQ(p.launched, 2);
}

TEST(Predictor, DominatedArmSkipsOnlyUnderPressureAndWhenEnabled) {
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 20 * kMs, /*success=*/false);  // slow AND never wins
  PredictorConfig cfg = test_config();
  SpeculationPlanner planner(cfg, &store);
  EXPECT_EQ(planner.plan(kSite, 2, false).arms[1].decision,
            ArmDecision::kHedge);
  const SpeculationPlan pressured = planner.plan(kSite, 2, true);
  EXPECT_EQ(pressured.arms[1].decision, ArmDecision::kSkip);
  EXPECT_EQ(pressured.arms[1].kill_after_ns, 0u);  // nothing runs, no kill
  EXPECT_EQ(pressured.skipped, 1);

  cfg.skip_enabled = false;  // the checker's stance: never short-circuit
  SpeculationPlanner no_skip(cfg, &store);
  EXPECT_EQ(no_skip.plan(kSite, 2, true).arms[1].decision,
            ArmDecision::kHedge);
}

TEST(Predictor, SlowButWinningArmIsHedgedNotSkipped) {
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 20 * kMs, /*success=*/true);  // slow but it does win
  SpeculationPlanner planner(test_config(), &store);
  const SpeculationPlan p = planner.plan(kSite, 2, /*under_pressure=*/true);
  EXPECT_EQ(p.arms[1].decision, ArmDecision::kHedge);
}

TEST(Predictor, CensoredLoserWallStillHedges) {
  // A perpetual loser is eliminated the moment the leader commits, so the
  // wall the feedback loop records for it is censored at the leader's own
  // wall — by raw wall the two arms look identical. The partition must
  // compare unreliability-inflated expected costs, or a real workload's
  // always-losing arms would never be hedged at all.
  obs::HistoryStore store(64);
  teach(store, 1, 3 * kMs, true);
  teach(store, 2, 3 * kMs, /*success=*/false);  // same wall: died at commit
  SpeculationPlanner planner(test_config(), &store);
  const SpeculationPlan p = planner.plan(kSite, 2, false);
  ASSERT_TRUE(p.active);
  EXPECT_EQ(p.leader, 1);
  EXPECT_EQ(p.arms[1].decision, ArmDecision::kHedge);
}

TEST(Predictor, LeaderCostIsInflatedByUnreliability) {
  obs::HistoryStore store(64);
  // Arm 1 looks faster per run, but wins one run in ten: 2 ms / 0.1 =
  // 20 ms expected. Arm 2's honest 5 ms makes it the better bet.
  for (int s = 0; s < 10; ++s) {
    store.record(kSite, 1, 2 * kMs, kMs, s == 0);
  }
  teach(store, 2, 5 * kMs, true);
  SpeculationPlanner planner(test_config(), &store);
  EXPECT_EQ(planner.plan(kSite, 2, false).leader, 2);
}

TEST(Predictor, BelowSampleFloorStaysCold) {
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true, /*samples=*/2);  // floor is 3
  SpeculationPlanner planner(test_config(), &store);
  EXPECT_FALSE(planner.plan(kSite, 2, false).active);
}

TEST(Predictor, PlanIsDeterministicGivenFixedHistory) {
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 20 * kMs, false);
  teach(store, 3, 2 * kMs, true);  // exact tie with arm 1: lowest index wins
  SpeculationPlanner planner(test_config(), &store);
  const SpeculationPlan a = planner.plan(kSite, 3, false);
  const SpeculationPlan b = planner.plan(kSite, 3, false);
  EXPECT_EQ(a.leader, 1);  // tie broken to the lowest arm index
  ASSERT_EQ(a.arms.size(), b.arms.size());
  for (std::size_t i = 0; i < a.arms.size(); ++i) {
    EXPECT_EQ(a.arms[i].decision, b.arms[i].decision);
    EXPECT_EQ(a.arms[i].predicted_wall_ns, b.arms[i].predicted_wall_ns);
    EXPECT_EQ(a.arms[i].kill_after_ns, b.arms[i].kill_after_ns);
    EXPECT_EQ(a.arms[i].stage_after_ns, b.arms[i].stage_after_ns);
  }
}

// ------------------------------------------------------------ race wiring

class PredictorRace : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::enable_for_test(1 << 14);
    obs::reset();
  }
  void TearDown() override { obs::reset(); }
};

TEST_F(PredictorRace, StagedHedgeIsEliminatedAsleepByAFastLeader) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 50 * kMs, false);
  PredictorConfig cfg = test_config();
  cfg.stage_slack = 40.0;  // stage at 80 ms: the leader commits long before
  SpeculationPlanner planner(cfg, &store);

  RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = kSite;
  opts.planner = &planner;
  RaceReport rep;
  opts.report = &rep;
  const auto r = race<int>(
      {[] { ::usleep(2'000); return std::optional<int>(1); },
       [] { ::usleep(50'000); return std::optional<int>(2); }},
      opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 1);
  EXPECT_EQ(rep.pred_hedged, 1);
  EXPECT_EQ(rep.eliminated, 1);
  const auto recs = obs::snapshot();
  // The sleeper died before its deferral expired: no kPredStage record,
  // and the plan event says one arm was hedged.
  EXPECT_EQ(count_kind(recs, EventKind::kPredStage), 0);
  bool saw_plan = false;
  for (const Record& rec : recs) {
    if (rec.kind == EventKind::kPredPlan) {
      saw_plan = true;
      EXPECT_EQ(rec.a, 1u);  // launched
      EXPECT_EQ(rec.b, 1u);  // hedged
      EXPECT_EQ(rec.c, 0u);  // skipped
    }
  }
  EXPECT_TRUE(saw_plan);
}

TEST_F(PredictorRace, StagedHedgeFiresWhenTheLeaderOverruns) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 20 * kMs, true);
  PredictorConfig cfg = test_config();
  cfg.stage_slack = 1.0;  // stage right at the leader's predicted quantile
  SpeculationPlanner planner(cfg, &store);

  RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = kSite;
  opts.planner = &planner;
  // History lied: the "fast" leader fails this run, so the staged backup
  // wakes after ~2 ms, runs, and wins the block.
  const auto r = race<int>(
      {[] { ::usleep(1'000); return std::optional<int>(); },
       [] { ::usleep(5'000); return std::optional<int>(7); }},
      opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7);
  EXPECT_EQ(r->winner, 2);
  bool staged = false;
  for (const Record& rec : obs::snapshot()) {
    if (rec.kind == EventKind::kPredStage) {
      staged = true;
      EXPECT_EQ(rec.child_index, 2);
      EXPECT_EQ(rec.a, 2 * kMs);       // the deferral it slept
      EXPECT_EQ(rec.b, 20 * kMs);      // its own predicted wall
    }
  }
  EXPECT_TRUE(staged);
}

TEST_F(PredictorRace, OverrunningArmIsKilledAsPredictedLoser) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  obs::HistoryStore store(64);
  teach(store, 1, 5 * kMs, true);   // history: fast — but it hangs this run
  teach(store, 2, 8 * kMs, true);   // within hedge ratio: launches too
  SpeculationPlanner planner(test_config(), &store);

  GovernorConfig gc;
  gc.predict_watch = true;  // every arm registers, so the live census is
  gc.poll_interval = 2ms;   // accurate (ALTX_PRED=1 sets this in prod)
  SpeculationGovernor gov(gc);

  RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = kSite;
  opts.planner = &planner;
  opts.governor = &gov;
  RaceReport rep;
  opts.report = &rep;
  const auto r = race<int>(
      {[] { ::usleep(500'000); return std::optional<int>(1); },
       [] { ::usleep(30'000); return std::optional<int>(2); }},
      opts);
  // Arm 1 blows through its own p99 and is predicted-killed; arm 2 is then
  // the last live arm — spared even though it also overruns its deadline —
  // and goes on to win.
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 2);
  EXPECT_EQ(rep.predicted_losers, 1);
  EXPECT_EQ(rep.committed, 1);
  EXPECT_GE(gov.stats().kills_predicted, 1u);
  const auto recs = obs::snapshot();
  EXPECT_GE(count_kind(recs, EventKind::kPredKill), 1);
}

TEST_F(PredictorRace, NeverKillsTheLastLiveArm) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);  // p99 ≈ 2 ms; the run takes 40 ms
  SpeculationPlanner planner(test_config(), &store);

  GovernorConfig gc;
  gc.predict_watch = true;
  gc.poll_interval = 2ms;
  SpeculationGovernor gov(gc);

  RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = kSite;
  opts.planner = &planner;
  opts.governor = &gov;
  RaceReport rep;
  opts.report = &rep;
  const auto r = race<int>(
      {[] { ::usleep(40'000); return std::optional<int>(9); }}, opts);
  // Liveness: a single-arm race must always produce its answer, however
  // wrong the prediction was.
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 9);
  EXPECT_EQ(rep.predicted_losers, 0);
  EXPECT_EQ(gov.stats().kills_predicted, 0u);
}

TEST_F(PredictorRace, WinnerCommitTakesPrecedenceOverAPredictedKill) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);  // kill deadline ~2 ms; the run takes 20
  SpeculationPlanner planner(test_config(), &store);

  GovernorConfig gc;
  gc.predict_watch = true;
  gc.poll_interval = 2ms;
  gc.kill_grace = 500ms;  // wide TERM→KILL window for the commit to land in
  SpeculationGovernor gov(gc);

  RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = kSite;
  opts.planner = &planner;
  opts.governor = &gov;
  RaceReport rep;
  opts.report = &rep;
  // Arm 1 shrugs off the SIGTERM and commits inside the grace window; the
  // cold arm 2 keeps the census at two so the kill is even attempted. Same
  // precedence rule as kOverBudget: a commit that won the token is a
  // commit, whatever the watchdog was doing.
  const auto r = race<int>(
      {[]() -> std::optional<int> {
         ::signal(SIGTERM, SIG_IGN);
         ::usleep(20'000);
         return 1;
       },
       []() -> std::optional<int> {
         ::usleep(300'000);
         return std::nullopt;
       }},
      opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 1);
  EXPECT_EQ(rep.committed, 1);
  EXPECT_EQ(rep.predicted_losers, 0);
}

TEST_F(PredictorRace, ColdStoreRunsIdenticallyToPredictOff) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  obs::HistoryStore store(64);  // empty: every plan inactive
  SpeculationPlanner planner(test_config(), &store);
  const std::vector<AlternativeFn<int>> alts = {
      [] { ::usleep(2'000); return std::optional<int>(1); },
      [] { ::usleep(8'000); return std::optional<int>(2); },
  };

  RaceOptions off;
  off.timeout = 5'000ms;
  RaceReport off_rep;
  off.report = &off_rep;
  const auto r_off = race<int>(alts, off);

  RaceOptions on;
  on.timeout = 5'000ms;
  on.site_id = kSite;
  on.planner = &planner;
  RaceReport on_rep;
  on.report = &on_rep;
  const auto r_on = race<int>(alts, on);

  ASSERT_TRUE(r_off.has_value());
  ASSERT_TRUE(r_on.has_value());
  EXPECT_EQ(r_on->winner, r_off->winner);
  EXPECT_EQ(on_rep.committed, off_rep.committed);
  EXPECT_EQ(on_rep.eliminated, off_rep.eliminated);
  EXPECT_EQ(on_rep.pred_hedged, 0);
  EXPECT_EQ(on_rep.pred_skipped, 0);
  EXPECT_EQ(on_rep.predicted_losers, 0);
  // The trace still marks the race as planned — with everything launched —
  // so "predicted, cold store" is distinguishable from "prediction off".
  bool saw_plan = false;
  for (const Record& rec : obs::snapshot()) {
    if (rec.kind == EventKind::kPredPlan && rec.race_id == on_rep.race_id) {
      saw_plan = true;
      EXPECT_EQ(rec.a, 2u);
      EXPECT_EQ(rec.b, 0u);
      EXPECT_EQ(rec.c, 0u);
    }
  }
  EXPECT_TRUE(saw_plan);
}

TEST_F(PredictorRace, ExactlyOnePredPlanPerPredictedRace) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  obs::HistoryStore store(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 20 * kMs, false);
  PredictorConfig cfg = test_config();
  cfg.stage_slack = 40.0;
  SpeculationPlanner planner(cfg, &store);
  RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = kSite;
  opts.planner = &planner;
  for (int i = 0; i < 3; ++i) {
    obs::reset();
    (void)race<int>({[] { ::usleep(2'000); return std::optional<int>(1); },
                     [] { ::usleep(30'000); return std::optional<int>(2); }},
                    opts);
    EXPECT_EQ(count_kind(obs::snapshot(), EventKind::kPredPlan), 1);
  }
}

TEST_F(PredictorRace, PressureSkipAbortsTheArmAndRecordsNoSample) {
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  // The global test store, so the race's own history loop writes to the
  // same store the planner reads — the no-sample assertion below needs
  // them to be one store.
  obs::HistoryStore& store = *obs::history_enable_for_test(64);
  teach(store, 1, 2 * kMs, true);
  teach(store, 2, 20 * kMs, /*success=*/false);  // dominated
  SpeculationPlanner planner(test_config(), &store);

  // A PSI fixture stalled at 75 % shrinks the effective budget below its
  // base — the pressure signal the planner needs before it may skip.
  GovernorConfig gc;
  gc.tokens = 8;
  gc.psi_shed_pct = 60.0;
  gc.psi_kill_pct = 90.0;
  const std::string psi =
      ::testing::TempDir() + "psi_pred_" + std::to_string(::getpid());
  {
    std::ofstream out(psi);
    out << "some avg10=75.00 avg60=12.00 avg300=3.00 total=123456\n";
  }
  gc.psi_path = psi;
  SpeculationGovernor gov(gc);
  gov.poll_pressure_now();
  ASSERT_TRUE(governor_under_pressure(&gov));

  const std::uint32_t before = store.find(kSite, 2)->total;
  RaceOptions opts;
  opts.timeout = 5'000ms;
  opts.site_id = kSite;
  opts.planner = &planner;
  opts.governor = &gov;
  RaceReport rep;
  opts.report = &rep;
  const auto r = race<int>(
      {[] { ::usleep(2'000); return std::optional<int>(1); },
       [] { ::usleep(30'000); return std::optional<int>(2); }},
      opts);
  std::remove(psi.c_str());
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 1);
  EXPECT_EQ(rep.pred_skipped, 1);
  EXPECT_EQ(rep.aborted, 1);  // the skip is a guard FAIL, not a kill
  // A skipped arm's instant abort must not poison its history.
  EXPECT_EQ(store.find(kSite, 2)->total, before);
  obs::history_disable_for_test();
}

TEST(Predictor, GovernorPressureSignal) {
  EXPECT_FALSE(governor_under_pressure(nullptr));
  GovernorConfig gc;
  gc.tokens = 4;
  SpeculationGovernor gov(gc);
  EXPECT_FALSE(governor_under_pressure(&gov));  // full budget: no pressure
}

TEST(Predictor, EnvConfigRoundTrip) {
  ::setenv("ALTX_PRED", "1", 1);
  ::setenv("ALTX_PRED_KILL_Q", "0.9", 1);
  ::setenv("ALTX_PRED_HEDGE_RATIO", "2.5", 1);
  ::setenv("ALTX_PRED_STAGE_SLACK", "2.0", 1);
  ::setenv("ALTX_PRED_MIN_SAMPLES", "5", 1);
  ::setenv("ALTX_PRED_MAX_STAGE_MS", "123", 1);
  const PredictorConfig c = PredictorConfig::from_env();
  EXPECT_TRUE(c.enabled);
  EXPECT_DOUBLE_EQ(c.kill_q, 0.9);
  EXPECT_DOUBLE_EQ(c.hedge_ratio, 2.5);
  EXPECT_DOUBLE_EQ(c.stage_slack, 2.0);
  EXPECT_EQ(c.min_samples, 5u);
  EXPECT_EQ(c.max_stage_ms, 123u);
  ::unsetenv("ALTX_PRED");
  ::unsetenv("ALTX_PRED_KILL_Q");
  ::unsetenv("ALTX_PRED_HEDGE_RATIO");
  ::unsetenv("ALTX_PRED_STAGE_SLACK");
  ::unsetenv("ALTX_PRED_MIN_SAMPLES");
  ::unsetenv("ALTX_PRED_MAX_STAGE_MS");
  EXPECT_FALSE(PredictorConfig::from_env().enabled);
  // ALTX_PRED also arms the governor's predict_watch, so the watchdog runs
  // (and the live census is complete) even with no ALTX_GOV_* budget set.
  ::setenv("ALTX_PRED", "1", 1);
  EXPECT_TRUE(GovernorConfig::from_env().predict_watch);
  EXPECT_TRUE(GovernorConfig::from_env().any_enabled());
  ::unsetenv("ALTX_PRED");
  EXPECT_FALSE(GovernorConfig::from_env().predict_watch);
}

}  // namespace
}  // namespace altx::posix
