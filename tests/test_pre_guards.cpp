// Tests for pre-spawn guard evaluation (section 3.2: the guard may run
// before spawning, in the child, at synchronization, or any combination).
#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

Kernel::Config cfg() {
  Kernel::Config c;
  c.machine = MachineModel::shared_memory_mp(4);
  c.address_space_pages = 8;
  return c;
}

using GuardFn = std::function<bool(const AddressSpace&)>;

TEST(PreGuards, FalsePreGuardSkipsTheFork) {
  Kernel k(cfg());
  auto a = ProgramBuilder().compute(10 * kMsec).write(0, 0, 1).build();
  auto b = ProgramBuilder().compute(5 * kMsec).write(0, 0, 2).build();
  std::vector<GuardFn> pre = {
      [](const AddressSpace&) { return true; },
      [](const AddressSpace&) { return false; },  // b is never spawned
  };
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt_guarded({a, b}, std::move(pre)).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 1u);  // a wins unopposed
  EXPECT_EQ(k.stats().forks, 1u);                 // only one child existed
}

TEST(PreGuards, SkippingTheForkSavesSpawnTime) {
  auto elapsed = [](bool use_pre_guard) {
    auto c = cfg();
    c.address_space_pages = 400;  // make forks expensive
    Kernel k(c);
    auto fast = ProgramBuilder().compute(10 * kMsec).build();
    auto doomed = ProgramBuilder().abort().build();
    std::vector<GuardFn> pre;
    if (use_pre_guard) {
      pre = {[](const AddressSpace&) { return true; },
             [](const AddressSpace&) { return false; },
             [](const AddressSpace&) { return false; }};
    }
    k.spawn_root(ProgramBuilder()
                     .alt_guarded({fast, doomed, doomed}, std::move(pre))
                     .build());
    return k.run();
  };
  // Two saved forks of a 400-page space are worth > 80 ms on the HP model.
  EXPECT_LT(elapsed(true) + 50 * kMsec, elapsed(false));
}

TEST(PreGuards, AllFalseFailsTheBlockWithoutSpawning) {
  Kernel k(cfg());
  auto a = ProgramBuilder().compute(kMsec).build();
  auto on_fail = ProgramBuilder().write(0, 0, 0xf).build();
  std::vector<GuardFn> pre = {
      [](const AddressSpace&) { return false; },
      [](const AddressSpace&) { return false; },
  };
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt_guarded({a, a}, std::move(pre), 0, on_fail).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 0xfu);
  EXPECT_EQ(k.stats().forks, 0u);
  EXPECT_EQ(k.stats().alt_failures, 1u);
}

TEST(PreGuards, PreGuardsReadTheParentsState) {
  Kernel k(cfg());
  auto a = ProgramBuilder().write(1, 0, 1).build();
  auto b = ProgramBuilder().write(1, 0, 2).build();
  // Dispatch on a value the parent wrote before the block.
  std::vector<GuardFn> pre = {
      [](const AddressSpace& as) { return as.peek(0, 0) == 7; },
      [](const AddressSpace& as) { return as.peek(0, 0) != 7; },
  };
  const Pid pid = k.spawn_root(ProgramBuilder()
                                   .write(0, 0, 7)
                                   .alt_guarded({a, b}, std::move(pre))
                                   .build());
  k.run();
  EXPECT_EQ(k.process(pid)->as_.peek(1, 0), 1u);
}

TEST(PreGuards, RedundantWithChildGuards) {
  // Both layers present: the pre-guard admits the alternative, the child
  // guard still rejects it — redundancy, as the paper allows.
  Kernel k(cfg());
  auto lies = ProgramBuilder()
                  .compute(kMsec)
                  .guard([](const AddressSpace&) { return false; })
                  .build();
  auto honest = ProgramBuilder().compute(10 * kMsec).write(0, 0, 3).build();
  std::vector<GuardFn> pre = {
      [](const AddressSpace&) { return true; },  // admits the liar
      [](const AddressSpace&) { return true; },
  };
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt_guarded({lies, honest}, std::move(pre)).build());
  k.run();
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 3u);
}

TEST(PreGuards, FewerGuardsThanAlternatesIsAllowed) {
  // Only the first alternative carries a pre-guard; the rest always spawn.
  Kernel k(cfg());
  auto a = ProgramBuilder().compute(kMsec).write(0, 0, 1).build();
  auto b = ProgramBuilder().compute(2 * kMsec).write(0, 0, 2).build();
  std::vector<GuardFn> pre = {[](const AddressSpace&) { return false; }};
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt_guarded({a, b}, std::move(pre)).build());
  k.run();
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 2u);
}

}  // namespace
}  // namespace altx::sim
