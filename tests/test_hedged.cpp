// Direct coverage of posix/hedged.hpp: staggered replicas of one method.
//
// The hedging contract: copy k sleeps k*stagger before working; the first
// copy to finish takes the commit token; everyone else is eliminated. These
// tests pin the visible consequences — who wins under which latencies, the
// copy index reaching the task, and the too-slow / all-fail edges.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>

#include "posix/hedged.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;

int sweep_zombies() {
  int n = 0;
  while (::waitpid(-1, nullptr, WNOHANG) > 0) ++n;
  return n;
}

TEST(Hedged, FastPrimaryWins) {
  // The primary finishes well inside the stagger window, so even though the
  // hedge is forked, it loses (it is still asleep when the token goes).
  const auto r = hedged<int>(
      [](int copy) -> std::optional<int> {
        if (copy == 0) return 100;
        ::usleep(5'000);
        return 200 + copy;
      },
      {.max_copies = 2, .stagger = 200ms, .timeout = 5'000ms});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 100);
  EXPECT_FALSE(r->hedge_won);
  EXPECT_EQ(r->copies_launched, 2);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(Hedged, HedgeWinsWhenPrimaryStalls) {
  // The primary sleeps far past the stagger; the hedge wakes, computes,
  // and commits first. hedge_won must report it.
  const auto r = hedged<int>(
      [](int copy) -> std::optional<int> {
        if (copy == 0) {
          ::usleep(500'000);
          return 100;
        }
        return 200 + copy;
      },
      {.max_copies = 2, .stagger = 10ms, .timeout = 5'000ms});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 201);
  EXPECT_TRUE(r->hedge_won);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(Hedged, SingleCopyIsAPlainRace) {
  const auto r = hedged<int>(
      [](int copy) -> std::optional<int> { return 42 + copy; },
      {.max_copies = 1, .stagger = 1ms, .timeout = 5'000ms});
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 42);
  EXPECT_FALSE(r->hedge_won);
  EXPECT_EQ(r->copies_launched, 1);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(Hedged, CopyIndexReachesEachReplica) {
  // Every copy returns its own index; whoever wins, the value must equal
  // some valid copy index — the task really saw which replica it is.
  const auto r = hedged<int>(
      [](int copy) -> std::optional<int> { return copy; },
      {.max_copies = 3, .stagger = 1ms, .timeout = 5'000ms});
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->value, 0);
  EXPECT_LT(r->value, 3);
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(Hedged, AllCopiesFailingFailsTheBlock) {
  const auto r = hedged<int>(
      [](int) -> std::optional<int> { return std::nullopt; },
      {.max_copies = 3, .stagger = 1ms, .timeout = 5'000ms});
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(Hedged, TimeoutWhenEveryCopyHangs) {
  const auto r = hedged<int>(
      [](int) -> std::optional<int> {
        ::usleep(10'000'000);
        return 1;
      },
      {.max_copies = 2, .stagger = 5ms, .timeout = 100ms});
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(sweep_zombies(), 0);
}

TEST(Hedged, RejectsZeroCopies) {
  EXPECT_THROW(
      hedged<int>([](int) -> std::optional<int> { return 1; },
                  {.max_copies = 0}),
      UsageError);
}

}  // namespace
}  // namespace altx::posix
