// Tests for the altx-check equivalence-checking subsystem (src/check/):
// the sequential oracle, the .altcheck IR codec, the generator, the trial
// driver over both backends, and the shrinker — including the acceptance
// case where a deliberately injected double-commit bug (the
// ALTX_TEST_BREAK_AT_MOST_ONCE hook in posix/alt_group.cpp) is caught,
// shrunk to a tiny program, and replayed from its serialized repro.
#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "check/checker.hpp"
#include "check/generate.hpp"
#include "check/oracle.hpp"
#include "check/shrink.hpp"
#include "common/error.hpp"

namespace altx::check {
namespace {

Alternative alt_of(std::vector<CheckOp> ops) {
  Alternative a;
  a.ops = std::move(ops);
  return a;
}

Block block_of(std::vector<Alternative> alts) {
  Block b;
  b.alts = std::move(alts);
  return b;
}

// ---------------------------------------------------------------------------
// Sequential oracle
// ---------------------------------------------------------------------------

TEST(CheckOracle, EveryAlternativeContributesAnOutcome) {
  CheckProgram p;
  p.blocks.push_back(block_of({alt_of({OpWrite{0, 0, 5}}),
                               alt_of({OpWrite{0, 0, 9}})}));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 2u);
  for (const Observation& o : outs) {
    EXPECT_FALSE(o.failed);
    EXPECT_TRUE(o.cells[cell_index(0, 0)] == 5 || o.cells[cell_index(0, 0)] == 9);
  }
}

TEST(CheckOracle, NoFailOutcomeWhileSomeAlternativeCannotFail) {
  CheckProgram p;
  p.blocks.push_back(block_of({alt_of({OpGuardConst{false}}),
                               alt_of({OpWrite{1, 0, 2}})}));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_FALSE(outs[0].failed);
  EXPECT_EQ(outs[0].cells[cell_index(1, 0)], 2u);
}

TEST(CheckOracle, FailFreezesPreBlockState) {
  CheckProgram p;
  p.blocks.push_back(block_of({alt_of({OpWrite{0, 0, 3}})}));
  p.blocks.push_back(block_of({alt_of({OpGuardConst{false}})}));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].failed);
  EXPECT_EQ(outs[0].cells[cell_index(0, 0)], 3u);  // block 1's write survives
}

TEST(CheckOracle, DataDependentGuardSeesEarlierWrites) {
  // guard_eq trips or not depending on the same alternative's own write.
  CheckProgram p;
  p.blocks.push_back(block_of(
      {alt_of({OpWrite{2, 1, 4}, OpGuardEq{2, 1, 4, false}, OpWrite{3, 0, 8}})}));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_FALSE(outs[0].failed);
  EXPECT_EQ(outs[0].cells[cell_index(3, 0)], 8u);
}

TEST(CheckOracle, NestedFailPropagatesToTheEnclosingAlternative) {
  auto nested = std::make_shared<Block>(
      block_of({alt_of({OpGuardConst{false}})}));
  CheckProgram p;
  p.blocks.push_back(
      block_of({alt_of({OpWrite{0, 0, 1}, OpBlock{nested}})}));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].failed);
  // The loser's write is invisible: FAIL froze the pre-block state.
  EXPECT_EQ(outs[0].cells[cell_index(0, 0)], 0u);
}

TEST(CheckOracle, NestedWinnerWritesAreAbsorbedIntoTheOuterPath) {
  auto nested = std::make_shared<Block>(block_of({alt_of({OpWrite{4, 1, 7}})}));
  CheckProgram p;
  p.blocks.push_back(block_of({alt_of({OpBlock{nested}, OpWrite{5, 0, 2}})}));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_FALSE(outs[0].failed);
  EXPECT_EQ(outs[0].cells[cell_index(4, 1)], 7u);
  EXPECT_EQ(outs[0].cells[cell_index(5, 0)], 2u);
}

TEST(CheckOracle, RecvAfterObservesWinnersTagOrTimeoutValue) {
  Block b = block_of({alt_of({OpSend{101}}), alt_of({OpWork{1}})});
  b.recv_after = true;
  b.recv_page = 5;
  b.recv_word = 1;
  b.recv_timeout_value = 777;
  CheckProgram p;
  p.blocks.push_back(std::move(b));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 2u);
  bool saw_tag = false, saw_timeout = false;
  for (const Observation& o : outs) {
    if (o.cells[cell_index(5, 1)] == 101) saw_tag = true;
    if (o.cells[cell_index(5, 1)] == 777) saw_timeout = true;
  }
  EXPECT_TRUE(saw_tag);
  EXPECT_TRUE(saw_timeout);
}

TEST(CheckOracle, ExternAfterLandsOnCommitAndNeverOnFail) {
  Block good = block_of({alt_of({OpWork{1}})});
  good.extern_after = true;
  good.extern_tag = 200;
  Block bad = block_of({alt_of({OpGuardConst{false}})});
  bad.extern_after = true;
  bad.extern_tag = 201;
  CheckProgram p;
  p.blocks.push_back(std::move(good));
  p.blocks.push_back(std::move(bad));
  const auto outs = oracle_outcomes(p);
  ASSERT_EQ(outs.size(), 1u);
  EXPECT_TRUE(outs[0].failed);
  // Block 1's tag was emitted; block 2 FAILed before its extern.
  ASSERT_EQ(outs[0].externs.size(), 1u);
  EXPECT_EQ(outs[0].externs[0], 200u);
}

// ---------------------------------------------------------------------------
// .altcheck codec and validation
// ---------------------------------------------------------------------------

TEST(CheckIr, SerializeParseRoundTripIsStable) {
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL, 1234ULL}) {
    ReproCase r;
    r.program = generate_program(seed);
    r.backend = seed % 2 == 0 ? Backend::kSim : Backend::kPosix;
    r.faulty = seed % 3 == 0;
    r.predicted = seed % 2 != 0;  // the key rides through shrink/replay
    r.gen_seed = seed;
    r.schedule_seed = seed * 31;
    r.invariant = "oracle-membership";
    const std::string once = serialize(r);
    const ReproCase parsed = parse_repro(once);
    EXPECT_EQ(serialize(parsed), once) << "seed " << seed;
    EXPECT_EQ(parsed.backend, r.backend);
    EXPECT_EQ(parsed.faulty, r.faulty);
    EXPECT_EQ(parsed.predicted, r.predicted);
    EXPECT_EQ(parsed.gen_seed, r.gen_seed);
    EXPECT_EQ(parsed.schedule_seed, r.schedule_seed);
    EXPECT_EQ(parsed.invariant, r.invariant);
  }
}

TEST(CheckIr, ParserSkipsCommentsAndBlankLines) {
  const std::string text =
      "# a counterexample\n"
      "altcheck 1\n\n"
      "backend sim\n"
      "schedule_seed 9\n"
      "program\n"
      "block\n"
      "# the only alternative\n"
      "alt\n"
      "write 0 0 1\n"
      "endalt\n"
      "endblock\n"
      "endprogram\n";
  const ReproCase r = parse_repro(text);
  EXPECT_EQ(r.schedule_seed, 9u);
  ASSERT_EQ(r.program.blocks.size(), 1u);
}

TEST(CheckIr, ParseErrorsCarryTheOffendingLineNumber) {
  try {
    parse_repro("altcheck 1\nbogus 1\n");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos) << e.what();
  }
  try {
    parse_repro("altcheck 1\nprogram\nblock\nalt\nwarp 1\nendalt\nendblock\nendprogram\n");
    FAIL() << "expected UsageError";
  } catch (const UsageError& e) {
    EXPECT_NE(std::string(e.what()).find("line 5"), std::string::npos) << e.what();
  }
}

TEST(CheckIr, ValidateRejectsStructuralViolations) {
  EXPECT_THROW(validate(CheckProgram{}), UsageError);  // no blocks

  CheckProgram empty_block;
  empty_block.blocks.push_back(Block{});
  EXPECT_THROW(validate(empty_block), UsageError);  // block with no alts

  CheckProgram bad_write;
  bad_write.blocks.push_back(block_of({alt_of({OpWrite{kPages, 0, 1}})}));
  EXPECT_THROW(validate(bad_write), UsageError);

  CheckProgram nested_send;
  nested_send.blocks.push_back(block_of({alt_of(
      {OpBlock{std::make_shared<Block>(block_of({alt_of({OpSend{1}})}))}})}));
  EXPECT_THROW(validate(nested_send), UsageError);

  CheckProgram nested_extern;
  Block ne = block_of({alt_of({OpWork{1}})});
  ne.extern_after = true;
  nested_extern.blocks.push_back(
      block_of({alt_of({OpBlock{std::make_shared<Block>(std::move(ne))}})}));
  EXPECT_THROW(validate(nested_extern), UsageError);

  CheckProgram two_sends;
  two_sends.blocks.push_back(block_of({alt_of({OpSend{1}, OpSend{2}})}));
  EXPECT_THROW(validate(two_sends), UsageError);

  CheckProgram too_deep;
  auto inner = std::make_shared<Block>(block_of({alt_of({OpWork{1}})}));
  auto mid = std::make_shared<Block>(block_of({alt_of({OpBlock{inner}})}));
  too_deep.blocks.push_back(block_of({alt_of({OpBlock{mid}})}));
  EXPECT_THROW(validate(too_deep), UsageError);
}

TEST(CheckGenerate, SameSeedSameProgram) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    EXPECT_EQ(serialize(generate_program(seed)), serialize(generate_program(seed)));
  }
  // Not a fixed point: different seeds explore different programs.
  EXPECT_NE(serialize(generate_program(1)), serialize(generate_program(2)));
}

TEST(CheckGenerate, PosixConfigAvoidsSimOnlyObservables) {
  GenConfig cfg;
  cfg.allow_extern = false;
  cfg.allow_send = false;
  for (std::uint64_t seed = 1; seed <= 24; ++seed) {
    EXPECT_FALSE(uses_sim_only_ops(generate_program(seed, cfg))) << seed;
  }
}

// ---------------------------------------------------------------------------
// Trial batches over the real backends
// ---------------------------------------------------------------------------

TEST(CheckTrials, SimBatchHoldsAllInvariants) {
  TrialStats stats;
  const auto cx = run_trials(40, 99, true, false, false, false, GenConfig{}, &stats);
  EXPECT_FALSE(cx.has_value())
      << cx->invariant << " at trial " << cx->trial << "\n" << cx->detail;
  EXPECT_EQ(stats.trials, 40u);
  EXPECT_EQ(stats.sim_trials, 40u);
  EXPECT_GT(stats.oracle_outcomes_total, 0u);
}

TEST(CheckTrials, PosixBatchHoldsAllInvariants) {
  TrialStats stats;
  const auto cx = run_trials(40, 99, false, true, false, false, GenConfig{}, &stats);
  EXPECT_FALSE(cx.has_value())
      << cx->invariant << " at trial " << cx->trial << "\n" << cx->detail;
  EXPECT_EQ(stats.posix_trials, 40u);
}

TEST(CheckTrials, FaultyPosixBatchHoldsAllInvariants) {
  TrialStats stats;
  const auto cx = run_trials(24, 5, false, true, true, false, GenConfig{}, &stats);
  EXPECT_FALSE(cx.has_value())
      << cx->invariant << " at trial " << cx->trial << "\n" << cx->detail;
  EXPECT_GT(stats.faulty_trials, 0u);
}

TEST(CheckTrials, PredictedPosixBatchHoldsAllInvariants) {
  // Synthetic-history planning perturbs every other posix trial: staging
  // delays and predicted kills must never break oracle membership,
  // at-most-once-commit, or liveness, however wrong the injected history.
  TrialStats stats;
  const auto cx = run_trials(24, 5, false, true, false, false, GenConfig{},
                             &stats, /*predictor=*/true);
  EXPECT_FALSE(cx.has_value())
      << cx->invariant << " at trial " << cx->trial << "\n" << cx->detail;
  EXPECT_GT(stats.predicted_trials, 0u);
}

TEST(CheckTrials, SimCasesAreDeterministic) {
  CheckCase c;
  c.program = generate_program(31337);
  c.backend = Backend::kSim;
  c.schedule_seed = 4242;
  const CaseResult a = run_case(c);
  const CaseResult b = run_case(c);
  EXPECT_EQ(a.violation.has_value(), b.violation.has_value());
  EXPECT_EQ(a.interleaving, b.interleaving);
}

// ---------------------------------------------------------------------------
// Shrinking + the injected-bug acceptance case
// ---------------------------------------------------------------------------

/// Scoped env var so a failing assertion can't leak the injected bug into
/// other tests.
class EnvGuard {
 public:
  EnvGuard(const char* name, const char* value) : name_(name) {
    ::setenv(name, value, 1);
  }
  ~EnvGuard() { ::unsetenv(name_); }

 private:
  const char* name_;
};

TEST(CheckShrink, InjectedDoubleCommitIsCaughtShrunkAndReplayable) {
  EnvGuard guard("ALTX_TEST_BREAK_AT_MOST_ONCE", "1");

  TrialStats stats;
  const auto cx = run_trials(80, 42, false, true, false, false, GenConfig{}, &stats);
  ASSERT_TRUE(cx.has_value()) << "injected double-commit was not detected";
  EXPECT_EQ(cx->invariant, "at-most-once-commit");

  const ShrinkResult sr = shrink(cx->found);
  EXPECT_EQ(sr.invariant, "at-most-once-commit");
  // A double commit needs two racers and nothing else: the shrunk repro must
  // be at most 3 alternatives (the issue's acceptance bound; typically 2).
  EXPECT_LE(count_alternatives(sr.reduced.program), 3u);
  EXPECT_LE(count_blocks(sr.reduced.program), 2u);

  // Round-trip through the .altcheck text format, then replay: the parsed
  // case must still trip the same invariant while the bug is injected.
  ReproCase repro;
  repro.program = sr.reduced.program;
  repro.backend = sr.reduced.backend;
  repro.faulty = sr.reduced.faulty;
  repro.gen_seed = cx->gen_seed;
  repro.schedule_seed = sr.reduced.schedule_seed;
  repro.invariant = sr.invariant;
  const ReproCase parsed = parse_repro(serialize(repro));

  CheckCase replay;
  replay.program = parsed.program;
  replay.backend = parsed.backend;
  replay.faulty = parsed.faulty;
  replay.schedule_seed = parsed.schedule_seed;
  bool reproduced = false;
  for (int attempt = 0; attempt < 5 && !reproduced; ++attempt) {
    const CaseResult r = run_case(replay);
    reproduced = r.violation.has_value() &&
                 *r.violation == "at-most-once-commit";
  }
  EXPECT_TRUE(reproduced) << "shrunk repro did not replay";
}

TEST(CheckShrink, ShrinkerPrunesIrrelevantStructure) {
  // A case that fails deterministically for a *semantic* reason — sim
  // backend vs an oracle the program can't match is hard to fabricate, so
  // instead use the injected bug with a deliberately bloated program and
  // verify the shrinker strictly reduces it.
  EnvGuard guard("ALTX_TEST_BREAK_AT_MOST_ONCE", "1");

  GenConfig fat;
  fat.max_blocks = 3;
  fat.max_alts = 3;
  fat.allow_extern = false;
  fat.allow_send = false;
  CheckCase c;
  // Find a generated program whose first posix run trips the bug.
  bool found = false;
  for (std::uint64_t seed = 1; seed <= 40 && !found; ++seed) {
    c.program = generate_program(seed, fat);
    if (count_alternatives(c.program) < 4) continue;  // want something to prune
    c.backend = Backend::kPosix;
    c.schedule_seed = seed;
    for (int r = 0; r < 3 && !found; ++r) {
      found = run_case(c).violation.has_value();
    }
  }
  ASSERT_TRUE(found) << "no generated program tripped the injected bug";

  const std::size_t before = count_alternatives(c.program);
  const ShrinkResult sr = shrink(c);
  EXPECT_LT(count_alternatives(sr.reduced.program), before);
  EXPECT_FALSE(sr.invariant.empty());
}

}  // namespace
}  // namespace altx::check
