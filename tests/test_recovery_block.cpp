// Tests for recovery blocks: sequential checkpoint/rollback semantics,
// concurrent fastest-first execution, fault injection, and the equivalence
// invariant — the concurrent result must be a result the sequential
// discipline could have produced.
#include <gtest/gtest.h>
#include <unistd.h>

#include "rb/recovery_block.hpp"

namespace altx::rb {
namespace {

struct Account {
  double balance;
  int version;
};

RecoveryBlock<Account> deposit_block(double amount) {
  RecoveryBlock<Account> rb;
  // Primary: correct fast implementation.
  rb.add_alternate([amount](Account& a) {
    a.balance += amount;
    a.version += 1;
  });
  // Secondary: slower but also correct (a different method).
  rb.add_alternate([amount](Account& a) {
    ::usleep(20'000);
    a.balance = a.balance + amount;
    a.version += 1;
  });
  rb.set_acceptance([](const Account& a) { return a.balance >= 0 && a.version > 0; });
  return rb;
}

TEST(RecoveryBlockSeq, PrimarySucceedsFirstTry) {
  auto rb = deposit_block(10);
  Account a{100, 0};
  const auto rep = rb.run_sequential(a);
  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.alternate, 0u);
  EXPECT_EQ(rep.attempts, 1u);
  EXPECT_DOUBLE_EQ(a.balance, 110);
}

TEST(RecoveryBlockSeq, RollsBackToCheckpointOnFailure) {
  RecoveryBlock<Account> rb;
  rb.add_alternate([](Account& a) { a.balance = -999; });       // buggy primary
  rb.add_alternate([](Account& a) { a.balance += 5; a.version = 1; });
  rb.set_acceptance([](const Account& a) { return a.balance >= 0 && a.version > 0; });
  Account a{50, 0};
  const auto rep = rb.run_sequential(a);
  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.alternate, 1u);
  EXPECT_EQ(rep.attempts, 2u);
  // The buggy primary's damage was rolled back before the secondary ran.
  EXPECT_DOUBLE_EQ(a.balance, 55);
}

TEST(RecoveryBlockSeq, TotalFailureLeavesStateUntouched) {
  RecoveryBlock<Account> rb;
  rb.add_alternate([](Account& a) { a.balance = -1; });
  rb.add_alternate([](Account& a) { a.balance = -2; });
  rb.set_acceptance([](const Account& a) { return a.balance >= 0; });
  Account a{42, 7};
  const auto rep = rb.run_sequential(a);
  EXPECT_FALSE(rep.succeeded);
  EXPECT_DOUBLE_EQ(a.balance, 42);
  EXPECT_EQ(a.version, 7);
}

TEST(RecoveryBlockSeq, ExceptionInAlternateIsAFailure) {
  RecoveryBlock<Account> rb;
  rb.add_alternate([](Account&) { throw std::runtime_error("logic bug"); });
  rb.add_alternate([](Account& a) { a.version = 1; });
  rb.set_acceptance([](const Account& a) { return a.version == 1; });
  Account a{0, 0};
  const auto rep = rb.run_sequential(a);
  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.alternate, 1u);
}

TEST(RecoveryBlockConc, FastestPassingAlternateWins) {
  RecoveryBlock<Account> rb;
  rb.add_alternate([](Account& a) { ::usleep(150'000); a.balance = 1; a.version = 1; });
  rb.add_alternate([](Account& a) { ::usleep(10'000); a.balance = 2; a.version = 1; });
  rb.set_acceptance([](const Account& a) { return a.version == 1; });
  Account a{0, 0};
  const auto rep = rb.run_concurrent(a);
  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.alternate, 1u);
  EXPECT_DOUBLE_EQ(a.balance, 2);
}

TEST(RecoveryBlockConc, FailingFastAlternateDoesNotWin) {
  RecoveryBlock<Account> rb;
  // The fast primary produces a result the acceptance test rejects.
  rb.add_alternate([](Account& a) { a.balance = -1; a.version = 1; });
  rb.add_alternate([](Account& a) { ::usleep(30'000); a.balance = 9; a.version = 1; });
  rb.set_acceptance([](const Account& a) { return a.balance >= 0 && a.version == 1; });
  Account a{0, 0};
  const auto rep = rb.run_concurrent(a);
  EXPECT_TRUE(rep.succeeded);
  EXPECT_EQ(rep.alternate, 1u);
  EXPECT_DOUBLE_EQ(a.balance, 9);
}

TEST(RecoveryBlockConc, TotalFailureLeavesStateUntouched) {
  RecoveryBlock<Account> rb;
  rb.add_alternate([](Account& a) { a.balance = -1; });
  rb.add_alternate([](Account& a) { a.balance = -2; });
  rb.set_acceptance([](const Account& a) { return a.balance >= 0; });
  Account a{42, 7};
  const auto rep = rb.run_concurrent(a);
  EXPECT_FALSE(rep.succeeded);
  EXPECT_DOUBLE_EQ(a.balance, 42);
  EXPECT_EQ(a.version, 7);
}

TEST(RecoveryBlockConc, ResultEquivalentToSomeSequentialOutcome) {
  // Semantic preservation: whatever the race selects must be a state the
  // sequential discipline could reach with one of the alternates.
  RecoveryBlock<Account> rb;
  rb.add_alternate([](Account& a) { a.balance += 10; a.version++; });
  rb.add_alternate([](Account& a) { a.balance += 20; a.version++; });
  rb.add_alternate([](Account& a) { a.balance += 30; a.version++; });
  rb.set_acceptance([](const Account& a) { return a.version == 1; });
  Account a{0, 0};
  const auto rep = rb.run_concurrent(a);
  ASSERT_TRUE(rep.succeeded);
  EXPECT_TRUE(a.balance == 10 || a.balance == 20 || a.balance == 30);
  EXPECT_EQ(a.version, 1);
}

TEST(RecoveryBlockConc, FaultySlowPrimaryIsOvertaken) {
  // Fastest-first finds "a rapid failure-free path through the computation":
  // a slow-and-faulty primary does not delay the block the way it delays the
  // sequential discipline.
  RecoveryBlock<Account> rb;
  rb.add_alternate(with_faults<Account>(
      [](Account& a) { ::usleep(120'000); a.version = 1; },
      [](Account& a) { a.balance = -1; }, /*fault_prob=*/1.0, /*seed=*/3));
  rb.add_alternate([](Account& a) { ::usleep(20'000); a.version = 1; a.balance = 1; });
  rb.set_acceptance([](const Account& a) { return a.balance >= 0 && a.version == 1; });

  Account seq{0, 0};
  const auto s = rb.run_sequential(seq);
  Account conc{0, 0};
  const auto c = rb.run_concurrent(conc);
  ASSERT_TRUE(s.succeeded);
  ASSERT_TRUE(c.succeeded);
  EXPECT_EQ(c.alternate, 1u);
  // Sequential pays for the faulty primary before trying the secondary.
  EXPECT_GT(s.elapsed_ms, c.elapsed_ms);
}

TEST(RecoveryBlock, WithFaultsIsDeterministicPerSeed) {
  int corruptions = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    auto alt = with_faults<Account>([](Account& a) { a.version = 1; },
                                    [](Account& a) { a.balance = -1; }, 0.5, seed);
    Account a{0, 0};
    alt(a);
    Account b{0, 0};
    alt(b);
    EXPECT_DOUBLE_EQ(a.balance, b.balance);  // same seed, same outcome
    if (a.balance < 0) ++corruptions;
  }
  EXPECT_GT(corruptions, 25);
  EXPECT_LT(corruptions, 75);
}

TEST(RecoveryBlock, RequiresAlternatesAndAcceptance) {
  RecoveryBlock<Account> rb;
  Account a{0, 0};
  EXPECT_THROW((void)rb.run_sequential(a), UsageError);
  rb.add_alternate([](Account&) {});
  EXPECT_THROW((void)rb.run_sequential(a), UsageError);
}

}  // namespace
}  // namespace altx::rb
