// Tests for the mini-Prolog engine: parsing, unification, SLD resolution,
// arithmetic, cut, list programs, n-queens, and the OR-parallel executors.
#include <gtest/gtest.h>

#include "prolog/or_parallel.hpp"
#include "prolog/parser.hpp"
#include "prolog/solver.hpp"
#include "prolog/term.hpp"

namespace altx::prolog {
namespace {

// ---------------------------------------------------------------------------
// Terms and unification
// ---------------------------------------------------------------------------

TEST(PrologTerm, SymbolInterning) {
  SymbolTable sym;
  const Symbol a = sym.intern("foo");
  const Symbol b = sym.intern("foo");
  const Symbol c = sym.intern("bar");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(sym.name(c), "bar");
}

TEST(PrologTerm, UnifyAtomsAndInts) {
  SymbolTable sym;
  Bindings b;
  EXPECT_TRUE(unify(b, mk_atom(sym.intern("x")), mk_atom(sym.intern("x"))));
  EXPECT_FALSE(unify(b, mk_atom(sym.intern("x")), mk_atom(sym.intern("y"))));
  EXPECT_TRUE(unify(b, mk_int(3), mk_int(3)));
  EXPECT_FALSE(unify(b, mk_int(3), mk_int(4)));
}

TEST(PrologTerm, UnifyBindsVariables) {
  SymbolTable sym;
  Bindings b;
  b.reserve_slots(2);
  EXPECT_TRUE(unify(b, mk_var(0), mk_int(7)));
  EXPECT_EQ(b.deref(mk_var(0))->value, 7);
  // Var-var aliasing then grounding.
  EXPECT_TRUE(unify(b, mk_var(1), mk_var(0)));
  EXPECT_EQ(b.deref(mk_var(1))->value, 7);
}

TEST(PrologTerm, UnifyStructsRecursively) {
  SymbolTable sym;
  Bindings b;
  b.reserve_slots(1);
  const Symbol f = sym.intern("f");
  // f(X, 2) = f(1, 2)  ==>  X = 1
  EXPECT_TRUE(unify(b, mk_struct(f, {mk_var(0), mk_int(2)}),
                    mk_struct(f, {mk_int(1), mk_int(2)})));
  EXPECT_EQ(b.deref(mk_var(0))->value, 1);
  // Arity mismatch fails.
  EXPECT_FALSE(unify(b, mk_struct(f, {mk_int(1)}),
                     mk_struct(f, {mk_int(1), mk_int(2)})));
}

TEST(PrologTerm, TrailUndoRestoresState) {
  SymbolTable sym;
  Bindings b;
  b.reserve_slots(1);
  const std::size_t mark = b.mark();
  EXPECT_TRUE(unify(b, mk_var(0), mk_int(9)));
  EXPECT_TRUE(b.bound(0));
  b.undo(mark);
  EXPECT_FALSE(b.bound(0));
}

TEST(PrologTerm, OccursCheckRejectsCycles) {
  SymbolTable sym;
  Bindings b;
  b.reserve_slots(1);
  const Symbol f = sym.intern("f");
  // X = f(X) fails with occurs check, succeeds (dangerously) without.
  EXPECT_FALSE(unify(b, mk_var(0), mk_struct(f, {mk_var(0)}), true));
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

TEST(PrologParser, FactsAndRules) {
  SymbolTable sym;
  const auto clauses = parse_program(sym, R"(
    parent(tom, bob).
    parent(bob, ann).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
  )");
  ASSERT_EQ(clauses.size(), 3u);
  EXPECT_EQ(clauses[0].body.size(), 0u);
  EXPECT_EQ(clauses[2].body.size(), 2u);
  EXPECT_EQ(clauses[2].nvars, 3u);
}

TEST(PrologParser, ListsDesugarToDots) {
  SymbolTable sym;
  const auto q = parse_query(sym, "X = [1,2|T]");
  ASSERT_EQ(q.goals.size(), 1u);
  const TermPtr rhs = q.goals[0]->args[1];
  EXPECT_EQ(sym.name(rhs->functor), ".");
  EXPECT_EQ(rhs->args[0]->value, 1);
  EXPECT_EQ(sym.name(rhs->args[1]->functor), ".");
}

TEST(PrologParser, EmptyListIsNilAtom) {
  SymbolTable sym;
  const auto q = parse_query(sym, "X = []");
  EXPECT_EQ(sym.name(q.goals[0]->args[1]->functor), "[]");
}

TEST(PrologParser, OperatorPrecedence) {
  SymbolTable sym;
  // X is 1 + 2 * 3  parses as  is(X, +(1, *(2, 3))).
  const auto q = parse_query(sym, "X is 1 + 2 * 3");
  const TermPtr is = q.goals[0];
  EXPECT_EQ(sym.name(is->functor), "is");
  const TermPtr plus = is->args[1];
  EXPECT_EQ(sym.name(plus->functor), "+");
  EXPECT_EQ(plus->args[0]->value, 1);
  EXPECT_EQ(sym.name(plus->args[1]->functor), "*");
}

TEST(PrologParser, LeftAssociativeMinus) {
  SymbolTable sym;
  // 10 - 3 - 2 = (10 - 3) - 2.
  const auto q = parse_query(sym, "X is 10 - 3 - 2");
  const TermPtr outer = q.goals[0]->args[1];
  EXPECT_EQ(sym.name(outer->functor), "-");
  EXPECT_EQ(outer->args[1]->value, 2);
  EXPECT_EQ(sym.name(outer->args[0]->functor), "-");
}

TEST(PrologParser, VariablesScopedPerClause) {
  SymbolTable sym;
  const auto clauses = parse_program(sym, "a(X). b(X).");
  EXPECT_EQ(clauses[0].nvars, 1u);
  EXPECT_EQ(clauses[1].nvars, 1u);
}

TEST(PrologParser, UnderscoreIsAlwaysFresh) {
  SymbolTable sym;
  const auto clauses = parse_program(sym, "p(_, _).");
  EXPECT_EQ(clauses[0].nvars, 2u);
}

TEST(PrologParser, CommentsAreSkipped) {
  SymbolTable sym;
  const auto clauses = parse_program(sym, R"(
    % a comment
    a(1). % trailing
  )");
  EXPECT_EQ(clauses.size(), 1u);
}

TEST(PrologParser, ErrorsCarryPosition) {
  SymbolTable sym;
  EXPECT_THROW(parse_program(sym, "p(1"), ParseError);
  EXPECT_THROW(parse_program(sym, "p(1) q"), ParseError);
  EXPECT_THROW(parse_query(sym, "@@@"), ParseError);
}

// ---------------------------------------------------------------------------
// Solver
// ---------------------------------------------------------------------------

Database family() {
  Database db;
  db.consult(R"(
    parent(tom, bob).
    parent(tom, liz).
    parent(bob, ann).
    parent(bob, pat).
    grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
    sibling(X, Y) :- parent(P, X), parent(P, Y).
  )");
  return db;
}

TEST(PrologSolver, GroundFactSucceeds) {
  Database db = family();
  Solver s(db);
  EXPECT_TRUE(s.solve_first(parse_query(db.symbols, "parent(tom, bob)")).has_value());
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "parent(bob, tom)")).has_value());
}

TEST(PrologSolver, VariableQueryEnumeratesInClauseOrder) {
  Database db = family();
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "parent(tom, X)"));
  ASSERT_EQ(sols.size(), 2u);
  EXPECT_EQ(sols[0].at("X"), "bob");
  EXPECT_EQ(sols[1].at("X"), "liz");
}

TEST(PrologSolver, RuleWithJoin) {
  Database db = family();
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "grandparent(tom, W)"));
  ASSERT_EQ(sols.size(), 2u);
  EXPECT_EQ(sols[0].at("W"), "ann");
  EXPECT_EQ(sols[1].at("W"), "pat");
}

TEST(PrologSolver, SolutionLimitStopsSearch) {
  Database db = family();
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "parent(A, B)"), 3);
  EXPECT_EQ(sols.size(), 3u);
}

TEST(PrologSolver, RecursionOverLists) {
  Database db;
  db.consult(R"(
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
    member(X, [X|_]).
    member(X, [_|T]) :- member(X, T).
  )");
  Solver s(db);
  const auto sol =
      s.solve_first(parse_query(db.symbols, "append([1,2], [3,4], Z)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("Z"), "[1,2,3,4]");

  // All splits of a list: append(X, Y, [1,2,3]) has 4 solutions.
  const auto splits =
      s.solve_all(parse_query(db.symbols, "append(X, Y, [1,2,3])"));
  EXPECT_EQ(splits.size(), 4u);

  const auto members = s.solve_all(parse_query(db.symbols, "member(M, [a,b,c])"));
  ASSERT_EQ(members.size(), 3u);
  EXPECT_EQ(members[1].at("M"), "b");
}

TEST(PrologSolver, ArithmeticIsAndComparisons) {
  Database db;
  db.consult("double(X, Y) :- Y is X * 2.");
  Solver s(db);
  const auto sol = s.solve_first(parse_query(db.symbols, "double(21, Z)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("Z"), "42");

  EXPECT_TRUE(s.solve_first(parse_query(db.symbols, "X is 7 mod 3, X =:= 1")).has_value());
  EXPECT_TRUE(s.solve_first(parse_query(db.symbols, "X is 10 // 3, X =:= 3")).has_value());
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "1 > 2")).has_value());
  EXPECT_TRUE(s.solve_first(parse_query(db.symbols, "2 >= 2, 1 =< 2, 3 =\\= 4")).has_value());
}

TEST(PrologSolver, CutPrunesClauseAlternatives) {
  Database db;
  db.consult(R"(
    max(X, Y, X) :- X >= Y, !.
    max(_, Y, Y).
  )");
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "max(3, 2, M)"));
  ASSERT_EQ(sols.size(), 1u);  // without the cut there would be two
  EXPECT_EQ(sols[0].at("M"), "3");
  const auto sols2 = s.solve_all(parse_query(db.symbols, "max(1, 5, M)"));
  ASSERT_EQ(sols2.size(), 1u);
  EXPECT_EQ(sols2[0].at("M"), "5");
}

TEST(PrologSolver, CutAlsoPrunesLeftSiblingChoices) {
  Database db;
  db.consult(R"(
    num(1).
    num(2).
    num(3).
    first(X) :- num(X), !.
  )");
  Solver s(db);
  const auto sols = s.solve_all(parse_query(db.symbols, "first(X)"));
  ASSERT_EQ(sols.size(), 1u);
  EXPECT_EQ(sols[0].at("X"), "1");
}

TEST(PrologSolver, FailForcesBacktracking) {
  Database db;
  db.consult("n(1). n(2).");
  Solver s(db);
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "n(X), fail")).has_value());
  EXPECT_GE(s.steps(), 2u);  // both clauses tried
}

TEST(PrologSolver, StepBudgetStopsRunawaySearch) {
  Database db;
  db.consult("loop :- loop.");
  Solver::Options o;
  o.max_steps = 1000;
  Solver s(db, o);
  EXPECT_FALSE(s.solve_first(parse_query(db.symbols, "loop")).has_value());
  EXPECT_TRUE(s.budget_exhausted());
}

TEST(PrologSolver, StepsCountGrowsWithSearchDepth) {
  Database db;
  db.consult(R"(
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
  )");
  Solver s(db);
  (void)s.solve_first(parse_query(db.symbols, "append([1,2], [], Z)"));
  const auto short_steps = s.steps();
  (void)s.solve_first(
      parse_query(db.symbols, "append([1,2,3,4,5,6,7,8], [], Z)"));
  EXPECT_GT(s.steps(), short_steps);
}

// The paper's own motivating example: unification binds X in equal(X, elrod).
TEST(PrologSolver, PaperEqualExample) {
  Database db;
  db.consult("equal(X, X).");
  Solver s(db);
  const auto sol = s.solve_first(parse_query(db.symbols, "equal(X, elrod)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("X"), "elrod");
}

const char* kQueens = R"(
  queens(N, Qs) :- range(1, N, Ns), perm(Ns, Qs), safe(Qs).
  range(L, H, [L|T]) :- L < H, L1 is L + 1, range(L1, H, T).
  range(H, H, [H]).
  perm([], []).
  perm(L, [H|T]) :- select(H, L, R), perm(R, T).
  select(X, [X|T], T).
  select(X, [H|T], [H|R]) :- select(X, T, R).
  safe([]).
  safe([Q|Qs]) :- noattack(Q, Qs, 1), safe(Qs).
  noattack(_, [], _).
  noattack(Q, [Q1|Qs], D) :-
    Q =\= Q1, Q1 - Q =\= D, Q - Q1 =\= D,
    D1 is D + 1, noattack(Q, Qs, D1).
)";

TEST(PrologSolver, SixQueensHasSolutions) {
  Database db;
  db.consult(kQueens);
  Solver s(db);
  const auto sol = s.solve_first(parse_query(db.symbols, "queens(6, Qs)"));
  ASSERT_TRUE(sol.has_value());
  EXPECT_EQ(sol->at("Qs"), "[2,4,6,1,3,5]");
  // 6-queens has exactly 4 solutions.
  const auto all = s.solve_all(parse_query(db.symbols, "queens(6, Qs)"));
  EXPECT_EQ(all.size(), 4u);
}

// ---------------------------------------------------------------------------
// OR-parallel execution
// ---------------------------------------------------------------------------

Database search_db() {
  // Three top-level strategies with very different costs; strategy
  // effectiveness is data-dependent — the paper's ideal case.
  Database db;
  db.consult(R"(
    append([], L, L).
    append([H|T], L, [H|R]) :- append(T, L, R).
    len([], 0).
    len([_|T], N) :- len(T, M), N is M + 1.
    solve(X) :- strategy1(X).
    solve(X) :- strategy2(X).
    solve(X) :- strategy3(X).
    strategy1(X) :- burn(50), X = slow1.
    strategy2(X) :- burn(10), X = quick.
    strategy3(X) :- burn(60), X = slow2.
    burn(0).
    burn(N) :- N > 0, M is N - 1, burn(M), burn_leaf.
    burn_leaf.
  )");
  return db;
}

TEST(PrologOrParallel, BranchProfilesMeasureWork) {
  Database db = search_db();
  const auto q = parse_query(db.symbols, "solve(X)");
  const auto profiles = profile_branches(db, q);
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_TRUE(profiles[0].found);
  EXPECT_TRUE(profiles[1].found);
  EXPECT_TRUE(profiles[2].found);
  // strategy2 does the least work.
  EXPECT_LT(profiles[1].steps, profiles[0].steps);
  EXPECT_LT(profiles[1].steps, profiles[2].steps);
}

TEST(PrologOrParallel, RealProcessesReturnAValidSolution) {
  Database db = search_db();
  const auto q = parse_query(db.symbols, "solve(X)");
  const auto r = solve_or_parallel(db, q);
  ASSERT_TRUE(r.found);
  // Any branch's solution is semantically valid (nondeterministic choice);
  // the winner must be one of the three strategies.
  EXPECT_GE(r.winner_branch, 0);
  EXPECT_LE(r.winner_branch, 2);
  const std::string x = r.solution.at("X");
  EXPECT_TRUE(x == "quick" || x == "slow1" || x == "slow2");
}

TEST(PrologOrParallel, FailingBranchesNeverWin) {
  Database db;
  db.consult(R"(
    pick(X) :- fail_branch(X).
    pick(X) :- ok_branch(X).
    fail_branch(_) :- fail.
    ok_branch(found).
  )");
  const auto q = parse_query(db.symbols, "pick(X)");
  const auto r = solve_or_parallel(db, q);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.winner_branch, 1);
  EXPECT_EQ(r.solution.at("X"), "found");
}

TEST(PrologOrParallel, AllBranchesFailingFailsTheQuery) {
  Database db;
  db.consult(R"(
    p(X) :- q(X).
    p(X) :- r(X).
    q(_) :- fail.
    r(_) :- fail.
  )");
  const auto q = parse_query(db.symbols, "p(X)");
  const auto r = solve_or_parallel(db, q);
  EXPECT_FALSE(r.found);
}

TEST(PrologOrParallel, SimulatedSpeedupOnDispersedBranches) {
  Database db = search_db();
  const auto q = parse_query(db.symbols, "solve(X)");
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(4);
  cfg.address_space_pages = 32;
  // At 1 ms per inference the branch times tower over the fork overhead.
  const auto r = simulate_or_parallel(db, q, /*usec_per_inference=*/1000.0, cfg);
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.branches.size(), 3u);
  // Sequential tries strategy1 first and succeeds there — but OR-parallel
  // returns as soon as the cheap strategy2 finishes.
  EXPECT_GT(r.speedup, 1.0);
}

TEST(PrologOrParallel, TinyBranchesMakeOverheadDominate) {
  Database db;
  db.consult(R"(
    t(1).
    t(2).
  )");
  const auto q = parse_query(db.symbols, "t(X)");
  sim::Kernel::Config cfg;
  cfg.machine = sim::MachineModel::shared_memory_mp(4);
  cfg.address_space_pages = 64;
  // At 1 us per inference the spawn overhead dwarfs the work: PI < 1.
  const auto r = simulate_or_parallel(db, q, 1.0, cfg);
  ASSERT_TRUE(r.found);
  EXPECT_LT(r.speedup, 1.0);
}

}  // namespace
}  // namespace altx::prolog
