// Trace completeness under injected faults.
//
// The observability contract the tentpole promises: a fault-injected run
// with tracing enabled leaves a COMPLETE story in the shared ring — every
// child the parent ever forked has exactly one terminal fate event, that
// fate agrees with AltGroup's own classification, and this holds whatever
// the seeded injector does to the children (SIGKILL, SIGSEGV, hangs,
// dropped commits, early exits), including across supervised_race retries.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <map>
#include <set>
#include <tuple>

#include "constrained.hpp"
#include "obs/history.hpp"
#include "obs/phase.hpp"
#include "obs/profile.hpp"
#include "obs/trace.hpp"
#include "posix/fault.hpp"
#include "posix/governor.hpp"
#include "posix/predictor.hpp"
#include "posix/race.hpp"
#include "posix/supervisor.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;
using obs::EventKind;
using obs::Record;

int sweep_zombies() {
  int n = 0;
  while (::waitpid(-1, nullptr, WNOHANG) > 0) ++n;
  return n;
}

/// Three alternatives with distinct speeds; only #2 viable. 10 ms of sleep
/// per child gives every injected hang/delay room to matter.
std::vector<AlternativeFn<int>> one_viable_alts() {
  return {
      [] { ::usleep(2'000); return std::optional<int>(); },
      [] { ::usleep(4'000); return std::optional<int>(7); },
      [] { ::usleep(6'000); return std::optional<int>(); },
  };
}

/// Per-(race, child) census of one trace snapshot.
struct TraceCensus {
  std::map<std::uint32_t, std::set<int>> forked;  // race -> children forked
  std::map<std::pair<std::uint32_t, int>, std::vector<std::uint64_t>> fates;
  std::map<std::uint32_t, const Record*> decided;

  explicit TraceCensus(const std::vector<Record>& recs) {
    for (const Record& r : recs) {
      if (r.kind == EventKind::kFork) {
        forked[r.race_id].insert(r.child_index);
      } else if (r.kind == EventKind::kChildFate) {
        fates[{r.race_id, r.child_index}].push_back(r.a);
      } else if (r.kind == EventKind::kRaceDecided) {
        decided[r.race_id] = &r;
      }
    }
  }
};

/// The core assertion: every forked child of every race has exactly one
/// terminal fate event, and no fate exists for a child never forked.
void assert_complete(const std::vector<Record>& recs) {
  TraceCensus c(recs);
  for (const auto& [race, children] : c.forked) {
    EXPECT_NE(race, 0u);
    for (const int child : children) {
      const auto it = c.fates.find({race, child});
      ASSERT_NE(it, c.fates.end())
          << "race " << race << " child " << child << ": no fate event";
      EXPECT_EQ(it->second.size(), 1u)
          << "race " << race << " child " << child << ": duplicate fates";
      EXPECT_NE(static_cast<ChildFate>(it->second.front()),
                ChildFate::kRunning);
    }
    // Every race that forked also reached a verdict.
    EXPECT_TRUE(c.decided.contains(race)) << "race " << race << " undecided";
  }
  for (const auto& [key, v] : c.fates) {
    EXPECT_TRUE(c.forked.contains(key.first) &&
                c.forked.at(key.first).contains(key.second))
        << "fate for a child never forked";
  }
}

/// Census of trace fates for one race must equal the report's census.
void assert_agrees(const std::vector<Record>& recs, const RaceReport& rep) {
  std::map<ChildFate, int> trace_counts;
  for (const Record& r : recs) {
    if (r.kind == EventKind::kChildFate) {
      ++trace_counts[static_cast<ChildFate>(r.a)];
    }
  }
  EXPECT_EQ(trace_counts[ChildFate::kCommitted], rep.committed);
  EXPECT_EQ(trace_counts[ChildFate::kAborted], rep.aborted);
  EXPECT_EQ(trace_counts[ChildFate::kTooLate], rep.too_late);
  EXPECT_EQ(trace_counts[ChildFate::kCrashed], rep.crashed);
  EXPECT_EQ(trace_counts[ChildFate::kHung], rep.hung);
  EXPECT_EQ(trace_counts[ChildFate::kEliminated], rep.eliminated);
  EXPECT_EQ(trace_counts[ChildFate::kPredictedLoser], rep.predicted_losers);
  // And the recorded verdict is the group's verdict.
  for (const Record& r : recs) {
    if (r.kind == EventKind::kRaceDecided) {
      EXPECT_EQ(static_cast<WaitVerdict>(r.a), rep.verdict);
    }
  }
}

class TraceCompleteness : public ::testing::Test {
 protected:
  void SetUp() override {
    obs::enable_for_test(1 << 14);
    obs::reset();
  }
  void TearDown() override {
    EXPECT_EQ(sweep_zombies(), 0);
    obs::reset();
  }
};

TEST_F(TraceCompleteness, CleanRace) {
  RaceOptions opts;
  opts.timeout = 5'000ms;
  RaceReport rep;
  opts.report = &rep;
  const auto r = race<int>(one_viable_alts(), opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7);
  const auto recs = obs::snapshot();
  assert_complete(recs);
  assert_agrees(recs, rep);
  // One race, three forks, one winner.
  TraceCensus c(recs);
  ASSERT_EQ(c.forked.size(), 1u);
  EXPECT_EQ(c.forked.begin()->second.size(), 3u);
}

TEST_F(TraceCompleteness, EveryFaultKindLeavesACompleteTrace) {
  const struct { FaultKind kind; double rate; } plans[] = {
      {FaultKind::kCrashSegv, 0.6}, {FaultKind::kCrashKill, 0.6},
      {FaultKind::kHang, 0.6},      {FaultKind::kDelay, 0.6},
      {FaultKind::kEarlyExit, 0.6}, {FaultKind::kDropCommit, 0.6},
  };
  for (const auto& plan : plans) {
    FaultProfile p;
    switch (plan.kind) {
      case FaultKind::kCrashSegv: p.crash_segv = plan.rate; break;
      case FaultKind::kCrashKill: p.crash_kill = plan.rate; break;
      case FaultKind::kHang: p.hang = plan.rate; break;
      case FaultKind::kDelay: p.delay = plan.rate; break;
      case FaultKind::kEarlyExit: p.early_exit = plan.rate; break;
      case FaultKind::kDropCommit: p.drop_commit = plan.rate; break;
      case FaultKind::kCpuSpin: p.cpu_spin = plan.rate; break;
      case FaultKind::kMemHog: p.mem_hog = plan.rate; break;
      case FaultKind::kNone: break;
    }
    p.delay_for = 10ms;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      obs::reset();
      FaultInjector inj(seed, p);
      RaceOptions opts;
      opts.timeout = 300ms;
      opts.fault = &inj;
      RaceReport rep;
      opts.report = &rep;
      (void)race<int>(one_viable_alts(), opts);
      const auto recs = obs::snapshot();
      assert_complete(recs);
      assert_agrees(recs, rep);
      EXPECT_EQ(sweep_zombies(), 0);
    }
  }
}

TEST_F(TraceCompleteness, PredictedKillsPairWithTerminalFatesUnderEveryFaultKind) {
  // The predictor's additions to the story must stay complete under the same
  // fault matrix: every predicted race tells its plan exactly once, every
  // kPredKill names a child that was really forked and that still reached
  // exactly one terminal fate, and every kPredictedLoser fate is explained
  // by a kill event. Histories of 1 ms against arms that sleep 2–6 ms (or
  // hang outright) make the early-kill path fire constantly.
  ALTX_SKIP_IF_CONSTRAINED(8, 256);
  constexpr std::uint64_t kSite = 0x7ace'0001;
  constexpr std::uint64_t kMs = 1'000'000;
  const struct { FaultKind kind; double rate; } plans[] = {
      {FaultKind::kCrashSegv, 0.6}, {FaultKind::kCrashKill, 0.6},
      {FaultKind::kHang, 0.6},      {FaultKind::kDelay, 0.6},
      {FaultKind::kEarlyExit, 0.6}, {FaultKind::kDropCommit, 0.6},
  };
  bool saw_pred_kill = false;
  for (const auto& plan : plans) {
    FaultProfile p;
    switch (plan.kind) {
      case FaultKind::kCrashSegv: p.crash_segv = plan.rate; break;
      case FaultKind::kCrashKill: p.crash_kill = plan.rate; break;
      case FaultKind::kHang: p.hang = plan.rate; break;
      case FaultKind::kDelay: p.delay = plan.rate; break;
      case FaultKind::kEarlyExit: p.early_exit = plan.rate; break;
      case FaultKind::kDropCommit: p.drop_commit = plan.rate; break;
      case FaultKind::kCpuSpin: p.cpu_spin = plan.rate; break;
      case FaultKind::kMemHog: p.mem_hog = plan.rate; break;
      case FaultKind::kNone: break;
    }
    p.delay_for = 10ms;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      obs::reset();
      obs::HistoryStore store(64);
      for (std::uint32_t arm = 1; arm <= 3; ++arm) {
        for (int s = 0; s < 10; ++s) {
          store.record(kSite, arm, 1 * kMs, kMs / 2, true);
        }
      }
      PredictorConfig pc;
      pc.enabled = true;
      SpeculationPlanner planner(pc, &store);
      GovernorConfig gc;
      gc.predict_watch = true;  // every arm registers: exact live census
      gc.poll_interval = 2ms;
      SpeculationGovernor gov(gc);
      FaultInjector inj(seed, p);
      RaceOptions opts;
      opts.timeout = 300ms;
      opts.fault = &inj;
      opts.site_id = kSite;
      opts.planner = &planner;
      opts.governor = &gov;
      RaceReport rep;
      opts.report = &rep;
      (void)race<int>(one_viable_alts(), opts);
      const auto recs = obs::snapshot();
      assert_complete(recs);
      assert_agrees(recs, rep);

      TraceCensus c(recs);
      std::map<std::pair<std::uint32_t, int>, int> pred_kills;
      std::map<std::uint32_t, int> pred_plans;
      for (const Record& r : recs) {
        if (r.kind == EventKind::kPredKill) {
          ++pred_kills[{r.race_id, r.child_index}];
        } else if (r.kind == EventKind::kPredPlan) {
          ++pred_plans[r.race_id];
        }
      }
      for (const auto& [race, children] : c.forked) {
        EXPECT_EQ(pred_plans[race], 1)
            << "race " << race << ": plan told " << pred_plans[race]
            << " times";
      }
      for (const auto& [key, n] : pred_kills) {
        saw_pred_kill = true;
        ASSERT_TRUE(c.forked.contains(key.first) &&
                    c.forked.at(key.first).contains(key.second))
            << "kPredKill for a child never forked";
        ASSERT_TRUE(c.fates.contains(key))
            << "race " << key.first << " child " << key.second
            << ": killed but no terminal fate";
        EXPECT_EQ(c.fates.at(key).size(), 1u);
      }
      for (const auto& [key, fates] : c.fates) {
        if (static_cast<ChildFate>(fates.front()) ==
            ChildFate::kPredictedLoser) {
          EXPECT_TRUE(pred_kills.contains(key))
              << "race " << key.first << " child " << key.second
              << ": predicted-loser fate without a kPredKill";
        }
      }
      EXPECT_EQ(sweep_zombies(), 0);
    }
  }
  // 30 seeded runs of 1 ms quantiles against 2–6 ms arms: the kill path must
  // actually have fired, or the pairing assertions above were all vacuous.
  EXPECT_TRUE(saw_pred_kill);
}

TEST_F(TraceCompleteness, SupervisedRetriesStayComplete) {
  // A hostile plan forces retries (and sometimes the sequential fallback);
  // every attempt's race must still tell a complete story, and the attempt
  // ordinal must link each race's records to its supervisor attempt.
  FaultProfile p;
  p.crash_kill = 0.5;
  p.hang = 0.2;
  FaultInjector inj(/*seed=*/99, p);

  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 1ms;
  policy.max_backoff = 2ms;
  policy.base_timeout = 300ms;
  policy.seed = 99;

  RaceOptions opts;
  opts.timeout = 300ms;
  opts.fault = &inj;

  for (int trial = 0; trial < 10; ++trial) {
    obs::reset();
    (void)supervised_race<int>(one_viable_alts(), policy, opts);
    const auto recs = obs::snapshot();
    assert_complete(recs);

    // Attempts pair up, and each forked race carries one attempt ordinal.
    std::set<std::uint64_t> begun;
    std::set<std::uint64_t> ended;
    std::map<std::uint32_t, std::set<std::uint32_t>> attempts_of_race;
    for (const Record& r : recs) {
      if (r.kind == EventKind::kAttemptBegin) begun.insert(r.a);
      if (r.kind == EventKind::kAttemptEnd) ended.insert(r.a);
      if (r.kind == EventKind::kFork) {
        attempts_of_race[r.race_id].insert(r.attempt);
      }
    }
    EXPECT_EQ(begun, ended);
    for (const auto& [race, atts] : attempts_of_race) {
      EXPECT_EQ(atts.size(), 1u)
          << "race " << race << " spans multiple attempts";
    }
    EXPECT_EQ(sweep_zombies(), 0);
  }
}

/// Phase-span discipline: parent-side spans always pair (the parent is
/// never killed), child-side spans may dangle (a SIGKILL between begin and
/// end) but an end can never outnumber its begins, and the critical-path
/// reducer still attributes nearly all of every decided race's wall time —
/// whatever the injector does to the children.
void assert_phases_pair(const std::vector<Record>& recs) {
  // (race, child, phase) -> [begins, ends]
  std::map<std::tuple<std::uint32_t, int, std::uint64_t>, std::pair<int, int>>
      spans;
  for (const Record& r : recs) {
    if (r.kind == EventKind::kPhaseBegin) {
      ++spans[{r.race_id, r.child_index, r.a}].first;
    } else if (r.kind == EventKind::kPhaseEnd) {
      ++spans[{r.race_id, r.child_index, r.a}].second;
      EXPECT_LT(r.a, static_cast<std::uint64_t>(obs::kPhaseCount));
    }
  }
  for (const auto& [key, counts] : spans) {
    const auto& [race, child, phase] = key;
    if (child == 0) {
      EXPECT_EQ(counts.first, counts.second)
          << "race " << race << " parent phase " << phase
          << ": begin/end mismatch";
    } else {
      EXPECT_LE(counts.second, counts.first)
          << "race " << race << " child " << child << " phase " << phase
          << ": end without begin";
    }
  }
  for (const auto& [id, b] : obs::reduce_critical_path(recs)) {
    if (!b.decided || b.wall_ns == 0) continue;
    EXPECT_GE(b.coverage(), 0.90) << "race " << id << ": phases cover only "
                                  << b.coverage() * 100.0 << "% of wall";
    EXPECT_NE(b.dominant(), obs::Phase::kNone) << "race " << id;
  }
}

TEST_F(TraceCompleteness, PhaseSpansPairUnderEveryFaultKind) {
  const struct { FaultKind kind; double rate; } plans[] = {
      {FaultKind::kCrashSegv, 0.6}, {FaultKind::kCrashKill, 0.6},
      {FaultKind::kHang, 0.6},      {FaultKind::kDelay, 0.6},
      {FaultKind::kEarlyExit, 0.6}, {FaultKind::kDropCommit, 0.6},
  };
  for (const auto& plan : plans) {
    FaultProfile p;
    switch (plan.kind) {
      case FaultKind::kCrashSegv: p.crash_segv = plan.rate; break;
      case FaultKind::kCrashKill: p.crash_kill = plan.rate; break;
      case FaultKind::kHang: p.hang = plan.rate; break;
      case FaultKind::kDelay: p.delay = plan.rate; break;
      case FaultKind::kEarlyExit: p.early_exit = plan.rate; break;
      case FaultKind::kDropCommit: p.drop_commit = plan.rate; break;
      case FaultKind::kCpuSpin: p.cpu_spin = plan.rate; break;
      case FaultKind::kMemHog: p.mem_hog = plan.rate; break;
      case FaultKind::kNone: break;
    }
    p.delay_for = 10ms;
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      obs::reset();
      FaultInjector inj(seed, p);
      RaceOptions opts;
      opts.timeout = 300ms;
      opts.fault = &inj;
      (void)race<int>(one_viable_alts(), opts);
      assert_phases_pair(obs::snapshot());
      EXPECT_EQ(sweep_zombies(), 0);
    }
  }
}

TEST_F(TraceCompleteness, ReplicatedRaceTracesEveryReplica) {
  FaultProfile p;
  p.crash_kill = 0.4;
  FaultInjector inj(/*seed=*/7, p);
  RaceOptions opts;
  opts.timeout = 2'000ms;
  opts.fault = &inj;
  opts.replicas = 2;
  RaceReport rep;
  opts.report = &rep;
  (void)race<int>(one_viable_alts(), opts);
  const auto recs = obs::snapshot();
  assert_complete(recs);
  assert_agrees(recs, rep);
  TraceCensus c(recs);
  ASSERT_EQ(c.forked.size(), 1u);
  EXPECT_EQ(c.forked.begin()->second.size(), 6u);  // 3 alts x 2 replicas
}

TEST_F(TraceCompleteness, TraceIdStampsEveryRecordIncludingKilledChildren) {
  // The ambient cross-process trace id is inherited through fork, so even a
  // child the injector SIGKILLs mid-flight leaves records carrying the id —
  // its last gasp is still attributable after a stitch. The id is also on
  // the parent's post-mortem records (kChildFate, kRaceDecided).
  FaultProfile p;
  p.crash_kill = 0.6;
  p.hang = 0.2;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    obs::reset();  // clears the ambient id too — re-arm after, not before
    const std::uint64_t trace = obs::mint_trace_id();
    ASSERT_NE(trace, 0u);
    obs::set_current_trace(trace);
    EXPECT_EQ(obs::current_trace(), trace);
    FaultInjector inj(seed, p);
    RaceOptions opts;
    opts.timeout = 300ms;
    opts.fault = &inj;
    (void)race<int>(one_viable_alts(), opts);
    obs::set_current_trace(0);
    const auto recs = obs::snapshot();
    ASSERT_FALSE(recs.empty());
    bool child_record = false;
    for (const Record& r : recs) {
      EXPECT_EQ(r.trace_id, trace)
          << to_string(r.kind) << " from child " << r.child_index
          << " lost the trace id";
      if (r.child_index != 0) child_record = true;
    }
    EXPECT_TRUE(child_record) << "no child-side records to check";
    assert_complete(recs);
  }
}

TEST_F(TraceCompleteness, UntracedRacesStampZero) {
  // With no ambient id armed, records carry trace 0 — the exporters and the
  // per-trace reducer treat that as "local, group by race_id".
  RaceOptions opts;
  opts.timeout = 5'000ms;
  (void)race<int>(one_viable_alts(), opts);
  const auto recs = obs::snapshot();
  ASSERT_FALSE(recs.empty());
  for (const Record& r : recs) EXPECT_EQ(r.trace_id, 0u);
}

/// Burn CPU (not wall): ITIMER_PROF only ticks while the arm is on-CPU.
void spin_cpu_ms(long ms) {
  volatile std::uint64_t sink = 0;
  const auto t0 = std::chrono::steady_clock::now();
  while (std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - t0)
             .count() < ms) {
    for (int i = 0; i < 512; ++i) sink = sink + static_cast<std::uint64_t>(i);
  }
}

TEST_F(TraceCompleteness, ProfilerSamplesSurviveElimination) {
  obs::prof_enable(997);
  // The winner burns ~60 ms of CPU before committing, so both losers accrue
  // well over the kernel's ITIMER_PROF quantum (~4 ms at CONFIG_HZ=250)
  // before the SIGKILL lands mid-spin — their samples must already be in
  // the shared ring when they die.
  RaceOptions opts;
  opts.timeout = 10'000ms;
  const auto r = race<int>(
      {
          [] { spin_cpu_ms(60); return std::optional<int>(1); },
          [] { spin_cpu_ms(2'000); return std::optional<int>(2); },
          [] { spin_cpu_ms(2'000); return std::optional<int>(3); },
      },
      opts);
  obs::profdetail::g_prof_enabled = false;  // don't sample later tests
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 1);

  const auto recs = obs::snapshot();
  std::set<int> eliminated;
  std::map<int, int> samples;  // child -> kProfSample fragments
  for (const Record& rec : recs) {
    if (rec.kind == EventKind::kChildFate &&
        static_cast<ChildFate>(rec.a) == ChildFate::kEliminated) {
      eliminated.insert(rec.child_index);
    } else if (rec.kind == EventKind::kProfSample) {
      ++samples[rec.child_index];
      EXPECT_GE(obs::prof_total_fragments(rec.c), 1);
      EXPECT_LT(obs::prof_fragment(rec.c), obs::prof_total_fragments(rec.c));
    }
  }
  ASSERT_EQ(eliminated.size(), 2u);  // both spinning losers were SIGKILLed
  for (const int child : eliminated) {
    EXPECT_GE(samples[child], 1)
        << "child " << child << " was sampled for tens of ms of CPU but "
        << "left no kProfSample in the ring";
  }
  assert_complete(recs);
}

// ---- cross-hop reduction over a synthetic stitched trace ----------------

Record rec(std::uint64_t t_ns, std::uint32_t node, EventKind kind,
           std::uint64_t trace, std::uint64_t a = 0, std::uint64_t b = 0) {
  Record r;
  r.t_ns = t_ns;
  r.node_id = node;
  r.kind = kind;
  r.trace_id = trace;
  r.a = a;
  r.b = b;
  return r;
}

TEST(CrossHopReduction, TilesClientWallWithDaemonPhasesAndRpc) {
  // A stitched two-ring trace of one job: the client (node 0) brackets the
  // wall, the daemon/worker (node 1) contributes admission stamps and
  // phase spans. Timestamps share one monotonic clock, as on one host.
  const std::uint64_t T = 0xabcdef01ULL;
  const auto queue = static_cast<std::uint64_t>(obs::Phase::kSrvQueue);
  const auto arm = static_cast<std::uint64_t>(obs::Phase::kArmRun);
  const std::vector<Record> recs = {
      rec(1'000, 0, EventKind::kRaceBegin, T),
      rec(1'200, 1, EventKind::kSrvSubmit, T),  // 200 ns submit hop
      rec(1'200, 1, EventKind::kPhaseBegin, T, queue),
      rec(1'500, 1, EventKind::kPhaseEnd, T, queue, 300),
      rec(1'500, 1, EventKind::kPhaseBegin, T, arm),
      rec(2'300, 1, EventKind::kPhaseEnd, T, arm, 800),
      rec(2'400, 1, EventKind::kSrvResult, T),  // 200 ns reply hop
      rec(2'600, 0, EventKind::kRaceDecided, T),
  };
  const auto by_trace = obs::reduce_critical_path_by_trace(recs);
  ASSERT_EQ(by_trace.size(), 1u);
  const obs::PhaseBreakdown& b = by_trace.at(T);
  EXPECT_TRUE(b.decided);
  EXPECT_EQ(b.wall_ns, 1'600u);  // client begin → client decided
  EXPECT_EQ(b.phase_ns[static_cast<int>(obs::Phase::kSrvQueue)], 300u);
  EXPECT_EQ(b.phase_ns[static_cast<int>(obs::Phase::kArmRun)], 800u);
  EXPECT_EQ(b.rpc_ns, 400u);  // both wire legs, named rather than residue
  EXPECT_EQ(b.attributed_ns(), 1'500u);
  EXPECT_DOUBLE_EQ(b.coverage(), 1'500.0 / 1'600.0);
  EXPECT_EQ(b.dangling_begins, 0u);
}

TEST(CrossHopReduction, SpanSplitAcrossRingsIsNotDangling) {
  // Satellite regression: a span whose begin landed in one ring and end in
  // another (the worker died mid-handoff and the daemon closed it) is one
  // cross-hop span, not a dangling begin plus an orphan end.
  const std::uint64_t T = 0x1234ULL;
  const auto queue = static_cast<std::uint64_t>(obs::Phase::kSrvQueue);
  const std::vector<Record> recs = {
      rec(100, 0, EventKind::kRaceBegin, T),
      rec(150, 0, EventKind::kPhaseBegin, T, queue),  // begin: client ring
      rec(400, 1, EventKind::kPhaseEnd, T, queue, 250),  // end: daemon ring
      rec(500, 0, EventKind::kRaceDecided, T),
  };
  const auto by_trace = obs::reduce_critical_path_by_trace(recs);
  ASSERT_EQ(by_trace.size(), 1u);
  EXPECT_EQ(by_trace.at(T).dangling_begins, 0u);

  // A begin with no end anywhere still counts.
  const std::vector<Record> trunc = {
      rec(100, 0, EventKind::kRaceBegin, T),
      rec(150, 1, EventKind::kPhaseBegin, T, queue),
      rec(500, 0, EventKind::kRaceDecided, T),
  };
  EXPECT_EQ(obs::reduce_critical_path_by_trace(trunc).at(T).dangling_begins,
            1u);
}

TEST(CrossHopReduction, DaemonOnlyTraceHasNoRpcLeg) {
  // Without the client's bracket the outermost interval is the worker's
  // own race; the admission stamps lie outside it and must not inflate
  // attribution.
  const std::uint64_t T = 0x77ULL;
  const auto arm = static_cast<std::uint64_t>(obs::Phase::kArmRun);
  const std::vector<Record> recs = {
      rec(900, 1, EventKind::kSrvSubmit, T),  // before the race interval
      rec(1'000, 1, EventKind::kRaceBegin, T),
      rec(1'800, 1, EventKind::kPhaseEnd, T, arm, 700),
      rec(2'000, 1, EventKind::kRaceDecided, T),
      rec(2'100, 1, EventKind::kSrvResult, T),  // after it
  };
  const auto by_trace = obs::reduce_critical_path_by_trace(recs);
  const obs::PhaseBreakdown& b = by_trace.at(T);
  EXPECT_EQ(b.wall_ns, 1'000u);
  EXPECT_EQ(b.rpc_ns, 0u);
  EXPECT_EQ(b.attributed_ns(), 700u);
}

}  // namespace
}  // namespace altx::posix
