// Integration tests for predicated IPC inside the kernel simulator:
// multiple-worlds splitting (section 3.4.2), message death with its sending
// world, source-device gating (sections 3.1, 3.4.2) and buffered idempotent
// reads (section 6).
#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

constexpr Port kService = 1;
constexpr std::uint32_t kTty = 0;

Kernel::Config cfg(int cpus = 4) {
  Kernel::Config c;
  c.machine = MachineModel::shared_memory_mp(cpus);
  c.address_space_pages = 16;
  return c;
}

TEST(SimIpc, PlainSendRecv) {
  Kernel k(cfg());
  auto server = ProgramBuilder("server").bind(kService).recv(0, 0).build();
  auto client = ProgramBuilder("client").compute(1 * kMsec).send_u64(kService, 99).build();
  const Pid s = k.spawn_root(server);
  const Pid c = k.spawn_root(client);
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.exit_kind(c), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 99u);
  EXPECT_EQ(k.stats().world_splits, 0u);  // non-speculative sender
}

TEST(SimIpc, RecvBlocksUntilDelivery) {
  Kernel k(cfg());
  auto server = ProgramBuilder().bind(kService).recv(0, 0).build();
  auto client = ProgramBuilder().compute(200 * kMsec).send_u64(kService, 5).build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(client);
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_GE(k.now(), 200 * kMsec);
}

TEST(SimIpc, RecvTimeoutStoresFallback) {
  Kernel k(cfg());
  auto server =
      ProgramBuilder().bind(kService).recv(0, 0, 50 * kMsec, 0xdead).build();
  const Pid s = k.spawn_root(server);
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 0xdeadu);
}

TEST(SimIpc, SpeculativeMessageSplitsReceiver) {
  Kernel k(cfg());
  // A server receives one message from a speculative alternative, then a
  // plain confirmation message. The speculative receipt must split it.
  auto server = ProgramBuilder("server").bind(kService).recv(0, 0).recv(0, 1).build();
  auto talker = ProgramBuilder("talker")
                    .compute(5 * kMsec)
                    .send_u64(kService, 7)
                    .compute(50 * kMsec)
                    .build();
  auto quiet = ProgramBuilder("quiet").compute(100 * kMsec).build();
  auto confirm = ProgramBuilder("confirm").compute(400 * kMsec).send_u64(kService, 8).build();
  const Pid s = k.spawn_root(server);
  const Pid p = k.spawn_root(ProgramBuilder().alt({talker, quiet}).build());
  k.spawn_root(confirm);
  k.run();
  EXPECT_EQ(k.stats().world_splits, 1u);
  // The talker wins (it is faster), so the accepting world survives and the
  // rejecting world is eliminated.
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.exit_kind(p), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 7u);
  EXPECT_EQ(k.process(s)->as_.peek(0, 1), 8u);
  std::size_t eliminated_servers = 0;
  for (Pid pid : k.all_pids()) {
    if (k.exit_kind(pid) == ExitKind::kEliminated && k.process(pid)->frames_.front().prog->label == "server") {
      ++eliminated_servers;
    }
  }
  EXPECT_EQ(eliminated_servers, 1u);
}

TEST(SimIpc, RejectingWorldSurvivesWhenSenderLoses) {
  Kernel k(cfg());
  // The speculative talker LOSES its race; the accepting server world must
  // die and the rejecting world (which never saw the message) survives to
  // consume the confirmation.
  auto server = ProgramBuilder("server").bind(kService).recv(0, 0).build();
  auto talker = ProgramBuilder("talker")
                    .compute(5 * kMsec)
                    .send_u64(kService, 7)
                    .compute(300 * kMsec)
                    .build();
  auto quick = ProgramBuilder("quick").compute(20 * kMsec).build();
  auto confirm =
      ProgramBuilder("confirm").compute(500 * kMsec).send_u64(kService, 8).build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(ProgramBuilder().alt({talker, quick}).build());
  k.spawn_root(confirm);
  k.run();
  EXPECT_EQ(k.stats().world_splits, 1u);
  // One server world survived and saw only the confirmation value.
  std::vector<Pid> completed_servers;
  for (Pid pid : k.all_pids()) {
    const SimProcess* pr = k.process(pid);
    if (pr->frames_.front().prog->label == "server" &&
        k.exit_kind(pid) == ExitKind::kCompleted) {
      completed_servers.push_back(pid);
    }
  }
  ASSERT_EQ(completed_servers.size(), 1u);
  EXPECT_EQ(k.process(completed_servers[0])->as_.peek(0, 0), 8u);
  (void)s;
}

TEST(SimIpc, MessageFromDeadWorldIsDiscarded) {
  Kernel k(cfg());
  // The speculative sender loses long before the server even looks at its
  // inbox; canonicalization must drop the message as dead.
  auto talker = ProgramBuilder("talker")
                    .send_u64(kService, 7)
                    .compute(300 * kMsec)
                    .build();
  auto quick = ProgramBuilder("quick").compute(5 * kMsec).build();
  auto server = ProgramBuilder("server")
                    .compute(200 * kMsec)  // race is over by the time we bind
                    .bind(kService)
                    .recv(0, 0, 100 * kMsec, 0xfa11)
                    .build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(ProgramBuilder().alt({talker, quick}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 0xfa11u);
  EXPECT_EQ(k.stats().world_splits, 0u);
}

TEST(SimIpc, MessageFromWinnerIsDeliveredWithoutSplit) {
  Kernel k(cfg());
  // By the time the server receives, the speculative sender has already won;
  // canonicalization strips the resolved assumptions: no split needed.
  auto talker = ProgramBuilder("talker").send_u64(kService, 7).build();
  auto slow = ProgramBuilder("slow").compute(kSec).build();
  auto server = ProgramBuilder("server")
                    .compute(300 * kMsec)
                    .bind(kService)
                    .recv(0, 0)
                    .build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(ProgramBuilder().alt({talker, slow}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 7u);
  EXPECT_EQ(k.stats().world_splits, 0u);
}

TEST(SimIpc, GatedSourceWriterLosesToAViableSibling) {
  Kernel k(cfg());
  // The fast alternative tries to write the teletype: it is gated (it runs
  // under unresolved predicates), so the slower, source-free alternative wins
  // the race and the gated writer is eliminated — the write never appears.
  auto writer = ProgramBuilder("writer")
                    .compute(10 * kMsec)
                    .source_write(kTty, Bytes{'h', 'i'})
                    .build();
  auto slow = ProgramBuilder("slow").compute(kSec).write(0, 0, 1).build();
  const Pid p = k.spawn_root(ProgramBuilder().alt({writer, slow}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(p), ExitKind::kCompleted);
  EXPECT_EQ(k.process(p)->as_.peek(0, 0), 1u);
  EXPECT_TRUE(k.source(kTty).writes().empty());
}

TEST(SimIpc, SoleSourceWritingAlternativeDeadlocksUntilTimeout) {
  Kernel k(cfg());
  // If every alternative needs a source, the block cannot decide (the paper's
  // restriction: a speculative process cannot interface with sources). The
  // alt_wait TIMEOUT is the designed escape hatch.
  auto writer = ProgramBuilder("writer").source_write(kTty, Bytes{'x'}).build();
  auto on_fail = ProgramBuilder().write(0, 0, 0xf).build();
  const Pid p = k.spawn_root(
      ProgramBuilder().alt({writer}, 300 * kMsec, on_fail).build());
  k.run();
  EXPECT_EQ(k.exit_kind(p), ExitKind::kCompleted);
  EXPECT_EQ(k.process(p)->as_.peek(0, 0), 0xfu);
  EXPECT_EQ(k.stats().alt_timeouts, 1u);
  EXPECT_TRUE(k.source(kTty).writes().empty());
}

TEST(SimIpc, SourceWriteAfterCommitSucceeds) {
  Kernel k(cfg());
  // The parent performs the source write after absorbing the winner: exactly
  // one observable write, with the winner's data.
  auto a = ProgramBuilder().compute(5 * kMsec).write(0, 0, 'a').build();
  auto b = ProgramBuilder().compute(50 * kMsec).write(0, 0, 'b').build();
  auto prog = ProgramBuilder()
                  .alt({a, b})
                  .source_write(kTty, Bytes{'!'})
                  .build();
  const Pid p = k.spawn_root(prog);
  k.run();
  EXPECT_EQ(k.exit_kind(p), ExitKind::kCompleted);
  ASSERT_EQ(k.source(kTty).writes().size(), 1u);
  EXPECT_EQ(k.source(kTty).writes()[0].writer, p);
}

TEST(SimIpc, SourceReadsAreBufferedForIdempotence) {
  Kernel k(cfg());
  k.source(5).read_fn = [](std::uint64_t key) { return key * 10; };
  // Both alternatives read the same source key; the device must be consumed
  // once, with both readers seeing the same buffered value.
  auto a = ProgramBuilder().source_read(5, 3, 0, 0).compute(5 * kMsec).build();
  auto b = ProgramBuilder().source_read(5, 3, 0, 0).compute(50 * kMsec).build();
  const Pid p = k.spawn_root(ProgramBuilder().alt({a, b}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(p), ExitKind::kCompleted);
  EXPECT_EQ(k.process(p)->as_.peek(0, 0), 30u);
  EXPECT_EQ(k.source(5).consumed_reads(), 1u);
  EXPECT_EQ(k.stats().buffered_source_reads, 1u);
}

TEST(SimIpc, DoomedSenderCausesNoObservableSend) {
  auto c = cfg();
  c.elimination = Elimination::kAsynchronous;
  Kernel k(c);
  // The slow alternative sends a message after the fast one has already won
  // (while it is doomed but not yet killed). The message must never arrive.
  auto fast = ProgramBuilder().compute(1 * kMsec).build();
  auto slow = ProgramBuilder()
                  .compute(30 * kMsec)
                  .send_u64(kService, 666)
                  .compute(30 * kMsec)
                  .build();
  auto server = ProgramBuilder("server")
                    .bind(kService)
                    .recv(0, 0, kSec, 0)
                    .build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(ProgramBuilder().alt({fast, slow}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 0u);
}

TEST(SimIpc, BacklogDeliveredOnBind) {
  Kernel k(cfg());
  auto client = ProgramBuilder().send_u64(kService, 11).build();
  auto server = ProgramBuilder().compute(100 * kMsec).bind(kService).recv(0, 0).build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(client);
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 11u);
}

TEST(SimIpc, FifoOrderPreservedPerSender) {
  Kernel k(cfg());
  auto client = ProgramBuilder()
                    .send_u64(kService, 1)
                    .send_u64(kService, 2)
                    .send_u64(kService, 3)
                    .build();
  auto server = ProgramBuilder()
                    .bind(kService)
                    .recv(0, 0)
                    .recv(0, 1)
                    .recv(0, 2)
                    .build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(client);
  k.run();
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 1u);
  EXPECT_EQ(k.process(s)->as_.peek(0, 1), 2u);
  EXPECT_EQ(k.process(s)->as_.peek(0, 2), 3u);
}

TEST(SimIpc, CommitGateHoldsSpeculativeCompletion) {
  Kernel k(cfg());
  // A top-level process that accepted a speculative message cannot complete
  // until the sender's race resolves.
  auto talker = ProgramBuilder("talker")
                    .send_u64(kService, 9)
                    .compute(100 * kMsec)
                    .build();
  auto rival = ProgramBuilder("rival").compute(400 * kMsec).build();
  auto server = ProgramBuilder("server").bind(kService).recv(0, 0).build();
  const Pid s = k.spawn_root(server);
  k.spawn_root(ProgramBuilder().alt({talker, rival}).build());
  k.run();
  // talker wins at ~100ms; until then the accepting server world parks at
  // the commit gate. Afterwards it completes with the talker's value.
  EXPECT_EQ(k.exit_kind(s), ExitKind::kCompleted);
  EXPECT_EQ(k.process(s)->as_.peek(0, 0), 9u);
}

}  // namespace
}  // namespace altx::sim
