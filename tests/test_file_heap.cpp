// Tests for FileHeap: speculative transactions on a durable file through
// MAP_PRIVATE copy-on-write — the single-level-store side of the paper
// (files are named sets of pages; alternative blocks behave as transactions).
#include <gtest/gtest.h>
#include <unistd.h>

#include <string>

#include "posix/file_heap.hpp"
#include "posix/race.hpp"

namespace altx::posix {
namespace {

std::string temp_path(const char* tag) {
  return "/tmp/altx_fileheap_" + std::string(tag) + "_" +
         std::to_string(::getpid());
}

struct PathGuard {
  std::string path;
  explicit PathGuard(std::string p) : path(std::move(p)) {}
  ~PathGuard() { ::unlink(path.c_str()); }
};

TEST(FileHeap, CreatesAndZeroExtendsTheFile) {
  PathGuard g(temp_path("create"));
  FileHeap h(g.path, 4);
  EXPECT_EQ(h.pages(), 4u);
  EXPECT_EQ(h.at<std::uint64_t>(0)[0], 0u);
}

TEST(FileHeap, WritesAreInvisibleOnDiskUntilCommit) {
  PathGuard g(temp_path("invisible"));
  {
    FileHeap h(g.path, 2);
    h.at<std::uint64_t>(0)[0] = 42;  // private COW page, not the file
  }
  FileHeap reread(g.path, 2);
  EXPECT_EQ(reread.at<std::uint64_t>(0)[0], 0u);
}

TEST(FileHeap, CommitPersistsMarkedPages) {
  PathGuard g(temp_path("commit"));
  {
    FileHeap h(g.path, 4);
    h.at<std::uint64_t>(h.page_size())[0] = 7;
    h.mark_dirty(1);
    EXPECT_EQ(h.commit(), 1u);
  }
  FileHeap reread(g.path, 4);
  EXPECT_EQ(reread.at<std::uint64_t>(reread.page_size())[0], 7u);
}

TEST(FileHeap, RollbackRestoresDiskState) {
  PathGuard g(temp_path("rollback"));
  FileHeap h(g.path, 2);
  h.at<std::uint64_t>(0)[0] = 5;
  h.mark_dirty(0);
  h.commit();
  h.at<std::uint64_t>(0)[0] = 99;  // uncommitted change
  h.rollback();
  EXPECT_EQ(h.at<std::uint64_t>(0)[0], 5u);  // back to the committed value
}

TEST(FileHeap, TrackingRecordsChildWrites) {
  PathGuard g(temp_path("track"));
  FileHeap h(g.path, 8);
  h.begin_tracking();
  h.at<std::uint64_t>(3 * h.page_size())[0] = 1;
  h.at<std::uint64_t>(6 * h.page_size())[0] = 2;
  h.end_tracking();
  auto d = h.dirty_pages();
  std::sort(d.begin(), d.end());
  EXPECT_EQ(d, (std::vector<std::uint32_t>{3, 6}));
}

TEST(FileHeap, PatchRoundTripAcrossInstances) {
  PathGuard g1(temp_path("patch_a"));
  PathGuard g2(temp_path("patch_b"));
  FileHeap a(g1.path, 4);
  FileHeap b(g2.path, 4);
  a.begin_tracking();
  a.at<std::uint64_t>(2 * a.page_size())[0] = 0xfeed;
  const Bytes patch = a.serialize_dirty();
  a.end_tracking();
  EXPECT_EQ(b.apply_patch(patch), 1u);
  EXPECT_EQ(b.at<std::uint64_t>(2 * b.page_size())[0], 0xfeedu);
  // apply_patch marks the pages for commit.
  EXPECT_EQ(b.commit(), 1u);
}

TEST(FileHeap, SpeculativeFileTransactionEndToEnd) {
  // The full paper pattern over a durable file: two alternatives race to
  // update a record; the winner's pages are absorbed and committed; the
  // loser's update never reaches the disk.
  PathGuard g(temp_path("txn"));
  FileHeap heap(g.path, 8);
  auto* record = heap.at<std::uint64_t>(2 * heap.page_size());
  record[0] = 100;
  heap.mark_dirty(2);
  heap.commit();  // initial state on disk

  AltGroupOptions opts;
  AltGroup group(opts);
  const int who = group.alt_spawn(2);
  if (who > 0) {
    heap.begin_tracking();
    if (who == 1) {
      ::usleep(5'000);
      record[0] += 11;  // winner's update
    } else {
      ::usleep(200'000);
      record[0] += 999;
    }
    group.child_commit(heap.serialize_dirty());
    group.child_abort();
  }
  auto win = group.alt_wait(std::chrono::seconds(5));
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(win->index, 1);
  EXPECT_EQ(heap.apply_patch(win->result), 1u);
  EXPECT_EQ(record[0], 111u);
  EXPECT_GE(heap.commit(), 1u);

  // Fresh mapping reads the committed value.
  FileHeap reread(g.path, 8);
  EXPECT_EQ(reread.at<std::uint64_t>(2 * reread.page_size())[0], 111u);
}

TEST(FileHeap, FailedBlockLeavesFileUntouched) {
  PathGuard g(temp_path("failed"));
  FileHeap heap(g.path, 4);
  heap.at<std::uint64_t>(0)[0] = 1;
  heap.mark_dirty(0);
  heap.commit();

  AltGroup group;
  const int who = group.alt_spawn(2);
  if (who > 0) {
    heap.begin_tracking();
    heap.at<std::uint64_t>(0)[0] = 0xbad;
    group.child_abort();  // both alternatives fail their guard
  }
  auto win = group.alt_wait(std::chrono::seconds(5));
  EXPECT_FALSE(win.has_value());
  heap.rollback();  // the FAIL arm restores the pre-block state
  EXPECT_EQ(heap.at<std::uint64_t>(0)[0], 1u);
  FileHeap reread(g.path, 4);
  EXPECT_EQ(reread.at<std::uint64_t>(0)[0], 1u);
}

}  // namespace
}  // namespace altx::posix
