// Unit tests for the altc preprocessor (section 3.2's language construct).
#include <gtest/gtest.h>

#include "altc/translate.hpp"

namespace altx::altc {
namespace {

bool contains(const std::string& hay, const std::string& needle) {
  return hay.find(needle) != std::string::npos;
}

TEST(Altc, PassesThroughPlainCpp) {
  const std::string src = "int main() {\n  return 0;\n}\n";
  EXPECT_EQ(translate(src), src);
}

TEST(Altc, TranslatesASimpleBlock) {
  const std::string src = R"(int main() {
ALTBEGIN(x : int)
ALTERNATIVE
  ALTRETURN(1);
ALTERNATIVE
  ALTRETURN(2);
ALTEND
  return x;
}
)";
  const std::string out = translate(src);
  EXPECT_TRUE(contains(out, "#include \"posix/race.hpp\""));
  EXPECT_TRUE(contains(out, "::altx::posix::race<int>"));
  EXPECT_TRUE(contains(out, "int x{};"));
  EXPECT_TRUE(contains(out, "bool x_found = false;"));
  EXPECT_TRUE(contains(out, "return std::make_optional<int>(1);"));
  EXPECT_TRUE(contains(out, "return std::make_optional<int>(2);"));
  // Two alternative lambdas.
  std::size_t lambdas = 0;
  std::size_t pos = 0;
  while ((pos = out.find("[&]() -> std::optional<int>", pos)) != std::string::npos) {
    ++lambdas;
    ++pos;
  }
  EXPECT_EQ(lambdas, 2u);
}

TEST(Altc, TimeoutClauseSetsRaceOptions) {
  const std::string out = translate(R"(
ALTBEGIN(v : long, TIMEOUT 250)
ALTERNATIVE
  ALTRETURN(0);
ALTEND
)");
  EXPECT_TRUE(contains(out, "std::chrono::milliseconds(250)"));
}

TEST(Altc, TemplatedTypesSurvive) {
  const std::string out = translate(R"(
ALTBEGIN(v : std::string)
ALTERNATIVE
  ALTRETURN(std::string("hi"));
ALTEND
)");
  EXPECT_TRUE(contains(out, "race<std::string>"));
  EXPECT_TRUE(contains(out, "std::make_optional<std::string>(std::string(\"hi\"));"));
}

TEST(Altc, AbortBecomesNullopt) {
  const std::string out = translate(R"(
ALTBEGIN(v : int)
ALTERNATIVE
  if (true) ALTABORT();
  ALTRETURN(1);
ALTEND
)");
  EXPECT_TRUE(contains(out, "if (true) return std::nullopt;"));
}

TEST(Altc, FailArmEmittedInElseBranch) {
  const std::string out = translate(R"(
ALTBEGIN(v : int)
ALTERNATIVE
  ALTRETURN(1);
FAIL
  handle_failure();
ALTEND
)");
  EXPECT_TRUE(contains(out, "} else {"));
  EXPECT_TRUE(contains(out, "handle_failure();"));
}

TEST(Altc, FallingOffTheEndIsAFailedGuard) {
  const std::string out = translate(R"(
ALTBEGIN(v : int)
ALTERNATIVE
  do_something();
ALTEND
)");
  EXPECT_TRUE(contains(out, "return std::nullopt;  // fell off the end"));
}

TEST(Altc, MultipleBlocksGetDistinctTemporaries) {
  const std::string out = translate(R"(
ALTBEGIN(a : int)
ALTERNATIVE
  ALTRETURN(1);
ALTEND
ALTBEGIN(b : int)
ALTERNATIVE
  ALTRETURN(2);
ALTEND
)");
  EXPECT_TRUE(contains(out, "__altx_r_0"));
  EXPECT_TRUE(contains(out, "__altx_r_1"));
}

TEST(Altc, ErrorsCarryLineNumbers) {
  try {
    (void)translate("line one\nALTEND\n");
    FAIL() << "expected TranslateError";
  } catch (const TranslateError& e) {
    EXPECT_TRUE(contains(e.what(), "line 2"));
  }
}

TEST(Altc, RejectsMalformedHeaders) {
  EXPECT_THROW((void)translate("ALTBEGIN\nALTEND\n"), TranslateError);
  EXPECT_THROW((void)translate("ALTBEGIN(novar)\nALTEND\n"), TranslateError);
  EXPECT_THROW((void)translate("ALTBEGIN(x : int, TIMEOUT soon)\nALTEND\n"),
               TranslateError);
  EXPECT_THROW((void)translate("ALTBEGIN(x y : int)\nALTEND\n"), TranslateError);
}

TEST(Altc, RejectsStructuralErrors) {
  // No ALTEND.
  EXPECT_THROW((void)translate("ALTBEGIN(x : int)\nALTERNATIVE\n"),
               TranslateError);
  // No alternatives.
  EXPECT_THROW((void)translate("ALTBEGIN(x : int)\nALTEND\n"), TranslateError);
  // Statements before the first alternative.
  EXPECT_THROW(
      (void)translate("ALTBEGIN(x : int)\nstray();\nALTERNATIVE\nALTEND\n"),
      TranslateError);
  // Nested blocks.
  EXPECT_THROW((void)translate("ALTBEGIN(x : int)\nALTERNATIVE\n"
                               "ALTBEGIN(y : int)\nALTEND\nALTEND\n"),
               TranslateError);
  // ALTERNATIVE after FAIL.
  EXPECT_THROW((void)translate("ALTBEGIN(x : int)\nALTERNATIVE\nALTRETURN(1);\n"
                               "FAIL\nALTERNATIVE\nALTEND\n"),
               TranslateError);
  // Duplicate FAIL.
  EXPECT_THROW((void)translate("ALTBEGIN(x : int)\nALTERNATIVE\nALTRETURN(1);\n"
                               "FAIL\nFAIL\nALTEND\n"),
               TranslateError);
}

TEST(Altc, KeywordsOutsideABlockAreErrors) {
  EXPECT_THROW((void)translate("ALTERNATIVE\n"), TranslateError);
  EXPECT_THROW((void)translate("int a;\nFAIL\n"), TranslateError);
}

}  // namespace
}  // namespace altx::altc
