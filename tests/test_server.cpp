// altxd end-to-end: multi-client admission, fair draining, cancellation
// without token leaks, denial visibility, and graceful shutdown that reaps
// every in-flight cohort.
#include <arpa/inet.h>
#include <gtest/gtest.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "constrained.hpp"
#include "obs/event.hpp"
#include "obs/trace.hpp"
#include "posix/governor.hpp"
#include "server/client.hpp"
#include "server/registry.hpp"
#include "server/server.hpp"

namespace {

using namespace altx;
using namespace altx::server;
using namespace std::chrono_literals;

JobSpec echo_job(std::uint8_t tag) {
  JobSpec s;
  s.arms.push_back({"echo", {tag}});
  return s;
}

JobSpec sleep_job(std::uint32_t ms, std::uint32_t timeout_ms = 30'000) {
  Bytes args;
  ByteWriter w(args);
  w.u32(ms);
  JobSpec s;
  s.timeout_ms = timeout_ms;
  s.arms.push_back({"sleep_ms", args});
  return s;
}

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    register_builtin_handlers(HandlerRegistry::global());
    sock_ = "/tmp/altx_server_test_" + std::to_string(::getpid()) + ".sock";
  }

  void start(ServerConfig cfg) {
    cfg.socket_path = sock_;
    server_ = std::make_unique<Server>(std::move(cfg));
    server_->start();
    runner_ = std::thread([this] { server_->run(); });
  }

  void stop() {
    if (server_ != nullptr) {
      server_->request_stop();
      if (runner_.joinable()) runner_.join();
      server_.reset();
    }
  }

  void TearDown() override {
    stop();
    ::unlink(sock_.c_str());
  }

  std::string sock_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(ServerTest, EchoRoundTripAndRaceSemantics) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 2;
  start(cfg);

  Client c = Client::connect_unix(sock_);

  // Plain echo.
  const JobOutcome out = c.wait(c.submit(echo_job(42)), 15'000ms);
  ASSERT_EQ(out.status, JobStatus::kWon);
  EXPECT_EQ(out.value, (Bytes{42}));
  EXPECT_EQ(out.winner, 1u);

  // Fastest-first: the 1 ms arm beats the 300 ms arm.
  Bytes slow, fast;
  {
    ByteWriter w(slow);
    w.u32(300);
  }
  {
    ByteWriter w(fast);
    w.u32(1);
  }
  JobSpec race2;
  race2.arms.push_back({"sleep_ms", slow});
  race2.arms.push_back({"sleep_ms", fast});
  const JobOutcome r2 = c.wait(c.submit(race2), 15'000ms);
  ASSERT_EQ(r2.status, JobStatus::kWon);
  EXPECT_EQ(r2.winner, 2u);

  // All guards fail.
  JobSpec failing;
  failing.arms.push_back({"fail", {}});
  failing.arms.push_back({"fail", {}});
  EXPECT_EQ(c.wait(c.submit(failing), 15'000ms).status,
            JobStatus::kAllFailed);

  // Timeout in the worker.
  JobSpec hung;
  hung.timeout_ms = 100;
  hung.arms.push_back({"hang", {}});
  EXPECT_EQ(c.wait(c.submit(hung), 15'000ms).status, JobStatus::kTimeout);

  // Unknown handler is a daemon-side error, not a FAIL.
  JobSpec unknown;
  unknown.arms.push_back({"no_such_handler", {}});
  EXPECT_EQ(c.wait(c.submit(unknown), 15'000ms).status, JobStatus::kError);
}

TEST_F(ServerTest, ServerRaceWrapperMirrorsPosixRace) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 2;
  start(cfg);

  // The RaceOptions::daemon_socket redirect: same call shape as
  // posix::race, remote execution.
  posix::RaceOptions o;
  o.timeout = 10'000ms;
  o.daemon_socket = sock_;
  posix::RaceReport report;
  o.report = &report;
  RemoteRaceInfo info;
  const auto r = server::race<Bytes>(
      {{"fail", {}}, {"echo", {5}}}, o, &info);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 2);
  EXPECT_EQ(r->value, (Bytes{5}));
  EXPECT_EQ(report.verdict, posix::WaitVerdict::kWinner);
  EXPECT_EQ(info.status, JobStatus::kWon);
  EXPECT_GT(info.exec_ns, 0u);
}

TEST_F(ServerTest, PipelinedJobsAndStats) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.per_client_running = 2;
  cfg.per_client_queue = 64;
  start(cfg);

  Client c = Client::connect_unix(sock_);
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 20; ++i) {
    ids.push_back(c.submit(echo_job(static_cast<std::uint8_t>(i))));
  }
  for (int i = 0; i < 20; ++i) {
    const JobOutcome out = c.wait(ids[static_cast<std::size_t>(i)], 30'000ms);
    ASSERT_EQ(out.status, JobStatus::kWon) << "job " << i;
    EXPECT_EQ(out.value, (Bytes{static_cast<std::uint8_t>(i)}));
  }
  const WireStats s = c.stats();
  EXPECT_GE(s.accepted, 20u);
  EXPECT_GE(s.completed, 20u);
  EXPECT_EQ(s.clients, 1u);
}

TEST_F(ServerTest, PerClientQueueCapDeniesWithRetryAfter) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  obs::enable_for_test();
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.per_client_running = 1;
  cfg.per_client_queue = 2;
  cfg.retry_after_ms = 77;
  start(cfg);

  Client c = Client::connect_unix(sock_);
  // One running + two queued saturate this client; further submits must be
  // denied with the configured backoff hint, not buffered.
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 8; ++i) ids.push_back(c.submit(sleep_job(150)));
  int denied = 0, won = 0;
  for (const std::uint64_t id : ids) {
    const JobOutcome out = c.wait(id, 60'000ms);
    if (out.status == JobStatus::kDenied) {
      ++denied;
      EXPECT_EQ(out.retry_after_ms, 77u);
      EXPECT_FALSE(out.error.empty());
    } else {
      EXPECT_EQ(out.status, JobStatus::kWon);
      ++won;
    }
  }
  EXPECT_GT(denied, 0);
  EXPECT_GT(won, 0);
  EXPECT_GE(server_->stats().denied, static_cast<std::uint64_t>(denied));

  // The denials are visible in the trace ring.
  bool saw_deny = false;
  for (const obs::Record& r : obs::snapshot()) {
    if (static_cast<obs::EventKind>(r.kind) == obs::EventKind::kSrvDeny) {
      saw_deny = true;
      EXPECT_EQ(r.c, 77u);  // retry-after rides in the event
    }
  }
  EXPECT_TRUE(saw_deny);
  stop();
  obs::reset();
}

TEST_F(ServerTest, FairDrainingAcrossClients) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 1;  // one worker: assignment order IS completion order
  cfg.per_client_running = 1;
  cfg.per_client_queue = 64;
  start(cfg);

  Client a = Client::connect_unix(sock_);
  Client b = Client::connect_unix(sock_);

  // A floods first; B arrives with two jobs. Round-robin draining must
  // interleave B's jobs instead of making them wait out A's whole queue.
  std::vector<std::uint64_t> a_ids;
  for (int i = 0; i < 8; ++i) a_ids.push_back(a.submit(sleep_job(30)));
  std::vector<std::uint64_t> b_ids;
  for (int i = 0; i < 2; ++i) b_ids.push_back(b.submit(sleep_job(30)));

  std::atomic<std::uint64_t> b_done_ns{0};
  std::thread bt([&] {
    for (const std::uint64_t id : b_ids) {
      ASSERT_EQ(b.wait(id, 60'000ms).status, JobStatus::kWon);
    }
    b_done_ns.store(obs::now_ns());
  });
  // By the time A's 6th job completes, B (2 jobs) must already be done —
  // under FIFO-across-all it would have waited for all 8 of A's.
  for (std::size_t i = 0; i < a_ids.size(); ++i) {
    ASSERT_EQ(a.wait(a_ids[i], 60'000ms).status, JobStatus::kWon);
    if (i == 5) {
      const auto deadline = std::chrono::steady_clock::now() + 5s;
      while (b_done_ns.load() == 0 &&
             std::chrono::steady_clock::now() < deadline) {
        std::this_thread::sleep_for(1ms);
      }
      EXPECT_NE(b_done_ns.load(), 0u)
          << "client B starved behind client A's queue";
    }
  }
  bt.join();
}

TEST_F(ServerTest, ConcurrentClientsSmallQuotaNoTokenLeaks) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/64, /*address_mb=*/1024);
  ServerConfig cfg;
  cfg.workers = 4;
  cfg.per_client_running = 2;  // small quota vs N client threads
  cfg.per_client_queue = 32;
  cfg.gov_tokens = 16;
  start(cfg);

  constexpr int kClients = 6;
  constexpr int kJobs = 25;
  std::atomic<int> won{0}, denied{0}, other{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      Client c = Client::connect_unix(sock_);
      for (int j = 0; j < kJobs; ++j) {
        const std::uint64_t id =
            c.submit(sleep_job(1 + (t + j) % 3));
        const JobOutcome out = c.wait(id, 60'000ms);
        if (out.status == JobStatus::kWon) {
          ++won;
        } else if (out.status == JobStatus::kDenied) {
          ++denied;
        } else {
          ++other;
        }
      }
    });
  }
  for (auto& th : threads) th.join();

  EXPECT_EQ(other.load(), 0);
  EXPECT_EQ(won.load() + denied.load(), kClients * kJobs);
  EXPECT_GT(won.load(), 0);

  // After the storm: nothing queued, nothing running, and the shared
  // governor pool holds zero in-flight tokens — cancellations and quota
  // churn leaked nothing.
  posix::SpeculationGovernor* gov = server_->governor();
  ASSERT_NE(gov, nullptr);
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (;;) {
    const ServerStats st = server_->stats();
    if (st.queued == 0 && st.running == 0 && gov->stats().in_flight == 0) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "queued=" << st.queued << " running=" << st.running
        << " gov_in_flight=" << gov->stats().in_flight;
    std::this_thread::sleep_for(10ms);
  }
}

TEST_F(ServerTest, CancelQueuedAndRunningReleasesEverything) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.per_client_running = 1;
  cfg.gov_tokens = 8;
  cfg.kill_grace = 20ms;
  start(cfg);

  Client c = Client::connect_unix(sock_);
  JobSpec hang;
  hang.timeout_ms = 60'000;
  hang.arms.push_back({"hang", {}});
  const std::uint64_t running = c.submit(hang);
  const std::uint64_t queued = c.submit(hang);  // quota 1: this one queues

  // Give the first job time to start racing.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server_->stats().running < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }

  c.cancel(queued);
  c.cancel(running);
  EXPECT_EQ(c.wait(queued, 15'000ms).status, JobStatus::kCanceled);
  EXPECT_EQ(c.wait(running, 15'000ms).status, JobStatus::kCanceled);

  posix::SpeculationGovernor* gov = server_->governor();
  ASSERT_NE(gov, nullptr);
  const auto drain = std::chrono::steady_clock::now() + 10s;
  while (gov->stats().in_flight != 0 &&
         std::chrono::steady_clock::now() < drain) {
    std::this_thread::sleep_for(10ms);
  }
  EXPECT_EQ(gov->stats().in_flight, 0);
  EXPECT_GE(server_->stats().canceled, 2u);

  // The replacement worker serves the next job normally.
  EXPECT_EQ(c.wait(c.submit(echo_job(9)), 15'000ms).status, JobStatus::kWon);
}

TEST_F(ServerTest, GracefulShutdownReapsEveryCohort) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 3;
  cfg.kill_grace = 20ms;
  start(cfg);

  Client c = Client::connect_unix(sock_);
  JobSpec hang;
  hang.timeout_ms = 60'000;
  hang.arms.push_back({"hang", {}});
  hang.arms.push_back({"hang", {}});
  std::vector<std::uint64_t> ids;
  for (int i = 0; i < 3; ++i) ids.push_back(c.submit(hang));
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  while (server_->stats().running < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(5ms);
  }
  ASSERT_EQ(server_->stats().running, 3u);

  stop();  // request_stop + join: shutdown reaps all three cohorts

  // The no-orphans guarantee: this process (the daemon's embedder and
  // subreaper) has no children left at all.
  errno = 0;
  EXPECT_EQ(::waitpid(-1, nullptr, WNOHANG), -1);
  EXPECT_EQ(errno, ECHILD);

  // The canceled jobs were answered before the socket closed.
  int canceled = 0;
  for (const std::uint64_t id : ids) {
    try {
      if (c.wait(id, 2'000ms).status == JobStatus::kCanceled) ++canceled;
    } catch (const SystemError&) {
      // Connection may break before every goodbye frame is read; the
      // cohort-reaping guarantee above is the hard requirement.
    }
  }
  EXPECT_GE(canceled, 0);
}

TEST_F(ServerTest, HeapJobsUseTheWorkerArena) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.heap_pages = 16;
  start(cfg);

  Client c = Client::connect_unix(sock_);
  Bytes args;
  ByteWriter w(args);
  w.u32(8);  // dirty 8 arena pages
  JobSpec s;
  s.heap_pages = 8;
  s.arms.push_back({"heap_fill", args});
  // Twice through the same worker: the arena reset between jobs means the
  // second run sees the same zeroed pages as the first.
  for (int round = 0; round < 2; ++round) {
    const JobOutcome out = c.wait(c.submit(s), 15'000ms);
    ASSERT_EQ(out.status, JobStatus::kWon) << out.error;
    ASSERT_EQ(out.value.size(), 4u);
    std::uint32_t pages = 0;
    std::memcpy(&pages, out.value.data(), 4);
    EXPECT_EQ(pages, 8u);
  }

  // Asking for more pages than the worker arena holds is a clean error.
  JobSpec too_big;
  too_big.heap_pages = 64;
  too_big.arms.push_back({"heap_fill", args});
  const JobOutcome out = c.wait(c.submit(too_big), 15'000ms);
  EXPECT_EQ(out.status, JobStatus::kError);
}

// One plain HTTP GET against the daemon's metrics listener; returns the full
// response (status line + headers + body) or "" on any socket failure.
std::string http_get_metrics(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    return "";
  }
  const char req[] = "GET /metrics HTTP/1.0\r\n\r\n";
  (void)!::write(fd, req, sizeof req - 1);
  std::string resp;
  char buf[4096];
  ssize_t n = 0;
  while ((n = ::read(fd, buf, sizeof buf)) > 0)
    resp.append(buf, static_cast<std::size_t>(n));
  ::close(fd);
  return resp;
}

TEST_F(ServerTest, MetricsEndpointServesPrometheusExposition) {
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.metrics_addr = "0";  // ephemeral port, recovered via metrics_port()
  start(cfg);
  const int port = server_->metrics_port();
  ASSERT_GT(port, 0);

  Client c = Client::connect_unix(sock_);
  for (int i = 0; i < 3; ++i) {
    const JobOutcome out = c.wait(c.submit(echo_job(7)), 10'000ms);
    ASSERT_EQ(out.status, JobStatus::kWon);
  }
  const WireStats stats = c.stats();

  const std::string resp = http_get_metrics(port);
  ASSERT_FALSE(resp.empty());
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos);

  // Server counters/gauges derive from the same make_stats() the kStats
  // frame reads, so the two surfaces agree on what the daemon has done.
  const std::string want_accepted =
      "altx_jobs_accepted_total " + std::to_string(stats.accepted) + "\n";
  EXPECT_NE(resp.find(want_accepted), std::string::npos) << resp;
  EXPECT_NE(resp.find("altx_jobs_completed_total 3\n"), std::string::npos);
  EXPECT_NE(resp.find("altx_queue_depth 0\n"), std::string::npos);
  EXPECT_NE(resp.find("altx_zygote_pool_size"), std::string::npos);

  // Per-client labeled counters survive the jobs that produced them.
  EXPECT_NE(resp.find("altx_client_jobs_total{client="), std::string::npos);
  EXPECT_NE(resp.find("outcome=\"completed\"} 3"), std::string::npos);

  // The queue-wait histogram is exposed with cumulative buckets: three
  // completed jobs means three samples.
  EXPECT_NE(resp.find("altx_srv_queue_wait_ns_count 3\n"), std::string::npos);
  EXPECT_NE(resp.find("altx_srv_queue_wait_ns_bucket{le=\"+Inf\"} 3\n"),
            std::string::npos);

  // Non-GET requests are refused, and the refusal doesn't wedge the poll
  // loop: a follow-up scrape still works.
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<std::uint16_t>(port));
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
              0);
    const char req[] = "POST /metrics HTTP/1.0\r\n\r\n";
    (void)!::write(fd, req, sizeof req - 1);
    std::string resp2;
    char buf[1024];
    ssize_t n = 0;
    while ((n = ::read(fd, buf, sizeof buf)) > 0)
      resp2.append(buf, static_cast<std::size_t>(n));
    ::close(fd);
    EXPECT_EQ(resp2.rfind("HTTP/1.0 405 ", 0), 0u) << resp2;
  }
  const std::string again = http_get_metrics(port);
  EXPECT_NE(again.find("altx_jobs_completed_total"), std::string::npos);
}

TEST_F(ServerTest, MetricsEndpointScrapesTrueOnDarkDaemon) {
  // Even with obs disabled (no ring), the wire-stats-backed exposition and
  // the srv_* registry recordings must still be live.
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.metrics_addr = "127.0.0.1:0";
  start(cfg);
  const int port = server_->metrics_port();
  ASSERT_GT(port, 0);

  Client c = Client::connect_unix(sock_);
  const JobOutcome out = c.wait(c.submit(echo_job(1)), 10'000ms);
  ASSERT_EQ(out.status, JobStatus::kWon);

  const std::string resp = http_get_metrics(port);
  EXPECT_NE(resp.find("altx_jobs_completed_total 1\n"), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("altx_srv_exec_ns_count 1\n"), std::string::npos);
}

}  // namespace
