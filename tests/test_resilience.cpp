// Additional resilience scenarios: consensus under node restart and healed
// partitions, distributed blocks with partitioned arbiters, executor
// determinism across repeated runs, and the POSIX supervisor's retry /
// sequential-fallback ladder.
#include <gtest/gtest.h>

#include "consensus/majority.hpp"
#include "core/executor.hpp"
#include "core/workload.hpp"
#include "dist/distributed.hpp"
#include "posix/supervisor.hpp"

namespace altx {
namespace {

TEST(Resilience, ArbiterRestartRemembersNothingButSafetyHolds) {
  // Our arbiters keep their vote in MajoritySync (the protocol object), so a
  // restart models a transient network outage of the node, not amnesia: the
  // vote survives and at-most-once cannot be violated.
  net::Network::Config nc;
  nc.node_count = 5;
  nc.base_latency = 2 * kMsec;
  nc.seed = 3;
  net::Network net(nc);
  consensus::MajoritySync::Config mc;
  mc.arbiters = 3;
  consensus::MajoritySync sync(net, mc);
  sync.add_candidate(0, 3, 0);
  sync.add_candidate(1, 4, kMsec);
  sync.start();
  net.crash(0);
  net.after(2, 100 * kMsec, [&] { net.restart(0); });
  net.run();
  int winners = 0;
  for (const auto& [id, o] : sync.outcomes()) {
    if (o.won) ++winners;
  }
  EXPECT_LE(winners, 1);
  EXPECT_EQ(winners, 1);  // two live arbiters + the restarted one: liveness too
}

TEST(Resilience, HealedPartitionLetsTheElectionFinish) {
  net::Network::Config nc;
  nc.node_count = 4;
  nc.base_latency = 2 * kMsec;
  nc.seed = 5;
  net::Network net(nc);
  consensus::MajoritySync::Config mc;
  mc.arbiters = 3;
  mc.max_rounds = 50;
  consensus::MajoritySync sync(net, mc);
  sync.add_candidate(0, 3, 0);
  sync.start();
  // The candidate starts cut off from two of three arbiters...
  net.partition(3, 0);
  net.partition(3, 1);
  // ...and the links heal later; retries must complete the majority.
  net.after(2, 300 * kMsec, [&] {
    net.heal(3, 0);
    net.heal(3, 1);
  });
  net.run();
  ASSERT_TRUE(sync.winner().has_value());
  EXPECT_GE(sync.outcomes().at(0).decided_at, 300 * kMsec);
}

TEST(Resilience, DistributedBlockSurvivesArbiterPartition) {
  dist::DistConfig cfg;
  cfg.arbiters = 3;
  cfg.timeout = 30 * kSec;
  net::Network::Config nc;
  nc.node_count = 3 + 1 + 2;
  nc.base_latency = 2 * kMsec;
  nc.seed = 7;
  net::Network net(nc);
  dist::DistributedBlock block(
      net, cfg,
      {dist::RemoteAlt{100 * kMsec, true}, dist::RemoteAlt{150 * kMsec, true}});
  block.start();
  // Worker 0 cannot reach arbiter 0; a 2-of-3 majority is still available.
  net.partition(block.worker_node(0), 0);
  net.run();
  EXPECT_TRUE(block.result().committed);
  EXPECT_EQ(block.result().winner, 0);
}

TEST(Resilience, ExecutorRunsAreExactlyRepeatable) {
  core::WorkloadParams p;
  p.n_alternatives = 4;
  p.dist = core::TimeDist::kExponential;
  p.lo = 80 * kMsec;
  auto run_once = [&](std::uint64_t seed) {
    Rng rng(seed);
    const core::BlockSpec b = core::generate_block(p, rng);
    sim::Kernel::Config cfg;
    cfg.machine = sim::MachineModel::shared_memory_mp(2);
    cfg.address_space_pages = 16;
    const auto r = core::run_concurrent(b, cfg);
    return std::tuple{r.elapsed, r.winner, r.stats.cpu_busy,
                      r.stats.wasted_work};
  };
  for (std::uint64_t seed : {2ULL, 4ULL, 8ULL}) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << seed;
  }
}

// ---------------------------------------------------------------------------
// supervised_race: the POSIX backend's recovery ladder
// ---------------------------------------------------------------------------

using namespace std::chrono_literals;

TEST(Resilience, SupervisedRaceRetriesThroughACrashStorm) {
  // Every child of every attempt crashes at its sync point; after
  // max_attempts the supervisor must degrade to the paper's sequential
  // semantics and still produce the value, flagged.
  posix::FaultProfile plan;
  plan.crash_segv = 1.0;
  posix::FaultInjector inj(5, plan);
  posix::RaceOptions opts;
  opts.fault = &inj;
  posix::RetryPolicy policy;
  policy.max_attempts = 2;
  policy.initial_backoff = 1ms;
  policy.base_timeout = 500ms;
  posix::SupervisionLog log;
  const auto r = posix::supervised_race<int>(
      {[] { return std::optional<int>(31); }}, policy, opts, &log);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 31);
  EXPECT_TRUE(r->degraded);
  EXPECT_EQ(r->attempts, 2);
  ASSERT_EQ(log.attempts.size(), 2u);
  EXPECT_EQ(log.attempts[0].outcome, posix::AttemptOutcome::kDisrupted);
  EXPECT_EQ(log.attempts[1].outcome, posix::AttemptOutcome::kDisrupted);
  EXPECT_TRUE(log.fell_back_sequential);
}

TEST(Resilience, SupervisedRaceFallsBackWhenSpawningIsImpossible) {
  posix::FaultProfile plan;
  plan.fork_fail = 1.0;  // fork() never succeeds: total resource exhaustion
  posix::FaultInjector inj(5, plan);
  posix::RaceOptions opts;
  opts.fault = &inj;
  posix::RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff = 1ms;
  posix::SupervisionLog log;
  const auto r = posix::supervised_race<std::string>(
      {
          [] { return std::optional<std::string>(); },
          [] { return std::optional<std::string>("degraded-but-alive"); },
      },
      policy, opts, &log);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, "degraded-but-alive");
  EXPECT_EQ(r->winner, 2);
  EXPECT_TRUE(r->degraded);
  for (const auto& a : log.attempts) {
    EXPECT_EQ(a.outcome, posix::AttemptOutcome::kSpawnFailed);
  }
}

TEST(Resilience, SupervisedRaceDoesNotRetryADefinitiveFail) {
  // Every guard evaluates and fails with no environmental casualty: FAIL is
  // the block's answer (the paper's FAIL arm), not an error to retry.
  posix::RetryPolicy policy;
  policy.max_attempts = 5;
  posix::SupervisionLog log;
  const auto r = posix::supervised_race<int>(
      {
          [] { return std::optional<int>(); },
          [] { return std::optional<int>(); },
      },
      policy, {}, &log);
  EXPECT_FALSE(r.has_value());
  ASSERT_EQ(log.attempts.size(), 1u);  // one attempt, no retries
  EXPECT_EQ(log.attempts[0].outcome, posix::AttemptOutcome::kAllFailed);
  EXPECT_FALSE(log.fell_back_sequential);
}

TEST(Resilience, SupervisedRaceFirstAttemptWinStaysUndegraded) {
  posix::SupervisionLog log;
  const auto r = posix::supervised_race<int>(
      {
          [] { return std::optional<int>(1); },
      },
      {}, {}, &log);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 1);
  EXPECT_FALSE(r->degraded);
  EXPECT_EQ(r->attempts, 1);
  ASSERT_EQ(log.attempts.size(), 1u);
  EXPECT_EQ(log.attempts[0].outcome, posix::AttemptOutcome::kWon);
}

TEST(Resilience, SupervisedRaceBackoffScheduleIsDeterministic) {
  posix::RetryPolicy policy;
  policy.max_attempts = 4;
  policy.initial_backoff = 2ms;
  policy.multiplier = 2.0;
  policy.jitter = 0.5;
  policy.seed = 77;
  auto run_once = [&] {
    posix::FaultProfile plan;
    plan.crash_kill = 1.0;
    posix::FaultInjector inj(9, plan);
    posix::RaceOptions opts;
    opts.fault = &inj;
    policy.sequential_fallback = false;
    posix::SupervisionLog log;
    const auto r = posix::supervised_race<int>(
        {[] { return std::optional<int>(1); }}, policy, opts, &log);
    EXPECT_FALSE(r.has_value());
    std::vector<long long> backoffs;
    for (const auto& a : log.attempts) {
      backoffs.push_back(a.backoff_before.count());
    }
    return backoffs;
  };
  const auto first = run_once();
  const auto second = run_once();
  EXPECT_EQ(first, second);
  ASSERT_EQ(first.size(), 4u);
  EXPECT_EQ(first[0], 0);    // no backoff before the first attempt
  EXPECT_GT(first[1], 0);    // jittered exponential afterwards
  EXPECT_LE(first[1], 3);    // 2ms +/- 50%
  EXPECT_GE(first[2], 2);    // 4ms +/- 50%
}

}  // namespace
}  // namespace altx
