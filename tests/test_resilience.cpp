// Additional resilience scenarios: consensus under node restart and healed
// partitions, distributed blocks with partitioned arbiters, and executor
// determinism across repeated runs.
#include <gtest/gtest.h>

#include "consensus/majority.hpp"
#include "core/executor.hpp"
#include "core/workload.hpp"
#include "dist/distributed.hpp"

namespace altx {
namespace {

TEST(Resilience, ArbiterRestartRemembersNothingButSafetyHolds) {
  // Our arbiters keep their vote in MajoritySync (the protocol object), so a
  // restart models a transient network outage of the node, not amnesia: the
  // vote survives and at-most-once cannot be violated.
  net::Network::Config nc;
  nc.node_count = 5;
  nc.base_latency = 2 * kMsec;
  nc.seed = 3;
  net::Network net(nc);
  consensus::MajoritySync::Config mc;
  mc.arbiters = 3;
  consensus::MajoritySync sync(net, mc);
  sync.add_candidate(0, 3, 0);
  sync.add_candidate(1, 4, kMsec);
  sync.start();
  net.crash(0);
  net.after(2, 100 * kMsec, [&] { net.restart(0); });
  net.run();
  int winners = 0;
  for (const auto& [id, o] : sync.outcomes()) {
    if (o.won) ++winners;
  }
  EXPECT_LE(winners, 1);
  EXPECT_EQ(winners, 1);  // two live arbiters + the restarted one: liveness too
}

TEST(Resilience, HealedPartitionLetsTheElectionFinish) {
  net::Network::Config nc;
  nc.node_count = 4;
  nc.base_latency = 2 * kMsec;
  nc.seed = 5;
  net::Network net(nc);
  consensus::MajoritySync::Config mc;
  mc.arbiters = 3;
  mc.max_rounds = 50;
  consensus::MajoritySync sync(net, mc);
  sync.add_candidate(0, 3, 0);
  sync.start();
  // The candidate starts cut off from two of three arbiters...
  net.partition(3, 0);
  net.partition(3, 1);
  // ...and the links heal later; retries must complete the majority.
  net.after(2, 300 * kMsec, [&] {
    net.heal(3, 0);
    net.heal(3, 1);
  });
  net.run();
  ASSERT_TRUE(sync.winner().has_value());
  EXPECT_GE(sync.outcomes().at(0).decided_at, 300 * kMsec);
}

TEST(Resilience, DistributedBlockSurvivesArbiterPartition) {
  dist::DistConfig cfg;
  cfg.arbiters = 3;
  cfg.timeout = 30 * kSec;
  net::Network::Config nc;
  nc.node_count = 3 + 1 + 2;
  nc.base_latency = 2 * kMsec;
  nc.seed = 7;
  net::Network net(nc);
  dist::DistributedBlock block(
      net, cfg,
      {dist::RemoteAlt{100 * kMsec, true}, dist::RemoteAlt{150 * kMsec, true}});
  block.start();
  // Worker 0 cannot reach arbiter 0; a 2-of-3 majority is still available.
  net.partition(block.worker_node(0), 0);
  net.run();
  EXPECT_TRUE(block.result().committed);
  EXPECT_EQ(block.result().winner, 0);
}

TEST(Resilience, ExecutorRunsAreExactlyRepeatable) {
  core::WorkloadParams p;
  p.n_alternatives = 4;
  p.dist = core::TimeDist::kExponential;
  p.lo = 80 * kMsec;
  auto run_once = [&](std::uint64_t seed) {
    Rng rng(seed);
    const core::BlockSpec b = core::generate_block(p, rng);
    sim::Kernel::Config cfg;
    cfg.machine = sim::MachineModel::shared_memory_mp(2);
    cfg.address_space_pages = 16;
    const auto r = core::run_concurrent(b, cfg);
    return std::tuple{r.elapsed, r.winner, r.stats.cpu_busy,
                      r.stats.wasted_work};
  };
  for (std::uint64_t seed : {2ULL, 4ULL, 8ULL}) {
    EXPECT_EQ(run_once(seed), run_once(seed)) << seed;
  }
}

}  // namespace
}  // namespace altx
