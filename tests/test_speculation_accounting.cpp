// The speculation-efficiency ledger: wait4 rusage per child, the shared
// census arena for losers' dirty COW pages, and the per-block rollup.
//
// The scenarios pin the property the paper's section 3.1 bet depends on
// being measurable: speculation is "free" only if you never look at the
// meter. Here the loser burns real CPU and dirties real pages before
// losing, and the ledger must bill it — including when the loser dies of
// a fault-injected SIGKILL at its sync point, where only wait4 (for CPU)
// and the pre-sync census (for pages) still know what it cost.
#include <gtest/gtest.h>
#include <signal.h>
#include <time.h>
#include <unistd.h>

#include <chrono>
#include <cstring>

#include "posix/alt_group.hpp"
#include "posix/alt_heap.hpp"
#include "posix/fault.hpp"
#include "posix/race.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;

/// Spends `ms` of *CPU* time busy — metered against the thread CPU clock,
/// not wall time, because wait4 bills CPU and a parallel ctest run can
/// preempt this process enough that a wall-clock spin accrues only a
/// fraction of its window. Far above the kernel's ~1-4 ms rusage
/// granularity so the assertions have headroom.
void burn_cpu(std::chrono::milliseconds ms) {
  timespec ts{};
  const auto cpu_ns = [&ts]() -> long long {
    ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
    return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
  };
  const long long end = cpu_ns() + ms.count() * 1'000'000LL;
  volatile std::uint64_t sink = 0;
  while (cpu_ns() < end) sink = sink + 1;
}

void dirty_heap_pages(AltHeap& heap, std::size_t n) {
  for (std::size_t p = 0; p < n; ++p) {
    *heap.at<std::uint64_t>(p * heap.page_size()) = p + 1;
  }
}

/// The deterministic cast: index 1 is the loser (burns, dirties, aborts),
/// index 2 the winner (sleeps long enough for the loser to finish dying,
/// then commits). The sleep is the ordering guarantee — by the time the
/// winner commits and the parent starts eliminating, the loser's whole
/// abort path (census publish included) has long completed. It is sized
/// for the worst case of burn_cpu's 60 ms of CPU stretching to several
/// hundred ms of wall time under a fully loaded parallel test run.
constexpr int kLoser = 1;
constexpr int kWinner = 2;
constexpr std::size_t kDirtyPages = 6;

struct BlockOutcome {
  SpeculationReport spec;
  ChildStatus loser;
  ChildStatus winner;
  WaitVerdict verdict = WaitVerdict::kUndecided;
};

BlockOutcome run_block(AltHeap& heap, FaultInjector* fault) {
  AltGroupOptions go;
  go.heap = &heap;
  go.fault = fault;
  AltGroup group(go);
  const int who = group.alt_spawn(2);
  if (who == kLoser) {
    burn_cpu(60ms);
    dirty_heap_pages(heap, kDirtyPages);
    group.child_abort();
  }
  if (who == kWinner) {
    ::usleep(900'000);
    group.child_commit(Bytes{1, 2, 3});
  }
  const auto win = group.alt_wait(5s);
  BlockOutcome out;
  out.spec = group.speculation_report();
  out.loser = group.child_statuses()[kLoser - 1];
  out.winner = group.child_statuses()[kWinner - 1];
  out.verdict = group.verdict();
  EXPECT_TRUE(win.has_value());
  return out;
}

TEST(SpeculationAccounting, LoserCpuAndPagesAreBilled) {
  AltHeap heap(16);
  const BlockOutcome out = run_block(heap, nullptr);

  // Fate classification is unchanged by the accounting machinery.
  EXPECT_EQ(out.verdict, WaitVerdict::kWinner);
  EXPECT_EQ(out.loser.fate, ChildFate::kAborted);
  EXPECT_EQ(out.winner.fate, ChildFate::kCommitted);

  // The loser burned ~60 ms of CPU; demand at least a third of it to stay
  // robust against scheduler preemption, but far above rusage granularity.
  EXPECT_GT(out.spec.wasted_cpu_ns, 20'000'000u);
  EXPECT_EQ(out.spec.discarded_pages, kDirtyPages);
  EXPECT_EQ(out.spec.discarded_bytes,
            kDirtyPages * static_cast<std::uint64_t>(heap.page_size()));
  EXPECT_EQ(out.spec.children_costed, 2);

  // Per-child views agree with the rollup.
  EXPECT_EQ(out.loser.dirty_pages, kDirtyPages);
  EXPECT_GT(out.loser.usage.cpu_ns, 20'000'000u);
  EXPECT_EQ(out.winner.dirty_pages, 0u);  // it slept; nothing dirtied

  // total = winner + wasted, and the ratio normalizes by the winner.
  EXPECT_EQ(out.spec.total_cpu_ns,
            out.spec.winner_cpu_ns + out.spec.wasted_cpu_ns);
  if (out.spec.winner_cpu_ns > 0) {
    EXPECT_GT(out.spec.overhead_ratio(), 1.0);
  }
}

/// Finds a seed whose first attempt SIGKILLs the loser at its sync point
/// and leaves the winner untouched. decide() is a pure function of
/// (seed, attempt, child), so the search is deterministic and cheap.
std::uint64_t seed_killing_only_the_loser(const FaultProfile& profile) {
  for (std::uint64_t seed = 1; seed < 10'000; ++seed) {
    const FaultInjector probe(seed, profile);
    if (probe.decide(0, kLoser) == FaultKind::kCrashKill &&
        probe.decide(0, kWinner) == FaultKind::kNone) {
      return seed;
    }
  }
  ADD_FAILURE() << "no seed kills only the loser";
  return 0;
}

TEST(SpeculationAccounting, NumbersSurviveSigkilledLoser) {
  FaultProfile profile;
  profile.crash_kill = 0.5;
  const std::uint64_t seed = seed_killing_only_the_loser(profile);
  FaultInjector fault(seed, profile);

  AltHeap heap(16);
  const BlockOutcome out = run_block(heap, &fault);

  // The injector SIGKILLed the loser at its abort sync point: classified a
  // genuine crash (we did not send that signal), not an elimination.
  EXPECT_EQ(out.verdict, WaitVerdict::kWinner);
  EXPECT_EQ(out.loser.fate, ChildFate::kCrashed);
  EXPECT_EQ(out.loser.signal, SIGKILL);
  EXPECT_EQ(out.winner.fate, ChildFate::kCommitted);

  // The bill survives the kill: CPU from wait4 (the kernel's ledger), pages
  // from the census published before the sync point.
  EXPECT_GT(out.spec.wasted_cpu_ns, 20'000'000u);
  EXPECT_EQ(out.spec.discarded_pages, kDirtyPages);
  EXPECT_EQ(out.loser.dirty_pages, kDirtyPages);
}

TEST(SpeculationAccounting, WinnerPagesAreNotDiscarded) {
  // Mirror image: the WINNER dirties pages; the loser aborts untouched.
  AltHeap heap(16);
  AltGroup group(AltGroupOptions{.heap = &heap});
  const int who = group.alt_spawn(2);
  if (who == 1) {
    group.child_abort();
  }
  if (who == 2) {
    ::usleep(300'000);  // let the abort finish first, even under load
    dirty_heap_pages(heap, 3);
    group.child_commit(Bytes{9});
  }
  const auto win = group.alt_wait(5s);
  ASSERT_TRUE(win.has_value());
  group.finish();
  const SpeculationReport rep = group.speculation_report();
  // Absorbed pages are the answer, not waste.
  EXPECT_EQ(rep.discarded_pages, 0u);
  EXPECT_EQ(win->pages_absorbed, 3u);
}

TEST(SpeculationAccounting, RaceReportCarriesTheLedger) {
  RaceReport report;
  RaceOptions opts;
  opts.report = &report;
  const auto r = race<int>(
      {
          []() -> std::optional<int> {
            burn_cpu(40ms);
            return std::nullopt;  // guard fails after real work
          },
          []() -> std::optional<int> {
            ::usleep(800'000);
            return 7;
          },
      },
      opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7);
  EXPECT_EQ(report.spec.children_costed, 2);
  EXPECT_GT(report.spec.wasted_cpu_ns, 10'000'000u);
  EXPECT_EQ(report.spec.total_cpu_ns,
            report.spec.winner_cpu_ns + report.spec.wasted_cpu_ns);
}

TEST(SpeculationAccounting, NoWinnerMeansEverythingWasted) {
  AltGroup group;
  const int who = group.alt_spawn(2);
  if (who != 0) {
    burn_cpu(30ms);
    group.child_abort();
  }
  const auto win = group.alt_wait(5s);
  EXPECT_FALSE(win.has_value());
  EXPECT_EQ(group.verdict(), WaitVerdict::kAllFailed);
  const SpeculationReport rep = group.speculation_report();
  EXPECT_EQ(rep.winner_cpu_ns, 0u);
  EXPECT_EQ(rep.wasted_cpu_ns, rep.total_cpu_ns);
  EXPECT_GT(rep.wasted_cpu_ns, 0u);
  EXPECT_EQ(rep.overhead_ratio(), 0.0);  // nothing to normalize by
}

}  // namespace
}  // namespace altx::posix
