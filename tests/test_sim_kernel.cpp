// Unit and integration tests for the kernel simulator: scheduling, COW
// paging, the alt_spawn/alt_wait machinery, sibling elimination, timeouts,
// and the semantics invariants of DESIGN.md section 5.
#include <gtest/gtest.h>

#include "sim/kernel.hpp"

namespace altx::sim {
namespace {

Kernel::Config small_config(int cpus = 4) {
  Kernel::Config cfg;
  cfg.machine = MachineModel::shared_memory_mp(cpus);
  cfg.address_space_pages = 16;
  return cfg;
}

TEST(SimKernel, SingleProcessComputesAndFinishes) {
  Kernel k(small_config());
  auto prog = ProgramBuilder("solo").compute(5 * kMsec).write(0, 0, 42).build();
  const Pid pid = k.spawn_root(prog);
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 42u);
  EXPECT_GE(k.now(), 5 * kMsec);
}

TEST(SimKernel, ComputeTimeIsChargedExactly) {
  Kernel k(small_config(1));
  auto prog = ProgramBuilder().compute(7 * kMsec).build();
  const Pid pid = k.spawn_root(prog);
  k.run();
  EXPECT_EQ(k.process(pid)->cpu_time_, 7 * kMsec + 1);  // +1 for the end step
}

TEST(SimKernel, TwoProcessesShareOneCpuFairly) {
  Kernel k(small_config(1));
  auto prog = ProgramBuilder().compute(50 * kMsec).build();
  const Pid a = k.spawn_root(prog);
  const Pid b = k.spawn_root(prog);
  k.run();
  EXPECT_EQ(k.exit_kind(a), ExitKind::kCompleted);
  EXPECT_EQ(k.exit_kind(b), ExitKind::kCompleted);
  // Serial execution of both, so the clock covers both computations.
  EXPECT_GE(k.now(), 100 * kMsec);
}

TEST(SimKernel, TwoCpusRunTwoProcessesInParallel) {
  Kernel k(small_config(2));
  auto prog = ProgramBuilder().compute(50 * kMsec).build();
  k.spawn_root(prog);
  k.spawn_root(prog);
  k.run();
  EXPECT_LT(k.now(), 60 * kMsec);
}

TEST(SimKernel, FastestAlternativeWins) {
  Kernel k(small_config());
  auto slow = ProgramBuilder("slow").compute(80 * kMsec).write(0, 0, 1).build();
  auto fast = ProgramBuilder("fast").compute(10 * kMsec).write(0, 0, 2).build();
  auto mid = ProgramBuilder("mid").compute(40 * kMsec).write(0, 0, 3).build();
  auto prog = ProgramBuilder("parent").alt({slow, fast, mid}).build();
  const Pid pid = k.spawn_root(prog);
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  // The parent absorbed exactly the fastest child's state.
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 2u);
  EXPECT_EQ(k.stats().commits, 1u);
  EXPECT_EQ(k.stats().forks, 3u);
}

TEST(SimKernel, LosersAreEliminatedAndCountedAsWaste) {
  auto cfg = small_config();
  cfg.elimination = Elimination::kSynchronous;
  Kernel k(cfg);
  auto slow = ProgramBuilder().compute(80 * kMsec).build();
  auto fast = ProgramBuilder().compute(10 * kMsec).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({slow, fast}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.stats().eliminations, 1u);
  EXPECT_GT(k.stats().wasted_work, 0);
  // The loser ran for about as long as the winner before being killed.
  EXPECT_LT(k.stats().wasted_work, 40 * kMsec);
}

TEST(SimKernel, GuardFailureAbortsWithoutSynchronizing) {
  Kernel k(small_config());
  auto failing = ProgramBuilder("failing")
                     .compute(1 * kMsec)
                     .write(0, 0, 99)
                     .guard([](const AddressSpace&) { return false; })
                     .build();
  auto ok = ProgramBuilder("ok").compute(20 * kMsec).write(0, 0, 7).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({failing, ok}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  // The guard-failing alternative finished first but must not be selected.
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 7u);
  EXPECT_EQ(k.stats().aborts, 1u);
  EXPECT_EQ(k.stats().commits, 1u);
}

TEST(SimKernel, AllAlternativesFailRunsFailArm) {
  Kernel k(small_config());
  auto bad = ProgramBuilder().compute(1 * kMsec).abort().build();
  auto on_fail = ProgramBuilder("fail-arm").write(1, 0, 123).build();
  const Pid pid =
      k.spawn_root(ProgramBuilder().alt({bad, bad, bad}, 0, on_fail).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(1, 0), 123u);
  EXPECT_EQ(k.stats().alt_failures, 1u);
  EXPECT_EQ(k.stats().commits, 0u);
}

TEST(SimKernel, AllFailWithoutFailArmAbortsParent) {
  Kernel k(small_config());
  auto bad = ProgramBuilder().abort().build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({bad, bad}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kAborted);
}

TEST(SimKernel, TimeoutFailsTheBlock) {
  Kernel k(small_config());
  auto eternal = ProgramBuilder().compute(10 * kSec).build();
  auto on_fail = ProgramBuilder().write(0, 0, 5).build();
  const Pid pid = k.spawn_root(
      ProgramBuilder().alt({eternal, eternal}, 200 * kMsec, on_fail).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 5u);
  EXPECT_EQ(k.stats().alt_timeouts, 1u);
  // Both children were eliminated, not run to completion.
  EXPECT_EQ(k.stats().eliminations, 2u);
  EXPECT_LT(k.now(), kSec);
}

TEST(SimKernel, SiblingWritesAreInvisibleToWinner) {
  Kernel k(small_config());
  // Each alternative writes a distinct page. Whichever wins, the other's
  // write must not be visible in the parent afterwards.
  auto a = ProgramBuilder().compute(5 * kMsec).write(2, 0, 11).build();
  auto b = ProgramBuilder().compute(50 * kMsec).write(3, 0, 22).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({a, b}).build());
  k.run();
  EXPECT_EQ(k.process(pid)->as_.peek(2, 0), 11u);
  EXPECT_EQ(k.process(pid)->as_.peek(3, 0), 0u);
}

TEST(SimKernel, CowSharingUntilFirstWrite) {
  Kernel k(small_config());
  auto child = ProgramBuilder()
                   .read(0)
                   .read(1)
                   .write(2, 0, 9)  // first write: exactly one COW copy
                   .write(2, 1, 10)
                   .compute(1 * kMsec)
                   .build();
  const Pid pid = k.spawn_root(
      ProgramBuilder().write(2, 0, 1).alt({child}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.stats().cow_copies, 1u);
  EXPECT_EQ(k.process(pid)->as_.peek(2, 0), 9u);
  EXPECT_EQ(k.process(pid)->as_.peek(2, 1), 10u);
}

TEST(SimKernel, ParentStateInheritedByChildren) {
  Kernel k(small_config());
  // The child reads what the parent wrote before spawning and copies it.
  auto child = ProgramBuilder()
                   .guard([](const AddressSpace& as) {
                     return const_cast<AddressSpace&>(as).peek(0, 0) == 77;
                   })
                   .write(1, 0, 88)
                   .build();
  const Pid pid =
      k.spawn_root(ProgramBuilder().write(0, 0, 77).alt({child}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(1, 0), 88u);
}

TEST(SimKernel, NestedAlternativeBlocks) {
  Kernel k(small_config());
  auto inner_fast = ProgramBuilder().compute(2 * kMsec).write(0, 0, 1).build();
  auto inner_slow = ProgramBuilder().compute(30 * kMsec).write(0, 0, 2).build();
  auto outer_a = ProgramBuilder()
                     .alt({inner_fast, inner_slow})
                     .write(0, 1, 10)
                     .build();
  auto outer_b = ProgramBuilder().compute(500 * kMsec).write(0, 1, 20).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({outer_a, outer_b}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 1u);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 1), 10u);
  EXPECT_EQ(k.stats().commits, 2u);
}

TEST(SimKernel, NestedBlockChildrenDieWithTheirWorld) {
  Kernel k(small_config(8));
  // Alternative A spawns a long-running nested block; alternative B wins the
  // outer race quickly. A's entire subtree must be eliminated.
  auto grandchild = ProgramBuilder().compute(10 * kSec).build();
  auto a = ProgramBuilder().alt({grandchild, grandchild}).build();
  auto b = ProgramBuilder().compute(5 * kMsec).write(0, 0, 3).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({a, b}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 3u);
  EXPECT_LT(k.now(), kSec);  // nobody waited for the grandchildren
  EXPECT_TRUE(k.blocked_pids().empty());
}

TEST(SimKernel, AtMostOneCommitEvenWithTies) {
  Kernel k(small_config(4));
  // Four identical alternatives finish at the same simulated time; exactly
  // one may commit, the rest must be "too late" or eliminated.
  auto same = ProgramBuilder().compute(10 * kMsec).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({same, same, same, same}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.stats().commits, 1u);
  EXPECT_EQ(k.stats().too_lates + k.stats().eliminations, 3u);
}

TEST(SimKernel, AsynchronousEliminationWastesMoreWork) {
  auto run_with = [](Elimination policy) {
    auto cfg = small_config(4);
    cfg.elimination = policy;
    Kernel k(cfg);
    auto fast = ProgramBuilder().compute(5 * kMsec).build();
    auto slow = ProgramBuilder().compute(5 * kSec).build();
    k.spawn_root(ProgramBuilder().alt({fast, slow}).build());
    k.run();
    return k.stats().wasted_work;
  };
  // The asynchronous corpse keeps burning CPU until the kill lands.
  EXPECT_GE(run_with(Elimination::kAsynchronous),
            run_with(Elimination::kSynchronous));
}

TEST(SimKernel, SpawnCostGrowsWithAddressSpace) {
  auto elapsed_with_pages = [](std::size_t pages) {
    auto cfg = small_config();
    cfg.address_space_pages = pages;
    Kernel k(cfg);
    auto child = ProgramBuilder().compute(1 * kMsec).build();
    k.spawn_root(ProgramBuilder().alt({child}).build());
    return k.run();
  };
  EXPECT_GT(elapsed_with_pages(400), elapsed_with_pages(10));
}

TEST(SimKernel, DistributedChildrenUseRemoteForkCosts) {
  auto cfg = small_config();
  cfg.machine = MachineModel::workstation_lan(3);
  Kernel k(cfg);
  auto child = ProgramBuilder().compute(1 * kMsec).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({child, child, child}).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.stats().remote_forks, 2u);  // alternates 1 and 2 placed remotely
  EXPECT_GT(k.now(), 500 * kMsec);        // rfork dominates
}

TEST(SimKernel, StatsSeparateUsefulAndWastedWork) {
  Kernel k(small_config(4));
  auto fast = ProgramBuilder().compute(10 * kMsec).build();
  auto slow = ProgramBuilder().compute(9 * kSec).build();
  k.spawn_root(ProgramBuilder().alt({fast, slow}).build());
  k.run();
  const auto& s = k.stats();
  EXPECT_GT(s.useful_work, 9 * kMsec);
  EXPECT_GT(s.cpu_busy, 0);
  EXPECT_GE(s.cpu_busy, s.useful_work);
}

TEST(SimKernel, EmptyAlternativeListFailsImmediately) {
  Kernel k(small_config());
  auto on_fail = ProgramBuilder().write(0, 0, 1).build();
  const Pid pid = k.spawn_root(ProgramBuilder().alt({}, 0, on_fail).build());
  k.run();
  EXPECT_EQ(k.exit_kind(pid), ExitKind::kCompleted);
  EXPECT_EQ(k.process(pid)->as_.peek(0, 0), 1u);
}

}  // namespace
}  // namespace altx::sim
