// Stress and failure-injection tests for the real-process backend: crashing
// alternatives, replication, nested races, large payloads, descriptor
// hygiene over many races, and many-way races.
#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <dirent.h>

#include <chrono>

#include "constrained.hpp"
#include "posix/alt_heap.hpp"
#include "posix/race.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;

int open_fd_count() {
  int n = 0;
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  while (::readdir(d) != nullptr) ++n;
  ::closedir(d);
  return n;
}

TEST(PosixStress, CrashingAlternativeIsJustAFailure) {
  // A child dying of SIGSEGV (no AltHeap installed, so no handler rescues
  // it) must count as a failed alternative, not poison the block.
  auto r = race<int>({
      []() -> std::optional<int> {
        ::raise(SIGSEGV);
        return 1;  // unreachable
      },
      [] { ::usleep(20'000); return std::optional<int>(2); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 2);
}

TEST(PosixStress, AllAlternativesCrashingFailsCleanly) {
  auto r = race<int>({
      []() -> std::optional<int> { ::raise(SIGKILL); return 1; },
      []() -> std::optional<int> { ::abort(); },
  });
  EXPECT_FALSE(r.has_value());
}

TEST(PosixStress, ReplicationSurvivesACrashingReplica) {
  // One logical alternative, three replicas; the "hardware" kills the first
  // replica (deterministically by pid parity is not possible, so crash by
  // a shared pipe token: the first replica to grab the token crashes).
  AltHeap heap(2);
  auto* crash_budget = heap.at<int>(0);
  *crash_budget = 1;  // exactly one replica will crash
  RaceOptions opts;
  opts.replicas = 3;
  // NOTE: the heap is deliberately NOT passed to opts; each replica still
  // inherits the arena COW, so decrementing the budget is process-local.
  // Instead we crash based on replica timing: the earliest finisher crashes.
  auto r = race<int>(
      {
          [&]() -> std::optional<int> {
            // Simulate an unreliable node: every replica rolls its own fate
            // from its pid.
            if (::getpid() % 3 == 0) ::raise(SIGKILL);
            ::usleep(10'000);
            return 7;
          },
      },
      opts);
  // With three replicas, P(all crash) is small but possible depending on
  // pids; accept either verdict but require correctness when found.
  if (r.has_value()) {
    EXPECT_EQ(r->value, 7);
    EXPECT_EQ(r->winner, 1);  // logical alternative index, not replica index
  }
}

TEST(PosixStress, ReplicatedAlternativesMapBackToLogicalIndex) {
  RaceOptions opts;
  opts.replicas = 2;
  auto r = race<int>(
      {
          [] { ::usleep(100'000); return std::optional<int>(1); },
          [] { ::usleep(5'000); return std::optional<int>(2); },
          [] { ::usleep(100'000); return std::optional<int>(3); },
      },
      opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 2);
  EXPECT_EQ(r->value, 2);
}

TEST(PosixStress, NestedRacesInsideAlternatives) {
  // The tree of computations: an alternative is itself an alternative block.
  auto inner = []() -> std::optional<int> {
    auto r = race<int>({
        [] { ::usleep(5'000); return std::optional<int>(10); },
        [] { ::usleep(50'000); return std::optional<int>(20); },
    });
    if (!r.has_value()) return std::nullopt;
    return r->value + 1;
  };
  auto r = race<int>({
      inner,
      [] { ::usleep(500'000); return std::optional<int>(99); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 11);
  EXPECT_EQ(r->winner, 1);
}

TEST(PosixStress, LargeResultPayloadCrossesThePipe) {
  // Larger than any pipe buffer: 4 MB.
  const std::size_t n = 4 * 1024 * 1024;
  auto r = race<std::string>({
      [n] {
        std::string s(n, 'x');
        s[n - 1] = 'y';
        return std::optional<std::string>(std::move(s));
      },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value.size(), n);
  EXPECT_EQ(r->value.back(), 'y');
}

TEST(PosixStress, ManyConsecutiveRacesLeakNoDescriptors) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/256);
  // Warm up, then assert the fd count is stable across 40 races.
  (void)race<int>({[] { return std::optional<int>(0); }});
  const int before = open_fd_count();
  ASSERT_GT(before, 0);
  for (int i = 0; i < 40; ++i) {
    auto r = race<int>({
        [i] { return std::optional<int>(i); },
        [i] { ::usleep(2'000); return std::optional<int>(i + 100); },
    });
    ASSERT_TRUE(r.has_value());
  }
  EXPECT_EQ(open_fd_count(), before);
}

TEST(PosixStress, SixteenWayRace) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/48, /*address_mb=*/256);
  std::vector<AlternativeFn<int>> alts;
  for (int i = 0; i < 16; ++i) {
    alts.push_back([i]() -> std::optional<int> {
      ::usleep(static_cast<useconds_t>((i % 5) * 3000));
      if (i % 4 == 0) return std::nullopt;  // a quarter fail their guards
      return i;
    });
  }
  auto r = race<int>(alts);
  ASSERT_TRUE(r.has_value());
  EXPECT_NE(r->value % 4, 0);
  EXPECT_EQ(r->value, r->winner - 1);
}

TEST(PosixStress, AsynchronousEliminationReapsInFinish) {
  RaceOptions opts;
  opts.elimination = Eliminate::kAsynchronous;
  for (int i = 0; i < 10; ++i) {
    auto r = race<int>(
        {
            [] { return std::optional<int>(1); },
            [] { ::sleep(10); return std::optional<int>(2); },
        },
        opts);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->value, 1);
  }
  // Destructors reaped the async corpses: no zombie accumulation. If they
  // leaked, the process table would fill and later forks fail; reaching here
  // with forks still working is the assertion.
  auto again = race<int>({[] { return std::optional<int>(5); }});
  ASSERT_TRUE(again.has_value());
}

TEST(PosixStress, HeapAbsorptionWithManyDirtyPages) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/8, /*address_mb=*/512);
  AltHeap heap(256);
  RaceOptions opts;
  opts.heap = &heap;
  auto r = race<int>(
      {
          [&]() -> std::optional<int> {
            for (std::size_t p = 0; p < 256; p += 2) {
              heap.at<std::uint64_t>(p * heap.page_size())[0] = p;
            }
            return 1;
          },
      },
      opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->pages_absorbed, 128u);
  EXPECT_EQ(heap.at<std::uint64_t>(10 * heap.page_size())[0], 10u);
  EXPECT_EQ(heap.at<std::uint64_t>(11 * heap.page_size())[0], 0u);
}

TEST(PosixStress, TimeoutWithHeapLeavesArenaUntouched) {
  AltHeap heap(4);
  heap.at<std::uint64_t>(0)[0] = 42;
  RaceOptions opts;
  opts.heap = &heap;
  opts.timeout = 80ms;
  auto r = race<int>(
      {
          [&]() -> std::optional<int> {
            heap.at<std::uint64_t>(0)[0] = 666;
            ::sleep(30);
            return 1;
          },
      },
      opts);
  EXPECT_FALSE(r.has_value());
  EXPECT_EQ(heap.at<std::uint64_t>(0)[0], 42u);
}

}  // namespace
}  // namespace altx::posix
