// Tests for the real-process backend: alt_spawn/alt_wait, the commit-token
// at-most-once rule, sibling elimination, the COW AltHeap, race<T>, and
// checkpoint/restart.
//
// These use genuine fork(); each test finishes in well under a second.
#include <gtest/gtest.h>
#include <unistd.h>

#include <chrono>

#include "common/error.hpp"
#include "posix/alt_group.hpp"
#include "posix/alt_heap.hpp"
#include "posix/checkpoint.hpp"
#include "posix/measure.hpp"
#include "posix/race.hpp"

namespace altx::posix {
namespace {

using namespace std::chrono_literals;

TEST(PosixRace, FastestAlternativeWins) {
  auto r = race<int>({
      [] { ::usleep(200'000); return std::optional<int>(1); },
      [] { ::usleep(10'000); return std::optional<int>(2); },
      [] { ::usleep(100'000); return std::optional<int>(3); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 2);
  EXPECT_EQ(r->winner, 2);
}

TEST(PosixRace, GuardFailureIsSkipped) {
  auto r = race<int>({
      [] { return std::optional<int>(); },  // fails instantly
      [] { ::usleep(30'000); return std::optional<int>(7); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 7);
  EXPECT_EQ(r->winner, 2);
}

TEST(PosixRace, AllFailuresReturnNullopt) {
  auto r = race<int>({
      [] { return std::optional<int>(); },
      [] { return std::optional<int>(); },
      [] { return std::optional<int>(); },
  });
  EXPECT_FALSE(r.has_value());
}

TEST(PosixRace, ExceptionCountsAsFailedGuard) {
  auto r = race<int>({
      []() -> std::optional<int> { throw std::runtime_error("boom"); },
      [] { ::usleep(20'000); return std::optional<int>(5); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 5);
}

TEST(PosixRace, TimeoutFailsTheBlock) {
  RaceOptions opts;
  opts.timeout = 100ms;
  const auto t0 = std::chrono::steady_clock::now();
  auto r = race<int>({
      [] { ::sleep(30); return std::optional<int>(1); },
      [] { ::sleep(30); return std::optional<int>(2); },
  }, opts);
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_FALSE(r.has_value());
  EXPECT_LT(elapsed, 5s);  // children were killed, not awaited
}

TEST(PosixRace, SideEffectsOfLosersStayInvisible) {
  // Each alternative mutates a (process-local after fork) global; only the
  // winner's mutations may be observable — and in the parent not even those,
  // because the result travels only through the commit payload.
  static int global_marker = 0;
  auto r = race<int>({
      [] { global_marker = 111; ::usleep(10'000); return std::optional<int>(global_marker); },
      [] { global_marker = 222; ::usleep(150'000); return std::optional<int>(global_marker); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, 111);
  EXPECT_EQ(global_marker, 0);  // the parent's copy is untouched
}

TEST(RaceCodec, EmptyStringAndBytesRoundTrip) {
  EXPECT_EQ(race_decode<std::string>(race_encode<std::string>("")), "");
  EXPECT_TRUE(race_encode<std::string>("").empty());
  EXPECT_EQ(race_decode<Bytes>(race_encode<Bytes>(Bytes{})), Bytes{});
}

TEST(RaceCodec, PayloadsLargerThanThePipeBufferRoundTrip) {
  // 256 KiB crosses the default 64 KiB pipe capacity several times over;
  // the frame protocol must not depend on a single atomic write.
  std::string big(256 * 1024, 'x');
  for (std::size_t i = 0; i < big.size(); i += 997) big[i] = char('a' + i % 26);
  EXPECT_EQ(race_decode<std::string>(race_encode<std::string>(big)), big);
  const Bytes raw(race_encode<std::string>(big));
  EXPECT_EQ(race_decode<Bytes>(race_encode<Bytes>(raw)), raw);
}

TEST(RaceCodec, TrivialTypesRejectWrongSizes) {
  const double v = 2.5;
  EXPECT_EQ(race_decode<double>(race_encode<double>(v)), v);
  EXPECT_THROW((void)race_decode<double>(Bytes{}), UsageError);
  EXPECT_THROW((void)race_decode<int>(Bytes(sizeof(int) + 1, 0)), UsageError);
}

TEST(PosixRace, LargeResultCrossesTheCommitPipe) {
  // The winner's payload exceeds PIPE_BUF and the default pipe capacity:
  // the commit must still deliver it intact.
  const auto r = race<std::string>({
      [] { return std::optional<std::string>(std::string(256 * 1024, 'z')); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value.size(), 256u * 1024u);
  EXPECT_EQ(r->value.front(), 'z');
  EXPECT_EQ(r->value.back(), 'z');
}

TEST(PosixRace, StringResults) {
  auto r = race<std::string>({
      [] { ::usleep(5'000); return std::optional<std::string>("fast"); },
      [] { ::usleep(100'000); return std::optional<std::string>("slow"); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->value, "fast");
}

TEST(PosixRace, TrivialStructResults) {
  struct Point {
    double x, y;
  };
  auto r = race<Point>({
      [] { return std::optional<Point>(Point{1.5, 2.5}); },
  });
  ASSERT_TRUE(r.has_value());
  EXPECT_DOUBLE_EQ(r->value.x, 1.5);
  EXPECT_DOUBLE_EQ(r->value.y, 2.5);
}

TEST(PosixRace, ManyAlternativesStillAtMostOneWinner) {
  auto mk = [](int i) -> AlternativeFn<int> {
    return [i] { ::usleep(static_cast<useconds_t>(1000 * (i % 3))); return std::optional<int>(i); };
  };
  std::vector<AlternativeFn<int>> alts;
  for (int i = 0; i < 8; ++i) alts.push_back(mk(i));
  auto r = race<int>(alts);
  ASSERT_TRUE(r.has_value());
  EXPECT_GE(r->winner, 1);
  EXPECT_LE(r->winner, 8);
  EXPECT_EQ(r->value, r->winner - 1);
}

// ---------------------------------------------------------------------------
// AltGroup at the primitive level
// ---------------------------------------------------------------------------

TEST(AltGroup, SpawnReturnsDistinctIndices) {
  AltGroup g;
  const int who = g.alt_spawn(3);
  if (who > 0) {
    // Child: report our index as the result.
    Bytes b{static_cast<std::uint8_t>(who)};
    ::usleep(static_cast<useconds_t>(who * 20'000));  // child 1 is fastest
    g.child_commit(b);
  }
  auto win = g.alt_wait(5s);
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(win->index, 1);
  ASSERT_EQ(win->result.size(), 1u);
  EXPECT_EQ(win->result[0], 1);
}

TEST(AltGroup, AltWaitIsIdempotent) {
  AltGroup g;
  if (g.alt_spawn(1) > 0) g.child_commit(Bytes{9});
  auto first = g.alt_wait(5s);
  auto second = g.alt_wait(5s);
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->index, second->index);
}

TEST(AltGroup, AbortedChildrenAreCounted) {
  AltGroup g;
  const int who = g.alt_spawn(3);
  if (who == 1) {
    ::usleep(20'000);
    g.child_commit(Bytes{1});
  }
  if (who > 1) g.child_abort();
  auto win = g.alt_wait(5s);
  ASSERT_TRUE(win.has_value());
  g.finish();
  EXPECT_EQ(g.aborted_children(), 2);
}

TEST(AltGroup, AsynchronousEliminationStillReturnsWinner) {
  AltGroupOptions o;
  o.elimination = Eliminate::kAsynchronous;
  AltGroup g(o);
  const int who = g.alt_spawn(2);
  if (who == 1) {
    ::usleep(5'000);
    g.child_commit(Bytes{1});
  }
  if (who == 2) {
    ::sleep(30);
    g.child_commit(Bytes{2});
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto win = g.alt_wait(5s);
  ASSERT_TRUE(win.has_value());
  EXPECT_EQ(win->index, 1);
  EXPECT_LT(std::chrono::steady_clock::now() - t0, 5s);
  g.finish();
}

// ---------------------------------------------------------------------------
// AltHeap: COW state absorption
// ---------------------------------------------------------------------------

TEST(AltHeap, DirtyPageTrackingRecordsWrites) {
  AltHeap heap(8);
  auto* words = heap.at<std::uint64_t>(0);
  words[0] = 1;  // pre-tracking write, not recorded
  heap.begin_tracking();
  heap.at<std::uint64_t>(2 * heap.page_size())[0] = 42;
  heap.at<std::uint64_t>(5 * heap.page_size())[0] = 43;
  heap.end_tracking();
  auto dirty = heap.dirty_pages();
  std::sort(dirty.begin(), dirty.end());
  EXPECT_EQ(dirty, (std::vector<std::uint32_t>{2, 5}));
}

TEST(AltHeap, ReadsDoNotDirty) {
  AltHeap heap(4);
  heap.at<std::uint64_t>(0)[0] = 7;
  heap.begin_tracking();
  volatile std::uint64_t v = heap.at<std::uint64_t>(0)[0];
  (void)v;
  heap.end_tracking();
  EXPECT_TRUE(heap.dirty_pages().empty());
}

TEST(AltHeap, PatchRoundTrip) {
  AltHeap a(4);
  AltHeap b(4);
  a.begin_tracking();
  a.at<std::uint64_t>(a.page_size())[0] = 0xabcd;
  const Bytes patch = a.serialize_dirty();
  a.end_tracking();
  EXPECT_EQ(b.apply_patch(patch), 1u);
  EXPECT_EQ(b.at<std::uint64_t>(b.page_size())[0], 0xabcdu);
}

TEST(AltHeap, WinnerStateIsAbsorbedAcrossProcesses) {
  AltHeap heap(16);
  auto* slot = heap.at<std::uint64_t>(3 * heap.page_size());
  slot[0] = 0;
  RaceOptions opts;
  opts.heap = &heap;
  auto r = race<int>({
      [&]() -> std::optional<int> {
        ::usleep(5'000);
        slot[0] = 1111;  // the winner's page update
        return 1;
      },
      [&]() -> std::optional<int> {
        ::usleep(200'000);
        slot[0] = 2222;
        return 2;
      },
  }, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 1);
  EXPECT_GE(r->pages_absorbed, 1u);
  // The parent observes exactly the winner's update.
  EXPECT_EQ(slot[0], 1111u);
}

TEST(AltHeap, LoserWritesNeverReachParent) {
  AltHeap heap(8);
  auto* a = heap.at<std::uint64_t>(1 * heap.page_size());
  auto* b = heap.at<std::uint64_t>(2 * heap.page_size());
  *a = 0;
  *b = 0;
  RaceOptions opts;
  opts.heap = &heap;
  auto r = race<int>({
      [&]() -> std::optional<int> { *a = 5; ::usleep(5'000); return 1; },
      [&]() -> std::optional<int> { *b = 6; ::usleep(300'000); return 2; },
  }, opts);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->winner, 1);
  EXPECT_EQ(*a, 5u);
  EXPECT_EQ(*b, 0u);  // loser's page never patched in
}

// ---------------------------------------------------------------------------
// Checkpoint / rfork
// ---------------------------------------------------------------------------

TEST(Checkpoint, SaveLoadRoundTrip) {
  const std::string path = "/tmp/altx_test_ckpt_" + std::to_string(::getpid());
  Bytes image{1, 2, 3, 4, 5};
  checkpoint_save(path, image);
  EXPECT_EQ(checkpoint_load(path), image);
  ::unlink(path.c_str());
}

TEST(Checkpoint, LoadRejectsCorruptMagic) {
  const std::string path = "/tmp/altx_test_bad_" + std::to_string(::getpid());
  FILE* f = ::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  ::fwrite("garbage-garbage-", 1, 16, f);
  ::fclose(f);
  EXPECT_THROW(checkpoint_load(path), UsageError);
  ::unlink(path.c_str());
}

TEST(Checkpoint, RforkSimulatedRestoresRemotely) {
  const auto r = rfork_simulated(70 * 1024, /*network_ms=*/0.0, "/tmp");
  EXPECT_EQ(r.image_bytes, 70u * 1024u);
  EXPECT_GT(r.checkpoint_ms, 0.0);
  EXPECT_GE(r.restore_ms, 0.0);
  EXPECT_GE(r.total_ms, r.checkpoint_ms);
}

TEST(Checkpoint, NetworkDelayAddsToTotal) {
  const auto fast = rfork_simulated(8 * 1024, 0.0, "/tmp");
  const auto slow = rfork_simulated(8 * 1024, 400.0, "/tmp");
  EXPECT_GT(slow.total_ms, fast.total_ms + 300.0);
}

// ---------------------------------------------------------------------------
// Host measurements (sanity only; absolute values are hardware-dependent)
// ---------------------------------------------------------------------------

TEST(Measure, ForkCostIsPositiveAndGrowsWithArena) {
  const auto small = measure_fork(64 * 1024, 10);
  const auto large = measure_fork(32 * 1024 * 1024, 10);
  EXPECT_GT(small.mean_ms, 0.0);
  // Bigger page tables cost more to duplicate; allow generous noise slack.
  EXPECT_GT(large.mean_ms, small.mean_ms * 0.5);
}

TEST(Measure, PageCopyRateIsMeasurable) {
  const auto m = measure_page_copy(16 * 1024 * 1024, 0.5, 3);
  EXPECT_GT(m.pages_copied, 0u);
  EXPECT_GT(m.pages_per_second, 0.0);
}

TEST(Measure, ZeroFractionWritesNothing) {
  const auto m = measure_page_copy(1024 * 1024, 0.0, 1);
  EXPECT_EQ(m.pages_copied, 0u);
}

}  // namespace
}  // namespace altx::posix
