// Tests for the simulated network and the majority-consensus synchronization
// (fault-tolerant at-most-once semantics, section 3.2.1).
#include <gtest/gtest.h>

#include "consensus/majority.hpp"
#include "net/network.hpp"

namespace altx::consensus {
namespace {

net::Network::Config net_cfg(std::size_t nodes, std::uint64_t seed = 1) {
  net::Network::Config c;
  c.node_count = nodes;
  c.base_latency = 2 * kMsec;
  c.seed = seed;
  return c;
}

// ---------------------------------------------------------------------------
// Network substrate
// ---------------------------------------------------------------------------

TEST(Network, DeliversWithLatency) {
  net::Network net(net_cfg(2));
  SimTime arrived = -1;
  net.on_receive(1, [&](const net::Packet& p) {
    arrived = net.now();
    EXPECT_EQ(p.src, 0u);
    EXPECT_EQ(p.data, (Bytes{42}));
  });
  net.send(0, 1, {42});
  net.run();
  EXPECT_EQ(arrived, 2 * kMsec);
}

TEST(Network, CrashedNodeReceivesNothing) {
  net::Network net(net_cfg(2));
  bool got = false;
  net.on_receive(1, [&](const net::Packet&) { got = true; });
  net.crash(1);
  net.send(0, 1, {1});
  net.run();
  EXPECT_FALSE(got);
  EXPECT_EQ(net.packets_lost(), 1u);
}

TEST(Network, PartitionCutsBothDirectionsAndHeals) {
  net::Network net(net_cfg(2));
  int got = 0;
  net.on_receive(0, [&](const net::Packet&) { ++got; });
  net.on_receive(1, [&](const net::Packet&) { ++got; });
  net.partition(0, 1);
  net.send(0, 1, {1});
  net.send(1, 0, {2});
  net.run();
  EXPECT_EQ(got, 0);
  net.heal(0, 1);
  net.send(0, 1, {3});
  net.run();
  EXPECT_EQ(got, 1);
}

TEST(Network, DropRateLosesSomePackets) {
  net::Network::Config c = net_cfg(2, 7);
  c.drop_rate = 0.5;
  net::Network net(c);
  int got = 0;
  net.on_receive(1, [&](const net::Packet&) { ++got; });
  for (int i = 0; i < 200; ++i) net.send(0, 1, {1});
  net.run();
  EXPECT_GT(got, 50);
  EXPECT_LT(got, 150);
}

TEST(Network, TimersFireInOrder) {
  net::Network net(net_cfg(1));
  std::vector<int> order;
  net.after(0, 30 * kMsec, [&] { order.push_back(3); });
  net.after(0, 10 * kMsec, [&] { order.push_back(1); });
  net.after(0, 20 * kMsec, [&] { order.push_back(2); });
  net.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Network, DeterministicAcrossRunsWithSameSeed) {
  auto run_once = [](std::uint64_t seed) {
    net::Network::Config c = net_cfg(2, seed);
    c.drop_rate = 0.3;
    c.jitter = 5 * kMsec;
    net::Network net(c);
    std::vector<SimTime> arrivals;
    net.on_receive(1, [&](const net::Packet&) { arrivals.push_back(net.now()); });
    for (int i = 0; i < 50; ++i) net.send(0, 1, {static_cast<std::uint8_t>(i)});
    net.run();
    return arrivals;
  };
  EXPECT_EQ(run_once(11), run_once(11));
  EXPECT_NE(run_once(11), run_once(12));
}

// ---------------------------------------------------------------------------
// Majority-consensus synchronization
// ---------------------------------------------------------------------------

struct Setup {
  std::unique_ptr<net::Network> net;
  std::unique_ptr<MajoritySync> sync;
};

Setup make(int arbiters, int candidates, std::uint64_t seed = 1,
           double drop = 0.0, SimTime spacing = 0) {
  Setup s;
  auto cfg = net_cfg(static_cast<std::size_t>(arbiters + candidates), seed);
  cfg.drop_rate = drop;
  cfg.jitter = 1 * kMsec;
  s.net = std::make_unique<net::Network>(cfg);
  MajoritySync::Config mc;
  mc.arbiters = arbiters;
  s.sync = std::make_unique<MajoritySync>(*s.net, mc);
  for (int c = 0; c < candidates; ++c) {
    s.sync->add_candidate(static_cast<CandidateId>(c),
                          static_cast<NodeId>(arbiters + c),
                          spacing * c);
  }
  s.sync->start();
  return s;
}

TEST(MajoritySync, SingleCandidateWins) {
  auto s = make(3, 1);
  s.net->run();
  ASSERT_TRUE(s.sync->winner().has_value());
  EXPECT_EQ(*s.sync->winner(), 0u);
  EXPECT_TRUE(s.sync->outcomes().at(0).won);
  EXPECT_GE(s.sync->outcomes().at(0).grants, 2);  // stops at majority
}

TEST(MajoritySync, AtMostOneWinnerAmongSimultaneousCandidates) {
  for (std::uint64_t seed = 1; seed <= 30; ++seed) {
    auto s = make(5, 4, seed);
    s.net->run();
    int winners = 0;
    for (const auto& [id, o] : s.sync->outcomes()) {
      if (o.won) ++winners;
    }
    EXPECT_LE(winners, 1) << "seed " << seed;
    // Sticky votes can split with no majority (2-2-1); every candidate must
    // still reach a definite verdict so the block can fail cleanly.
    for (const auto& [id, o] : s.sync->outcomes()) {
      EXPECT_TRUE(o.decided) << "seed " << seed;
    }
  }
}

TEST(MajoritySync, EveryLoserLearnsItIsTooLate) {
  auto s = make(5, 3, 3);
  s.net->run();
  int decided = 0;
  for (const auto& [id, o] : s.sync->outcomes()) {
    if (o.decided) ++decided;
  }
  EXPECT_EQ(decided, 3);
}

TEST(MajoritySync, ToleratesMinorityArbiterCrashes) {
  auto s = make(5, 1, 4);
  s.net->crash(0);
  s.net->crash(1);  // f = 2 crashes with 2f+1 = 5 arbiters
  s.net->run();
  ASSERT_TRUE(s.sync->winner().has_value());
  EXPECT_TRUE(s.sync->outcomes().at(*s.sync->winner()).won);
}

TEST(MajoritySync, SplitVoteUnderCrashesIsSafeButMayNotCommit) {
  // With two crashed arbiters, three live votes can split 2-1 between two
  // simultaneous candidates so that neither assembles a majority. Safety (at
  // most one winner) must hold regardless; the enclosing alt_wait timeout is
  // the paper's escape for the no-winner case.
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto s = make(5, 2, seed);
    s.net->crash(0);
    s.net->crash(1);
    s.net->run();
    int winners = 0;
    for (const auto& [id, o] : s.sync->outcomes()) {
      EXPECT_TRUE(o.decided) << "seed " << seed;
      if (o.won) ++winners;
    }
    EXPECT_LE(winners, 1) << "seed " << seed;
  }
}

TEST(MajoritySync, MajorityCrashMeansNobodyCommits) {
  auto s = make(5, 2, 5);
  s.net->crash(0);
  s.net->crash(1);
  s.net->crash(2);
  s.net->run();
  EXPECT_FALSE(s.sync->winner().has_value());
  for (const auto& [id, o] : s.sync->outcomes()) {
    EXPECT_TRUE(o.decided);
    EXPECT_FALSE(o.won);
  }
}

TEST(MajoritySync, SurvivesMessageLossThroughRetries) {
  int wins = 0;
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    auto s = make(3, 2, seed, /*drop=*/0.25);
    s.net->run();
    int winners = 0;
    for (const auto& [id, o] : s.sync->outcomes()) {
      if (o.won) ++winners;
    }
    EXPECT_LE(winners, 1) << "seed " << seed;
    wins += winners;
  }
  // Retries make commitment overwhelmingly likely despite 25% loss.
  EXPECT_GE(wins, 15);
}

TEST(MajoritySync, EarlierCandidateUsuallyWins) {
  // With candidates spaced far apart, the first one always wins.
  auto s = make(3, 3, 6, 0.0, /*spacing=*/500 * kMsec);
  s.net->run();
  ASSERT_TRUE(s.sync->winner().has_value());
  EXPECT_EQ(*s.sync->winner(), 0u);
}

TEST(MajoritySync, SingleArbiterIsTheDegenerateTooLateRule) {
  auto s = make(1, 3, 8);
  s.net->run();
  ASSERT_TRUE(s.sync->winner().has_value());
  int winners = 0;
  for (const auto& [id, o] : s.sync->outcomes()) {
    if (o.won) ++winners;
  }
  EXPECT_EQ(winners, 1);
}

TEST(MajoritySync, PartitionedCandidateCannotCommit) {
  auto s = make(3, 2, 9);
  // Candidate 1 (node 4) is cut off from two of the three arbiters.
  s.net->partition(4, 0);
  s.net->partition(4, 1);
  s.net->run();
  ASSERT_TRUE(s.sync->winner().has_value());
  EXPECT_EQ(*s.sync->winner(), 0u);
}

}  // namespace
}  // namespace altx::consensus
