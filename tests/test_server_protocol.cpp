// Protocol hardening for the altxd wire layer (server/protocol.hpp): a
// daemon that accepts bytes from arbitrary clients must shrug off malformed
// frames, truncation, oversized payloads, random garbage, and clients that
// vanish mid-job — dropping the offender, never crashing, never leaking the
// cohort or its governor tokens.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <random>
#include <thread>

#include "constrained.hpp"
#include "obs/event.hpp"
#include "obs/trace.hpp"
#include "posix/alt_group.hpp"
#include "posix/governor.hpp"
#include "server/client.hpp"
#include "server/protocol.hpp"
#include "server/registry.hpp"
#include "server/server.hpp"

namespace {

using namespace altx;
using namespace altx::server;
using namespace std::chrono_literals;

Frame mk(FrameType type, std::uint64_t job_id, Bytes payload = {}) {
  Frame f;
  f.type = type;
  f.job_id = job_id;
  f.payload = std::move(payload);
  return f;
}

// ---- frame + payload round trips ---------------------------------------

TEST(ServerProtocol, FrameRoundTrip) {
  Frame f;
  f.type = FrameType::kSubmit;
  f.flags = 0xbeef;
  f.job_id = 0x1122334455667788ULL;
  f.trace_id = 0xfeedfacecafef00dULL;
  f.span_id = 0x0123456789abcdefULL;
  f.payload = {1, 2, 3, 4, 5};
  const Bytes raw = encode_frame(f);
  ASSERT_EQ(raw.size(), kFrameHeaderBytes + 5);

  FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->type, FrameType::kSubmit);
  EXPECT_EQ(out->flags, 0xbeef);
  EXPECT_EQ(out->job_id, f.job_id);
  EXPECT_EQ(out->trace_id, 0xfeedfacecafef00dULL);
  EXPECT_EQ(out->span_id, 0x0123456789abcdefULL);
  EXPECT_EQ(out->payload, f.payload);
  EXPECT_FALSE(dec.next().has_value());
  EXPECT_EQ(dec.buffered(), 0u);
}

TEST(ServerProtocol, UntracedFrameCarriesZeroIds) {
  const Bytes raw = encode_frame(mk(FrameType::kPing, 7));
  FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->trace_id, 0u);
  EXPECT_EQ(out->span_id, 0u);
}

TEST(ServerProtocol, V1FramesAreRejectedAtTheVersionByte) {
  // The v2 header grew from 20 to 36 bytes, but the first 20 bytes kept the
  // v1 layout — so a v1 writer's frame deterministically fails here, at the
  // version check, instead of being misparsed.
  Bytes raw = encode_frame(mk(FrameType::kPing, 0));
  raw[4] = 1;  // the v1 version byte
  FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServerProtocol, JobSpecRoundTrip) {
  JobSpec spec;
  spec.timeout_ms = 1234;
  spec.site_id = 0xdeadbeef;
  spec.heap_pages = 7;
  spec.queue_ns = 55'555;
  spec.arms.push_back({"echo", {9, 8, 7}});
  spec.arms.push_back({"fail", {}});
  const JobSpec out = decode_job(encode_job(spec));
  EXPECT_EQ(out.timeout_ms, 1234u);
  EXPECT_EQ(out.site_id, 0xdeadbeefu);
  EXPECT_EQ(out.heap_pages, 7u);
  EXPECT_EQ(out.queue_ns, 55'555u);
  ASSERT_EQ(out.arms.size(), 2u);
  EXPECT_EQ(out.arms[0].handler, "echo");
  EXPECT_EQ(out.arms[0].args, (Bytes{9, 8, 7}));
  EXPECT_EQ(out.arms[1].handler, "fail");
}

TEST(ServerProtocol, OutcomeAndStatsRoundTrip) {
  JobOutcome o;
  o.status = JobStatus::kWon;
  o.winner = 2;
  o.value = {42};
  o.queue_ns = 11;
  o.exec_ns = 22;
  o.retry_after_ms = 33;
  o.error = "why";
  const JobOutcome oo = decode_outcome(encode_outcome(o));
  EXPECT_EQ(oo.status, JobStatus::kWon);
  EXPECT_EQ(oo.winner, 2u);
  EXPECT_EQ(oo.value, (Bytes{42}));
  EXPECT_EQ(oo.queue_ns, 11u);
  EXPECT_EQ(oo.exec_ns, 22u);
  EXPECT_EQ(oo.retry_after_ms, 33u);
  EXPECT_EQ(oo.error, "why");

  WireStats s;
  s.accepted = 1;
  s.completed = 2;
  s.denied = 3;
  s.canceled = 4;
  s.worker_spawns = 5;
  s.worker_respawns = 6;
  s.tokens_reclaimed = 7;
  s.inflight_hw = 8;
  s.queued = 9;
  s.running = 10;
  s.clients = 11;
  s.workers_idle = 12;
  s.workers_busy = 13;
  const WireStats ss = decode_stats(encode_stats(s));
  EXPECT_EQ(ss.accepted, 1u);
  EXPECT_EQ(ss.tokens_reclaimed, 7u);
  EXPECT_EQ(ss.inflight_hw, 8u);
  EXPECT_EQ(ss.workers_busy, 13u);
}

// ---- incremental / truncated input -------------------------------------

TEST(ServerProtocol, DecoderAcceptsByteAtATime) {
  Frame f;
  f.type = FrameType::kResult;
  f.job_id = 99;
  f.payload = Bytes(300, 0xab);
  const Bytes raw = encode_frame(f);
  FrameDecoder dec;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_FALSE(dec.next().has_value()) << "frame complete early at " << i;
    dec.feed(&raw[i], 1);
  }
  const auto out = dec.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->payload, f.payload);
}

TEST(ServerProtocol, TruncatedFrameIsJustIncomplete) {
  // A prefix of a valid frame is not an error — the rest may still arrive.
  const Bytes raw = encode_frame(mk(FrameType::kSubmit, 1, Bytes(64, 1)));
  for (const std::size_t cut : {1ul, 19ul, 20ul, 35ul, 40ul, raw.size() - 1}) {
    FrameDecoder dec;
    dec.feed(raw.data(), cut);
    EXPECT_FALSE(dec.next().has_value()) << "cut at " << cut;
  }
}

TEST(ServerProtocol, BadMagicThrows) {
  Bytes raw = encode_frame(mk(FrameType::kPing, 0));
  raw[0] ^= 0xff;
  FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServerProtocol, BadVersionThrows) {
  Bytes raw = encode_frame(mk(FrameType::kPing, 0));
  raw[4] = kProtoVersion + 1;
  FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServerProtocol, BadTypeThrows) {
  Bytes raw = encode_frame(mk(FrameType::kPing, 0));
  raw[5] = 0;  // below the FrameType range
  FrameDecoder dec;
  dec.feed(raw.data(), raw.size());
  EXPECT_THROW((void)dec.next(), ProtocolError);
  raw[5] = 200;  // above it
  FrameDecoder dec2;
  dec2.feed(raw.data(), raw.size());
  EXPECT_THROW((void)dec2.next(), ProtocolError);
}

TEST(ServerProtocol, OversizedPayloadRejectedFromHeaderAlone) {
  // The header claims 17 MiB; the decoder must throw on the header, before
  // any payload is buffered — a hostile client cannot make us allocate.
  Bytes raw = encode_frame(mk(FrameType::kSubmit, 1));
  const std::uint32_t huge = (16u << 20) + 1;
  std::memcpy(raw.data() + 16, &huge, 4);
  FrameDecoder dec;
  dec.feed(raw.data(), kFrameHeaderBytes);  // header only, no payload
  EXPECT_THROW((void)dec.next(), ProtocolError);
}

TEST(ServerProtocol, MalformedJobPayloads) {
  // Truncated payload.
  const Bytes good = encode_job([] {
    JobSpec s;
    s.arms.push_back({"echo", {1}});
    return s;
  }());
  Bytes cut(good.begin(), good.begin() + static_cast<long>(good.size() / 2));
  EXPECT_THROW((void)decode_job(cut), ProtocolError);

  // Trailing garbage after a valid spec.
  Bytes padded = good;
  padded.push_back(0);
  EXPECT_THROW((void)decode_job(padded), ProtocolError);

  // Zero arms.
  EXPECT_THROW((void)decode_job(encode_job(JobSpec{})), ProtocolError);

  // Too many arms.
  JobSpec wide;
  for (std::size_t i = 0; i <= kMaxArms; ++i) wide.arms.push_back({"e", {}});
  EXPECT_THROW((void)decode_job(encode_job(wide)), ProtocolError);

  // Handler name over the cap.
  JobSpec longname;
  longname.arms.push_back({std::string(kMaxHandlerName + 1, 'x'), {}});
  EXPECT_THROW((void)decode_job(encode_job(longname)), ProtocolError);
}

// ---- fuzz-ish: the decoder survives random bytes ------------------------

TEST(ServerProtocol, FuzzRandomBytes) {
  // Seeded, so a failure reproduces. Random chunks either parse (rarely —
  // the magic gates almost everything) or throw ProtocolError; anything
  // else (crash, unbounded buffering) is the bug this test exists for.
  std::mt19937 rng(20250808);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(1, 257);
  int poisoned = 0;
  FrameDecoder dec;
  for (int round = 0; round < 2'000; ++round) {
    Bytes chunk(static_cast<std::size_t>(len(rng)));
    for (auto& b : chunk) b = static_cast<std::uint8_t>(byte(rng));
    // Make some chunks *almost* valid so deeper paths get exercised.
    if (round % 7 == 0 && chunk.size() >= 6) {
      std::memcpy(chunk.data(), &kFrameMagic, 4);
      chunk[4] = kProtoVersion;
    }
    dec.feed(chunk.data(), chunk.size());
    try {
      while (dec.next().has_value()) {
      }
    } catch (const ProtocolError&) {
      ++poisoned;
      dec = FrameDecoder();  // stream is poisoned by contract; start over
    }
    ASSERT_LT(dec.buffered(), kMaxFramePayload + kFrameHeaderBytes + 512);
  }
  EXPECT_GT(poisoned, 0) << "fuzz never hit a reject path; seed too tame";
}

TEST(ServerProtocol, FuzzRandomJobPayloads) {
  std::mt19937 rng(424242);
  std::uniform_int_distribution<int> byte(0, 255);
  std::uniform_int_distribution<int> len(0, 200);
  for (int round = 0; round < 2'000; ++round) {
    Bytes payload(static_cast<std::size_t>(len(rng)));
    for (auto& b : payload) b = static_cast<std::uint8_t>(byte(rng));
    try {
      (void)decode_job(payload);
    } catch (const ProtocolError&) {
    }
    try {
      (void)decode_outcome(payload);
    } catch (const ProtocolError&) {
    }
    try {
      (void)decode_stats(payload);
    } catch (const ProtocolError&) {
    }
  }
}

// ---- a live daemon vs. hostile or vanishing clients ---------------------

class ServerHardening : public ::testing::Test {
 protected:
  void SetUp() override {
    register_builtin_handlers(HandlerRegistry::global());
    sock_ = "/tmp/altx_proto_test_" + std::to_string(::getpid()) + ".sock";
  }

  void start(ServerConfig cfg) {
    cfg.socket_path = sock_;
    server_ = std::make_unique<Server>(std::move(cfg));
    server_->start();
    runner_ = std::thread([this] { server_->run(); });
  }

  void TearDown() override {
    if (server_ != nullptr) {
      server_->request_stop();
      if (runner_.joinable()) runner_.join();
      server_.reset();
    }
    ::unlink(sock_.c_str());
  }

  std::string sock_;
  std::unique_ptr<Server> server_;
  std::thread runner_;
};

TEST_F(ServerHardening, GarbageBytesDropTheClientNotTheDaemon) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 1;
  start(cfg);

  {
    // A client that speaks garbage gets dropped.
    Client bad = Client::connect_unix(sock_);
    const char junk[] = "GET / HTTP/1.1\r\n\r\n";
    ASSERT_EQ(::write(bad.fd(), junk, sizeof junk), (ssize_t)sizeof junk);
    EXPECT_THROW(bad.ping(2'000ms), SystemError);
  }

  // The daemon is unharmed: a well-behaved client still gets service.
  Client good = Client::connect_unix(sock_);
  good.ping(5'000ms);
  const std::uint64_t id = good.submit([] {
    JobSpec s;
    s.arms.push_back({"echo", {7}});
    return s;
  }());
  const JobOutcome out = good.wait(id, 10'000ms);
  EXPECT_EQ(out.status, JobStatus::kWon);
  EXPECT_EQ(out.value, (Bytes{7}));
}

TEST_F(ServerHardening, MidJobDisconnectReapsCohortAndReleasesTokens) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  ServerConfig cfg;
  cfg.workers = 2;
  cfg.gov_tokens = 8;
  cfg.kill_grace = 20ms;
  start(cfg);

  posix::SpeculationGovernor* gov = server_->governor();
  ASSERT_NE(gov, nullptr);

  {
    Client c = Client::connect_unix(sock_);
    JobSpec s;
    s.timeout_ms = 60'000;
    s.arms.push_back({"hang", {}});
    s.arms.push_back({"hang", {}});
    c.submit(s);
    c.submit(s);
    // Wait until both jobs are racing (tokens held by worker cohorts).
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (server_->stats().running < 2 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(5ms);
    }
    ASSERT_EQ(server_->stats().running, 2u);
    // Client vanishes here — ~Client closes the socket mid-job.
  }

  // The daemon must tear down both cohorts and reconcile the governor:
  // no running jobs, no in-flight tokens, workers respawned.
  const auto deadline = std::chrono::steady_clock::now() + 10s;
  for (;;) {
    const ServerStats st = server_->stats();
    const posix::GovernorStats gs = gov->stats();
    if (st.running == 0 && st.clients == 0 && gs.in_flight == 0 &&
        st.workers_idle == 2) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "running=" << st.running << " clients=" << st.clients
        << " gov_in_flight=" << gs.in_flight
        << " workers_idle=" << st.workers_idle;
    std::this_thread::sleep_for(10ms);
  }
  const ServerStats st = server_->stats();
  EXPECT_EQ(st.canceled, 2u);
  EXPECT_GE(st.worker_respawns, 2u);
}

TEST_F(ServerHardening, TraceIdSurvivesSigkilledLoserAndWorkerTeardown) {
  ALTX_SKIP_IF_CONSTRAINED(/*procs=*/32, /*address_mb=*/512);
  obs::enable_for_test(1 << 14);
  ServerConfig cfg;
  cfg.workers = 1;
  cfg.kill_grace = 20ms;
  start(cfg);

  // Job A: a hanging arm from a client that vanishes mid-job. The daemon
  // SIGKILLs the worker cohort on disconnect — every record the dying side
  // already emitted must carry A's trace id.
  const std::uint64_t trace_a = 0x1111222233334444ULL;
  {
    Client a = Client::connect_unix(sock_);
    JobSpec s;
    s.timeout_ms = 60'000;
    s.arms.push_back({"hang", {}});
    a.submit(s, trace_a, /*span_id=*/1);
    const auto deadline = std::chrono::steady_clock::now() + 10s;
    while (server_->stats().running < 1 &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(5ms);
    }
    ASSERT_EQ(server_->stats().running, 1u);
  }  // ~Client: disconnect mid-job → cohort teardown, worker respawn

  const auto drain = std::chrono::steady_clock::now() + 10s;
  while ((server_->stats().clients != 0 || server_->stats().workers_idle < 1) &&
         std::chrono::steady_clock::now() < drain) {
    std::this_thread::sleep_for(5ms);
  }

  // Job B on the replacement worker: one eliminated (SIGKILLed) loser, and
  // the fresh worker must stamp B's id — not a recycled trace_a, not zero.
  const std::uint64_t trace_b = 0x5555666677778888ULL;
  Client b = Client::connect_unix(sock_);
  Bytes fast;
  ByteWriter w(fast);
  w.u32(10);
  JobSpec s;
  s.timeout_ms = 30'000;
  s.arms.push_back({"hang", {}});       // the SIGKILLed loser
  s.arms.push_back({"sleep_ms", fast});  // the winner
  const std::uint64_t id = b.submit(s, trace_b, /*span_id=*/2);
  const JobOutcome out = b.wait(id, 30'000ms);
  ASSERT_EQ(out.status, JobStatus::kWon);
  EXPECT_EQ(out.winner, 2u);

  std::uint64_t gone_ns = 0;
  const auto recs = obs::snapshot();
  for (const obs::Record& r : recs) {
    if (r.kind == obs::EventKind::kSrvClientGone) {
      gone_ns = std::max(gone_ns, r.t_ns);
    }
  }
  ASSERT_NE(gone_ns, 0u) << "no kSrvClientGone for the vanished client";

  bool a_daemon = false, a_worker = false;
  bool b_daemon = false, b_worker = false, b_eliminated = false;
  for (const obs::Record& r : recs) {
    if (r.trace_id == trace_a) {
      if (r.kind == obs::EventKind::kSrvSubmit ||
          r.kind == obs::EventKind::kSrvAssign) {
        a_daemon = true;
      }
      if (r.kind == obs::EventKind::kRaceBegin) a_worker = true;
      // No recycled ids: nothing after the teardown may carry A's trace.
      EXPECT_LE(r.t_ns, gone_ns)
          << to_string(r.kind) << " carries the dead client's trace id";
    } else if (r.trace_id == trace_b) {
      if (r.kind == obs::EventKind::kSrvSubmit) b_daemon = true;
      if (r.kind == obs::EventKind::kRaceDecided && r.child_index == 0) {
        b_worker = true;
      }
      if (r.kind == obs::EventKind::kChildFate &&
          static_cast<posix::ChildFate>(r.a) ==
              posix::ChildFate::kEliminated) {
        b_eliminated = true;  // the SIGKILLed loser, attributed to B
      }
    }
    // The replacement worker's race records must never be untraced.
    if (r.kind == obs::EventKind::kRaceBegin && r.t_ns > gone_ns) {
      EXPECT_EQ(r.trace_id, trace_b);
    }
  }
  EXPECT_TRUE(a_daemon) << "job A's daemon records lost the trace id";
  EXPECT_TRUE(a_worker) << "job A's worker records lost the trace id";
  EXPECT_TRUE(b_daemon);
  EXPECT_TRUE(b_worker);
  EXPECT_TRUE(b_eliminated)
      << "the eliminated loser's fate record lost job B's trace id";
  server_->request_stop();
  if (runner_.joinable()) runner_.join();
  server_.reset();
  obs::reset();
}

}  // namespace
