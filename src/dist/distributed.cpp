#include "dist/distributed.hpp"

#include "obs/trace.hpp"

namespace altx::dist {

namespace {

/// Sim time is integer microseconds; the unified trace speaks nanoseconds.
std::uint64_t sim_ns(SimTime t) {
  return static_cast<std::uint64_t>(t) * 1000ULL;
}

/// Sim node n is stamped as trace node n+1: trace node 0 stays the
/// "no node / single process" sentinel, so arbiter 0 is distinguishable.
std::uint32_t trace_node(NodeId n) {
  return static_cast<std::uint32_t>(n) + 1;
}

}  // namespace

namespace {

Bytes encode(std::uint8_t type, std::uint32_t alt, std::size_t pad_to = 0) {
  Bytes b;
  ByteWriter w(b);
  w.u8(type);
  w.u32(alt);
  if (b.size() < pad_to) b.resize(pad_to);  // model the checkpoint's bulk
  return b;
}

std::pair<std::uint8_t, std::uint32_t> decode(const Bytes& b) {
  ByteReader r(b.data(), std::min<std::size_t>(b.size(), 5));
  const std::uint8_t t = r.u8();
  const std::uint32_t alt = r.u32();
  return {t, alt};
}

consensus::MajoritySync::Config sync_config(const DistConfig& cfg) {
  consensus::MajoritySync::Config mc;
  mc.arbiters = cfg.arbiters;
  return mc;
}

}  // namespace

DistributedBlock::DistributedBlock(net::Network& network, DistConfig cfg,
                                   std::vector<RemoteAlt> alts)
    : net_(network), cfg_(cfg), alts_(std::move(alts)),
      sync_(network, sync_config(cfg)) {
  ALTX_REQUIRE(!alts_.empty(), "DistributedBlock: need alternatives");
  ALTX_REQUIRE(net_.node_count() >=
                   static_cast<std::size_t>(cfg_.arbiters) + 1 + alts_.size(),
               "DistributedBlock: network too small for the topology");
  workers_.resize(alts_.size());
}

void DistributedBlock::start() {
  // Consensus candidates: one per alternative (manual launch on completion)
  // plus the coordinator's failure alternative.
  for (std::size_t i = 0; i < alts_.size(); ++i) {
    sync_.add_candidate(static_cast<consensus::CandidateId>(i), worker_node(i),
                        /*start_at=*/-1);
  }
  sync_.add_candidate(kFailCandidate, coordinator_node(), /*start_at=*/-1);
  sync_.on_decided = [this](consensus::CandidateId id,
                            const consensus::SyncOutcome& o) {
    on_candidate_decided(id, o);
  };
  sync_.start();

  net_.on_receive(coordinator_node(), kDistChannel,
                  [this](const net::Packet& p) { on_coordinator_packet(p); });
  for (std::size_t i = 0; i < alts_.size(); ++i) {
    net_.on_receive(worker_node(i), kDistChannel,
                    [this, i](const net::Packet& p) { on_worker_packet(i, p); });
  }

  // rfork each alternative: ship the checkpoint (its bulk is the payload, so
  // the network's bandwidth model charges the transfer).
  trace_id_ = obs::next_race_id();
  obs::emit_at_node(sim_ns(net_.now()), trace_node(coordinator_node()),
                    obs::EventKind::kRaceBegin, trace_id_, 0, alts_.size());
  for (std::size_t i = 0; i < alts_.size(); ++i) {
    obs::emit_at_node(sim_ns(net_.now()), trace_node(coordinator_node()),
                      obs::EventKind::kDistSpawn, trace_id_,
                      static_cast<std::int16_t>(i + 1), i,
                      cfg_.checkpoint_bytes);
    net_.send(coordinator_node(), worker_node(i), kDistChannel,
              encode(kSpawn, static_cast<std::uint32_t>(i), cfg_.checkpoint_bytes));
  }
  net_.after(coordinator_node(), cfg_.timeout, [this] { coordinator_timeout(); });
}

void DistributedBlock::on_worker_packet(std::size_t alt, const net::Packet& p) {
  const auto [type, idx] = decode(p.data);
  WorkerState& ws = workers_[alt];
  switch (type) {
    case kSpawn: {
      if (ws.killed) return;
      // Restore the checkpoint and run the alternative's body; the guard is
      // evaluated in the child (section 3.2).
      const RemoteAlt& a = alts_[alt];
      net_.after(worker_node(alt), std::max<SimTime>(1, a.compute),
                 [this, alt] { worker_finished(alt); });
      return;
    }
    case kKill:
      ws.killed = true;
      return;
    case kAck:
      ws.acked = true;
      return;
    default:
      (void)idx;
      return;
  }
}

void DistributedBlock::worker_finished(std::size_t alt) {
  WorkerState& ws = workers_[alt];
  if (ws.killed) return;
  if (!alts_[alt].guard_ok) {
    // Abort without synchronizing.
    net_.send(worker_node(alt), coordinator_node(), kDistChannel,
              encode(kAbort, static_cast<std::uint32_t>(alt)));
    return;
  }
  // Attempt the synchronization through the majority-consensus semaphore.
  sync_.launch(static_cast<consensus::CandidateId>(alt));
}

void DistributedBlock::on_candidate_decided(consensus::CandidateId id,
                                            const consensus::SyncOutcome& o) {
  if (id == kFailCandidate) {
    if (o.won) {
      // The failure alternative took the semaphore: no alternative can ever
      // commit — the block has failed definitively.
      if (!done_) {
        done_ = true;
        result_.failed = true;
        result_.decided_at = net_.now();
        result_.packets = net_.packets_sent();
        obs::emit_at_node(sim_ns(net_.now()), trace_node(coordinator_node()),
                          obs::EventKind::kDistDecided, trace_id_, 0,
                          /*committed=*/0);
      }
    }
    // FAIL told "too late": some alternative holds the semaphore; its result
    // will reach the coordinator through retransmission. Keep waiting.
    return;
  }
  const auto alt = static_cast<std::size_t>(id);
  WorkerState& ws = workers_[alt];
  if (o.won) {
    ws.won = true;
    resend_result(alt);
  } else {
    // Too late for the synchronization: terminate self (section 3.2.1).
    ++result_.too_lates;
    ws.killed = true;
    obs::emit_at_node(sim_ns(net_.now()), trace_node(worker_node(alt)),
                      obs::EventKind::kTooLate, trace_id_,
                      static_cast<std::int16_t>(alt + 1));
  }
}

void DistributedBlock::resend_result(std::size_t alt) {
  WorkerState& ws = workers_[alt];
  if (ws.acked || !ws.won) return;
  net_.send(worker_node(alt), coordinator_node(), kDistChannel,
            encode(kResult, static_cast<std::uint32_t>(alt)));
  net_.after(worker_node(alt), cfg_.result_retry, [this, alt] { resend_result(alt); });
}

void DistributedBlock::on_coordinator_packet(const net::Packet& p) {
  const auto [type, alt] = decode(p.data);
  switch (type) {
    case kResult:
      // Ack so the winner stops retransmitting, then absorb.
      obs::emit_at_node(sim_ns(net_.now()), trace_node(coordinator_node()),
                        obs::EventKind::kDistResult, trace_id_,
                        static_cast<std::int16_t>(alt + 1), alt);
      net_.send(coordinator_node(), worker_node(alt), kDistChannel,
                encode(kAck, alt));
      commit(static_cast<int>(alt));
      return;
    case kAbort:
      ++result_.aborts;
      ++aborts_seen_;
      obs::emit_at_node(sim_ns(net_.now()), trace_node(worker_node(alt)),
                        obs::EventKind::kDistAbort, trace_id_,
                        static_cast<std::int16_t>(alt + 1), alt);
      if (!done_ && aborts_seen_ == static_cast<int>(alts_.size())) {
        // Every alternative reported a failed guard: claim the semaphore for
        // the failure alternative right away rather than waiting out the
        // timeout.
        sync_.launch(kFailCandidate);
      }
      return;
    default:
      return;
  }
}

void DistributedBlock::commit(int winner) {
  if (done_) return;
  done_ = true;
  result_.committed = true;
  result_.winner = winner;
  result_.decided_at = net_.now();
  result_.packets = net_.packets_sent();
  obs::emit_at_node(sim_ns(net_.now()), trace_node(coordinator_node()),
                    obs::EventKind::kDistDecided, trace_id_, 0,
                    /*committed=*/1, static_cast<std::uint64_t>(winner));
  // Eliminate the siblings, best effort (asynchronous elimination; a lost
  // kill cannot violate at-most-once — the semaphore already refused them).
  for (std::size_t i = 0; i < alts_.size(); ++i) {
    if (static_cast<int>(i) != winner) {
      obs::emit_at_node(sim_ns(net_.now()), trace_node(coordinator_node()),
                        obs::EventKind::kDistKill, trace_id_,
                        static_cast<std::int16_t>(i + 1), i);
      net_.send(coordinator_node(), worker_node(i), kDistChannel,
                encode(kKill, static_cast<std::uint32_t>(i)));
    }
  }
}

void DistributedBlock::coordinator_timeout() {
  if (done_) return;
  // Presume failure (section 3.2): enter the failure alternative into the
  // election. If some alternative already holds the semaphore, FAIL loses
  // and we keep waiting for the (retransmitted) result instead.
  sync_.launch(kFailCandidate);
}

}  // namespace altx::dist
