// Distributed execution of an alternative block (sections 3.2, 4.4, 5.1.2).
//
// The paper's target deployment: the parent (coordinator) remote-forks each
// alternative to a workstation by shipping a checkpoint of the process in
// its entirety (E4's dominant cost); alternates compute remotely and race to
// synchronize through the fault-tolerant majority-consensus 0-1 semaphore;
// the coordinator absorbs the winner's result and eliminates the rest with
// best-effort kill messages (losing a kill is harmless — the sticky votes
// already guarantee at-most-once).
//
// The TIMEOUT is implemented exactly as the paper frames the failure case:
// the coordinator enters the *failure alternative* as one more candidate in
// the same election. If FAIL wins the vote, no alternative can ever commit
// and the block has failed definitively; if FAIL is told "too late", some
// alternative won and its (possibly lost) result message will arrive through
// retransmission.
//
// Topology on the net::Network: nodes [0, A) are arbiters, node A is the
// coordinator, nodes [A+1, A+1+W) host one worker each.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/sim_time.hpp"
#include "consensus/majority.hpp"
#include "net/network.hpp"

namespace altx::dist {

/// Network channel for the execution control plane (spawn/abort/result/kill);
/// the consensus protocol runs on its own channel over the same links.
constexpr net::Channel kDistChannel = 2;

/// One remote alternative: how long it computes on its worker and whether
/// its guard (acceptance test, evaluated in the child) holds.
struct RemoteAlt {
  SimTime compute = 0;
  bool guard_ok = true;
};

struct DistConfig {
  int arbiters = 3;
  std::size_t checkpoint_bytes = 70 * 1024;  // the rfork image (section 4.4)
  SimTime timeout = 10 * kSec;               // coordinator's alt_wait TIMEOUT
  SimTime result_retry = 100 * kMsec;        // winner retransmits its result
};

struct DistResult {
  bool committed = false;      // an alternative's result reached the parent
  bool failed = false;         // the FAIL candidate won: definitive failure
  int winner = -1;             // alternative index, when committed
  SimTime decided_at = 0;      // when the coordinator learned the outcome
  int aborts = 0;              // guard failures reported
  int too_lates = 0;           // alternates refused by the semaphore
  std::uint64_t packets = 0;   // total network traffic
};

/// Runs one distributed alternative block over the given network. The
/// network must have at least arbiters + 1 + alts.size() nodes. The caller
/// may crash nodes / cut links before or during the run (via timers).
class DistributedBlock {
 public:
  DistributedBlock(net::Network& network, DistConfig cfg,
                   std::vector<RemoteAlt> alts);

  /// Installs handlers and kicks off the spawns; the caller drives
  /// network.run() and then reads result().
  void start();

  [[nodiscard]] const DistResult& result() const { return result_; }

  [[nodiscard]] NodeId coordinator_node() const {
    return static_cast<NodeId>(cfg_.arbiters);
  }
  [[nodiscard]] NodeId worker_node(std::size_t alt) const {
    return static_cast<NodeId>(cfg_.arbiters + 1 + alt);
  }

 private:
  enum MsgType : std::uint8_t {
    kSpawn = 1,   // coordinator -> worker, padded to checkpoint_bytes
    kAbort = 2,   // worker -> coordinator: guard failed
    kResult = 3,  // worker -> coordinator: committed result
    kKill = 4,    // coordinator -> worker: eliminate
    kAck = 5,     // coordinator -> worker: result received, stop resending
  };

  static constexpr consensus::CandidateId kFailCandidate = 0xFFFFFFF0;

  void on_coordinator_packet(const net::Packet& p);
  void on_worker_packet(std::size_t alt, const net::Packet& p);
  void on_candidate_decided(consensus::CandidateId id,
                            const consensus::SyncOutcome& o);
  void worker_finished(std::size_t alt);
  void resend_result(std::size_t alt);
  void coordinator_timeout();
  void commit(int winner);

  net::Network& net_;
  DistConfig cfg_;
  std::vector<RemoteAlt> alts_;
  consensus::MajoritySync sync_;
  DistResult result_;
  std::uint32_t trace_id_ = 0;  // groups this block's obs events

  struct WorkerState {
    bool killed = false;
    bool won = false;
    bool acked = false;
  };
  std::vector<WorkerState> workers_;
  int aborts_seen_ = 0;
  bool done_ = false;
};

}  // namespace altx::dist
