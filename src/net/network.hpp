// A small deterministic message network.
//
// Used by the consensus layer (and experiment E8) to model the distributed
// synchronization environment of section 3.2.1: point-to-point datagrams with
// latency, jitter, loss, partitions and node crashes. Deliberately separate
// from the kernel simulator — synchronization protocols are studied here at
// message granularity, then their end-to-end cost is fed into MachineModel's
// commit parameters.
//
// Determinism: one event queue ordered by (time, sequence); jitter and drops
// come from an explicit seeded Rng.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace altx::net {

/// Channel tags demultiplex unrelated protocols sharing one network (e.g.
/// the consensus voters and the distributed-execution control plane).
using Channel = std::uint8_t;
constexpr Channel kDefaultChannel = 0;

struct Packet {
  NodeId src = 0;
  NodeId dst = 0;
  Channel channel = kDefaultChannel;
  Bytes data;
};

class Network {
 public:
  struct Config {
    std::size_t node_count = 0;
    SimTime base_latency = 2 * kMsec;  // one-way
    SimTime jitter = 0;                // uniform extra in [0, jitter]
    double drop_rate = 0.0;            // probability a packet is lost
    double bytes_per_usec = 0.0;       // transfer rate; 0 = size costs nothing
    std::uint64_t seed = 1;
  };

  /// Called when a packet arrives at a node.
  using Handler = std::function<void(const Packet&)>;
  /// A scheduled callback (protocol timers).
  using Timer = std::function<void()>;

  explicit Network(Config cfg) : cfg_(cfg), rng_(cfg.seed) {
    ALTX_REQUIRE(cfg.node_count > 0, "Network: need at least one node");
    ALTX_REQUIRE(cfg.drop_rate >= 0.0 && cfg.drop_rate < 1.0,
                 "Network: drop_rate must be in [0,1)");
    handlers_.resize(cfg.node_count);
    crashed_.resize(cfg.node_count, false);
  }

  [[nodiscard]] std::size_t node_count() const { return cfg_.node_count; }
  [[nodiscard]] SimTime now() const { return now_; }

  void on_receive(NodeId node, Handler h) { on_receive(node, kDefaultChannel, std::move(h)); }

  void on_receive(NodeId node, Channel channel, Handler h) {
    check_node(node);
    handlers_[node][channel] = std::move(h);
  }

  /// Sends a datagram. May be dropped (config), or silently discarded if
  /// either endpoint is crashed or the link is partitioned.
  void send(NodeId src, NodeId dst, Bytes data) {
    send(src, dst, kDefaultChannel, std::move(data));
  }

  void send(NodeId src, NodeId dst, Channel channel, Bytes data) {
    check_node(src);
    check_node(dst);
    ++stats_sent_;
    if (crashed_[src] || crashed_[dst] || partitioned(src, dst)) {
      ++stats_lost_;
      return;
    }
    if (cfg_.drop_rate > 0.0 && rng_.chance(cfg_.drop_rate)) {
      ++stats_lost_;
      return;
    }
    SimTime latency = cfg_.base_latency;
    if (cfg_.jitter > 0) {
      latency += static_cast<SimTime>(
          rng_.below(static_cast<std::uint64_t>(cfg_.jitter) + 1));
    }
    if (cfg_.bytes_per_usec > 0) {
      latency += static_cast<SimTime>(static_cast<double>(data.size()) /
                                      cfg_.bytes_per_usec);
    }
    Event ev;
    ev.time = now_ + latency;
    ev.seq = next_seq_++;
    ev.packet = Packet{src, dst, channel, std::move(data)};
    ev.is_timer = false;
    events_.push(std::move(ev));
  }

  /// Schedules a protocol timer at `node` after `delay`. Crashed nodes'
  /// timers do not fire.
  void after(NodeId node, SimTime delay, Timer t) {
    check_node(node);
    ALTX_REQUIRE(delay >= 0, "Network::after: negative delay");
    Event ev;
    ev.time = now_ + delay;
    ev.seq = next_seq_++;
    ev.timer = std::move(t);
    ev.timer_node = node;
    ev.is_timer = true;
    events_.push(std::move(ev));
  }

  void crash(NodeId node) {
    check_node(node);
    crashed_[node] = true;
  }

  void restart(NodeId node) {
    check_node(node);
    crashed_[node] = false;
  }

  [[nodiscard]] bool is_crashed(NodeId node) const { return crashed_[node]; }

  /// Cuts the (bidirectional) link between two nodes.
  void partition(NodeId a, NodeId b) {
    check_node(a);
    check_node(b);
    cuts_.insert(link(a, b));
  }

  void heal(NodeId a, NodeId b) { cuts_.erase(link(a, b)); }

  /// Runs the event loop until quiescence or `until`.
  SimTime run(SimTime until = std::numeric_limits<SimTime>::max()) {
    while (!events_.empty()) {
      if (events_.top().time > until) {
        now_ = until;
        return now_;
      }
      Event ev = std::move(const_cast<Event&>(events_.top()));
      events_.pop();
      now_ = ev.time;
      if (ev.is_timer) {
        if (!crashed_[ev.timer_node] && ev.timer) ev.timer();
      } else {
        const NodeId dst = ev.packet.dst;
        if (!crashed_[dst]) {
          auto it = handlers_[dst].find(ev.packet.channel);
          if (it != handlers_[dst].end() && it->second) it->second(ev.packet);
        }
      }
    }
    return now_;
  }

  [[nodiscard]] std::uint64_t packets_sent() const { return stats_sent_; }
  [[nodiscard]] std::uint64_t packets_lost() const { return stats_lost_; }

 private:
  struct Event {
    SimTime time = 0;
    std::uint64_t seq = 0;
    Packet packet;
    Timer timer;
    NodeId timer_node = 0;
    bool is_timer = false;
  };

  struct EventAfter {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  void check_node(NodeId node) const {
    ALTX_REQUIRE(node < cfg_.node_count, "Network: node out of range");
  }

  [[nodiscard]] std::pair<NodeId, NodeId> link(NodeId a, NodeId b) const {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  }

  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const {
    return cuts_.contains(link(a, b));
  }

  Config cfg_;
  Rng rng_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::priority_queue<Event, std::vector<Event>, EventAfter> events_;
  std::vector<std::map<Channel, Handler>> handlers_;
  std::vector<bool> crashed_;
  std::set<std::pair<NodeId, NodeId>> cuts_;
  std::uint64_t stats_sent_ = 0;
  std::uint64_t stats_lost_ = 0;
};

}  // namespace altx::net
