// OR-parallelism in Prolog (paper section 5.2).
//
// At a choice point with several candidate clauses, the alternatives are
// mutually exclusive in exactly the paper's sense: we need one solution, so
// each clause becomes an alternative of an alt block. "What our method does
// is copy, and since we choose only one alternative, no merging is
// necessary" — process-level COW gives each branch its own binding
// environment for free.
//
// Two executors are provided:
//
//   solve_or_parallel  — real processes: the top-level choice point's clauses
//                        are raced via the posix backend; the first branch to
//                        find a solution commits it, the siblings die.
//
//   simulate_or_parallel — the performance experiment: each branch's
//                        sequential inference count is measured, converted to
//                        compute time at a configurable LIPS rate, and the
//                        whole choice point is replayed on the kernel
//                        simulator as a concurrent alternative block (with
//                        spawn/copy/commit overheads) against the sequential
//                        backtracking baseline.
#pragma once

#include <chrono>
#include <optional>
#include <string>
#include <vector>

#include "core/executor.hpp"
#include "prolog/solver.hpp"
#include "sim/kernel.hpp"

namespace altx::prolog {

struct OrParallelResult {
  bool found = false;
  Solution solution;
  int winner_branch = -1;  // clause index of the successful branch
  double elapsed_ms = 0;
};

/// Races the clauses of the query's first goal across real processes.
/// `timeout` bounds the whole block (the alt_wait TIMEOUT).
OrParallelResult solve_or_parallel(
    const Database& db, const Query& query,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(30'000));

/// Per-branch sequential measurement used by the simulation.
struct BranchProfile {
  std::size_t clause_index = 0;
  std::uint64_t steps = 0;  // inferences until first solution or exhaustion
  bool found = false;
};

/// Runs each branch of the query's top choice point to its first solution
/// (or exhaustion) with the sequential engine, counting inferences.
std::vector<BranchProfile> profile_branches(const Database& db, const Query& query,
                                            std::uint64_t max_steps = 50'000'000);

/// All-solutions OR-parallelism: every branch of the top choice point is
/// explored to exhaustion in its own process (a distributed findall); the
/// union of the branches' solutions, in clause order, equals the sequential
/// engine's solution sequence.
struct OrAllResult {
  bool complete = false;            // every branch finished within the timeout
  std::vector<Solution> solutions;  // clause order, then within-branch order
  double elapsed_ms = 0;
};

OrAllResult solve_or_parallel_all(
    const Database& db, const Query& query, std::size_t per_branch_limit = 1000,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(30'000));

/// AND-parallelism (section 5.2: "if we have a situation where goals A and
/// B must be satisfied, we can pursue the satisfaction of A and B in
/// parallel"). Restricted to *independent* conjunctions: goals are grouped
/// by shared variables; groups share nothing, so their solutions merge
/// without the pointer-chasing machinery the paper wants to avoid.
struct AndParallelResult {
  bool found = false;
  Solution solution;               // union of the groups' bindings
  std::size_t groups = 0;          // independence groups solved in parallel
  double elapsed_ms = 0;
};

/// Partitions the query's goals into groups connected by shared variables.
std::vector<std::vector<std::size_t>> independent_groups(const Query& query);

/// Solves each independence group in its own forked process (all must
/// succeed); a single-group query degenerates to the sequential engine.
AndParallelResult solve_and_parallel(
    const Database& db, const Query& query,
    std::chrono::milliseconds timeout = std::chrono::milliseconds(30'000));

struct OrSimResult {
  SimTime sequential_time = 0;  // backtracking baseline on the simulator
  SimTime parallel_time = 0;    // concurrent alt-block execution
  double speedup = 0;
  std::vector<BranchProfile> branches;
  bool found = false;
};

/// The E7 experiment kernel: converts inference counts to compute time at
/// `usec_per_inference` and compares sequential backtracking (branches tried
/// in clause order, failed branches paid in full) against the concurrent
/// alternative block on the given machine.
OrSimResult simulate_or_parallel(const Database& db, const Query& query,
                                 double usec_per_inference,
                                 sim::Kernel::Config cfg);

}  // namespace altx::prolog
