// Reader for the mini-Prolog engine.
//
// Supported syntax: facts and rules (head :- g1, g2, ... .), atoms,
// variables, integers, compound terms, [a,b|T] lists, % comments, and the
// classical operator set —
//   700 xfx:  =  is  <  >  =<  >=  =:=  =\=
//   500 yfx:  +  -
//   400 yfx:  *  //  mod
// plus the cut (!). Enough Prolog for the paper's OR-parallel experiments
// (search programs, n-queens, graph reachability) without a full ISO reader.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "prolog/term.hpp"

namespace altx::prolog {

/// Thrown on malformed input, with position info in the message.
class ParseError : public UsageError {
 public:
  using UsageError::UsageError;
};

struct Clause {
  TermPtr head;
  std::vector<TermPtr> body;
  std::uint32_t nvars = 0;  // variable slots used by head+body
};

struct Query {
  std::vector<TermPtr> goals;
  std::uint32_t nvars = 0;
  std::map<std::string, std::uint32_t> var_names;  // named query variables
};

/// Parses a whole program (clauses separated by '.').
std::vector<Clause> parse_program(SymbolTable& symbols, const std::string& text);

/// Parses a query: a conjunction of goals, optional trailing '.'.
Query parse_query(SymbolTable& symbols, const std::string& text);

}  // namespace altx::prolog
