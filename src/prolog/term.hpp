// Term representation for the mini-Prolog engine (paper section 5.2).
//
// Terms are immutable and shared; variables are integer slots resolved
// through a Bindings store with a trail, so backtracking (and OR-parallel
// world isolation) is cheap. Clause variables are renamed to fresh slots at
// each activation by structural copy — simple and safe at the scale of the
// experiments.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/error.hpp"

namespace altx::prolog {

using Symbol = std::uint32_t;

/// Interns functor/atom names.
class SymbolTable {
 public:
  Symbol intern(const std::string& name) {
    auto it = ids_.find(name);
    if (it != ids_.end()) return it->second;
    const Symbol id = static_cast<Symbol>(names_.size());
    names_.push_back(name);
    ids_.emplace(name, id);
    return id;
  }

  [[nodiscard]] const std::string& name(Symbol s) const {
    ALTX_REQUIRE(s < names_.size(), "SymbolTable: unknown symbol");
    return names_[s];
  }

  [[nodiscard]] std::size_t size() const { return names_.size(); }

 private:
  std::vector<std::string> names_;
  std::unordered_map<std::string, Symbol> ids_;
};

struct Term;
using TermPtr = std::shared_ptr<const Term>;

struct Term {
  enum class Kind { kVar, kAtom, kInt, kStruct };

  Kind kind = Kind::kAtom;
  std::uint32_t var = 0;        // kVar: variable slot
  Symbol functor = 0;           // kAtom / kStruct
  std::int64_t value = 0;       // kInt
  std::vector<TermPtr> args;    // kStruct

  [[nodiscard]] std::size_t arity() const { return args.size(); }
};

inline TermPtr mk_var(std::uint32_t slot) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kVar;
  t->var = slot;
  return t;
}

inline TermPtr mk_atom(Symbol s) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kAtom;
  t->functor = s;
  return t;
}

inline TermPtr mk_int(std::int64_t v) {
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kInt;
  t->value = v;
  return t;
}

inline TermPtr mk_struct(Symbol functor, std::vector<TermPtr> args) {
  ALTX_REQUIRE(!args.empty(), "mk_struct: use mk_atom for arity 0");
  auto t = std::make_shared<Term>();
  t->kind = Term::Kind::kStruct;
  t->functor = functor;
  t->args = std::move(args);
  return t;
}

/// Functor/arity pair used for clause indexing.
struct PredKey {
  Symbol functor = 0;
  std::uint32_t arity = 0;
  bool operator==(const PredKey&) const = default;
};

struct PredKeyHash {
  std::size_t operator()(const PredKey& k) const noexcept {
    return (static_cast<std::size_t>(k.functor) << 8) ^ k.arity;
  }
};

/// Renames every variable in `t` by adding `offset` to its slot.
inline TermPtr rename(const TermPtr& t, std::uint32_t offset) {
  if (offset == 0) return t;
  switch (t->kind) {
    case Term::Kind::kVar:
      return mk_var(t->var + offset);
    case Term::Kind::kAtom:
    case Term::Kind::kInt:
      return t;
    case Term::Kind::kStruct: {
      std::vector<TermPtr> args;
      args.reserve(t->args.size());
      for (const auto& a : t->args) args.push_back(rename(a, offset));
      return mk_struct(t->functor, std::move(args));
    }
  }
  ALTX_ASSERT(false, "rename: bad term kind");
}

/// Variable bindings with a trail for backtracking.
class Bindings {
 public:
  /// Ensures slots [0, n) exist.
  void reserve_slots(std::uint32_t n) {
    if (slots_.size() < n) slots_.resize(n);
  }

  [[nodiscard]] std::uint32_t size() const {
    return static_cast<std::uint32_t>(slots_.size());
  }

  /// Allocates `n` fresh slots, returning the base index.
  std::uint32_t fresh(std::uint32_t n) {
    const auto base = static_cast<std::uint32_t>(slots_.size());
    slots_.resize(slots_.size() + n);
    return base;
  }

  [[nodiscard]] bool bound(std::uint32_t var) const {
    return var < slots_.size() && slots_[var] != nullptr;
  }

  void bind(std::uint32_t var, TermPtr value) {
    ALTX_ASSERT(var < slots_.size(), "Bindings::bind: slot out of range");
    ALTX_ASSERT(slots_[var] == nullptr, "Bindings::bind: already bound");
    slots_[var] = std::move(value);
    trail_.push_back(var);
  }

  /// Follows variable chains to the representative term.
  [[nodiscard]] TermPtr deref(TermPtr t) const {
    while (t->kind == Term::Kind::kVar && bound(t->var)) {
      t = slots_[t->var];
    }
    return t;
  }

  /// Checkpoint for backtracking.
  [[nodiscard]] std::size_t mark() const { return trail_.size(); }

  /// Undoes all bindings made since `mark`.
  void undo(std::size_t mark) {
    while (trail_.size() > mark) {
      slots_[trail_.back()] = nullptr;
      trail_.pop_back();
    }
  }

 private:
  std::vector<TermPtr> slots_;
  std::vector<std::uint32_t> trail_;
};

/// Structural unification with trail-based undo on failure.
/// occurs_check guards against cyclic bindings (off by default, as in most
/// Prolog systems).
bool unify(Bindings& b, const TermPtr& lhs, const TermPtr& rhs,
           bool occurs_check = false);

/// Fully applies bindings to a term (for reporting solutions).
TermPtr resolve(const Bindings& b, const TermPtr& t);

/// Renders a term; list cells are printed in [a,b|T] notation.
std::string to_string(const SymbolTable& symbols, const TermPtr& t);

}  // namespace altx::prolog
