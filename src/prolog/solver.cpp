#include "prolog/solver.hpp"

#include <optional>

namespace altx::prolog {

std::size_t Solver::solve(const Query& query,
                          const std::function<bool(const Solution&)>& on_solution) {
  query_ = &query;
  on_solution_ = on_solution;
  found_ = 0;
  steps_ = 0;
  exhausted_ = false;
  first_call_done_ = opts_.first_call_clause < 0;
  cut_owner_ = nullptr;
  bindings_ = Bindings{};
  bindings_.reserve_slots(query.nvars);
  empty_handlers_.clear();
  empty_handlers_.push_back([this]() {
    ++found_;
    Solution sol;
    for (const auto& [name, slot] : query_->var_names) {
      sol[name] = to_string(db_.symbols, resolve(bindings_, mk_var(slot)));
    }
    return on_solution_(sol) ? Res::kFail : Res::kStop;  // kFail = ask for more
  });

  GoalList goals;
  for (auto it = query.goals.rbegin(); it != query.goals.rend(); ++it) {
    auto node = std::make_shared<GoalNode>();
    node->term = *it;
    node->barrier = nullptr;  // query-level cut cuts the whole query
    node->next = goals;
    goals = node;
  }
  (void)solve_goals(goals);
  return found_;
}

std::vector<Solution> Solver::solve_all(const Query& query, std::size_t limit) {
  std::vector<Solution> out;
  solve(query, [&](const Solution& s) {
    out.push_back(s);
    return out.size() < limit;
  });
  return out;
}

std::optional<Solution> Solver::solve_first(const Query& query) {
  std::optional<Solution> out;
  solve(query, [&](const Solution& s) {
    out = s;
    return false;
  });
  return out;
}

Solver::Res Solver::solve_goals(const GoalList& goals) {
  if (exhausted_) return Res::kStop;
  if (goals == nullptr) {
    // All goals satisfied: the innermost proof context decides what happens
    // (report a query solution, record a findall witness, note a \\+ proof).
    ALTX_ASSERT(!empty_handlers_.empty(), "solver: no proof handler");
    return empty_handlers_.back()();
  }

  const TermPtr goal = bindings_.deref(goals->term);
  const GoalList rest = goals->next;

  if (goal->kind == Term::Kind::kVar) return Res::kFail;  // uninstantiated call
  if (goal->kind == Term::Kind::kInt) return Res::kFail;

  const std::string& f = name_of(goal->functor);
  const std::size_t n = goal->args.size();

  // --- control builtins ---
  if (f == "true" && n == 0) return solve_goals(rest);
  if (f == "fail" && n == 0) return Res::kFail;
  if (f == "!" && n == 0) {
    const Res r = solve_goals(rest);
    if (r == Res::kFail) {
      // Prune every choice point back to the call owning this barrier.
      cut_owner_ = goals->barrier.get();
      return Res::kCut;
    }
    return r;
  }
  if (f == "," && n == 2) {
    auto second = std::make_shared<GoalNode>();
    second->term = goal->args[1];
    second->barrier = goals->barrier;
    second->next = rest;
    auto first = std::make_shared<GoalNode>();
    first->term = goal->args[0];
    first->barrier = goals->barrier;
    first->next = second;
    return solve_goals(first);
  }

  // --- metacall, negation as failure, findall ---
  if (f == "call" && n == 1) {
    // call/1 is transparent to bindings but opaque to cut.
    const TermPtr inner = bindings_.deref(goal->args[0]);
    if (inner->kind == Term::Kind::kVar || inner->kind == Term::Kind::kInt) {
      return Res::kFail;
    }
    auto barrier = std::make_shared<bool>(false);
    auto node = std::make_shared<GoalNode>();
    node->term = inner;
    node->barrier = barrier;
    node->next = rest;
    const Res r = solve_goals(node);
    if (r == Res::kCut && cut_owner_ == barrier.get()) return Res::kFail;
    return r;
  }
  if (f == "\\+" && n == 1) {
    // Negation as failure: succeeds iff the goal has no proof; binds nothing.
    bool proved = false;
    const std::size_t mark = bindings_.mark();
    const Res sub = sub_solve(goal->args[0], [&proved]() {
      proved = true;
      return Res::kStop;  // one proof is enough
    });
    bindings_.undo(mark);
    if (exhausted_) return Res::kStop;
    (void)sub;
    return proved ? Res::kFail : solve_goals(rest);
  }
  if (f == "findall" && n == 3) {
    // findall(Template, Goal, List): collect a copy of Template for every
    // proof of Goal, then unify List with the collected list.
    std::vector<TermPtr> witnesses;
    const TermPtr tmpl = goal->args[0];
    const std::size_t mark = bindings_.mark();
    (void)sub_solve(goal->args[1], [&]() {
      witnesses.push_back(resolve(bindings_, tmpl));
      return Res::kFail;  // keep enumerating proofs
    });
    bindings_.undo(mark);
    if (exhausted_) return Res::kStop;
    const Symbol nil = const_cast<Database&>(db_).symbols.intern("[]");
    const Symbol cons = const_cast<Database&>(db_).symbols.intern(".");
    TermPtr list = mk_atom(nil);
    for (auto it = witnesses.rbegin(); it != witnesses.rend(); ++it) {
      list = mk_struct(cons, {*it, list});
    }
    const std::size_t m2 = bindings_.mark();
    if (unify(bindings_, goal->args[2], list, opts_.occurs_check)) {
      const Res r = solve_goals(rest);
      if (r != Res::kFail) return r;
    }
    bindings_.undo(m2);
    return Res::kFail;
  }

  // --- type tests ---
  if (n == 1 && (f == "var" || f == "nonvar" || f == "atom" || f == "integer")) {
    const TermPtr d = bindings_.deref(goal->args[0]);
    bool ok = false;
    if (f == "var") ok = d->kind == Term::Kind::kVar;
    else if (f == "nonvar") ok = d->kind != Term::Kind::kVar;
    else if (f == "atom") ok = d->kind == Term::Kind::kAtom;
    else ok = d->kind == Term::Kind::kInt;
    return ok ? solve_goals(rest) : Res::kFail;
  }
  if (f == "between" && n == 3) {
    // between(Lo, Hi, X): enumerate or test.
    std::int64_t lo = 0;
    std::int64_t hi = 0;
    if (!eval_arith(goal->args[0], lo) || !eval_arith(goal->args[1], hi)) {
      return Res::kFail;
    }
    const TermPtr x = bindings_.deref(goal->args[2]);
    if (x->kind == Term::Kind::kInt) {
      return (x->value >= lo && x->value <= hi) ? solve_goals(rest) : Res::kFail;
    }
    if (x->kind != Term::Kind::kVar) return Res::kFail;
    for (std::int64_t v = lo; v <= hi; ++v) {
      if (++steps_ > opts_.max_steps) {
        exhausted_ = true;
        return Res::kStop;
      }
      const std::size_t mark = bindings_.mark();
      bindings_.bind(x->var, mk_int(v));
      const Res r = solve_goals(rest);
      if (r != Res::kFail) return r;
      bindings_.undo(mark);
    }
    return Res::kFail;
  }

  // --- unification and arithmetic builtins ---
  if (f == "=" && n == 2) {
    const std::size_t mark = bindings_.mark();
    if (unify(bindings_, goal->args[0], goal->args[1], opts_.occurs_check)) {
      const Res r = solve_goals(rest);
      if (r != Res::kFail) return r;
    }
    bindings_.undo(mark);
    return Res::kFail;
  }
  if (f == "is" && n == 2) {
    std::int64_t v = 0;
    if (!eval_arith(goal->args[1], v)) return Res::kFail;
    const std::size_t mark = bindings_.mark();
    if (unify(bindings_, goal->args[0], mk_int(v), opts_.occurs_check)) {
      const Res r = solve_goals(rest);
      if (r != Res::kFail) return r;
    }
    bindings_.undo(mark);
    return Res::kFail;
  }
  if (n == 2 && (f == "<" || f == ">" || f == "=<" || f == ">=" ||
                 f == "=:=" || f == "=\\=")) {
    std::int64_t a = 0;
    std::int64_t b = 0;
    if (!eval_arith(goal->args[0], a) || !eval_arith(goal->args[1], b)) {
      return Res::kFail;
    }
    bool ok = false;
    if (f == "<") ok = a < b;
    else if (f == ">") ok = a > b;
    else if (f == "=<") ok = a <= b;
    else if (f == ">=") ok = a >= b;
    else if (f == "=:=") ok = a == b;
    else ok = a != b;
    return ok ? solve_goals(rest) : Res::kFail;
  }

  return solve_user_call(goal, rest);
}

Solver::Res Solver::solve_user_call(const TermPtr& goal, const GoalList& rest) {
  const PredKey key{goal->functor, static_cast<std::uint32_t>(goal->args.size())};
  const std::vector<Clause>* clauses = db_.clauses(key);
  if (clauses == nullptr || clauses->empty()) return Res::kFail;

  // OR-parallel branch restriction: the first user call may be pinned to one
  // clause (each parallel world explores one alternative of the top choice
  // point).
  int only = -1;
  if (!first_call_done_) {
    first_call_done_ = true;
    only = opts_.first_call_clause;
    if (only >= static_cast<int>(clauses->size())) return Res::kFail;
  }

  auto barrier = std::make_shared<bool>(false);
  for (std::size_t ci = 0; ci < clauses->size(); ++ci) {
    if (only >= 0 && ci != static_cast<std::size_t>(only)) continue;
    if (*barrier) break;
    if (++steps_ > opts_.max_steps) {
      exhausted_ = true;
      return Res::kStop;
    }
    const Clause& clause = (*clauses)[ci];
    const std::size_t mark = bindings_.mark();
    const std::uint32_t offset = bindings_.fresh(clause.nvars);
    const TermPtr head = rename(clause.head, offset);
    if (unify(bindings_, goal, head, opts_.occurs_check)) {
      // Prepend the (renamed) body to the continuation; body goals cut to
      // this call's barrier.
      GoalList cont = rest;
      for (auto it = clause.body.rbegin(); it != clause.body.rend(); ++it) {
        auto node = std::make_shared<GoalNode>();
        node->term = rename(*it, offset);
        node->barrier = barrier;
        node->next = cont;
        cont = node;
      }
      const Res r = solve_goals(cont);
      if (r == Res::kStop) return Res::kStop;
      if (r == Res::kCut) {
        bindings_.undo(mark);
        if (cut_owner_ == barrier.get()) return Res::kFail;  // cut lands here
        return Res::kCut;  // cutting an outer call: keep unwinding
      }
    }
    bindings_.undo(mark);
  }
  return Res::kFail;
}

Solver::Res Solver::sub_solve(const TermPtr& goal,
                              const std::function<Res()>& on_proof) {
  auto barrier = std::make_shared<bool>(false);
  auto node = std::make_shared<GoalNode>();
  node->term = goal;
  node->barrier = barrier;
  node->next = nullptr;
  empty_handlers_.push_back(on_proof);
  Res r = solve_goals(node);
  empty_handlers_.pop_back();
  if (r == Res::kCut && cut_owner_ == barrier.get()) r = Res::kFail;
  return r;
}

bool Solver::eval_arith(const TermPtr& t, std::int64_t& out) {
  const TermPtr d = bindings_.deref(t);
  switch (d->kind) {
    case Term::Kind::kInt:
      out = d->value;
      return true;
    case Term::Kind::kVar:
    case Term::Kind::kAtom:
      return false;
    case Term::Kind::kStruct: {
      const std::string& f = name_of(d->functor);
      if (d->args.size() == 2) {
        std::int64_t a = 0;
        std::int64_t b = 0;
        if (!eval_arith(d->args[0], a) || !eval_arith(d->args[1], b)) return false;
        if (f == "+") { out = a + b; return true; }
        if (f == "-") { out = a - b; return true; }
        if (f == "*") { out = a * b; return true; }
        if (f == "//") {
          if (b == 0) return false;
          out = a / b;
          return true;
        }
        if (f == "mod") {
          if (b == 0) return false;
          out = ((a % b) + b) % b;
          return true;
        }
      }
      if (d->args.size() == 1) {
        std::int64_t a = 0;
        if (!eval_arith(d->args[0], a)) return false;
        if (f == "-") { out = -a; return true; }
        if (f == "abs") { out = a < 0 ? -a : a; return true; }
      }
      return false;
    }
  }
  return false;
}

}  // namespace altx::prolog
