#include "prolog/term.hpp"

namespace altx::prolog {

namespace {

bool occurs(const Bindings& b, std::uint32_t var, const TermPtr& t) {
  const TermPtr d = b.deref(t);
  switch (d->kind) {
    case Term::Kind::kVar:
      return d->var == var;
    case Term::Kind::kAtom:
    case Term::Kind::kInt:
      return false;
    case Term::Kind::kStruct:
      for (const auto& a : d->args) {
        if (occurs(b, var, a)) return true;
      }
      return false;
  }
  return false;
}

}  // namespace

bool unify(Bindings& b, const TermPtr& lhs, const TermPtr& rhs,
           bool occurs_check) {
  const TermPtr x = b.deref(lhs);
  const TermPtr y = b.deref(rhs);
  if (x->kind == Term::Kind::kVar && y->kind == Term::Kind::kVar &&
      x->var == y->var) {
    return true;
  }
  if (x->kind == Term::Kind::kVar) {
    if (occurs_check && occurs(b, x->var, y)) return false;
    b.bind(x->var, y);
    return true;
  }
  if (y->kind == Term::Kind::kVar) {
    if (occurs_check && occurs(b, y->var, x)) return false;
    b.bind(y->var, x);
    return true;
  }
  if (x->kind != y->kind) return false;
  switch (x->kind) {
    case Term::Kind::kAtom:
      return x->functor == y->functor;
    case Term::Kind::kInt:
      return x->value == y->value;
    case Term::Kind::kStruct: {
      if (x->functor != y->functor || x->args.size() != y->args.size()) {
        return false;
      }
      for (std::size_t i = 0; i < x->args.size(); ++i) {
        if (!unify(b, x->args[i], y->args[i], occurs_check)) return false;
      }
      return true;
    }
    case Term::Kind::kVar:
      break;  // handled above
  }
  return false;
}

TermPtr resolve(const Bindings& b, const TermPtr& t) {
  const TermPtr d = b.deref(t);
  if (d->kind != Term::Kind::kStruct) return d;
  std::vector<TermPtr> args;
  args.reserve(d->args.size());
  for (const auto& a : d->args) args.push_back(resolve(b, a));
  return mk_struct(d->functor, std::move(args));
}

namespace {

void render(const SymbolTable& sym, const TermPtr& t, std::string& out);

/// Renders the contents of a list cell '.'(H, T).
void render_list(const SymbolTable& sym, const TermPtr& cell, std::string& out) {
  render(sym, cell->args[0], out);
  const TermPtr tail = cell->args[1];
  if (tail->kind == Term::Kind::kAtom && sym.name(tail->functor) == "[]") {
    return;
  }
  if (tail->kind == Term::Kind::kStruct && tail->args.size() == 2 &&
      sym.name(tail->functor) == ".") {
    out += ",";
    render_list(sym, tail, out);
    return;
  }
  out += "|";
  render(sym, tail, out);
}

void render(const SymbolTable& sym, const TermPtr& t, std::string& out) {
  switch (t->kind) {
    case Term::Kind::kVar:
      out += "_G" + std::to_string(t->var);
      return;
    case Term::Kind::kAtom:
      out += sym.name(t->functor);
      return;
    case Term::Kind::kInt:
      out += std::to_string(t->value);
      return;
    case Term::Kind::kStruct: {
      if (t->args.size() == 2 && sym.name(t->functor) == ".") {
        out += "[";
        render_list(sym, t, out);
        out += "]";
        return;
      }
      out += sym.name(t->functor);
      out += "(";
      for (std::size_t i = 0; i < t->args.size(); ++i) {
        if (i > 0) out += ",";
        render(sym, t->args[i], out);
      }
      out += ")";
      return;
    }
  }
}

}  // namespace

std::string to_string(const SymbolTable& symbols, const TermPtr& t) {
  std::string out;
  render(symbols, t, out);
  return out;
}

}  // namespace altx::prolog
