#include "prolog/parser.hpp"

#include <cctype>
#include <optional>

namespace altx::prolog {

namespace {

enum class Tok {
  kAtom,    // lowercase word, quoted atom, or symbolic operator word
  kVar,     // Uppercase / _ word
  kInt,
  kPunct,   // ( ) [ ] , | . :- and operator symbols
  kEnd,
};

struct Token {
  Tok kind = Tok::kEnd;
  std::string text;
  std::int64_t value = 0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(const std::string& text) : text_(text) { advance(); }

  [[nodiscard]] const Token& peek() const { return current_; }

  Token take() {
    Token t = current_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw ParseError("parse error at offset " + std::to_string(current_.pos) +
                     ": " + what + " (got '" + current_.text + "')");
  }

 private:
  void advance() {
    skip_ws();
    current_.pos = i_;
    if (i_ >= text_.size()) {
      current_ = Token{Tok::kEnd, "<eof>", 0, i_};
      return;
    }
    const char c = text_[i_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      std::size_t j = i_;
      while (j < text_.size() && std::isdigit(static_cast<unsigned char>(text_[j]))) ++j;
      current_ = Token{Tok::kInt, text_.substr(i_, j - i_),
                       std::stoll(text_.substr(i_, j - i_)), i_};
      i_ = j;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      std::size_t j = i_;
      while (j < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[j])) || text_[j] == '_')) {
        ++j;
      }
      const std::string word = text_.substr(i_, j - i_);
      const bool is_var = std::isupper(static_cast<unsigned char>(c)) || c == '_';
      current_ = Token{is_var ? Tok::kVar : Tok::kAtom, word, 0, i_};
      i_ = j;
      return;
    }
    if (c == '\'') {
      std::size_t j = i_ + 1;
      std::string content;
      while (j < text_.size() && text_[j] != '\'') content += text_[j++];
      if (j >= text_.size()) {
        current_ = Token{Tok::kEnd, "<unterminated atom>", 0, i_};
        fail("unterminated quoted atom");
      }
      current_ = Token{Tok::kAtom, content, 0, i_};
      i_ = j + 1;
      return;
    }
    // Punctuation / symbolic operators, longest match first.
    static const char* kSymbols[] = {"=\\=", "=:=", ":-", "\\+", "=<", ">=",
                                     "//", "(", ")", "[", "]", ",", "|", ".",
                                     "!", "=", "<", ">", "+", "-", "*"};
    for (const char* s : kSymbols) {
      const std::size_t len = std::char_traits<char>::length(s);
      if (text_.compare(i_, len, s) == 0) {
        current_ = Token{Tok::kPunct, s, 0, i_};
        i_ += len;
        return;
      }
    }
    current_ = Token{Tok::kEnd, std::string(1, c), 0, i_};
    fail("unexpected character");
  }

  void skip_ws() {
    while (i_ < text_.size()) {
      const char c = text_[i_];
      if (c == '%') {
        while (i_ < text_.size() && text_[i_] != '\n') ++i_;
      } else if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
      } else {
        break;
      }
    }
  }

  const std::string& text_;
  std::size_t i_ = 0;
  Token current_;
};

struct OpInfo {
  int prec = 0;
};

std::optional<OpInfo> infix_op(const Token& t) {
  const std::string& s = t.text;
  if (t.kind == Tok::kPunct) {
    if (s == "=" || s == "<" || s == ">" || s == "=<" || s == ">=" ||
        s == "=:=" || s == "=\\=") {
      return OpInfo{700};
    }
    if (s == "+" || s == "-") return OpInfo{500};
    if (s == "*" || s == "//") return OpInfo{400};
  }
  if (t.kind == Tok::kAtom) {
    if (s == "is") return OpInfo{700};
    if (s == "mod") return OpInfo{400};
  }
  return std::nullopt;
}

class TermParser {
 public:
  TermParser(SymbolTable& sym, Lexer& lex) : sym_(sym), lex_(lex) {}

  /// Variable-name scope for the current clause/query.
  std::map<std::string, std::uint32_t> vars;
  std::uint32_t next_var = 0;

  TermPtr parse(int max_prec) {
    TermPtr t = parse_primary();
    while (true) {
      const auto op = infix_op(lex_.peek());
      if (!op.has_value() || op->prec > max_prec) break;
      const Token tok = lex_.take();
      // Left associativity: the right operand binds tighter than the
      // operator itself, so  a - b - c  reduces as  (a - b) - c.
      TermPtr rhs = parse(op->prec - 1);
      t = mk_struct(sym_.intern(tok.text), {t, rhs});
    }
    return t;
  }

 private:
  TermPtr parse_primary() {
    const Token t = lex_.peek();
    if (t.kind == Tok::kInt) {
      lex_.take();
      return mk_int(t.value);
    }
    if (t.kind == Tok::kPunct && t.text == "-") {
      // Unary minus for numbers: -3.
      lex_.take();
      const Token n = lex_.peek();
      if (n.kind == Tok::kInt) {
        lex_.take();
        return mk_int(-n.value);
      }
      return mk_struct(sym_.intern("-"), {mk_int(0), parse(400)});
    }
    if (t.kind == Tok::kVar) {
      lex_.take();
      if (t.text == "_") return mk_var(next_var++);  // each _ is fresh
      auto it = vars.find(t.text);
      if (it != vars.end()) return mk_var(it->second);
      const std::uint32_t slot = next_var++;
      vars.emplace(t.text, slot);
      return mk_var(slot);
    }
    if (t.kind == Tok::kAtom) {
      lex_.take();
      const Symbol f = sym_.intern(t.text);
      if (lex_.peek().kind == Tok::kPunct && lex_.peek().text == "(" &&
          lex_.peek().pos == t.pos + t.text.size()) {
        lex_.take();  // '('
        std::vector<TermPtr> args;
        args.push_back(parse(999));
        while (lex_.peek().kind == Tok::kPunct && lex_.peek().text == ",") {
          lex_.take();
          args.push_back(parse(999));
        }
        expect(")");
        return mk_struct(f, std::move(args));
      }
      return mk_atom(f);
    }
    if (t.kind == Tok::kPunct && t.text == "(") {
      lex_.take();
      TermPtr inner = parse(1200);
      expect(")");
      return inner;
    }
    if (t.kind == Tok::kPunct && t.text == "[") {
      lex_.take();
      return parse_list();
    }
    if (t.kind == Tok::kPunct && t.text == "!") {
      lex_.take();
      return mk_atom(sym_.intern("!"));
    }
    if (t.kind == Tok::kPunct && t.text == "\\+") {
      // Negation as failure: \+ Goal (prefix, priority 900).
      lex_.take();
      return mk_struct(sym_.intern("\\+"), {parse(900)});
    }
    lex_.fail("expected a term");
  }

  TermPtr parse_list() {
    const Symbol nil = sym_.intern("[]");
    const Symbol cons = sym_.intern(".");
    if (lex_.peek().kind == Tok::kPunct && lex_.peek().text == "]") {
      lex_.take();
      return mk_atom(nil);
    }
    std::vector<TermPtr> items;
    items.push_back(parse(999));
    while (lex_.peek().kind == Tok::kPunct && lex_.peek().text == ",") {
      lex_.take();
      items.push_back(parse(999));
    }
    TermPtr tail = mk_atom(nil);
    if (lex_.peek().kind == Tok::kPunct && lex_.peek().text == "|") {
      lex_.take();
      tail = parse(999);
    }
    expect("]");
    for (auto it = items.rbegin(); it != items.rend(); ++it) {
      tail = mk_struct(cons, {*it, tail});
    }
    return tail;
  }

  void expect(const std::string& punct) {
    if (lex_.peek().kind != Tok::kPunct || lex_.peek().text != punct) {
      lex_.fail("expected '" + punct + "'");
    }
    lex_.take();
  }

  SymbolTable& sym_;
  Lexer& lex_;
};

std::vector<TermPtr> split_conjunction(SymbolTable& sym, const TermPtr& t) {
  // ',' never appears as a functor from our parser (it is a separator), but
  // handle it for programmatically built goals.
  if (t->kind == Term::Kind::kStruct && t->args.size() == 2 &&
      sym.name(t->functor) == ",") {
    auto lhs = split_conjunction(sym, t->args[0]);
    auto rhs = split_conjunction(sym, t->args[1]);
    lhs.insert(lhs.end(), rhs.begin(), rhs.end());
    return lhs;
  }
  return {t};
}

}  // namespace

std::vector<Clause> parse_program(SymbolTable& symbols, const std::string& text) {
  Lexer lex(text);
  std::vector<Clause> out;
  while (lex.peek().kind != Tok::kEnd) {
    TermParser tp(symbols, lex);
    Clause c;
    c.head = tp.parse(999);
    ALTX_REQUIRE(c.head->kind == Term::Kind::kAtom ||
                     c.head->kind == Term::Kind::kStruct,
                 "parse_program: clause head must be an atom or structure");
    if (lex.peek().kind == Tok::kPunct && lex.peek().text == ":-") {
      lex.take();
      c.body.push_back(tp.parse(999));
      while (lex.peek().kind == Tok::kPunct && lex.peek().text == ",") {
        lex.take();
        c.body.push_back(tp.parse(999));
      }
    }
    if (lex.peek().kind != Tok::kPunct || lex.peek().text != ".") {
      lex.fail("expected '.' at end of clause");
    }
    lex.take();
    c.nvars = tp.next_var;
    out.push_back(std::move(c));
  }
  return out;
}

Query parse_query(SymbolTable& symbols, const std::string& text) {
  Lexer lex(text);
  TermParser tp(symbols, lex);
  Query q;
  q.goals.push_back(tp.parse(999));
  while (lex.peek().kind == Tok::kPunct && lex.peek().text == ",") {
    lex.take();
    q.goals.push_back(tp.parse(999));
  }
  if (lex.peek().kind == Tok::kPunct && lex.peek().text == ".") lex.take();
  if (lex.peek().kind != Tok::kEnd) lex.fail("trailing input after query");
  q.nvars = tp.next_var;
  q.var_names = tp.vars;
  // Expand any programmatic conjunctions.
  std::vector<TermPtr> goals;
  for (const auto& g : q.goals) {
    auto split = split_conjunction(symbols, g);
    goals.insert(goals.end(), split.begin(), split.end());
  }
  q.goals = std::move(goals);
  return q;
}

}  // namespace altx::prolog
