#include "prolog/or_parallel.hpp"

#include <chrono>

#include "posix/await_all.hpp"
#include "posix/race.hpp"

namespace altx::prolog {

namespace {

/// Number of clauses matching the query's first goal — the width of the top
/// choice point.
std::size_t top_choice_width(const Database& db, const Query& query) {
  ALTX_REQUIRE(!query.goals.empty(), "or_parallel: empty query");
  const TermPtr& g = query.goals.front();
  ALTX_REQUIRE(g->kind == Term::Kind::kAtom || g->kind == Term::Kind::kStruct,
               "or_parallel: first goal must be callable");
  const auto* clauses =
      db.clauses(PredKey{g->functor, static_cast<std::uint32_t>(g->args.size())});
  return clauses == nullptr ? 0 : clauses->size();
}

std::string encode_solution(const Solution& s) {
  std::string out;
  for (const auto& [k, v] : s) {
    out += k;
    out += '=';
    out += v;
    out += '\n';
  }
  return out;
}

Solution decode_solution(const std::string& text) {
  Solution s;
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t nl = text.find('\n', start);
    const std::string line = text.substr(start, nl - start);
    const std::size_t eq = line.find('=');
    if (eq != std::string::npos) s[line.substr(0, eq)] = line.substr(eq + 1);
    if (nl == std::string::npos) break;
    start = nl + 1;
  }
  return s;
}

}  // namespace

OrParallelResult solve_or_parallel(const Database& db, const Query& query,
                                   std::chrono::milliseconds timeout) {
  OrParallelResult result;
  const std::size_t width = top_choice_width(db, query);
  const auto t0 = std::chrono::steady_clock::now();
  if (width == 0) return result;

  // One alternative per clause of the top choice point. Each runs the
  // sequential engine restricted to its clause; finding a solution is the
  // guard, the encoded bindings are the result.
  std::vector<posix::AlternativeFn<std::string>> alts;
  for (std::size_t ci = 0; ci < width; ++ci) {
    alts.push_back([&db, &query, ci]() -> std::optional<std::string> {
      Solver::Options o;
      o.first_call_clause = static_cast<int>(ci);
      Solver solver(db, o);
      const auto sol = solver.solve_first(query);
      if (!sol.has_value()) return std::nullopt;
      // Prefix the clause index so the parent learns the branch.
      return std::to_string(ci) + ";" + encode_solution(*sol);
    });
  }

  posix::RaceOptions opts;
  opts.timeout = timeout;
  const auto r = posix::race<std::string>(alts, opts);
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (!r.has_value()) return result;
  const std::string& text = r->value;
  const std::size_t semi = text.find(';');
  ALTX_ASSERT(semi != std::string::npos, "or_parallel: malformed result");
  result.found = true;
  result.winner_branch = std::stoi(text.substr(0, semi));
  result.solution = decode_solution(text.substr(semi + 1));
  return result;
}

namespace {

void collect_vars(const TermPtr& t, std::vector<std::uint32_t>& out) {
  switch (t->kind) {
    case Term::Kind::kVar:
      out.push_back(t->var);
      return;
    case Term::Kind::kAtom:
    case Term::Kind::kInt:
      return;
    case Term::Kind::kStruct:
      for (const auto& a : t->args) collect_vars(a, out);
      return;
  }
}

struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

}  // namespace

std::vector<std::vector<std::size_t>> independent_groups(const Query& query) {
  const std::size_t n = query.goals.size();
  UnionFind uf(n);
  // Goals sharing any variable slot belong to the same group.
  std::map<std::uint32_t, std::size_t> first_user;  // var -> first goal using it
  for (std::size_t g = 0; g < n; ++g) {
    std::vector<std::uint32_t> vars;
    collect_vars(query.goals[g], vars);
    for (std::uint32_t v : vars) {
      auto [it, fresh] = first_user.emplace(v, g);
      if (!fresh) uf.unite(g, it->second);
    }
  }
  std::map<std::size_t, std::vector<std::size_t>> by_root;
  for (std::size_t g = 0; g < n; ++g) by_root[uf.find(g)].push_back(g);
  std::vector<std::vector<std::size_t>> out;
  out.reserve(by_root.size());
  for (auto& [root, goals] : by_root) out.push_back(std::move(goals));
  return out;
}

AndParallelResult solve_and_parallel(const Database& db, const Query& query,
                                     std::chrono::milliseconds timeout) {
  AndParallelResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const auto groups = independent_groups(query);
  result.groups = groups.size();
  ALTX_REQUIRE(!groups.empty(), "solve_and_parallel: empty query");

  // Build one sub-query per group: the group's goals plus the named
  // variables that appear in them.
  std::vector<Query> subqueries;
  for (const auto& group : groups) {
    Query sub;
    sub.nvars = query.nvars;  // slots are shared; groups touch disjoint ones
    std::vector<std::uint32_t> vars;
    for (std::size_t g : group) {
      sub.goals.push_back(query.goals[g]);
      collect_vars(query.goals[g], vars);
    }
    for (const auto& [name, slot] : query.var_names) {
      if (std::find(vars.begin(), vars.end(), slot) != vars.end()) {
        sub.var_names.emplace(name, slot);
      }
    }
    subqueries.push_back(std::move(sub));
  }

  // One forked solver per group; all must succeed.
  std::vector<posix::AlternativeFn<std::string>> tasks;
  for (const auto& sub : subqueries) {
    tasks.push_back([&db, &sub]() -> std::optional<std::string> {
      Solver solver(db);
      const auto sol = solver.solve_first(sub);
      if (!sol.has_value()) return std::nullopt;
      return encode_solution(*sol);
    });
  }
  posix::AwaitOptions opts;
  opts.timeout = timeout;
  const auto all = posix::await_all<std::string>(tasks, opts);
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (!all.has_value()) return result;
  result.found = true;
  for (const std::string& text : *all) {
    const Solution part = decode_solution(text);
    result.solution.insert(part.begin(), part.end());
  }
  return result;
}

OrAllResult solve_or_parallel_all(const Database& db, const Query& query,
                                  std::size_t per_branch_limit,
                                  std::chrono::milliseconds timeout) {
  OrAllResult result;
  const auto t0 = std::chrono::steady_clock::now();
  const std::size_t width = top_choice_width(db, query);
  if (width == 0) {
    result.complete = true;
    return result;
  }
  // Each branch enumerates ALL its solutions; unlike the fastest-first race,
  // every branch's output is needed, so this is an AND over branches of a
  // findall per branch.
  std::vector<posix::AlternativeFn<std::string>> tasks;
  for (std::size_t ci = 0; ci < width; ++ci) {
    tasks.push_back([&db, &query, ci, per_branch_limit]() -> std::optional<std::string> {
      Solver::Options o;
      o.first_call_clause = static_cast<int>(ci);
      Solver solver(db, o);
      std::string out;
      for (const Solution& s : solver.solve_all(query, per_branch_limit)) {
        out += encode_solution(s);
        out += ";";
      }
      return out;  // empty string = zero solutions, still a success
    });
  }
  posix::AwaitOptions opts;
  opts.timeout = timeout;
  const auto all = posix::await_all<std::string>(tasks, opts);
  result.elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
  if (!all.has_value()) return result;
  result.complete = true;
  for (const std::string& branch : *all) {
    std::size_t start = 0;
    while (start < branch.size()) {
      const std::size_t semi = branch.find(';', start);
      if (semi == std::string::npos) break;
      result.solutions.push_back(decode_solution(branch.substr(start, semi - start)));
      start = semi + 1;
    }
  }
  return result;
}

std::vector<BranchProfile> profile_branches(const Database& db, const Query& query,
                                            std::uint64_t max_steps) {
  const std::size_t width = top_choice_width(db, query);
  std::vector<BranchProfile> out;
  for (std::size_t ci = 0; ci < width; ++ci) {
    Solver::Options o;
    o.first_call_clause = static_cast<int>(ci);
    o.max_steps = max_steps;
    Solver solver(db, o);
    BranchProfile p;
    p.clause_index = ci;
    p.found = solver.solve_first(query).has_value();
    p.steps = solver.steps();
    out.push_back(p);
  }
  return out;
}

OrSimResult simulate_or_parallel(const Database& db, const Query& query,
                                 double usec_per_inference,
                                 sim::Kernel::Config cfg) {
  ALTX_REQUIRE(usec_per_inference > 0, "simulate_or_parallel: bad LIPS rate");
  OrSimResult r;
  r.branches = profile_branches(db, query);
  if (r.branches.empty()) return r;

  // Sequential backtracking: clause order; a failing branch is explored
  // exhaustively before the next clause is tried.
  std::uint64_t seq_steps = 0;
  for (const auto& b : r.branches) {
    seq_steps += b.steps;
    if (b.found) {
      r.found = true;
      break;
    }
  }
  r.sequential_time =
      static_cast<SimTime>(static_cast<double>(seq_steps) * usec_per_inference);

  // Concurrent: one alternative per branch. Unification is read-mostly
  // (section 7: "an overwhelming preponderance of read references"), with
  // writes concentrated on the (stack) pages — a handful of written pages.
  core::BlockSpec block;
  for (const auto& b : r.branches) {
    core::AltSpec a;
    a.compute = std::max<SimTime>(
        1, static_cast<SimTime>(static_cast<double>(b.steps) * usec_per_inference));
    a.pages_read = 12;
    a.pages_written = 3;
    a.guard_ok = b.found;
    block.alts.push_back(a);
  }
  const auto conc = core::run_concurrent(block, cfg);
  r.parallel_time = conc.elapsed;
  if (r.parallel_time > 0) {
    r.speedup = static_cast<double>(r.sequential_time) /
                static_cast<double>(r.parallel_time);
  }
  return r;
}

}  // namespace altx::prolog
