// SLD resolution with backtracking for the mini-Prolog engine.
//
// Depth-first, left-to-right search over a clause database, with
// trail-based backtracking, the cut, and the arithmetic builtins the
// experiments need. The solver counts logical inferences (clause-head
// unification attempts), which is the cost currency the OR-parallel
// simulation converts into simulated compute time.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "prolog/parser.hpp"
#include "prolog/term.hpp"

namespace altx::prolog {

/// Clause storage indexed by functor/arity.
class Database {
 public:
  SymbolTable symbols;

  /// Parses and adds a program text.
  void consult(const std::string& program_text) {
    for (auto& c : parse_program(symbols, program_text)) {
      add_clause(std::move(c));
    }
  }

  void add_clause(Clause c) {
    const PredKey key = key_of(c.head);
    index_[key].push_back(std::move(c));
    ++count_;
  }

  [[nodiscard]] const std::vector<Clause>* clauses(const PredKey& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t clause_count() const { return count_; }

  [[nodiscard]] PredKey key_of(const TermPtr& head) const {
    ALTX_REQUIRE(head->kind == Term::Kind::kAtom ||
                     head->kind == Term::Kind::kStruct,
                 "Database: head must be atom or structure");
    return PredKey{head->functor, static_cast<std::uint32_t>(head->args.size())};
  }

 private:
  std::unordered_map<PredKey, std::vector<Clause>, PredKeyHash> index_;
  std::size_t count_ = 0;
};

/// One solution: the query's named variables fully resolved.
using Solution = std::map<std::string, std::string>;

class Solver {
 public:
  struct Options {
    std::uint64_t max_steps = 50'000'000;  // inference budget
    bool occurs_check = false;
    /// OR-parallel branch restriction: when >= 0, the FIRST user-predicate
    /// goal resolved may only use the clause with this index. -1 = all.
    int first_call_clause = -1;
  };

  explicit Solver(const Database& db) : db_(db) {}
  Solver(const Database& db, const Options& options)
      : db_(db), opts_(options) {}

  /// Solves the query, invoking on_solution for each solution found (in
  /// standard depth-first order); the callback returns true to continue
  /// searching. Returns the number of solutions delivered.
  std::size_t solve(const Query& query,
                    const std::function<bool(const Solution&)>& on_solution);

  /// Convenience: collect up to `limit` solutions.
  std::vector<Solution> solve_all(const Query& query, std::size_t limit = SIZE_MAX);

  /// Convenience: first solution or nothing.
  [[nodiscard]] std::optional<Solution> solve_first(const Query& query);

  /// Logical inferences performed by the last solve().
  [[nodiscard]] std::uint64_t steps() const { return steps_; }

  /// True if the last solve() hit the step budget.
  [[nodiscard]] bool budget_exhausted() const { return exhausted_; }

 private:
  enum class Res { kStop, kFail, kCut };

  struct GoalNode {
    TermPtr term;
    std::shared_ptr<bool> barrier;  // cut barrier of the owning call
    std::shared_ptr<GoalNode> next;
  };
  using GoalList = std::shared_ptr<GoalNode>;

  Res solve_goals(const GoalList& goals);
  Res solve_user_call(const TermPtr& goal, const GoalList& rest);
  bool eval_arith(const TermPtr& t, std::int64_t& out);
  /// Runs a sub-proof of `goal` (fresh cut barrier, empty continuation),
  /// invoking `on_proof` at each proof found; on_proof returns kFail to ask
  /// for more proofs or kStop to end the sub-search.
  Res sub_solve(const TermPtr& goal, const std::function<Res()>& on_proof);

  const Database& db_;
  Options opts_;
  Bindings bindings_;
  const Query* query_ = nullptr;
  std::function<bool(const Solution&)> on_solution_;
  std::vector<std::function<Res()>> empty_handlers_;
  std::size_t found_ = 0;
  std::uint64_t steps_ = 0;
  bool exhausted_ = false;
  bool first_call_done_ = false;
  const bool* cut_owner_ = nullptr;  // identity of the barrier being cut to

  // Interned builtin symbols (resolved lazily against db_.symbols' names).
  [[nodiscard]] const std::string& name_of(Symbol s) const {
    return db_.symbols.name(s);
  }
};

}  // namespace altx::prolog
