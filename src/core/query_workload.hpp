// Database-query workloads (the paper's motivating application: "for
// problems where the required execution time is unpredictable, such as
// database queries, this method can show substantial execution time
// performance increases").
//
// A query against a table can be answered by several plans whose costs
// depend on data characteristics (selectivity, index availability,
// predicate shape) that an optimizer estimates imperfectly. Racing the
// plans — Scheme C — needs no estimates at all.
#pragma once

#include <string>

#include "common/rng.hpp"
#include "core/workload.hpp"

namespace altx::core {

enum class PredKind {
  kEquality,  // point lookup: hash and index both shine
  kRange,     // index usable, hash is not
  kComplex,   // arbitrary predicate: only the scan applies
};

/// One query's ground truth, unknown to the planner a priori.
struct QuerySpec {
  std::uint64_t rows = 100'000;
  double selectivity = 0.01;  // fraction of rows matching
  PredKind predicate = PredKind::kEquality;
  bool index_available = true;

  [[nodiscard]] std::uint64_t matches() const {
    return static_cast<std::uint64_t>(static_cast<double>(rows) * selectivity);
  }
};

enum class Plan { kIndex = 0, kScan = 1, kHash = 2 };
constexpr std::size_t kPlanCount = 3;

[[nodiscard]] inline std::string plan_name(Plan p) {
  switch (p) {
    case Plan::kIndex: return "index";
    case Plan::kScan: return "scan";
    case Plan::kHash: return "hash";
  }
  return "?";
}

struct PlanCost {
  SimTime cost = 0;    // execution time at `unit` per row-visit
  bool viable = true;  // the plan's guard: can it answer this query at all?
};

/// Cost model (row-visits * unit):
///   index: log2(rows) descent + one visit per match; needs an index and a
///          selective predicate (equality or range);
///   scan:  every row;
///   hash:  constant probe + matches; equality only.
[[nodiscard]] inline PlanCost plan_cost(Plan plan, const QuerySpec& q,
                                        SimTime unit) {
  PlanCost out;
  auto visits_to_time = [unit](double visits) {
    return std::max<SimTime>(1, static_cast<SimTime>(visits * static_cast<double>(unit)));
  };
  switch (plan) {
    case Plan::kIndex: {
      out.viable = q.index_available && q.predicate != PredKind::kComplex;
      double visits = 1;
      for (std::uint64_t r = q.rows; r > 1; r /= 2) ++visits;  // log2
      visits += static_cast<double>(q.matches());
      out.cost = visits_to_time(visits);
      return out;
    }
    case Plan::kScan:
      out.viable = true;
      out.cost = visits_to_time(static_cast<double>(q.rows));
      return out;
    case Plan::kHash:
      out.viable = q.predicate == PredKind::kEquality;
      out.cost = visits_to_time(4.0 + static_cast<double>(q.matches()));
      return out;
  }
  return out;
}

struct QueryMixParams {
  std::uint64_t min_rows = 20'000;
  std::uint64_t max_rows = 200'000;
  double equality_prob = 0.4;
  double range_prob = 0.4;   // remainder is complex
  double index_prob = 0.7;   // index exists on the predicate column
  double low_selectivity = 0.0001;
  double high_selectivity = 0.3;
};

/// Draws one query from the mix (log-uniform selectivity).
[[nodiscard]] inline QuerySpec draw_query(const QueryMixParams& p, Rng& rng) {
  QuerySpec q;
  q.rows = static_cast<std::uint64_t>(
      rng.range(static_cast<std::int64_t>(p.min_rows),
                static_cast<std::int64_t>(p.max_rows)));
  const double r = rng.uniform();
  q.predicate = r < p.equality_prob ? PredKind::kEquality
                : r < p.equality_prob + p.range_prob ? PredKind::kRange
                                                     : PredKind::kComplex;
  q.index_available = rng.chance(p.index_prob);
  const double lo = std::log(p.low_selectivity);
  const double hi = std::log(p.high_selectivity);
  q.selectivity = std::exp(lo + (hi - lo) * rng.uniform());
  return q;
}

/// The query as an alternative block: one alternative per plan; a plan that
/// cannot answer the query fails its guard. Plans read most of their pages
/// and write a handful (the result buffer).
[[nodiscard]] inline BlockSpec query_block(const QuerySpec& q, SimTime unit) {
  BlockSpec b;
  for (std::size_t i = 0; i < kPlanCount; ++i) {
    const PlanCost pc = plan_cost(static_cast<Plan>(i), q, unit);
    AltSpec a;
    a.compute = pc.cost;
    a.guard_ok = pc.viable;
    a.pages_read = 16;
    a.pages_written = 2;
    b.alts.push_back(a);
  }
  return b;
}

/// The best viable plan's cost — the perfect-optimizer oracle.
[[nodiscard]] inline SimTime oracle_cost(const QuerySpec& q, SimTime unit) {
  SimTime best = 0;
  bool any = false;
  for (std::size_t i = 0; i < kPlanCount; ++i) {
    const PlanCost pc = plan_cost(static_cast<Plan>(i), q, unit);
    if (!pc.viable) continue;
    if (!any || pc.cost < best) best = pc.cost;
    any = true;
  }
  ALTX_ASSERT(any, "oracle_cost: no viable plan (scan is always viable)");
  return best;
}

}  // namespace altx::core
