// The analytic performance model of sections 4.2-4.3.
//
// A computation C applied to input x costs tau(C, x). Executing N alternative
// computations concurrently and selecting the fastest costs
//
//     tau(C_best, x) + tau(overhead)
//
// and must be compared against the nondeterministic sequential execution,
// whose expected cost is the arithmetic mean of the alternatives' times
// (Scheme B). The performance improvement is
//
//     PI = tau(C_mean, x) / (tau(C_best, x) + tau(overhead))
//
// with overhead decomposed into setup (creating execution environments),
// runtime (COW copying plus CPU sharing with losing siblings), and selection
// (sibling elimination and commit).
#pragma once

#include <algorithm>
#include <cstddef>
#include <numeric>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/sim_time.hpp"
#include "sim/machine.hpp"

namespace altx::core {

/// tau(C_mean): the expected cost of picking one alternative at random.
[[nodiscard]] inline double mean_time(std::span<const SimTime> taus) {
  ALTX_REQUIRE(!taus.empty(), "mean_time: no alternatives");
  double s = 0;
  for (SimTime t : taus) s += static_cast<double>(t);
  return s / static_cast<double>(taus.size());
}

/// tau(C_best).
[[nodiscard]] inline SimTime best_time(std::span<const SimTime> taus) {
  ALTX_REQUIRE(!taus.empty(), "best_time: no alternatives");
  return *std::min_element(taus.begin(), taus.end());
}

/// The paper's dispersion measure for "enough difference between the
/// execution times": the population variance of tau.
[[nodiscard]] inline double dispersion(std::span<const SimTime> taus) {
  const double m = mean_time(taus);
  double s = 0;
  for (SimTime t : taus) {
    const double d = static_cast<double>(t) - m;
    s += d * d;
  }
  return s / static_cast<double>(taus.size());
}

/// PI as defined in section 4.2. overhead in the same unit as the taus.
[[nodiscard]] inline double performance_improvement(std::span<const SimTime> taus,
                                                    double overhead) {
  const double denom = static_cast<double>(best_time(taus)) + overhead;
  ALTX_REQUIRE(denom > 0, "performance_improvement: non-positive denominator");
  return mean_time(taus) / denom;
}

/// The three overhead components of section 4.3.
struct OverheadModel {
  SimTime setup = 0;      // process table entries, page map tables
  SimTime runtime = 0;    // COW copying + cycles stolen by siblings
  SimTime selection = 0;  // killing the losers, committing the winner

  [[nodiscard]] SimTime total() const { return setup + runtime + selection; }
};

/// Workload description the overhead estimator needs.
struct OverheadInputs {
  std::size_t n_alternatives = 2;
  std::size_t address_space_pages = 80;   // pages mapped at spawn
  std::size_t pages_written_by_winner = 4;
  std::size_t pages_written_per_loser = 4;
  SimTime winner_tau = 0;                 // tau(C_best)
  double sibling_cpu_share = 0.0;         // fraction of the winner's runtime
                                          // during which it shared a CPU
  bool synchronous_elimination = false;
};

/// First-order overhead estimate from the machine model; used to sanity-check
/// simulator output and to draw the crossover curves of E5.
[[nodiscard]] inline OverheadModel estimate_overhead(const sim::MachineModel& m,
                                                     const OverheadInputs& in) {
  ALTX_REQUIRE(in.n_alternatives >= 1, "estimate_overhead: need alternatives");
  OverheadModel o;
  // Setup: the parent forks each alternative in turn before blocking.
  for (std::size_t i = 0; i < in.n_alternatives; ++i) {
    o.setup += m.fork_cost(in.address_space_pages);
  }
  // Runtime: the winner's COW faults, plus cycles lost to siblings when there
  // are fewer CPUs than alternatives.
  o.runtime += m.page_copy * static_cast<SimTime>(in.pages_written_by_winner);
  o.runtime += static_cast<SimTime>(in.sibling_cpu_share *
                                    static_cast<double>(in.winner_tau));
  // Selection: commit plus (for synchronous elimination) the kills issued
  // before the parent resumes. Asynchronous elimination moves the kill cost
  // off the critical path, which is why the paper expects it to be faster.
  o.selection += m.commit_cost;
  if (in.synchronous_elimination) {
    o.selection += m.kill_cost * static_cast<SimTime>(in.n_alternatives - 1);
  }
  return o;
}

/// Expected CPU-share overlap when n processes compete for c CPUs: the
/// fraction of the winner's life spent sharing (0 when c >= n).
[[nodiscard]] inline double expected_cpu_share(std::size_t n_alternatives,
                                               int cpus) {
  ALTX_REQUIRE(cpus >= 1, "expected_cpu_share: need a cpu");
  if (static_cast<std::size_t>(cpus) >= n_alternatives) return 0.0;
  // With round-robin, each of n runnable processes gets c/n of a CPU; the
  // winner's elapsed time stretches by n/c, i.e. the overhead fraction
  // relative to its solo runtime is n/c - 1.
  return static_cast<double>(n_alternatives) / static_cast<double>(cpus) - 1.0;
}

/// The wasted work of section 4.1 item 3: cycles burnt by alternatives that
/// are discarded, assuming every loser runs until the winner commits.
[[nodiscard]] inline double wasted_work_estimate(std::span<const SimTime> taus) {
  const SimTime best = best_time(taus);
  double wasted = 0;
  for (SimTime t : taus) {
    if (t != best) wasted += static_cast<double>(std::min(t, best));
  }
  return wasted;
}

}  // namespace altx::core
