#include "core/executor.hpp"

#include <algorithm>

namespace altx::core {

namespace {

/// Appends the alternative's compute/reference pattern to a builder: the
/// computation is split into chunks, with the read and write sets spread
/// across them so COW faults interleave with computation (locality of
/// reference, section 4.4).
void emit_body(sim::ProgramBuilder& b, const AltSpec& spec) {
  const int chunks = std::max(1, spec.chunks);
  const SimTime slice = std::max<SimTime>(1, spec.compute / chunks);
  for (int c = 0; c < chunks; ++c) {
    b.compute(slice);
    for (std::size_t r = 0; r < spec.pages_read; ++r) {
      if (r % static_cast<std::size_t>(chunks) == static_cast<std::size_t>(c)) {
        b.read(static_cast<sim::VPage>(1 + r));
      }
    }
    for (std::size_t w = 0; w < spec.pages_written; ++w) {
      if (w % static_cast<std::size_t>(chunks) == static_cast<std::size_t>(c)) {
        b.write(static_cast<sim::VPage>(1 + spec.pages_read + w), 0,
                static_cast<std::uint64_t>(w + 1));
      }
    }
  }
}

}  // namespace

sim::ProgramRef build_alternative(const AltSpec& spec, std::uint64_t tag) {
  sim::ProgramBuilder b("alt-" + std::to_string(tag));
  emit_body(b, spec);
  b.write(kResultPage, 0, tag);
  // The acceptance condition is evaluated in the child, after the body
  // (recovery-block style self-check).
  const bool ok = spec.guard_ok;
  b.guard([ok](const sim::AddressSpace&) { return ok; });
  return b.build();
}

sim::Kernel::Config fit_config(const BlockSpec& block, sim::Kernel::Config cfg) {
  std::size_t needed = 1;
  for (const auto& a : block.alts) {
    needed = std::max(needed, 1 + a.pages_read + a.pages_written);
  }
  cfg.address_space_pages = std::max(cfg.address_space_pages, needed);
  return cfg;
}

ConcurrentResult run_concurrent(const BlockSpec& block, sim::Kernel::Config cfg) {
  cfg = fit_config(block, cfg);
  sim::Kernel kernel(cfg);

  std::vector<sim::ProgramRef> alts;
  alts.reserve(block.alts.size());
  for (std::size_t i = 0; i < block.alts.size(); ++i) {
    alts.push_back(build_alternative(block.alts[i], i + 1));
  }
  auto on_fail =
      sim::ProgramBuilder("fail-arm").write(kResultPage, 0, kFailTag).build();
  auto parent = sim::ProgramBuilder("block")
                    .alt(std::move(alts), block.timeout, on_fail)
                    .build();

  const Pid pid = kernel.spawn_root(parent);
  ConcurrentResult r;
  r.elapsed = kernel.run();
  r.stats = kernel.stats();
  const std::uint64_t tag = kernel.process(pid)->as_.peek(kResultPage, 0);
  r.failed = tag == kFailTag || tag == 0;
  r.winner = r.failed ? 0 : tag;
  return r;
}

ConcurrentResult run_concurrent_loaded(const BlockSpec& block,
                                       sim::Kernel::Config cfg,
                                       int background_procs,
                                       SimTime background_compute) {
  ALTX_REQUIRE(background_procs >= 0, "run_concurrent_loaded: bad count");
  cfg = fit_config(block, cfg);
  sim::Kernel kernel(cfg);

  for (int i = 0; i < background_procs; ++i) {
    kernel.spawn_root(
        sim::ProgramBuilder("background").compute(background_compute).build());
  }

  std::vector<sim::ProgramRef> alts;
  alts.reserve(block.alts.size());
  for (std::size_t i = 0; i < block.alts.size(); ++i) {
    alts.push_back(build_alternative(block.alts[i], i + 1));
  }
  auto on_fail =
      sim::ProgramBuilder("fail-arm").write(kResultPage, 0, kFailTag).build();
  auto parent = sim::ProgramBuilder("block")
                    .alt(std::move(alts), block.timeout, on_fail)
                    .build();
  const Pid pid = kernel.spawn_root(parent);
  kernel.run();

  ConcurrentResult r;
  r.elapsed = kernel.process(pid)->finished_at_;  // the block, not the load
  r.stats = kernel.stats();
  const std::uint64_t tag = kernel.process(pid)->as_.peek(kResultPage, 0);
  r.failed = tag == kFailTag || tag == 0;
  r.winner = r.failed ? 0 : tag;
  return r;
}

SequentialResult run_single(const AltSpec& spec, sim::Kernel::Config cfg) {
  BlockSpec one;
  one.alts.push_back(spec);
  cfg = fit_config(one, cfg);
  sim::Kernel kernel(cfg);
  // Run the body inline — no alt_spawn, no copies, no synchronization.
  const Pid pid = kernel.spawn_root(build_alternative(spec, 1));
  SequentialResult r;
  r.elapsed = kernel.run();
  r.failed = kernel.exit_kind(pid) != sim::ExitKind::kCompleted;
  return r;
}

SequentialResult run_random_pick(const BlockSpec& block, sim::Kernel::Config cfg,
                                 Rng& rng) {
  ALTX_REQUIRE(!block.alts.empty(), "run_random_pick: empty block");
  const std::size_t pick = rng.below(block.alts.size());
  SequentialResult r = run_single(block.alts[pick], cfg);
  r.chosen = pick;
  return r;
}

SequentialResult run_ordered(const BlockSpec& block, sim::Kernel::Config cfg) {
  ALTX_REQUIRE(!block.alts.empty(), "run_ordered: empty block");
  SequentialResult total;
  for (std::size_t i = 0; i < block.alts.size(); ++i) {
    SequentialResult r = run_single(block.alts[i], cfg);
    total.elapsed += r.elapsed;
    if (!r.failed) {
      total.chosen = i;
      total.failed = false;
      return total;
    }
    // Failed acceptance test: roll back the state image — restore every page
    // the alternative wrote before trying the next one.
    total.elapsed += cfg.machine.page_copy *
                     static_cast<SimTime>(block.alts[i].pages_written);
  }
  total.failed = true;
  return total;
}

}  // namespace altx::core
