// Workload generation for alternative blocks.
//
// The paper motivates fastest-first execution with computations whose
// runtimes are unpredictable (database queries, heuristic search). These
// generators produce alternative blocks with controlled runtime
// distributions, working sets and failure probabilities, so every experiment
// can dial exactly the dispersion/overhead regime it studies.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace altx::core {

/// One alternative method: how long it computes, what it touches, whether its
/// guard (acceptance condition) ultimately holds.
struct AltSpec {
  SimTime compute = 0;
  std::size_t pages_read = 0;     // distinct pages read (shared, no copy)
  std::size_t pages_written = 0;  // distinct pages written (COW copies)
  bool guard_ok = true;
  int chunks = 4;  // memory references are spread across this many phases
};

/// A whole alternative block.
struct BlockSpec {
  std::vector<AltSpec> alts;
  SimTime timeout = 0;  // alt_wait timeout; 0 = wait forever

  [[nodiscard]] std::vector<SimTime> taus() const {
    std::vector<SimTime> t;
    t.reserve(alts.size());
    for (const auto& a : alts) t.push_back(a.compute);
    return t;
  }
};

/// Runtime distributions used across the experiments.
enum class TimeDist {
  kUniform,      // [lo, hi]
  kExponential,  // mean = lo (hi unused)
  kNormal,       // mean = lo, stddev = hi (clamped at 1us)
  kPareto,       // scale = lo, shape = hi/1000 (heavy tail)
  kBimodal,      // lo with p=.5, hi with p=.5 — maximal dispersion
};

struct WorkloadParams {
  std::size_t n_alternatives = 3;
  TimeDist dist = TimeDist::kUniform;
  SimTime lo = 10 * kMsec;
  SimTime hi = 100 * kMsec;
  std::size_t pages_read = 8;
  std::size_t pages_written = 4;
  double guard_fail_prob = 0.0;
  SimTime timeout = 0;
};

[[nodiscard]] inline SimTime draw_time(const WorkloadParams& p, Rng& rng) {
  double t = 0;
  switch (p.dist) {
    case TimeDist::kUniform:
      t = static_cast<double>(rng.range(p.lo, p.hi));
      break;
    case TimeDist::kExponential:
      t = rng.exponential(static_cast<double>(p.lo));
      break;
    case TimeDist::kNormal:
      t = rng.normal(static_cast<double>(p.lo), static_cast<double>(p.hi));
      break;
    case TimeDist::kPareto:
      t = rng.pareto(static_cast<double>(p.lo),
                     static_cast<double>(p.hi) / 1000.0);
      break;
    case TimeDist::kBimodal:
      t = static_cast<double>(rng.chance(0.5) ? p.lo : p.hi);
      break;
  }
  return std::max<SimTime>(1, static_cast<SimTime>(t));
}

/// Draws one alternative block.
[[nodiscard]] inline BlockSpec generate_block(const WorkloadParams& p, Rng& rng) {
  ALTX_REQUIRE(p.n_alternatives >= 1, "generate_block: need alternatives");
  BlockSpec b;
  b.timeout = p.timeout;
  for (std::size_t i = 0; i < p.n_alternatives; ++i) {
    AltSpec a;
    a.compute = draw_time(p, rng);
    a.pages_read = p.pages_read;
    a.pages_written = p.pages_written;
    a.guard_ok = !rng.chance(p.guard_fail_prob);
    b.alts.push_back(a);
  }
  return b;
}

[[nodiscard]] inline std::string dist_name(TimeDist d) {
  switch (d) {
    case TimeDist::kUniform: return "uniform";
    case TimeDist::kExponential: return "exponential";
    case TimeDist::kNormal: return "normal";
    case TimeDist::kPareto: return "pareto";
    case TimeDist::kBimodal: return "bimodal";
  }
  return "?";
}

}  // namespace altx::core
