// Executing alternative blocks on the kernel simulator.
//
// Bridges BlockSpec workloads to sim::Kernel programs and runs the three
// execution disciplines the paper compares:
//   - Scheme C: concurrent fastest-first execution (the paper's design),
//   - Scheme B: nondeterministic sequential selection (the semantic baseline),
//   - ordered sequential with rollback (the recovery-block baseline).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "core/workload.hpp"
#include "sim/kernel.hpp"

namespace altx::core {

/// Page-layout convention for generated programs: page 0 carries the result
/// tag (winning alternative index + 1), pages [1, 1+R) are the read set,
/// pages [1+R, 1+R+W) the write set.
constexpr sim::VPage kResultPage = 0;
constexpr std::uint64_t kFailTag = ~0ULL;

/// Builds the sim program for one alternative. `tag` is the value it writes
/// to the result page (by convention its index + 1).
[[nodiscard]] sim::ProgramRef build_alternative(const AltSpec& spec,
                                                std::uint64_t tag);

struct ConcurrentResult {
  SimTime elapsed = 0;        // wall-clock of the whole block
  bool failed = false;        // no alternative was selected
  std::uint64_t winner = 0;   // tag of the selected alternative (0 if failed)
  sim::KernelStats stats;
};

/// Scheme C: spawn every alternative, absorb the fastest successful one.
[[nodiscard]] ConcurrentResult run_concurrent(const BlockSpec& block,
                                              sim::Kernel::Config cfg);

struct SequentialResult {
  SimTime elapsed = 0;
  bool failed = false;
  std::size_t chosen = 0;  // index of the alternative that produced the result
};

/// Runs one alternative alone (no spawning) and reports its time and whether
/// its guard held.
[[nodiscard]] SequentialResult run_single(const AltSpec& spec,
                                          sim::Kernel::Config cfg);

/// Scheme B: pick one alternative uniformly at random and run it; if its
/// guard fails, the construct fails (the paper's footnote 4: failures
/// frustrate random selection).
[[nodiscard]] SequentialResult run_random_pick(const BlockSpec& block,
                                               sim::Kernel::Config cfg, Rng& rng);

/// The sequential recovery-block discipline: try alternatives in order;
/// on a failed acceptance test, roll the state back (costed as restoring the
/// written pages) and try the next.
[[nodiscard]] SequentialResult run_ordered(const BlockSpec& block,
                                           sim::Kernel::Config cfg);

/// Adjusts a kernel config so the generated programs fit: ensures the address
/// space covers the block's read/write sets.
[[nodiscard]] sim::Kernel::Config fit_config(const BlockSpec& block,
                                             sim::Kernel::Config cfg);

/// Scheme C under interference: the block races while `background_procs`
/// unrelated compute-bound processes share the machine (section 4.2: tau
/// "may vary due to the execution environment, e.g. ... multiprocessing
/// workload"). Returns the block's own elapsed time.
[[nodiscard]] ConcurrentResult run_concurrent_loaded(const BlockSpec& block,
                                                     sim::Kernel::Config cfg,
                                                     int background_procs,
                                                     SimTime background_compute);

}  // namespace altx::core
