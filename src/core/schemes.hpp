// The alternative-selection schemes of section 4.2.
//
// When tau(Ci, x) is predictable, a synthetic computation C_{N+1} can select
// the right alternative by partitioning the input domain (case 2) or by a
// precomputed lookup table (case 2, infeasible-partition variant). When it is
// not predictable, the paper's schemes apply: A — pick by statistics; B —
// pick at random; C — run all concurrently, keep the fastest (the paper's
// design, implemented by run_concurrent / the posix backend).
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "common/sim_time.hpp"

namespace altx::core {

/// Scheme A: select the alternative with the best observed mean runtime.
/// "Statistical data can be applied, e.g. quicksort is almost always
/// O(n log n); thus we'll rarely go wrong to use it."
class StatisticalPicker {
 public:
  explicit StatisticalPicker(std::size_t n_alternatives)
      : sums_(n_alternatives, 0.0), counts_(n_alternatives, 0) {
    ALTX_REQUIRE(n_alternatives >= 1, "StatisticalPicker: need alternatives");
  }

  void record(std::size_t alternative, SimTime tau) {
    ALTX_REQUIRE(alternative < sums_.size(), "StatisticalPicker: bad index");
    sums_[alternative] += static_cast<double>(tau);
    counts_[alternative] += 1;
  }

  /// Untried alternatives are preferred (optimistic initialisation), then the
  /// lowest observed mean wins.
  [[nodiscard]] std::size_t pick() const {
    std::size_t best = 0;
    double best_mean = std::numeric_limits<double>::infinity();
    for (std::size_t i = 0; i < sums_.size(); ++i) {
      if (counts_[i] == 0) return i;
      const double mean = sums_[i] / static_cast<double>(counts_[i]);
      if (mean < best_mean) {
        best_mean = mean;
        best = i;
      }
    }
    return best;
  }

  [[nodiscard]] std::size_t alternatives() const { return sums_.size(); }

 private:
  std::vector<double> sums_;
  std::vector<std::uint64_t> counts_;
};

/// Scheme B: uniformly random selection. Repeated on the same input this
/// performs at the arithmetic mean of the alternatives (section 4.2), which
/// is exactly what concurrent execution is compared against.
[[nodiscard]] inline std::size_t random_pick(std::size_t n, Rng& rng) {
  ALTX_REQUIRE(n >= 1, "random_pick: need alternatives");
  return rng.below(n);
}

/// Scheme B's support: every index random_pick can return. The equivalence
/// checker's sequential oracle (src/check/oracle.hpp) enumerates executions
/// over exactly this set — a concurrent execution is correct iff it is
/// observationally equivalent to a sequential run using *some* member.
[[nodiscard]] inline std::vector<std::size_t> pick_support(std::size_t n) {
  ALTX_REQUIRE(n >= 1, "pick_support: need alternatives");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  return all;
}

/// Case 2: the input domain can be partitioned by performance. The synthetic
/// routine evaluates predicates in order and dispatches to the first match —
/// the paper's  "if (size > 10) Q(list) else I(list)"  sort example.
template <typename Input>
class PartitionSelector {
 public:
  using Predicate = std::function<bool(const Input&)>;

  /// Alternatives are consulted in registration order; `fallback` is used
  /// when no predicate matches.
  PartitionSelector(std::size_t fallback) : fallback_(fallback) {}

  void add_rule(Predicate pred, std::size_t alternative) {
    rules_.emplace_back(std::move(pred), alternative);
  }

  [[nodiscard]] std::size_t select(const Input& x) const {
    for (const auto& [pred, alt] : rules_) {
      if (pred(x)) return alt;
    }
    return fallback_;
  }

 private:
  std::vector<std::pair<Predicate, std::size_t>> rules_;
  std::size_t fallback_;
};

/// Case 2, lookup variant: "if all interesting x are known in advance, we can
/// associate one of the Ci with each x in a precomputed table"; cost is one
/// probe plus the chosen alternative.
class LookupTableSelector {
 public:
  explicit LookupTableSelector(std::size_t fallback) : fallback_(fallback) {}

  void learn(std::uint64_t input_key, std::size_t alternative) {
    table_[input_key] = alternative;
  }

  [[nodiscard]] std::size_t select(std::uint64_t input_key) const {
    auto it = table_.find(input_key);
    return it == table_.end() ? fallback_ : it->second;
  }

  [[nodiscard]] std::size_t entries() const { return table_.size(); }

 private:
  std::map<std::uint64_t, std::size_t> table_;
  std::size_t fallback_;
};

}  // namespace altx::core
