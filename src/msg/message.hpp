// Predicated interprocess messages (paper section 3.4.1).
//
// A message has exactly the paper's three-part structure:
//   1. a sending predicate — the assumptions the sender runs under,
//   2. the data comprising the message contents,
//   3. control information (sender id, destination, sequence number).
//
// A sender is *speculative* when its predicate is unsatisfied — it may yet be
// eliminated. For such senders the proposition the receiver ultimately splits
// worlds on is "the sender completes successfully": because a process whose
// assumptions prove false never completes, "sender completes" implies the
// sender's whole assumption set, and its negation covers every other outcome
// (this is why the paper's footnote 3 negates only complete(S), never the
// individual predicates).
#pragma once

#include <cstdint>

#include "common/bytes.hpp"
#include "common/ids.hpp"
#include "msg/predicate.hpp"

namespace altx {

struct Message {
  Predicate sending_predicate;  // the sender's assumptions at send time
  Bytes data;
  Pid sender = kNoPid;
  Port destination = 0;
  std::uint64_t seq = 0;  // per-sender sequence number (FIFO checking)
  bool sender_speculative = false;

  void serialize(ByteWriter& w) const {
    sending_predicate.serialize(w);
    w.blob(data.data(), data.size());
    w.u32(sender);
    w.u32(destination);
    w.u64(seq);
    w.u8(sender_speculative ? 1 : 0);
  }

  static Message deserialize(ByteReader& r) {
    Message m;
    m.sending_predicate = Predicate::deserialize(r);
    m.data = r.blob();
    m.sender = r.u32();
    m.destination = r.u32();
    m.seq = r.u64();
    m.sender_speculative = r.u8() != 0;
    return m;
  }
};

/// The receiver-side decision of section 3.4.2.
enum class Reception {
  kAccept,  // sender's assumptions already implied by the receiver's
  kIgnore,  // sender's assumptions contradict the receiver's
  kSplit,   // receiver must fork into a world that accepts and one that doesn't
};

/// The full assumption set receipt of `m` implies: the sending predicate,
/// plus "sender completes" when the sender is speculative.
inline Predicate implied_assumptions(const Message& m) {
  Predicate s = m.sending_predicate;
  if (m.sender_speculative) s.require_complete(m.sender);
  return s;
}

/// Classifies a message against the receiving process's predicate.
inline Reception classify_reception(const Predicate& receiver, const Message& m) {
  const Predicate s = implied_assumptions(m);
  if (receiver.conflicts(s)) return Reception::kIgnore;
  if (receiver.subsumes(s)) return Reception::kAccept;
  return Reception::kSplit;
}

/// Predicate for the world that accepts the message: previous assumptions in
/// conjunction with complete(sender) — implying all the sender's predicates
/// (paper footnote 2).
inline Predicate accepting_world(const Predicate& receiver, const Message& m) {
  Predicate p = receiver;
  p.merge(implied_assumptions(m));
  return p;
}

/// Predicate for the world that rejects the message: previous assumptions
/// plus the negation of complete(sender) only — NOT the negation of each of
/// the sender's predicates, which could assert that two mutually exclusive
/// processes must both complete (paper footnote 3).
inline Predicate rejecting_world(const Predicate& receiver, const Message& m) {
  Predicate p = receiver;
  if (m.sender_speculative) p.require_fail(m.sender);
  return p;
}

}  // namespace altx
