// Predicates (paper section 3.3).
//
// A predicate is the set of assumptions a speculative process runs under,
// represented exactly as the paper describes: two lists of process
// identifiers — processes that must COMPLETE successfully and processes that
// must NOT complete. A child alternative inherits its parent's predicate and
// additionally assumes "I complete, each of my siblings does not".
//
// The representation is deliberately simpler than data-object predicate locks
// (Eswaran et al.): predicates are updated when *processes* change status,
// which happens far less often than memory references.
#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"

namespace altx {

/// Resolution status of a speculative process, from the point of view of the
/// predicate machinery.
enum class Resolution {
  kPending,    // still speculative
  kCompleted,  // won its synchronization; its effects are real
  kFailed,     // aborted, eliminated, or "too late"
};

class Predicate {
 public:
  Predicate() = default;

  /// The child-spawn rule: parent's assumptions, plus self completes, plus
  /// every sibling does not.
  static Predicate for_child(const Predicate& parent, Pid self,
                             const std::vector<Pid>& siblings) {
    Predicate p = parent;
    p.require_complete(self);
    for (Pid s : siblings) {
      if (s != self) p.require_fail(s);
    }
    return p;
  }

  void require_complete(Pid pid) { insert(must_complete_, pid); }
  void require_fail(Pid pid) { insert(must_fail_, pid); }

  [[nodiscard]] bool requires_complete(Pid pid) const {
    return contains(must_complete_, pid);
  }
  [[nodiscard]] bool requires_fail(Pid pid) const {
    return contains(must_fail_, pid);
  }

  /// True when the process runs under no unresolved assumption; only then may
  /// it touch sources (paper: "restricted from causing observable
  /// side-effects").
  [[nodiscard]] bool satisfied() const noexcept {
    return must_complete_.empty() && must_fail_.empty();
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return must_complete_.size() + must_fail_.size();
  }

  /// True if every assumption in `other` is already one of ours (S implied by
  /// R, the "immediately accept" case of section 3.4.2).
  [[nodiscard]] bool subsumes(const Predicate& other) const {
    return includes(must_complete_, other.must_complete_) &&
           includes(must_fail_, other.must_fail_);
  }

  /// True if some assumption of `other` contradicts one of ours
  /// (p in S and !p in R — the "ignore the message" case).
  [[nodiscard]] bool conflicts(const Predicate& other) const {
    return intersects(must_complete_, other.must_fail_) ||
           intersects(must_fail_, other.must_complete_);
  }

  /// Conjoins the other predicate's assumptions into this one. Callers must
  /// check conflicts() first; merging contradictory predicates is a logic
  /// error (it would describe an impossible world).
  void merge(const Predicate& other) {
    ALTX_REQUIRE(!conflicts(other), "Predicate::merge: contradictory predicates");
    for (Pid p : other.must_complete_) require_complete(p);
    for (Pid p : other.must_fail_) require_fail(p);
  }

  /// Applies the resolution of `pid`. Returns kPending if this predicate is
  /// unaffected or the assumption was satisfied (and removed); returns
  /// kFailed if the resolution contradicts an assumption, meaning the process
  /// holding this predicate must be eliminated.
  [[nodiscard]] Resolution resolve(Pid pid, Resolution outcome) {
    ALTX_REQUIRE(outcome != Resolution::kPending,
                 "Predicate::resolve: outcome must be terminal");
    if (outcome == Resolution::kCompleted) {
      if (contains(must_fail_, pid)) return Resolution::kFailed;
      erase(must_complete_, pid);
    } else {
      if (contains(must_complete_, pid)) return Resolution::kFailed;
      erase(must_fail_, pid);
    }
    return Resolution::kPending;
  }

  [[nodiscard]] const std::vector<Pid>& must_complete() const { return must_complete_; }
  [[nodiscard]] const std::vector<Pid>& must_fail() const { return must_fail_; }

  [[nodiscard]] bool operator==(const Predicate& other) const = default;

  [[nodiscard]] std::string to_string() const {
    std::string s = "{+[";
    for (std::size_t i = 0; i < must_complete_.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(must_complete_[i]);
    }
    s += "] -[";
    for (std::size_t i = 0; i < must_fail_.size(); ++i) {
      if (i) s += ",";
      s += std::to_string(must_fail_[i]);
    }
    return s + "]}";
  }

  void serialize(ByteWriter& w) const {
    w.u64(must_complete_.size());
    for (Pid p : must_complete_) w.u32(p);
    w.u64(must_fail_.size());
    for (Pid p : must_fail_) w.u32(p);
  }

  static Predicate deserialize(ByteReader& r) {
    Predicate p;
    const std::uint64_t nc = r.u64();
    for (std::uint64_t i = 0; i < nc; ++i) p.require_complete(r.u32());
    const std::uint64_t nf = r.u64();
    for (std::uint64_t i = 0; i < nf; ++i) p.require_fail(r.u32());
    return p;
  }

 private:
  static void insert(std::vector<Pid>& v, Pid pid) {
    auto it = std::lower_bound(v.begin(), v.end(), pid);
    if (it == v.end() || *it != pid) v.insert(it, pid);
  }
  static void erase(std::vector<Pid>& v, Pid pid) {
    auto it = std::lower_bound(v.begin(), v.end(), pid);
    if (it != v.end() && *it == pid) v.erase(it);
  }
  static bool contains(const std::vector<Pid>& v, Pid pid) {
    return std::binary_search(v.begin(), v.end(), pid);
  }
  static bool includes(const std::vector<Pid>& big, const std::vector<Pid>& small) {
    return std::includes(big.begin(), big.end(), small.begin(), small.end());
  }
  static bool intersects(const std::vector<Pid>& a, const std::vector<Pid>& b) {
    auto ia = a.begin();
    auto ib = b.begin();
    while (ia != a.end() && ib != b.end()) {
      if (*ia < *ib) {
        ++ia;
      } else if (*ib < *ia) {
        ++ib;
      } else {
        return true;
      }
    }
    return false;
  }

  // Both kept sorted and duplicate-free.
  std::vector<Pid> must_complete_;
  std::vector<Pid> must_fail_;
};

}  // namespace altx
