#include "obs/metrics.hpp"

#include <cstdio>

namespace altx::obs {

namespace {

int bucket_for(std::uint64_t v) noexcept {
  // Bucket i holds values in [2^i, 2^(i+1)) (bucket 0 also takes 0).
  if (v <= 1) return 0;
  const int b = 63 - __builtin_clzll(v);
  return b < Histogram::kBuckets ? b : Histogram::kBuckets - 1;
}

void atomic_min(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v < cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<std::uint64_t>& slot, std::uint64_t v) noexcept {
  std::uint64_t cur = slot.load(std::memory_order_relaxed);
  while (v > cur &&
         !slot.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void Histogram::record(std::uint64_t v) noexcept {
  buckets_[bucket_for(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  atomic_min(min_, v);
  atomic_max(max_, v);
}

std::uint64_t Histogram::min() const noexcept {
  const std::uint64_t m = min_.load(std::memory_order_relaxed);
  return m == ~0ULL ? 0 : m;
}

std::uint64_t Histogram::max() const noexcept {
  return max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::uint64_t Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0) p = 0;
  if (p > 100) p = 100;
  // Nearest-rank over the bucket histogram, linearly interpolated within
  // the winning bucket. Power-of-two buckets span [2^i, 2^(i+1)); reporting
  // the upper bound (the old behavior) over-stated a quantile by up to 2×,
  // so the estimate is placed by rank position inside the bucket instead
  // (+0.5 centers a lone sample), then clamped to the observed [min, max].
  std::uint64_t rank = static_cast<std::uint64_t>(p / 100.0 *
                                                  static_cast<double>(n));
  if (rank > 0) --rank;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t bc = buckets_[i].load(std::memory_order_relaxed);
    if (bc != 0 && seen + bc > rank) {
      const std::uint64_t lo = i == 0 ? 0 : (1ULL << i);
      const std::uint64_t hi = 2ULL << i;  // exclusive
      const double pos =
          (static_cast<double>(rank - seen) + 0.5) / static_cast<double>(bc);
      std::uint64_t est =
          lo + static_cast<std::uint64_t>(pos * static_cast<double>(hi - lo));
      const std::uint64_t observed_min = min();
      const std::uint64_t observed_max = max();
      if (est < observed_min) est = observed_min;
      if (est > observed_max) est = observed_max;
      return est;
    }
    seen += bc;
  }
  return max();
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(kBuckets);
  for (int i = 0; i < kBuckets; ++i) {
    out[static_cast<std::size_t>(i)] =
        buckets_[i].load(std::memory_order_relaxed);
  }
  return out;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out = "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + name + "\": " + std::to_string(c->value());
  }
  out += first ? "},\n" : "\n  },\n";
  out += "  \"histograms\": {";
  first = true;
  char buf[160];
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    std::snprintf(buf, sizeof buf,
                  "{\"count\": %llu, \"sum\": %llu, \"min\": %llu, "
                  "\"max\": %llu, \"mean\": %.1f, \"p50\": %llu, "
                  "\"p95\": %llu, \"p99\": %llu}",
                  static_cast<unsigned long long>(h->count()),
                  static_cast<unsigned long long>(h->sum()),
                  static_cast<unsigned long long>(h->min()),
                  static_cast<unsigned long long>(h->max()), h->mean(),
                  static_cast<unsigned long long>(h->percentile(50)),
                  static_cast<unsigned long long>(h->percentile(95)),
                  static_cast<unsigned long long>(h->percentile(99)));
    out += "\n    \"" + name + "\": " + buf;
  }
  out += first ? "}\n}\n" : "\n  }\n}\n";
  return out;
}

std::string MetricsRegistry::to_prometheus(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  char buf[192];
  for (const auto& [name, c] : counters_) {
    const std::string full = prefix + name + "_total";
    out += "# TYPE " + full + " counter\n";
    std::snprintf(buf, sizeof buf, "%s %llu\n", full.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    const std::string full = prefix + name;
    out += "# TYPE " + full + " histogram\n";
    const std::vector<std::uint64_t> buckets = h->bucket_counts();
    int last = -1;
    for (int i = 0; i < Histogram::kBuckets; ++i) {
      if (buckets[static_cast<std::size_t>(i)] != 0) last = i;
    }
    std::uint64_t cum = 0;
    for (int i = 0; i <= last; ++i) {
      cum += buckets[static_cast<std::size_t>(i)];
      // Bucket i holds integer values in [2^i, 2^(i+1)), so its inclusive
      // upper bound — Prometheus `le` semantics — is 2^(i+1)-1.
      std::snprintf(buf, sizeof buf, "%s_bucket{le=\"%llu\"} %llu\n",
                    full.c_str(),
                    static_cast<unsigned long long>((2ULL << i) - 1),
                    static_cast<unsigned long long>(cum));
      out += buf;
    }
    std::snprintf(buf, sizeof buf,
                  "%s_bucket{le=\"+Inf\"} %llu\n%s_sum %llu\n%s_count %llu\n",
                  full.c_str(), static_cast<unsigned long long>(h->count()),
                  full.c_str(), static_cast<unsigned long long>(h->sum()),
                  full.c_str(), static_cast<unsigned long long>(h->count()));
    out += buf;
  }
  return out;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_.clear();
  histograms_.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  // Leaked: the ALTX_METRICS atexit exporter is registered before main()
  // while the registry is first touched *during* the run, so a function-
  // local static would be destroyed before the exporter reads it.
  static MetricsRegistry* registry = new MetricsRegistry;
  return *registry;
}

}  // namespace altx::obs
