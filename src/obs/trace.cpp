#include "obs/trace.hpp"

#include <pthread.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "common/error.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace altx::obs {

namespace detail {
bool g_enabled = false;
}  // namespace detail

namespace {

// The ring is leaked deliberately: children may still touch it inside
// _exit-bound code paths while the parent unwinds static destructors, and a
// single mapping for the process lifetime is exactly what post-mortem
// reconstruction wants.
TraceRing* g_ring = nullptr;
std::uint32_t g_attempt = 0;  // inherited by children through fork
std::uint32_t g_node_id = 0;  // ALTX_NODE_ID; inherited through fork
std::uint64_t g_trace_id = 0;  // ambient cross-process trace id; fork-inherited
pid_t g_creator = -1;
bool g_atexit_hooked = false;  // export_at_exit registered exactly once

// glibc stopped caching getpid(), and under a container's seccomp filter
// the syscall costs ~100 ns — real money when every emit stamps a pid on
// the fork critical path. Cache it ourselves; the pthread_atfork child
// handler (registered when the ring is created) refreshes it after every
// fork, which is the only way a process's pid changes.
pid_t g_self = -1;
void refresh_self_pid() { g_self = ::getpid(); }
pid_t self_pid() {
  if (g_self == -1) refresh_self_pid();
  return g_self;
}

// Export configuration captured from the environment at init.
std::string& trace_path() {
  static std::string path;
  return path;
}
std::string& trace_format() {
  static std::string format;
  return format;
}
std::string& metrics_path() {
  static std::string path;
  return path;
}

std::uint64_t wall_now_ns() {
  timespec ts;
  if (::clock_gettime(CLOCK_REALTIME, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

// Metrics snapshot schema: bumped when the JSON shape changes. v2 added the
// "meta" envelope (schema, pid, monotonic + wall clocks) so an external
// scraper can align snapshot series across processes and reboots.
constexpr int kMetricsSchema = 2;

bool write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  const std::string body = MetricsRegistry::global().to_json();
  char meta[192];
  std::snprintf(meta, sizeof(meta),
                "{\"meta\": {\"schema\": %d, \"pid\": %d, "
                "\"mono_ns\": %llu, \"wall_ns\": %llu},",
                kMetricsSchema, static_cast<int>(::getpid()),
                static_cast<unsigned long long>(now_ns()),
                static_cast<unsigned long long>(wall_now_ns()));
  // Splice the envelope into the registry dump's outer object.
  out << meta << body.substr(1);
  return static_cast<bool>(out);
}

void export_at_exit() {
  // Only the ring's creator exports; a forked child that somehow reaches
  // exit() (instead of _exit) must not clobber the parent's file.
  if (::getpid() != g_creator) return;
  if (!trace_path().empty()) {
    try {
      export_to(trace_path(), trace_format());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "altx: trace export failed: %s\n", e.what());
    }
  }
  if (!metrics_path().empty() && !write_metrics_file(metrics_path())) {
    std::fprintf(stderr, "altx: cannot write metrics to %s\n",
                 metrics_path().c_str());
  }
}

/// The live-metrics exporter: rewrites the ALTX_METRICS file every interval
/// so an operator (or a `watch cat`) can see counters move while the
/// process runs. Snapshots are written to <path>.tmp and renamed, so a
/// concurrent reader never sees a half-written file. The thread is detached
/// and owns copies of its inputs; the final authoritative dump still comes
/// from export_at_exit.
void start_metrics_interval(std::string path, long long interval_ms) {
  std::thread([path = std::move(path), interval_ms] {
    const std::string tmp = path + ".tmp";
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      if (!write_metrics_file(tmp)) continue;
      if (::rename(tmp.c_str(), path.c_str()) != 0) {
        (void)::unlink(tmp.c_str());
      }
    }
  }).detach();
}

/// Runs before main(): the ring must exist in the process that forks, and
/// reading the environment once here keeps every later emit branch-only.
struct EnvInit {
  EnvInit() {
    const char* trace = std::getenv("ALTX_TRACE");
    const char* ring_file = std::getenv("ALTX_TRACE_RING");
    const char* metrics = std::getenv("ALTX_METRICS");
    if (trace == nullptr && ring_file == nullptr && metrics == nullptr) return;
    std::size_t capacity = TraceRing::kDefaultCapacity;
    if (const char* buf = std::getenv("ALTX_TRACE_BUF")) {
      const long long n = std::atoll(buf);
      if (n > 0) capacity = static_cast<std::size_t>(n);
    }
    if (const char* node = std::getenv("ALTX_NODE_ID")) {
      g_node_id = static_cast<std::uint32_t>(std::atoll(node));
    }
    if (trace != nullptr) {
      trace_path() = trace;
      const char* format = std::getenv("ALTX_TRACE_FORMAT");
      trace_format() = format != nullptr ? format : "jsonl";
    }
    if (metrics != nullptr) metrics_path() = metrics;
    try {
      // File-backed when a live monitor wants to attach, anonymous otherwise.
      g_ring = ring_file != nullptr ? new TraceRing(ring_file, capacity)
                                    : new TraceRing(capacity);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "altx: cannot create trace ring: %s\n", e.what());
      return;
    }
    g_creator = ::getpid();
    refresh_self_pid();
    ::pthread_atfork(nullptr, nullptr, refresh_self_pid);
    std::atexit(export_at_exit);
    g_atexit_hooked = true;
    detail::g_enabled = true;
    if (metrics != nullptr) {
      if (const char* iv = std::getenv("ALTX_METRICS_INTERVAL_MS")) {
        const long long ms = std::atoll(iv);
        if (ms > 0) start_metrics_interval(metrics_path(), ms);
      }
    }
  }
};
EnvInit g_env_init;

}  // namespace

namespace detail {

void emit_slow(EventKind kind, std::uint32_t race_id, std::int16_t child_index,
               std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  if (g_ring == nullptr) return;
  Record r;
  r.t_ns = now_ns();
  r.race_id = race_id;
  r.attempt = g_attempt;
  r.pid = static_cast<std::int32_t>(self_pid());
  r.node_id = g_node_id;
  r.child_index = child_index;
  r.kind = kind;
  r.a = a;
  r.b = b;
  r.c = c;
  r.trace_id = g_trace_id;
  g_ring->push(r);
}

}  // namespace detail

void emit_at(std::uint64_t t_ns, EventKind kind, std::uint32_t race_id,
             std::int16_t child_index, std::uint64_t a, std::uint64_t b,
             std::uint64_t c) noexcept {
  emit_at_node(t_ns, g_node_id, kind, race_id, child_index, a, b, c);
}

void emit_at_node(std::uint64_t t_ns, std::uint32_t node_id, EventKind kind,
                  std::uint32_t race_id, std::int16_t child_index,
                  std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  if (!detail::g_enabled || g_ring == nullptr) [[likely]] return;
  Record r;
  r.t_ns = t_ns;
  r.race_id = race_id;
  r.attempt = g_attempt;
  r.pid = static_cast<std::int32_t>(self_pid());
  r.node_id = node_id;
  r.child_index = child_index;
  r.kind = kind;
  r.a = a;
  r.b = b;
  r.c = c;
  r.trace_id = g_trace_id;
  g_ring->push(r);
}

void emit_trace(std::uint64_t trace_id, EventKind kind, std::uint32_t race_id,
                std::int16_t child_index, std::uint64_t a, std::uint64_t b,
                std::uint64_t c) noexcept {
  if (!detail::g_enabled || g_ring == nullptr) [[likely]] return;
  Record r;
  r.t_ns = now_ns();
  r.race_id = race_id;
  r.attempt = g_attempt;
  r.pid = static_cast<std::int32_t>(self_pid());
  r.node_id = g_node_id;
  r.child_index = child_index;
  r.kind = kind;
  r.a = a;
  r.b = b;
  r.c = c;
  r.trace_id = trace_id;
  g_ring->push(r);
}

std::uint32_t next_race_id() noexcept {
  if (!detail::g_enabled || g_ring == nullptr) [[likely]] return 0;
  return g_ring->next_race_id();
}

std::uint64_t now_ns() noexcept {
  timespec ts;
  if (::clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void set_attempt(std::uint32_t attempt) noexcept { g_attempt = attempt; }

std::uint32_t current_attempt() noexcept { return g_attempt; }

void set_node_id(std::uint32_t node_id) noexcept { g_node_id = node_id; }

std::uint32_t node_id() noexcept { return g_node_id; }

namespace {
std::uint32_t g_current_race = 0;  // child-side; set after fork
}  // namespace

void set_current_race(std::uint32_t race_id) noexcept {
  g_current_race = race_id;
}

std::uint32_t current_race() noexcept { return g_current_race; }

void set_current_trace(std::uint64_t trace_id) noexcept {
  g_trace_id = trace_id;
}

std::uint64_t current_trace() noexcept { return g_trace_id; }

std::uint64_t mint_trace_id() noexcept {
  // splitmix64 over (pid, clock, counter): probabilistically unique across
  // every client process that ever talks to one daemon, never 0, and cheap
  // enough to mint per job. Deliberately independent of the ring (which may
  // not exist — a dark client's jobs must still trace on the daemon side).
  static std::atomic<std::uint64_t> counter{0};
  std::uint64_t x = now_ns() ^
                    (static_cast<std::uint64_t>(self_pid()) << 32) ^
                    (counter.fetch_add(1, std::memory_order_relaxed) << 1);
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

void enable_for_test(std::size_t capacity) {
  if (g_ring == nullptr) {
    g_ring = new TraceRing(capacity);
    g_creator = ::getpid();
    refresh_self_pid();
    ::pthread_atfork(nullptr, nullptr, refresh_self_pid);
  }
  detail::g_enabled = true;
}

bool attach_ring_file(const std::string& path, std::size_t capacity) {
  if (g_ring != nullptr) return false;
  g_ring = new TraceRing(path, capacity);
  g_creator = ::getpid();
  refresh_self_pid();
  ::pthread_atfork(nullptr, nullptr, refresh_self_pid);
  detail::g_enabled = true;
  return true;
}

void set_export_on_exit(const std::string& path, const std::string& format) {
  trace_path() = path;
  trace_format() = format;
  // EnvInit registers export_at_exit whenever it builds a ring; only a
  // purely programmatic setup (no ALTX_* env at all) still needs the hook.
  if (!g_atexit_hooked) {
    std::atexit(export_at_exit);
    g_atexit_hooked = true;
  }
}

std::vector<Record> snapshot() {
  if (g_ring == nullptr) return {};
  return g_ring->snapshot();
}

std::uint64_t dropped() {
  return g_ring == nullptr ? 0 : g_ring->dropped();
}

void reset() {
  if (g_ring != nullptr) g_ring->reset();
  g_attempt = 0;
  g_trace_id = 0;
}

TraceRing* ring() noexcept { return g_ring; }

void export_to(const std::string& path, const std::string& format) {
  std::vector<Record> records = snapshot();
  // Claim order is per-process program order but interleaves arbitrarily
  // across processes; the timeline order is the timestamp order.
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& x, const Record& y) {
                     return x.t_ns < y.t_ns;
                   });
  const std::uint64_t lost = dropped();
  if (lost > 0) {
    // The overflow marker: a reader (altx-trace, or any jsonl consumer)
    // must be able to tell a truncated trace from a complete one without
    // out-of-band knowledge, so the drop count rides in the file itself.
    Record overflow;
    overflow.t_ns = records.empty() ? 0 : records.back().t_ns;
    overflow.seq = records.empty() ? 0 : records.back().seq + 1;
    overflow.node_id = g_node_id;
    overflow.pid = static_cast<std::int32_t>(::getpid());
    overflow.kind = EventKind::kRingOverflow;
    overflow.a = lost;
    records.push_back(overflow);
    MetricsRegistry::global().counter("dropped_events").add(lost);
  }
  std::ofstream out(path);
  if (!out) throw SystemError("open trace file " + path, errno);
  write_trace(records, out, format);
  out.flush();
  if (!out) throw SystemError("write trace file " + path, EIO);
  if (lost > 0) {
    std::fprintf(stderr,
                 "altx: trace buffer overflow: %llu records dropped "
                 "(raise ALTX_TRACE_BUF)\n",
                 static_cast<unsigned long long>(lost));
  }
}

}  // namespace altx::obs
