#include "obs/trace.hpp"

#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/error.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "obs/ring.hpp"

namespace altx::obs {

namespace detail {
bool g_enabled = false;
}  // namespace detail

namespace {

// The ring is leaked deliberately: children may still touch it inside
// _exit-bound code paths while the parent unwinds static destructors, and a
// single mapping for the process lifetime is exactly what post-mortem
// reconstruction wants.
TraceRing* g_ring = nullptr;
std::uint32_t g_attempt = 0;  // inherited by children through fork
pid_t g_creator = -1;

// Export configuration captured from the environment at init.
std::string& trace_path() {
  static std::string path;
  return path;
}
std::string& trace_format() {
  static std::string format;
  return format;
}
std::string& metrics_path() {
  static std::string path;
  return path;
}

void export_at_exit() {
  // Only the ring's creator exports; a forked child that somehow reaches
  // exit() (instead of _exit) must not clobber the parent's file.
  if (::getpid() != g_creator) return;
  if (!trace_path().empty()) {
    try {
      export_to(trace_path(), trace_format());
    } catch (const std::exception& e) {
      std::fprintf(stderr, "altx: trace export failed: %s\n", e.what());
    }
  }
  if (!metrics_path().empty()) {
    std::ofstream out(metrics_path());
    if (out) {
      out << MetricsRegistry::global().to_json();
    } else {
      std::fprintf(stderr, "altx: cannot write metrics to %s\n",
                   metrics_path().c_str());
    }
  }
}

/// Runs before main(): the ring must exist in the process that forks, and
/// reading the environment once here keeps every later emit branch-only.
struct EnvInit {
  EnvInit() {
    const char* trace = std::getenv("ALTX_TRACE");
    const char* metrics = std::getenv("ALTX_METRICS");
    if (trace == nullptr && metrics == nullptr) return;
    std::size_t capacity = TraceRing::kDefaultCapacity;
    if (const char* buf = std::getenv("ALTX_TRACE_BUF")) {
      const long long n = std::atoll(buf);
      if (n > 0) capacity = static_cast<std::size_t>(n);
    }
    if (trace != nullptr) {
      trace_path() = trace;
      const char* format = std::getenv("ALTX_TRACE_FORMAT");
      trace_format() = format != nullptr ? format : "jsonl";
    }
    if (metrics != nullptr) metrics_path() = metrics;
    g_ring = new TraceRing(capacity);
    g_creator = ::getpid();
    std::atexit(export_at_exit);
    detail::g_enabled = true;
  }
};
EnvInit g_env_init;

}  // namespace

namespace detail {

void emit_slow(EventKind kind, std::uint32_t race_id, std::int16_t child_index,
               std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept {
  if (g_ring == nullptr) return;
  Record r;
  r.t_ns = now_ns();
  r.race_id = race_id;
  r.attempt = g_attempt;
  r.pid = static_cast<std::int32_t>(::getpid());
  r.child_index = child_index;
  r.kind = kind;
  r.a = a;
  r.b = b;
  r.c = c;
  g_ring->push(r);
}

}  // namespace detail

void emit_at(std::uint64_t t_ns, EventKind kind, std::uint32_t race_id,
             std::int16_t child_index, std::uint64_t a, std::uint64_t b,
             std::uint64_t c) noexcept {
  if (!detail::g_enabled || g_ring == nullptr) [[likely]] return;
  Record r;
  r.t_ns = t_ns;
  r.race_id = race_id;
  r.attempt = g_attempt;
  r.pid = static_cast<std::int32_t>(::getpid());
  r.child_index = child_index;
  r.kind = kind;
  r.a = a;
  r.b = b;
  r.c = c;
  g_ring->push(r);
}

std::uint32_t next_race_id() noexcept {
  if (!detail::g_enabled || g_ring == nullptr) [[likely]] return 0;
  return g_ring->next_race_id();
}

std::uint64_t now_ns() noexcept {
  timespec ts;
  if (::clock_gettime(CLOCK_MONOTONIC, &ts) != 0) return 0;
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

void set_attempt(std::uint32_t attempt) noexcept { g_attempt = attempt; }

std::uint32_t current_attempt() noexcept { return g_attempt; }

namespace {
std::uint32_t g_current_race = 0;  // child-side; set after fork
}  // namespace

void set_current_race(std::uint32_t race_id) noexcept {
  g_current_race = race_id;
}

std::uint32_t current_race() noexcept { return g_current_race; }

void enable_for_test(std::size_t capacity) {
  if (g_ring == nullptr) {
    g_ring = new TraceRing(capacity);
    g_creator = ::getpid();
  }
  detail::g_enabled = true;
}

std::vector<Record> snapshot() {
  if (g_ring == nullptr) return {};
  return g_ring->snapshot();
}

std::uint64_t dropped() {
  return g_ring == nullptr ? 0 : g_ring->dropped();
}

void reset() {
  if (g_ring != nullptr) g_ring->reset();
  g_attempt = 0;
}

TraceRing* ring() noexcept { return g_ring; }

void export_to(const std::string& path, const std::string& format) {
  std::vector<Record> records = snapshot();
  // Claim order is per-process program order but interleaves arbitrarily
  // across processes; the timeline order is the timestamp order.
  std::stable_sort(records.begin(), records.end(),
                   [](const Record& x, const Record& y) {
                     return x.t_ns < y.t_ns;
                   });
  std::ofstream out(path);
  if (!out) throw SystemError("open trace file " + path, errno);
  write_trace(records, out, format);
  out.flush();
  if (!out) throw SystemError("write trace file " + path, EIO);
  if (const std::uint64_t lost = dropped(); lost > 0) {
    std::fprintf(stderr,
                 "altx: trace buffer overflow: %llu records dropped "
                 "(raise ALTX_TRACE_BUF)\n",
                 static_cast<unsigned long long>(lost));
  }
}

}  // namespace altx::obs
