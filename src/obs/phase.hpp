// Phase spans: named sub-intervals of an alternative block's lifetime.
//
// The trace ring can already say *that* a race took 20 µs; phases say
// *where* those microseconds went. Each span is a kPhaseBegin/kPhaseEnd
// record pair sharing a Phase id; the end record carries the measured
// duration in `b`, so a span is self-contained — a child SIGKILLed between
// begin and end truncates to a dangling begin instead of corrupting
// anything, and the reducer never has to pair records across a kill.
//
// Parent-side spans (child_index == 0) are emitted sequentially by
// alt_group/race and tile the interval from kRaceBegin to kRaceDecided:
//
//   admission_wait   queueing for governor tokens (only under a governor)
//   fork             pipes + census arena + the fork loop
//   arm_run          parent waiting for the first commit (the arms racing)
//   result_pipe      reading / writing the winner's result frame
//   absorb           applying the winner's heap patch in the parent
//   eliminate        killing + reaping surviving losers
//   decide           final accounting up to kRaceDecided
//
// Child-side spans (child_index >= 1) measure the speculative work itself:
// arm_run (guard body), page_diff (dirty-page serialization), result_pipe
// (writing the frame). They overlap each other and the parent spans — the
// critical-path reducer attributes wall time from the parent spans only and
// reports the child spans separately.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "obs/event.hpp"
#include "obs/trace.hpp"

namespace altx::obs {

/// Span names. Values are part of the on-disk format (kPhaseBegin/End `a`
/// payload) — append only.
enum class Phase : std::uint8_t {
  kNone = 0,
  kAdmissionWait = 1,
  kFork = 2,
  kArmRun = 3,
  kResultPipe = 4,
  kAbsorb = 5,
  kDecide = 6,
  kEliminate = 7,
  kPageDiff = 8,
  // Daemon-side queue wait (altxd): submit frame arrival → worker
  // assignment. Emitted by the worker as a self-contained span of the race
  // the job became, so `altx-trace --critical-path` attributes server
  // queueing next to the in-process phases. The span precedes kRaceBegin in
  // wall time, so it adds attribution beyond the race's own wall interval
  // (coverage clamps at 1).
  kSrvQueue = 9,
};

inline constexpr int kPhaseCount = 10;  // including kNone

[[nodiscard]] const char* to_string(Phase phase);

/// RAII span. Construction emits kPhaseBegin and samples the clock;
/// end() (or the destructor) emits kPhaseEnd carrying the duration.
/// Disabled-path cost is one predicted branch per endpoint. Not
/// copyable/movable — spans are lexical.
class ScopedPhase {
 public:
  ScopedPhase(Phase phase, std::uint32_t race_id,
              std::int16_t child_index = 0) noexcept
      : phase_(phase), race_(race_id), child_(child_index) {
    if (!enabled()) [[likely]] return;
    t0_ = now_ns();
    emit(EventKind::kPhaseBegin, race_, child_,
         static_cast<std::uint64_t>(phase_));
  }
  ~ScopedPhase() { end(); }

  ScopedPhase(const ScopedPhase&) = delete;
  ScopedPhase& operator=(const ScopedPhase&) = delete;

  /// Ends the span now (idempotent; the destructor is then a no-op).
  void end() noexcept {
    if (t0_ == 0) return;
    emit(EventKind::kPhaseEnd, race_, child_,
         static_cast<std::uint64_t>(phase_), now_ns() - t0_);
    t0_ = 0;
  }

  /// Abandons the span without an end record. A forked child calls this on
  /// its copy of a parent-side span so only the parent emits the end.
  void cancel() noexcept { t0_ = 0; }

  [[nodiscard]] bool open() const noexcept { return t0_ != 0; }

 private:
  Phase phase_;
  std::uint32_t race_;
  std::int16_t child_;
  std::uint64_t t0_ = 0;
};

/// Non-RAII endpoints for spans that cross function boundaries (a child's
/// arm_run starts in alt_spawn and ends in child_commit/child_abort).
/// phase_begin returns the begin timestamp (0 when disabled); pass it back
/// to phase_end.
[[nodiscard]] inline std::uint64_t phase_begin(
    Phase phase, std::uint32_t race_id, std::int16_t child_index) noexcept {
  if (!enabled()) [[likely]] return 0;
  const std::uint64_t t0 = now_ns();
  emit(EventKind::kPhaseBegin, race_id, child_index,
       static_cast<std::uint64_t>(phase));
  return t0;
}

inline void phase_end(Phase phase, std::uint32_t race_id,
                      std::int16_t child_index, std::uint64_t t0) noexcept {
  if (t0 == 0) return;
  emit(EventKind::kPhaseEnd, race_id, child_index,
       static_cast<std::uint64_t>(phase), now_ns() - t0);
}

/// Critical-path reduction -------------------------------------------------

/// Where one race's wall time went. `phase_ns` holds parent-side span
/// durations indexed by Phase; `child_ns` aggregates the child-side spans
/// (informational — they overlap the parent timeline, so they are not part
/// of the coverage sum).
struct PhaseBreakdown {
  std::uint64_t begin_ns = 0;          // kRaceBegin timestamp
  std::uint64_t wall_ns = 0;           // kRaceBegin → kRaceDecided
  bool decided = false;                // kRaceDecided seen
  std::uint64_t phase_ns[kPhaseCount] = {};
  std::uint64_t child_ns[kPhaseCount] = {};
  std::uint32_t dangling_begins = 0;   // spans truncated by a kill
  // Socket + poll-loop dispatch time of the daemon hop: the part of the
  // client's wall before the daemon admitted the job plus the part after
  // it forwarded the result. Only the by-trace reduction fills this (both
  // rings must be present); same-host monotonic clocks make the cross-
  // process subtraction meaningful.
  std::uint64_t rpc_ns = 0;

  /// Sum of the parent-side phase durations plus the daemon-hop rpc time.
  [[nodiscard]] std::uint64_t attributed_ns() const noexcept;

  /// attributed / wall, in [0, 1]; 0 when the race never decided.
  [[nodiscard]] double coverage() const noexcept;

  /// The parent-side phase with the largest share (kNone when empty).
  [[nodiscard]] Phase dominant() const noexcept;
};

/// Reduces a record stream to per-race breakdowns. Only races that emitted
/// kRaceBegin appear; races denied admission (no kRaceDecided) appear with
/// decided == false and wall_ns == 0. The dangling-span audit keys spans by
/// (node, race) — two stitched rings' colliding race counters cannot cancel
/// each other — and by trace id when one is set, so a span whose begin and
/// end landed in different rings counts as one cross-hop span, not two
/// truncated halves.
[[nodiscard]] std::map<std::uint32_t, PhaseBreakdown> reduce_critical_path(
    const std::vector<Record>& records);

/// Cross-hop reduction: groups by Record::trace_id (nonzero only), merging
/// the client's and the daemon's rings of one job into a single breakdown.
/// wall_ns is the outermost kRaceBegin→kRaceDecided interval — the client's
/// submit→result when its ring is present — and phase_ns sums the parent
/// spans from every node under the trace, so coverage() measures how much
/// of the client-observed wall is attributed to named phases across the
/// socket hop. rpc_ns captures the hop itself (client submit → daemon
/// kSrvSubmit, daemon kSrvResult → client decided) so wire and dispatch
/// time count as attributed rather than as mystery residue.
[[nodiscard]] std::map<std::uint64_t, PhaseBreakdown>
reduce_critical_path_by_trace(const std::vector<Record>& records);

}  // namespace altx::obs
