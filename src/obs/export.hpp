// Trace exporters and the matching reader.
//
// Two formats, both plain text:
//
//   jsonl  — one JSON object per line, every Record field verbatim. The
//            canonical format: lossless, grep-able, and what altx-trace and
//            parse_jsonl() read back.
//
//   chrome — the Chrome/Perfetto trace_event JSON format (load the file in
//            ui.perfetto.dev or chrome://tracing). Each alternative block
//            becomes a "process" row (pid = race id), each participant a
//            "thread" row; supervisor attempts render as duration spans,
//            everything else as instants. Lossy by design (a visualization,
//            not an archive).
#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace altx::obs {

void write_jsonl(const std::vector<Record>& records, std::ostream& out);
void write_chrome(const std::vector<Record>& records, std::ostream& out);

/// Merges several per-node / per-process traces (each already parsed from
/// jsonl) into one causally-ordered stream: sorted by timestamp, ties
/// broken by (node, seq) so each node's program order is preserved. Events
/// stay grouped across nodes by `trace_id` when set (a job that crossed the
/// altxd hop) and by `race_id` otherwise — the Perfetto rendering keys rows
/// on them. kRingOverflow markers are kept (a stitched view of a truncated
/// trace is still truncated).
[[nodiscard]] std::vector<Record> stitch_records(
    const std::vector<std::vector<Record>>& traces);

/// Dispatches on format name ("jsonl" or "chrome"); throws UsageError on an
/// unknown format.
void write_trace(const std::vector<Record>& records, std::ostream& out,
                 const std::string& format);

/// Reverse of to_string(EventKind); nullopt for unknown names.
[[nodiscard]] std::optional<EventKind> event_kind_from_string(
    const std::string& name);

/// Byproduct counters from parse_jsonl, for callers that must reason about
/// what a trace *didn't* say (e.g. --stitch refusing unmergeable inputs).
struct JsonlStats {
  std::size_t records = 0;
  /// Lines carrying neither "node" nor "seq": a schema-v1 (pre-stitching)
  /// trace. Parsing still succeeds — both default to 0 — but every record
  /// collapses onto the same (node, seq) tie-breaker, so such traces cannot
  /// be causally merged.
  std::size_t missing_node_seq = 0;
};

/// Reads a jsonl trace back. Unknown event kinds parse as kNone rather than
/// failing, so newer traces degrade gracefully in older readers; malformed
/// lines throw UsageError with the line number.
[[nodiscard]] std::vector<Record> parse_jsonl(std::istream& in);

/// Same, filling `stats` (may be nullptr) as a side channel.
[[nodiscard]] std::vector<Record> parse_jsonl(std::istream& in,
                                              JsonlStats* stats);

}  // namespace altx::obs
