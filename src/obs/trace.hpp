// Process-wide tracing facade: the one-branch-when-disabled event sites.
//
// Enablement is decided once, before main() runs (a static initializer in
// trace.cpp reads ALTX_TRACE / ALTX_METRICS), so the shared ring exists in
// the parent before any alt_spawn forks and every child inherits it. Event
// sites call obs::emit(...), whose entire disabled-path cost is one load of
// a non-atomic global bool and one predicted-not-taken branch — measured by
// bench_micro's BM_RealForkRace (< 2% is the budget, noise is the reality).
//
// Environment knobs:
//   ALTX_TRACE=<path>          enable tracing; export the trace here at exit
//   ALTX_TRACE_FORMAT=jsonl|chrome   export format (default jsonl)
//   ALTX_TRACE_BUF=<records>   ring capacity (default 65536)
//   ALTX_TRACE_RING=<path>     enable tracing with a file-backed ring that
//                              a live monitor (altx-top) can attach to
//   ALTX_NODE_ID=<n>           node id stamped into every record (default 0)
//   ALTX_METRICS=<path>        dump the metrics registry as JSON at exit
//   ALTX_METRICS_INTERVAL_MS=<ms>  also rewrite the ALTX_METRICS file
//                              periodically (live snapshots, atomic rename)
//
// Only the process that created the ring exports at exit: children leave
// through _exit (or a signal), which skips atexit — by design, their story
// is already in the shared ring.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace altx::obs {

class TraceRing;

namespace detail {
extern bool g_enabled;  // written only during single-threaded init paths
void emit_slow(EventKind kind, std::uint32_t race_id, std::int16_t child_index,
               std::uint64_t a, std::uint64_t b, std::uint64_t c) noexcept;
}  // namespace detail

/// True when any sink (trace file, metrics dump, or a test) is attached.
[[nodiscard]] inline bool enabled() noexcept { return detail::g_enabled; }

/// Records one event, stamped with CLOCK_MONOTONIC and getpid(). The
/// disabled path is a single predicted branch; never throws.
inline void emit(EventKind kind, std::uint32_t race_id,
                 std::int16_t child_index, std::uint64_t a = 0,
                 std::uint64_t b = 0, std::uint64_t c = 0) noexcept {
  if (!detail::g_enabled) [[likely]] return;
  detail::emit_slow(kind, race_id, child_index, a, b, c);
}

/// As emit(), but with a caller-supplied timestamp — the simulated-time
/// layers (sim, dist, consensus) stamp events with sim-time nanoseconds.
void emit_at(std::uint64_t t_ns, EventKind kind, std::uint32_t race_id,
             std::int16_t child_index, std::uint64_t a = 0, std::uint64_t b = 0,
             std::uint64_t c = 0) noexcept;

/// As emit_at(), additionally overriding the record's node id — the
/// distributed layers attribute each event to the simulated node it
/// happened on (coordinator, worker, arbiter) instead of this process's
/// ALTX_NODE_ID, so a stitched timeline separates nodes correctly.
void emit_at_node(std::uint64_t t_ns, std::uint32_t node_id, EventKind kind,
                  std::uint32_t race_id, std::int16_t child_index,
                  std::uint64_t a = 0, std::uint64_t b = 0,
                  std::uint64_t c = 0) noexcept;

/// A fresh block id, unique across every process sharing the ring.
/// Returns 0 (the "untraced" id) when tracing is disabled.
[[nodiscard]] std::uint32_t next_race_id() noexcept;

/// CLOCK_MONOTONIC in ns (0 when the clock is unavailable).
[[nodiscard]] std::uint64_t now_ns() noexcept;

/// The supervisor's retry ordinal, stamped into every subsequent record of
/// this process (children inherit the value through fork). 0 = first /
/// unsupervised attempt.
void set_attempt(std::uint32_t attempt) noexcept;
[[nodiscard]] std::uint32_t current_attempt() noexcept;

/// This process's node id (ALTX_NODE_ID at init; settable for tests and
/// embeddings). Stamped into every record emitted without an explicit node.
void set_node_id(std::uint32_t node_id) noexcept;
[[nodiscard]] std::uint32_t node_id() noexcept;

/// The race id of the block this process is currently a child of (set by
/// AltGroup::alt_spawn in the child after fork; 0 in the parent). Lets code
/// that runs *inside* an alternative — a hedged copy, user code — emit into
/// the enclosing block's timeline.
void set_current_race(std::uint32_t race_id) noexcept;
[[nodiscard]] std::uint32_t current_race() noexcept;

/// The ambient cross-process trace id (Record::trace_id, schema v3).
/// Minted at the client's race<T>()/server::race<T>() entry, carried over
/// the altxd job protocol, and set in the daemon worker before it runs the
/// job so every record the worker and its speculative children emit —
/// including a SIGKILLed loser's last gasp — lands under the client's
/// trace. Inherited through fork; 0 = no ambient trace. Unlike the other
/// ambient scopes this works even when tracing is disabled, because the id
/// must still travel the wire for the *daemon's* ring to be stitchable.
void set_current_trace(std::uint64_t trace_id) noexcept;
[[nodiscard]] std::uint64_t current_trace() noexcept;

/// A fresh, nonzero, probabilistically-unique 64-bit trace id (pid, clock,
/// and a per-process counter mixed). Works with tracing disabled — remote
/// submissions always carry a real id so the daemon side stays stitchable.
[[nodiscard]] std::uint64_t mint_trace_id() noexcept;

/// As emit(), but stamping an explicit trace id instead of the ambient one.
/// The daemon's poll loop interleaves many clients' jobs in one thread, so
/// its kSrv* events name their trace per call rather than per scope.
void emit_trace(std::uint64_t trace_id, EventKind kind, std::uint32_t race_id,
                std::int16_t child_index, std::uint64_t a = 0,
                std::uint64_t b = 0, std::uint64_t c = 0) noexcept;

/// Testing / embedding API ------------------------------------------------

/// Enables tracing with an in-memory ring only (no file export at exit).
/// Idempotent; replaces the active ring, so call before spawning children.
void enable_for_test(std::size_t capacity = 1 << 16);

/// Enables tracing with a file-backed ring at `path` — the programmatic
/// equivalent of ALTX_TRACE_RING for embeddings that decide after main()
/// starts (altxd --ring). Must run before any fork so children inherit the
/// mapping. Returns false when a ring already exists (the env var won; the
/// caller keeps that ring). Throws SystemError when the file cannot be
/// created.
bool attach_ring_file(const std::string& path,
                      std::size_t capacity = 1 << 16);

/// Registers a trace export (jsonl/chrome) of the active ring at process
/// exit — the programmatic equivalent of ALTX_TRACE=path. Idempotent per
/// process; the last path/format wins.
void set_export_on_exit(const std::string& path,
                        const std::string& format = "jsonl");

/// Everything published so far, claim-ordered. Empty when disabled.
[[nodiscard]] std::vector<Record> snapshot();

/// Records lost to ring exhaustion.
[[nodiscard]] std::uint64_t dropped();

/// Clears the ring and the attempt scope (test isolation). Only safe when
/// no children are alive.
void reset();

/// The active ring, or nullptr when tracing is disabled.
[[nodiscard]] TraceRing* ring() noexcept;

/// Exports the current ring contents to `path` in the given format
/// ("jsonl" or "chrome"); called automatically at exit when ALTX_TRACE is
/// set. When records were lost to ring exhaustion, a final kRingOverflow
/// record carrying the drop count is appended to the export (and the
/// `dropped_events` counter is set) so a truncated trace is detectable
/// instead of silently short. Throws SystemError when the file cannot be
/// written.
void export_to(const std::string& path, const std::string& format);

}  // namespace altx::obs
