// In-child sampling profiler: what was a speculative arm *doing* with the
// CPU it burned?
//
// The accounting layer (PR 3) bills every loser's CPU via wait4 rusage, and
// the governor (PR 6) kills over-budget arms — but neither can say what the
// wasted cycles were spent on. This profiler arms an ITIMER_PROF/SIGPROF
// sampler inside each speculative child right after fork; every tick walks
// the frame-pointer chain and compacts the backtrace into kProfSample
// records pushed straight into the fork-shared trace ring. Because the ring
// is MAP_SHARED and push() is async-signal-safe, samples from a child that
// is later SIGKILLed by elimination or the watchdog survive — the loser's
// profile is readable post-mortem, exactly like its fate and page census.
//
// Sample encoding (ring records are 64 bytes; a backtrace is not): each
// sample becomes ceil(n_frames / 2) kProfSample fragments. `a` and `b`
// carry two pc values each (0 = unused); `c` packs
// sample_id << 16 | fragment_index << 8 | total_fragments, so a reader
// reassembles fragments per (pid, sample_id) regardless of interleaving
// with other children's samples. A kProfMap record (per sampled process)
// carries the main executable's load base so pcs symbolize as exe+offset
// under ASLR; forked children share the parent's layout.
//
// Env knobs (read once before main, like ALTX_TRACE):
//   ALTX_PROF=1        arm the sampler in every speculative child
//   ALTX_PROF_HZ=<hz>  sample rate (default 997 — prime, avoids beating
//                      with millisecond-aligned work)
//
// Requires tracing (a ring) and frame pointers; the build compiles with
// -fno-omit-frame-pointer so the walk sees every altx frame. The disabled
// path of prof_arm_child is one predicted branch.
#pragma once

#include <cstdint>

namespace altx::obs {

namespace profdetail {
extern bool g_prof_enabled;  // written only during single-threaded init
void arm_child_slow(std::uint32_t race_id, int child_index) noexcept;
void prewarm_slow() noexcept;
}  // namespace profdetail

/// True when ALTX_PROF (or prof_enable) turned sampling on.
[[nodiscard]] inline bool prof_enabled() noexcept {
  return profdetail::g_prof_enabled;
}

/// The configured sample rate in Hz (0 when disabled).
[[nodiscard]] int prof_hz() noexcept;

/// Child side, right after fork (alt_group calls this next to
/// set_current_race): installs the SIGPROF handler and starts the CPU-time
/// interval timer. One predicted branch when disabled.
inline void prof_arm_child(std::uint32_t race_id, int child_index) noexcept {
  if (!profdetail::g_prof_enabled) [[likely]] return;
  profdetail::arm_child_slow(race_id, child_index);
}

/// Parent side, before the fork loop: caches this thread's stack bounds in
/// a thread_local the children inherit, so arming in the child skips the
/// /proc/self/maps read pthread_getattr_np costs on the main thread.
inline void prof_prewarm() noexcept {
  if (!profdetail::g_prof_enabled) [[likely]] return;
  profdetail::prewarm_slow();
}

/// Stops sampling in this process (used by tests between cases).
void prof_disarm() noexcept;

/// Testing / embedding: enables sampling at `hz` without the env knob.
/// Tracing must already be enabled (the samples need a ring).
void prof_enable(int hz = 997);

/// kProfSample `c` payload codec, shared with readers.
[[nodiscard]] constexpr std::uint64_t prof_pack_meta(
    std::uint32_t sample_id, std::uint8_t fragment,
    std::uint8_t total_fragments) noexcept {
  return (static_cast<std::uint64_t>(sample_id) << 16) |
         (static_cast<std::uint64_t>(fragment) << 8) | total_fragments;
}
[[nodiscard]] constexpr std::uint32_t prof_sample_id(std::uint64_t c) noexcept {
  return static_cast<std::uint32_t>(c >> 16);
}
[[nodiscard]] constexpr std::uint8_t prof_fragment(std::uint64_t c) noexcept {
  return static_cast<std::uint8_t>(c >> 8);
}
[[nodiscard]] constexpr std::uint8_t prof_total_fragments(
    std::uint64_t c) noexcept {
  return static_cast<std::uint8_t>(c);
}

}  // namespace altx::obs
