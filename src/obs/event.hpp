// The unified trace-event schema shared by every altx backend.
//
// The paper's argument is quantitative — §4 measures fork cost, COW copy
// rates, and which alternative wins — so the runtime must be able to say,
// after the fact, *why* a given alternative won, lost, arrived too late, or
// was retried. The simulator always could (sim::TraceEvent); this schema
// generalizes that stream so the real-process backend, the supervisor, the
// distributed layer, and the consensus protocol all speak it too.
//
// A Record is a fixed-size POD (64 bytes) so that it can live in a shared
// ring buffer written concurrently by forked children (see obs/ring.hpp):
// no pointers, no strings, no destructors — a child killed mid-run leaves
// at worst one torn slot, never a corrupted heap.
#pragma once

#include <cstdint>

namespace altx::obs {

/// What happened. Kinds are grouped by the layer that emits them; the
/// numeric values are part of the on-disk jsonl format, so append only.
enum class EventKind : std::uint16_t {
  kNone = 0,

  // Alternative-block lifecycle (posix::AltGroup / race / sim kernel).
  kRaceBegin = 1,     // a: number of alternatives, b: replicas
  kFork = 2,          // a: child pid, b: fork latency ns
  kGuardStart = 3,    // child side: alternative body begins
  kGuardResult = 4,   // child side: a: 1 = guard held, 0 = failed
  kCommitAttempt = 5, // child side: about to take the token
  kCommitWon = 6,     // child side: took the token (the winner)
  kTooLate = 7,       // child side: token already gone (section 3.2.1)
  kGuardFail = 8,     // child side: aborting without synchronization
  kChildFate = 9,     // parent side, at reap: a: ChildFate, b: signal,
                      //   c: raw exit code (u64-encoded)
  kRaceDecided = 10,  // parent side: a: WaitVerdict, b: winner index (0 =
                      //   none), c: pages absorbed
  kEliminated = 11,   // (sim) a loser was physically terminated

  // Speculation-efficiency accounting (posix::AltGroup).
  kChildUsage = 12,   // parent side, at reap: a: CPU ns (user+sys, wait4
                      //   rusage), b: maxrss KiB, c: minor<<32 | major faults
  kChildPages = 13,   // child side, before its sync point: a: dirty pages in
                      //   the AltHeap, b: dirty bytes
  kSpecReport = 14,   // parent side, all children reaped: a: wasted CPU ns
                      //   (losers), b: discarded pages, c: winner CPU ns
  kRingOverflow = 15, // synthesized at export when the ring dropped records:
                      //   a: records dropped

  // Supervision spans (posix::supervised_race).
  kAttemptBegin = 16, // a: attempt number (0-based), b: timeout ms
  kAttemptEnd = 17,   // a: attempt number, b: AttemptOutcome
  kBackoff = 18,      // a: attempt number about to run, b: backoff ms
  kSequentialFallback = 19,

  // Resource governance (posix::SpeculationGovernor). Numbered around the
  // pre-existing kHedgeWake = 24 — kinds are append-only, not contiguous.
  kGovAdmitWait = 20, // a: tokens requested, b: in flight, c: effective budget
  kGovAdmit = 21,     // a: tokens granted, b: in flight after, c: waited ns
  kGovDeny = 22,      // a: tokens requested, b: waited ns
  kGovKill = 23,      // watchdog: a: pid, b: reason (0 wall, 1 cpu, 2 shed),
                      //   c: stage (0 = SIGTERM, 1 = SIGKILL)

  // Hedging (posix::hedged).
  kHedgeWake = 24,    // child side: a: copy index, after its stagger sleep

  // Resource governance, continued.
  kGovBudget = 25,    // a: new effective budget, b: base budget,
                      //   c: pressure stall pct x100
  kGovDegrade = 26,   // supervisor: admission denied, running serialized;
                      //   a: alternatives
  kGovOverdraft = 27, // single-token liveness overdraft; a: in flight after

  // Phase spans + sampling profiles (obs/phase.hpp, obs/profile.hpp).
  kPhaseBegin = 28,   // a: Phase id (obs::Phase); child_index 0 = parent span
  kPhaseEnd = 29,     // a: Phase id, b: span duration ns (self-contained, so
                      //   a SIGKILL between begin and end truncates cleanly)
  kProfSample = 30,   // child side, SIGPROF handler: one backtrace fragment.
                      //   a, b: two pc values (0 = unused), c: sample_id<<16
                      //   | fragment_index<<8 | total_fragments
  kProfMap = 31,      // a: main executable load base (dl_iterate_phdr) so
                      //   sample pcs symbolize as exe+offset post-ASLR

  // Conjunction (posix::await_all).
  kAwaitBegin = 32,   // a: task count
  kAwaitTaskDone = 33,// child side: a: 1 = produced a value, 0 = failed
  kAwaitDecided = 34, // parent side: a: 1 = all collected, 0 = failed

  // The altxd speculation server (src/server). `a` carries the client id
  // (the daemon's connection ordinal) where noted; job ids are the
  // client-chosen per-connection ids from the frame header.
  kSrvConnect = 35,   // a: client id, b: 1 = tcp, 0 = unix
  kSrvSubmit = 36,    // a: client id, b: job id, c: alternatives in the job
  kSrvDeny = 37,      // a: client id, b: job id, c: retry-after ms
  kSrvAssign = 38,    // a: job id, b: worker pid, c: queue wait ns
  kSrvResult = 39,    // a: job id, b: JobStatus, c: worker exec ns
  kSrvCancel = 40,    // a: job id, b: 1 = was running (cohort torn down)
  kSrvClientGone = 41,// a: client id, b: queued jobs dropped, c: running reaped
  kSrvWorkerSpawn = 42, // a: worker pid, b: spawn latency ns, c: 1 = respawn
  kSrvWorkerExit = 43,  // a: worker pid, b: 1 = forced (killed), 0 = clean
  kSrvShutdown = 44,    // a: in-flight jobs reaped, b: workers torn down

  // Prediction-driven speculation budgeting (posix::SpeculationPlanner).
  kPredPlan = 45,     // parent side, after spawn: a: arms launched now,
                      //   b: arms hedged (staged), c: arms skipped
  kPredStage = 46,    // child side: a staged arm woke after its deferral
                      //   sleep; a: stage delay ns, b: the arm's own
                      //   predicted wall ns (0 = no history)
  kPredKill = 47,     // watchdog: arm overran its historical kill quantile;
                      //   a: pid, b: predicted kill quantile ns,
                      //   c: stage (0 = SIGTERM, 1 = SIGKILL)

  // Distributed block (dist::DistributedBlock; timestamps are sim time).
  kDistSpawn = 48,    // a: alternative index, b: checkpoint bytes
  kDistAbort = 49,    // a: alternative index (guard failed remotely)
  kDistResult = 50,   // a: alternative index (result reached coordinator)
  kDistKill = 51,     // a: alternative index (elimination message sent)
  kDistDecided = 52,  // a: 1 = committed, 0 = failed; b: winner index

  // Majority-consensus semaphore (consensus::MajoritySync; sim time).
  kVoteGrant = 64,    // a: candidate id, b: arbiter node
  kVoteReject = 65,   // a: candidate id, b: arbiter node
  kSyncDecided = 66,  // a: candidate id, b: 1 = won, c: rounds used

  // Simulator events with no direct generalized counterpart keep their
  // original sim::TraceEvent::Kind in `a` (see obs/sim_bridge.hpp).
  kSimEvent = 80,
};

[[nodiscard]] const char* to_string(EventKind kind);

/// One trace record. `race_id` groups every event of one alternative block
/// (a fresh id per AltGroup / await_all / DistributedBlock); `attempt` is
/// the supervisor's retry ordinal (0 when unsupervised); `child_index` is
/// the 1-based alternative number (0 for the parent/coordinator).
///
/// Cross-ring stitching fields: `node_id` names the node the event happened
/// on (ALTX_NODE_ID for real processes, the sim NodeId for the distributed
/// layers) and `seq` is the ring's claim ticket — monotonic across every
/// process sharing one ring, so program order within a node survives the
/// merge of several per-node trace files (altx-trace --stitch).
///
/// `trace_id` (schema v3) is the cross-process correlation id: minted once
/// at the client's race<T>()/server::race<T>() call, carried over the altxd
/// job protocol, and stamped into every record the daemon, its workers, and
/// their speculative grandchildren emit for that job. 0 = untraced (a local
/// race that never crossed a socket). Unlike race_id — which is a per-ring
/// counter and collides across stitched rings — trace_id is globally unique,
/// so it is the grouping key for cross-hop views.
struct Record {
  std::uint64_t t_ns = 0;      // CLOCK_MONOTONIC ns (sim time ns for sim/dist)
  std::uint64_t seq = 0;       // ring claim ticket, stamped by push()
  std::uint32_t race_id = 0;
  std::uint32_t attempt = 0;
  std::int32_t pid = 0;
  std::uint32_t node_id = 0;
  std::int16_t child_index = 0;
  EventKind kind = EventKind::kNone;
  std::uint32_t reserved = 0;  // keeps the a/b/c payload 8-byte aligned
  std::uint64_t a = 0;  // kind-specific, documented per kind above
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint64_t trace_id = 0;  // schema v3: cross-process correlation id
};

static_assert(sizeof(Record) == 72, "Record is part of the shared-ring ABI");

/// Terminal fates a child can reach, as recorded in kChildFate / kTooLate /
/// kGuardFail events. True when `kind` closes a child's story.
[[nodiscard]] bool is_terminal_fate(EventKind kind);

}  // namespace altx::obs
