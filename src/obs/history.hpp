// Persistent per-arm runtime histories: the feedback store for
// prediction-driven speculation budgeting (ROADMAP item 2).
//
// Keyed by (block site id, arm index), each entry accumulates EWMA and a
// power-of-two-bucket quantile sketch of the arm's wall time, its CPU
// bill, and its success (committed) rate. race<T>() records one sample per
// reaped child when RaceOptions.site_id is set; a CBS-style controller
// reads the quantiles back to decide which arms are worth launching and
// when an arm has overrun its predicted quantile.
//
// The table lives in a MAP_SHARED anonymous arena, so entries written
// right up to a crash are still in the mapping when the snapshotter runs;
// persistence is a tmp+rename binary snapshot (crash-safe: a reader/loader
// never sees a half-written file), loaded back at startup. Fixed capacity,
// open addressing, no rehash — the arena never grows or moves, so a
// pointer into it stays valid for the process lifetime.
//
// Env knobs (read once before main):
//   ALTX_HISTORY=<path>         enable; load <path> at startup, snapshot at
//                               exit (and periodically, if asked)
//   ALTX_HISTORY_CAP=<entries>  table capacity (default 1024)
//   ALTX_HISTORY_SNAPSHOT_MS=<ms>  also snapshot every <ms> (tmp+rename)
//   ALTX_HISTORY_ALPHA=<0..1>   EWMA smoothing factor (default 0.2)
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace altx::obs {

/// Compile-time site ids: hash of file:line (FNV-1a), stable across runs of
/// the same source. Use ALTX_SITE() at the race call site.
[[nodiscard]] constexpr std::uint64_t site_hash(const char* file,
                                                int line) noexcept {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char* p = file; *p != '\0'; ++p) {
    h = (h ^ static_cast<std::uint64_t>(*p)) * 1099511628211ULL;
  }
  h = (h ^ static_cast<std::uint64_t>(line)) * 1099511628211ULL;
  return h == 0 ? 1 : h;  // 0 means "no site"
}

#define ALTX_SITE() (::altx::obs::site_hash(__FILE__, __LINE__))

/// One (site, arm) accumulator. POD — lives in the shared arena and is
/// written byte-for-byte into snapshots.
struct ArmStats {
  static constexpr int kBuckets = 48;  // 2^48 ns ≈ 3.3 days, plenty

  std::uint64_t site = 0;  // 0 = slot empty
  std::uint32_t arm = 0;   // 1-based alternative index
  std::uint32_t total = 0;
  std::uint32_t successes = 0;  // fate == committed
  std::uint32_t pad_ = 0;
  double ewma_wall_ns = 0.0;
  double ewma_cpu_ns = 0.0;
  std::uint64_t min_wall_ns = 0;
  std::uint64_t max_wall_ns = 0;
  std::uint32_t wall_buckets[kBuckets] = {};

  [[nodiscard]] double success_rate() const noexcept {
    return total == 0 ? 0.0 : static_cast<double>(successes) / total;
  }

  /// Rank-interpolated wall-time quantile, q in [0, 1]. Same
  /// within-bucket linear interpolation as obs::Histogram::percentile, so
  /// a p99 is no longer pinned to the bucket's upper bound.
  [[nodiscard]] std::uint64_t wall_quantile(double q) const noexcept;
};

class HistoryStore {
 public:
  static constexpr std::uint32_t kMagic = 0x58484c41;  // "ALHX"
  static constexpr std::uint32_t kVersion = 1;
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit HistoryStore(std::size_t capacity = kDefaultCapacity);
  ~HistoryStore();

  HistoryStore(const HistoryStore&) = delete;
  HistoryStore& operator=(const HistoryStore&) = delete;

  /// Folds one reaped arm into its entry. Thread-safe; silently drops the
  /// sample when the table is full (capped stores must not abort races).
  void record(std::uint64_t site, std::uint32_t arm, std::uint64_t wall_ns,
              std::uint64_t cpu_ns, bool success) noexcept;

  /// The entry, or nullptr when this (site, arm) was never recorded. The
  /// pointer stays valid for the store's lifetime (arena never moves); the
  /// fields keep updating as samples arrive.
  [[nodiscard]] const ArmStats* find(std::uint64_t site,
                                     std::uint32_t arm) const noexcept;

  /// Every recorded arm of one site, ordered by arm index.
  [[nodiscard]] std::vector<const ArmStats*> arms(std::uint64_t site) const;

  /// Convenience for the controller: the wall-time quantile, or 0 when the
  /// arm has no history yet (callers treat 0 as "no prediction").
  [[nodiscard]] std::uint64_t quantile(std::uint64_t site, std::uint32_t arm,
                                       double q) const noexcept;

  [[nodiscard]] std::size_t size() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] std::uint64_t samples_dropped() const noexcept;

  /// Binary snapshot via <path>.tmp + rename. False (with errno intact) on
  /// I/O failure.
  bool save(const std::string& path) const noexcept;

  /// Merges a snapshot file into the table (occupied entries replace /
  /// fill slots). False when the file is absent or not a valid snapshot —
  /// a fresh store is the fallback, never an exception.
  bool load(const std::string& path) noexcept;

  /// EWMA smoothing factor (shared by every entry of this store).
  void set_alpha(double alpha) noexcept;
  [[nodiscard]] double alpha() const noexcept;

  /// The env-configured process store; nullptr when ALTX_HISTORY is unset
  /// and no test enabled one.
  static HistoryStore* global() noexcept;

 private:
  struct Arena;
  ArmStats* slot_for(std::uint64_t site, std::uint32_t arm,
                     bool insert) noexcept;

  Arena* arena_ = nullptr;
  std::size_t capacity_ = 0;
};

/// Shorthand for HistoryStore::global().
[[nodiscard]] inline HistoryStore* history() noexcept {
  return HistoryStore::global();
}

/// Testing / embedding: installs a fresh global store (replacing any prior
/// one) without touching the environment.
HistoryStore* history_enable_for_test(std::size_t capacity = 256);
void history_disable_for_test() noexcept;

}  // namespace altx::obs
