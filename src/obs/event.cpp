#include "obs/event.hpp"

namespace altx::obs {

const char* to_string(EventKind kind) {
  switch (kind) {
    case EventKind::kNone: return "none";
    case EventKind::kRaceBegin: return "race_begin";
    case EventKind::kFork: return "fork";
    case EventKind::kGuardStart: return "guard_start";
    case EventKind::kGuardResult: return "guard_result";
    case EventKind::kCommitAttempt: return "commit_attempt";
    case EventKind::kCommitWon: return "commit_won";
    case EventKind::kTooLate: return "too_late";
    case EventKind::kGuardFail: return "guard_fail";
    case EventKind::kChildFate: return "child_fate";
    case EventKind::kRaceDecided: return "race_decided";
    case EventKind::kEliminated: return "eliminated";
    case EventKind::kChildUsage: return "child_usage";
    case EventKind::kChildPages: return "child_pages";
    case EventKind::kSpecReport: return "spec_report";
    case EventKind::kRingOverflow: return "ring_overflow";
    case EventKind::kAttemptBegin: return "attempt_begin";
    case EventKind::kAttemptEnd: return "attempt_end";
    case EventKind::kBackoff: return "backoff";
    case EventKind::kSequentialFallback: return "sequential_fallback";
    case EventKind::kGovAdmitWait: return "gov_admit_wait";
    case EventKind::kGovAdmit: return "gov_admit";
    case EventKind::kGovDeny: return "gov_deny";
    case EventKind::kGovKill: return "gov_kill";
    case EventKind::kGovBudget: return "gov_budget";
    case EventKind::kGovDegrade: return "gov_degrade";
    case EventKind::kGovOverdraft: return "gov_overdraft";
    case EventKind::kPhaseBegin: return "phase_begin";
    case EventKind::kPhaseEnd: return "phase_end";
    case EventKind::kProfSample: return "prof_sample";
    case EventKind::kProfMap: return "prof_map";
    case EventKind::kHedgeWake: return "hedge_wake";
    case EventKind::kAwaitBegin: return "await_begin";
    case EventKind::kAwaitTaskDone: return "await_task_done";
    case EventKind::kAwaitDecided: return "await_decided";
    case EventKind::kSrvConnect: return "srv_connect";
    case EventKind::kSrvSubmit: return "srv_submit";
    case EventKind::kSrvDeny: return "srv_deny";
    case EventKind::kSrvAssign: return "srv_assign";
    case EventKind::kSrvResult: return "srv_result";
    case EventKind::kSrvCancel: return "srv_cancel";
    case EventKind::kSrvClientGone: return "srv_client_gone";
    case EventKind::kSrvWorkerSpawn: return "srv_worker_spawn";
    case EventKind::kSrvWorkerExit: return "srv_worker_exit";
    case EventKind::kSrvShutdown: return "srv_shutdown";
    case EventKind::kPredPlan: return "pred_plan";
    case EventKind::kPredStage: return "pred_stage";
    case EventKind::kPredKill: return "pred_kill";
    case EventKind::kDistSpawn: return "dist_spawn";
    case EventKind::kDistAbort: return "dist_abort";
    case EventKind::kDistResult: return "dist_result";
    case EventKind::kDistKill: return "dist_kill";
    case EventKind::kDistDecided: return "dist_decided";
    case EventKind::kVoteGrant: return "vote_grant";
    case EventKind::kVoteReject: return "vote_reject";
    case EventKind::kSyncDecided: return "sync_decided";
    case EventKind::kSimEvent: return "sim_event";
  }
  return "?";
}

bool is_terminal_fate(EventKind kind) {
  // kChildFate is the parent's post-mortem verdict — the authoritative
  // terminal event; the child-side kinds are the child's own last words.
  return kind == EventKind::kChildFate;
}

}  // namespace altx::obs
