#include "obs/export.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <istream>
#include <map>
#include <ostream>
#include <utility>

#include "common/error.hpp"

namespace altx::obs {

namespace {

/// Every kind whose to_string name a reader must recognize.
constexpr EventKind kAllKinds[] = {
    EventKind::kNone,          EventKind::kRaceBegin,
    EventKind::kFork,          EventKind::kGuardStart,
    EventKind::kGuardResult,   EventKind::kCommitAttempt,
    EventKind::kCommitWon,     EventKind::kTooLate,
    EventKind::kGuardFail,     EventKind::kChildFate,
    EventKind::kRaceDecided,   EventKind::kEliminated,
    EventKind::kChildUsage,    EventKind::kChildPages,
    EventKind::kSpecReport,    EventKind::kRingOverflow,
    EventKind::kAttemptBegin,  EventKind::kAttemptEnd,
    EventKind::kBackoff,       EventKind::kSequentialFallback,
    EventKind::kGovAdmitWait,  EventKind::kGovAdmit,
    EventKind::kGovDeny,       EventKind::kGovKill,
    EventKind::kGovBudget,     EventKind::kGovDegrade,
    EventKind::kGovOverdraft,  EventKind::kPhaseBegin,
    EventKind::kPhaseEnd,      EventKind::kProfSample,
    EventKind::kProfMap,
    EventKind::kHedgeWake,     EventKind::kAwaitBegin,
    EventKind::kAwaitTaskDone, EventKind::kAwaitDecided,
    EventKind::kSrvConnect,    EventKind::kSrvSubmit,
    EventKind::kSrvDeny,       EventKind::kSrvAssign,
    EventKind::kSrvResult,     EventKind::kSrvCancel,
    EventKind::kSrvClientGone, EventKind::kSrvWorkerSpawn,
    EventKind::kSrvWorkerExit, EventKind::kSrvShutdown,
    EventKind::kPredPlan,      EventKind::kPredStage,
    EventKind::kPredKill,
    EventKind::kDistSpawn,     EventKind::kDistAbort,
    EventKind::kDistResult,    EventKind::kDistKill,
    EventKind::kDistDecided,   EventKind::kVoteGrant,
    EventKind::kVoteReject,    EventKind::kSyncDecided,
    EventKind::kSimEvent,
};

void format_jsonl_line(const Record& r, char* buf, std::size_t n) {
  std::snprintf(buf, n,
                "{\"t_ns\":%" PRIu64 ",\"kind\":\"%s\",\"race\":%" PRIu32
                ",\"attempt\":%" PRIu32 ",\"pid\":%" PRId32
                ",\"node\":%" PRIu32 ",\"seq\":%" PRIu64
                ",\"child\":%d,\"a\":%" PRIu64 ",\"b\":%" PRIu64
                ",\"c\":%" PRIu64 ",\"trace\":%" PRIu64 "}",
                r.t_ns, to_string(r.kind), r.race_id, r.attempt, r.pid,
                r.node_id, r.seq, static_cast<int>(r.child_index), r.a, r.b,
                r.c, r.trace_id);
}

/// Extracts the numeric value following `"key":` on the line; nullopt when
/// the key is absent. Values are at most u64; callers narrow as needed.
std::optional<std::uint64_t> field_u64(const std::string& line,
                                       const std::string& key, bool* neg) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  std::size_t i = pos + needle.size();
  bool negative = false;
  if (i < line.size() && line[i] == '-') {
    negative = true;
    ++i;
  }
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return std::nullopt;
  std::uint64_t v = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    v = v * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  if (neg != nullptr) *neg = negative;
  return v;
}

std::optional<std::string> field_string(const std::string& line,
                                        const std::string& key) {
  const std::string needle = "\"" + key + "\":\"";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return std::nullopt;
  const std::size_t start = pos + needle.size();
  const auto end = line.find('"', start);
  if (end == std::string::npos) return std::nullopt;
  return line.substr(start, end - start);
}

}  // namespace

void write_jsonl(const std::vector<Record>& records, std::ostream& out) {
  char buf[320];
  for (const Record& r : records) {
    format_jsonl_line(r, buf, sizeof buf);
    out << buf << '\n';
  }
}

namespace {

/// Perfetto "thread" row for a record: participants of the same block on
/// different nodes must not collapse onto one row, so the node id selects a
/// per-node band. Node 0 keeps the bare child index (single-node traces
/// render exactly as before).
int chrome_tid(const Record& r) {
  return static_cast<int>(r.node_id) * 1000 + static_cast<int>(r.child_index);
}

}  // namespace

void write_chrome(const std::vector<Record>& records, std::ostream& out) {
  out << "{\"traceEvents\":[";
  char buf[448];
  bool first = true;
  // A cross-process job's records share a trace_id but *not* a race_id (the
  // client's race counter and the daemon's are unrelated), so traced records
  // group under a compact per-trace "process" instead of their race id.
  // Offset past the race-id band so the two keyspaces cannot collide.
  constexpr std::uint32_t kTracePidBase = 1u << 30;
  std::map<std::uint64_t, std::uint32_t> trace_pids;
  for (const Record& r : records) {
    if (r.trace_id != 0) {
      trace_pids.try_emplace(
          r.trace_id, kTracePidBase +
                          static_cast<std::uint32_t>(trace_pids.size()));
    }
  }
  const auto chrome_pid = [&](const Record& r) {
    if (r.trace_id == 0) return r.race_id;
    return trace_pids.at(r.trace_id);
  };
  // Name each trace's process row by the full 64-bit id so the Perfetto
  // track is greppable back to the jsonl.
  for (const auto& [tid64, pid] : trace_pids) {
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                  ",\"args\":{\"name\":\"trace %016" PRIx64 "\"}}",
                  first ? "" : ",", pid, tid64);
    out << buf;
    first = false;
  }
  // Name the per-node thread rows once, so a stitched multi-node timeline
  // reads "node 3 #2" instead of a bare synthetic tid.
  std::map<std::pair<std::uint32_t, int>, const Record*> rows;
  for (const Record& r : records) {
    if (r.node_id != 0) rows.try_emplace({chrome_pid(r), chrome_tid(r)}, &r);
  }
  for (const auto& [key, r] : rows) {
    std::snprintf(buf, sizeof buf,
                  "%s\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%" PRIu32
                  ",\"tid\":%d,\"args\":{\"name\":\"node %" PRIu32 " #%d\"}}",
                  first ? "" : ",", key.first, key.second, r->node_id,
                  static_cast<int>(r->child_index));
    out << buf;
    first = false;
  }
  for (const Record& r : records) {
    // Supervisor attempts become duration spans; everything else instants.
    const char* ph = "i";
    const char* name = to_string(r.kind);
    if (r.kind == EventKind::kAttemptBegin) {
      ph = "B";
      name = "attempt";
    } else if (r.kind == EventKind::kAttemptEnd) {
      ph = "E";
      name = "attempt";
    }
    // Perfetto groups rows by (pid, tid): one "process" per alternative
    // block (pid = the race id, or the compact trace id when the block
    // crossed the altxd hop), one "thread" per (node, participant).
    std::snprintf(
        buf, sizeof buf,
        "%s\n{\"name\":\"%s\",\"ph\":\"%s\",%s\"ts\":%.3f,\"pid\":%" PRIu32
        ",\"tid\":%d,\"args\":{\"os_pid\":%" PRId32 ",\"node\":%" PRIu32
        ",\"attempt\":%" PRIu32 ",\"race\":%" PRIu32 ",\"trace\":%" PRIu64
        ",\"a\":%" PRIu64 ",\"b\":%" PRIu64 ",\"c\":%" PRIu64 "}}",
        first ? "" : ",", name, ph,
        ph[0] == 'i' ? "\"s\":\"t\"," : "",  // instant scope: per thread
        static_cast<double>(r.t_ns) / 1000.0, chrome_pid(r), chrome_tid(r),
        r.pid, r.node_id, r.attempt, r.race_id, r.trace_id, r.a, r.b, r.c);
    out << buf;
    first = false;
  }
  out << "\n]}\n";
}

std::vector<Record> stitch_records(
    const std::vector<std::vector<Record>>& traces) {
  std::vector<Record> all;
  std::size_t total = 0;
  for (const auto& t : traces) total += t.size();
  all.reserve(total);
  for (const auto& t : traces) all.insert(all.end(), t.begin(), t.end());
  // Causal order: the shared clock first (sim time is one clock across
  // nodes; CLOCK_MONOTONIC is one clock across processes of one machine),
  // then each node's own program order as the tie-breaker.
  std::stable_sort(all.begin(), all.end(),
                   [](const Record& x, const Record& y) {
                     if (x.t_ns != y.t_ns) return x.t_ns < y.t_ns;
                     if (x.node_id != y.node_id) return x.node_id < y.node_id;
                     return x.seq < y.seq;
                   });
  return all;
}

void write_trace(const std::vector<Record>& records, std::ostream& out,
                 const std::string& format) {
  if (format == "jsonl" || format.empty()) {
    write_jsonl(records, out);
  } else if (format == "chrome") {
    write_chrome(records, out);
  } else {
    throw UsageError("unknown trace format '" + format +
                     "' (expected jsonl or chrome)");
  }
}

std::optional<EventKind> event_kind_from_string(const std::string& name) {
  static const std::map<std::string, EventKind> table = [] {
    std::map<std::string, EventKind> t;
    for (EventKind k : kAllKinds) t.emplace(to_string(k), k);
    return t;
  }();
  const auto it = table.find(name);
  if (it == table.end()) return std::nullopt;
  return it->second;
}

std::vector<Record> parse_jsonl(std::istream& in) {
  return parse_jsonl(in, nullptr);
}

std::vector<Record> parse_jsonl(std::istream& in, JsonlStats* stats) {
  std::vector<Record> out;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    Record r;
    const auto t = field_u64(line, "t_ns", nullptr);
    const auto kind = field_string(line, "kind");
    const auto race = field_u64(line, "race", nullptr);
    if (!t.has_value() || !kind.has_value() || !race.has_value()) {
      throw UsageError("trace line " + std::to_string(lineno) +
                       ": not an altx jsonl record");
    }
    r.t_ns = *t;
    r.kind = event_kind_from_string(*kind).value_or(EventKind::kNone);
    r.race_id = static_cast<std::uint32_t>(*race);
    r.attempt = static_cast<std::uint32_t>(
        field_u64(line, "attempt", nullptr).value_or(0));
    // node/seq are absent from pre-stitching traces; 0 is their old meaning.
    const auto node = field_u64(line, "node", nullptr);
    const auto seq = field_u64(line, "seq", nullptr);
    if (stats != nullptr) {
      ++stats->records;
      if (!node.has_value() && !seq.has_value()) ++stats->missing_node_seq;
    }
    r.node_id = static_cast<std::uint32_t>(node.value_or(0));
    r.seq = seq.value_or(0);
    bool pid_neg = false;
    const std::uint64_t pid = field_u64(line, "pid", &pid_neg).value_or(0);
    r.pid = static_cast<std::int32_t>(pid) * (pid_neg ? -1 : 1);
    bool child_neg = false;
    const std::uint64_t child =
        field_u64(line, "child", &child_neg).value_or(0);
    r.child_index = static_cast<std::int16_t>(child) * (child_neg ? -1 : 1);
    r.a = field_u64(line, "a", nullptr).value_or(0);
    r.b = field_u64(line, "b", nullptr).value_or(0);
    r.c = field_u64(line, "c", nullptr).value_or(0);
    // Absent from pre-v3 traces; 0 ("untraced") is exactly their meaning.
    r.trace_id = field_u64(line, "trace", nullptr).value_or(0);
    out.push_back(r);
  }
  return out;
}

}  // namespace altx::obs
