// Counters and histograms for the hot numbers the paper measures.
//
// The trace ring answers "what happened to race #17"; the metrics registry
// answers "what does fork cost on this machine, at p95, over the whole
// run". Counters are monotonic; histograms bucket by powers of two (ns
// resolution spans 1 ns .. ~¼ hour in 62 buckets), which gives percentile
// estimates within a factor-of-two bucket width at constant memory and an
// O(1), allocation-free record().
//
// The registry is process-local: a forked child's updates die with it, by
// design — cross-process truth lives in the trace ring, and the parent owns
// every number reported here (fork latency, decide latency, retries,
// too-late losses, pages absorbed are all parent-side observations).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace altx::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Histogram {
 public:
  static constexpr int kBuckets = 62;  // bucket i holds values < 2^(i+1)

  void record(std::uint64_t v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t min() const noexcept;  // 0 when empty
  [[nodiscard]] std::uint64_t max() const noexcept;
  [[nodiscard]] double mean() const noexcept;

  /// Upper bound of the bucket holding the p-th percentile, p in [0, 100].
  /// Exact to within the bucket's factor-of-two width; 0 when empty.
  [[nodiscard]] std::uint64_t percentile(double p) const noexcept;

  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;

 private:
  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ULL};
  std::atomic<std::uint64_t> max_{0};
};

/// Named metrics, created on first use and stable thereafter (references
/// returned by counter()/histogram() never dangle or move).
class MetricsRegistry {
 public:
  Counter& counter(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters": {...}, "histograms": {name: {count, sum, min, max, mean,
  ///  p50, p95, p99}}} — the ALTX_METRICS dump format.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition (v0.0.4): every counter as
  /// `<prefix><name>_total`, every histogram as cumulative
  /// `<prefix><name>_bucket{le="..."}` rows plus `_sum` and `_count`. The
  /// power-of-two buckets are exported exactly: values are integers, so
  /// bucket i ([2^i, 2^(i+1))) becomes le="2^(i+1)-1"; empty tail buckets
  /// are elided. Names must already be exposition-safe ([a-z0-9_]).
  [[nodiscard]] std::string to_prometheus(
      const std::string& prefix = "altx_") const;

  void reset();  // testing: drop every metric

  static MetricsRegistry& global();

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace altx::obs
