// A crash-surviving, lock-free MPSC trace buffer shared across fork().
//
// The problem: a forked alternative's story (guard started, guard held,
// commit attempted, token taken / too late) ends with _exit or SIGKILL, so
// anything buffered in the child's private memory dies with it. Like
// lktrace's per-event logs of POSIX synchronization, we want the log to be
// reconstructable post-mortem — so the log lives in a MAP_SHARED mapping
// created by the parent *before* alt_spawn and inherited by every child.
// A write is two atomic operations and a 72-byte copy; a child killed
// between them leaves one unpublished slot, which the reader skips.
//
// Design: a bounded arena with monotonically increasing tickets rather than
// a wrapping queue. Producers claim a slot with fetch_add; when the arena
// is full, further records are counted in `dropped` and lost (newest-loses
// policy — the earliest events of a race are the ones that explain it, and
// a terminal fate is emitted once per child, early enough to fit). This
// keeps every slot single-writer, which is what makes torn records from
// SIGKILLed children detectable instead of corrupting neighbours: a slot is
// visible only after its `ready` flag is store-released. The claim ticket
// is stamped into the record as `seq`, giving every event a cross-process
// monotonic sequence number for trace stitching.
//
// The header also hosts the cross-process race-id and attempt counters, so
// ids stay unique even when nested constructs fork concurrently.
//
// Backing: anonymous by default (fork inheritance is the only reader), or a
// file (ALTX_TRACE_RING=<path>) so an unrelated process — altx-top — can
// map the same pages and watch races land live. The header starts with a
// magic + version so an attaching reader can validate what it mapped.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <vector>

#include "obs/event.hpp"

namespace altx::obs {

/// Shared-mapping layout, common to the owning TraceRing and an attached
/// TraceRingReader. Lives at offset 0 of the mapping, slots follow.
struct RingHeader {
  static constexpr std::uint32_t kMagic = 0x414c5458;  // "ALTX"
  static constexpr std::uint32_t kVersion = 4;  // + Record::trace_id (v3 schema)

  std::uint32_t magic = 0;
  std::uint32_t version = 0;
  std::uint64_t capacity = 0;          // slots; fixed at creation
  std::atomic<std::uint64_t> head;     // next ticket to claim
  std::atomic<std::uint64_t> dropped;
  std::atomic<std::uint32_t> next_race_id;
  // Who made this ring and when (CLOCK_REALTIME ns), so an attaching
  // monitor can tell several daemons' rings apart and show uptime.
  std::uint32_t creator_pid = 0;
  std::uint64_t created_unix_ns = 0;
};

struct RingSlot {
  std::atomic<std::uint32_t> ready;  // 0 = unpublished, 1 = published
  Record rec;
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  // records

  /// Creates the shared mapping. Must happen in the process that will fork
  /// (fork inheritance is the only way children reach the same pages).
  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  /// As above, but file-backed at `path` (created/truncated), so processes
  /// outside the fork tree — altx-top — can attach read-only. Throws
  /// SystemError when the file cannot be created or mapped.
  TraceRing(const std::string& path, std::size_t capacity);

  ~TraceRing();

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Lock-free, async-signal-safe, callable from any process sharing the
  /// mapping. Copies `rec` into the next free slot with its claim ticket
  /// stamped as `seq`; drops it (and counts the drop) when the arena is
  /// full.
  void push(const Record& rec) noexcept;

  /// Fresh cross-process-unique ids.
  std::uint32_t next_race_id() noexcept;

  /// Reader side (parent, post-mortem): every published record, in write
  /// order (claim order; sort by t_ns for a timeline). Slots claimed but
  /// never published — a child died mid-write — are skipped.
  [[nodiscard]] std::vector<Record> snapshot() const;

  /// Records lost to arena exhaustion.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Records published so far (excludes drops and torn slots).
  [[nodiscard]] std::uint64_t published() const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Testing aid: forget everything. Only safe with no live children.
  void reset() noexcept;

 private:
  void map_and_init(int fd, std::size_t capacity);

  RingHeader* header_ = nullptr;
  RingSlot* slots_ = nullptr;
  std::size_t capacity_ = 0;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
};

/// Read-only attachment to a file-backed TraceRing created by another,
/// possibly still-running, process. altx-top's side of the live monitor:
/// maps the file, validates magic/version, and snapshots on demand. The
/// writer may be appending concurrently — a snapshot sees every record
/// published before it started and skips slots still being written.
class TraceRingReader {
 public:
  /// Throws SystemError when the file cannot be opened/mapped and
  /// UsageError when it is not a version-compatible altx ring.
  explicit TraceRingReader(const std::string& path);
  ~TraceRingReader();

  TraceRingReader(const TraceRingReader&) = delete;
  TraceRingReader& operator=(const TraceRingReader&) = delete;

  [[nodiscard]] std::vector<Record> snapshot() const;
  [[nodiscard]] std::uint64_t dropped() const noexcept;
  [[nodiscard]] std::uint64_t published() const noexcept;
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Identity stamped by the creating process: its pid and the
  /// CLOCK_REALTIME creation time in ns (for an uptime display).
  [[nodiscard]] std::uint32_t creator_pid() const noexcept;
  [[nodiscard]] std::uint64_t created_unix_ns() const noexcept;

 private:
  const RingHeader* header_ = nullptr;
  const RingSlot* slots_ = nullptr;
  std::size_t capacity_ = 0;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
};

}  // namespace altx::obs
