// A crash-surviving, lock-free MPSC trace buffer shared across fork().
//
// The problem: a forked alternative's story (guard started, guard held,
// commit attempted, token taken / too late) ends with _exit or SIGKILL, so
// anything buffered in the child's private memory dies with it. Like
// lktrace's per-event logs of POSIX synchronization, we want the log to be
// reconstructable post-mortem — so the log lives in a MAP_SHARED anonymous
// mapping created by the parent *before* alt_spawn and inherited by every
// child. A write is two atomic operations and a 48-byte copy; a child
// killed between them leaves one unpublished slot, which the reader skips.
//
// Design: a bounded arena with monotonically increasing tickets rather than
// a wrapping queue. Producers claim a slot with fetch_add; when the arena
// is full, further records are counted in `dropped` and lost (newest-loses
// policy — the earliest events of a race are the ones that explain it, and
// a terminal fate is emitted once per child, early enough to fit). This
// keeps every slot single-writer, which is what makes torn records from
// SIGKILLed children detectable instead of corrupting neighbours: a slot is
// visible only after its `ready` flag is store-released.
//
// The header also hosts the cross-process race-id and attempt counters, so
// ids stay unique even when nested constructs fork concurrently.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "obs/event.hpp"

namespace altx::obs {

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1 << 16;  // records

  /// Creates the shared mapping. Must happen in the process that will fork
  /// (fork inheritance is the only way children reach the same pages).
  explicit TraceRing(std::size_t capacity = kDefaultCapacity);
  ~TraceRing();

  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  /// Lock-free, async-signal-safe, callable from any process sharing the
  /// mapping. Copies `rec` into the next free slot; drops it (and counts
  /// the drop) when the arena is full.
  void push(const Record& rec) noexcept;

  /// Fresh cross-process-unique ids.
  std::uint32_t next_race_id() noexcept;

  /// Reader side (parent, post-mortem): every published record, in write
  /// order (claim order; sort by t_ns for a timeline). Slots claimed but
  /// never published — a child died mid-write — are skipped.
  [[nodiscard]] std::vector<Record> snapshot() const;

  /// Records lost to arena exhaustion.
  [[nodiscard]] std::uint64_t dropped() const noexcept;

  /// Records published so far (excludes drops and torn slots).
  [[nodiscard]] std::uint64_t published() const noexcept;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Testing aid: forget everything. Only safe with no live children.
  void reset() noexcept;

 private:
  struct Header {
    std::atomic<std::uint64_t> head;     // next ticket to claim
    std::atomic<std::uint64_t> dropped;
    std::atomic<std::uint32_t> next_race_id;
  };
  struct Slot {
    std::atomic<std::uint32_t> ready;  // 0 = unpublished, 1 = published
    Record rec;
  };

  Header* header_ = nullptr;
  Slot* slots_ = nullptr;
  std::size_t capacity_ = 0;
  void* map_ = nullptr;
  std::size_t map_bytes_ = 0;
};

}  // namespace altx::obs
