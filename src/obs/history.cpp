#include "obs/history.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <thread>

namespace altx::obs {

namespace {

/// splitmix64 finalizer: spreads (site, arm) over the probe space.
std::uint64_t mix_key(std::uint64_t site, std::uint32_t arm) noexcept {
  std::uint64_t x = site ^ (static_cast<std::uint64_t>(arm) *
                            0x9e3779b97f4a7c15ULL);
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return x == 0 ? 1 : x;
}

int bucket_for(std::uint64_t v) noexcept {
  if (v <= 1) return 0;
  const int b = 63 - __builtin_clzll(v);
  return b >= ArmStats::kBuckets ? ArmStats::kBuckets - 1 : b;
}

}  // namespace

std::uint64_t ArmStats::wall_quantile(double q) const noexcept {
  if (total == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  std::uint64_t rank = static_cast<std::uint64_t>(q * total);
  if (rank > 0) --rank;
  std::uint64_t seen = 0;
  for (int i = 0; i < kBuckets; ++i) {
    const std::uint64_t bc = wall_buckets[i];
    if (bc != 0 && seen + bc > rank) {
      // Linear interpolation by rank position inside the bucket's value
      // range [2^i, 2^(i+1)) — the +0.5 centers a lone sample.
      const std::uint64_t lo = i == 0 ? 0 : (1ULL << i);
      const std::uint64_t hi = 2ULL << i;
      const double pos =
          (static_cast<double>(rank - seen) + 0.5) / static_cast<double>(bc);
      std::uint64_t est =
          lo + static_cast<std::uint64_t>(pos * static_cast<double>(hi - lo));
      if (est < min_wall_ns) est = min_wall_ns;
      if (est > max_wall_ns) est = max_wall_ns;
      return est;
    }
    seen += bc;
  }
  return max_wall_ns;
}

/// The shared arena. MAP_SHARED so samples recorded by a nested race inside
/// a forked arm land in the same table the top-level process snapshots.
/// Inserts claim a slot with one CAS on `key`; accumulation is plain
/// read-modify-write — per (site, arm) there is one writer in practice
/// (the parent of that race), and a rare lost update costs one sample, not
/// table integrity.
struct HistoryStore::Arena {
  struct Entry {
    std::atomic<std::uint64_t> key;  // 0 = empty; mix_key(site, arm)
    ArmStats stats;
  };

  std::atomic<std::uint64_t> size;
  std::atomic<std::uint64_t> dropped;
  double alpha;

  // capacity_ entries live directly after the header in the mapping.
  Entry* entries() noexcept { return reinterpret_cast<Entry*>(this + 1); }
  const Entry* entries() const noexcept {
    return reinterpret_cast<const Entry*>(this + 1);
  }
};

HistoryStore::HistoryStore(std::size_t capacity) {
  if (capacity == 0) capacity = 1;
  capacity_ = capacity;
  const std::size_t bytes =
      sizeof(Arena) + capacity * sizeof(Arena::Entry);
  void* mem = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    // Degraded but functional: a process-private table.
    mem = ::calloc(1, bytes);
  }
  std::memset(mem, 0, bytes);  // MAP_ANONYMOUS is zeroed; calloc fallback too
  arena_ = static_cast<Arena*>(mem);
  arena_->alpha = 0.2;
}

HistoryStore::~HistoryStore() {
  if (arena_ != nullptr) {
    const std::size_t bytes =
        sizeof(Arena) + capacity_ * sizeof(Arena::Entry);
    ::munmap(arena_, bytes);
  }
}

ArmStats* HistoryStore::slot_for(std::uint64_t site, std::uint32_t arm,
                                 bool insert) noexcept {
  if (site == 0) return nullptr;
  const std::uint64_t key = mix_key(site, arm);
  const std::size_t start = key % capacity_;
  for (std::size_t i = 0; i < capacity_; ++i) {
    Arena::Entry& e = arena_->entries()[(start + i) % capacity_];
    std::uint64_t have = e.key.load(std::memory_order_acquire);
    if (have == key) return &e.stats;
    if (have == 0) {
      if (!insert) return nullptr;
      if (e.key.compare_exchange_strong(have, key,
                                        std::memory_order_acq_rel)) {
        e.stats.site = site;
        e.stats.arm = arm;
        arena_->size.fetch_add(1, std::memory_order_relaxed);
        return &e.stats;
      }
      if (have == key) return &e.stats;  // lost the race to ourselves
    }
  }
  return nullptr;  // table full
}

void HistoryStore::record(std::uint64_t site, std::uint32_t arm,
                          std::uint64_t wall_ns, std::uint64_t cpu_ns,
                          bool success) noexcept {
  ArmStats* s = slot_for(site, arm, /*insert=*/true);
  if (s == nullptr) {
    if (arena_ != nullptr) {
      arena_->dropped.fetch_add(1, std::memory_order_relaxed);
    }
    return;
  }
  const double a = arena_->alpha;
  if (s->total == 0) {
    s->ewma_wall_ns = static_cast<double>(wall_ns);
    s->ewma_cpu_ns = static_cast<double>(cpu_ns);
    s->min_wall_ns = wall_ns;
    s->max_wall_ns = wall_ns;
  } else {
    s->ewma_wall_ns += a * (static_cast<double>(wall_ns) - s->ewma_wall_ns);
    s->ewma_cpu_ns += a * (static_cast<double>(cpu_ns) - s->ewma_cpu_ns);
    if (wall_ns < s->min_wall_ns) s->min_wall_ns = wall_ns;
    if (wall_ns > s->max_wall_ns) s->max_wall_ns = wall_ns;
  }
  ++s->wall_buckets[bucket_for(wall_ns)];
  ++s->total;
  if (success) ++s->successes;
}

const ArmStats* HistoryStore::find(std::uint64_t site,
                                   std::uint32_t arm) const noexcept {
  return const_cast<HistoryStore*>(this)->slot_for(site, arm,
                                                   /*insert=*/false);
}

std::vector<const ArmStats*> HistoryStore::arms(std::uint64_t site) const {
  std::vector<const ArmStats*> out;
  for (std::size_t i = 0; i < capacity_; ++i) {
    const Arena::Entry& e = arena_->entries()[i];
    if (e.key.load(std::memory_order_acquire) != 0 &&
        e.stats.site == site) {
      out.push_back(&e.stats);
    }
  }
  std::sort(out.begin(), out.end(), [](const ArmStats* x, const ArmStats* y) {
    return x->arm < y->arm;
  });
  return out;
}

std::uint64_t HistoryStore::quantile(std::uint64_t site, std::uint32_t arm,
                                     double q) const noexcept {
  const ArmStats* s = find(site, arm);
  return s == nullptr ? 0 : s->wall_quantile(q);
}

std::size_t HistoryStore::size() const noexcept {
  return static_cast<std::size_t>(
      arena_->size.load(std::memory_order_relaxed));
}

std::uint64_t HistoryStore::samples_dropped() const noexcept {
  return arena_->dropped.load(std::memory_order_relaxed);
}

void HistoryStore::set_alpha(double alpha) noexcept {
  if (alpha > 0.0 && alpha <= 1.0) arena_->alpha = alpha;
}

double HistoryStore::alpha() const noexcept { return arena_->alpha; }

namespace {

struct SnapshotHeader {
  std::uint32_t magic = HistoryStore::kMagic;
  std::uint32_t version = HistoryStore::kVersion;
  std::uint64_t count = 0;
  double alpha = 0.2;
};

}  // namespace

bool HistoryStore::save(const std::string& path) const noexcept {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    SnapshotHeader h;
    h.count = size();
    h.alpha = arena_->alpha;
    out.write(reinterpret_cast<const char*>(&h), sizeof h);
    std::uint64_t written = 0;
    for (std::size_t i = 0; i < capacity_ && written < h.count; ++i) {
      const Arena::Entry& e = arena_->entries()[i];
      if (e.key.load(std::memory_order_acquire) == 0) continue;
      out.write(reinterpret_cast<const char*>(&e.stats), sizeof e.stats);
      ++written;
    }
    // Tolerate a count that moved under us: patch the header.
    if (written != h.count) {
      h.count = written;
      out.seekp(0);
      out.write(reinterpret_cast<const char*>(&h), sizeof h);
    }
    out.flush();
    if (!out) {
      (void)::unlink(tmp.c_str());
      return false;
    }
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    (void)::unlink(tmp.c_str());
    return false;
  }
  return true;
}

bool HistoryStore::load(const std::string& path) noexcept {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  SnapshotHeader h;
  in.read(reinterpret_cast<char*>(&h), sizeof h);
  if (!in || h.magic != kMagic || h.version != kVersion) return false;
  if (h.alpha > 0.0 && h.alpha <= 1.0) arena_->alpha = h.alpha;
  for (std::uint64_t i = 0; i < h.count; ++i) {
    ArmStats s;
    in.read(reinterpret_cast<char*>(&s), sizeof s);
    if (!in) return false;
    if (s.site == 0) continue;
    ArmStats* slot = slot_for(s.site, s.arm, /*insert=*/true);
    if (slot != nullptr) *slot = s;
  }
  return true;
}

namespace {

HistoryStore* g_store = nullptr;  // leaked: children may hold pointers
pid_t g_history_creator = -1;

std::string& history_path() {
  static std::string path;
  return path;
}

void history_save_at_exit() {
  if (::getpid() != g_history_creator) return;
  if (g_store == nullptr || history_path().empty()) return;
  if (!g_store->save(history_path())) {
    std::fprintf(stderr, "altx: cannot snapshot history to %s\n",
                 history_path().c_str());
  }
}

void start_history_interval(long long interval_ms) {
  std::thread([interval_ms] {
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      if (g_store != nullptr && !history_path().empty()) {
        (void)g_store->save(history_path());
      }
    }
  }).detach();
}

/// Before main(), same discipline as the trace EnvInit: the store must
/// exist (and have loaded its snapshot) before the first race runs.
struct HistoryEnvInit {
  HistoryEnvInit() {
    const char* path = std::getenv("ALTX_HISTORY");
    if (path == nullptr || path[0] == '\0') return;
    std::size_t cap = HistoryStore::kDefaultCapacity;
    if (const char* c = std::getenv("ALTX_HISTORY_CAP")) {
      const long long n = std::atoll(c);
      if (n > 0) cap = static_cast<std::size_t>(n);
    }
    g_store = new HistoryStore(cap);
    if (const char* a = std::getenv("ALTX_HISTORY_ALPHA")) {
      g_store->set_alpha(std::atof(a));
    }
    (void)g_store->load(path);  // absent on first run: fine
    history_path() = path;
    g_history_creator = ::getpid();
    std::atexit(history_save_at_exit);
    if (const char* iv = std::getenv("ALTX_HISTORY_SNAPSHOT_MS")) {
      const long long ms = std::atoll(iv);
      if (ms > 0) start_history_interval(ms);
    }
  }
};
HistoryEnvInit g_history_env_init;

}  // namespace

HistoryStore* HistoryStore::global() noexcept { return g_store; }

HistoryStore* history_enable_for_test(std::size_t capacity) {
  g_store = new HistoryStore(capacity);  // old store leaked by design
  g_history_creator = ::getpid();
  return g_store;
}

void history_disable_for_test() noexcept { g_store = nullptr; }

}  // namespace altx::obs
