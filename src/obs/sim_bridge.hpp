// Maps the simulator's TraceEvent stream into the generalized obs schema.
//
// Header-only on purpose: obs must not link against the simulator (the
// POSIX backend uses obs without it), and the simulator keeps its own
// synchronous sink (Kernel::Config::trace). A consumer that wants sim runs
// in the unified trace installs this adapter:
//
//   cfg.trace = altx::obs::sim_trace_sink(altx::obs::next_race_id());
//
// Sim timestamps are microseconds of simulated time; the bridge converts
// them to nanoseconds so one timeline unit rules the whole trace file
// (real and simulated runs are distinguished by their kinds and pids, not
// by unit guessing).
#pragma once

#include <functional>

#include "obs/trace.hpp"
#include "sim/kernel.hpp"

namespace altx::obs {

/// The generalized kind a sim event maps to; kinds with no semantic
/// counterpart become kSimEvent with the original kind preserved in `a`.
inline EventKind map_sim_kind(sim::TraceEvent::Kind k) {
  using K = sim::TraceEvent::Kind;
  switch (k) {
    case K::kSpawn: return EventKind::kFork;
    case K::kCommit: return EventKind::kCommitWon;
    case K::kAbort: return EventKind::kGuardFail;
    case K::kEliminate: return EventKind::kEliminated;
    case K::kTooLate: return EventKind::kTooLate;
    case K::kBlockFail: return EventKind::kRaceDecided;
    case K::kTimeout: return EventKind::kRaceDecided;
    case K::kWorldSplit:
    case K::kDeliver:
    case K::kSourceWrite:
    case K::kComplete:
    case K::kNodeCrash: return EventKind::kSimEvent;
  }
  return EventKind::kSimEvent;
}

/// A Kernel::Config::trace sink forwarding every sim event into the shared
/// ring under the given race id. The sim pid rides in the record's pid
/// field; the peer pid (parent / clone / sender) in `b`; kSimEvent keeps
/// the original kind in `a`. `node_id` is stamped into every record so a
/// per-node kernel's stream stitches against other nodes' traces (0 = the
/// single-node default; sim node n conventionally maps to trace node n+1,
/// matching dist/ and consensus/).
inline std::function<void(const sim::TraceEvent&)> sim_trace_sink(
    std::uint32_t race_id, std::uint32_t node_id = 0) {
  return [race_id, node_id](const sim::TraceEvent& ev) {
    const EventKind kind = map_sim_kind(ev.kind);
    emit_at_node(static_cast<std::uint64_t>(ev.time) * 1000ULL, node_id, kind,
                 race_id, /*child_index=*/0,
                 kind == EventKind::kSimEvent
                     ? static_cast<std::uint64_t>(ev.kind)
                     : static_cast<std::uint64_t>(ev.pid),
                 static_cast<std::uint64_t>(ev.other),
                 static_cast<std::uint64_t>(ev.pid));
  };
}

}  // namespace altx::obs
