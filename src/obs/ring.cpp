#include "obs/ring.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <time.h>
#include <unistd.h>

#include <cstring>
#include <new>

#include "common/error.hpp"

namespace altx::obs {

namespace {

std::size_t ring_bytes(std::size_t capacity) {
  return sizeof(RingHeader) + capacity * sizeof(RingSlot);
}

}  // namespace

void TraceRing::map_and_init(int fd, std::size_t capacity) {
  ALTX_REQUIRE(capacity >= 1, "TraceRing: capacity must be positive");
  capacity_ = capacity;
  map_bytes_ = ring_bytes(capacity);
  void* p = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | (fd < 0 ? MAP_ANONYMOUS : 0), fd, 0);
  if (p == MAP_FAILED) throw_errno("mmap(TraceRing)");
  map_ = p;
  // Fresh pages arrive zeroed (anonymous, or a just-truncated file), which
  // is exactly the initial state every atomic needs; placement-new just
  // makes that formal before the identifying fields are stamped.
  header_ = new (map_) RingHeader;
  header_->magic = RingHeader::kMagic;
  header_->version = RingHeader::kVersion;
  header_->capacity = capacity;
  header_->creator_pid = static_cast<std::uint32_t>(::getpid());
  timespec ts{};
  if (::clock_gettime(CLOCK_REALTIME, &ts) == 0) {
    header_->created_unix_ns =
        static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
        static_cast<std::uint64_t>(ts.tv_nsec);
  }
  slots_ = reinterpret_cast<RingSlot*>(static_cast<char*>(map_) +
                                       sizeof(RingHeader));
}

TraceRing::TraceRing(std::size_t capacity) { map_and_init(-1, capacity); }

TraceRing::TraceRing(const std::string& path, std::size_t capacity) {
  const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw_errno("open(TraceRing " + path + ")");
  if (::ftruncate(fd, static_cast<off_t>(ring_bytes(capacity))) != 0) {
    const int err = errno;
    ::close(fd);
    throw SystemError("ftruncate(TraceRing " + path + ")", err);
  }
  try {
    map_and_init(fd, capacity);
  } catch (...) {
    ::close(fd);
    throw;
  }
  ::close(fd);  // the mapping keeps the pages alive
}

TraceRing::~TraceRing() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void TraceRing::push(const Record& rec) noexcept {
  const std::uint64_t ticket =
      header_->head.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    header_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  RingSlot& slot = slots_[ticket];
  slot.rec = rec;
  slot.rec.seq = ticket;
  slot.ready.store(1, std::memory_order_release);
}

std::uint32_t TraceRing::next_race_id() noexcept {
  // Id 0 means "untraced"; start handing out ids at 1.
  return header_->next_race_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::vector<Record> TraceRing::snapshot() const {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire) != 0) {
      out.push_back(slots_[i].rec);
    }
  }
  return out;
}

std::uint64_t TraceRing::dropped() const noexcept {
  return header_->dropped.load(std::memory_order_relaxed);
}

std::uint64_t TraceRing::published() const noexcept {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire) != 0) ++count;
  }
  return count;
}

void TraceRing::reset() noexcept {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  for (std::uint64_t i = 0; i < n; ++i) {
    slots_[i].ready.store(0, std::memory_order_relaxed);
  }
  header_->dropped.store(0, std::memory_order_relaxed);
  header_->head.store(0, std::memory_order_release);
}

TraceRingReader::TraceRingReader(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) throw_errno("open(ring " + path + ")");
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    throw SystemError("fstat(ring " + path + ")", err);
  }
  if (st.st_size < static_cast<off_t>(sizeof(RingHeader))) {
    ::close(fd);
    throw UsageError(path + " is too small to be an altx trace ring");
  }
  map_bytes_ = static_cast<std::size_t>(st.st_size);
  void* p = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_SHARED, fd, 0);
  if (p == MAP_FAILED) {
    const int err = errno;
    ::close(fd);
    throw SystemError("mmap(ring " + path + ")", err);
  }
  ::close(fd);
  map_ = p;
  header_ = static_cast<const RingHeader*>(map_);
  if (header_->magic != RingHeader::kMagic) {
    throw UsageError(path + " is not an altx trace ring (bad magic)");
  }
  if (header_->version != RingHeader::kVersion) {
    throw UsageError(path + ": ring version " +
                     std::to_string(header_->version) + ", expected " +
                     std::to_string(RingHeader::kVersion));
  }
  capacity_ = static_cast<std::size_t>(header_->capacity);
  if (ring_bytes(capacity_) > map_bytes_) {
    throw UsageError(path + ": truncated ring file");
  }
  slots_ = reinterpret_cast<const RingSlot*>(static_cast<const char*>(map_) +
                                             sizeof(RingHeader));
}

TraceRingReader::~TraceRingReader() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

std::vector<Record> TraceRingReader::snapshot() const {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire) != 0) {
      out.push_back(slots_[i].rec);
    }
  }
  return out;
}

std::uint64_t TraceRingReader::dropped() const noexcept {
  return header_->dropped.load(std::memory_order_relaxed);
}

std::uint64_t TraceRingReader::published() const noexcept {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire) != 0) ++count;
  }
  return count;
}

std::uint32_t TraceRingReader::creator_pid() const noexcept {
  return header_->creator_pid;
}

std::uint64_t TraceRingReader::created_unix_ns() const noexcept {
  return header_->created_unix_ns;
}

}  // namespace altx::obs
