#include "obs/ring.hpp"

#include <sys/mman.h>

#include <cstring>
#include <new>

#include "common/error.hpp"

namespace altx::obs {

TraceRing::TraceRing(std::size_t capacity) {
  ALTX_REQUIRE(capacity >= 1, "TraceRing: capacity must be positive");
  capacity_ = capacity;
  map_bytes_ = sizeof(Header) + capacity * sizeof(Slot);
  void* p = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p == MAP_FAILED) throw_errno("mmap(TraceRing)");
  map_ = p;
  // Anonymous pages arrive zeroed, which is exactly the initial state every
  // atomic needs; placement-new just makes that formal.
  header_ = new (map_) Header;
  slots_ = reinterpret_cast<Slot*>(static_cast<char*>(map_) + sizeof(Header));
}

TraceRing::~TraceRing() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

void TraceRing::push(const Record& rec) noexcept {
  const std::uint64_t ticket =
      header_->head.fetch_add(1, std::memory_order_relaxed);
  if (ticket >= capacity_) {
    header_->dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  Slot& slot = slots_[ticket];
  slot.rec = rec;
  slot.ready.store(1, std::memory_order_release);
}

std::uint32_t TraceRing::next_race_id() noexcept {
  // Id 0 means "untraced"; start handing out ids at 1.
  return header_->next_race_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

std::vector<Record> TraceRing::snapshot() const {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::vector<Record> out;
  out.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire) != 0) {
      out.push_back(slots_[i].rec);
    }
  }
  return out;
}

std::uint64_t TraceRing::dropped() const noexcept {
  return header_->dropped.load(std::memory_order_relaxed);
}

std::uint64_t TraceRing::published() const noexcept {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  std::uint64_t count = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    if (slots_[i].ready.load(std::memory_order_acquire) != 0) ++count;
  }
  return count;
}

void TraceRing::reset() noexcept {
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  const std::uint64_t n = head < capacity_ ? head : capacity_;
  for (std::uint64_t i = 0; i < n; ++i) {
    slots_[i].ready.store(0, std::memory_order_relaxed);
  }
  header_->dropped.store(0, std::memory_order_relaxed);
  header_->head.store(0, std::memory_order_release);
}

}  // namespace altx::obs
