#include "obs/profile.hpp"

#include <link.h>
#include <pthread.h>
#include <signal.h>
#include <sys/time.h>
#include <ucontext.h>

#include <cerrno>
#include <cstdlib>

#include "obs/event.hpp"
#include "obs/trace.hpp"

namespace altx::obs {

namespace profdetail {
bool g_prof_enabled = false;
}  // namespace profdetail

namespace {

constexpr int kMaxFrames = 16;  // 8 fragments per sample, worst case

int g_hz = 0;
std::uint32_t g_race = 0;          // race the sampled child belongs to
int g_child = 0;                   // its 1-based arm index
std::uint32_t g_sample_seq = 0;    // per-process sample ordinal
bool g_map_emitted = false;        // reset to false in each fork (copied)
std::uintptr_t g_exe_base = 0;

// Stack bounds of the sampled thread, captured at arm time (or prewarmed in
// the parent and inherited through fork — the child runs on the same
// stack). The frame-pointer walk refuses to dereference outside them.
thread_local std::uintptr_t t_stack_lo = 0;
thread_local std::uintptr_t t_stack_hi = 0;

void capture_stack_bounds() noexcept {
  if (t_stack_hi != 0) return;
  pthread_attr_t attr;
  if (::pthread_getattr_np(::pthread_self(), &attr) != 0) return;
  void* base = nullptr;
  std::size_t size = 0;
  if (::pthread_attr_getstack(&attr, &base, &size) == 0 && size > 0) {
    t_stack_lo = reinterpret_cast<std::uintptr_t>(base);
    t_stack_hi = t_stack_lo + size;
  }
  (void)::pthread_attr_destroy(&attr);
}

int exe_base_cb(dl_phdr_info* info, std::size_t, void* out) {
  // The main executable is the entry with an empty name.
  if (info->dlpi_name == nullptr || info->dlpi_name[0] == '\0') {
    *static_cast<std::uintptr_t*>(out) = info->dlpi_addr;
    return 1;
  }
  return 0;
}

/// pc + frame-pointer chain out of the interrupted context. Every
/// dereference is bounds-checked against the captured stack range, so a
/// leaf function that clobbered rbp yields a short walk, never a fault.
int backtrace_fp(void* ucontext, std::uintptr_t* pcs, int max) noexcept {
  auto* uc = static_cast<ucontext_t*>(ucontext);
  std::uintptr_t pc = 0;
  std::uintptr_t fp = 0;
#if defined(__x86_64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
#elif defined(__aarch64__)
  pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
  fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
#else
  (void)uc;
#endif
  int n = 0;
  if (pc != 0) pcs[n++] = pc;
  const std::uintptr_t lo = t_stack_lo;
  const std::uintptr_t hi = t_stack_hi;
  if (lo == 0 || hi == 0) return n;
  while (n < max && fp >= lo && fp + 2 * sizeof(void*) <= hi &&
         (fp & (sizeof(void*) - 1)) == 0) {
    const auto* frame = reinterpret_cast<const std::uintptr_t*>(fp);
    const std::uintptr_t ret = frame[1];
    const std::uintptr_t next = frame[0];
    if (ret == 0) break;
    pcs[n++] = ret;
    if (next <= fp) break;  // stacks grow down; the chain must walk up
    fp = next;
  }
  return n;
}

void on_sigprof(int, siginfo_t*, void* ucontext) {
  // Async-signal-safe by construction: clock_gettime + atomic ring pushes.
  const int saved_errno = errno;
  std::uintptr_t pcs[kMaxFrames];
  const int n = backtrace_fp(ucontext, pcs, kMaxFrames);
  if (n > 0) {
    const std::uint32_t sample = g_sample_seq++;
    const int frags = (n + 1) / 2;
    for (int f = 0; f < frags; ++f) {
      const std::uint64_t a = pcs[2 * f];
      const std::uint64_t b = (2 * f + 1 < n) ? pcs[2 * f + 1] : 0;
      emit(EventKind::kProfSample, g_race,
           static_cast<std::int16_t>(g_child), a, b,
           prof_pack_meta(sample, static_cast<std::uint8_t>(f),
                          static_cast<std::uint8_t>(frags)));
    }
  }
  errno = saved_errno;
}

void set_timer(int hz) noexcept {
  itimerval it{};
  if (hz > 0) {
    const long usec = 1'000'000L / hz;
    it.it_interval.tv_sec = usec / 1'000'000L;
    it.it_interval.tv_usec = usec % 1'000'000L;
    it.it_value = it.it_interval;
  }
  (void)::setitimer(ITIMER_PROF, &it, nullptr);
}

/// Reads ALTX_PROF / ALTX_PROF_HZ once, before main (same discipline as
/// trace.cpp's EnvInit; order between the two does not matter — arming
/// happens at fork time, long after both ran).
struct ProfEnvInit {
  ProfEnvInit() {
    const char* prof = std::getenv("ALTX_PROF");
    if (prof == nullptr || prof[0] == '\0' || prof[0] == '0') return;
    int hz = 997;
    if (const char* hz_env = std::getenv("ALTX_PROF_HZ")) {
      const long v = std::atol(hz_env);
      if (v > 0 && v <= 10'000) hz = static_cast<int>(v);
    }
    g_hz = hz;
    profdetail::g_prof_enabled = true;
  }
};
ProfEnvInit g_prof_env_init;

}  // namespace

namespace profdetail {

void prewarm_slow() noexcept { capture_stack_bounds(); }

void arm_child_slow(std::uint32_t race_id, int child_index) noexcept {
  if (!enabled()) return;  // samples need a ring
  g_race = race_id;
  g_child = child_index;
  capture_stack_bounds();  // usually inherited from the parent's prewarm
  if (!g_map_emitted) {
    // Forks inherit the layout, so any one kProfMap record per trace
    // suffices; readers take the first.
    if (g_exe_base == 0) {
      (void)::dl_iterate_phdr(exe_base_cb, &g_exe_base);
    }
    emit(EventKind::kProfMap, race_id, static_cast<std::int16_t>(child_index),
         static_cast<std::uint64_t>(g_exe_base));
    g_map_emitted = true;
  }
  struct sigaction sa{};
  sa.sa_sigaction = on_sigprof;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  ::sigemptyset(&sa.sa_mask);
  if (::sigaction(SIGPROF, &sa, nullptr) != 0) return;
  set_timer(g_hz);
}

}  // namespace profdetail

int prof_hz() noexcept { return g_hz; }

void prof_disarm() noexcept {
  set_timer(0);
  ::signal(SIGPROF, SIG_IGN);
}

void prof_enable(int hz) {
  g_hz = (hz > 0 && hz <= 10'000) ? hz : 997;
  profdetail::g_prof_enabled = true;
}

}  // namespace altx::obs
