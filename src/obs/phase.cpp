#include "obs/phase.hpp"

namespace altx::obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kNone: return "none";
    case Phase::kAdmissionWait: return "admission_wait";
    case Phase::kFork: return "fork";
    case Phase::kArmRun: return "arm_run";
    case Phase::kResultPipe: return "result_pipe";
    case Phase::kAbsorb: return "absorb";
    case Phase::kDecide: return "decide";
    case Phase::kEliminate: return "eliminate";
    case Phase::kPageDiff: return "page_diff";
    case Phase::kSrvQueue: return "srv_queue";
  }
  return "?";
}

std::uint64_t PhaseBreakdown::attributed_ns() const noexcept {
  std::uint64_t sum = rpc_ns;
  for (int i = 1; i < kPhaseCount; ++i) sum += phase_ns[i];
  return sum;
}

double PhaseBreakdown::coverage() const noexcept {
  if (!decided || wall_ns == 0) return 0.0;
  const double c =
      static_cast<double>(attributed_ns()) / static_cast<double>(wall_ns);
  return c > 1.0 ? 1.0 : c;
}

Phase PhaseBreakdown::dominant() const noexcept {
  int best = 0;
  for (int i = 1; i < kPhaseCount; ++i) {
    if (phase_ns[i] > phase_ns[best]) best = i;
  }
  return phase_ns[best] == 0 ? Phase::kNone : static_cast<Phase>(best);
}

std::map<std::uint32_t, PhaseBreakdown> reduce_critical_path(
    const std::vector<Record>& records) {
  std::map<std::uint32_t, PhaseBreakdown> out;
  // First pass: race boundaries and span durations (ends are
  // self-contained, so order does not matter).
  for (const Record& r : records) {
    switch (r.kind) {
      case EventKind::kRaceBegin: {
        PhaseBreakdown& b = out[r.race_id];
        if (b.begin_ns == 0 || r.t_ns < b.begin_ns) b.begin_ns = r.t_ns;
        break;
      }
      case EventKind::kRaceDecided: {
        PhaseBreakdown& b = out[r.race_id];
        b.decided = true;
        if (r.t_ns > b.wall_ns) b.wall_ns = r.t_ns;  // end time for now
        break;
      }
      case EventKind::kPhaseEnd: {
        if (r.a == 0 || r.a >= kPhaseCount) break;
        PhaseBreakdown& b = out[r.race_id];
        if (r.child_index == 0) {
          b.phase_ns[r.a] += r.b;
        } else {
          b.child_ns[r.a] += r.b;
        }
        break;
      }
      default: break;
    }
  }
  // Second pass: count begins without a matching end (kill truncation).
  // Untraced spans are keyed by (node, race) so that after a --stitch two
  // rings' unrelated races — whose per-ring race counters collide — cannot
  // cancel each other's endpoints. Spans carrying a trace id key on it
  // alone: a begin in the client's ring and its end in the daemon's ring
  // are one cross-hop span, not two dangling halves.
  struct OpenSpans {
    std::int64_t n = 0;
    std::uint32_t race = 0;  // of the last unmatched begin, for attribution
  };
  using SpanKey = std::pair<std::uint64_t, std::uint64_t>;
  const auto span_key = [](const Record& r) {
    if (r.trace_id != 0) return SpanKey{r.trace_id, 0};
    return SpanKey{0, (static_cast<std::uint64_t>(r.node_id) << 32) |
                          r.race_id};
  };
  std::map<SpanKey, OpenSpans> open[kPhaseCount];
  for (const Record& r : records) {
    if (r.kind == EventKind::kPhaseBegin && r.a > 0 && r.a < kPhaseCount) {
      OpenSpans& o = open[r.a][span_key(r)];
      ++o.n;
      o.race = r.race_id;
    } else if (r.kind == EventKind::kPhaseEnd && r.a > 0 &&
               r.a < kPhaseCount) {
      --open[r.a][span_key(r)].n;
    }
  }
  for (const auto& per_phase : open) {
    for (const auto& [key, o] : per_phase) {
      (void)key;
      if (o.n > 0) {
        const auto it = out.find(o.race);
        if (it != out.end()) {
          it->second.dangling_begins += static_cast<std::uint32_t>(o.n);
        }
      }
    }
  }
  // Resolve wall_ns from (begin, end) and drop sentinel end times.
  for (auto& [race, b] : out) {
    (void)race;
    if (b.decided && b.wall_ns >= b.begin_ns && b.begin_ns != 0) {
      b.wall_ns -= b.begin_ns;
      // A daemon job's queue wait elapses before the worker's race exists,
      // so its span lies outside (begin, decided); fold it into the wall so
      // coverage stays a fraction of the job's end-to-end time.
      b.wall_ns += b.phase_ns[static_cast<int>(Phase::kSrvQueue)];
    } else {
      b.wall_ns = 0;
    }
  }
  return out;
}

std::map<std::uint64_t, PhaseBreakdown> reduce_critical_path_by_trace(
    const std::vector<Record>& records) {
  std::map<std::uint64_t, PhaseBreakdown> out;
  std::map<std::uint64_t, std::uint64_t> end_ns;
  std::map<std::uint64_t, std::uint64_t> srv_submit_ns, srv_result_ns;
  for (const Record& r : records) {
    if (r.trace_id == 0) continue;
    switch (r.kind) {
      case EventKind::kRaceBegin: {
        PhaseBreakdown& b = out[r.trace_id];
        if (b.begin_ns == 0 || r.t_ns < b.begin_ns) b.begin_ns = r.t_ns;
        break;
      }
      case EventKind::kRaceDecided: {
        PhaseBreakdown& b = out[r.trace_id];
        b.decided = true;
        std::uint64_t& e = end_ns[r.trace_id];
        if (r.t_ns > e) e = r.t_ns;
        break;
      }
      case EventKind::kSrvSubmit: {
        std::uint64_t& t = srv_submit_ns[r.trace_id];
        if (t == 0 || r.t_ns < t) t = r.t_ns;
        break;
      }
      case EventKind::kSrvResult: {
        std::uint64_t& t = srv_result_ns[r.trace_id];
        if (r.t_ns > t) t = r.t_ns;
        break;
      }
      case EventKind::kPhaseEnd: {
        if (r.a == 0 || r.a >= kPhaseCount) break;
        PhaseBreakdown& b = out[r.trace_id];
        if (r.child_index == 0) {
          b.phase_ns[r.a] += r.b;
        } else {
          b.child_ns[r.a] += r.b;
        }
        break;
      }
      default: break;
    }
  }
  // Dangling audit: keyed by (trace, phase), so a span's begin and end may
  // land in different rings — they are the same cross-hop span.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::int64_t> open;
  for (const Record& r : records) {
    if (r.trace_id == 0) continue;
    if (r.kind == EventKind::kPhaseBegin && r.a > 0 && r.a < kPhaseCount) {
      ++open[{r.trace_id, r.a}];
    } else if (r.kind == EventKind::kPhaseEnd && r.a > 0 &&
               r.a < kPhaseCount) {
      --open[{r.trace_id, r.a}];
    }
  }
  for (const auto& [key, n] : open) {
    if (n > 0) {
      out[key.first].dangling_begins += static_cast<std::uint32_t>(n);
    }
  }
  // The outermost (begin, decided) interval is the wall: when the client's
  // ring is present its submit→result brackets the worker's race, and the
  // daemon queue wait lies *inside* it — so, unlike the per-race reduction,
  // srv_queue is not folded in on top. A daemon-only trace degrades to the
  // worker's own interval (coverage then clamps at 1, as before).
  for (auto& [trace, b] : out) {
    const auto e = end_ns.find(trace);
    if (b.decided && e != end_ns.end() && b.begin_ns != 0 &&
        e->second >= b.begin_ns) {
      b.wall_ns = e->second - b.begin_ns;
      // The daemon hop: client submit → daemon admission, and daemon reply
      // → client decided. Both rings stamp the same-host monotonic clock,
      // so the differences are real wire + poll-loop dispatch time. Guard
      // each leg against reordered stamps (a daemon-only trace has no
      // client bracket and contributes nothing here).
      const auto ss = srv_submit_ns.find(trace);
      if (ss != srv_submit_ns.end() && ss->second > b.begin_ns &&
          ss->second <= e->second) {
        b.rpc_ns += ss->second - b.begin_ns;
      }
      const auto sr = srv_result_ns.find(trace);
      if (sr != srv_result_ns.end() && sr->second < e->second &&
          sr->second >= b.begin_ns) {
        b.rpc_ns += e->second - sr->second;
      }
    } else {
      b.wall_ns = 0;
    }
  }
  return out;
}

}  // namespace altx::obs
