#include "obs/phase.hpp"

namespace altx::obs {

const char* to_string(Phase phase) {
  switch (phase) {
    case Phase::kNone: return "none";
    case Phase::kAdmissionWait: return "admission_wait";
    case Phase::kFork: return "fork";
    case Phase::kArmRun: return "arm_run";
    case Phase::kResultPipe: return "result_pipe";
    case Phase::kAbsorb: return "absorb";
    case Phase::kDecide: return "decide";
    case Phase::kEliminate: return "eliminate";
    case Phase::kPageDiff: return "page_diff";
    case Phase::kSrvQueue: return "srv_queue";
  }
  return "?";
}

std::uint64_t PhaseBreakdown::attributed_ns() const noexcept {
  std::uint64_t sum = 0;
  for (int i = 1; i < kPhaseCount; ++i) sum += phase_ns[i];
  return sum;
}

double PhaseBreakdown::coverage() const noexcept {
  if (!decided || wall_ns == 0) return 0.0;
  const double c =
      static_cast<double>(attributed_ns()) / static_cast<double>(wall_ns);
  return c > 1.0 ? 1.0 : c;
}

Phase PhaseBreakdown::dominant() const noexcept {
  int best = 0;
  for (int i = 1; i < kPhaseCount; ++i) {
    if (phase_ns[i] > phase_ns[best]) best = i;
  }
  return phase_ns[best] == 0 ? Phase::kNone : static_cast<Phase>(best);
}

std::map<std::uint32_t, PhaseBreakdown> reduce_critical_path(
    const std::vector<Record>& records) {
  std::map<std::uint32_t, PhaseBreakdown> out;
  // First pass: race boundaries and span durations (ends are
  // self-contained, so order does not matter).
  for (const Record& r : records) {
    switch (r.kind) {
      case EventKind::kRaceBegin: {
        PhaseBreakdown& b = out[r.race_id];
        if (b.begin_ns == 0 || r.t_ns < b.begin_ns) b.begin_ns = r.t_ns;
        break;
      }
      case EventKind::kRaceDecided: {
        PhaseBreakdown& b = out[r.race_id];
        b.decided = true;
        if (r.t_ns > b.wall_ns) b.wall_ns = r.t_ns;  // end time for now
        break;
      }
      case EventKind::kPhaseEnd: {
        if (r.a == 0 || r.a >= kPhaseCount) break;
        PhaseBreakdown& b = out[r.race_id];
        if (r.child_index == 0) {
          b.phase_ns[r.a] += r.b;
        } else {
          b.child_ns[r.a] += r.b;
        }
        break;
      }
      default: break;
    }
  }
  // Second pass: count begins without a matching end (kill truncation).
  std::map<std::uint32_t, std::int64_t> open[kPhaseCount];  // keyed by race
  for (const Record& r : records) {
    if (r.kind == EventKind::kPhaseBegin && r.a > 0 && r.a < kPhaseCount) {
      ++open[r.a][r.race_id];
    } else if (r.kind == EventKind::kPhaseEnd && r.a > 0 &&
               r.a < kPhaseCount) {
      --open[r.a][r.race_id];
    }
  }
  for (const auto& per_phase : open) {
    for (const auto& [race, n] : per_phase) {
      if (n > 0) {
        const auto it = out.find(race);
        if (it != out.end()) {
          it->second.dangling_begins += static_cast<std::uint32_t>(n);
        }
      }
    }
  }
  // Resolve wall_ns from (begin, end) and drop sentinel end times.
  for (auto& [race, b] : out) {
    (void)race;
    if (b.decided && b.wall_ns >= b.begin_ns && b.begin_ns != 0) {
      b.wall_ns -= b.begin_ns;
      // A daemon job's queue wait elapses before the worker's race exists,
      // so its span lies outside (begin, decided); fold it into the wall so
      // coverage stays a fraction of the job's end-to-end time.
      b.wall_ns += b.phase_ns[static_cast<int>(Phase::kSrvQueue)];
    } else {
      b.wall_ns = 0;
    }
  }
  return out;
}

}  // namespace altx::obs
