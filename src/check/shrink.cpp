#include "check/shrink.hpp"

#include <memory>
#include <utility>

#include "common/error.hpp"

namespace altx::check {
namespace {

Block clone_block(const Block& b) {
  Block out = b;
  for (Alternative& a : out.alts) {
    for (CheckOp& op : a.ops) {
      if (auto* nb = std::get_if<OpBlock>(&op)) {
        nb->block = std::make_shared<Block>(clone_block(*nb->block));
      }
    }
  }
  return out;
}

CheckProgram clone_program(const CheckProgram& p) {
  CheckProgram out;
  out.blocks.reserve(p.blocks.size());
  for (const Block& b : p.blocks) out.blocks.push_back(clone_block(b));
  return out;
}

/// Pre-order walk: top-level blocks, each followed by its nested blocks.
void collect_blocks(Block& b, std::vector<Block*>& out) {
  out.push_back(&b);
  for (Alternative& a : b.alts) {
    for (CheckOp& op : a.ops) {
      if (auto* nb = std::get_if<OpBlock>(&op)) collect_blocks(*nb->block, out);
    }
  }
}

std::vector<Block*> all_blocks(CheckProgram& p) {
  std::vector<Block*> out;
  for (Block& b : p.blocks) collect_blocks(b, out);
  return out;
}

/// One structural reduction, addressed by block ordinal so it can be applied
/// to a fresh clone.
struct Mutation {
  enum Kind {
    kDropTopBlock,   // arg0 = top-level block index
    kDropAlt,        // arg0 = block ordinal, arg1 = alternative index
    kDropOp,         // arg0 = block ordinal, arg1 = alt, arg2 = op
    kSimplifyOp,     // like kDropOp but replaces the op (variant = which way)
    kDropRecv,       // arg0 = block ordinal: clear recv_after
    kDropExtern,     // arg0 = block ordinal: clear extern_after
  };
  Kind kind = kDropTopBlock;
  std::size_t arg0 = 0, arg1 = 0, arg2 = 0;
  int variant = 0;
};

/// All mutations applicable to `p`, cheapest-win first: whole blocks, then
/// alternatives, then ops, then field simplifications.
std::vector<Mutation> mutations_of(const CheckProgram& p) {
  std::vector<Mutation> out;
  CheckProgram scratch = clone_program(p);
  if (scratch.blocks.size() > 1) {
    for (std::size_t i = 0; i < scratch.blocks.size(); ++i) {
      out.push_back(Mutation{Mutation::kDropTopBlock, i, 0, 0, 0});
    }
  }
  const std::vector<Block*> blocks = all_blocks(scratch);
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    if (blocks[bi]->alts.size() > 1) {
      for (std::size_t j = 0; j < blocks[bi]->alts.size(); ++j) {
        out.push_back(Mutation{Mutation::kDropAlt, bi, j, 0, 0});
      }
    }
  }
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    for (std::size_t j = 0; j < blocks[bi]->alts.size(); ++j) {
      for (std::size_t k = 0; k < blocks[bi]->alts[j].ops.size(); ++k) {
        out.push_back(Mutation{Mutation::kDropOp, bi, j, k, 0});
      }
    }
  }
  for (std::size_t bi = 0; bi < blocks.size(); ++bi) {
    if (blocks[bi]->recv_after) {
      out.push_back(Mutation{Mutation::kDropRecv, bi, 0, 0, 0});
    }
    if (blocks[bi]->extern_after) {
      out.push_back(Mutation{Mutation::kDropExtern, bi, 0, 0, 0});
    }
    for (std::size_t j = 0; j < blocks[bi]->alts.size(); ++j) {
      for (std::size_t k = 0; k < blocks[bi]->alts[j].ops.size(); ++k) {
        const CheckOp& op = blocks[bi]->alts[j].ops[k];
        if (const auto* w = std::get_if<OpWork>(&op)) {
          if (w->amount > 1) out.push_back(Mutation{Mutation::kSimplifyOp, bi, j, k, 0});
        } else if (const auto* wr = std::get_if<OpWrite>(&op)) {
          if (wr->value != 1) out.push_back(Mutation{Mutation::kSimplifyOp, bi, j, k, 1});
        } else if (std::holds_alternative<OpGuardEq>(op)) {
          out.push_back(Mutation{Mutation::kSimplifyOp, bi, j, k, 2});  // -> true
          out.push_back(Mutation{Mutation::kSimplifyOp, bi, j, k, 3});  // -> false
        }
      }
    }
  }
  return out;
}

CheckProgram apply(const CheckProgram& p, const Mutation& m) {
  CheckProgram out = clone_program(p);
  if (m.kind == Mutation::kDropTopBlock) {
    out.blocks.erase(out.blocks.begin() + static_cast<std::ptrdiff_t>(m.arg0));
    return out;
  }
  Block& b = *all_blocks(out)[m.arg0];
  switch (m.kind) {
    case Mutation::kDropAlt:
      b.alts.erase(b.alts.begin() + static_cast<std::ptrdiff_t>(m.arg1));
      break;
    case Mutation::kDropOp:
      b.alts[m.arg1].ops.erase(b.alts[m.arg1].ops.begin() +
                               static_cast<std::ptrdiff_t>(m.arg2));
      break;
    case Mutation::kDropRecv:
      b.recv_after = false;
      break;
    case Mutation::kDropExtern:
      b.extern_after = false;
      break;
    case Mutation::kSimplifyOp: {
      CheckOp& op = b.alts[m.arg1].ops[m.arg2];
      switch (m.variant) {
        case 0: std::get<OpWork>(op).amount = 1; break;
        case 1: std::get<OpWrite>(op).value = 1; break;
        case 2: op = OpGuardConst{true}; break;
        case 3: op = OpGuardConst{false}; break;
      }
      break;
    }
    case Mutation::kDropTopBlock:
      break;  // handled above
  }
  return out;
}

bool structurally_valid(const CheckProgram& p) {
  if (p.blocks.empty()) return false;
  try {
    validate(p);
  } catch (const UsageError&) {
    return false;
  }
  return true;
}

/// A case "fails" if any of confirm_runs executions violates an invariant.
bool still_fails(const CheckCase& c, const ShrinkOptions& opts, int& runs_left,
                 std::string* invariant) {
  for (int r = 0; r < opts.confirm_runs; ++r) {
    if (runs_left <= 0) return false;
    --runs_left;
    const CaseResult res = run_case(c);
    if (res.violation.has_value()) {
      if (invariant != nullptr) *invariant = *res.violation;
      return true;
    }
  }
  return false;
}

}  // namespace

ShrinkResult shrink(const CheckCase& c, const ShrinkOptions& opts) {
  ShrinkResult out;
  out.reduced = c;
  out.reduced.program = clone_program(c.program);
  int runs_left = opts.max_case_runs;
  std::string invariant;
  // Greedy first-improvement to a fixpoint: after any accepted reduction,
  // rescan from the smaller program.
  bool improved = true;
  while (improved && runs_left > 0) {
    improved = false;
    for (const Mutation& m : mutations_of(out.reduced.program)) {
      CheckCase candidate = out.reduced;
      candidate.program = apply(out.reduced.program, m);
      if (!structurally_valid(candidate.program)) continue;
      if (still_fails(candidate, opts, runs_left, &invariant)) {
        out.reduced = std::move(candidate);
        out.invariant = invariant;
        improved = true;
        break;
      }
      if (runs_left <= 0) break;
    }
  }
  out.case_runs = opts.max_case_runs - runs_left;
  if (out.invariant.empty()) {
    // No reduction held; re-confirm the original for the invariant name.
    const CaseResult res = run_case(out.reduced);
    out.invariant = res.violation.value_or("");
  }
  return out;
}

}  // namespace altx::check
