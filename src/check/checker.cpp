#include "check/checker.hpp"

#include <set>

#include "common/error.hpp"

namespace altx::check {
namespace {

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

}  // namespace

CaseResult run_case(const CheckCase& c) {
  CaseResult res;
  const RunOutcome run =
      c.backend == Backend::kSim
          ? run_sim(c.program, c.schedule_seed)
          : run_posix(c.program, c.schedule_seed, c.faulty, c.governed,
                      c.predicted);
  res.interleaving = run.interleaving;
  if (!run.violation.empty()) {
    res.violation = run.violation;
    return res;
  }
  if (run.inconclusive) {
    res.inconclusive = true;
    return res;
  }
  const std::vector<Observation> outcomes = oracle_outcomes(c.program);
  if (!oracle_admits(outcomes, run.obs)) {
    res.violation = "oracle-membership";
    std::string d = "observed " + to_string(run.obs) + "; " +
                    std::to_string(outcomes.size()) + " admissible:";
    for (const Observation& o : outcomes) d += "\n  " + to_string(o);
    res.detail = std::move(d);
  }
  return res;
}

std::optional<Counterexample> run_trials(std::uint64_t trials, std::uint64_t seed,
                                         bool sim_enabled, bool posix_enabled,
                                         bool faults, bool governor,
                                         const GenConfig& base,
                                         TrialStats* stats, bool predictor) {
  TrialStats local;
  TrialStats& st = stats != nullptr ? *stats : local;
  st = TrialStats{};
  std::set<std::uint64_t> interleavings;

  std::vector<Backend> wheel;
  if (sim_enabled) wheel.push_back(Backend::kSim);
  if (posix_enabled) wheel.push_back(Backend::kPosix);
  ALTX_REQUIRE(!wheel.empty(), "run_trials: no backend enabled");

  for (std::uint64_t t = 0; t < trials; ++t) {
    CheckCase c;
    c.backend = wheel[t % wheel.size()];
    // Every third posix case runs fault-injected when faults are on; every
    // other one runs governor-perturbed when governor is on — the cadences
    // are coprime-ish, so the faulty × governed combination gets coverage.
    // Prediction rides a third cadence (two rounds in three) that crosses
    // both: predicted×faulty, predicted×governed, and each flag alone all
    // occur within any six posix rounds.
    c.faulty = faults && c.backend == Backend::kPosix && (t / wheel.size()) % 3 == 0;
    c.governed =
        governor && c.backend == Backend::kPosix && (t / wheel.size()) % 2 == 0;
    c.predicted =
        predictor && c.backend == Backend::kPosix && (t / wheel.size()) % 3 != 1;

    const std::uint64_t gen_seed = mix64(seed ^ mix64(t + 1));
    c.schedule_seed = mix64(seed ^ mix64(t + 0x517cc1b727220a95ULL));
    GenConfig cfg = base;
    if (c.backend == Backend::kPosix) {
      cfg.allow_extern = false;  // no source devices / ports on this backend
      cfg.allow_send = false;
    }
    c.program = generate_program(gen_seed, cfg);

    ++st.trials;
    if (c.backend == Backend::kSim) {
      ++st.sim_trials;
    } else {
      ++st.posix_trials;
    }
    if (c.faulty) ++st.faulty_trials;
    if (c.governed) ++st.governor_trials;
    if (c.predicted) ++st.predicted_trials;

    const CaseResult r = run_case(c);
    interleavings.insert(r.interleaving);
    st.oracle_outcomes_total += oracle_outcomes(c.program).size();
    st.distinct_interleavings = interleavings.size();
    if (r.inconclusive) {
      ++st.inconclusive;
      continue;
    }
    if (r.violation.has_value()) {
      Counterexample cx;
      cx.found = c;
      cx.invariant = *r.violation;
      cx.detail = r.detail;
      cx.gen_seed = gen_seed;
      cx.trial = t;
      return cx;
    }
  }
  return std::nullopt;
}

}  // namespace altx::check
