#include "check/generate.hpp"

#include <memory>

#include "common/rng.hpp"

namespace altx::check {
namespace {

OpWrite random_write(Rng& rng) {
  // Values from a tiny set so guard_eq comparisons sometimes match writes.
  return OpWrite{static_cast<std::uint32_t>(rng.below(kPages)),
                 static_cast<std::uint32_t>(rng.below(kWords)),
                 1 + rng.below(4)};
}

OpGuardEq random_guard_eq(Rng& rng) {
  return OpGuardEq{static_cast<std::uint32_t>(rng.below(kPages)),
                   static_cast<std::uint32_t>(rng.below(kWords)),
                   rng.below(5),  // 0 matches untouched cells; 1..4 match writes
                   rng.chance(0.3)};
}

Block generate_block(Rng& rng, const GenConfig& cfg, int depth);

Alternative generate_alt(Rng& rng, const GenConfig& cfg, int depth,
                         bool may_send) {
  Alternative a;
  const std::uint32_t n_ops = 1 + static_cast<std::uint32_t>(rng.below(cfg.max_ops));
  for (std::uint32_t i = 0; i < n_ops; ++i) {
    switch (rng.below(5)) {
      case 0:
        a.ops.emplace_back(OpWork{1 + static_cast<std::uint32_t>(rng.below(4))});
        break;
      case 1:
      case 2:
        a.ops.emplace_back(random_write(rng));
        break;
      case 3:
        // Mostly-true constant guards keep FAIL reachable but not dominant.
        a.ops.emplace_back(OpGuardConst{rng.chance(0.75)});
        break;
      case 4:
        a.ops.emplace_back(random_guard_eq(rng));
        break;
    }
  }
  if (depth == 1 && cfg.allow_nested && rng.chance(0.35)) {
    a.ops.emplace_back(
        OpBlock{std::make_shared<Block>(generate_block(rng, cfg, depth + 1))});
  }
  if (may_send && rng.chance(0.6)) {
    // Position is irrelevant to the winner's delivery, but an early send in
    // an alternative that later fails exercises dead-message dropping.
    const std::size_t pos = rng.below(a.ops.size() + 1);
    a.ops.insert(a.ops.begin() + static_cast<std::ptrdiff_t>(pos),
                 CheckOp{OpSend{100 + rng.below(9)}});
  }
  return a;
}

Block generate_block(Rng& rng, const GenConfig& cfg, int depth) {
  Block b;
  const std::size_t n_alts = 1 + rng.below(cfg.max_alts);
  const bool top = depth == 1;
  const bool want_send = top && cfg.allow_send && rng.chance(0.4);
  bool any_send = false;
  for (std::size_t i = 0; i < n_alts; ++i) {
    Alternative a = generate_alt(rng, cfg, depth, want_send);
    for (const CheckOp& op : a.ops) {
      if (std::holds_alternative<OpSend>(op)) any_send = true;
    }
    b.alts.push_back(std::move(a));
  }
  if (any_send) {
    b.recv_after = true;
    b.recv_page = static_cast<std::uint32_t>(rng.below(kPages));
    b.recv_word = static_cast<std::uint32_t>(rng.below(kWords));
    b.recv_timeout_value = 777;
  }
  // Speculative code may never touch a device (the kernel gates it), so the
  // observable extern is the root's, after the block decides. A FAIL that
  // still produces the tag — or a commit that loses it — is a violation.
  if (top && cfg.allow_extern && rng.chance(0.4)) {
    b.extern_after = true;
    b.extern_tag = 200 + rng.below(9);
  }
  return b;
}

}  // namespace

CheckProgram generate_program(std::uint64_t seed, const GenConfig& cfg) {
  Rng rng(seed ^ 0xa17c4ec5a17c4ec5ULL);
  CheckProgram p;
  const std::size_t n_blocks = 1 + rng.below(cfg.max_blocks);
  for (std::size_t i = 0; i < n_blocks; ++i) {
    p.blocks.push_back(generate_block(rng, cfg, 1));
  }
  validate(p);
  return p;
}

}  // namespace altx::check
