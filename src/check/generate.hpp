// Seeded random program generation for altx-check.
//
// Programs are drawn so the interesting collisions are frequent: few shared
// cells (so alternatives overwrite each other's pages), a mix of always-true,
// always-false and data-dependent guards (so blocks sometimes FAIL and
// sometimes depend on a nested winner's absorbed writes), nested blocks, and
// — when the target backend supports them — observable source writes and
// predicated sends. Every program returned satisfies check::validate.
#pragma once

#include <cstdint>

#include "check/ir.hpp"

namespace altx::check {

struct GenConfig {
  std::uint32_t max_blocks = 3;  // top-level blocks
  std::uint32_t max_alts = 3;    // alternatives per block
  std::uint32_t max_ops = 4;     // plain ops per alternative
  bool allow_nested = true;
  /// Sim-only observables (the POSIX runner has no source devices or ports).
  bool allow_extern = true;
  bool allow_send = true;
};

/// Deterministic: the same (seed, config) always yields the same program.
[[nodiscard]] CheckProgram generate_program(std::uint64_t seed,
                                            const GenConfig& cfg = {});

}  // namespace altx::check
