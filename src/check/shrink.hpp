// Counterexample shrinking.
//
// A generated counterexample is usually big: several blocks, several
// alternatives, ops that play no part in the failure. The shrinker
// greedily applies structural reductions — drop a block, drop an
// alternative, drop an op (including whole nested blocks), shrink numeric
// fields — re-running the case after each candidate and keeping any
// reduction that still violates an invariant. Because a posix case can be
// timing-dependent, the predicate re-runs a candidate a few times and
// counts it failing if any run violates. The fixpoint is the minimal
// replayable .altcheck repro.
#pragma once

#include <cstdint>

#include "check/checker.hpp"

namespace altx::check {

struct ShrinkOptions {
  /// Re-runs per candidate; a candidate "still fails" if any run violates.
  int confirm_runs = 2;
  /// Safety valve on total case executions.
  int max_case_runs = 4000;
};

struct ShrinkResult {
  CheckCase reduced;
  std::string invariant;  // invariant the reduced case violates
  int case_runs = 0;      // executions spent shrinking
};

/// `c` must currently violate (as reported by run_case). Returns the
/// smallest still-failing case found.
[[nodiscard]] ShrinkResult shrink(const CheckCase& c, const ShrinkOptions& opts = {});

}  // namespace altx::check
