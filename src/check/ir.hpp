// The checker's program IR.
//
// altx-check generates random alternative-block programs, runs them on the
// sim kernel, the POSIX fork/COW backend, and the sequential oracle, and
// compares observations. The IR is the smallest language that exercises the
// paper's semantics: straight-line alternatives over a tiny shared memory
// (writes drive the COW/dirty-page machinery), guards that succeed or fail
// (constant and data-dependent), nested alternative blocks, observable
// source-device writes, and predicated IPC back to the parent. There is no
// general control flow — exactly like sim::Program, the only branches are
// the ones the paper's constructs introduce.
//
// A failing (program, backend, seeds) triple serialises to a line-oriented
// `.altcheck` text file (see serialize/parse_repro) that altx-check --replay
// re-executes deterministically.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace altx::check {

/// Shared-memory geometry. Small on purpose: few cells means generated
/// programs collide on pages often, which is where absorb/census bugs live.
inline constexpr std::uint32_t kPages = 6;
inline constexpr std::uint32_t kWords = 2;
inline constexpr std::uint32_t kCells = kPages * kWords;

[[nodiscard]] constexpr std::uint32_t cell_index(std::uint32_t page,
                                                 std::uint32_t word) {
  return page * kWords + word;
}

/// Burn CPU for `amount` abstract units (sim: amount ms of compute; posix:
/// a short real sleep). Work ops shift who wins the commit race.
struct OpWork {
  std::uint32_t amount = 1;
};

/// Write `value` to shared cell (page, word); dirties the page.
struct OpWrite {
  std::uint32_t page = 0;
  std::uint32_t word = 0;
  std::uint64_t value = 0;
};

/// ENSURE that always holds (ok) or always fails (!ok).
struct OpGuardConst {
  bool ok = true;
};

/// ENSURE over the current shared memory: cell (page, word) == value
/// (negate flips it). Data-dependent failure — whether it trips can depend
/// on earlier writes, including a nested block's absorbed winner.
struct OpGuardEq {
  std::uint32_t page = 0;
  std::uint32_t word = 0;
  std::uint64_t value = 0;
  bool negate = false;
};

/// Predicated IPC: send `tag` to the parent's per-block port (sim only).
/// A losing sender's message dies with its world; the winner's message is
/// what the block's recv_after observes.
struct OpSend {
  std::uint64_t tag = 0;
};

struct Block;

/// A nested alternative block inside an alternative (depth <= 2).
struct OpBlock {
  std::shared_ptr<Block> block;
};

using CheckOp =
    std::variant<OpWork, OpWrite, OpGuardConst, OpGuardEq, OpSend, OpBlock>;

struct Alternative {
  std::vector<CheckOp> ops;
};

struct Block {
  std::vector<Alternative> alts;

  /// Top-level blocks only: after the block commits, the parent receives the
  /// winner's OpSend tag into cell (recv_page, recv_word) — or, if the winner
  /// sent nothing, `recv_timeout_value` once the recv deadline passes.
  bool recv_after = false;
  std::uint32_t recv_page = 0;
  std::uint32_t recv_word = 0;
  std::uint64_t recv_timeout_value = 0;

  /// Top-level blocks only: after the block commits, the root performs an
  /// observable, non-idempotent write of `extern_tag` to source device 0
  /// (sim only). This is the paper's source discipline made testable: a
  /// speculative alternative may never touch a device (the kernel gates it
  /// on its unresolved predicates), so the only legal extern position is the
  /// root, post-commit. The device log is part of the observation, and the
  /// tag must appear iff the block decided — never after a FAIL.
  bool extern_after = false;
  std::uint64_t extern_tag = 0;
};

/// A program is a sequence of top-level alternative blocks executed by the
/// root process. A block with no committable alternative FAILs, and with no
/// FAIL arm in the IR that aborts the whole program (Observation::failed).
struct CheckProgram {
  std::vector<Block> blocks;
};

enum class Backend : std::uint8_t { kSim, kPosix };

[[nodiscard]] const char* to_string(Backend b);

/// A replayable counterexample: the program plus everything that determined
/// its execution. `invariant` is diagnostic (which check tripped).
struct ReproCase {
  CheckProgram program;
  Backend backend = Backend::kSim;
  bool faulty = false;
  bool governed = false;   // posix: run under a seeded SpeculationGovernor
  bool predicted = false;  // posix: seeded synthetic-history planner
  std::uint64_t gen_seed = 0;
  std::uint64_t schedule_seed = 0;
  std::string invariant;
};

/// Throws UsageError unless the program obeys the structural rules the
/// oracle and both runners rely on:
///   - every block has 1..4 alternatives; nesting depth <= 2;
///   - all page/word indices are in range;
///   - recv_after / extern_after only on top-level blocks;
///   - OpSend only in top-level alternatives, at most one per alternative.
void validate(const CheckProgram& p);

[[nodiscard]] std::size_t count_blocks(const CheckProgram& p);        // incl. nested
[[nodiscard]] std::size_t count_alternatives(const CheckProgram& p);  // incl. nested
[[nodiscard]] std::size_t max_alternatives(const CheckProgram& p);    // widest block
[[nodiscard]] bool uses_sim_only_ops(const CheckProgram& p);  // send/extern present

/// Line-oriented text form of a program (the body of a .altcheck file).
[[nodiscard]] std::string serialize(const CheckProgram& p);

/// Full .altcheck file contents.
[[nodiscard]] std::string serialize(const ReproCase& c);

/// Parses a full .altcheck file; throws UsageError (with a line number) on
/// anything malformed, and validates the program before returning.
[[nodiscard]] ReproCase parse_repro(const std::string& text);

}  // namespace altx::check
