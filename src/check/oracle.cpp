#include "check/oracle.hpp"

#include <optional>
#include <sstream>
#include <utility>

#include "core/schemes.hpp"

namespace altx::check {
namespace {

struct SeqState {
  std::array<std::uint64_t, kCells> cells{};
  std::vector<std::uint64_t> externs;
};

/// One possible execution of an alternative's op list: final state if the
/// alternative can run to completion (ok), or a failure. `sent` is the tag
/// of the first OpSend on the path, if any.
struct ExecOutcome {
  SeqState st;
  bool ok = false;
  std::optional<std::uint64_t> sent;
};

/// One possible outcome of a whole block: a committed alternative's final
/// state, or FAIL (ok == false, state as it was before the block — nothing
/// was absorbed).
struct BlockOutcome {
  SeqState st;
  bool ok = false;
  std::optional<std::uint64_t> sent;
};

std::vector<BlockOutcome> block_outcomes(const SeqState& st, const Block& b);

void exec_ops(SeqState st, const std::vector<CheckOp>& ops, std::size_t i,
              std::optional<std::uint64_t> sent, std::vector<ExecOutcome>& out) {
  for (; i < ops.size(); ++i) {
    const CheckOp& op = ops[i];
    if (std::holds_alternative<OpWork>(op)) {
      continue;  // timing is invisible to the oracle
    }
    if (const auto* w = std::get_if<OpWrite>(&op)) {
      st.cells[cell_index(w->page, w->word)] = w->value;
    } else if (const auto* gc = std::get_if<OpGuardConst>(&op)) {
      if (!gc->ok) {
        out.push_back(ExecOutcome{std::move(st), false, {}});
        return;
      }
    } else if (const auto* ge = std::get_if<OpGuardEq>(&op)) {
      const bool eq = st.cells[cell_index(ge->page, ge->word)] == ge->value;
      if (eq == ge->negate) {
        out.push_back(ExecOutcome{std::move(st), false, {}});
        return;
      }
    } else if (const auto* s = std::get_if<OpSend>(&op)) {
      if (!sent.has_value()) sent = s->tag;
    } else if (const auto* nb = std::get_if<OpBlock>(&op)) {
      // The nested block is the only branch point inside an alternative:
      // fork the enumeration once per nested outcome.
      for (BlockOutcome& bo : block_outcomes(st, *nb->block)) {
        if (!bo.ok) {
          // Nested FAIL propagates: the enclosing alternative aborts.
          out.push_back(ExecOutcome{st, false, {}});
        } else {
          exec_ops(std::move(bo.st), ops, i + 1, sent, out);
        }
      }
      return;
    }
  }
  out.push_back(ExecOutcome{std::move(st), true, sent});
}

std::vector<BlockOutcome> block_outcomes(const SeqState& st, const Block& b) {
  std::vector<BlockOutcome> res;
  // The block FAILs only when every alternative has at least one failing
  // execution (a sequential run could then have picked a failing path for
  // whichever alternative it tried).
  bool all_can_fail = true;
  // The choice set is scheme B's support: any alternative a sequential
  // random pick could select (core/schemes.hpp).
  for (const std::size_t ai : core::pick_support(b.alts.size())) {
    const Alternative& a = b.alts[ai];
    std::vector<ExecOutcome> outs;
    exec_ops(st, a.ops, 0, std::nullopt, outs);
    bool can_fail = false;
    for (ExecOutcome& o : outs) {
      if (o.ok) {
        res.push_back(BlockOutcome{std::move(o.st), true, o.sent});
      } else {
        can_fail = true;
      }
    }
    all_can_fail = all_can_fail && can_fail;
  }
  if (all_can_fail) res.push_back(BlockOutcome{st, false, {}});
  return res;
}

void add_unique(std::vector<Observation>& set, Observation o) {
  for (const Observation& e : set) {
    if (e == o) return;
  }
  set.push_back(std::move(o));
}

}  // namespace

std::string to_string(const Observation& o) {
  std::ostringstream out;
  out << (o.failed ? "FAIL" : "ok") << " cells=[";
  for (std::size_t i = 0; i < o.cells.size(); ++i) {
    if (i != 0) out << ' ';
    out << o.cells[i];
  }
  out << "] externs=[";
  for (std::size_t i = 0; i < o.externs.size(); ++i) {
    if (i != 0) out << ' ';
    out << o.externs[i];
  }
  out << ']';
  return out.str();
}

std::vector<Observation> oracle_outcomes(const CheckProgram& p) {
  validate(p);
  std::vector<Observation> finals;
  std::vector<SeqState> frontier{SeqState{}};
  for (const Block& b : p.blocks) {
    std::vector<SeqState> next;
    for (const SeqState& st : frontier) {
      for (BlockOutcome& bo : block_outcomes(st, b)) {
        if (!bo.ok) {
          // Top-level FAIL aborts the program; the state (and device log)
          // freeze as they were before the block.
          add_unique(finals, Observation{true, st.cells, st.externs});
          continue;
        }
        SeqState s2 = std::move(bo.st);
        if (b.recv_after) {
          s2.cells[cell_index(b.recv_page, b.recv_word)] =
              bo.sent.value_or(b.recv_timeout_value);
        }
        // The root's post-commit device write: lands iff the block decided.
        if (b.extern_after) s2.externs.push_back(b.extern_tag);
        next.push_back(std::move(s2));
      }
    }
    // Dedup between blocks to stop exponential frontier growth.
    std::vector<SeqState> deduped;
    for (SeqState& st : next) {
      bool seen = false;
      for (const SeqState& e : deduped) {
        if (e.cells == st.cells && e.externs == st.externs) {
          seen = true;
          break;
        }
      }
      if (!seen) deduped.push_back(std::move(st));
    }
    frontier = std::move(deduped);
  }
  for (const SeqState& st : frontier) {
    add_unique(finals, Observation{false, st.cells, st.externs});
  }
  return finals;
}

bool oracle_admits(const std::vector<Observation>& outcomes,
                   const Observation& o) {
  for (const Observation& e : outcomes) {
    if (e == o) return true;
  }
  return false;
}

}  // namespace altx::check
