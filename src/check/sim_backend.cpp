#include <array>
#include <map>
#include <memory>

#include "check/backends.hpp"
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "sim/kernel.hpp"
#include "sim/machine.hpp"
#include "sim/program.hpp"

namespace altx::check {
namespace {

constexpr std::uint32_t kSourceDevice = 0;
constexpr SimTime kRecvTimeout = 2'000'000;  // 2 sim-seconds ≫ ipc latency

[[nodiscard]] Port block_port(std::size_t top_block_index) {
  return static_cast<Port>(1000 + top_block_index);
}

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

sim::ProgramRef compile_block_body(const Block& b, sim::ProgramBuilder& pb,
                                   Port port);

sim::ProgramRef compile_alt(const Alternative& a, Port port) {
  sim::ProgramBuilder pb;
  for (const CheckOp& op : a.ops) {
    if (const auto* w = std::get_if<OpWork>(&op)) {
      pb.compute(static_cast<SimTime>(w->amount) * 1500);
    } else if (const auto* wr = std::get_if<OpWrite>(&op)) {
      pb.write(wr->page, wr->word, wr->value);
    } else if (const auto* gc = std::get_if<OpGuardConst>(&op)) {
      const bool ok = gc->ok;
      pb.guard([ok](const sim::AddressSpace&) { return ok; });
    } else if (const auto* ge = std::get_if<OpGuardEq>(&op)) {
      const OpGuardEq g = *ge;
      pb.guard([g](const sim::AddressSpace& as) {
        return (as.peek(g.page, g.word) == g.value) != g.negate;
      });
    } else if (const auto* s = std::get_if<OpSend>(&op)) {
      pb.send_u64(port, s->tag);
    } else if (const auto* nb = std::get_if<OpBlock>(&op)) {
      compile_block_body(*nb->block, pb, port);
    }
  }
  return pb.build();
}

/// Appends the block's alt op (and recv, for recv_after blocks) to `pb`.
/// No on_fail arm: a failed block aborts the executing process, which is
/// exactly the IR's FAIL-propagation rule.
sim::ProgramRef compile_block_body(const Block& b, sim::ProgramBuilder& pb,
                                   Port port) {
  std::vector<sim::ProgramRef> alts;
  alts.reserve(b.alts.size());
  for (const Alternative& a : b.alts) alts.push_back(compile_alt(a, port));
  pb.alt(std::move(alts));
  if (b.recv_after) {
    pb.recv(b.recv_page, b.recv_word, kRecvTimeout, b.recv_timeout_value);
  }
  if (b.extern_after) {
    // The root's own write, after the commit: by the source discipline this
    // is the only position from which a device write can become observable.
    Bytes data;
    ByteWriter bw(data);
    bw.u64(b.extern_tag);
    pb.source_write(kSourceDevice, std::move(data));
  }
  return pb.build();
}

}  // namespace

RunOutcome run_sim(const CheckProgram& p, std::uint64_t schedule_seed) {
  validate(p);
  RunOutcome out;

  // Derive the schedule knobs. Every draw is from the seed alone.
  Rng srng(schedule_seed ^ 0x5c4d3e2f1a0b9c8dULL);
  sim::Kernel::Config cfg;
  cfg.machine =
      sim::MachineModel::shared_memory_mp(1 + static_cast<int>(srng.below(4)));
  cfg.address_space_pages = kPages;
  cfg.words_per_page = kWords;
  cfg.elimination = srng.chance(0.5) ? sim::Elimination::kSynchronous
                                     : sim::Elimination::kAsynchronous;
  // Per-step cost jitter: 0 (the unperturbed schedule) or up to ~amp us,
  // hashed from (seed, pid, step ordinal) — reorders who reaches the commit
  // point first without changing any program's semantics.
  const std::uint64_t amp = std::array<std::uint64_t, 4>{0, 7, 131, 2503}[srng.below(4)];
  if (amp != 0) {
    auto counters = std::make_shared<std::map<Pid, std::uint64_t>>();
    cfg.perturb_cost = [schedule_seed, amp, counters](Pid pid,
                                                      SimTime cost) {
      const std::uint64_t step = (*counters)[pid]++;
      const std::uint64_t h =
          mix64(schedule_seed ^ mix64(static_cast<std::uint64_t>(pid)) ^ step);
      return cost + static_cast<SimTime>(h % (amp + 1));
    };
  }

  sim::Kernel kernel(cfg);

  sim::ProgramBuilder root;
  for (std::size_t i = 0; i < p.blocks.size(); ++i) {
    // recv_after needs the port bound before the children can send to it.
    if (p.blocks[i].recv_after) root.bind(block_port(i));
    compile_block_body(p.blocks[i], root, block_port(i));
  }
  const Pid root_pid = kernel.spawn_root(root.build());
  kernel.run();

  // --- backend-local invariants ---
  const sim::ExitKind exit = kernel.exit_kind(root_pid);
  if (exit != sim::ExitKind::kCompleted && exit != sim::ExitKind::kAborted) {
    out.violation = "sim-root-terminated";  // root can neither lose nor stall
    return out;
  }
  if (!kernel.blocked_pids().empty()) {
    out.violation = "sim-deadlock";
    return out;
  }
  // Predicate consistency: by the time the root consumes a message its
  // sender is resolved, so the root must never have been split into worlds.
  if (kernel.stats().world_splits != 0) {
    out.violation = "sim-world-split";
    return out;
  }
  // No timeouts were configured; one firing means the kernel lost a child.
  if (kernel.stats().alt_timeouts != 0) {
    out.violation = "sim-alt-timeout";
    return out;
  }

  // --- observation ---
  out.obs.failed = exit == sim::ExitKind::kAborted;
  const sim::SimProcess* proc = kernel.process(root_pid);
  for (std::uint32_t pg = 0; pg < kPages; ++pg) {
    for (std::uint32_t wd = 0; wd < kWords; ++wd) {
      out.obs.cells[cell_index(pg, wd)] = proc->as_.peek(pg, wd);
    }
  }
  for (const auto& rec : kernel.source(kSourceDevice).writes()) {
    ByteReader br(rec.data);
    out.obs.externs.push_back(br.u64());
  }

  const sim::KernelStats& st = kernel.stats();
  out.interleaving = mix64(st.finished_at) ^ mix64(st.commits * 31 + st.eliminations) ^
                     mix64(st.cow_copies * 17 + st.ctx_switches);
  return out;
}

}  // namespace altx::check
