// Execution backends for altx-check.
//
// Each runner executes a CheckProgram under a schedule derived
// deterministically from `schedule_seed`, checks the backend-local invariants
// (the ones only it can see: exactly-one-commit from the fate census, no
// world splits, no deadlock), and returns the externally visible Observation
// for the oracle-membership check in checker.cpp.
//
// Schedule exploration:
//   sim    — CPU count, sync/async elimination, and a seeded per-pid cost
//            jitter injected through Kernel::Config::perturb_cost, which
//            reorders slice completions and therefore commit races. Fully
//            deterministic: same (program, seed) → same execution.
//   posix  — fork-order rotation of the alternatives plus (faulty mode) a
//            seeded FaultProfile driven through posix::FaultInjector and
//            supervised_race. The OS scheduler stays nondeterministic, which
//            is the point: the oracle-membership check must hold for *every*
//            real interleaving.
#pragma once

#include <cstdint>
#include <string>

#include "check/ir.hpp"
#include "check/oracle.hpp"

namespace altx::check {

struct RunOutcome {
  Observation obs;

  /// Non-empty when a backend-local invariant tripped (the observation is
  /// then meaningless). The string names the invariant.
  std::string violation;

  /// True when the run was an environmental wash — a real-time deadline hit
  /// or retries exhausted without a definitive verdict. Not a violation;
  /// the trial is counted separately and the observation is not checked.
  bool inconclusive = false;

  /// Diagnostic hash of the schedule actually taken (winner indices, fates,
  /// finish times); distinct values ≈ distinct interleavings explored.
  std::uint64_t interleaving = 0;
};

[[nodiscard]] RunOutcome run_sim(const CheckProgram& p, std::uint64_t schedule_seed);

/// `faulty` runs under supervised_race with an injected fault plan (crashes,
/// kills, lost commits) instead of a plain race. Requires a program without
/// sim-only ops (extern/send) — see uses_sim_only_ops.
///
/// `governed` additionally runs the whole trial under a seed-derived
/// SpeculationGovernor (a tight token budget, admission waits, a generous
/// per-arm wall budget, sometimes a SIGTERM grace): admission denials must
/// degrade blocks to serialized execution without ever changing the set of
/// admissible outcomes, and the token cap must hold (overdrafts excepted) —
/// checked as "governor-cap-exceeded".
///
/// `predicted` runs every block under a SpeculationPlanner fed a seed-derived
/// *synthetic* history (per-block sites, per-arm warm/cold walls and success
/// rates that need not resemble what the arms do): staging and predicted
/// kills must preserve oracle membership, at-most-once-commit, and liveness
/// no matter how wrong the injected history is. Skips stay disabled — a
/// short-circuited guard is only admissible when the history is real — and a
/// FAIL with predicted kills in it is inconclusive, not a verdict: the
/// predictor may legitimately have killed the would-be winner.
[[nodiscard]] RunOutcome run_posix(const CheckProgram& p, std::uint64_t schedule_seed,
                                   bool faulty, bool governed = false,
                                   bool predicted = false);

}  // namespace altx::check
