// The sequential oracle.
//
// The paper's claim (§3.1) is that a concurrently executed alternative block
// is observationally equivalent to *some* sequential execution that picks one
// committable alternative per block — scheme B of src/core/schemes.hpp picks
// that alternative at random, which is exactly why the oracle must enumerate
// every choice: any of scheme B's possible picks is a legal outcome. The
// oracle therefore walks the choice tree exhaustively (alternatives per
// block, recursively through nested blocks) and returns the deduplicated set
// of final observations. An execution backend is correct when its observed
// outcome is a member of this set.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "check/ir.hpp"

namespace altx::check {

/// Everything an outside observer can see of one execution: whether the
/// program FAILed (a top-level block with no committable alternative), the
/// final shared memory, and the ordered log of source-device write tags.
struct Observation {
  bool failed = false;
  std::array<std::uint64_t, kCells> cells{};
  std::vector<std::uint64_t> externs;

  friend bool operator==(const Observation&, const Observation&) = default;
};

[[nodiscard]] std::string to_string(const Observation& o);

/// All observations some sequential execution can produce. Deduplicated;
/// never empty (every program has at least one sequential outcome).
[[nodiscard]] std::vector<Observation> oracle_outcomes(const CheckProgram& p);

[[nodiscard]] bool oracle_admits(const std::vector<Observation>& outcomes,
                                 const Observation& o);

}  // namespace altx::check
