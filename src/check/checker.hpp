// The equivalence checker: generate → execute → compare against the oracle.
//
// One *case* is (program, backend, faulty?, schedule_seed). Running a case
// executes the program on the backend under the seeded schedule, collects
// the backend-local invariant verdicts (exactly-one-commit, loser-effect
// visibility, predicate consistency, no deadlock), and then checks the
// paper's top-level claim: the observation must be a member of the
// sequential oracle's outcome set. run_trials drives many cases from one
// master seed and stops at the first violation, which the CLI hands to the
// shrinker.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "check/backends.hpp"
#include "check/generate.hpp"
#include "check/ir.hpp"

namespace altx::check {

struct CheckCase {
  CheckProgram program;
  Backend backend = Backend::kSim;
  bool faulty = false;
  bool governed = false;   // posix: seeded SpeculationGovernor perturbation
  bool predicted = false;  // posix: seeded synthetic-history SpeculationPlanner
  std::uint64_t schedule_seed = 0;
};

struct CaseResult {
  /// Set when an invariant tripped; names it ("at-most-once-commit",
  /// "oracle-membership", ...). detail carries diagnostics.
  std::optional<std::string> violation;
  std::string detail;
  bool inconclusive = false;
  std::uint64_t interleaving = 0;
};

/// Executes one case and checks every invariant, including oracle
/// membership. Deterministic for sim cases; posix cases may legitimately
/// observe different admissible outcomes across runs.
[[nodiscard]] CaseResult run_case(const CheckCase& c);

struct TrialStats {
  std::uint64_t trials = 0;
  std::uint64_t sim_trials = 0;
  std::uint64_t posix_trials = 0;
  std::uint64_t faulty_trials = 0;
  std::uint64_t governor_trials = 0;
  std::uint64_t predicted_trials = 0;
  std::uint64_t inconclusive = 0;
  std::uint64_t oracle_outcomes_total = 0;  // summed sizes of outcome sets
  std::uint64_t distinct_interleavings = 0;
};

struct Counterexample {
  CheckCase found;
  std::string invariant;
  std::string detail;
  std::uint64_t gen_seed = 0;
  std::uint64_t trial = 0;
};

/// Runs `trials` generated cases from `seed`, alternating across the enabled
/// backends (faulty posix cases mixed in when `faults`, governor-perturbed
/// posix cases when `governor`, prediction-planned posix cases over
/// seed-derived synthetic histories when `predictor`). Returns the first
/// counterexample, or nullopt if everything passed.
[[nodiscard]] std::optional<Counterexample> run_trials(
    std::uint64_t trials, std::uint64_t seed, bool sim_enabled,
    bool posix_enabled, bool faults, bool governor, const GenConfig& base,
    TrialStats* stats, bool predictor = false);

}  // namespace altx::check
