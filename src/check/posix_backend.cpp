#include <sys/mman.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <ctime>
#include <optional>

#include "check/backends.hpp"
#include "common/error.hpp"
#include "common/rng.hpp"
#include "obs/history.hpp"
#include "posix/alt_heap.hpp"
#include "posix/fault.hpp"
#include "posix/governor.hpp"
#include "posix/predictor.hpp"
#include "posix/race.hpp"
#include "posix/supervisor.hpp"

namespace altx::check {
namespace {

/// Cross-process scoreboard: a child that detects an invariant violation in
/// a *nested* block (it is the parent of that block) cannot return the fact
/// through its own commit pipe — it may be a loser whose result is dropped —
/// so it records it in a MAP_SHARED arena every process can see.
struct SharedScore {
  std::atomic<std::uint32_t> violations;
  char invariant[64];
};

class SharedScoreMap {
 public:
  SharedScoreMap() {
    void* p = ::mmap(nullptr, sizeof(SharedScore), PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
    ALTX_REQUIRE(p != MAP_FAILED, "altx-check: mmap(shared score) failed");
    score_ = new (p) SharedScore{};
  }
  ~SharedScoreMap() { ::munmap(score_, sizeof(SharedScore)); }
  SharedScoreMap(const SharedScoreMap&) = delete;
  SharedScoreMap& operator=(const SharedScoreMap&) = delete;

  SharedScore* get() const { return score_; }

  void report(const char* invariant) const {
    if (score_->violations.fetch_add(1, std::memory_order_relaxed) == 0) {
      std::strncpy(score_->invariant, invariant, sizeof(score_->invariant) - 1);
    }
  }

 private:
  SharedScore* score_ = nullptr;
};

std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

void burn(std::uint32_t amount) {
  // ~100 us per unit. Real sleep, not spin: trials run many blocks and CI
  // machines are shared.
  timespec ts{0, static_cast<long>(amount) * 100'000};
  ::nanosleep(&ts, nullptr);
}

struct Ctx {
  altx::posix::AltHeap* heap;
  const SharedScoreMap* score;
  std::uint64_t schedule_seed;
  altx::posix::FaultInjector* injector;  // top-level blocks only; may be null
  bool faulty;
  altx::posix::SpeculationGovernor* governor;  // governed trials; may be null
  const altx::posix::SpeculationPlanner* planner = nullptr;  // predicted only
};

/// Stable per-block site id for the synthetic history, derived from the same
/// path numbering run_block uses (top-level block i is path i+1; a block
/// nested in alternative j of path p is p*13 + j + 1). Nonzero by
/// construction so race<T> always consults the planner.
std::uint64_t site_for(std::uint64_t path) {
  return mix64(path ^ 0xa17c'0e19'beef'cafeULL) | 1;
}

/// Seed-derived synthetic history for every block of the program: some arms
/// stay cold, warm arms get walls anywhere in 0.1–10 ms and coin-flip
/// success rates. Deliberately unrelated to what the arms really do — the
/// property under test is that plans built from *wrong* history are still
/// safe, not that they are fast.
void seed_history(altx::obs::HistoryStore& store, Rng& rng, const Block& b,
                  std::uint64_t path) {
  const std::uint64_t site = site_for(path);
  for (std::size_t j = 0; j < b.alts.size(); ++j) {
    if (rng.chance(0.35)) continue;  // cold arm: must always launch
    const std::uint64_t wall = 100'000 + rng.below(80) * 125'000;
    const int samples = 3 + static_cast<int>(rng.below(6));
    const double p_success = rng.chance(0.5) ? 0.9 : 0.1;
    for (int s = 0; s < samples; ++s) {
      store.record(site, static_cast<std::uint32_t>(j) + 1,
                   wall + static_cast<std::uint64_t>(s) * 10'000, wall / 2,
                   rng.chance(p_success));
    }
  }
  for (std::size_t j = 0; j < b.alts.size(); ++j) {
    for (const CheckOp& op : b.alts[j].ops) {
      if (const auto* nb = std::get_if<OpBlock>(&op)) {
        seed_history(store, rng, *nb->block, path * 13 + j + 1);
      }
    }
  }
}

[[nodiscard]] std::uint64_t* cell(const Ctx& c, std::uint32_t page, std::uint32_t word) {
  return c.heap->at<std::uint64_t>(page * c.heap->page_size() +
                                   word * sizeof(std::uint64_t));
}

/// Runs one block; nullopt = the block FAILed (definitively). Sets
/// *inconclusive instead when the environment never yielded a verdict.
/// `path` numbers blocks along the execution path for rotation derivation.
std::optional<std::uint64_t> run_block(const Ctx& c, const Block& b, int depth,
                                       std::uint64_t path, bool* inconclusive);

altx::posix::AlternativeFn<std::uint64_t> make_alt(const Ctx& c, const Block& b,
                                                   std::size_t alt_index, int depth,
                                                   std::uint64_t path) {
  const Alternative* a = &b.alts[alt_index];
  return [&c, a, alt_index, depth, path]() -> std::optional<std::uint64_t> {
    for (const CheckOp& op : a->ops) {
      if (const auto* w = std::get_if<OpWork>(&op)) {
        burn(w->amount);
      } else if (const auto* wr = std::get_if<OpWrite>(&op)) {
        *cell(c, wr->page, wr->word) = wr->value;
      } else if (const auto* gc = std::get_if<OpGuardConst>(&op)) {
        if (!gc->ok) return std::nullopt;
      } else if (const auto* ge = std::get_if<OpGuardEq>(&op)) {
        if ((*cell(c, ge->page, ge->word) == ge->value) == ge->negate) {
          return std::nullopt;
        }
      } else if (const auto* nb = std::get_if<OpBlock>(&op)) {
        bool nested_inconclusive = false;
        const auto r = run_block(c, *nb->block, depth + 1,
                                 path * 13 + alt_index + 1, &nested_inconclusive);
        if (nested_inconclusive) {
          // An environmental wash inside a speculative child cannot be
          // told apart from a failed guard by the parent; surface it so
          // the whole trial is discarded rather than misjudged.
          c.score->report("posix-nested-inconclusive");
          return std::nullopt;
        }
        if (!r.has_value()) return std::nullopt;  // nested FAIL aborts us
      }
      // OpExtern / OpSend are rejected before run_posix starts.
    }
    return alt_index + 1;  // 1-based original index
  };
}

std::optional<std::uint64_t> run_block(const Ctx& c, const Block& b, int depth,
                                       std::uint64_t path, bool* inconclusive) {
  const std::size_t n = b.alts.size();
  // Fork-order rotation: which alternative is spawned first (and so tends to
  // win ties) is a schedule decision, derived from the seed per block.
  const std::size_t rot =
      static_cast<std::size_t>(mix64(c.schedule_seed ^ mix64(path)) % n);
  std::vector<altx::posix::AlternativeFn<std::uint64_t>> alts;
  alts.reserve(n);
  for (std::size_t j = 0; j < n; ++j) {
    alts.push_back(make_alt(c, b, (j + rot) % n, depth, path));
  }

  altx::posix::RaceOptions opts;
  opts.heap = c.heap;
  opts.timeout = std::chrono::milliseconds(10'000);
  opts.governor = c.governor;
  if (c.planner != nullptr) {
    opts.planner = c.planner;
    opts.site_id = site_for(path);
  }
  altx::posix::RaceReport report;
  opts.report = &report;
  // Top-level blocks consult the injector (a full fault plan in faulty mode,
  // a delay-only commit-race perturbation otherwise). Nested blocks inside
  // speculative children always run clean: a fault there would be
  // indistinguishable from a failed guard.
  if (depth == 1) opts.fault = c.injector;

  if (c.faulty && depth == 1) {
    altx::posix::RetryPolicy policy;
    policy.max_attempts = 3;
    // Short per-attempt deadline: a dropped commit eats the token, leaving
    // any other successful child blocked on the token pipe until the parent
    // gives up — the attempt can only end by deadline, so a long one just
    // stalls the trial. Child work is a few ms; 800 ms is a wide margin.
    policy.base_timeout = std::chrono::milliseconds(800);
    policy.initial_backoff = std::chrono::milliseconds(1);
    policy.seed = c.schedule_seed ^ path;
    // The fallback runs alternatives in-process without fork isolation —
    // a failed guard's side effects would escape, which is exactly what
    // the checker asserts cannot happen. Never fall back here.
    policy.sequential_fallback = false;
    altx::posix::SupervisionLog log;
    const auto r = altx::posix::supervised_race<std::uint64_t>(alts, policy, opts, &log);
    for (const altx::posix::AttemptReport& ar : log.attempts) {
      if (ar.race.committed > 1) c.score->report("at-most-once-commit");
    }
    if (r.has_value()) return ((r->winner - 1 + rot) % n) + 1;
    // A FAIL whose final attempt carried predicted kills is no verdict: the
    // planner may have shot the would-be winner (a safe thing to do — the
    // trial is just a wash, like any other environmental kill).
    const bool definitive_fail =
        !log.attempts.empty() &&
        log.attempts.back().outcome == altx::posix::AttemptOutcome::kAllFailed &&
        log.attempts.back().race.predicted_losers == 0;
    if (!definitive_fail) *inconclusive = true;
    return std::nullopt;
  }

  std::optional<altx::posix::RaceResult<std::uint64_t>> r;
  bool degraded = false;
  try {
    r = altx::posix::race<std::uint64_t>(alts, opts);
  } catch (const altx::posix::AdmissionTimeout&) {
    // The governor refused this cohort its tokens — at ANY depth (a nested
    // block inside a speculative child draws from the same shared pool).
    // Escaping here would read as a failed guard and corrupt the oracle
    // check, so degrade exactly like the supervisor does: serialized
    // single-arm races, which keep loser isolation and can always make
    // progress (single-token admissions overdraft).
    degraded = true;
    if (c.governor != nullptr) c.governor->note_degraded();
    r = altx::posix::serialized_race<std::uint64_t>(alts, opts);
  }
  if (!degraded && report.committed > (r.has_value() ? 1 : 0)) {
    // Exactly-one-commit: a winner means precisely one committed child; a
    // FAIL means zero. Two commits is the paper's §3.2 invariant broken.
    // (Serialized mode reuses `report` per arm, so the census only applies
    // to the concurrent path.)
    c.score->report("at-most-once-commit");
  }
  if (r.has_value()) return ((r->winner - 1 + rot) % n) + 1;
  if (degraded) return std::nullopt;  // every arm ran alone and said no
  if (report.verdict != altx::posix::WaitVerdict::kAllFailed ||
      report.over_budget > 0 || report.predicted_losers > 0) {
    // Timeout, a stray crash without injection, a watchdog kill (the wall
    // budget is generous, but a stalled machine can still blow it), or a
    // predicted kill (the synthetic history may have condemned the one arm
    // that would have won): the environment, not the semantics, decided
    // this trial.
    *inconclusive = true;
  }
  return std::nullopt;
}

}  // namespace

RunOutcome run_posix(const CheckProgram& p, std::uint64_t schedule_seed, bool faulty,
                     bool governed, bool predicted) {
  validate(p);
  ALTX_REQUIRE(!uses_sim_only_ops(p),
               "run_posix: program uses sim-only ops (extern/send)");
  RunOutcome out;

  altx::posix::AltHeap heap(kPages);
  SharedScoreMap score;

  // Governed trials: a deliberately tight token budget (1..3 across the
  // whole trial, nested blocks included) so admission denials and serialized
  // degradation actually happen, a wall budget far above any legitimate
  // arm's runtime so it only fires on a stalled machine, and sometimes a
  // SIGTERM grace so the escalation ladder gets exercised too. Built before
  // any fork so every child shares the MAP_SHARED pool.
  std::unique_ptr<altx::posix::SpeculationGovernor> governor;
  if (governed || predicted) {
    altx::posix::GovernorConfig gc;
    if (governed) {
      gc.tokens = 1 + static_cast<int>(schedule_seed % 3);
      gc.admit_wait = std::chrono::milliseconds(20);
      // Short single-token patience: a nested serialized arm whose ancestors
      // hold every token must overdraft quickly, or the waits pile up inside
      // the enclosing arm's wall budget.
      gc.serial_admit_wait = std::chrono::milliseconds(100);
      gc.arm_wall_budget = std::chrono::milliseconds(5'000);
      gc.kill_grace = std::chrono::milliseconds((schedule_seed >> 2) % 2 == 0 ? 0 : 2);
    }
    // Predicted trials need the watchdog awake and EVERY arm registered,
    // deadline or not, so its last-live-arm census is exact (ALTX_PRED=1
    // arms the same flag in production).
    gc.predict_watch = predicted;
    gc.poll_interval = std::chrono::milliseconds(2);
    governor = std::make_unique<altx::posix::SpeculationGovernor>(gc);
  }

  // Predicted trials: a planner over a synthetic history the seed invents.
  // Skips stay off (a short-circuited guard is only oracle-admissible when
  // the history is real); staging and early kills are fully on. The store
  // lives in this frame — MAP_SHARED inside — so plans computed in nested
  // (forked) blocks read the same table.
  std::unique_ptr<altx::obs::HistoryStore> synth_store;
  std::unique_ptr<altx::posix::SpeculationPlanner> planner;
  if (predicted) {
    synth_store = std::make_unique<altx::obs::HistoryStore>(256);
    Rng hrng(schedule_seed ^ 0x9e3779b97f4a7c15ULL);
    for (std::size_t i = 0; i < p.blocks.size(); ++i) {
      seed_history(*synth_store, hrng, p.blocks[i], i + 1);
    }
    altx::posix::PredictorConfig pc;
    pc.enabled = true;
    pc.skip_enabled = false;
    pc.kill_q = 0.9;
    pc.hedge_ratio = 1.5 + static_cast<double>(schedule_seed % 3);
    planner =
        std::make_unique<altx::posix::SpeculationPlanner>(pc, synth_store.get());
  }

  altx::posix::FaultProfile profile;
  std::unique_ptr<altx::posix::FaultInjector> injector;
  Rng srng(schedule_seed ^ 0x0f0e0d0c0b0a0908ULL);
  if (faulty) {
    profile.crash_segv = 0.12;
    profile.crash_kill = 0.10;
    profile.drop_commit = 0.15;
    profile.early_exit = 0.08;
    profile.delay = 0.15;
    profile.delay_for = std::chrono::milliseconds(1 + srng.below(4));
    injector = std::make_unique<altx::posix::FaultInjector>(schedule_seed, profile);
  } else if (srng.chance(0.5)) {
    // Clean mode still perturbs commit-race timing: a delay-only plan stalls
    // seeded children at their sync point and then lets them proceed.
    profile.delay = 0.4;
    profile.delay_for = std::chrono::milliseconds(1 + srng.below(3));
    injector = std::make_unique<altx::posix::FaultInjector>(schedule_seed, profile);
  }

  Ctx ctx{&heap,  &score,         schedule_seed, injector.get(),
          faulty, governor.get(), planner.get()};

  std::uint64_t fingerprint = 0;
  bool inconclusive = false;
  bool failed = false;
  for (std::size_t i = 0; i < p.blocks.size(); ++i) {
    const Block& b = p.blocks[i];
    // Loser-invisibility probe: on FAIL nothing may have been absorbed.
    std::array<std::uint64_t, kCells> before{};
    for (std::uint32_t pg = 0; pg < kPages; ++pg) {
      for (std::uint32_t wd = 0; wd < kWords; ++wd) {
        before[cell_index(pg, wd)] = *cell(ctx, pg, wd);
      }
    }
    const auto r = run_block(ctx, b, 1, i + 1, &inconclusive);
    if (inconclusive) break;
    if (!r.has_value()) {
      bool dirty = false;
      for (std::uint32_t pg = 0; pg < kPages && !dirty; ++pg) {
        for (std::uint32_t wd = 0; wd < kWords; ++wd) {
          dirty = dirty || *cell(ctx, pg, wd) != before[cell_index(pg, wd)];
        }
      }
      if (dirty) score.report("loser-effects-visible");
      failed = true;
      break;
    }
    fingerprint = fingerprint * 1315423911ULL + *r;
  }

  if (governed && governor != nullptr) {
    // The cap is a hard claim: concurrent speculative children never exceed
    // the token budget. The one sanctioned exception is the single-token
    // liveness overdraft, which the pool counts — a high-water mark above
    // budget with zero overdrafts is a governor bug. (Predicted-only trials
    // run a watch-only governor with no token budget: nothing to cap.)
    const altx::posix::GovernorStats gs = governor->stats();
    if (gs.overdrafts == 0 && gs.max_in_flight > governor->config().tokens) {
      out.violation = "governor-cap-exceeded";
      return out;
    }
  }
  if (score.get()->violations.load() != 0) {
    out.violation = score.get()->invariant;
    return out;
  }
  if (inconclusive) {
    out.inconclusive = true;
    return out;
  }

  out.obs.failed = failed;
  for (std::uint32_t pg = 0; pg < kPages; ++pg) {
    for (std::uint32_t wd = 0; wd < kWords; ++wd) {
      out.obs.cells[cell_index(pg, wd)] = *cell(ctx, pg, wd);
    }
  }
  out.interleaving = mix64(fingerprint ^ schedule_seed);
  return out;
}

}  // namespace altx::check
