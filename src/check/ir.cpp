#include "check/ir.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

#include "common/error.hpp"

namespace altx::check {
namespace {

void validate_block(const Block& b, int depth);

void validate_alt(const Alternative& a, int depth) {
  std::size_t sends = 0;
  for (const CheckOp& op : a.ops) {
    if (const auto* w = std::get_if<OpWrite>(&op)) {
      ALTX_REQUIRE(w->page < kPages && w->word < kWords,
                   "check program: write out of range");
    } else if (const auto* g = std::get_if<OpGuardEq>(&op)) {
      ALTX_REQUIRE(g->page < kPages && g->word < kWords,
                   "check program: guard_eq out of range");
    } else if (std::holds_alternative<OpSend>(op)) {
      ALTX_REQUIRE(depth == 1, "check program: send in a nested block");
      ALTX_REQUIRE(++sends <= 1, "check program: multiple sends in one alternative");
    } else if (const auto* nb = std::get_if<OpBlock>(&op)) {
      ALTX_REQUIRE(nb->block != nullptr, "check program: null nested block");
      validate_block(*nb->block, depth + 1);
    }
  }
}

void validate_block(const Block& b, int depth) {
  ALTX_REQUIRE(depth <= 2, "check program: nesting deeper than 2");
  ALTX_REQUIRE(!b.alts.empty() && b.alts.size() <= 4,
               "check program: block needs 1..4 alternatives");
  ALTX_REQUIRE(!b.recv_after || depth == 1,
               "check program: recv_after on a nested block");
  ALTX_REQUIRE(!b.extern_after || depth == 1,
               "check program: extern_after on a nested block");
  if (b.recv_after) {
    ALTX_REQUIRE(b.recv_page < kPages && b.recv_word < kWords,
                 "check program: recv cell out of range");
  }
  for (const Alternative& a : b.alts) validate_alt(a, depth);
}

void count_block(const Block& b, std::size_t& blocks, std::size_t& alts,
                 std::size_t& widest) {
  ++blocks;
  alts += b.alts.size();
  widest = std::max(widest, b.alts.size());
  for (const Alternative& a : b.alts) {
    for (const CheckOp& op : a.ops) {
      if (const auto* nb = std::get_if<OpBlock>(&op)) {
        count_block(*nb->block, blocks, alts, widest);
      }
    }
  }
}

void serialize_block(const Block& b, std::ostringstream& out) {
  if (b.recv_after) {
    out << "block_recv " << b.recv_page << ' ' << b.recv_word << ' '
        << b.recv_timeout_value << '\n';
  } else {
    out << "block\n";
  }
  if (b.extern_after) out << "extern_after " << b.extern_tag << '\n';
  for (const Alternative& a : b.alts) {
    out << "alt\n";
    for (const CheckOp& op : a.ops) {
      if (const auto* w = std::get_if<OpWork>(&op)) {
        out << "work " << w->amount << '\n';
      } else if (const auto* wr = std::get_if<OpWrite>(&op)) {
        out << "write " << wr->page << ' ' << wr->word << ' ' << wr->value << '\n';
      } else if (const auto* gc = std::get_if<OpGuardConst>(&op)) {
        out << "guard_const " << (gc->ok ? 1 : 0) << '\n';
      } else if (const auto* ge = std::get_if<OpGuardEq>(&op)) {
        out << (ge->negate ? "guard_ne " : "guard_eq ") << ge->page << ' '
            << ge->word << ' ' << ge->value << '\n';
      } else if (const auto* s = std::get_if<OpSend>(&op)) {
        out << "send " << s->tag << '\n';
      } else if (const auto* nb = std::get_if<OpBlock>(&op)) {
        serialize_block(*nb->block, out);
      }
    }
    out << "endalt\n";
  }
  out << "endblock\n";
}

/// Tokenised line cursor over the .altcheck text.
struct LineReader {
  std::vector<std::vector<std::string>> lines;  // non-empty, tokenised
  std::vector<std::size_t> numbers;             // original 1-based line numbers
  std::size_t pos = 0;
  mutable std::size_t last_ = 0;  // most recently peeked/taken line, for fail()

  explicit LineReader(const std::string& text) {
    std::istringstream in(text);
    std::string raw;
    std::size_t n = 0;
    while (std::getline(in, raw)) {
      ++n;
      std::istringstream ls(raw);
      std::vector<std::string> toks;
      std::string t;
      while (ls >> t) toks.push_back(t);
      if (toks.empty() || toks[0][0] == '#') continue;
      lines.push_back(std::move(toks));
      numbers.push_back(n);
    }
  }

  [[nodiscard]] bool done() const { return pos >= lines.size(); }

  [[nodiscard]] const std::vector<std::string>& peek() const {
    if (done()) throw UsageError(".altcheck: unexpected end of file");
    last_ = pos;
    return lines[pos];
  }

  const std::vector<std::string>& take() {
    const auto& l = peek();
    ++pos;
    return l;
  }

  [[noreturn]] void fail(const std::string& what) const {
    const std::size_t line = last_ < numbers.size() ? numbers[last_] : 0;
    throw UsageError(".altcheck line " + std::to_string(line) + ": " + what);
  }
};

std::uint64_t parse_u64(LineReader& r, const std::string& tok) {
  try {
    std::size_t used = 0;
    const std::uint64_t v = std::stoull(tok, &used);
    if (used != tok.size()) r.fail("bad number '" + tok + "'");
    return v;
  } catch (const UsageError&) {
    throw;
  } catch (const std::exception&) {
    r.fail("bad number '" + tok + "'");
  }
}

std::uint32_t parse_u32(LineReader& r, const std::string& tok) {
  const std::uint64_t v = parse_u64(r, tok);
  if (v > UINT32_MAX) r.fail("number out of range '" + tok + "'");
  return static_cast<std::uint32_t>(v);
}

void need_args(LineReader& r, const std::vector<std::string>& l, std::size_t n) {
  if (l.size() != n + 1) r.fail("'" + l[0] + "' wants " + std::to_string(n) + " arguments");
}

Block parse_block(LineReader& r);

Alternative parse_alt(LineReader& r) {
  Alternative a;
  for (;;) {
    const auto& l = r.peek();
    const std::string& kw = l[0];
    if (kw == "endalt") {
      r.take();
      return a;
    }
    if (kw == "block" || kw == "block_recv") {
      a.ops.emplace_back(OpBlock{std::make_shared<Block>(parse_block(r))});
      continue;
    }
    r.take();
    if (kw == "work") {
      need_args(r, l, 1);
      a.ops.emplace_back(OpWork{parse_u32(r, l[1])});
    } else if (kw == "write") {
      need_args(r, l, 3);
      a.ops.emplace_back(OpWrite{parse_u32(r, l[1]), parse_u32(r, l[2]), parse_u64(r, l[3])});
    } else if (kw == "guard_const") {
      need_args(r, l, 1);
      a.ops.emplace_back(OpGuardConst{parse_u64(r, l[1]) != 0});
    } else if (kw == "guard_eq" || kw == "guard_ne") {
      need_args(r, l, 3);
      a.ops.emplace_back(OpGuardEq{parse_u32(r, l[1]), parse_u32(r, l[2]),
                                   parse_u64(r, l[3]), kw == "guard_ne"});
    } else if (kw == "send") {
      need_args(r, l, 1);
      a.ops.emplace_back(OpSend{parse_u64(r, l[1])});
    } else {
      r.fail("unknown op '" + kw + "'");
    }
  }
}

Block parse_block(LineReader& r) {
  const auto l = r.take();  // copy: parse_alt advances the reader
  Block b;
  if (l[0] == "block_recv") {
    need_args(r, l, 3);
    b.recv_after = true;
    b.recv_page = parse_u32(r, l[1]);
    b.recv_word = parse_u32(r, l[2]);
    b.recv_timeout_value = parse_u64(r, l[3]);
  } else if (l[0] != "block") {
    r.fail("expected 'block', got '" + l[0] + "'");
  }
  if (!r.done() && r.peek()[0] == "extern_after") {
    const auto el = r.take();
    need_args(r, el, 1);
    b.extern_after = true;
    b.extern_tag = parse_u64(r, el[1]);
  }
  for (;;) {
    const auto& next = r.peek();
    if (next[0] == "endblock") {
      r.take();
      return b;
    }
    if (next[0] != "alt") r.fail("expected 'alt' or 'endblock', got '" + next[0] + "'");
    r.take();
    b.alts.push_back(parse_alt(r));
  }
}

}  // namespace

const char* to_string(Backend b) {
  switch (b) {
    case Backend::kSim: return "sim";
    case Backend::kPosix: return "posix";
  }
  return "?";
}

void validate(const CheckProgram& p) {
  ALTX_REQUIRE(!p.blocks.empty() && p.blocks.size() <= 4,
               "check program: needs 1..4 top-level blocks");
  for (const Block& b : p.blocks) validate_block(b, 1);
}

std::size_t count_blocks(const CheckProgram& p) {
  std::size_t blocks = 0, alts = 0, widest = 0;
  for (const Block& b : p.blocks) count_block(b, blocks, alts, widest);
  return blocks;
}

std::size_t count_alternatives(const CheckProgram& p) {
  std::size_t blocks = 0, alts = 0, widest = 0;
  for (const Block& b : p.blocks) count_block(b, blocks, alts, widest);
  return alts;
}

std::size_t max_alternatives(const CheckProgram& p) {
  std::size_t blocks = 0, alts = 0, widest = 0;
  for (const Block& b : p.blocks) count_block(b, blocks, alts, widest);
  return widest;
}

bool uses_sim_only_ops(const CheckProgram& p) {
  bool found = false;
  const std::function<void(const Block&)> scan = [&](const Block& b) {
    if (b.extern_after) found = true;
    for (const Alternative& a : b.alts) {
      for (const CheckOp& op : a.ops) {
        if (std::holds_alternative<OpSend>(op)) {
          found = true;
        } else if (const auto* nb = std::get_if<OpBlock>(&op)) {
          scan(*nb->block);
        }
      }
    }
  };
  for (const Block& b : p.blocks) scan(b);
  return found;
}

std::string serialize(const CheckProgram& p) {
  std::ostringstream out;
  for (const Block& b : p.blocks) serialize_block(b, out);
  return out.str();
}

std::string serialize(const ReproCase& c) {
  std::ostringstream out;
  out << "altcheck 1\n";
  out << "backend " << to_string(c.backend) << '\n';
  out << "faulty " << (c.faulty ? 1 : 0) << '\n';
  // Written only when set: older parsers reject unknown header keys, so an
  // ungoverned repro stays readable by them.
  if (c.governed) out << "governed 1\n";
  if (c.predicted) out << "predicted 1\n";
  out << "gen_seed " << c.gen_seed << '\n';
  out << "schedule_seed " << c.schedule_seed << '\n';
  if (!c.invariant.empty()) out << "invariant " << c.invariant << '\n';
  out << "program\n" << serialize(c.program) << "endprogram\n";
  return out.str();
}

ReproCase parse_repro(const std::string& text) {
  LineReader r(text);
  {
    const auto& l = r.take();
    if (l.size() != 2 || l[0] != "altcheck" || l[1] != "1") {
      r.fail("expected 'altcheck 1' header");
    }
  }
  ReproCase c;
  for (;;) {
    const auto& l = r.take();
    if (l[0] == "program") break;
    if (l[0] == "backend") {
      need_args(r, l, 1);
      if (l[1] == "sim") {
        c.backend = Backend::kSim;
      } else if (l[1] == "posix") {
        c.backend = Backend::kPosix;
      } else {
        r.fail("unknown backend '" + l[1] + "'");
      }
    } else if (l[0] == "faulty") {
      need_args(r, l, 1);
      c.faulty = parse_u64(r, l[1]) != 0;
    } else if (l[0] == "governed") {
      need_args(r, l, 1);
      c.governed = parse_u64(r, l[1]) != 0;
    } else if (l[0] == "predicted") {
      need_args(r, l, 1);
      c.predicted = parse_u64(r, l[1]) != 0;
    } else if (l[0] == "gen_seed") {
      need_args(r, l, 1);
      c.gen_seed = parse_u64(r, l[1]);
    } else if (l[0] == "schedule_seed") {
      need_args(r, l, 1);
      c.schedule_seed = parse_u64(r, l[1]);
    } else if (l[0] == "invariant") {
      need_args(r, l, 1);
      c.invariant = l[1];
    } else {
      r.fail("unknown header key '" + l[0] + "'");
    }
  }
  while (!r.done() && r.peek()[0] != "endprogram") {
    c.program.blocks.push_back(parse_block(r));
  }
  if (r.done()) r.fail("missing 'endprogram'");
  r.take();  // endprogram
  validate(c.program);
  return c;
}

}  // namespace altx::check
