#include "consensus/majority.hpp"

#include "obs/trace.hpp"

namespace altx::consensus {

namespace {

std::uint64_t sim_ns(SimTime t) {
  return static_cast<std::uint64_t>(t) * 1000ULL;
}

/// Sim node n is stamped as trace node n+1 (0 stays the "no node" sentinel);
/// must agree with dist/distributed.cpp so stitched timelines line up.
std::uint32_t trace_node(NodeId n) {
  return static_cast<std::uint32_t>(n) + 1;
}

}  // namespace

MajoritySync::MajoritySync(net::Network& network, Config cfg)
    : net_(network), cfg_(cfg) {
  ALTX_REQUIRE(cfg_.arbiters >= 1, "MajoritySync: need at least one arbiter");
  ALTX_REQUIRE(static_cast<std::size_t>(cfg_.arbiters) <= net_.node_count(),
               "MajoritySync: more arbiters than network nodes");
  ALTX_REQUIRE(cfg_.max_rounds >= 1, "MajoritySync: need at least one round");
  arbiters_.resize(static_cast<std::size_t>(cfg_.arbiters));
}

void MajoritySync::add_candidate(CandidateId id, NodeId home, SimTime start_at) {
  ALTX_REQUIRE(home >= static_cast<NodeId>(cfg_.arbiters),
               "MajoritySync: candidate may not share a node with an arbiter");
  ALTX_REQUIRE(home < net_.node_count(), "MajoritySync: home node out of range");
  ALTX_REQUIRE(!candidates_.contains(id), "MajoritySync: duplicate candidate");
  Candidate c;
  c.id = id;
  c.home = home;
  c.start_at = start_at;
  c.granted.resize(static_cast<std::size_t>(cfg_.arbiters), false);
  c.rejected.resize(static_cast<std::size_t>(cfg_.arbiters), false);
  candidates_.emplace(id, std::move(c));
  outcomes_.emplace(id, SyncOutcome{});
}

void MajoritySync::start() {
  trace_id_ = obs::next_race_id();
  for (NodeId a = 0; a < static_cast<NodeId>(cfg_.arbiters); ++a) {
    net_.on_receive(a, kConsensusChannel,
                    [this, a](const net::Packet& p) { on_arbiter_packet(a, p); });
  }
  for (auto& [id, c] : candidates_) {
    Candidate* cp = &c;
    net_.on_receive(c.home, kConsensusChannel, [this, cp](const net::Packet& p) {
      on_candidate_packet(*cp, p);
    });
    if (c.start_at >= 0) {
      net_.after(c.home, c.start_at, [this, cp] { begin_round(*cp); });
    }
  }
}

void MajoritySync::launch(CandidateId id) {
  auto it = candidates_.find(id);
  ALTX_REQUIRE(it != candidates_.end(), "MajoritySync::launch: unknown candidate");
  begin_round(it->second);
}

void MajoritySync::begin_round(Candidate& c) {
  if (c.done) return;
  if (c.round >= cfg_.max_rounds) {
    // Could not assemble a majority: the synchronization is "too late" for
    // this candidate; it must terminate itself.
    c.done = true;
    SyncOutcome& o = outcomes_[c.id];
    o.decided = true;
    o.won = false;
    o.decided_at = net_.now();
    obs::emit_at_node(sim_ns(net_.now()), trace_node(c.home),
                      obs::EventKind::kSyncDecided, trace_id_, 0, c.id, 0,
                      static_cast<std::uint64_t>(c.round));
    if (on_decided) on_decided(c.id, o);
    return;
  }
  ++c.round;
  outcomes_[c.id].rounds = c.round;
  // (Re)request every vote not yet answered. Retransmission is idempotent:
  // arbiters answer a repeated request with their recorded vote.
  for (NodeId a = 0; a < static_cast<NodeId>(cfg_.arbiters); ++a) {
    if (!c.granted[a] && !c.rejected[a]) {
      net_.send(c.home, a, kConsensusChannel, encode(kVoteRequest, c.id));
    }
  }
  Candidate* cp = &c;
  net_.after(c.home, cfg_.retry_interval, [this, cp] { begin_round(*cp); });
}

void MajoritySync::on_arbiter_packet(NodeId arbiter, const net::Packet& p) {
  const auto [type, id] = decode(p.data);
  if (type != kVoteRequest) return;
  Arbiter& a = arbiters_[arbiter];
  // First request wins the vote; the answer is stable thereafter, which is
  // what makes two intersecting majorities impossible.
  if (a.voted_for == kNoCandidate) a.voted_for = id;
  const MsgType verdict = a.voted_for == id ? kGrant : kReject;
  net_.send(arbiter, p.src, kConsensusChannel, encode(verdict, id));
}

void MajoritySync::on_candidate_packet(Candidate& c, const net::Packet& p) {
  if (c.done) return;
  const auto [type, id] = decode(p.data);
  if (id != c.id) return;
  const NodeId arbiter = p.src;
  if (arbiter >= static_cast<NodeId>(cfg_.arbiters)) return;
  if (type == kGrant) {
    c.granted[arbiter] = true;
    obs::emit_at_node(sim_ns(net_.now()), trace_node(c.home),
                      obs::EventKind::kVoteGrant, trace_id_, 0, c.id,
                      static_cast<std::uint64_t>(arbiter));
  } else if (type == kReject) {
    c.rejected[arbiter] = true;
    obs::emit_at_node(sim_ns(net_.now()), trace_node(c.home),
                      obs::EventKind::kVoteReject, trace_id_, 0, c.id,
                      static_cast<std::uint64_t>(arbiter));
  } else {
    return;
  }
  check_verdict(c);
}

void MajoritySync::check_verdict(Candidate& c) {
  int grants = 0;
  int rejections = 0;
  for (std::size_t a = 0; a < c.granted.size(); ++a) {
    if (c.granted[a]) ++grants;
    if (c.rejected[a]) ++rejections;
  }
  SyncOutcome& o = outcomes_[c.id];
  o.grants = grants;
  o.rejections = rejections;
  if (grants >= majority()) {
    ALTX_ASSERT(!winner_.has_value() || *winner_ == c.id,
                "two candidates assembled a majority");
    winner_ = c.id;
    c.done = true;
    o.decided = true;
    o.won = true;
    o.decided_at = net_.now();
    obs::emit_at_node(sim_ns(net_.now()), trace_node(c.home),
                      obs::EventKind::kSyncDecided, trace_id_, 0, c.id, 1,
                      static_cast<std::uint64_t>(o.rounds));
    if (on_decided) on_decided(c.id, o);
  } else if (rejections >= majority() ||
             rejections > cfg_.arbiters - majority()) {
    // A majority can no longer be assembled: too late.
    c.done = true;
    o.decided = true;
    o.won = false;
    o.decided_at = net_.now();
    obs::emit_at_node(sim_ns(net_.now()), trace_node(c.home),
                      obs::EventKind::kSyncDecided, trace_id_, 0, c.id, 0,
                      static_cast<std::uint64_t>(o.rounds));
    if (on_decided) on_decided(c.id, o);
  }
}

Bytes MajoritySync::encode(MsgType t, CandidateId id) {
  Bytes b;
  ByteWriter w(b);
  w.u8(t);
  w.u32(id);
  return b;
}

std::pair<MajoritySync::MsgType, CandidateId> MajoritySync::decode(const Bytes& b) {
  ByteReader r(b);
  const auto t = static_cast<MsgType>(r.u8());
  const CandidateId id = r.u32();
  return {t, id};
}

}  // namespace altx::consensus
