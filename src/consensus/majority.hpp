// Majority-consensus synchronization (paper section 3.2.1).
//
// The paper's synchronization action must be performable AT MOST ONCE even
// under communication failures. On a single node this is the "too late" rule
// (first committer wins, later attempts are refused); to remove the single
// point of failure the paper sets synchronization up "as a majority consensus
// [Thomas 1979] decision across several nodes".
//
// We implement that decision as a one-shot election over 2f+1 arbiter nodes:
// each arbiter grants its single vote to the first candidate whose request
// arrives; a candidate that assembles a majority of grants has committed.
// Because two majorities always intersect in at least one arbiter — which
// votes only once — at most one candidate can ever win, regardless of message
// loss, reordering, or up to f arbiter crashes. Candidates that cannot reach
// a majority (including after retries) are "too late" and terminate.
//
// This is the engineering trade-off the paper names: extra rounds of
// communication buy robustness of the synchronization.
//
// Liveness caveat: static one-shot voting guarantees AT MOST one winner, not
// at LEAST one — concurrent candidates can split the live votes so that no
// majority forms (e.g. 2-1 across three live arbiters). The enclosing
// alt_wait TIMEOUT (section 3.2) is the designed escape for that case; the
// alternative block then takes its FAIL arm.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"
#include "common/ids.hpp"
#include "common/sim_time.hpp"
#include "net/network.hpp"

namespace altx::consensus {

using CandidateId = std::uint32_t;
constexpr CandidateId kNoCandidate = static_cast<CandidateId>(-1);

/// Network channel reserved for the consensus protocol, so arbiters and
/// candidates can share nodes with other protocols (e.g. dist workers).
constexpr net::Channel kConsensusChannel = 1;

/// Outcome of one candidate's attempt to synchronize.
struct SyncOutcome {
  bool won = false;
  bool decided = false;       // reached a definite win/lose verdict
  SimTime decided_at = 0;     // when the candidate learned its verdict
  int grants = 0;             // votes collected
  int rejections = 0;
  int rounds = 0;             // request rounds used (retransmissions)
};

/// A fault-tolerant 0-1 semaphore: candidates race to acquire it through
/// majority voting over a net::Network whose first `arbiters` nodes act as
/// voters and whose remaining nodes host the candidates.
class MajoritySync {
 public:
  struct Config {
    int arbiters = 3;               // 2f+1 voters
    SimTime retry_interval = 50 * kMsec;  // retransmission of vote requests
    int max_rounds = 5;             // give up (too late) after this many
  };

  /// Invoked (at most once per candidate) when a candidate reaches a
  /// definite verdict. Used by the distributed execution layer.
  std::function<void(CandidateId, const SyncOutcome&)> on_decided;

  MajoritySync(net::Network& network, Config cfg);

  /// Registers a candidate hosted at network node `home` (must be >= the
  /// arbiter count). Call before start(). A negative start_at registers a
  /// *manual* candidate: it only begins voting when launch(id) is called
  /// (e.g. when its alternative's computation completes).
  void add_candidate(CandidateId id, NodeId home, SimTime start_at);

  /// Begins a manual candidate's voting rounds now.
  void launch(CandidateId id);

  /// Runs the underlying network to quiescence and returns per-candidate
  /// outcomes.
  [[nodiscard]] const std::map<CandidateId, SyncOutcome>& outcomes() const {
    return outcomes_;
  }

  /// The winning candidate, if any candidate assembled a majority.
  [[nodiscard]] std::optional<CandidateId> winner() const { return winner_; }

  /// Installs all message handlers and start timers; the caller then drives
  /// network.run().
  void start();

 private:
  enum MsgType : std::uint8_t { kVoteRequest = 1, kGrant = 2, kReject = 3 };

  struct Candidate {
    CandidateId id = 0;
    NodeId home = 0;
    SimTime start_at = 0;
    int round = 0;
    bool done = false;
    std::vector<bool> granted;   // per arbiter
    std::vector<bool> rejected;  // per arbiter
  };

  struct Arbiter {
    CandidateId voted_for = kNoCandidate;
  };

  [[nodiscard]] int majority() const { return cfg_.arbiters / 2 + 1; }

  void begin_round(Candidate& c);
  void on_arbiter_packet(NodeId arbiter, const net::Packet& p);
  void on_candidate_packet(Candidate& c, const net::Packet& p);
  void check_verdict(Candidate& c);

  static Bytes encode(MsgType t, CandidateId id);
  static std::pair<MsgType, CandidateId> decode(const Bytes& b);

  net::Network& net_;
  Config cfg_;
  std::uint32_t trace_id_ = 0;  // groups this election's obs events
  std::vector<Arbiter> arbiters_;
  std::map<CandidateId, Candidate> candidates_;
  std::map<CandidateId, SyncOutcome> outcomes_;
  std::optional<CandidateId> winner_;
};

}  // namespace altx::consensus
