// altc: the language preprocessor of section 3.2.
//
// The paper assumes "a language preprocessor applied to a program with
// mutually exclusive alternatives would generate [the alt_spawn switch]".
// altc is that preprocessor for C++: it translates the ALTBEGIN construct of
// figure 1 into a call to altx::posix::race<T>().
//
// Input syntax (line-oriented keywords, bodies are plain C++):
//
//   ALTBEGIN(result : int, TIMEOUT 500)
//   ALTERNATIVE
//     ... C++ ...; ALTRETURN(expr);       // ENSURE succeeded WITH this value
//   ALTERNATIVE
//     if (bad) ALTABORT();                // guard failed
//     ALTRETURN(other);
//   FAIL
//     ... C++ run when no alternative succeeds ...
//   ALTEND
//
// After ALTEND the surrounding code can use `result` (value-initialised on
// failure) and `result_found` (bool). The TIMEOUT clause and the FAIL arm
// are optional. Blocks do not nest textually (nest by calling a function
// that contains another block — each block is a separate race).
#pragma once

#include <string>

#include "common/error.hpp"

namespace altx::altc {

class TranslateError : public UsageError {
 public:
  using UsageError::UsageError;
};

/// Translates a whole source file; text outside ALT blocks passes through
/// unchanged. Throws TranslateError (with a line number) on malformed input.
std::string translate(const std::string& source);

}  // namespace altx::altc
