// The altxd wire protocol: length-prefixed frames carrying declarative
// alternative-block jobs.
//
// A closure cannot cross a socket, so a remote alternative block is shipped
// as data — Kwon's choice-conjunctive reading of an alternative block as a
// declarative unit: each arm names a handler registered in the daemon
// (server/registry.hpp) plus an opaque argument blob. The daemon runs the
// block with posix::race<Bytes> inside a pre-warmed worker and streams the
// outcome back.
//
// Frame layout (little-endian, 36-byte header + payload):
//
//   u32 magic       0x4a544c41 ("ALTJ")
//   u8  version     kProtoVersion
//   u8  type        FrameType
//   u16 flags       reserved (must round-trip)
//   u64 job_id      client-chosen, unique per connection
//   u32 payload_len bytes following the header (<= kMaxFramePayload)
//   u64 trace_id    v2: cross-process trace id (obs::Record::trace_id);
//                   minted at the client's race<T>() call, 0 = untraced
//   u64 span_id     v2: the client-side parent span for this job, so a
//                   future span-tree view can parent the daemon's spans
//
// Version history: v1 was the 20-byte header without the trace fields; v2
// (this version) appends them. The first 20 bytes are layout-identical, so
// a v2 decoder rejects a v1 peer deterministically at the version byte —
// mixed-version deployments fail loudly, not by misparsing.
//
// Both ends parse with the incremental FrameDecoder below: feed() whatever
// the socket produced, next() yields complete frames. The decoder enforces
// the magic, version, type range, and payload cap *before* buffering a
// frame's payload, so a malicious or corrupt peer cannot make the server
// allocate unbounded memory — it gets a ProtocolError and the connection
// is dropped. The same class is the fuzz target of
// tests/test_server_protocol.cpp.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.hpp"
#include "common/error.hpp"

namespace altx::server {

inline constexpr std::uint32_t kFrameMagic = 0x4a544c41;  // "ALTJ" in LE
inline constexpr std::uint8_t kProtoVersion = 2;  // v2: + trace_id, span_id
inline constexpr std::size_t kFrameHeaderBytes = 36;
inline constexpr std::size_t kMaxFramePayload = 16u << 20;  // 16 MiB

/// Caps on the decoded job payload, enforced by decode_job: a frame that
/// passes the transport caps can still describe an absurd job.
inline constexpr std::size_t kMaxArms = 64;
inline constexpr std::size_t kMaxHandlerName = 256;

/// A peer broke the framing or payload rules. Connection-fatal: the stream
/// position is unrecoverable after a bad header.
class ProtocolError : public UsageError {
 public:
  using UsageError::UsageError;
};

enum class FrameType : std::uint8_t {
  kHello = 1,       // client → server: str client name (optional pleasantry)
  kSubmit = 2,      // client → server: JobSpec payload
  kResult = 3,      // server → client: JobOutcome payload
  kDeny = 4,        // server → client: u32 retry-after ms, str reason
  kCancel = 5,      // client → server: empty (job named in the header)
  kStats = 6,       // client → server: empty
  kStatsReply = 7,  // server → client: WireStats payload
  kPing = 8,        // either direction: empty
  kPong = 9,        // reply to kPing: empty
};

[[nodiscard]] const char* to_string(FrameType type);

struct Frame {
  FrameType type = FrameType::kPing;
  std::uint16_t flags = 0;
  std::uint64_t job_id = 0;
  std::uint64_t trace_id = 0;  // cross-process correlation id (0 = untraced)
  std::uint64_t span_id = 0;   // client-side parent span of this job
  Bytes payload;
};

[[nodiscard]] Bytes encode_frame(const Frame& frame);

/// Incremental frame parser. feed() buffers raw socket bytes; next()
/// returns the following complete frame, nullopt when more bytes are
/// needed, and throws ProtocolError on malformed input (bad magic/version/
/// type, oversized payload). After a throw the stream is poisoned — drop
/// the connection.
class FrameDecoder {
 public:
  void feed(const void* data, std::size_t n);
  std::optional<Frame> next();

  /// Bytes buffered but not yet consumed by next().
  [[nodiscard]] std::size_t buffered() const noexcept;

 private:
  Bytes buf_;
  std::size_t consumed_ = 0;  // prefix of buf_ already returned as frames
};

/// One arm of a remote alternative block: a handler registered in the
/// daemon plus its opaque argument blob.
struct JobArm {
  std::string handler;
  Bytes args;
};

/// kSubmit payload: the declarative alternative block.
struct JobSpec {
  std::uint32_t timeout_ms = 10'000;
  std::uint64_t site_id = 0;     // per-arm history identity (0 = none)
  std::uint32_t heap_pages = 0;  // >0: run with the worker's AltHeap arena
  std::uint64_t queue_ns = 0;    // stamped by the daemon at assignment
  std::vector<JobArm> arms;
};

[[nodiscard]] Bytes encode_job(const JobSpec& spec);
[[nodiscard]] JobSpec decode_job(const Bytes& payload);

enum class JobStatus : std::uint8_t {
  kWon = 0,        // an arm committed; `value` is its result
  kAllFailed = 1,  // every guard failed
  kTimeout = 2,    // the block's timeout expired in the worker
  kCanceled = 3,   // kCancel, disconnect teardown, or daemon shutdown
  kDenied = 4,     // admission refused; retry_after_ms says when to retry
  kError = 5,      // daemon-side failure (unknown handlers, worker death)
};

[[nodiscard]] const char* to_string(JobStatus status);

/// kResult payload (kDeny is folded into the same struct client-side).
struct JobOutcome {
  JobStatus status = JobStatus::kError;
  std::uint32_t winner = 0;          // 1-based arm index when kWon
  Bytes value;
  std::uint64_t queue_ns = 0;        // daemon queue wait
  std::uint64_t exec_ns = 0;         // worker race wall time
  std::uint32_t retry_after_ms = 0;  // kDenied backoff hint
  std::string error;                 // kDenied / kError detail
};

[[nodiscard]] Bytes encode_outcome(const JobOutcome& outcome);
[[nodiscard]] JobOutcome decode_outcome(const Bytes& payload);

/// kStatsReply payload: the daemon's lifetime counters and live gauges.
struct WireStats {
  std::uint64_t accepted = 0;    // submits admitted to a queue
  std::uint64_t completed = 0;   // results streamed back
  std::uint64_t denied = 0;      // RETRY-AFTER denials
  std::uint64_t canceled = 0;    // kCancel + disconnect teardowns
  std::uint64_t worker_spawns = 0;
  std::uint64_t worker_respawns = 0;   // replacements after forced teardown
  std::uint64_t tokens_reclaimed = 0;  // governor reconcile total
  std::uint64_t inflight_hw = 0;       // submitted-not-replied high water
  std::uint32_t queued = 0;
  std::uint32_t running = 0;
  std::uint32_t clients = 0;
  std::uint32_t workers_idle = 0;
  std::uint32_t workers_busy = 0;
};

[[nodiscard]] Bytes encode_stats(const WireStats& stats);
[[nodiscard]] WireStats decode_stats(const Bytes& payload);

}  // namespace altx::server
