// altxd: a long-lived speculation server.
//
// The daemon accepts declarative alternative-block jobs (server/protocol.hpp)
// over a Unix-domain — and optionally TCP — socket from many clients at
// once, runs each job inside a pre-warmed worker from the zygote pool
// (server/worker.hpp), and streams outcomes back. It is the system the
// library becomes when speculation must serve heavy traffic:
//
//   * admission is per client, layered on the SpeculationGovernor: each
//     client gets a running-job quota and a bounded queue; past the queue
//     cap the daemon answers with an explicit RETRY-AFTER denial instead of
//     buffering without bound, and idle workers drain the client queues
//     round-robin so one greedy client cannot starve the rest;
//   * the governor's token pool is shared with every worker through the
//     zygote fork, so arm-level admission spans the whole daemon, and
//     reconcile_dead_holders() runs after every forced teardown so a
//     SIGKILLed cohort cannot leak tokens;
//   * graceful shutdown (request_stop, or SIGTERM in altxd) cancels queued
//     jobs, tears down every in-flight cohort — worker and arms, by process
//     group — and exits with no orphaned speculative children: the daemon
//     is a child subreaper, so even arms orphaned by a killed worker
//     reparent here and are reaped;
//   * with a trace ring attached (ALTX_TRACE_RING or obs::attach_ring_file)
//     every server event (kSrv*) and every worker-side race lands in one
//     file-backed ring: altx-top is the live ops console and altx-trace
//     --critical-path attributes daemon queue wait as the srv_queue phase.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "server/protocol.hpp"

namespace altx::posix {
class SpeculationGovernor;
}  // namespace altx::posix

namespace altx::server {

struct ServerConfig {
  /// Unix-domain listening socket (required; unlinked and rebound).
  std::string socket_path;

  /// TCP listener on 127.0.0.1: 0 = off, -1 = ephemeral (read the bound
  /// port back with Server::tcp_port()), else the port to bind.
  int tcp_port = 0;

  /// Pre-warmed worker pool size (also the daemon's running-job capacity —
  /// one job per worker at a time).
  int workers = 4;

  /// Per-client admission: concurrent running jobs, and how many more may
  /// queue before submits are denied with RETRY-AFTER.
  int per_client_running = 8;
  int per_client_queue = 64;
  std::uint32_t retry_after_ms = 50;

  /// Worker arena pages for heap-carrying jobs (0 = no arenas).
  std::size_t heap_pages = 64;

  /// >0: build a SpeculationGovernor with this many arm tokens, shared with
  /// every worker. 0: workers resolve SpeculationGovernor::global().
  int gov_tokens = 0;

  /// Prometheus/OpenMetrics exposition endpoint: "" = off, "PORT" or
  /// "HOST:PORT" binds an HTTP listener there (port 0 = ephemeral — read it
  /// back with Server::metrics_port()). GET / or /metrics returns the
  /// daemon's counters, gauges, per-client job counters, and the latency
  /// histograms as cumulative buckets; served from the poll loop, no extra
  /// thread. Host defaults to 127.0.0.1.
  std::string metrics_addr;

  /// SIGTERM → SIGKILL grace when destroying a worker cohort.
  std::chrono::milliseconds kill_grace{50};

  std::size_t max_clients = 256;
};

/// Daemon counters and gauges; also shipped to clients as WireStats.
using ServerStats = WireStats;

class Server {
 public:
  explicit Server(ServerConfig cfg);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds the sockets, builds the governor, forks the zygote, and
  /// pre-warms the worker pool. Fork happens here — call before the
  /// embedding process grows, and register handlers first.
  void start();

  /// Serves until request_stop(). Runs the poll loop on the calling thread.
  void run();

  /// Asks run() to finish (graceful shutdown). Async-signal-safe: callable
  /// from a SIGTERM handler.
  void request_stop() noexcept;

  [[nodiscard]] ServerStats stats() const;

  /// The daemon's governor (nullptr when gov_tokens == 0 and no env
  /// governor exists).
  [[nodiscard]] posix::SpeculationGovernor* governor() const noexcept;

  /// The bound TCP port (0 when the TCP listener is off).
  [[nodiscard]] int tcp_port() const noexcept;

  /// The bound metrics-endpoint port (0 when metrics_addr is empty).
  [[nodiscard]] int metrics_port() const noexcept;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace altx::server
