#include "server/registry.hpp"

#include <time.h>
#include <unistd.h>

#include <cstring>

#include "common/bytes.hpp"
#include "posix/alt_heap.hpp"

namespace altx::server {

namespace {

std::uint32_t args_u32(const Bytes& args, std::uint32_t fallback) {
  if (args.size() < 4) return fallback;
  std::uint32_t v = 0;
  std::memcpy(&v, args.data(), 4);
  return v;
}

void sleep_ms(std::uint32_t ms) {
  timespec ts{static_cast<time_t>(ms / 1000),
              static_cast<long>(ms % 1000) * 1'000'000L};
  while (::nanosleep(&ts, &ts) != 0) {
  }
}

}  // namespace

void HandlerRegistry::add(const std::string& name, Handler fn) {
  handlers_[name] = std::move(fn);
}

const Handler* HandlerRegistry::find(const std::string& name) const {
  const auto it = handlers_.find(name);
  return it == handlers_.end() ? nullptr : &it->second;
}

HandlerRegistry& HandlerRegistry::global() {
  static HandlerRegistry g;
  return g;
}

void register_builtin_handlers(HandlerRegistry& registry) {
  registry.add("echo", [](const JobContext& ctx) -> std::optional<Bytes> {
    return ctx.args;
  });
  registry.add("fail", [](const JobContext&) -> std::optional<Bytes> {
    return std::nullopt;
  });
  registry.add("sleep_ms", [](const JobContext& ctx) -> std::optional<Bytes> {
    sleep_ms(args_u32(ctx.args, 1));
    return ctx.args;
  });
  registry.add("sleep_fail",
               [](const JobContext& ctx) -> std::optional<Bytes> {
                 sleep_ms(args_u32(ctx.args, 1));
                 return std::nullopt;
               });
  registry.add("burn_ms", [](const JobContext& ctx) -> std::optional<Bytes> {
    const std::uint32_t ms = args_u32(ctx.args, 1);
    timespec t0{};
    ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t0);
    const long long budget_ns = static_cast<long long>(ms) * 1'000'000LL;
    volatile std::uint64_t sink = 0;
    for (;;) {
      for (int i = 0; i < 10'000; ++i) sink += static_cast<std::uint64_t>(i);
      timespec t{};
      ::clock_gettime(CLOCK_THREAD_CPUTIME_ID, &t);
      const long long spent =
          (t.tv_sec - t0.tv_sec) * 1'000'000'000LL + (t.tv_nsec - t0.tv_nsec);
      if (spent >= budget_ns) break;
    }
    return ctx.args;
  });
  registry.add("hang", [](const JobContext&) -> std::optional<Bytes> {
    for (;;) sleep_ms(1000);  // until the timeout or a teardown kills us
  });
  registry.add("heap_fill", [](const JobContext& ctx)
                   -> std::optional<Bytes> {
    if (ctx.heap == nullptr) return std::nullopt;
    std::size_t pages = args_u32(ctx.args, 1);
    if (pages > ctx.heap->pages()) pages = ctx.heap->pages();
    auto* base = static_cast<std::uint8_t*>(ctx.heap->base());
    const std::size_t psz = ctx.heap->page_size();
    for (std::size_t p = 0; p < pages; ++p) {
      base[p * psz] = static_cast<std::uint8_t>(ctx.arm_index);
    }
    Bytes out(4);
    const std::uint32_t n = static_cast<std::uint32_t>(pages);
    std::memcpy(out.data(), &n, 4);
    return out;
  });
}

}  // namespace altx::server
